// Extension: device-level A/B of the two-class disk request scheduler.
//
// A bursty restore storm — 16 concurrent loader-like prefetch streams, closed
// loop with pipeline depth 8 and 256 KiB chunks — contends with guest demand
// faults: 8 closed fault chains of 4 KiB reads with 200 us of guest compute
// between faults. Two modes run head to head on the NVMe profile:
//
//   fifo   queue_depth = 0, the legacy issue-time serializer claiming — every
//          read (prefetch included) claims bandwidth the moment it is issued,
//          so a demand fault lands behind the entire outstanding prefetch.
//   sched  the default scheduler (queue_depth 32): prefetch beyond the device
//          slots waits in queue, demand jumps it, aged prefetch alternates.
//
// Demand chains only issue while the prefetch storm is in flight, so every
// sample is taken under contention; the per-mode sample count differs (that is
// itself the result: more faults served per unit of contention time).
//
// Stdout carries exactly one JSON document (the banner goes to stderr) so CI
// can validate the output shape. Demand latencies aggregate across five seeds;
// prefetch completion is the per-seed median.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/sim/simulation.h"
#include "src/storage/block_device.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace bench {
namespace {

constexpr int kPrefetchStreams = 16;
constexpr int kChunksPerStream = 32;
constexpr uint64_t kChunkBytes = KiB(256).value();
constexpr int kStreamPipeline = 8;
constexpr int kDemandChains = 8;
constexpr Duration kThinkTime = Duration::Micros(200);

struct ModeResult {
  std::vector<int64_t> demand_latencies_ns;    // all seeds pooled
  std::vector<int64_t> prefetch_completion_ns; // one per seed
  uint64_t aged_promotions = 0;
  uint64_t merged_requests = 0;
};

void RunSeed(uint32_t queue_depth, uint64_t seed, ModeResult* out) {
  Simulation sim;
  BlockDeviceProfile profile = NvmeSsdProfile();
  profile.sched.queue_depth = queue_depth;
  BlockDevice disk(&sim, profile, seed);

  struct Stream {
    int next_chunk = 0;
    int completed = 0;
  };
  std::vector<Stream> streams(kPrefetchStreams);
  int streams_done = 0;
  SimTime prefetch_done_at;

  std::function<void(int)> pump = [&](int s) {
    Stream& st = streams[s];
    while (st.next_chunk - st.completed < kStreamPipeline &&
           st.next_chunk < kChunksPerStream) {
      const int chunk = st.next_chunk++;
      disk.Read(
          static_cast<uint64_t>(s) * MiB(64).value() + static_cast<uint64_t>(chunk) * kChunkBytes,
          kChunkBytes,
          DeviceReadOptions{ReadClass::kPrefetch, /*stream=*/static_cast<uint64_t>(s) + 1,
                            kNoSpan},
          [&, s](Status status) {
            FAASNAP_CHECK(status.ok());
            Stream& done_stream = streams[s];
            ++done_stream.completed;
            if (done_stream.completed == kChunksPerStream) {
              if (++streams_done == kPrefetchStreams) {
                prefetch_done_at = sim.now();
              }
            } else {
              pump(s);
            }
          });
    }
  };

  std::vector<int> chain_faults(kDemandChains, 0);
  std::function<void(int)> fault = [&](int c) {
    if (streams_done == kPrefetchStreams) {
      return;  // contention window over: stop sampling
    }
    const int i = chain_faults[c]++;
    // Scattered, non-contiguous offsets in a region no prefetch stream touches.
    const uint64_t offset = MiB(4096).value() + static_cast<uint64_t>(c) * MiB(64).value() +
                            static_cast<uint64_t>(i) * 3 * kPageSize;
    const SimTime issued = sim.now();
    disk.Read(offset, kPageSize,
              DeviceReadOptions{ReadClass::kDemand,
                                /*stream=*/100 + static_cast<uint64_t>(c), kNoSpan},
              [&, c, issued](Status status) {
                FAASNAP_CHECK(status.ok());
                out->demand_latencies_ns.push_back((sim.now() - issued).nanos());
                sim.ScheduleAfter(kThinkTime, [&, c] { fault(c); });
              });
  };

  for (int s = 0; s < kPrefetchStreams; ++s) {
    pump(s);
  }
  for (int c = 0; c < kDemandChains; ++c) {
    fault(c);
  }
  sim.Run();
  FAASNAP_CHECK(streams_done == kPrefetchStreams);
  out->prefetch_completion_ns.push_back((prefetch_done_at - SimTime()).nanos());
  out->aged_promotions += disk.stats().aged_promotions;
  out->merged_requests += disk.stats().merged_requests;
}

int64_t Percentile(std::vector<int64_t>* values, double p) {
  FAASNAP_CHECK(!values->empty());
  std::sort(values->begin(), values->end());
  const auto idx =
      static_cast<size_t>(p * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[idx];
}

std::string ModeJson(const char* name, uint32_t depth, ModeResult* r) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"mode\": \"%s\", \"queue_depth\": %u,\n"
      "     \"demand\": {\"count\": %zu, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"max_us\": %.1f},\n"
      "     \"prefetch_completion_ms\": %.2f,\n"
      "     \"aged_promotions\": %llu, \"merged_requests\": %llu}",
      name, depth, r->demand_latencies_ns.size(),
      static_cast<double>(Percentile(&r->demand_latencies_ns, 0.50)) / 1000.0,
      static_cast<double>(Percentile(&r->demand_latencies_ns, 0.99)) / 1000.0,
      static_cast<double>(Percentile(&r->demand_latencies_ns, 1.0)) / 1000.0,
      static_cast<double>(Percentile(&r->prefetch_completion_ns, 0.5)) / 1e6,
      static_cast<unsigned long long>(r->aged_promotions),
      static_cast<unsigned long long>(r->merged_requests));
  return buffer;
}

int RunBench() {
  std::fprintf(stderr,
               "ext_sched_contention: %d prefetch streams (pipeline %d, %d x %llu KiB) vs "
               "%d demand chains on nvme; fifo (depth 0) vs scheduler (depth 32)\n",
               kPrefetchStreams, kStreamPipeline, kChunksPerStream,
               static_cast<unsigned long long>(kChunkBytes / 1024), kDemandChains);
  ModeResult fifo;
  ModeResult sched;
  for (uint64_t seed : {1u, 7u, 13u, 29u, 71u}) {
    RunSeed(0, seed, &fifo);
    RunSeed(32, seed, &sched);
  }
  std::printf("{\n  \"bench\": \"ext_sched_contention\",\n  \"device\": \"nvme\",\n");
  std::printf("  \"seeds\": 5,\n  \"modes\": [\n%s,\n%s\n  ]\n}\n",
              ModeJson("fifo", 0, &fifo).c_str(), ModeJson("sched", 32, &sched).c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() { return faasnap::bench::RunBench(); }

// Shared helpers for the figure/table benchmark harnesses.
//
// Each bench binary reproduces one table or figure from the paper's evaluation:
// it runs the record phase once per (function, seed), then the test phase under
// each system, dropping caches between tests (section 6.1), and prints the same
// rows/series the paper reports.

#ifndef FAASNAP_BENCH_BENCH_UTIL_H_
#define FAASNAP_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/runtime/platform.h"
#include "src/metrics/table.h"
#include "src/obs/observability.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace bench {

// Process-wide observability sink for the bench drivers, enabled by the
// FAASNAP_TRACE_OUT / FAASNAP_METRICS_OUT environment variables:
//
//   FAASNAP_TRACE_OUT=fig01.trace.json build/bench/fig01_time_breakdown
//
// Returns null when neither variable is set (the usual case — benchmarks pay
// one branch per Experiment). Every Experiment attaches automatically and opens
// its own track; the files are written once at process exit.
Observability* BenchObservability();

// One record phase + repeated test phases on a single platform, caches dropped
// between tests.
class Experiment {
 public:
  // `seed` feeds device jitter; vary it across repetitions for error bars.
  Experiment(const std::string& function, PlatformConfig config);

  // Runs the record phase with `record_input` (defaults to input A elsewhere).
  void Record(const WorkloadInput& record_input);

  // Test phase: drop caches, restore under `mode`, invoke with `test_input`.
  InvocationReport Invoke(RestoreMode mode, const WorkloadInput& test_input);

  const TraceGenerator& generator() const { return generator_; }
  const FunctionSnapshot& snapshot() const { return snapshot_; }
  Platform& platform() { return platform_; }

 private:
  Platform platform_;
  TraceGenerator generator_;
  FunctionSnapshot snapshot_;
  bool recorded_ = false;
};

// Mean/stddev of total execution time (ms) across `reps` repetitions with
// different jitter seeds. Runs record(A-or-given) once per rep.
struct CellStats {
  double mean_ms = 0;
  double std_ms = 0;
};

CellStats MeasureCell(const std::string& function, RestoreMode mode,
                      const std::function<WorkloadInput(const FunctionSpec&)>& record_input,
                      const std::function<WorkloadInput(const FunctionSpec&)>& test_input,
                      PlatformConfig base_config, int reps);

// "123.4 +- 5.6" cell text.
std::string StatCell(const CellStats& stats);

// The four systems of Figures 1/6/7 in presentation order.
std::vector<RestoreMode> PaperSystems();

// Prints a standard figure banner.
void PrintBanner(const std::string& figure, const std::string& caption);

}  // namespace bench
}  // namespace faasnap

#endif  // FAASNAP_BENCH_BENCH_UTIL_H_

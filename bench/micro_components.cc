// google-benchmark micro-benchmarks of the building blocks on FaaSnap's hot
// paths: page-range set algebra, address-space mapping/resolution, loading set
// construction, manifest serialization, and the fault engine's cache-hit path.

#include <benchmark/benchmark.h>

#include "src/common/page_range.h"
#include "src/common/rng.h"
#include "src/core/loading_set_builder.h"
#include "src/mem/fault_engine.h"
#include "src/snapshot/serialization.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PageRangeSet ScatteredSet(uint64_t ranges, uint64_t seed) {
  Rng rng(seed);
  PageRangeSet set;
  for (uint64_t i = 0; i < ranges; ++i) {
    set.Add(rng.NextBelow(1u << 20), 1 + rng.NextBelow(16));
  }
  return set;
}

void BM_PageRangeSetAddScattered(benchmark::State& state) {
  const auto count = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    PageRangeSet set = ScatteredSet(count, 42);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
}
BENCHMARK(BM_PageRangeSetAddScattered)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PageRangeSetIntersect(benchmark::State& state) {
  PageRangeSet a = ScatteredSet(static_cast<uint64_t>(state.range(0)), 1);
  PageRangeSet b = ScatteredSet(static_cast<uint64_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
}
BENCHMARK(BM_PageRangeSetIntersect)->Arg(256)->Arg(4096);

void BM_PageRangeSetMergeGapTolerance(benchmark::State& state) {
  PageRangeSet set = ScatteredSet(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.MergeWithGapTolerance(32));
  }
}
BENCHMARK(BM_PageRangeSetMergeGapTolerance);

void BM_AddressSpaceHierarchicalMap(benchmark::State& state) {
  const auto regions = static_cast<uint64_t>(state.range(0));
  PageRangeSet nonzero = ScatteredSet(regions, 7);
  for (auto _ : state) {
    AddressSpace space(1u << 20);
    space.Map({.guest = {0, 1u << 20}, .kind = BackingKind::kAnonymous});
    for (const PageRange& r : nonzero.ranges()) {
      space.Map({.guest = r, .kind = BackingKind::kFile, .file = 1, .file_start = r.first});
    }
    benchmark::DoNotOptimize(space.mmap_call_count());
  }
}
BENCHMARK(BM_AddressSpaceHierarchicalMap)->Arg(128)->Arg(1024);

void BM_AddressSpaceResolve(benchmark::State& state) {
  AddressSpace space(1u << 20);
  space.Map({.guest = {0, 1u << 20}, .kind = BackingKind::kAnonymous});
  PageRangeSet nonzero = ScatteredSet(1024, 7);
  for (const PageRange& r : nonzero.ranges()) {
    space.Map({.guest = r, .kind = BackingKind::kFile, .file = 1, .file_start = r.first});
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.Resolve(rng.NextBelow(1u << 20)));
  }
}
BENCHMARK(BM_AddressSpaceResolve);

void BM_BuildLoadingSet(benchmark::State& state) {
  WorkingSetGroups groups;
  for (int g = 0; g < 8; ++g) {
    groups.groups.push_back(ScatteredSet(512, static_cast<uint64_t>(g) + 10));
  }
  MemoryFile memory;
  memory.total_pages = 1u << 20;
  memory.nonzero = ScatteredSet(2048, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildLoadingSet(groups, memory));
  }
}
BENCHMARK(BM_BuildLoadingSet);

void BM_LoadingSetManifestRoundTrip(benchmark::State& state) {
  LoadingSetFile file;
  Rng rng(4);
  PageIndex offset = 0;
  for (int i = 0; i < 1024; ++i) {
    const uint64_t count = 1 + rng.NextBelow(64);
    file.regions.push_back(
        LoadingRegion{{rng.NextBelow(1u << 20), count}, static_cast<uint32_t>(i / 128), offset});
    offset += count;
  }
  file.total_pages = offset;
  for (auto _ : state) {
    auto blob = EncodeLoadingSetManifest(file);
    auto decoded = DecodeLoadingSetManifest(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_LoadingSetManifestRoundTrip);

void BM_FaultEnginePageCacheHit(benchmark::State& state) {
  Simulation sim;
  PageCache cache;
  BlockDevice disk(&sim, TestDiskProfile());
  StorageRouter router;
  router.AddDevice(&disk);
  AddressSpace space(1u << 18);
  ReadaheadPolicy readahead;
  FaultEngine engine(&sim, &cache, &router, &space, &readahead, [](FileId) { return 1u << 18; });
  space.Map({.guest = {0, 1u << 18}, .kind = BackingKind::kFile, .file = 1, .file_start = 0});
  cache.Insert(1, PageRange{0, 1u << 18});
  PageIndex page = 0;
  for (auto _ : state) {
    engine.Access(page % (1u << 18), [](FaultClass) {});
    sim.Run();
    ++page;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultEnginePageCacheHit);

}  // namespace
}  // namespace faasnap

BENCHMARK_MAIN();

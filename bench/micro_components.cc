// google-benchmark micro-benchmarks of the building blocks on FaaSnap's hot
// paths: page-range set algebra, address-space mapping/resolution, loading set
// construction, manifest serialization, and the fault engine's cache-hit path.

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "src/common/page_range.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/units.h"
#include "src/mem/page_cache.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_tracer.h"
#include "src/sim/simulation.h"
#include "src/core/loading_set_builder.h"
#include "src/mem/fault_engine.h"
#include "src/snapshot/serialization.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PageRangeSet ScatteredSet(uint64_t ranges, uint64_t seed) {
  Rng rng(seed);
  PageRangeSet set;
  for (uint64_t i = 0; i < ranges; ++i) {
    set.Add(rng.NextBelow(1u << 20), 1 + rng.NextBelow(16));
  }
  return set;
}

void BM_PageRangeSetAddScattered(benchmark::State& state) {
  const auto count = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    PageRangeSet set = ScatteredSet(count, 42);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
}
BENCHMARK(BM_PageRangeSetAddScattered)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PageRangeSetUnion(benchmark::State& state) {
  PageRangeSet a = ScatteredSet(static_cast<uint64_t>(state.range(0)), 1);
  PageRangeSet b = ScatteredSet(static_cast<uint64_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Union(b));
  }
}
BENCHMARK(BM_PageRangeSetUnion)->Arg(256)->Arg(4096);

void BM_PageRangeSetSubtract(benchmark::State& state) {
  PageRangeSet a = ScatteredSet(static_cast<uint64_t>(state.range(0)), 1);
  PageRangeSet b = ScatteredSet(static_cast<uint64_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Subtract(b));
  }
}
BENCHMARK(BM_PageRangeSetSubtract)->Arg(256)->Arg(4096);

void BM_PageRangeSetIntersect(benchmark::State& state) {
  PageRangeSet a = ScatteredSet(static_cast<uint64_t>(state.range(0)), 1);
  PageRangeSet b = ScatteredSet(static_cast<uint64_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
}
BENCHMARK(BM_PageRangeSetIntersect)->Arg(256)->Arg(4096);

void BM_PageRangeSetMergeGapTolerance(benchmark::State& state) {
  PageRangeSet set = ScatteredSet(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.MergeWithGapTolerance(PageCount::FromPages(32)));
  }
}
BENCHMARK(BM_PageRangeSetMergeGapTolerance);

void BM_AddressSpaceHierarchicalMap(benchmark::State& state) {
  const auto regions = static_cast<uint64_t>(state.range(0));
  PageRangeSet nonzero = ScatteredSet(regions, 7);
  for (auto _ : state) {
    AddressSpace space(PageCount::FromPages(1u << 20));
    space.Map({.guest = {0, 1u << 20}, .kind = BackingKind::kAnonymous});
    for (const PageRange& r : nonzero.ranges()) {
      space.Map({.guest = r, .kind = BackingKind::kFile, .file = 1, .file_start = r.first});
    }
    benchmark::DoNotOptimize(space.mmap_call_count());
  }
}
BENCHMARK(BM_AddressSpaceHierarchicalMap)->Arg(128)->Arg(1024);

void BM_AddressSpaceResolve(benchmark::State& state) {
  AddressSpace space(PageCount::FromPages(1u << 20));
  space.Map({.guest = {0, 1u << 20}, .kind = BackingKind::kAnonymous});
  PageRangeSet nonzero = ScatteredSet(1024, 7);
  for (const PageRange& r : nonzero.ranges()) {
    space.Map({.guest = r, .kind = BackingKind::kFile, .file = 1, .file_start = r.first});
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.Resolve(rng.NextBelow(1u << 20)));
  }
}
BENCHMARK(BM_AddressSpaceResolve);

void BM_BuildLoadingSet(benchmark::State& state) {
  WorkingSetGroups groups;
  for (int g = 0; g < 8; ++g) {
    groups.groups.push_back(ScatteredSet(512, static_cast<uint64_t>(g) + 10));
  }
  MemoryFile memory;
  memory.total_pages = PageCount::FromPages(1u << 20);
  memory.nonzero = ScatteredSet(2048, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildLoadingSet(groups, memory));
  }
}
BENCHMARK(BM_BuildLoadingSet);

void BM_LoadingSetManifestRoundTrip(benchmark::State& state) {
  LoadingSetFile file;
  Rng rng(4);
  PageIndex offset = 0;
  for (int i = 0; i < 1024; ++i) {
    const uint64_t count = 1 + rng.NextBelow(64);
    file.regions.push_back(
        LoadingRegion{{rng.NextBelow(1u << 20), count}, static_cast<uint32_t>(i / 128), offset});
    offset += count;
  }
  file.total_pages = PageCount::FromPages(offset);
  for (auto _ : state) {
    auto blob = EncodeLoadingSetManifest(file);
    auto decoded = DecodeLoadingSetManifest(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_LoadingSetManifestRoundTrip);

void BM_SimulationScheduleFire(benchmark::State& state) {
  // Schedule/fire throughput: a deterministic mix of near-future events, each
  // firing callback scheduling a follow-up until the budget drains — the shape of
  // the fault/IO event churn in a restore sweep. range(0) is the number of
  // concurrently outstanding events (queue depth: dozens for one VM, thousands
  // for a burst of restoring VMs with deep IO pipelines); range(1) is the total
  // number of events fired per iteration.
  const auto depth = static_cast<uint64_t>(state.range(0));
  const auto batch = static_cast<uint64_t>(state.range(1));
  struct Chain {
    Simulation sim;
    Rng rng{17};
    uint64_t remaining = 0;
    void Tick() {
      if (remaining == 0) {
        return;
      }
      --remaining;
      // Single-pointer capture: stays in the callback's inline buffer, and the
      // delay is drawn with a mask rather than a modulo, so the measurement is
      // the engine's schedule/fire cost, not allocator or divider traffic.
      sim.ScheduleAfter(Duration::Nanos(static_cast<int64_t>(1 + (rng.NextU64() & 511))),
                        [this] { Tick(); });
    }
  };
  for (auto _ : state) {
    Chain chain;
    chain.remaining = batch;
    for (uint64_t i = 0; i < depth; ++i) {
      chain.sim.Schedule(
          SimTime() + Duration::Nanos(static_cast<int64_t>(chain.rng.NextU64() & 1023)),
          [&chain] { chain.Tick(); });
    }
    benchmark::DoNotOptimize(chain.sim.Run());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_SimulationScheduleFire)
    ->Args({64, 1024})
    ->Args({64, 16384})
    ->Args({1024, 16384})
    ->Args({4096, 65536});

void BM_SimulationScheduleBurst(benchmark::State& state) {
  // Pure schedule-then-drain throughput: a restore storm issues a burst of IO
  // completions up front, then the engine fires them in timestamp order. The
  // callback is empty, so this isolates the engine's per-event cost.
  const auto batch = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    Rng rng(29);
    for (uint64_t i = 0; i < batch; ++i) {
      sim.Schedule(SimTime() + Duration::Nanos(static_cast<int64_t>(rng.NextU64() & 0xFFFFF)),
                   [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_SimulationScheduleBurst)->Arg(1024)->Arg(16384);

void BM_SimulationScheduleCancel(benchmark::State& state) {
  // Timeout-heavy pattern: most scheduled events are cancelled before firing
  // (keep-alive timers, readahead deadlines).
  const auto batch = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    Rng rng(23);
    std::vector<EventId> ids;
    ids.reserve(batch);
    for (uint64_t i = 0; i < batch; ++i) {
      ids.push_back(sim.Schedule(
          SimTime() + Duration::Nanos(static_cast<int64_t>(rng.NextBelow(1 << 20))), []() {}));
    }
    for (uint64_t i = 0; i < batch; ++i) {
      if (i % 4 != 0) {
        sim.Cancel(ids[i]);
      }
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_SimulationScheduleCancel)->Arg(16384);

void BM_PageCacheGetStateInFlight(benchmark::State& state) {
  // GetState while many reads are outstanding (the burst experiments: dozens of
  // loaders with deep pipelines share the cache).
  Simulation sim;
  PageCache cache;
  const auto reads = static_cast<uint64_t>(state.range(0));
  std::vector<PageCache::ReadHandle> handles;
  for (uint64_t i = 0; i < reads; ++i) {
    handles.push_back(cache.BeginRead(1, PageRange{i * 128, 64}));
  }
  Rng rng(31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetState(1, rng.NextBelow(reads * 128)));
  }
  for (PageCache::ReadHandle h : handles) {
    cache.CompleteRead(h);
  }
}
BENCHMARK(BM_PageCacheGetStateInFlight)->Arg(64)->Arg(1024);

void BM_PageCacheAbsentIn(benchmark::State& state) {
  // The loader's per-chunk question against a well-populated cache.
  PageCache cache;
  Rng rng(37);
  for (uint64_t i = 0; i < static_cast<uint64_t>(state.range(0)); ++i) {
    cache.Insert(1, PageRange{rng.NextBelow(1u << 20), 1 + rng.NextBelow(16)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.AbsentIn(1, PageRange{rng.NextBelow(1u << 20), 64}));
  }
}
BENCHMARK(BM_PageCacheAbsentIn)->Arg(256)->Arg(4096);

void BM_FaultEnginePageCacheHit(benchmark::State& state) {
  Simulation sim;
  PageCache cache;
  BlockDevice disk(&sim, TestDiskProfile());
  StorageRouter router;
  router.AddDevice(&disk);
  AddressSpace space(PageCount::FromPages(1u << 18));
  ReadaheadPolicy readahead;
  FaultEngine engine(&sim, &cache, &router, &space, &readahead, [](FileId) { return PageCount::FromPages(1u << 18); });
  space.Map({.guest = {0, 1u << 18}, .kind = BackingKind::kFile, .file = 1, .file_start = 0});
  cache.Insert(1, PageRange{0, 1u << 18});
  PageIndex page = 0;
  for (auto _ : state) {
    engine.Access(page % (1u << 18), [](FaultClass) {});
    sim.Run();
    ++page;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultEnginePageCacheHit);

void BM_FaultEnginePageCacheHitTraced(benchmark::State& state) {
  // Same path as BM_FaultEnginePageCacheHit but with a span tracer and metrics
  // registry attached: the delta between the two is the enabled-tracing cost per
  // fault. The tracer capacity is kept larger than the iteration count so every
  // fault records two spans (fault + nothing disk-side on a cache hit).
  Simulation sim;
  PageCache cache;
  BlockDevice disk(&sim, TestDiskProfile());
  StorageRouter router;
  router.AddDevice(&disk);
  AddressSpace space(PageCount::FromPages(1u << 18));
  ReadaheadPolicy readahead;
  FaultEngine engine(&sim, &cache, &router, &space, &readahead, [](FileId) { return PageCount::FromPages(1u << 18); });
  SpanTracer spans(1u << 22);
  MetricsRegistry metrics;
  engine.set_observability(&spans, &metrics);
  space.Map({.guest = {0, 1u << 18}, .kind = BackingKind::kFile, .file = 1, .file_start = 0});
  cache.Insert(1, PageRange{0, 1u << 18});
  PageIndex page = 0;
  for (auto _ : state) {
    engine.Access(page % (1u << 18), [](FaultClass) {});
    sim.Run();
    ++page;
    if (spans.records().size() + 4 >= spans.capacity()) {
      spans.Clear();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultEnginePageCacheHitTraced);

void BM_DiskSchedContention(benchmark::State& state) {
  // Host-side cost of simulating a contended device: a pipelined prefetch
  // stream racing a closed demand-fault chain. Arg = disk queue depth (0 = the
  // legacy issue-time FIFO path, 32 = the two-class scheduler); the pair bounds
  // the scheduler's per-request bookkeeping overhead (queueing, class pick,
  // merge scan).
  const auto depth = static_cast<uint32_t>(state.range(0));
  constexpr int kPrefetchReads = 64;
  constexpr int kDemandReads = 256;
  BlockDeviceProfile profile = NvmeSsdProfile();
  profile.sched.queue_depth = depth;
  for (auto _ : state) {
    Simulation sim;
    BlockDevice disk(&sim, profile);
    for (int i = 0; i < kPrefetchReads; ++i) {
      disk.Read(static_cast<uint64_t>(i) * KiB(256).value(), KiB(256).value(),
                {.read_class = ReadClass::kPrefetch, .stream = 1}, [](Status) {});
    }
    int left = kDemandReads;
    std::function<void(Status)> chain = [&](Status) {
      if (--left > 0) {
        disk.Read(MiB(64).value() + static_cast<uint64_t>(left) * KiB(64).value(), kPageSize,
                  {.read_class = ReadClass::kDemand, .stream = 2}, chain);
      }
    };
    disk.Read(MiB(64).value(), kPageSize, {.read_class = ReadClass::kDemand, .stream = 2}, chain);
    sim.Run();
    benchmark::DoNotOptimize(disk.stats().read_requests);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (kPrefetchReads + kDemandReads));
}
BENCHMARK(BM_DiskSchedContention)->Arg(0)->Arg(32);

void BM_SpanTracerBeginEnd(benchmark::State& state) {
  // Raw cost of one closed span: Begin + End on an interned name.
  SpanTracer spans(1u << 22);
  const uint32_t name = spans.InternName("fault");
  int64_t t = 0;
  for (auto _ : state) {
    const SpanId id =
        spans.BeginId(SimTime::FromNanos(t), ObsLane::kVcpu, name, 42, 0, kNoSpan);
    spans.End(id, SimTime::FromNanos(t + 10));
    t += 10;
    if (spans.records().size() + 2 >= spans.capacity()) {
      spans.Clear();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanTracerBeginEnd);

void BM_MetricsCounterAdd(benchmark::State& state) {
  // Steady-state metric update: the series pointer is resolved once at
  // attachment time, so the hot path is a single add.
  MetricsRegistry metrics;
  Counter* counter = metrics.GetCounter("faults.by_class", {{"class", "minor"}});
  for (auto _ : state) {
    counter->Add(1);
    benchmark::DoNotOptimize(counter->value);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  MetricsRegistry metrics;
  Log2Histogram* histogram = metrics.GetHistogram("fault.handling_ns");
  Rng rng(11);
  for (auto _ : state) {
    histogram->Record(Duration::Nanos(static_cast<int64_t>(rng.NextU64() & 0xFFFFF)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramRecord);

}  // namespace
}  // namespace faasnap

BENCHMARK_MAIN();

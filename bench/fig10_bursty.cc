// Figure 10: performance under bursty workloads — 1 to 64 simultaneous
// invocations of hello-world and json, restored either from the same snapshot or
// from different snapshots, under Firecracker, REAP, and FaaSnap.
//
// Paper shape: same snapshot — REAP and FaaSnap beat Firecracker below 64-way
// parallelism; FaaSnap beats REAP everywhere because REAP's fetch bypasses the
// page cache and cannot share reads; at 64 the CPU becomes the bottleneck for
// everyone. Different snapshots — Firecracker degrades quickly with disk load;
// REAP is flat (it never shared anyway); FaaSnap stays ahead.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

struct BurstResult {
  double mean_ms;
  double std_ms;
};

BurstResult RunBurst(const std::string& function, RestoreMode mode, int parallelism,
                     bool same_snapshot, uint64_t seed) {
  PlatformConfig config;
  config.seed = seed;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction(function);
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);

  std::vector<FunctionSnapshot> snapshots;
  const int snapshot_count = same_snapshot ? 1 : parallelism;
  for (int i = 0; i < snapshot_count; ++i) {
    snapshots.push_back(platform.Record(generator, MakeInputA(*spec)));
  }
  platform.DropCaches();

  RunningStats totals;
  int completed = 0;
  for (int i = 0; i < parallelism; ++i) {
    WorkloadInput input = MakeInputA(*spec);
    if (!spec->fixed_input) {
      input.content_seed = 0xB0057 + static_cast<uint64_t>(i);  // per-request contents
    }
    const FunctionSnapshot& snap = snapshots[same_snapshot ? 0 : i];
    platform.InvokeAsync(snap, mode, generator.Generate(input), [&](InvocationReport r) {
      totals.Record(r.total_time().millis());
      ++completed;
    });
  }
  platform.sim()->Run();
  FAASNAP_CHECK(completed == parallelism);
  return BurstResult{totals.mean(), totals.stddev()};
}

void Run(int reps) {
  PrintBanner("Figure 10", "performance with bursty workloads (mean per-invocation ms)");

  const std::vector<int> parallelism = {1, 4, 16, 64};
  const std::vector<RestoreMode> systems = {RestoreMode::kFirecracker, RestoreMode::kReap,
                                            RestoreMode::kFaasnap};
  for (const std::string& function : {std::string("hello-world"), std::string("json")}) {
    for (bool same : {true, false}) {
      TextTable table({"parallelism", "firecracker", "reap", "faasnap"});
      for (int p : parallelism) {
        std::vector<std::string> row = {FormatCell("%d", p)};
        for (RestoreMode mode : systems) {
          RunningStats stats;
          for (int rep = 0; rep < reps; ++rep) {
            BurstResult r = RunBurst(function, mode, p, same,
                                     1 + static_cast<uint64_t>(rep) * 7919);
            stats.Record(r.mean_ms);
          }
          row.push_back(FormatCell("%.1f +- %.1f", stats.mean(), stats.stddev()));
        }
        table.AddRow(std::move(row));
      }
      std::printf("## %s, %s\n%s\n", function.c_str(),
                  same ? "same snapshot" : "different snapshots", table.ToString().c_str());
    }
  }
  std::printf("Paper shape: FaaSnap < REAP everywhere (REAP bypasses the page cache);\n"
              "Firecracker catches up at same-snapshot 64-way (guests warm the cache for\n"
              "each other) but collapses with different snapshots; everyone slows at 64\n"
              "as 128 vCPUs oversubscribe 96 cores.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  faasnap::bench::Run(reps);
  return 0;
}

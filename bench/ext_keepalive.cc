// Extension (paper sections 2.1 / 7.1): warm starts vs snapshots vs cold starts.
//
// "For the most frequent functions, keeping warm VMs alive and using warm starts
// is the best choice. Snapshots are useful for less frequently executed functions
// where keeping warm VMs has more overhead than benefit." This bench quantifies
// that tradeoff: Poisson arrivals at rates from the Azure-trace regimes (less
// than half of all functions are invoked every hour; <10% every minute), a
// 10-minute keep-alive window, and three miss paths. Reported per cell: mean
// latency and the time-averaged host memory pinned by the warm VM.

#include <cstdio>
#include <iterator>

#include "bench/bench_util.h"
#include "src/runtime/keepalive.h"

namespace faasnap {
namespace bench {
namespace {

void Run(int arrivals) {
  PrintBanner("Extension: keep-alive policy (sections 2.1, 7.1)",
              "Poisson arrivals, 10-minute keep-alive, mean latency / avg pinned memory");

  struct Rate {
    const char* label;
    Duration mean_gap;
  };
  const Rate rates[] = {
      {"every 10 s (hot)", Duration::Seconds(10)},
      {"every 2 min", Duration::Seconds(120)},
      {"every 30 min", Duration::Seconds(1800)},
  };
  const RestoreMode miss_modes[] = {RestoreMode::kColdBoot, RestoreMode::kFirecracker,
                                    RestoreMode::kFaasnap};

  // One seeded gap stream per arrival rate, shared by every function and miss
  // path: cells at a rate serve the identical offered schedule.
  std::vector<std::vector<Duration>> gaps_by_rate;
  for (const Rate& rate : rates) {
    gaps_by_rate.push_back(PoissonArrivalGaps(rate.mean_gap, arrivals, 99));
  }

  for (const std::string& function : {std::string("json"), std::string("recognition")}) {
    TextTable table({"arrival rate", "miss path", "warm hit rate", "mean latency (ms)",
                     "p-miss latency (ms)", "avg pinned memory (MiB)"});
    for (size_t rate_index = 0; rate_index < std::size(rates); ++rate_index) {
      const Rate& rate = rates[rate_index];
      for (RestoreMode miss_mode : miss_modes) {
        PlatformConfig config;
        Platform platform(config);
        Result<FunctionSpec> spec = FindFunction(function);
        FAASNAP_CHECK_OK(spec.status());
        TraceGenerator generator(*spec, config.layout);
        FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));

        KeepAliveSimulator simulator(&platform, &snapshot, &generator);
        KeepAliveConfig ka;
        ka.keep_warm = Duration::Seconds(600);
        ka.miss_mode = miss_mode;
        KeepAliveStats stats = simulator.Run(gaps_by_rate[rate_index], ka);

        // Estimate the miss-path latency as the max observed (misses dominate it).
        table.AddRow({rate.label, std::string(RestoreModeName(miss_mode)),
                      FormatCell("%.0f%%", 100.0 * stats.warm_hit_rate()),
                      FormatCell("%.1f", stats.latency_ms.mean()),
                      FormatCell("%.1f", stats.latency_ms.max()),
                      FormatCell("%.1f", stats.avg_warm_resident_bytes / (1024.0 * 1024.0))});
      }
    }
    std::printf("## %s\n%s\n", function.c_str(), table.ToString().c_str());
  }
  std::printf("Expected: hot functions hit warm VMs regardless of miss path; at low rates\n"
              "the miss path dominates latency — FaaSnap keeps misses ~10x cheaper than\n"
              "cold boots while pinning no memory between invocations.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int arrivals = argc > 1 ? std::atoi(argv[1]) : 60;
  faasnap::bench::Run(arrivals);
  return 0;
}

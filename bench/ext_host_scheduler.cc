// Extension (paper sections 2.1 / 7.1): a multi-function host under memory
// pressure, with snapshots serving evictions.
//
// Eight functions share one host; arrivals follow an Azure-like Zipf popularity
// skew ("less than half of the functions are invoked every hour, and less than
// 10% are invoked every minute"). We sweep the warm-pool budget and the miss
// path. With a generous budget everything stays warm; as the budget shrinks,
// evictions rise and the miss path decides end-to-end latency — snapshots
// (FaaSnap in particular) keep small budgets viable where cold boots do not.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/host_scheduler.h"

namespace faasnap {
namespace bench {
namespace {

void Run(int arrivals) {
  PrintBanner("Extension: multi-function host scheduling (sections 2.1, 7.1)",
              "8 functions, Zipf(1.2) arrivals, warm-pool budget sweep");

  const std::vector<std::string> functions = {"json",  "image",       "chameleon",
                                              "pyaes", "compression", "pagerank",
                                              "ffmpeg", "recognition"};
  struct Budget {
    const char* label;
    ByteCount bytes;
  };
  const Budget budgets[] = {
      {"2 GiB (ample)", GiB(2)},
      {"512 MiB", MiB(512)},
      {"128 MiB (tight)", MiB(128)},
  };
  const RestoreMode miss_modes[] = {RestoreMode::kColdBoot, RestoreMode::kFirecracker,
                                    RestoreMode::kFaasnap};

  // One seeded arrival stream for the whole sweep: every cell serves the same
  // offered schedule, so cells differ only by budget and miss path.
  const std::vector<Arrival> mix =
      ZipfArrivals(functions.size(), arrivals, /*zipf_s=*/1.2,
                   /*mean_gap=*/Duration::Seconds(20), /*seed=*/12345);

  TextTable table({"budget", "miss path", "hit rate", "evictions", "mean latency (ms)",
                   "mean miss (ms)", "avg pool (MiB)"});
  for (const Budget& budget : budgets) {
    for (RestoreMode miss_mode : miss_modes) {
      PlatformConfig config;
      Platform platform(config);
      HostSchedulerConfig sched;
      sched.warm_pool_budget_bytes = budget.bytes;
      sched.keep_warm = Duration::Seconds(600);
      sched.miss_mode = miss_mode;
      HostScheduler scheduler(&platform, sched);
      for (const std::string& function : functions) {
        Result<FunctionSpec> spec = FindFunction(function);
        FAASNAP_CHECK_OK(spec.status());
        scheduler.AddFunction(*spec);
      }
      HostSchedulerStats stats = scheduler.Run(mix);
      table.AddRow({budget.label, std::string(RestoreModeName(miss_mode)),
                    FormatCell("%.0f%%", 100.0 * stats.warm_hit_rate()),
                    FormatCell("%lld", static_cast<long long>(stats.evictions)),
                    FormatCell("%.1f", stats.latency_ms.mean()),
                    FormatCell("%.1f", stats.miss_latency_ms.count() > 0
                                           ? stats.miss_latency_ms.mean()
                                           : 0.0),
                    FormatCell("%.0f", stats.avg_pool_bytes / (1024.0 * 1024.0))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected: hit rates fall as the budget shrinks (evictions rise); under a\n"
              "tight budget the miss path dominates mean latency — FaaSnap keeps the\n"
              "128 MiB host within ~2x of the ample one, while cold boots blow it up by\n"
              "an order of magnitude.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int arrivals = argc > 1 ? std::atoi(argv[1]) : 120;
  faasnap::bench::Run(arrivals);
  return 0;
}

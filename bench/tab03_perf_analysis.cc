// Table 3: performance analysis of ffmpeg and image under REAP and FaaSnap:
// total time, working-set fetch time and size, guest page-fault size, and page
// fault waiting time (fault handling + blocked-vCPU time).
//
// Paper shape: for ffmpeg FaaSnap wins via a shorter (concurrent, non-blocking)
// fetch; for image FaaSnap fetches MORE than REAP (host page recording over a
// sparse access pattern) yet wins big because REAP's userspace fault handling
// inflates the page-fault waiting time.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void Run() {
  PrintBanner("Table 3", "performance analysis (record A, test B)");

  TextTable table({"system, function", "total (ms)", "fetch time (ms)", "fetch size (MB)",
                   "guest pagefault size (MB)", "PF waiting time (ms)"});
  for (const std::string& function : {std::string("ffmpeg"), std::string("image")}) {
    for (RestoreMode mode : {RestoreMode::kReap, RestoreMode::kFaasnap}) {
      PlatformConfig config;
      Experiment experiment(function, config);
      experiment.Record(MakeInputA(experiment.generator().spec()));
      InvocationReport r = experiment.Invoke(mode, MakeInputB(experiment.generator().spec()));
      table.AddRow({FormatCell("%s, %s", RestoreModeName(mode).data(), function.c_str()),
                    FormatCell("%.0f", r.total_time().millis()),
                    FormatCell("%.0f", r.fetch_time.millis()),
                    FormatCell("%.0f", static_cast<double>(r.fetch_bytes.value()) / 1e6),
                    FormatCell("%.1f", static_cast<double>(r.guest_pagefault_bytes.value()) / 1e6),
                    FormatCell("%.0f", r.faults.total_wait_time.millis())});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper anchors: REAP/ffmpeg 1408 total, 257 fetch, 201M fetched; FaaSnap/\n"
              "ffmpeg 1070 total, 107 fetch, 146M. REAP/image 480 total, 22M fetched but\n"
              "342 ms PF waiting; FaaSnap/image 136 total, 88M fetched, 109 ms waiting\n"
              "(3.5x faster).\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

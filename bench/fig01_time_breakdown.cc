// Figure 1: time breakdown of function invocations (setup vs invocation) for
// hello-world, image, image-diff, read-list, and mmap under Warm, Firecracker,
// Cached, and REAP. Guest: 2 GiB, 1 vCPU (section 3.1).
//
// Paper shape: Warm wins everywhere (hello-world ~4 ms); Firecracker is the
// slowest snapshot system; Cached tracks Warm for image but pays minor faults on
// read-list/mmap; REAP matches Cached on same-input functions but degrades on
// image-diff and pays a long setup for large working sets.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

struct Row {
  std::string label;
  std::string function;
  uint64_t test_seed;  // differs from the record seed for image-diff
};

void Run(int reps) {
  PrintBanner("Figure 1", "time breakdown of function invocations (ms)");

  PlatformConfig config;
  config.guest.vcpus = 1;  // section 3.1 configuration

  const std::vector<Row> rows = {
      {"hello-world", "hello-world", 0xA},
      {"image", "image", 0xA},
      {"image-diff", "image", 0xD1FF},
      {"read-list", "read-list", 0xA},
      {"mmap", "mmap", 0xA},
  };
  const std::vector<RestoreMode> systems = {RestoreMode::kWarm, RestoreMode::kFirecracker,
                                            RestoreMode::kCached, RestoreMode::kReap};

  TextTable table({"function", "system", "setup (ms)", "invocation (ms)", "total (ms)"});
  for (const Row& row : rows) {
    for (RestoreMode mode : systems) {
      RunningStats setup;
      RunningStats invoke;
      for (int rep = 0; rep < reps; ++rep) {
        PlatformConfig c = config;
        c.seed = 1 + static_cast<uint64_t>(rep) * 7919;
        Experiment experiment(row.function, c);
        experiment.Record(MakeInputA(experiment.generator().spec()));
        WorkloadInput test = MakeInputA(experiment.generator().spec());
        test.content_seed = row.test_seed;
        InvocationReport report = experiment.Invoke(mode, test);
        setup.Record(report.setup_time.millis());
        invoke.Record(report.invocation_time.millis());
      }
      table.AddRow({row.label, std::string(RestoreModeName(mode)),
                    FormatCell("%.1f", setup.mean()), FormatCell("%.1f", invoke.mean()),
                    FormatCell("%.1f", setup.mean() + invoke.mean())});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper anchors: warm hello-world ~4 ms invocation; Firecracker hello-world\n"
              ">200 ms; REAP setup dominates read-list/mmap; REAP degrades on image-diff.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  faasnap::bench::Run(reps);
  return 0;
}

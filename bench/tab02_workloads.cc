// Table 2: the evaluation functions with their measured record-phase working
// sets for inputs A and B. The "spec" columns come from the catalog; the
// "recorded" columns run the record phase and report what host page recording
// actually captured, validating the workload models against the paper's table.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

double Mb(uint64_t pages) { return static_cast<double>(PagesToBytes(pages)) / (1024.0 * 1024.0); }

void Run() {
  PrintBanner("Table 2", "functions used in the evaluation");

  TextTable table({"function", "description", "spec WS A (MB)", "spec WS B (MB)",
                   "recorded WS A (MB)", "REAP WS A (MB)", "loading set A (MB)"});
  for (const FunctionSpec& spec : FunctionCatalog()) {
    PlatformConfig config;
    Experiment experiment(spec.name, config);
    experiment.Record(MakeInputA(spec));
    const FunctionSnapshot& snap = experiment.snapshot();
    table.AddRow({spec.name, spec.description,
                  FormatCell("%.1f", Mb(spec.WorkingSetPages(spec.input_a).value())),
                  FormatCell("%.1f", Mb(spec.WorkingSetPages(spec.input_b).value())),
                  FormatCell("%.1f", Mb(snap.ws_groups.AllPages().page_count())),
                  FormatCell("%.1f", Mb(snap.reap_ws.size_pages().value())),
                  FormatCell("%.1f", Mb(snap.loading_set.total_pages.value()))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper anchors (Table 2 WS A): hello-world 11.8, read-list 526, mmap 536,\n"
              "image 20.6, json 12.7, pyaes 12.6, chameleon 22.9, matmul 113, ffmpeg 179,\n"
              "compression 15.3, recognition 230, pagerank 104 MB. Host page recording\n"
              "captures more than REAP's faulting-page set (section 4.4); the loading set\n"
              "drops zero pages (section 4.6).\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

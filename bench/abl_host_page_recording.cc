// Ablation: host page recording (mincore) vs faulting-page recording (section
// 4.4). We rebuild FaaSnap's loading set from REAP's fault-order working set
// (what userfaultfd tracking would have recorded) and compare against the
// mincore-based recording under input drift.
//
// Expected shape: with the same input both perform alike; with a different/larger
// input, mincore recording wins because readahead "predicted" pages that the new
// input touches but the old one never faulted on.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/loading_set_builder.h"

namespace faasnap {
namespace bench {
namespace {

// Chops REAP's fault-ordered page list into pseudo-groups of `group_size` so the
// loading set builder can order the file, mimicking a recorder that tracked only
// faulting pages.
WorkingSetGroups GroupsFromFaultOrder(const ReapWorkingSetFile& ws, uint64_t group_size) {
  WorkingSetGroups groups;
  PageRangeSet current;
  uint64_t in_group = 0;
  for (PageIndex page : ws.guest_pages) {
    current.AddPage(page);
    if (++in_group >= group_size) {
      groups.groups.push_back(std::move(current));
      current = PageRangeSet();
      in_group = 0;
    }
  }
  if (!current.empty()) {
    groups.groups.push_back(std::move(current));
  }
  return groups;
}

void Run(int reps) {
  PrintBanner("Ablation: host page recording",
              "FaaSnap with mincore-recorded vs faulting-page-recorded working sets (ms)");

  for (const std::string& function :
       {std::string("image"), std::string("json"), std::string("pagerank")}) {
    TextTable table({"test input", "mincore recording", "faulting-page recording", "delta"});
    struct Scenario {
      const char* label;
      double ratio;
      uint64_t seed;
    };
    for (const Scenario& scenario :
         {Scenario{"same input A", 1.0, 0xA}, Scenario{"different content, 1x", 1.0, 0xD1FF},
          Scenario{"different content, 2x", 2.0, 0xD1FF}}) {
      RunningStats mincore_ms;
      RunningStats faultrec_ms;
      for (int rep = 0; rep < reps; ++rep) {
        PlatformConfig config;
        // Isolate the recording method: with the default 32-page merge, region
        // merging bridges most of the gap between the two recorders (an
        // interaction worth knowing about); merge 0 shows the raw difference.
        config.loading_set.merge_gap_pages = PageCount::Zero();
        config.seed = 1 + static_cast<uint64_t>(rep) * 7919;
        Experiment experiment(function, config);
        experiment.Record(MakeInputA(experiment.generator().spec()));

        WorkloadInput test =
            MakeScaledInput(experiment.generator().spec(), scenario.ratio, scenario.seed);

        // Baseline: FaaSnap with its mincore-recorded working set.
        InvocationReport with_mincore = experiment.Invoke(RestoreMode::kFaasnap, test);
        mincore_ms.Record(with_mincore.total_time().millis());

        // Variant: substitute a faulting-page-recorded working set.
        FunctionSnapshot degraded = experiment.snapshot();
        degraded.ws_groups =
            GroupsFromFaultOrder(degraded.reap_ws, config.ws_group_size);
        degraded.loading_set =
            BuildLoadingSet(degraded.ws_groups, degraded.memory_sanitized, config.loading_set);
        degraded.loading_set.id = experiment.platform().store()->Register(
            function + ".lset-faultrec", degraded.loading_set.total_pages);
        experiment.platform().DropCaches();
        InvocationReport with_faults = experiment.platform().Invoke(
            degraded, RestoreMode::kFaasnap, experiment.generator(), test);
        faultrec_ms.Record(with_faults.total_time().millis());
      }
      table.AddRow({scenario.label, FormatCell("%.1f", mincore_ms.mean()),
                    FormatCell("%.1f", faultrec_ms.mean()),
                    FormatCell("%+.1f%%", 100.0 * (faultrec_ms.mean() - mincore_ms.mean()) /
                                              mincore_ms.mean())});
    }
    std::printf("## %s\n%s\n", function.c_str(), table.ToString().c_str());
  }
  std::printf("Expected: deltas grow with input drift — readahead-recorded pages cover\n"
              "future accesses that faulting-page tracking misses (section 4.4).\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  faasnap::bench::Run(reps);
  return 0;
}

// Figure 8: execution time under varying input size ratios. Record with input A;
// test with inputs whose sizes are 1/4x to 4x of A (contents entirely different).
//
// Paper shape: FaaSnap tracks Cached across the whole ratio range; REAP degrades
// sharply when the test input is larger than the record input (at large ratios it
// falls behind even Firecracker for several functions); Firecracker's gap to
// FaaSnap is roughly constant, shrinking in relative terms as compute dominates.

#include <cstdio>

#include <map>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void Run(int reps) {
  PrintBanner("Figure 8", "execution time under varying input size ratios (ms)");

  const std::vector<double> ratios = {0.25, 0.5, 1.0, 2.0, 4.0};
  const std::vector<RestoreMode> systems = PaperSystems();

  for (const std::string& function : BenchmarkFunctionNames()) {
    TextTable table({"ratio", "firecracker", "reap", "faasnap", "cached"});
    std::map<RestoreMode, std::map<double, RunningStats>> cells;
    for (int rep = 0; rep < reps; ++rep) {
      PlatformConfig config;
      config.seed = 1 + static_cast<uint64_t>(rep) * 7919;
      Experiment experiment(function, config);
      experiment.Record(MakeInputA(experiment.generator().spec()));
      for (double ratio : ratios) {
        // Different content per (rep, ratio): the paper's test inputs differ
        // entirely from the record input.
        const uint64_t content_seed = 0xC0FFEE + static_cast<uint64_t>(ratio * 16) +
                                      static_cast<uint64_t>(rep) * 1315423911ull;
        const WorkloadInput input =
            MakeScaledInput(experiment.generator().spec(), ratio, content_seed);
        for (RestoreMode mode : systems) {
          InvocationReport report = experiment.Invoke(mode, input);
          cells[mode][ratio].Record(report.total_time().millis());
        }
      }
    }
    for (double ratio : ratios) {
      std::vector<std::string> row = {FormatCell("%.2f", ratio)};
      for (RestoreMode mode : systems) {
        const RunningStats& stats = cells[mode][ratio];
        row.push_back(FormatCell("%.1f +- %.1f", stats.mean(), stats.stddev()));
      }
      table.AddRow(std::move(row));
    }
    std::printf("## %s\n%s\n", function.c_str(), table.ToString().c_str());
  }
  std::printf("Paper anchors: FaaSnap overlaps Cached at every ratio; REAP's curve is\n"
              "steeper than all others for ratio > 1 (worse than Firecracker for\n"
              "chameleon, image, and pagerank at large inputs).\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  faasnap::bench::Run(reps);
  return 0;
}

// Figure 9: optimization steps and their effects, for the image function:
// Firecracker -> +concurrent paging -> +per-region mapping -> full FaaSnap.
// Reports invocation time, number of major page faults, total page fault time,
// and the number of block read requests caused by VM page faults.
//
// Paper shape: concurrent paging cuts majors/blocks/PF-time vs Firecracker;
// per-region mapping *increases* major-fault count (the guest progresses faster)
// while lowering PF time and block requests (its majors mostly wait on reads the
// loader already issued); full FaaSnap minimizes all four.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void RunFunction(const std::string& function) {
  const std::vector<RestoreMode> steps = {
      RestoreMode::kFirecracker, RestoreMode::kFaasnapConcurrentOnly,
      RestoreMode::kFaasnapPerRegion, RestoreMode::kFaasnap};

  TextTable table({"step", "invocation (ms)", "major faults", "waits on loader",
                   "PF time (ms)", "block requests", "loader fetch (ms)"});
  for (RestoreMode mode : steps) {
    PlatformConfig config;
    Experiment experiment(function, config);
    experiment.Record(MakeInputA(experiment.generator().spec()));
    InvocationReport r = experiment.Invoke(mode, MakeInputB(experiment.generator().spec()));
    table.AddRow({std::string(RestoreModeName(mode)),
                  FormatCell("%.0f", r.invocation_time.millis()),
                  FormatCell("%lld", static_cast<long long>(r.faults.major_faults())),
                  FormatCell("%lld",
                             static_cast<long long>(r.faults.count(FaultClass::kInFlightWait))),
                  FormatCell("%.1f", r.faults.total_fault_time.millis()),
                  FormatCell("%llu",
                             static_cast<unsigned long long>(r.faults.fault_disk_requests)),
                  FormatCell("%.1f", r.fetch_time.millis())});
  }
  std::printf("## %s\n%s\n", function.c_str(), table.ToString().c_str());
}

void Run() {
  PrintBanner("Figure 9", "optimization steps and their effects");
  RunFunction("image");    // the paper's Figure 9 subject
  RunFunction("ffmpeg");   // larger loading set: the loader races the guest
  std::printf("Paper shape: concurrent paging reduces majors/PF-time/blocks vs Firecracker;\n"
              "per-region mapping trades more (cheaper) majors for fewer block requests;\n"
              "full FaaSnap has the fewest of everything and the shortest invocation.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

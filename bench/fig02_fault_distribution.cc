// Figure 2: distribution of page fault handling times for image-diff under Warm,
// Firecracker, Cached, and REAP (log2 buckets, 0.5 us - 512 us).
//
// Paper shape: Warm ~4,000 faults, >90% under 4 us (avg 2.5 us); snapshot systems
// ~9,000 faults; Cached >90% under 8 us (avg 3.7 us); Firecracker has a ~9% tail
// of >=32 us major faults (avg 13.3 us); REAP is bimodal: <4 us preinstalled pages
// plus an 8-64 us / >128 us tail from userspace handling.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void Run() {
  PrintBanner("Figure 2", "page fault handling time distribution, image-diff");

  PlatformConfig config;
  config.guest.vcpus = 1;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;

  const std::vector<RestoreMode> systems = {RestoreMode::kWarm, RestoreMode::kFirecracker,
                                            RestoreMode::kCached, RestoreMode::kReap};
  TextTable summary(
      {"system", "faults", "avg fault (us)", "total PF time (ms)", ">=32us share"});
  for (RestoreMode mode : systems) {
    Experiment experiment("image", config);
    experiment.Record(MakeInputA(experiment.generator().spec()));
    // image-diff: a different input in the test phase (different content and size).
    InvocationReport report =
        experiment.Invoke(mode, MakeInputB(experiment.generator().spec()));

    const Log2Histogram& h = report.faults.latency_histogram;
    std::printf("--- %s ---\n%s\n", RestoreModeName(mode).data(), h.ToString().c_str());

    int64_t slow = 0;
    for (int i = 0; i < h.num_buckets(); ++i) {
      if (i > 0 && h.bucket_upper(i - 1) >= Duration::Micros(32)) {
        slow += h.bucket_count(i);
      }
    }
    summary.AddRow({std::string(RestoreModeName(mode)), FormatCell("%lld", h.total_count()),
                    FormatCell("%.1f", h.mean().micros()),
                    FormatCell("%.1f", h.total_time().millis()),
                    FormatCell("%.1f%%", h.total_count() == 0
                                             ? 0.0
                                             : 100.0 * static_cast<double>(slow) /
                                                   static_cast<double>(h.total_count()))});
  }
  std::printf("%s\n", summary.ToString().c_str());
  std::printf("Paper anchors: Warm ~4k faults avg 2.5 us (total 12 ms); Cached avg 3.7 us\n"
              "(35 ms); Firecracker avg 13.3 us with ~9%% >=32 us (120 ms); REAP avg 6.7 us\n"
              "(56 ms), bimodal.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

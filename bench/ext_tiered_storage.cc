// Extension (paper section 7.2, future work): tiered snapshot storage.
//
// "In the future we plan to explore storing relatively small loading set files on
// local SSD and larger memory files on remote storage to reduce storage costs
// while satisfying the performance requirements of reading loading sets."
//
// This bench compares three placements under FaaSnap (and Firecracker/REAP where
// applicable): everything on local NVMe, everything on remote EBS, and the hybrid
// — loading set local, memory file (and REAP working set) remote.
//
// Expected shape: the hybrid tracks all-local closely for FaaSnap (the critical
// path reads the loading set), while moving the bulk of the bytes (the 2 GiB
// memory file) off the expensive local tier. Firecracker cannot benefit: all its
// reads hit the memory file.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

PlatformConfig MakeConfig(const char* placement) {
  PlatformConfig config;
  config.remote_disk = EbsIo2Profile();
  if (std::string(placement) == "all-local") {
    // remote device present but unused
  } else if (std::string(placement) == "all-remote") {
    config.placement.memory_files = StorageTier::kRemote;
    config.placement.loading_set = StorageTier::kRemote;
    config.placement.reap_ws = StorageTier::kRemote;
  } else {  // hybrid
    config.placement.memory_files = StorageTier::kRemote;
    config.placement.reap_ws = StorageTier::kRemote;
    config.placement.loading_set = StorageTier::kLocal;
  }
  return config;
}

void Run(int reps) {
  PrintBanner("Extension: tiered snapshot storage (section 7.2)",
              "total time (ms): all-local vs hybrid (loading set local) vs all-remote");

  const std::vector<std::string> functions = {"hello-world", "json", "image", "ffmpeg",
                                              "recognition"};
  for (RestoreMode mode :
       {RestoreMode::kFaasnap, RestoreMode::kReap, RestoreMode::kFirecracker}) {
    TextTable table({"function", "all-local", "hybrid", "all-remote", "hybrid penalty"});
    for (const std::string& function : functions) {
      Result<FunctionSpec> spec = FindFunction(function);
      FAASNAP_CHECK_OK(spec.status());
      auto test_input = spec->fixed_input
                            ? std::function<WorkloadInput(const FunctionSpec&)>(MakeInputA)
                            : std::function<WorkloadInput(const FunctionSpec&)>(MakeInputB);
      double cells[3];
      const char* placements[3] = {"all-local", "hybrid", "all-remote"};
      for (int i = 0; i < 3; ++i) {
        CellStats stats = MeasureCell(function, mode, MakeInputA, test_input,
                                      MakeConfig(placements[i]), reps);
        cells[i] = stats.mean_ms;
      }
      table.AddRow({function, FormatCell("%.1f", cells[0]), FormatCell("%.1f", cells[1]),
                    FormatCell("%.1f", cells[2]),
                    FormatCell("%+.1f%%", 100.0 * (cells[1] - cells[0]) / cells[0])});
    }
    std::printf("## %s\n%s\n", RestoreModeName(mode).data(), table.ToString().c_str());
  }
  std::printf("Expected: FaaSnap's hybrid stays within a few percent of all-local (cold-set\n"
              "reads are rare), enabling remote storage for the 2 GiB memory files at local\n"
              "SSD cost for only the small loading sets.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  faasnap::bench::Run(reps);
  return 0;
}

// Ablation: working set group size N (section 4.3; the paper empirically picks
// N = 1024). Smaller groups track access order tightly but fragment the loading
// set file; larger groups degrade into plain address order.
//
// The ordering effect only matters while the loader is still racing the guest,
// so this ablation uses the slower EBS device and the large-working-set
// functions; on a local NVMe the loader finishes during VMM restore and the
// group size is irrelevant (itself a useful observation).
//
// Expected shape: total time is flat near the minimum around N = 512-4096 and
// worse at the extremes — matching "N = 1024 works well across the benchmarks".

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void Run(int reps) {
  PrintBanner("Ablation: working set group size",
              "FaaSnap total time (ms) vs group size N (paper picks 1024)");

  const std::vector<uint64_t> sizes = {64, 256, 1024, 4096, 16384};
  for (const std::string& function :
       {std::string("recognition"), std::string("read-list"), std::string("ffmpeg")}) {
    TextTable table({"group size N", "faasnap total (ms)", "loading set regions"});
    for (uint64_t n : sizes) {
      RunningStats stats;
      uint64_t regions = 0;
      for (int rep = 0; rep < reps; ++rep) {
        PlatformConfig config;
        config.disk = EbsIo2Profile();  // slow enough that loader order matters
        config.ws_group_size = n;
        config.seed = 1 + static_cast<uint64_t>(rep) * 7919;
        Experiment experiment(function, config);
        experiment.Record(MakeInputA(experiment.generator().spec()));
        regions = experiment.snapshot().loading_set.regions.size();
        const FunctionSpec& fspec = experiment.generator().spec();
        InvocationReport r = experiment.Invoke(
            RestoreMode::kFaasnap, fspec.fixed_input ? MakeInputA(fspec) : MakeInputB(fspec));
        stats.Record(r.total_time().millis());
      }
      table.AddRow({FormatCell("%llu", static_cast<unsigned long long>(n)),
                    FormatCell("%.1f +- %.1f", stats.mean(), stats.stddev()),
                    FormatCell("%llu", static_cast<unsigned long long>(regions))});
    }
    std::printf("## %s\n%s\n", function.c_str(), table.ToString().c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  faasnap::bench::Run(reps);
  return 0;
}

// Ablation: region-merge distance threshold (section 4.6; the paper empirically
// picks 32 pages). Merging trades extra prefetched data for fewer loading-set
// regions — and hence fewer mmap(MAP_FIXED) calls at restore.
//
// Expected shape: region count (and setup mmap calls) drops steeply up to ~32,
// while the loading set grows slowly; total time has a shallow minimum near 32.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void Run(int reps) {
  PrintBanner("Ablation: region merge threshold",
              "loading-set regions / size / FaaSnap time vs merge distance (paper: 32)");

  const std::vector<uint64_t> thresholds = {0, 4, 16, 32, 128, 512};
  for (const std::string& function : {std::string("hello-world"), std::string("image")}) {
    TextTable table({"merge distance", "regions", "loading set (MB)", "mmap calls",
                     "faasnap total (ms)"});
    for (uint64_t threshold : thresholds) {
      RunningStats stats;
      uint64_t regions = 0;
      uint64_t mmap_calls = 0;
      double ls_mb = 0;
      for (int rep = 0; rep < reps; ++rep) {
        PlatformConfig config;
        config.loading_set.merge_gap_pages = PageCount::FromPages(threshold);
        config.seed = 1 + static_cast<uint64_t>(rep) * 7919;
        Experiment experiment(function, config);
        experiment.Record(MakeInputA(experiment.generator().spec()));
        regions = experiment.snapshot().loading_set.regions.size();
        ls_mb = static_cast<double>(PagesToBytes(experiment.snapshot().loading_set.total_pages).value()) /
                (1024.0 * 1024.0);
        InvocationReport r = experiment.Invoke(
            RestoreMode::kFaasnap,
            experiment.generator().spec().fixed_input
                ? MakeInputA(experiment.generator().spec())
                : MakeInputB(experiment.generator().spec()));
        mmap_calls = r.mmap_calls;
        stats.Record(r.total_time().millis());
      }
      table.AddRow({FormatCell("%llu", static_cast<unsigned long long>(threshold)),
                    FormatCell("%llu", static_cast<unsigned long long>(regions)),
                    FormatCell("%.1f", ls_mb),
                    FormatCell("%llu", static_cast<unsigned long long>(mmap_calls)),
                    FormatCell("%.1f +- %.1f", stats.mean(), stats.stddev())});
    }
    std::printf("## %s\n%s\n", function.c_str(), table.ToString().c_str());
  }
  std::printf("Paper anchors: for hello-world, merging cuts >1000 regions to under ~100\n"
              "while adding only a few percent of data (section 4.6).\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  faasnap::bench::Run(reps);
  return 0;
}

// Extension (paper section 7.2): snapshot storage costs.
//
// "In general, the sizes of snapshot memory files are the same as the guest
// memory size... In practice, since guest memory often contains zero pages,
// snapshot files can be saved as sparse files to reduce their sizes."
//
// Per function: the nominal 2 GiB memory file vs its sparse (non-zero-extent)
// size — for both the vanilla file and FaaSnap's sanitized file, whose freed-page
// zeroing shrinks it further — plus the working/loading set file sizes and the
// local-SSD bytes needed under section 7.2's hybrid placement (loading set only).

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

double Mb(uint64_t pages) { return static_cast<double>(PagesToBytes(pages)) / (1024.0 * 1024.0); }

void Run() {
  PrintBanner("Extension: snapshot storage costs (section 7.2)",
              "per-function on-disk sizes (MB); guest memory is 2048 MB nominal");

  TextTable table({"function", "sparse mem (vanilla)", "sparse mem (sanitized)",
                   "REAP ws file", "loading set file", "local bytes (hybrid)"});
  double vanilla_total = 0;
  double sanitized_total = 0;
  double hybrid_total = 0;
  for (const FunctionSpec& spec : FunctionCatalog()) {
    PlatformConfig config;
    Experiment experiment(spec.name, config);
    experiment.Record(MakeInputA(spec));
    const FunctionSnapshot& snap = experiment.snapshot();
    const double vanilla = Mb(snap.memory_vanilla.nonzero.page_count());
    const double sanitized = Mb(snap.memory_sanitized.nonzero.page_count());
    const double reap_ws = Mb(snap.reap_ws.size_pages().value());
    const double loading = Mb(snap.loading_set.total_pages.value());
    vanilla_total += vanilla;
    sanitized_total += sanitized;
    hybrid_total += loading;
    table.AddRow({spec.name, FormatCell("%.1f", vanilla), FormatCell("%.1f", sanitized),
                  FormatCell("%.1f", reap_ws), FormatCell("%.1f", loading),
                  FormatCell("%.1f", loading)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("totals for all 12 functions: vanilla sparse %.0f MB, sanitized sparse %.0f MB\n"
              "(freed-page sanitization shrinks snapshots too), hybrid local-SSD footprint\n"
              "%.0f MB — vs %.0f MB if whole sparse snapshots had to stay on local SSD.\n",
              vanilla_total, sanitized_total, hybrid_total, sanitized_total + hybrid_total);
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

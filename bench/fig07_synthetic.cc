// Figure 7: execution time of the three synthetic functions (hello-world, mmap,
// read-list) under Firecracker, REAP, FaaSnap, and Cached snapshots. Record and
// test phases use the same input.
//
// Paper shape: FaaSnap fastest of the snapshot systems on hello-world and mmap
// (on mmap, Cached is slower than FaaSnap because minor faults from the page
// cache cost more than anonymous faults); REAP pays a long setup for the large
// working sets; Firecracker is slowest overall.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void Run(int reps) {
  PrintBanner("Figure 7", "execution time of the three synthetic functions (ms)");

  TextTable table({"function", "firecracker", "reap", "faasnap", "cached"});
  for (const std::string& function : SyntheticFunctionNames()) {
    std::vector<std::string> row = {function};
    for (RestoreMode mode : PaperSystems()) {
      CellStats stats = MeasureCell(function, mode, MakeInputA, MakeInputA, PlatformConfig{},
                                    reps);
      row.push_back(StatCell(stats));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected shape (paper): hello-world ~189/70/70/67; FaaSnap beats REAP and\n"
              "Firecracker on mmap via anonymous mappings; Cached leads read-list.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  faasnap::bench::Run(reps);
  return 0;
}

#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "src/obs/trace_export.h"

namespace faasnap {
namespace bench {

namespace {

TraceGenerator MakeGenerator(const std::string& function, const GuestLayout& layout) {
  Result<FunctionSpec> spec = FindFunction(function);
  FAASNAP_CHECK_OK(spec.status());
  return TraceGenerator(*spec, layout);
}

// Owns the process-wide bundle and flushes it at exit, so every bench driver
// gets --trace-out-style artifacts without touching its argument parsing.
struct ObsSink {
  std::unique_ptr<Observability> obs;
  std::unique_ptr<std::ofstream> timeline_out;
  std::string trace_path;
  std::string metrics_path;
  std::string timeline_path;
  std::string forensics_path;

  ObsSink() {
    const char* trace = std::getenv("FAASNAP_TRACE_OUT");
    const char* metrics = std::getenv("FAASNAP_METRICS_OUT");
    const char* timeline = std::getenv("FAASNAP_TIMELINE_OUT");
    const char* forensics = std::getenv("FAASNAP_FORENSICS_OUT");
    if (trace != nullptr) {
      trace_path = trace;
    }
    if (metrics != nullptr) {
      metrics_path = metrics;
    }
    if (timeline != nullptr) {
      timeline_path = timeline;
    }
    if (forensics != nullptr) {
      forensics_path = forensics;
    }
    if (trace_path.empty() && metrics_path.empty() && timeline_path.empty() &&
        forensics_path.empty()) {
      return;
    }
    obs = std::make_unique<Observability>();
    if (!timeline_path.empty()) {
      timeline_out = std::make_unique<std::ofstream>(timeline_path);
      MetricsTimelineConfig config;
      if (const char* window_us = std::getenv("FAASNAP_TIMELINE_WINDOW_US")) {
        config.window = Duration::Micros(std::atoll(window_us));
      }
      std::ofstream* out = timeline_out.get();
      obs->timeline.Configure(&obs->metrics, config,
                              [out](const std::string& line) { *out << line << "\n"; });
    }
    if (!forensics_path.empty()) {
      // FAASNAP_FORENSICS_OUT enables tail-based forensics: spans go to the
      // recorder's recycling buffer instead of the run-wide tracer, and the
      // trace artifact (if also requested) holds only retained invocations.
      obs->forensics.Configure(ForensicsConfig{}, &obs->metrics);
    }
  }

  ~ObsSink() {
    if (obs == nullptr) {
      return;
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      out << (obs->forensics.enabled() ? obs->forensics.ExportRetainedTrace()
                                       : ExportChromeTrace(obs->spans));
      std::fprintf(stderr, "bench: wrote trace to %s\n", trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      out << obs->metrics.ToJson();
      std::fprintf(stderr, "bench: wrote metrics to %s\n", metrics_path.c_str());
    }
    if (obs->timeline.enabled()) {
      obs->timeline.Flush(SimTime());
      timeline_out->flush();
      std::fprintf(stderr, "bench: wrote timeline to %s\n", timeline_path.c_str());
    }
    if (!forensics_path.empty()) {
      std::ofstream out(forensics_path);
      out << obs->forensics.SummaryToJson();
      std::fprintf(stderr, "bench: wrote forensics to %s\n", forensics_path.c_str());
    }
  }
};

}  // namespace

Observability* BenchObservability() {
  static ObsSink sink;
  return sink.obs.get();
}

Experiment::Experiment(const std::string& function, PlatformConfig config)
    : platform_(config), generator_(MakeGenerator(function, config.layout)) {
  if (Observability* obs = BenchObservability()) {
    if (!obs->forensics.enabled()) {
      // Under forensics the platform records into the recorder's recycling
      // buffer; the run-wide tracer stays empty and needs no track.
      obs->spans.BeginTrack(function);
    }
    obs->timeline.BeginEpoch(function);
    platform_.set_observability(obs);
  }
}

void Experiment::Record(const WorkloadInput& record_input) {
  FAASNAP_CHECK(!recorded_);
  snapshot_ = platform_.Record(generator_, record_input);
  recorded_ = true;
}

InvocationReport Experiment::Invoke(RestoreMode mode, const WorkloadInput& test_input) {
  FAASNAP_CHECK(recorded_);
  platform_.DropCaches();
  return platform_.Invoke(snapshot_, mode, generator_, test_input);
}

CellStats MeasureCell(const std::string& function, RestoreMode mode,
                      const std::function<WorkloadInput(const FunctionSpec&)>& record_input,
                      const std::function<WorkloadInput(const FunctionSpec&)>& test_input,
                      PlatformConfig base_config, int reps) {
  RunningStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    PlatformConfig config = base_config;
    config.seed = base_config.seed + static_cast<uint64_t>(rep) * 7919;
    Experiment experiment(function, config);
    experiment.Record(record_input(experiment.generator().spec()));
    InvocationReport report = experiment.Invoke(mode, test_input(experiment.generator().spec()));
    stats.Record(report.total_time().millis());
  }
  return CellStats{stats.mean(), stats.stddev()};
}

std::string StatCell(const CellStats& stats) {
  return FormatCell("%.1f +- %.1f", stats.mean_ms, stats.std_ms);
}

std::vector<RestoreMode> PaperSystems() {
  return {RestoreMode::kFirecracker, RestoreMode::kReap, RestoreMode::kFaasnap,
          RestoreMode::kCached};
}

void PrintBanner(const std::string& figure, const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace bench
}  // namespace faasnap

// Table 1: the four page types and their mappings under FaaSnap.
//
//   loading set  — non-zero, in the working set  -> loading set file
//   cold set     — non-zero, outside the WS      -> memory file
//   released set — zero (freed+sanitized), in WS -> anonymous
//   unused set   — zero, never touched           -> anonymous
//
// This bench runs the record phase for each function and prints the measured
// sizes of the four sets, validating Table 1's taxonomy and the section 4.8
// observation that the cold set is "usually more than 100 MB, mostly boot pages".

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

double Mb(uint64_t pages) { return static_cast<double>(PagesToBytes(pages)) / (1024.0 * 1024.0); }

void Run() {
  PrintBanner("Table 1", "page types and their mappings under FaaSnap (MB)");

  TextTable table({"function", "loading set -> ls file", "cold set -> memory file",
                   "released set -> anon", "unused set -> anon"});
  for (const FunctionSpec& spec : FunctionCatalog()) {
    PlatformConfig config;
    Experiment experiment(spec.name, config);
    experiment.Record(MakeInputA(spec));
    const FunctionSnapshot& snap = experiment.snapshot();

    const PageRangeSet ws = snap.ws_groups.AllPages();
    const PageRangeSet& nonzero = snap.memory_sanitized.nonzero;
    const PageRangeSet zero = snap.memory_sanitized.ZeroRegions();
    const uint64_t loading = ws.Intersect(nonzero).page_count();
    const uint64_t cold = nonzero.Subtract(ws).page_count();
    const uint64_t released = ws.Intersect(zero).page_count();
    const uint64_t unused = zero.Subtract(ws).page_count();
    FAASNAP_CHECK(loading + cold + released + unused == snap.guest_pages.value());
    table.AddRow({spec.name, FormatCell("%.1f", Mb(loading)), FormatCell("%.1f", Mb(cold)),
                  FormatCell("%.1f", Mb(released)), FormatCell("%.1f", Mb(unused))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper anchors: the four sets partition guest memory; the cold set is >100 MB\n"
              "(mostly boot pages); the released set is large for mmap-style functions.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

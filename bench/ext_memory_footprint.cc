// Extension (paper section 7.3): memory footprints.
//
// "On average [FaaSnap] consumes 6% more memory than Firecracker (anonymous and
// page cache combined), although not always... Prefetching the working set into
// the page cache does not significantly increase the memory footprint because the
// working set is likely going to be loaded on-demand in Firecracker snapshots."
//
// This bench measures, at invocation completion, the VM's resident anonymous
// pages plus the host page cache, per function and system.

#include <cstdio>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

double Mb(uint64_t pages) { return static_cast<double>(PagesToBytes(pages)) / (1024.0 * 1024.0); }

void Run() {
  PrintBanner("Extension: memory footprints (section 7.3)",
              "anonymous + page cache at invocation completion (MB)");

  TextTable table({"function", "firecracker", "reap", "faasnap", "faasnap/firecracker"});
  double ratio_sum = 0;
  int count = 0;
  std::vector<std::string> functions = SyntheticFunctionNames();
  for (const std::string& f : BenchmarkFunctionNames()) {
    functions.push_back(f);
  }
  for (const std::string& function : functions) {
    Result<FunctionSpec> spec = FindFunction(function);
    FAASNAP_CHECK_OK(spec.status());
    auto test_input = spec->fixed_input ? MakeInputA(*spec) : MakeInputB(*spec);
    double cells[3];
    int i = 0;
    for (RestoreMode mode :
         {RestoreMode::kFirecracker, RestoreMode::kReap, RestoreMode::kFaasnap}) {
      PlatformConfig config;
      Experiment experiment(function, config);
      experiment.Record(MakeInputA(*spec));
      InvocationReport r = experiment.Invoke(mode, test_input);
      cells[i++] = Mb((r.anon_resident_pages + r.page_cache_pages).value());
    }
    const double ratio = cells[2] / cells[0];
    ratio_sum += ratio;
    ++count;
    table.AddRow({function, FormatCell("%.1f", cells[0]), FormatCell("%.1f", cells[1]),
                  FormatCell("%.1f", cells[2]), FormatCell("%.2fx", ratio)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("average faasnap/firecracker footprint ratio: %.2fx (paper: ~1.06x, and\n"
              "FaaSnap uses less memory than Firecracker for some functions).\n",
              ratio_sum / count);
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

// Extension: observability soak harness — bounded-memory forensics + timeline
// under a long invocation rotation.
//
// Full tracing cannot survive a soak run: span memory grows with run length.
// This harness runs a long rotation of invocations (default 2000; the
// acceptance soak uses 100000) with the flight recorder and the windowed
// metrics timeline both enabled, light deterministic chaos mixed in so
// degraded/failed outcomes occur, and then checks the observability
// invariants the tail-sampling design promises:
//
//   * every invocation is accounted: outcome counts sum to N, none unanalyzed;
//   * retention is exactly slowest-K plus every non-ok outcome (up to the
//     cap, overflow counted) — nothing more survives;
//   * every retained invocation's critical-path phases partition its invoke
//     window exactly (Sum() == total), whatever the outcome;
//   * the span buffer recycles and never overflows: memory tracks concurrent
//     spans, not run length;
//   * the timeline streams valid JSONL lines whose windows advance
//     monotonically within each epoch.
//
// Usage: ext_soak [invocations] [seed] [--no-chaos] [--slowest-k=K]
//                 [--timeline-out=PATH] [--forensics-out=PATH]
//                 [--trace-out=PATH]
// Same seed => same schedule => identical tallies and digests.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/json.h"

namespace faasnap {
namespace bench {
namespace {

PlatformConfig MakeSoakConfig(uint64_t seed, bool chaos) {
  PlatformConfig config;
  config.seed = seed;
  if (!chaos) {
    return config;
  }
  // ext_chaos's fault mix: enough pressure that a soak-length run keeps a
  // steady stream of degraded/failed outcomes feeding the non-ok retention
  // path. Memory files on the remote tier give outage windows a target.
  config.remote_disk = EbsIo2Profile();
  config.placement.memory_files = StorageTier::kRemote;
  config.placement.reap_ws = StorageTier::kRemote;
  config.chaos.enabled = true;
  config.chaos.seed = seed;
  config.chaos.read_error_rate = 0.02;
  config.chaos.read_delay_rate = 0.05;
  config.chaos.read_delay = Duration::Millis(2);
  // Corruption is a pure function of (seed, file_id) and the run registers
  // only ~a dozen snapshot files; a high rate guarantees some (function, mode)
  // cells demote or fail every rotation, feeding the non-ok retention path.
  config.chaos.corrupt_file_rate = 0.3;
  config.chaos.loader_stall_rate = 0.05;
  config.chaos.loader_stall = Duration::Millis(1);
  config.chaos.remote_outage_mean_gap = Duration::Millis(50);
  config.chaos.remote_outage_duration = Duration::Millis(5);
  return config;
}

struct TimelineCheck {
  int64_t lines = 0;
  int64_t parse_errors = 0;
  int64_t order_errors = 0;
  int64_t last_epoch = -1;
  int64_t last_end_ns = 0;
  size_t max_line_bytes = 0;
};

int Run(int invocations, uint64_t seed, bool chaos, size_t slowest_k,
        const char* timeline_path, const char* forensics_path, const char* trace_path) {
  PrintBanner("Extension: observability soak (forensics + timeline)",
              "bounded memory: retained = slowest-K + non-ok, buffer recycles");

  Observability obs;
  ForensicsConfig forensics_config;
  forensics_config.slowest_k = slowest_k;
  obs.forensics.Configure(forensics_config, &obs.metrics);

  std::unique_ptr<std::ofstream> timeline_out;
  if (timeline_path != nullptr) {
    timeline_out = std::make_unique<std::ofstream>(timeline_path);
  }
  TimelineCheck timeline;
  MetricsTimelineConfig timeline_config;
  timeline_config.window = Duration::Millis(10);
  obs.timeline.Configure(&obs.metrics, timeline_config, [&](const std::string& line) {
    ++timeline.lines;
    timeline.max_line_bytes = std::max(timeline.max_line_bytes, line.size());
    Result<JsonValue> doc = ParseJson(line);
    if (!doc.ok()) {
      ++timeline.parse_errors;
      return;
    }
    // Windows advance monotonically within an epoch; epochs never rewind.
    const int64_t epoch = doc->GetIntOr("epoch", -1);
    const int64_t start_ns = doc->GetIntOr("start_ns", -1);
    const int64_t end_ns = doc->GetIntOr("end_ns", -1);
    if (epoch < timeline.last_epoch || start_ns < 0 || end_ns <= start_ns ||
        (epoch == timeline.last_epoch && start_ns < timeline.last_end_ns)) {
      ++timeline.order_errors;
    }
    timeline.last_epoch = epoch;
    timeline.last_end_ns = end_ns;
    if (timeline_out != nullptr) {
      *timeline_out << line << "\n";
    }
  });
  obs.timeline.BeginEpoch("soak");

  Platform platform(MakeSoakConfig(seed, chaos));
  platform.set_observability(&obs);

  const std::vector<std::string> functions = {"json", "pyaes", "image"};
  const std::vector<RestoreMode> modes = {RestoreMode::kFaasnap, RestoreMode::kReap,
                                          RestoreMode::kFirecracker,
                                          RestoreMode::kFaasnapPerRegion};

  struct Registered {
    std::unique_ptr<TraceGenerator> generator;
    FunctionSnapshot snapshot;
  };
  std::vector<Registered> registered;
  for (const std::string& name : functions) {
    Result<FunctionSpec> spec = FindFunction(name);
    FAASNAP_CHECK_OK(spec.status());
    Registered r;
    r.generator = std::make_unique<TraceGenerator>(*spec, platform.config().layout);
    r.snapshot = platform.Record(*r.generator, MakeInputA(*spec));
    registered.push_back(std::move(r));
  }

  const FlightRecorder& rec = obs.forensics;
  std::map<std::string, int> tally;
  for (int i = 0; i < invocations; ++i) {
    Registered& r = registered[static_cast<size_t>(i) % registered.size()];
    const RestoreMode mode = modes[static_cast<size_t>(i) % modes.size()];
    platform.DropCaches();
    InvocationReport report =
        platform.Invoke(r.snapshot, mode, *r.generator, MakeInputA(r.generator->spec()));
    tally[report.OutcomeTag()]++;
  }
  obs.timeline.Flush(platform.sim()->now());

  std::printf("## outcome tally (%d invocations, seed %llu%s)\n", invocations,
              static_cast<unsigned long long>(seed), chaos ? ", chaos on" : ", chaos off");
  for (const auto& [tag, count] : tally) {
    std::printf("  %-40s %d\n", tag.c_str(), count);
  }

  const int64_t ok = rec.outcome_count(ForensicOutcome::kOk);
  const int64_t degraded = rec.outcome_count(ForensicOutcome::kDegraded);
  const int64_t failed = rec.outcome_count(ForensicOutcome::kFailed);
  const int64_t non_ok = degraded + failed;
  std::printf(
      "## forensics\n"
      "  invocations        %lld (ok %lld, degraded %lld, failed %lld)\n"
      "  retained slowest   %zu (K = %zu)\n"
      "  retained non-ok    %zu (+%lld dropped past cap %zu)\n"
      "  span buffer        capacity %zu, %llu overflowed, %lld recycles\n"
      "  timeline           %lld lines, longest %zu bytes\n",
      static_cast<long long>(rec.invocations()), static_cast<long long>(ok),
      static_cast<long long>(degraded), static_cast<long long>(failed),
      rec.retained_slowest().size(), forensics_config.slowest_k, rec.retained_non_ok().size(),
      static_cast<long long>(rec.dropped_non_ok()), forensics_config.max_non_ok,
      forensics_config.buffer_capacity,
      static_cast<unsigned long long>(obs.forensics.buffer()->dropped_records()),
      static_cast<long long>(rec.recycles()), static_cast<long long>(timeline.lines),
      timeline.max_line_bytes);

  int violations = 0;
  const auto check = [&](bool ok_cond, const char* what) {
    if (!ok_cond) {
      std::printf("VIOLATION: %s\n", what);
      ++violations;
    }
  };
  check(rec.invocations() == invocations, "every invocation is counted");
  check(ok + degraded + failed == invocations, "outcome counts sum to N");
  check(rec.unanalyzed() == 0, "every invocation has a critical-path breakdown");
  const size_t want_slowest = std::min(forensics_config.slowest_k, static_cast<size_t>(ok));
  check(rec.retained_slowest().size() == want_slowest, "slowest-K retained exactly");
  check(rec.retained_non_ok().size() + static_cast<size_t>(rec.dropped_non_ok()) ==
            static_cast<size_t>(non_ok),
        "every non-ok invocation retained or counted as dropped");
  check(rec.retained_non_ok().size() ==
            std::min(forensics_config.max_non_ok, static_cast<size_t>(non_ok)),
        "non-ok retention fills up to the cap");
  check(obs.forensics.buffer()->dropped_records() == 0, "span buffer never overflowed");
  check(rec.recycles() > 0, "span buffer recycled (memory tracks concurrency)");
  for (const std::vector<FlightRecorder::RetainedInvocation>* set :
       {&rec.retained_slowest(), &rec.retained_non_ok()}) {
    for (const FlightRecorder::RetainedInvocation& inv : *set) {
      check(inv.breakdown.Sum() == inv.breakdown.total,
            "retained breakdown phases partition the invoke window");
      check(!inv.spans.empty(), "retained invocation kept its span tree");
    }
  }
  check(timeline.lines > 0, "timeline emitted at least one window");
  check(timeline.parse_errors == 0, "every timeline line is valid JSON");
  check(timeline.order_errors == 0, "timeline windows advance monotonically");

  if (forensics_path != nullptr) {
    std::ofstream out(forensics_path);
    out << rec.SummaryToJson();
    std::printf("wrote forensics digest to %s\n", forensics_path);
  }
  if (trace_path != nullptr) {
    std::ofstream out(trace_path);
    out << rec.ExportRetainedTrace();
    std::printf("wrote retained trace to %s\n", trace_path);
  }

  if (violations == 0) {
    std::printf("SOAK INVARIANT PASS: %d invocations, retained %zu slowest + %zu non-ok, "
                "%lld buffer recycles\n",
                invocations, rec.retained_slowest().size(), rec.retained_non_ok().size(),
                static_cast<long long>(rec.recycles()));
    return 0;
  }
  std::printf("SOAK INVARIANT FAIL: %d violations\n", violations);
  return 1;
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  int invocations = 2000;
  uint64_t seed = 0x50AC;
  bool chaos = true;
  size_t slowest_k = 16;
  const char* timeline_out = nullptr;
  const char* forensics_out = nullptr;
  const char* trace_out = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-chaos") == 0) {
      chaos = false;
    } else if (std::strncmp(argv[i], "--slowest-k=", 12) == 0) {
      slowest_k = static_cast<size_t>(std::strtoull(argv[i] + 12, nullptr, 10));
    } else if (std::strncmp(argv[i], "--timeline-out=", 15) == 0) {
      timeline_out = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--forensics-out=", 16) == 0) {
      forensics_out = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (positional == 0) {
      invocations = std::atoi(argv[i]);
      ++positional;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    }
  }
  return faasnap::bench::Run(invocations, seed, chaos, slowest_k, timeline_out, forensics_out,
                             trace_out);
}

// Extension: sharded cluster serving — routing policy × host count × offered
// load, plus the parallel-simulation speedup.
//
// Three questions, one harness:
//
//   1. Placement: at a fixed per-host memory budget, how much cold-starting
//      does snapshot-locality routing avoid versus random / round-robin on
//      the same offered load? (cold-start rate, accepted p99, resident bytes)
//   2. Scale-out: with locality routing, how do cold-start rate and tail
//      latency move as the same per-host load is offered to 2/4/8 hosts?
//   3. Speed: how much wall-clock does sharding the event loop buy? The same
//      8-host scenario runs with 1 worker thread and with N, the two summary
//      documents are byte-compared (the determinism contract, enforced here
//      as a violation), and the wall-clock ratio is reported.
//
// Stdout carries exactly one JSON document. Virtual-time results are
// deterministic per seed and thread-count-independent; the wall-clock section
// is the one nondeterministic part and is omitted under --no-wall so CI can
// `faasnap_report diff` two same-seed runs bit-for-bit. This file is on the
// lint determinism allowlist for exactly that section (steady_clock is the
// measurement, not a hazard).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/cluster.h"
#include "src/common/json_writer.h"

namespace faasnap {
namespace bench {
namespace {

constexpr uint64_t kWorkloadSeed = 42;
constexpr double kZipfS = 1.2;

const std::vector<std::string>& Functions() {
  static const std::vector<std::string> kFunctions = {
      "hello-world", "read-list", "mmap", "json", "image", "pyaes", "chameleon", "compression"};
  return kFunctions;
}

ClusterConfig BaseConfig(size_t hosts, RoutingPolicy policy, int worker_threads) {
  ClusterConfig config;
  config.hosts = hosts;
  config.worker_threads = worker_threads;
  config.sync_quantum = Duration::Millis(5);
  // Tight pool: ~3 of the 8 functions fit warm per host, so placement decides
  // how often the cluster cold-starts.
  config.host.warm_pool_budget_bytes = MiB(64);
  config.host.admission.max_concurrency = 4;
  config.host.admission.queue_capacity = 32;
  config.host.admission.queue_deadline = Duration::Seconds(5);
  config.router.policy = policy;
  return config;
}

ClusterStats RunCell(const ClusterConfig& config, int arrivals, Duration mean_gap) {
  ClusterSimulator cluster(config);
  for (const std::string& name : Functions()) {
    Result<FunctionSpec> spec = FindFunction(name);
    FAASNAP_CHECK_OK(spec.status());
    cluster.AddFunction(*spec);
  }
  ArrivalMixConfig mix;
  mix.mean_gap = mean_gap;
  mix.zipf_s = kZipfS;
  return cluster.Run(SampleArrivalMix(Functions().size(), arrivals, mix, kWorkloadSeed));
}

void CellJson(JsonWriter* json, const std::string& label, size_t hosts, RoutingPolicy policy,
              Duration mean_gap, const ClusterStats& stats) {
  json->BeginObject()
      .Field("label", label)
      .Field("hosts", static_cast<int64_t>(hosts))
      .Field("policy", RoutingPolicyName(policy))
      .Field("mean_gap_ms", mean_gap.millis())
      .Field("arrivals", stats.arrivals)
      .Field("invocations", stats.invocations)
      .Field("cold_start_rate", stats.cold_start_rate())
      .Field("shed_total", stats.shed())
      .Field("accepted_p50_ms", stats.accepted_latency.EstimateQuantile(0.50).millis())
      .Field("accepted_p99_ms", stats.accepted_latency.EstimateQuantile(0.99).millis())
      .Field("avg_resident_mib",
             stats.avg_resident_bytes / static_cast<double>(MiB(1).value()))
      .Field("warm_routes", stats.routing.warm_routes)
      .Field("cached_routes", stats.routing.cached_routes)
      .Field("spills", stats.routing.spills)
      .Field("epochs", static_cast<int64_t>(stats.epochs))
      .Field("span_ms", stats.span.millis())
      .EndObject();
}

std::string SummaryString(const ClusterStats& stats) {
  JsonWriter w;
  stats.AppendJson(&w);
  return w.TakeString();
}

int RunBench(int arrivals_per_point, bool with_wall) {
  std::fprintf(stderr,
               "ext_cluster: %zu functions, Zipf(%.1f) open-loop arrivals, "
               "%d arrivals per point (x hosts for scale-out cells)\n",
               Functions().size(), kZipfS, arrivals_per_point);

  int violations = 0;
  const auto check = [&violations](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "VIOLATION: %s\n", what.c_str());
      ++violations;
    }
  };

  JsonWriter json;
  json.BeginObject()
      .Field("bench", "ext_cluster")
      .Field("functions", static_cast<int64_t>(Functions().size()))
      .Field("arrivals_per_point", static_cast<int64_t>(arrivals_per_point))
      .Field("workload_seed", static_cast<int64_t>(kWorkloadSeed));

  // --- 1. Routing-policy sweep: 4 hosts, light and heavy offered load. ---
  const RoutingPolicy policies[] = {RoutingPolicy::kRandom, RoutingPolicy::kRoundRobin,
                                    RoutingPolicy::kLocality};
  struct LoadLevel {
    const char* label;
    Duration mean_gap;
  };
  const LoadLevel loads[] = {{"light", Duration::Millis(20)}, {"heavy", Duration::Millis(4)}};

  json.Key("routing_sweep").BeginArray();
  double locality_cold = 0, random_cold = 0;
  for (const LoadLevel& load : loads) {
    for (RoutingPolicy policy : policies) {
      const ClusterStats stats =
          RunCell(BaseConfig(4, policy, 1), arrivals_per_point, load.mean_gap);
      check(stats.arrivals == stats.invocations + stats.shed(),
            std::string(load.label) + "/" + RoutingPolicyName(policy) +
                ": arrivals != invocations + sheds");
      if (std::string(load.label) == "light") {
        if (policy == RoutingPolicy::kLocality) {
          locality_cold = stats.cold_start_rate();
        } else if (policy == RoutingPolicy::kRandom) {
          random_cold = stats.cold_start_rate();
        }
      }
      CellJson(&json, std::string(load.label) + "/" + RoutingPolicyName(policy), 4, policy,
               load.mean_gap, stats);
    }
  }
  json.EndArray();
  check(locality_cold < random_cold,
        "locality routing did not beat random on cold-start rate at fixed budget");

  // --- 2. Scale-out sweep: constant per-host load, locality routing. ---
  json.Key("host_sweep").BeginArray();
  for (size_t hosts : {2u, 4u, 8u}) {
    // Cluster-wide gap shrinks as hosts grow: per-host offered load constant.
    const Duration mean_gap = Duration::Nanos(Duration::Millis(32).nanos() /
                                              static_cast<int64_t>(hosts));
    const int arrivals = arrivals_per_point * static_cast<int>(hosts) / 4;
    const ClusterStats stats =
        RunCell(BaseConfig(hosts, RoutingPolicy::kLocality, 1), arrivals, mean_gap);
    check(stats.arrivals == stats.invocations + stats.shed(),
          "hosts=" + std::to_string(hosts) + ": arrivals != invocations + sheds");
    CellJson(&json, "scale/" + std::to_string(hosts), hosts, RoutingPolicy::kLocality, mean_gap,
             stats);
  }
  json.EndArray();

  // --- 3. Parallel speedup + the determinism contract, self-checked. ---
  // The same 8-host scenario with 1 worker thread and with N: summaries must
  // be byte-identical; the wall-clock ratio is the sharding payoff.
  const int parallel_threads = std::max(
      2, std::min(8, static_cast<int>(std::thread::hardware_concurrency())));
  const int speedup_arrivals = arrivals_per_point * 2;
  const Duration speedup_gap = Duration::Millis(4);

  const auto timed_run = [&](int threads, double* wall_ms) {
    const auto start = std::chrono::steady_clock::now();
    const ClusterStats stats =
        RunCell(BaseConfig(8, RoutingPolicy::kLocality, threads), speedup_arrivals, speedup_gap);
    const auto stop = std::chrono::steady_clock::now();
    *wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
    return SummaryString(stats);
  };
  double serial_ms = 0, parallel_ms = 0;
  const std::string serial_summary = timed_run(1, &serial_ms);
  const std::string parallel_summary = timed_run(parallel_threads, &parallel_ms);
  check(serial_summary == parallel_summary,
        "1-thread and " + std::to_string(parallel_threads) +
            "-thread cluster runs are not byte-identical");
  json.Field("determinism_check",
             serial_summary == parallel_summary ? "byte_identical" : "DIVERGED");

  if (with_wall) {
    // Speedup needs real cores: on a 1-core machine two worker threads just
    // time-share, so the ratio hovers at 1.0 and only the byte-identity check
    // above is meaningful. hardware_concurrency is recorded so a reader can
    // tell the two situations apart.
    json.Key("wall").BeginObject();
    json.Field("serial_ms", serial_ms)
        .Field("parallel_ms", parallel_ms)
        .Field("parallel_threads", static_cast<int64_t>(parallel_threads))
        .Field("hardware_concurrency",
               static_cast<int64_t>(std::thread::hardware_concurrency()))
        .Field("speedup", parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
    json.EndObject();
    std::fprintf(stderr, "wall-clock: 1 thread %.1f ms, %d threads %.1f ms (%.2fx, %u cores)\n",
                 serial_ms, parallel_threads, parallel_ms,
                 parallel_ms > 0 ? serial_ms / parallel_ms : 0.0,
                 std::thread::hardware_concurrency());
  }

  json.Field("violations", static_cast<int64_t>(violations)).EndObject();
  std::printf("%s\n", json.TakeString().c_str());
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  int arrivals = 300;
  bool with_wall = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-wall") == 0) {
      with_wall = false;
    } else {
      arrivals = std::atoi(argv[i]);
    }
  }
  return faasnap::bench::RunBench(arrivals, with_wall);
}

// Extension: open-loop overload behavior of the admission-controlled host.
//
// A closed-loop harness can never overload the host — the next arrival waits
// for the previous completion — so it cannot answer the question this bench
// asks: what happens when offered load exceeds capacity? Here arrivals land at
// absolute virtual times (open loop), the admission layer bounds the damage
// (concurrency cap + bounded deadline queue + typed shedding), and the
// pressure ladder degrades work before dropping any. The sweep calibrates the
// host's per-slot service time, then offers 0.25x .. 4x of the saturation
// rate and checks the graceful-degradation contract:
//
//   - every offered arrival resolves to exactly one typed outcome
//     (completion or shed) — no hangs, no double counting;
//   - underloaded points shed nothing;
//   - overloaded points shed (that is the mechanism working, not a failure)
//     while goodput stays within 10% of its peak — the host saturates flat
//     instead of collapsing under queueing;
//   - the latency of *accepted* work stays bounded by the queueing deadline
//     plus a service-time tail, no matter how hard the host is overdriven;
//   - a chaos scenario (burst arrival-compression windows + memory-budget
//     squeeze windows) recovers: pressure returns to level 0 and the backlog
//     drains within a bounded tail after the offered load stops.
//
// Stdout carries exactly one JSON document (banner and violations go to
// stderr) so CI can assert on flattened keys (`sweep[label=over4].shed_total`)
// and diff two same-seed runs bit-for-bit.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/json_writer.h"
#include "src/runtime/host_scheduler.h"

namespace faasnap {
namespace bench {
namespace {

constexpr int kMaxConcurrency = 4;
constexpr int kQueueCapacity = 8;
constexpr uint64_t kArrivalSeed = 777;
constexpr double kZipfS = 1.2;

const std::vector<std::string>& Functions() {
  static const std::vector<std::string> kFunctions = {"json", "pyaes", "image",
                                                      "compression"};
  return kFunctions;
}

struct PointResult {
  std::string label;
  double load = 0;  // offered rate relative to the calibrated saturation rate
  HostSchedulerStats stats;
};

// One open-loop run: fresh platform, the four functions registered, `arrivals`
// Zipf/Poisson arrivals at `mean_gap`, admission + ladder per `sched`.
HostSchedulerStats RunPoint(const HostSchedulerConfig& sched, PlatformConfig platform_config,
                            int arrivals, Duration mean_gap) {
  Platform platform(platform_config);
  HostScheduler scheduler(&platform, sched);
  for (const std::string& function : Functions()) {
    Result<FunctionSpec> spec = FindFunction(function);
    FAASNAP_CHECK_OK(spec.status());
    scheduler.AddFunction(*spec);
  }
  const std::vector<Arrival> mix =
      ZipfArrivals(Functions().size(), arrivals, kZipfS, mean_gap, kArrivalSeed);
  return scheduler.Run(mix);
}

double GoodputPerSec(const HostSchedulerStats& stats) {
  const double span_s = stats.span.seconds();
  return span_s > 0 ? static_cast<double>(stats.invocations) / span_s : 0.0;
}

void PointJson(JsonWriter* json, const std::string& label, double load,
               const HostSchedulerStats& stats) {
  json->BeginObject()
      .Field("label", label)
      .Field("load", load)
      .Field("arrivals", stats.arrivals)
      .Field("invocations", stats.invocations)
      .Field("shed_queue_full", stats.shed_queue_full)
      .Field("shed_deadline", stats.shed_deadline)
      .Field("shed_total", stats.shed())
      .Field("queued", stats.queued)
      .Field("goodput_per_s", GoodputPerSec(stats))
      .Field("accepted_p50_ms", stats.accepted_latency.EstimateQuantile(0.50).millis())
      .Field("accepted_p99_ms", stats.accepted_latency.EstimateQuantile(0.99).millis())
      .Field("queue_wait_ms_mean", stats.queue_wait_ms.mean())
      .Field("warm_hit_rate", stats.warm_hit_rate())
      .Field("max_in_flight", static_cast<int64_t>(stats.max_in_flight))
      .Field("max_queue_depth", static_cast<uint64_t>(stats.max_queue_depth))
      .Field("pressure_demotions", stats.pressure_demotions)
      .Field("pressure_transitions", stats.pressure_transitions)
      .Field("max_pressure_level", static_cast<int64_t>(stats.max_pressure_level))
      .Field("final_pressure_level", static_cast<int64_t>(stats.final_pressure_level))
      .Field("drain_ms", stats.drain_time.millis())
      .EndObject();
}

int RunBench(int arrivals_per_point) {
  // Stdout carries exactly one JSON document; the banner goes to stderr.
  std::fprintf(stderr,
               "ext_overload: 4 functions, Zipf(%.1f) open-loop arrivals, "
               "0.25x..4x of the saturated rate, %d arrivals per point\n",
               kZipfS, arrivals_per_point);

  int violations = 0;
  const auto check = [&violations](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "VIOLATION: %s\n", what.c_str());
      ++violations;
    }
  };

  // Calibration: a heavily underloaded open-loop run measures the mean
  // service time; the saturation rate is max_concurrency slots over that.
  HostSchedulerConfig probe_sched;
  probe_sched.open_loop = true;
  probe_sched.admission.max_concurrency = kMaxConcurrency;
  probe_sched.admission.queue_capacity = kQueueCapacity;
  probe_sched.admission.queue_deadline = Duration::Seconds(10);
  const HostSchedulerStats probe =
      RunPoint(probe_sched, PlatformConfig(), /*arrivals=*/60, Duration::Seconds(1));
  check(probe.shed() == 0, "calibration run shed work while idle");
  const double service_ms = probe.latency_ms.mean();
  check(service_ms > 0, "calibration run measured no service time");
  const int64_t service_ns = static_cast<int64_t>(service_ms * 1e6);
  // Tight enough that queued waiters expire under sustained overload (both
  // shed types appear), loose enough that underloaded queues never hit it.
  const Duration queue_deadline = Duration::Nanos(3 * service_ns);

  HostSchedulerConfig sched;
  sched.open_loop = true;
  sched.admission.max_concurrency = kMaxConcurrency;
  sched.admission.queue_capacity = kQueueCapacity;
  sched.admission.queue_deadline = queue_deadline;

  struct Load {
    const char* label;
    double factor;
  };
  const Load loads[] = {
      {"under4", 0.25}, {"under2", 0.5}, {"sat", 1.0}, {"over2", 2.0}, {"over4", 4.0},
  };

  std::vector<PointResult> points;
  for (const Load& load : loads) {
    // mean gap = service / (slots * load): offered rate is load * saturation.
    const Duration mean_gap = Duration::Nanos(
        std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(service_ns) /
                                                  (kMaxConcurrency * load.factor))));
    PointResult point;
    point.label = load.label;
    point.load = load.factor;
    point.stats = RunPoint(sched, PlatformConfig(), arrivals_per_point, mean_gap);
    points.push_back(std::move(point));
  }

  // Contract checks over the sweep.
  double peak_goodput = 0;
  for (const PointResult& point : points) {
    peak_goodput = std::max(peak_goodput, GoodputPerSec(point.stats));
    check(point.stats.arrivals == point.stats.invocations + point.stats.shed(),
          point.label + ": arrivals != invocations + sheds (lost or duplicated outcomes)");
    check(point.stats.arrivals == arrivals_per_point,
          point.label + ": offered arrival count mismatch");
    // Accepted work is bounded by the queueing deadline plus a service tail,
    // no matter the offered load.
    const double p99_ms = point.stats.accepted_latency.EstimateQuantile(0.99).millis();
    check(p99_ms <= queue_deadline.millis() + 25.0 * service_ms,
          point.label + ": accepted p99 exceeds deadline + service tail");
  }
  for (const PointResult& point : points) {
    if (point.load < 1.0) {
      check(point.stats.shed() == 0, point.label + ": underloaded point shed work");
    }
  }
  check(points.back().stats.shed() > 0, "over4: 4x overload shed nothing");
  for (const PointResult& point : points) {
    if (point.load >= 1.0) {
      check(GoodputPerSec(point.stats) >= 0.9 * peak_goodput,
            point.label + ": goodput fell more than 10% below peak past saturation");
    }
  }

  // Chaos scenario: saturated offered load plus burst windows (arrival gaps
  // compressed 6x) and memory-squeeze windows (admission budget halved) — the
  // ladder must engage and the host must recover once the load stops.
  PlatformConfig chaos_config;
  chaos_config.chaos.enabled = true;
  chaos_config.chaos.burst_mean_gap = Duration::Millis(120);
  chaos_config.chaos.burst_duration = Duration::Millis(60);
  chaos_config.chaos.burst_arrival_multiplier = 6.0;
  chaos_config.chaos.squeeze_mean_gap = Duration::Millis(150);
  chaos_config.chaos.squeeze_duration = Duration::Millis(80);
  chaos_config.chaos.squeeze_budget_fraction = 0.5;
  HostSchedulerConfig chaos_sched = sched;
  chaos_sched.admission.memory_budget_bytes = MiB(256);
  const Duration sat_gap = Duration::Nanos(
      std::max<int64_t>(1, service_ns / kMaxConcurrency));
  const HostSchedulerStats burst =
      RunPoint(chaos_sched, chaos_config, arrivals_per_point, sat_gap);
  check(burst.arrivals == burst.invocations + burst.shed(),
        "chaos: arrivals != invocations + sheds");
  check(burst.final_pressure_level == 0,
        "chaos: pressure level did not recover to 0 after the run drained");
  check(burst.drain_time.millis() <= queue_deadline.millis() + 50.0 * service_ms,
        "chaos: post-burst backlog drain exceeded its bound");

  JsonWriter json;
  json.BeginObject()
      .Field("bench", "ext_overload")
      .Field("functions", static_cast<int64_t>(Functions().size()))
      .Field("max_concurrency", static_cast<int64_t>(kMaxConcurrency))
      .Field("queue_capacity", static_cast<int64_t>(kQueueCapacity))
      .Field("queue_deadline_ms", queue_deadline.millis())
      .Field("calibrated_service_ms", service_ms)
      .Field("arrivals_per_point", static_cast<int64_t>(arrivals_per_point))
      .Key("sweep")
      .BeginArray();
  for (const PointResult& point : points) {
    PointJson(&json, point.label, point.load, point.stats);
  }
  json.EndArray().Key("burst");
  PointJson(&json, "chaos", 1.0, burst);
  json.Field("violations", static_cast<int64_t>(violations)).EndObject();
  std::printf("%s\n", json.TakeString().c_str());
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int arrivals = argc > 1 ? std::atoi(argv[1]) : 250;
  return faasnap::bench::RunBench(arrivals);
}

// Figure 6: end-to-end execution time of the nine variable-input benchmark
// functions under Firecracker, REAP, FaaSnap, and Cached. Left half: record with
// input A, test with input B; right half: record with B, test with A.
//
// Paper shape: FaaSnap is the fastest non-Cached system for every function
// (average 2.0x over Firecracker, 1.4x over REAP; the REAP gap is larger when the
// test input is the bigger B), and is within a few percent of Cached on average.

#include <cstdio>

#include <map>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void RunDirection(const std::string& title,
                  const std::function<WorkloadInput(const FunctionSpec&)>& record_input,
                  const std::function<WorkloadInput(const FunctionSpec&)>& test_input,
                  int reps) {
  std::printf("## %s\n\n", title.c_str());
  TextTable table({"function", "firecracker", "reap", "faasnap", "cached",
                   "fc/faasnap", "reap/faasnap", "faasnap/cached"});
  double fc_ratio_sum = 0;
  double reap_ratio_sum = 0;
  double cached_ratio_sum = 0;
  int count = 0;
  for (const std::string& function : BenchmarkFunctionNames()) {
    std::map<RestoreMode, CellStats> cells;
    for (RestoreMode mode : PaperSystems()) {
      cells[mode] =
          MeasureCell(function, mode, record_input, test_input, PlatformConfig{}, reps);
    }
    const double faasnap = cells[RestoreMode::kFaasnap].mean_ms;
    const double fc_ratio = cells[RestoreMode::kFirecracker].mean_ms / faasnap;
    const double reap_ratio = cells[RestoreMode::kReap].mean_ms / faasnap;
    const double cached_ratio = faasnap / cells[RestoreMode::kCached].mean_ms;
    fc_ratio_sum += fc_ratio;
    reap_ratio_sum += reap_ratio;
    cached_ratio_sum += cached_ratio;
    ++count;
    table.AddRow({function, StatCell(cells[RestoreMode::kFirecracker]),
                  StatCell(cells[RestoreMode::kReap]), StatCell(cells[RestoreMode::kFaasnap]),
                  StatCell(cells[RestoreMode::kCached]), FormatCell("%.2fx", fc_ratio),
                  FormatCell("%.2fx", reap_ratio), FormatCell("%.2fx", cached_ratio)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("averages: firecracker/faasnap = %.2fx, reap/faasnap = %.2fx, "
              "faasnap/cached = %.2fx\n\n",
              fc_ratio_sum / count, reap_ratio_sum / count, cached_ratio_sum / count);
}

void Run(int reps) {
  PrintBanner("Figure 6", "execution time of the benchmark functions (ms)");
  RunDirection("record phase input A, test phase input B", MakeInputA, MakeInputB, reps);
  RunDirection("record phase input B, test phase input A", MakeInputB, MakeInputA, reps);
  std::printf("Paper anchors: FaaSnap improves on Firecracker ~2.0x and on REAP ~1.4x on\n"
              "average (1.55x when testing with the larger input B, 1.16x with A); FaaSnap\n"
              "averages within a few percent of Cached.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  faasnap::bench::Run(reps);
  return 0;
}

// Extension: chaos harness for the failure-aware restore pipeline.
//
// Runs a long rotation of invocations (default 500) across functions and
// restore modes on a platform with deterministic fault injection enabled:
// device read errors and latency spikes, corrupt snapshot files, loader
// stalls, and remote-device outage windows (memory files live on a remote
// tier so outages have a target).
//
// The invariant under test: every invocation completes correctly — possibly
// degraded to a fallback restore path — or fails with a typed Status. Never a
// hang, never an abort, never a silently wrong result. Each report is tagged
// ok | degraded(<mode>) | failed(<STATUS_CODE>); the harness tallies tags,
// checks per-report consistency, prints the storage-layer fault counters, and
// exits non-zero if any invariant is violated.
//
// Usage: ext_chaos [invocations] [seed]
// Same seed => same fault schedule => identical tallies (see
// tests/chaos_determinism_test.cc for the bit-identical guarantee).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

PlatformConfig MakeChaosConfig(uint64_t seed) {
  PlatformConfig config;
  // Tiered storage (section 7.2): memory files remote, so injected outage
  // windows hit the bulk of restore traffic and exercise remote->local
  // failover... except there is no local replica of remote-only files, so
  // failover lands on the local device, which the router models as a replica.
  config.remote_disk = EbsIo2Profile();
  config.placement.memory_files = StorageTier::kRemote;
  config.placement.reap_ws = StorageTier::kRemote;
  config.chaos.enabled = true;
  config.chaos.seed = seed;
  config.chaos.read_error_rate = 0.02;
  config.chaos.read_delay_rate = 0.05;
  config.chaos.read_delay = Duration::Millis(2);
  config.chaos.corrupt_file_rate = 0.08;
  config.chaos.loader_stall_rate = 0.05;
  config.chaos.loader_stall = Duration::Millis(1);
  config.chaos.remote_outage_mean_gap = Duration::Millis(50);
  config.chaos.remote_outage_duration = Duration::Millis(5);
  config.seed = seed;
  return config;
}

int Run(int invocations, uint64_t seed) {
  PrintBanner("Extension: chaos harness (deterministic fault injection)",
              "every invocation must end ok | degraded(<mode>) | failed(<code>)");

  Platform platform(MakeChaosConfig(seed));
  Observability obs;
  platform.set_observability(&obs);

  const std::vector<std::string> functions = {"hello-world", "json", "image"};
  const std::vector<RestoreMode> modes = {
      RestoreMode::kFaasnap,        RestoreMode::kReap,
      RestoreMode::kFirecracker,    RestoreMode::kFaasnapPerRegion,
      RestoreMode::kFaasnapConcurrentOnly, RestoreMode::kCached};

  struct Registered {
    std::unique_ptr<TraceGenerator> generator;
    FunctionSnapshot snapshot;
  };
  std::vector<Registered> registered;
  for (const std::string& name : functions) {
    Result<FunctionSpec> spec = FindFunction(name);
    FAASNAP_CHECK_OK(spec.status());
    Registered r;
    r.generator = std::make_unique<TraceGenerator>(*spec, platform.config().layout);
    r.snapshot = platform.Record(*r.generator, MakeInputA(*spec));
    registered.push_back(std::move(r));
  }

  std::map<std::string, int> tally;
  int violations = 0;
  for (int i = 0; i < invocations; ++i) {
    Registered& r = registered[static_cast<size_t>(i) % registered.size()];
    const RestoreMode mode = modes[static_cast<size_t>(i) % modes.size()];
    platform.DropCaches();
    // Invoke drives the simulation to completion and CHECKs that the report
    // callback fired — a hung invocation aborts the harness right here.
    InvocationReport report =
        platform.Invoke(r.snapshot, mode, *r.generator, MakeInputA(r.generator->spec()));
    tally[report.OutcomeTag()]++;

    // Per-report consistency: a failure carries a typed status; a completed
    // invocation (ok or degraded) actually ran the function.
    if (report.outcome == InvocationOutcome::kFailed) {
      if (report.status.ok()) {
        std::printf("VIOLATION at %d: failed outcome with OK status\n", i);
        violations++;
      }
    } else {
      if (report.invocation_time <= Duration::Zero()) {
        std::printf("VIOLATION at %d: completed outcome but the function never ran\n", i);
        violations++;
      }
      if (report.outcome == InvocationOutcome::kDegraded &&
          (report.degraded_mode.empty() || report.status.ok())) {
        std::printf("VIOLATION at %d: degraded outcome without mode/status\n", i);
        violations++;
      }
    }
  }

  std::printf("## outcome tally (%d invocations, seed %llu)\n", invocations,
              static_cast<unsigned long long>(seed));
  for (const auto& [tag, count] : tally) {
    std::printf("  %-40s %d\n", tag.c_str(), count);
  }
  const StorageFaultStats& fs = platform.storage()->fault_stats();
  std::printf(
      "## storage fault handling\n"
      "  retries            %llu\n"
      "  failovers          %llu\n"
      "  breaker opens      %llu\n"
      "  breaker fast-fails %llu\n"
      "  failed reads       %llu\n",
      static_cast<unsigned long long>(fs.retries),
      static_cast<unsigned long long>(fs.failovers),
      static_cast<unsigned long long>(fs.breaker_opens),
      static_cast<unsigned long long>(fs.breaker_fast_fails),
      static_cast<unsigned long long>(fs.failed_reads));

  if (violations == 0) {
    std::printf("CHAOS INVARIANT PASS: %d invocations, 0 hangs, 0 aborts, "
                "every report tagged ok|degraded|failed\n", invocations);
    return 0;
  }
  std::printf("CHAOS INVARIANT FAIL: %d violations\n", violations);
  return 1;
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int invocations = argc > 1 ? std::atoi(argv[1]) : 500;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0xC4A05;
  return faasnap::bench::Run(invocations, seed);
}

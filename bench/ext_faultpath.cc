// Extension: fault-path lever ablation (batched uffd installs, huge-page
// regions, in-flight fault coalescing).
//
// For each paper workload (ffmpeg, image) and each system the levers touch
// (REAP and FaaSnap), the same record-A / test-B experiment runs under five
// lever settings: every lever off (the exactness baseline), each lever alone,
// and all three together. Rows report total time, page-fault waiting time and
// per-lever attribution counters, so the ablation shows which lever moves
// which workload: batching shortens REAP's install burst and fault round
// trips, huge regions collapse dense loading-set areas into one fault, and
// coalescing retires neighbors of an in-flight loader read for free.
//
// Stdout carries exactly one JSON document (the banner goes to stderr) so CI
// can validate the output shape; curated numbers live in BENCH_faultpath.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

struct LeverSetting {
  const char* name;
  FaultPathConfig fp;
};

std::vector<LeverSetting> Settings() {
  return {
      {"off", {}},
      {"batch", {.batched_uffd_install = true}},
      {"huge", {.huge_pages = true}},
      {"coalesce", {.fault_coalescing = true}},
      {"all", {.batched_uffd_install = true, .huge_pages = true, .fault_coalescing = true}},
  };
}

std::string Row(const std::string& function, RestoreMode mode, const LeverSetting& setting,
                const InvocationReport& r) {
  char buffer[768];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"function\": \"%s\", \"mode\": \"%s\", \"lever\": \"%s\",\n"
      "     \"total_ms\": %.2f, \"fetch_ms\": %.2f, \"pf_wait_ms\": %.2f, "
      "\"pf_handling_ms\": %.2f,\n"
      "     \"faults\": %llu, \"batch_installs\": %llu, \"batch_installed_pages\": %llu,\n"
      "     \"huge_installs\": %llu, \"huge_installed_pages\": %llu, \"huge_splits\": %llu, "
      "\"coalesced_pages\": %llu}",
      function.c_str(), RestoreModeName(mode).data(), setting.name, r.total_time().millis(),
      r.fetch_time.millis(), r.faults.total_wait_time.millis(),
      r.faults.total_fault_time.millis(),
      static_cast<unsigned long long>(r.faults.total_faults()),
      static_cast<unsigned long long>(r.faults.batch_installs),
      static_cast<unsigned long long>(r.faults.batch_installed_pages.value()),
      static_cast<unsigned long long>(r.faults.huge_installs),
      static_cast<unsigned long long>(r.faults.huge_installed_pages.value()),
      static_cast<unsigned long long>(r.faults.huge_splits),
      static_cast<unsigned long long>(r.faults.coalesced_pages.value()));
  return buffer;
}

// Coalescing only matters under contention: a single restoring VM faults
// either behind the loader (minor) or ahead of it (major, waiting on its own
// read), never into someone else's in-flight IO. A same-snapshot burst
// through the shared page cache is where neighbors' reads are in flight, so
// the coalesce lever gets its own section: `parallelism` VMs restored from
// one snapshot, coalescing off vs on.
std::string BurstRow(const std::string& function, const char* lever, int parallelism,
                     bool coalesce) {
  PlatformConfig config;
  config.fault_path.fault_coalescing = coalesce;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction(function);
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snap = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  double total_ms = 0;
  double wait_ms = 0;
  unsigned long long inflight = 0;
  unsigned long long coalesced = 0;
  int completed = 0;
  for (int i = 0; i < parallelism; ++i) {
    WorkloadInput input = MakeInputA(*spec);
    if (!spec->fixed_input) {
      input.content_seed = 0xB0057 + static_cast<uint64_t>(i);
    }
    platform.InvokeAsync(snap, RestoreMode::kFirecracker, generator.Generate(input),
                         [&](InvocationReport r) {
                           total_ms += r.total_time().millis();
                           wait_ms += r.faults.total_wait_time.millis();
                           inflight +=
                               static_cast<unsigned long long>(r.faults.count(FaultClass::kInFlightWait));
                           coalesced += r.faults.coalesced_pages.value();
                           ++completed;
                         });
  }
  platform.sim()->Run();
  FAASNAP_CHECK(completed == parallelism);
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "    {\"function\": \"%s\", \"mode\": \"firecracker\", \"lever\": \"%s\", "
                "\"parallelism\": %d,\n"
                "     \"mean_total_ms\": %.2f, \"mean_pf_wait_ms\": %.2f, "
                "\"inflight_waits\": %llu, \"coalesced_pages\": %llu}",
                function.c_str(), lever, parallelism, total_ms / completed,
                wait_ms / completed, inflight, coalesced);
  return buffer;
}

void Run() {
  std::fprintf(stderr,
               "ext_faultpath: lever ablation (off | batch | huge | coalesce | all) for "
               "ffmpeg and image under reap and faasnap (record A / test B), plus a "
               "64-way same-snapshot burst for the coalesce lever\n");
  std::vector<std::string> rows;
  for (const std::string& function : {std::string("ffmpeg"), std::string("image")}) {
    for (RestoreMode mode : {RestoreMode::kReap, RestoreMode::kFaasnap}) {
      for (const LeverSetting& setting : Settings()) {
        PlatformConfig config;
        config.fault_path = setting.fp;
        Experiment experiment(function, config);
        experiment.Record(MakeInputA(experiment.generator().spec()));
        InvocationReport r =
            experiment.Invoke(mode, MakeInputB(experiment.generator().spec()));
        rows.push_back(Row(function, mode, setting, r));
      }
    }
  }
  std::vector<std::string> burst;
  for (const std::string& function : {std::string("hello-world"), std::string("image")}) {
    burst.push_back(BurstRow(function, "off", 64, false));
    burst.push_back(BurstRow(function, "coalesce", 64, true));
  }
  std::printf("{\n  \"bench\": \"ext_faultpath\",\n");
  std::printf("  \"levers\": [\"off\", \"batch\", \"huge\", \"coalesce\", \"all\"],\n");
  std::printf("  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%s%s\n", rows[i].c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n  \"burst\": [\n");
  for (size_t i = 0; i < burst.size(); ++i) {
    std::printf("%s%s\n", burst[i].c_str(), i + 1 < burst.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main() {
  faasnap::bench::Run();
  return 0;
}

// Figure 11: performance with snapshots and related files on remote block
// storage (EBS io2: 64K IOPS, 1 GB/s). All twelve functions under Firecracker,
// REAP, and FaaSnap.
//
// Paper shape: Firecracker suffers most from the higher per-read latency; REAP
// and FaaSnap both improve on it substantially; FaaSnap beats REAP for most
// functions except the very stable-working-set ones (hello-world, read-list,
// recognition) where REAP's single blocking fetch is most efficient. On average
// FaaSnap-on-EBS is ~2x Firecracker and ~1.2x REAP, and ~28% slower than
// FaaSnap-on-NVMe.

#include <cstdio>

#include <map>

#include "bench/bench_util.h"

namespace faasnap {
namespace bench {
namespace {

void Run(int reps) {
  PrintBanner("Figure 11", "execution time with snapshots on remote storage (ms)");

  PlatformConfig ebs_config;
  ebs_config.disk = EbsIo2Profile();

  TextTable table({"function", "firecracker", "reap", "faasnap", "faasnap (local nvme)"});
  double fc_sum = 0;
  double reap_sum = 0;
  double local_sum = 0;
  int count = 0;
  std::vector<std::string> functions = SyntheticFunctionNames();
  for (const std::string& f : BenchmarkFunctionNames()) {
    functions.push_back(f);
  }
  for (const std::string& function : functions) {
    Result<FunctionSpec> spec = FindFunction(function);
    FAASNAP_CHECK_OK(spec.status());
    auto test_input = spec->fixed_input
                          ? std::function<WorkloadInput(const FunctionSpec&)>(MakeInputA)
                          : std::function<WorkloadInput(const FunctionSpec&)>(MakeInputB);
    std::map<RestoreMode, CellStats> cells;
    for (RestoreMode mode :
         {RestoreMode::kFirecracker, RestoreMode::kReap, RestoreMode::kFaasnap}) {
      cells[mode] = MeasureCell(function, mode, MakeInputA, test_input, ebs_config, reps);
    }
    CellStats local =
        MeasureCell(function, RestoreMode::kFaasnap, MakeInputA, test_input, PlatformConfig{},
                    reps);
    const double faasnap = cells[RestoreMode::kFaasnap].mean_ms;
    fc_sum += cells[RestoreMode::kFirecracker].mean_ms / faasnap;
    reap_sum += cells[RestoreMode::kReap].mean_ms / faasnap;
    local_sum += faasnap / local.mean_ms;
    ++count;
    table.AddRow({function, StatCell(cells[RestoreMode::kFirecracker]),
                  StatCell(cells[RestoreMode::kReap]), StatCell(cells[RestoreMode::kFaasnap]),
                  StatCell(local)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("averages on EBS: firecracker/faasnap = %.2fx, reap/faasnap = %.2fx,\n"
              "faasnap(EBS)/faasnap(NVMe) = %.2fx\n",
              fc_sum / count, reap_sum / count, local_sum / count);
  std::printf("Paper anchors: 2.06x over Firecracker, 1.20x over REAP, 28%% slower than\n"
              "local NVMe; REAP leads FaaSnap only on hello-world/read-list/recognition.\n");
}

}  // namespace
}  // namespace bench
}  // namespace faasnap

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  faasnap::bench::Run(reps);
  return 0;
}

#!/usr/bin/env python3
"""Incremental clang-tidy driver for CI.

Runs clang-tidy over every translation unit in the compilation database, but
skips files whose (content, .clang-tidy, compile flags) hash is recorded in a
cache manifest from a previous clean run — so a warm CI cache only re-analyzes
files that actually changed. On completion it prints a per-check summary
(survives log truncation better than 10k raw lines) and exits non-zero if any
diagnostic fired.

Usage:
  tools/ci/run_clang_tidy.py --build-dir build --cache-file .tidy-cache/manifest.json \
      [--clang-tidy clang-tidy-18] [--jobs N]
"""

import argparse
import collections
import concurrent.futures
import hashlib
import json
import os
import re
import subprocess
import sys

# clang-tidy diagnostic line: file:line:col: warning: message [check-name]
DIAG_RE = re.compile(r"^(?P<file>[^:\s][^:]*):(?P<line>\d+):\d+:\s+"
                     r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[^\]]+)\]\s*$")


def file_digest(path, extra=b""):
    h = hashlib.sha256()
    h.update(extra)
    with open(path, "rb") as f:
        h.update(f.read())
    return h.hexdigest()


def load_manifest(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return {}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--cache-file", default=".tidy-cache/manifest.json")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--source-filter", default=r"/(src|tools)/.*\.cc$",
                        help="regex a TU's absolute path must match to be analyzed")
    args = parser.parse_args()

    with open(os.path.join(args.build_dir, "compile_commands.json"), encoding="utf-8") as f:
        database = json.load(f)

    config_hash = file_digest(".clang-tidy").encode()
    source_filter = re.compile(args.source_filter)

    # One entry per TU; dedupe (headers are covered via -header-filter).
    todo, skipped = [], 0
    manifest = load_manifest(args.cache_file)
    new_manifest = {}
    seen = set()
    for entry in database:
        path = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        if path in seen or not source_filter.search(path):
            continue
        seen.add(path)
        # The command matters: a flag change must invalidate the cache entry.
        command = entry.get("command") or " ".join(entry.get("arguments", []))
        digest = file_digest(path, extra=config_hash + command.encode())
        if manifest.get(path) == digest:
            new_manifest[path] = digest
            skipped += 1
        else:
            todo.append((path, digest))

    print(f"clang-tidy: {len(todo)} file(s) to analyze, {skipped} unchanged (cached)")

    def run_one(item):
        path, digest = item
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, digest, proc.stdout + proc.stderr

    per_check = collections.Counter()
    diagnostics = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, digest, output in pool.map(run_one, todo):
            file_diags = []
            for line in output.splitlines():
                m = DIAG_RE.match(line)
                if m:
                    per_check[m.group("check")] += 1
                    file_diags.append(line)
            if file_diags:
                diagnostics.extend(file_diags)
            else:
                new_manifest[path] = digest  # clean: cacheable for the next run

    os.makedirs(os.path.dirname(args.cache_file) or ".", exist_ok=True)
    with open(args.cache_file, "w", encoding="utf-8") as f:
        json.dump(new_manifest, f, indent=1, sort_keys=True)

    if not diagnostics:
        print("clang-tidy: clean")
        return 0
    print(f"clang-tidy: {len(diagnostics)} diagnostic(s):")
    for check, count in per_check.most_common():
        print(f"  {check:50s} {count}")
    print()
    for line in diagnostics:
        print(line)
    return 1


if __name__ == "__main__":
    sys.exit(main())

// faasnap_lint: a small project-specific static analyzer, run as a ctest.
//
// Clang-tidy and -Wthread-safety catch generic C++ hazards; this linter
// enforces the rules that are specific to this codebase and that no generic
// tool knows about:
//
//   * layering     — #include edges between src/ directories must follow the
//                    DAG in tools/lint/layers.json (e.g. sim/ never includes
//                    daemon/; common/ includes nothing).
//   * determinism  — simulation code must not reach for wall clocks or
//                    ambient randomness (std::chrono::system_clock, rand(),
//                    std::random_device, time(), ...); the sim clock and the
//                    seeded RNG are the only sanctioned sources. Files that
//                    measure the real kernel (src/native/) are allowlisted.
//   * container    — std::unordered_{map,set} are banned outside an explicit
//                    allowlist: their iteration order is
//                    implementation-defined and has twice nearly leaked into
//                    "deterministic" traces. Lookup-only uses are allowlisted.
//   * tracer-pairing — a file that opens spans (->Begin() / .Begin()) must
//                    also close them (->End() / .End()); a missing End leaves
//                    the span open forever and skews critical-path analysis.
//   * void-comment — discarding a value with `(void)expr;` requires a
//                    justifying comment on the same line. Status is
//                    [[nodiscard]], so this is the only sanctioned way to
//                    drop one — and it must say why.
//   * obs-naming   — metric and span names are lowercase dotted identifiers
//                    (`faults.batch_installs`, `disk.read`). Metric names need
//                    at least two segments (a subsystem prefix); span names may
//                    be single-segment (`invoke`). Checked at Get{Counter,
//                    Gauge,Histogram}/Begin/Instant/Complete/InternName call
//                    sites with a string literal on the same line, and at
//                    `constexpr std::string_view` definitions.
//
// The analyzer is deliberately lexical (strip comments/strings, then scan
// tokens): it has no false-negative-free guarantee, but it is fast, has no
// compiler dependency, and every rule here is one a tokenizer can check
// reliably. See docs/static_analysis.md for the full catalog and the
// suppression mechanism.

#ifndef FAASNAP_TOOLS_LINT_LINT_H_
#define FAASNAP_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace faasnap {
namespace lint {

struct Violation {
  std::string file;  // repo-relative path, e.g. "src/mem/page_cache.cc"
  int line = 0;      // 1-based
  std::string rule;  // "layering" | "determinism" | "container" | "tracer-pairing" |
                     // "void-comment" | "obs-naming"
  std::string message;

  bool operator==(const Violation& other) const = default;
};

struct Config {
  // Directory under src/ -> directories it may include from. A directory may
  // always include itself. Directories absent from the map may include
  // nothing (and including *them* is still legal: edges are checked from the
  // includer's row).
  std::map<std::string, std::set<std::string>> layers;
  // Repo-relative path prefixes exempt from the determinism rule.
  std::vector<std::string> determinism_allow;
  // Repo-relative path prefixes exempt from the container rule.
  std::vector<std::string> container_allow;
  // Repo-relative path prefixes exempt from the tracer-pairing rule (the
  // tracer's own implementation opens and closes spans asymmetrically).
  std::vector<std::string> tracer_allow;
};

// Parses the layers.json config (strict subset of JSON: one object holding
// string arrays and one object-of-string-arrays; keys starting with '_' are
// ignored as comments).
Result<Config> ParseConfig(std::string_view json);

// Replaces comments, string literals, and character literals with spaces,
// preserving line structure, so token scans cannot match inside them.
// Exposed for testing.
std::string StripCommentsAndStrings(std::string_view content);

// Lints a single file. `path` is the repo-relative path; `content` its text.
std::vector<Violation> LintFile(const Config& config, std::string_view path,
                                std::string_view content);

// Walks `root`/src recursively, linting every *.h / *.cc file in
// deterministic (sorted) path order.
Result<std::vector<Violation>> LintTree(const Config& config, const std::string& root);

}  // namespace lint
}  // namespace faasnap

#endif  // FAASNAP_TOOLS_LINT_LINT_H_

// faasnap_lint: a small project-specific static analyzer, run as a ctest.
//
// Clang-tidy and -Wthread-safety catch generic C++ hazards; this linter
// enforces the rules that are specific to this codebase and that no generic
// tool knows about:
//
//   * layering     — #include edges between src/ directories must follow the
//                    DAG in tools/lint/layers.json (e.g. sim/ never includes
//                    daemon/; common/ includes nothing).
//   * determinism  — simulation code must not reach for wall clocks or
//                    ambient randomness (std::chrono::system_clock, rand(),
//                    std::random_device, time(), ...); the sim clock and the
//                    seeded RNG are the only sanctioned sources. Files that
//                    measure the real kernel (src/native/) are allowlisted.
//   * container    — std::unordered_{map,set} are banned outside an explicit
//                    allowlist: their iteration order is
//                    implementation-defined and has twice nearly leaked into
//                    "deterministic" traces. Lookup-only uses are allowlisted.
//   * tracer-pairing — a file that opens spans (->Begin() / .Begin()) must
//                    also close them (->End() / .End()); a missing End leaves
//                    the span open forever and skews critical-path analysis.
//   * void-comment — discarding a value with `(void)expr;` requires a
//                    justifying comment on the same line. Status is
//                    [[nodiscard]], so this is the only sanctioned way to
//                    drop one — and it must say why.
//   * obs-naming   — metric and span names are lowercase dotted identifiers
//                    (`faults.batch_installs`, `disk.read`). Metric names need
//                    at least two segments (a subsystem prefix); span names may
//                    be single-segment (`invoke`). Checked at Get{Counter,
//                    Gauge,Histogram}/Begin/Instant/Complete/InternName call
//                    sites with a string literal on the same line, and at
//                    `constexpr std::string_view` definitions.
//
// v2 adds three semantic passes. The first is per-declaration; the other two
// build a symbol table over every file in one walk and then run cross-TU:
//
//   * raw-unit     — a declaration typed u?int{32,64}_t whose identifier
//                    carries a unit suffix (_us, _ns, _ms, _bytes, _pages —
//                    including the trailing-underscore member form pool_bytes_)
//                    is banned in src/: use Duration/SimTime for times,
//                    ByteCount/PageCount for sizes (src/common/units.h). Bare
//                    names (`bytes`, `pages`, `offset`) stay raw for index
//                    arithmetic; call sites escape via .value().
//   * lock-order   — MutexLock nesting pairs are extracted per function in
//                    every TU (including one level of call indirection:
//                    calling a lock-acquiring method while holding a lock),
//                    merged into one global lock-order graph keyed by
//                    Class::member, and any cycle — including a self-edge,
//                    which is a re-acquisition deadlock for this non-reentrant
//                    Mutex — fails the lint.
//   * gated-metric — metrics for opt-in levers and forensics (prefixes listed
//                    in layers.json `gated_metrics`: faults.batch*,
//                    faults.huge*, faults.coalesced, forensics.*) must
//                    register only when their feature is configured: the
//                    GetCounter/GetGauge/GetHistogram call must sit under an
//                    `if` that tests more than `metrics != nullptr`, or live
//                    in a Configure() method whose src/ callers are all
//                    themselves conditional (checked cross-TU).
//                    Always-on metrics (faults.by_class) are simply not
//                    listed as gated.
//
// The analyzer is deliberately lexical (strip comments/strings, then scan
// tokens with a scope stack): it has no false-negative-free guarantee, but it
// is fast, has no compiler dependency, and every rule here is one a tokenizer
// can check reliably. See docs/static_analysis.md for the full catalog and
// the suppression mechanism.

#ifndef FAASNAP_TOOLS_LINT_LINT_H_
#define FAASNAP_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace faasnap {
namespace lint {

struct Violation {
  std::string file;  // repo-relative path, e.g. "src/mem/page_cache.cc"
  int line = 0;      // 1-based
  std::string rule;  // "layering" | "determinism" | "container" | "tracer-pairing" |
                     // "void-comment" | "obs-naming" | "raw-unit" | "lock-order" |
                     // "gated-metric"
  std::string message;

  bool operator==(const Violation& other) const = default;
};

struct Config {
  // Directory under src/ -> directories it may include from. A directory may
  // always include itself. Directories absent from the map may include
  // nothing (and including *them* is still legal: edges are checked from the
  // includer's row).
  std::map<std::string, std::set<std::string>> layers;
  // Repo-relative path prefixes exempt from the determinism rule.
  std::vector<std::string> determinism_allow;
  // Repo-relative path prefixes exempt from the container rule.
  std::vector<std::string> container_allow;
  // Repo-relative path prefixes exempt from the tracer-pairing rule (the
  // tracer's own implementation opens and closes spans asymmetrically).
  std::vector<std::string> tracer_allow;
  // Repo-relative path prefixes exempt from the raw-unit rule (the unit types
  // themselves store raw integers).
  std::vector<std::string> raw_unit_allow;
  // Repo-relative path prefixes whose MutexLock uses do not feed the global
  // lock-order graph.
  std::vector<std::string> lock_order_allow;
  // Metric-name prefixes that must register conditionally (gated-metric rule).
  std::vector<std::string> gated_metrics;
};

// Cross-TU facts extracted from one file in a single scope-tracked token scan.
// These feed the project-wide symbol table consumed by LintProject().
struct FileFacts {
  std::string path;

  // One direct nesting observation: `inner` was acquired while `outer` was
  // held, inside `function` at `line`. Mutex keys are "Class::member" (or
  // "<filestem>::member" outside any class).
  struct LockEdge {
    std::string outer;
    std::string inner;
    std::string function;  // qualified name of the nesting function
    int line = 0;
  };
  std::vector<LockEdge> lock_edges;

  // Qualified method name ("Class::Method") -> mutex keys it acquires
  // directly anywhere in its body.
  std::map<std::string, std::set<std::string>> method_locks;

  // A call made while at least one lock was held. `callee` is the unqualified
  // name; `receiver_class` is the lexically enclosing class of the call site
  // (used to resolve bare calls to same-class methods). Member calls
  // (x.F() / x->F()) resolve against every class's F.
  struct HeldCall {
    std::vector<std::string> held;  // all mutex keys held at the call
    std::string callee;
    std::string enclosing_class;  // "" for free functions
    bool member_call = false;     // true for x.F() / x->F() with x != this
    int line = 0;
  };
  std::vector<HeldCall> held_calls;

  // A Get{Counter,Gauge,Histogram}("literal") registration of a gated metric.
  struct GatedRegistration {
    std::string metric;    // the literal name
    std::string function;  // unqualified enclosing function name
    bool gated = false;    // under an if testing more than metrics != nullptr
    int line = 0;
  };
  std::vector<GatedRegistration> gated_registrations;

  // A call site of some Configure(...) method, with whether it sits under any
  // meaningful `if`. Used cross-TU to validate in-Configure registrations.
  struct ConfigureCall {
    bool gated = false;
    int line = 0;
  };
  std::vector<ConfigureCall> configure_calls;
};

// Parses the layers.json config (strict subset of JSON: one object holding
// string arrays and one object-of-string-arrays; keys starting with '_' are
// ignored as comments).
Result<Config> ParseConfig(std::string_view json);

// Replaces comments, string literals, and character literals with spaces,
// preserving line structure, so token scans cannot match inside them.
// Exposed for testing.
std::string StripCommentsAndStrings(std::string_view content);

// Lints a single file (all per-file rules). `path` is the repo-relative path;
// `content` its text.
std::vector<Violation> LintFile(const Config& config, std::string_view path,
                                std::string_view content);

// Extracts the cross-TU facts (lock nesting, gated registrations, Configure
// call sites) from a single file. Honors the lock_order_allow /
// gated_metrics config. Exposed for testing.
FileFacts ExtractFacts(const Config& config, std::string_view path,
                       std::string_view content);

// Cross-TU semantic passes over the whole project's facts: builds the global
// lock-order graph (direct nesting + one level of held-call indirection) and
// fails on any cycle; resolves gated-metric registrations that rely on a
// Configure() entry point against that method's call sites.
std::vector<Violation> LintProject(const Config& config,
                                   const std::vector<FileFacts>& facts);

// Walks `root`/{src,bench,tools/report} recursively, linting every *.h / *.cc
// file in deterministic (sorted) path order, then runs the cross-TU passes
// over the collected facts.
Result<std::vector<Violation>> LintTree(const Config& config, const std::string& root);

}  // namespace lint
}  // namespace faasnap

#endif  // FAASNAP_TOOLS_LINT_LINT_H_

// Lint fixture (never compiled): a bare (void) discard with no same-line
// justifying comment. Status is [[nodiscard]], so this is how an error would
// be silently dropped — the rule demands the drop explain itself.

struct FakeStatus {
  bool ok() const { return true; }
};

FakeStatus MightFail();

void BadVoid() {
  (void)MightFail();
}

// Fixture: raw-unit violations. Unit-suffixed identifiers typed as raw
// integers must use the strong types from src/common/units.h instead.
#include <cstdint>

struct TransferStats {
  uint64_t total_bytes = 0;      // violation: ByteCount
  int64_t queue_wait_ns = 0;     // violation: Duration
  uint32_t window_pages = 0;     // violation: PageCount
  uint64_t resident_pages_ = 0;  // violation: member form, PageCount
  uint64_t bytes = 0;            // ok: bare name is sanctioned raw arithmetic
  uint64_t bytes_read = 0;       // ok: suffix is _read, not a unit
  double budget_ms = 0;          // ok: rule covers raw integers only
};

// violation: accessor return type carries _us.
int64_t elapsed_us(uint64_t offset, int64_t deadline_ms) {  // violation: deadline_ms
  // ok: a cast is not a declaration (the '>' breaks the token pair).
  return static_cast<int64_t>(offset) + deadline_ms;
}

// Lint fixture (never compiled): unordered containers are banned outside the
// allowlist because their iteration order is implementation-defined.

#include <string>
#include <unordered_map>
#include <unordered_set>

int BadContainer() {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> seen;
  counts["x"] = 1;
  seen.insert(1);
  return static_cast<int>(counts.size() + seen.size());
}

// Lint fixture (never compiled): seeded obs-naming violations. Metric and
// span names must be lowercase dotted identifiers; metrics additionally need
// a subsystem prefix (>= 2 segments). Exactly 7 lines below violate.

struct FakeTracer {
  int Begin(int t, const char*) { return t; }  // declaration: not a call site
  void End(int) {}
  void Instant(int, const char*) {}
  void Complete(int, int, const char*) {}
  unsigned InternName(const char*) { return 0; }
};
struct FakeRegistry {
  void* GetCounter(const char*) { return nullptr; }
  void* GetGauge(const char*) { return nullptr; }
  void* GetHistogram(const char*) { return nullptr; }
};

void BadObsNames(FakeTracer* spans, FakeTracer& byref, FakeRegistry* metrics) {
  int a = spans->Begin(1, "disk-read");  // violation: hyphen
  spans->End(a);
  int b = byref.Begin(2, "SetupDone");  // violation: uppercase
  byref.End(b);
  spans->Instant(3, "uffd..resolve");     // violation: empty segment
  spans->Complete(4, 5, "loader.chunk");  // valid span name
  spans->InternName("trailing.");         // violation: trailing dot
  metrics->GetCounter("faults");          // violation: metric needs >= 2 segments
  metrics->GetGauge("scheduler.pool_bytes");  // valid metric name
  metrics->GetHistogram("Faults.handling_ns");  // violation: uppercase
  int c = spans->Begin(6, name_variable);  // no literal on the line: skipped
  spans->End(c);
}

constexpr std::string_view kBadName = "disk-Read";  // violation
constexpr std::string_view kGoodName = "disk.read";

// Lint fixture (never compiled): must produce ZERO violations under the
// synthetic path "src/sim/clean.cc". Each statement below is a near-miss for
// one of the rules — this file pins down the linter's false-positive edge.

// #include "src/daemon/daemon.h"   <- commented-out illegal include: ignored
#include "src/common/status.h"

#include <map>
#include <string>

struct CleanProgress {
  long fetch_time() const { return fetch_time_; }  // `time(` only as a suffix
  long fetch_time_ = 0;
};

long CleanFixture(const CleanProgress& p) {
  // rand() and system_clock in a comment must not fire.
  const std::string note = "system_clock and time() in a string must not fire";
  const long big = 1'000'000;  // digit separators are not char literals
  long runtime = p.fetch_time();
  (void)note;  // justified discard: the string exists to tempt the linter
  std::map<std::string, long> ordered;
  ordered["total"] = big + runtime;
  return ordered["total"];
}

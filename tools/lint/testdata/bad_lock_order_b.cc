// Fixture: the other half of the cross-TU ABBA deadlock. Ledger::Flush holds
// Ledger::mu_ and calls Pool::Drain, which (in bad_lock_order_a.cc) acquires
// Pool::mu_ — closing the Ledger::mu_ -> Pool::mu_ -> Ledger::mu_ cycle.

class Ledger {
 public:
  void Record(int v);
  void Flush();
};

void Ledger::Record(int v) {
  MutexLock lock(mu_);
  total_ += v;
}

void Ledger::Flush() {
  MutexLock lock(mu_);
  pool_->Drain();  // acquires Pool::mu_ while Ledger::mu_ is held
}

// Fixture: gated-metric violations. Lever/forensics metrics (prefixes in
// layers.json gated_metrics) must register behind their feature's config
// check; a bare `metrics != nullptr` test does not count.

class FaultPath {
 public:
  void Init(MetricsRegistry* metrics) {
    // violation: lever metric registered with no condition at all.
    batch_ctr_ = metrics->GetCounter("faults.batch_installs");
    if (metrics != nullptr) {
      // violation: null check alone is not a feature gate.
      huge_ctr_ = metrics->GetCounter("faults.huge_maps");
    }
    if (metrics != nullptr && config_.fault_coalescing) {
      // ok: registration is behind the lever's config flag.
      coalesced_ctr_ = metrics->GetCounter("faults.coalesced");
    }
    // ok: faults.by_class is always-on (not listed in gated_metrics).
    class_ctr_ = metrics->GetCounter("faults.by_class");
  }
};

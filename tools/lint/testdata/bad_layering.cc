// Lint fixture (never compiled): linted under the synthetic path
// "src/sim/bad_layering.cc", so both includes below are illegal edges —
// sim/ may only include common/.

#include "src/daemon/daemon.h"
#include "src/core/prefetch_loader.h"
#include "src/common/status.h"

int SimBadLayering() { return 0; }

// Fixture: half of a cross-TU ABBA deadlock. Pool::Drain holds Pool::mu_
// and calls into Ledger::Record, which (in bad_lock_order_b.cc) acquires
// Ledger::mu_ — the opposite nesting of Ledger::Flush. Also contains a
// same-class re-acquisition deadlock (Pool::Reserve -> Pool::Grow).

class Pool {
 public:
  void Drain();
  void Reserve();
  void Grow();
};

void Pool::Drain() {
  MutexLock lock(mu_);
  ledger_->Record(1);  // acquires Ledger::mu_ while Pool::mu_ is held
}

void Pool::Reserve() {
  MutexLock lock(mu_);
  Grow();  // bare same-class call: Grow re-acquires the non-reentrant mu_
}

void Pool::Grow() {
  MutexLock lock(mu_);
}

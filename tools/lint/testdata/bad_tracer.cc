// Lint fixture (never compiled): opens a span and never closes it — the
// tracer-pairing rule requires an End/Complete somewhere in any file that
// calls Begin.

struct FakeTracer {
  int Begin(int t) { return t; }
  void End(int, int) {}
};

int BadTracer(FakeTracer* spans) {
  int span = spans->Begin(42);
  return span;
}

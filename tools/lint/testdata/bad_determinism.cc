// Lint fixture (never compiled): every statement below reaches for ambient
// time or randomness, which the determinism rule bans outside the allowlist.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long BadDeterminism() {
  auto wall = std::chrono::system_clock::now();
  std::random_device entropy;
  int noise = rand();
  long stamp = time(nullptr);
  (void)wall;  // fixture: silence unused warnings if ever compiled
  return noise + stamp + static_cast<long>(entropy());
}

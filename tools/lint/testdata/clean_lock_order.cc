// Fixture: consistent lock nesting across classes — acyclic, must pass.
// Cache::Fill holds Cache::mu_ and calls Ledger-like code, but nothing ever
// nests the other way, and unlocked same-class helpers are fine.

class Cache {
 public:
  void Fill();
  void Touch();
  void Compact();
};

void Cache::Fill() {
  MutexLock lock(mu_);
  Compact();  // bare call to an unlocked helper: no edge
  entries_.push_back(1);
}

void Cache::Touch() {
  MutexLock lock(mu_);
  stats_->Bump();  // Stats::Bump locks Stats::mu_: a one-way edge, no cycle
}

void Cache::Compact() {
  // no lock: called with mu_ held by Fill.
  dirty_ = false;
}

class Stats {
 public:
  void Bump();
};

void Stats::Bump() {
  MutexLock lock(mu_);
  ++count_;
}

// faasnap_lint CLI: lints the repo's src/, bench/, and tools/report/ trees
// against tools/lint/layers.json.
//
//   faasnap_lint [--summary-out=<path>] [repo_root]     (default root: .)
//
// Prints a per-rule summary followed by every violation as file:line, and
// exits non-zero if anything fired — so it slots directly into ctest and CI.
// --summary-out writes the per-rule counts as a small JSON artifact (uploaded
// by the CI lint job so a red run's headline survives log truncation).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "tools/lint/lint.h"

namespace {

bool WriteSummary(const std::string& path,
                  const std::map<std::string, int>& per_rule, size_t total) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << "{\n  \"total\": " << total << ",\n  \"per_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : per_rule) {
    out << (first ? "" : ",") << "\n    \"" << rule << "\": " << count;
    first = false;
  }
  out << (per_rule.empty() ? "" : "\n  ") << "}\n}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string summary_out;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kSummaryFlag[] = "--summary-out=";
    if (std::strncmp(argv[i], kSummaryFlag, sizeof(kSummaryFlag) - 1) == 0) {
      summary_out = argv[i] + sizeof(kSummaryFlag) - 1;
    } else {
      root = argv[i];
    }
  }
  const std::string config_path = root + "/tools/lint/layers.json";

  std::ifstream config_in(config_path, std::ios::binary);
  if (!config_in) {
    std::fprintf(stderr, "faasnap_lint: cannot read %s\n", config_path.c_str());
    return 2;
  }
  std::ostringstream config_text;
  config_text << config_in.rdbuf();

  auto config = faasnap::lint::ParseConfig(config_text.str());
  if (!config.ok()) {
    std::fprintf(stderr, "faasnap_lint: %s\n", config.status().ToString().c_str());
    return 2;
  }

  auto violations = faasnap::lint::LintTree(*config, root);
  if (!violations.ok()) {
    std::fprintf(stderr, "faasnap_lint: %s\n", violations.status().ToString().c_str());
    return 2;
  }

  std::map<std::string, int> per_rule;
  for (const auto& v : *violations) {
    ++per_rule[v.rule];
  }
  if (!summary_out.empty() && !WriteSummary(summary_out, per_rule, violations->size())) {
    std::fprintf(stderr, "faasnap_lint: cannot write %s\n", summary_out.c_str());
    return 2;
  }

  if (violations->empty()) {
    std::printf("faasnap_lint: clean (0 violations)\n");
    return 0;
  }

  // Per-rule summary first (CI logs truncate; the headline must survive).
  std::printf("faasnap_lint: %zu violation(s):\n", violations->size());
  for (const auto& [rule, count] : per_rule) {
    std::printf("  %-16s %d\n", rule.c_str(), count);
  }
  for (const auto& v : *violations) {
    std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(), v.message.c_str());
  }
  return 1;
}

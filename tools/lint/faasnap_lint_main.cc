// faasnap_lint CLI: lints the repo's src/ tree against tools/lint/layers.json.
//
//   faasnap_lint [repo_root]     (default: current directory)
//
// Prints a per-rule summary followed by every violation as file:line, and
// exits non-zero if anything fired — so it slots directly into ctest and CI.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  const std::string config_path = root + "/tools/lint/layers.json";

  std::ifstream config_in(config_path, std::ios::binary);
  if (!config_in) {
    std::fprintf(stderr, "faasnap_lint: cannot read %s\n", config_path.c_str());
    return 2;
  }
  std::ostringstream config_text;
  config_text << config_in.rdbuf();

  auto config = faasnap::lint::ParseConfig(config_text.str());
  if (!config.ok()) {
    std::fprintf(stderr, "faasnap_lint: %s\n", config.status().ToString().c_str());
    return 2;
  }

  auto violations = faasnap::lint::LintTree(*config, root);
  if (!violations.ok()) {
    std::fprintf(stderr, "faasnap_lint: %s\n", violations.status().ToString().c_str());
    return 2;
  }

  if (violations->empty()) {
    std::printf("faasnap_lint: clean (0 violations)\n");
    return 0;
  }

  // Per-rule summary first (CI logs truncate; the headline must survive).
  std::map<std::string, int> per_rule;
  for (const auto& v : *violations) {
    ++per_rule[v.rule];
  }
  std::printf("faasnap_lint: %zu violation(s):\n", violations->size());
  for (const auto& [rule, count] : per_rule) {
    std::printf("  %-16s %d\n", rule.c_str(), count);
  }
  for (const auto& v : *violations) {
    std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(), v.message.c_str());
  }
  return 1;
}

#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

namespace faasnap {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the restricted shape of layers.json: one top-level
// object whose values are either arrays of strings or one object of arrays of
// strings. No numbers, booleans, nesting beyond that, or escapes other than
// \" and \\. Strictness is a feature: a malformed config fails the lint run
// loudly instead of silently enforcing nothing.
// ---------------------------------------------------------------------------
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return InvalidArgumentError(std::string("layers.json: expected '") + c + "' at offset " +
                                  std::to_string(pos_));
    }
    ++pos_;
    return OkStatus();
  }

  Result<std::string> ParseString() {
    RETURN_IF_ERROR(Consume('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        c = text_[pos_++];  // only \" and \\ occur in this config
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("layers.json: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<std::vector<std::string>> ParseStringArray() {
    RETURN_IF_ERROR(Consume('['));
    std::vector<std::string> out;
    if (Peek() == ']') {
      RETURN_IF_ERROR(Consume(']'));
      return out;
    }
    while (true) {
      ASSIGN_OR_RETURN(std::string item, ParseString());
      out.push_back(std::move(item));
      if (Peek() == ',') {
        RETURN_IF_ERROR(Consume(','));
        continue;
      }
      RETURN_IF_ERROR(Consume(']'));
      return out;
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool PathAllowed(const std::vector<std::string>& prefixes, std::string_view path) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) { return path.rfind(p, 0) == 0; });
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Identifiers banned outright in simulation code: ambient time and ambient
// randomness both make traces non-reproducible (determinism_test requires
// bit-identical output across runs).
bool IsBannedIdentifier(std::string_view ident) {
  return ident == "system_clock" || ident == "high_resolution_clock" ||
         ident == "steady_clock" || ident == "random_device" || ident == "gettimeofday" ||
         ident == "clock_gettime" || ident == "timespec_get";
}

// Identifiers banned only as calls (`name(`): these are common enough words
// that a field like `fetch_time_` must not trip the rule.
bool IsBannedCall(std::string_view ident) {
  return ident == "rand" || ident == "srand" || ident == "time" || ident == "clock";
}

// First directory component after "src/", or "" when not under src/.
std::string SrcDirOf(std::string_view path) {
  constexpr std::string_view kSrc = "src/";
  if (path.rfind(kSrc, 0) != 0) {
    return "";
  }
  const size_t slash = path.find('/', kSrc.size());
  if (slash == std::string_view::npos) {
    return "";  // file directly under src/ belongs to no layer
  }
  return std::string(path.substr(kSrc.size(), slash - kSrc.size()));
}

// Lowercase dotted identifier: '.'-joined segments of [a-z0-9_]+, at least
// `min_segments` of them. This is the naming convention for every metric and
// span name (metrics additionally need a subsystem prefix, i.e. >= 2
// segments); hyphens and uppercase are banned so names survive round-trips
// through JSON keys, Prometheus-style tooling, and shell pipelines unquoted.
bool IsLowerDottedName(std::string_view name, size_t min_segments) {
  size_t segments = 0;
  size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) {
        return false;  // empty segment ("a..b", ".a")
      }
      ++segments;
      seg_len = 0;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      ++seg_len;
    } else {
      return false;
    }
  }
  if (seg_len == 0) {
    return false;  // empty name or trailing '.'
  }
  ++segments;
  return segments >= min_segments;
}

// First double-quoted literal in `raw` at or after `from`. Returns true and
// sets *out / *next (one past the closing quote) when found.
bool FirstLiteral(std::string_view raw, size_t from, std::string_view* out, size_t* next) {
  const size_t open = raw.find('"', from);
  if (open == std::string_view::npos) {
    return false;
  }
  const size_t close = raw.find('"', open + 1);
  if (close == std::string_view::npos) {
    return false;
  }
  *out = raw.substr(open + 1, close - open - 1);
  *next = close + 1;
  return true;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Tokenizer for the semantic passes. Runs on the stripped text (comments and
// literals are already spaces) and — because the stripper is length-preserving
// — every token's `begin` offset is also valid in the raw text, which is how
// blanked string literals are recovered at call sites.
//
// Preprocessor lines (and their backslash-continuations) are skipped entirely:
// macro bodies and #if/#else alternatives would otherwise unbalance the brace
// tracking. The layering rule reads #include lines separately from the raw
// text, so nothing is lost.
// ---------------------------------------------------------------------------
struct Token {
  std::string_view text;
  size_t begin = 0;  // byte offset into the stripped (== raw) text
  int line = 1;      // 1-based
  bool ident = false;
};

std::vector<Token> Tokenize(std::string_view stripped) {
  const std::vector<std::string_view> lines = SplitLines(stripped);
  std::vector<char> skip(lines.size(), 0);
  bool continuation = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t first = lines[i].find_first_not_of(" \t");
    const bool preproc = first != std::string_view::npos && lines[i][first] == '#';
    skip[i] = (continuation || preproc) ? 1 : 0;
    const size_t last = lines[i].find_last_not_of(" \t\r");
    continuation = skip[i] != 0 && last != std::string_view::npos && lines[i][last] == '\\';
  }
  std::vector<Token> toks;
  size_t offset = 0;
  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string_view line = lines[li];
    if (skip[li] == 0) {
      size_t p = 0;
      while (p < line.size()) {
        const char c = line[p];
        if (c == ' ' || c == '\t' || c == '\r') {
          ++p;
          continue;
        }
        Token t;
        t.begin = offset + p;
        t.line = static_cast<int>(li) + 1;
        if (IsIdentChar(c)) {
          size_t e = p;
          while (e < line.size() && IsIdentChar(line[e])) {
            ++e;
          }
          t.text = line.substr(p, e - p);
          t.ident = true;
          p = e;
        } else {
          size_t len = 1;
          if (p + 1 < line.size() &&
              ((c == ':' && line[p + 1] == ':') || (c == '-' && line[p + 1] == '>'))) {
            len = 2;
          }
          t.text = line.substr(p, len);
          p += len;
        }
        toks.push_back(t);
      }
    }
    offset += line.size() + 1;
  }
  return toks;
}

// --- raw-unit helpers -------------------------------------------------------

bool IsRawIntType(std::string_view t) {
  return t == "uint64_t" || t == "int64_t" || t == "uint32_t" || t == "int32_t";
}

// The unit suffix carried by `ident` (after stripping one trailing '_' for
// member names), or empty. Bare names like `bytes` or `ns` are not suffixed:
// they are the sanctioned spelling for raw index/offset arithmetic.
std::string_view UnitSuffixOf(std::string_view ident) {
  if (!ident.empty() && ident.back() == '_') {
    ident.remove_suffix(1);
  }
  static constexpr std::string_view kSuffixes[] = {"_us", "_ns", "_ms", "_bytes", "_pages"};
  for (const std::string_view s : kSuffixes) {
    if (ident.size() > s.size() && ident.substr(ident.size() - s.size()) == s) {
      return s;
    }
  }
  return {};
}

const char* UnitTypeSuggestion(std::string_view suffix) {
  if (suffix == "_bytes") {
    return "ByteCount";
  }
  if (suffix == "_pages") {
    return "PageCount";
  }
  return "Duration (or SimTime for absolute times)";
}

// Ubiquitous STL container/iterator method names: member calls to these are
// overwhelmingly `field_.size()`-style container operations, so resolving
// them against same-named lock-acquiring methods by unqualified name alone
// would fabricate edges (e.g. MetricsRegistry::size() holds mu_ and calls
// entries_.size() — a std::list call, not recursion). Qualified calls still
// resolve exactly.
bool IsCommonContainerMethod(std::string_view t) {
  return t == "size" || t == "empty" || t == "begin" || t == "end" || t == "clear" ||
         t == "count" || t == "find" || t == "insert" || t == "erase" ||
         t == "push_back" || t == "pop_back" || t == "front" || t == "back" ||
         t == "reserve" || t == "at" || t == "emplace" || t == "emplace_back" ||
         t == "get" || t == "reset" || t == "data" || t == "c_str";
}

// Identifiers that look like calls (`name(`) but never are, or that open
// constructs the function detector must not mistake for definitions.
bool IsNonCallKeyword(std::string_view t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" || t == "catch" ||
         t == "return" || t == "sizeof" || t == "alignof" || t == "decltype" ||
         t == "static_assert" || t == "noexcept" || t == "throw" || t == "alignas" ||
         t == "new" || t == "delete" || t == "case" || t == "requires" || t == "assert";
}

}  // namespace

Result<Config> ParseConfig(std::string_view json) {
  JsonCursor cur(json);
  Config config;
  RETURN_IF_ERROR(cur.Consume('{'));
  if (cur.Peek() == '}') {
    RETURN_IF_ERROR(cur.Consume('}'));
    if (!cur.AtEnd()) {
      return InvalidArgumentError("layers.json: trailing content after top-level object");
    }
    return config;
  }
  while (true) {
    ASSIGN_OR_RETURN(std::string key, cur.ParseString());
    RETURN_IF_ERROR(cur.Consume(':'));
    if (!key.empty() && key[0] == '_') {
      // Comment key: value must still be a string array; discard it.
      RETURN_IF_ERROR(cur.ParseStringArray().status());
    } else if (key == "layers") {
      RETURN_IF_ERROR(cur.Consume('{'));
      while (cur.Peek() != '}') {
        ASSIGN_OR_RETURN(std::string dir, cur.ParseString());
        RETURN_IF_ERROR(cur.Consume(':'));
        ASSIGN_OR_RETURN(std::vector<std::string> deps, cur.ParseStringArray());
        config.layers[dir] = std::set<std::string>(deps.begin(), deps.end());
        if (cur.Peek() == ',') {
          RETURN_IF_ERROR(cur.Consume(','));
        }
      }
      RETURN_IF_ERROR(cur.Consume('}'));
    } else if (key == "determinism_allow") {
      ASSIGN_OR_RETURN(config.determinism_allow, cur.ParseStringArray());
    } else if (key == "container_allow") {
      ASSIGN_OR_RETURN(config.container_allow, cur.ParseStringArray());
    } else if (key == "tracer_allow") {
      ASSIGN_OR_RETURN(config.tracer_allow, cur.ParseStringArray());
    } else if (key == "raw_unit_allow") {
      ASSIGN_OR_RETURN(config.raw_unit_allow, cur.ParseStringArray());
    } else if (key == "lock_order_allow") {
      ASSIGN_OR_RETURN(config.lock_order_allow, cur.ParseStringArray());
    } else if (key == "gated_metrics") {
      ASSIGN_OR_RETURN(config.gated_metrics, cur.ParseStringArray());
    } else {
      return InvalidArgumentError("layers.json: unknown key \"" + key + "\"");
    }
    if (cur.Peek() == ',') {
      RETURN_IF_ERROR(cur.Consume(','));
      continue;
    }
    RETURN_IF_ERROR(cur.Consume('}'));
    break;
  }
  if (!cur.AtEnd()) {
    return InvalidArgumentError("layers.json: trailing content after top-level object");
  }
  // Reject cycles up front: a cyclic "DAG" would make the layering rule
  // meaningless. Kahn's algorithm over the declared edges.
  {
    std::map<std::string, int> indegree;
    for (const auto& [dir, deps] : config.layers) {
      indegree.emplace(dir, 0);
      for (const std::string& d : deps) {
        indegree.emplace(d, 0);
      }
    }
    for (const auto& [dir, deps] : config.layers) {
      (void)dir;  // only the edge targets matter for in-degree
      for (const std::string& d : deps) {
        ++indegree[d];
      }
    }
    std::vector<std::string> ready;
    for (const auto& [dir, deg] : indegree) {
      if (deg == 0) {
        ready.push_back(dir);
      }
    }
    size_t removed = 0;
    while (!ready.empty()) {
      const std::string dir = ready.back();
      ready.pop_back();
      ++removed;
      auto it = config.layers.find(dir);
      if (it == config.layers.end()) {
        continue;
      }
      for (const std::string& d : it->second) {
        if (--indegree[d] == 0) {
          ready.push_back(d);
        }
      }
    }
    if (removed != indegree.size()) {
      return InvalidArgumentError("layers.json: layering graph has a cycle");
    }
  }
  return config;
}

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  char prev_code = '\0';  // last code character kept (for digit-separator detection)
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && !IsIdentChar(prev_code)) {
          // `'` after an identifier character is a digit separator
          // (1'000'000) or a user-defined literal, not a character literal.
          state = State::kChar;
          out[i] = ' ';
        } else {
          prev_code = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          prev_code = '\0';
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
          prev_code = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          prev_code = ' ';
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          prev_code = ' ';
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Violation> LintFile(const Config& config, std::string_view path,
                                std::string_view content) {
  std::vector<Violation> out;
  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<std::string_view> lines = SplitLines(stripped);
  const std::vector<std::string_view> raw_lines = SplitLines(content);
  const std::string own_dir = SrcDirOf(path);

  auto add = [&](int line, const char* rule, std::string message) {
    out.push_back(Violation{std::string(path), line, rule, std::move(message)});
  };

  // --- layering: every #include "src/<dir>/..." must be a declared edge. ---
  // Includes are parsed from the stripped text so commented-out includes
  // don't count.
  if (!own_dir.empty()) {
    const auto allowed_it = config.layers.find(own_dir);
    for (size_t i = 0; i < lines.size(); ++i) {
      std::string_view line = lines[i];
      const size_t hash = line.find_first_not_of(" \t");
      if (hash == std::string_view::npos || line[hash] != '#') {
        continue;
      }
      // The stripper blanked the quoted path, so re-read it from the raw line.
      std::string_view raw = raw_lines[i];
      const size_t inc = raw.find("#include");
      if (inc == std::string_view::npos) {
        continue;
      }
      const size_t open = raw.find('"', inc);
      if (open == std::string_view::npos) {
        continue;  // <system> include
      }
      const size_t close = raw.find('"', open + 1);
      if (close == std::string_view::npos) {
        continue;
      }
      const std::string_view target = raw.substr(open + 1, close - open - 1);
      const std::string dep_dir = SrcDirOf(target);
      if (dep_dir.empty() || dep_dir == own_dir) {
        continue;
      }
      const bool allowed =
          allowed_it != config.layers.end() && allowed_it->second.count(dep_dir) > 0;
      if (!allowed) {
        add(static_cast<int>(i + 1), "layering",
            "src/" + own_dir + "/ may not include src/" + dep_dir +
                "/ (edge not in tools/lint/layers.json)");
      }
    }
  }

  const bool determinism_exempt = PathAllowed(config.determinism_allow, path);
  const bool container_exempt = PathAllowed(config.container_allow, path);

  // --- determinism + container: scan identifier tokens line by line. ---
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    size_t p = 0;
    while (p < line.size()) {
      if (!IsIdentChar(line[p])) {
        ++p;
        continue;
      }
      size_t end = p;
      while (end < line.size() && IsIdentChar(line[end])) {
        ++end;
      }
      const std::string_view ident = line.substr(p, end - p);
      // Skip pure numbers (IsIdentChar admits digits).
      if (std::isdigit(static_cast<unsigned char>(ident[0])) == 0) {
        const bool preceded_by_scope_or_dot =
            p >= 1 && (line[p - 1] == '.' ||
                       (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':'));
        size_t after = end;
        while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
          ++after;
        }
        const bool is_call = after < line.size() && line[after] == '(';
        if (!determinism_exempt) {
          if (IsBannedIdentifier(ident)) {
            add(static_cast<int>(i + 1), "determinism",
                "banned non-deterministic source '" + std::string(ident) +
                    "' (use the sim clock / seeded RNG, or allowlist in layers.json)");
          } else if (IsBannedCall(ident) && is_call && !preceded_by_scope_or_dot) {
            add(static_cast<int>(i + 1), "determinism",
                "banned non-deterministic call '" + std::string(ident) +
                    "()' (use the sim clock / seeded RNG, or allowlist in layers.json)");
          }
        }
        if (!container_exempt &&
            (ident == "unordered_map" || ident == "unordered_set")) {
          add(static_cast<int>(i + 1), "container",
              "std::" + std::string(ident) +
                  " has implementation-defined iteration order; use std::map/std::set or "
                  "allowlist lookup-only uses in layers.json");
        }
      }
      p = end;
    }
  }

  // --- tracer-pairing: a file that opens spans must also close them. ---
  if (!PathAllowed(config.tracer_allow, path)) {
    const bool begins = stripped.find("->Begin(") != std::string::npos ||
                        stripped.find(".Begin(") != std::string::npos;
    const bool ends = stripped.find("->End(") != std::string::npos ||
                      stripped.find(".End(") != std::string::npos ||
                      stripped.find("->Complete(") != std::string::npos ||
                      stripped.find(".Complete(") != std::string::npos;
    if (begins && !ends) {
      int first_line = 1;
      for (size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].find("Begin(") != std::string_view::npos) {
          first_line = static_cast<int>(i + 1);
          break;
        }
      }
      add(first_line, "tracer-pairing",
          "file opens tracer spans (Begin) but never closes one (End/Complete); unclosed "
          "spans corrupt critical-path analysis");
    }
  }

  // --- void-comment: `(void)` discards need a same-line justification. ---
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t pos = lines[i].find("(void)");
    if (pos == std::string_view::npos) {
      continue;
    }
    // `(void)` immediately followed by an identifier/`(` is a discard cast;
    // in a declaration like `f(void)` the next token is `)` or `;`.
    size_t after = pos + 6;
    std::string_view line = lines[i];
    while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
      ++after;
    }
    if (after >= line.size() || (!IsIdentChar(line[after]) && line[after] != '(')) {
      continue;
    }
    // The justification lives in a comment, which the stripper removed — so
    // look for `//` in the raw line after the cast.
    if (raw_lines[i].find("//", pos) == std::string_view::npos) {
      add(static_cast<int>(i + 1), "void-comment",
          "discarding a value with (void) requires a same-line '// why' comment");
    }
  }

  // --- obs-naming: metric/span names are lowercase dotted identifiers. ---
  // Markers are matched on the stripped line (so commented-out calls don't
  // count) and must be preceded by '.' or '>' (a member call — this excludes
  // declarations and unrelated identifiers like BeginObject/BeginTrack, which
  // never have '(' directly after "Begin"). The name itself was blanked by
  // the stripper, so the first literal is re-read from the raw line; a call
  // whose name argument is a variable (replay paths) has no literal on the
  // line and is skipped. Known limitation: a literal wrapped to the next
  // line escapes the check.
  struct ObsMarker {
    std::string_view token;
    size_t min_segments;
    const char* what;
  };
  static constexpr ObsMarker kObsMarkers[] = {
      {"Begin(", 1, "span"},          {"Instant(", 1, "span"},
      {"Complete(", 1, "span"},       {"InternName(", 1, "span"},
      {"GetCounter(", 2, "metric"},   {"GetGauge(", 2, "metric"},
      {"GetHistogram(", 2, "metric"},
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const std::string_view raw = raw_lines[i];
    for (const ObsMarker& marker : kObsMarkers) {
      size_t pos = line.find(marker.token);
      while (pos != std::string_view::npos) {
        const bool member_call = pos >= 1 && (line[pos - 1] == '.' || line[pos - 1] == '>');
        if (member_call) {
          std::string_view name;
          size_t next = 0;
          if (FirstLiteral(raw, pos + marker.token.size(), &name, &next) &&
              !IsLowerDottedName(name, marker.min_segments)) {
            add(static_cast<int>(i + 1), "obs-naming",
                std::string(marker.what) + " name \"" + std::string(name) +
                    "\" is not a lowercase dotted identifier" +
                    (marker.min_segments > 1 ? " with a subsystem prefix (need >= 2 segments)"
                                             : "") +
                    "; see docs/observability.md");
          }
        }
        pos = line.find(marker.token, pos + 1);
      }
    }
    // Named observability constants get the same treatment: every literal on
    // a `constexpr std::string_view` line must be a valid (single-segment ok)
    // dotted name. src/ only: that is where span/metric name constants live —
    // report tooling legitimately tables operator tokens and JSON fragments.
    if (path.rfind("src/", 0) == 0 &&
        line.find("constexpr") != std::string_view::npos &&
        line.find("string_view") != std::string_view::npos) {
      std::string_view name;
      size_t from = 0;
      while (FirstLiteral(raw, from, &name, &from)) {
        if (!IsLowerDottedName(name, 1)) {
          add(static_cast<int>(i + 1), "obs-naming",
              "constexpr std::string_view literal \"" + std::string(name) +
                  "\" is not a lowercase dotted identifier; see docs/observability.md");
        }
      }
    }
  }

  // --- raw-unit: declarations typed u?int{32,64}_t whose identifier carries a
  // unit suffix. A token-pair scan (type directly before the name, allowing
  // '*'/'&') catches parameters, fields, locals, and function return types.
  // Scoped to src/: bench drivers and report tooling talk to raw JSON and OS
  // counters where raw integers are the honest representation.
  // Known limitation: a suffixed name whose type is wrapped in a template
  // (std::atomic<uint64_t> total_bytes_) escapes the pair scan.
  if (path.rfind("src/", 0) == 0 && !PathAllowed(config.raw_unit_allow, path)) {
    const std::vector<Token> toks = Tokenize(stripped);
    for (size_t t = 0; t + 1 < toks.size(); ++t) {
      if (!toks[t].ident || !IsRawIntType(toks[t].text)) {
        continue;
      }
      size_t n = t + 1;
      while (n < toks.size() && !toks[n].ident &&
             (toks[n].text == "*" || toks[n].text == "&")) {
        ++n;
      }
      if (n >= toks.size() || !toks[n].ident ||
          std::isdigit(static_cast<unsigned char>(toks[n].text[0])) != 0) {
        continue;
      }
      const std::string_view suffix = UnitSuffixOf(toks[n].text);
      if (suffix.empty()) {
        continue;
      }
      add(toks[n].line, "raw-unit",
          "'" + std::string(toks[t].text) + " " + std::string(toks[n].text) +
              "' carries unit suffix '" + std::string(suffix) + "'; use " +
              UnitTypeSuggestion(suffix) +
              " from src/common/units.h — call sites escape via .value()/.nanos()");
    }
  }

  return out;
}

FileFacts ExtractFacts(const Config& config, std::string_view path, std::string_view content) {
  FileFacts facts;
  facts.path = std::string(path);
  const bool lock_exempt = PathAllowed(config.lock_order_allow, path);
  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<Token> toks = Tokenize(stripped);

  // Free functions get the file stem as their "class" so same-named statics
  // in two files stay distinct in the lock graph.
  std::string stem(path);
  if (const size_t slash = stem.rfind('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const size_t dot = stem.rfind('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }

  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock };
    Kind kind = kBlock;
    std::string name;            // class name (kClass) / qualified fn (kFunction)
    std::string fn_unqualified;  // kFunction only
    std::string fn_class;        // kFunction: resolved class context ("" = free)
    bool gated = false;          // under an if testing more than metrics != nullptr
    std::vector<std::string> locks;  // mutex keys declared directly in this scope
  };
  std::vector<Scope> scopes;

  auto innermost_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kClass) {
        return it->name;
      }
    }
    return "";
  };
  auto function_scope = [&]() -> Scope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kFunction) {
        return &*it;
      }
      if (it->kind != Scope::kBlock) {
        break;  // a class/namespace boundary ends the function context
      }
    }
    return nullptr;
  };
  auto held_locks = [&]() {
    std::vector<std::string> held;
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind != Scope::kFunction && it->kind != Scope::kBlock) {
        break;
      }
      held.insert(held.end(), it->locks.begin(), it->locks.end());
      if (it->kind == Scope::kFunction) {
        break;
      }
    }
    return held;
  };
  auto current_gated = [&]() { return !scopes.empty() && scopes.back().gated; };

  // An `IDENT (` group whose matching `)` has not closed yet. When it closes
  // at class/namespace scope it becomes the pending function candidate; an
  // `if` candidate instead computes whether its condition is meaningful.
  struct Candidate {
    std::string name;       // unqualified
    std::string qualifier;  // "Foo" for Foo::Bar( and Foo::~Foo(
    int paren_depth = 0;    // depth before the '('
    bool is_if = false;
    size_t open_tok = 0;    // token index of the name (condition starts after '(')
    int line = 0;
  };
  std::vector<Candidate> candidates;
  int paren_depth = 0;

  // pending_fn survives `const`/`noexcept`/`override`/trailing-return tokens
  // between the prototype's `)` and the body `{`; `locked` pins it across a
  // constructor initializer list (whose member initializers look like calls).
  struct PendingFn {
    Candidate c;
    bool armed = false;
    bool locked = false;
  };
  PendingFn pending_fn;
  struct PendingIf {
    bool armed = false;
    bool cond_gated = false;
  };
  PendingIf pending_if;
  std::string pending_class;
  bool pending_namespace = false;
  std::string prev_ident;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    const std::string_view t = tok.text;
    if (tok.ident && std::isdigit(static_cast<unsigned char>(t[0])) != 0) {
      prev_ident = std::string(t);
      continue;
    }
    if (tok.ident) {
      const std::string_view prev = i > 0 ? toks[i - 1].text : std::string_view();
      const std::string_view next = i + 1 < toks.size() ? toks[i + 1].text : std::string_view();

      if (t == "namespace") {
        pending_namespace = true;
      } else if ((t == "class" || t == "struct") && prev_ident != "enum") {
        if (i + 1 < toks.size() && toks[i + 1].ident) {
          pending_class = std::string(toks[i + 1].text);
        }
      } else if (t == "MutexLock" && !lock_exempt && i + 2 < toks.size() && toks[i + 1].ident &&
                 toks[i + 2].text == "(") {
        // `MutexLock guard(<mutex-expr>);` — collect the constructor argument.
        size_t j = i + 3;
        int depth = 1;
        std::string joined;
        std::string single;
        size_t arg_tokens = 0;
        while (j < toks.size() && depth > 0) {
          if (toks[j].text == "(") {
            ++depth;
          } else if (toks[j].text == ")") {
            if (--depth == 0) {
              break;
            }
          }
          joined += toks[j].text;
          if (arg_tokens == 0 && toks[j].ident) {
            single = std::string(toks[j].text);
          }
          ++arg_tokens;
          ++j;
        }
        if (Scope* fn = function_scope(); fn != nullptr && !scopes.empty()) {
          const std::string ctx = fn->fn_class.empty() ? stem : fn->fn_class;
          const std::string key =
              ctx + "::" + (arg_tokens == 1 && !single.empty() ? single : joined);
          for (const std::string& h : held_locks()) {
            facts.lock_edges.push_back(FileFacts::LockEdge{h, key, fn->name, tok.line});
          }
          facts.method_locks[fn->name].insert(key);
          scopes.back().locks.push_back(key);
        }
      } else if ((t == "GetCounter" || t == "GetGauge" || t == "GetHistogram") &&
                 (prev == "." || prev == "->") && next == "(") {
        // The metric-name literal was blanked by the stripper, but offsets are
        // length-preserved, so re-read it from the raw text. A ';' before the
        // first quote means the name is a variable — skip those sites.
        const size_t open = toks[i + 1].begin;
        const size_t quote = content.find('"', open);
        const size_t semi = content.find(';', open);
        if (quote != std::string_view::npos && (semi == std::string_view::npos || quote < semi)) {
          const size_t close = content.find('"', quote + 1);
          if (close != std::string_view::npos) {
            const std::string metric(content.substr(quote + 1, close - quote - 1));
            if (PathAllowed(config.gated_metrics, metric)) {
              Scope* fn = function_scope();
              facts.gated_registrations.push_back(FileFacts::GatedRegistration{
                  metric, fn != nullptr ? fn->fn_unqualified : "", current_gated(), tok.line});
            }
          }
        }
      } else if (t == "Configure" && (prev == "." || prev == "->") && next == "(") {
        facts.configure_calls.push_back(FileFacts::ConfigureCall{current_gated(), tok.line});
      }

      if (next == "(") {
        if (t == "if") {
          Candidate c;
          c.name = "if";
          c.is_if = true;
          c.paren_depth = paren_depth;
          c.open_tok = i;
          c.line = tok.line;
          candidates.push_back(std::move(c));
        } else if (!IsNonCallKeyword(t) && t != "MutexLock" && prev_ident != "MutexLock") {
          Candidate c;
          c.name = std::string(t);
          c.paren_depth = paren_depth;
          c.open_tok = i;
          c.line = tok.line;
          if (prev == "::" && i >= 2 && toks[i - 2].ident) {
            c.qualifier = std::string(toks[i - 2].text);
          } else if (prev == "~" && i >= 3 && toks[i - 2].text == "::" && toks[i - 3].ident) {
            c.qualifier = std::string(toks[i - 3].text);
          }
          candidates.push_back(std::move(c));
          // A call made while holding locks feeds the one-level indirection of
          // the lock graph.
          if (Scope* fn = function_scope()) {
            std::vector<std::string> held = held_locks();
            if (!held.empty()) {
              FileFacts::HeldCall hc;
              hc.held = std::move(held);
              hc.line = tok.line;
              if (prev == "." || prev == "->") {
                hc.member_call = !(i >= 2 && toks[i - 2].text == "this");
                hc.callee = std::string(t);
              } else if (prev == "::" && i >= 2 && toks[i - 2].ident) {
                hc.callee = std::string(toks[i - 2].text) + "::" + std::string(t);
              } else {
                hc.callee = std::string(t);
              }
              hc.enclosing_class = fn->fn_class.empty() ? stem : fn->fn_class;
              facts.held_calls.push_back(std::move(hc));
            }
          }
        }
      }
      prev_ident = std::string(t);
      continue;
    }

    // Punctuation.
    if (t == "(") {
      ++paren_depth;
    } else if (t == ")") {
      --paren_depth;
      if (!candidates.empty() && candidates.back().paren_depth == paren_depth) {
        Candidate c = std::move(candidates.back());
        candidates.pop_back();
        if (c.is_if) {
          // Meaningful condition: any identifier beyond the bare null check.
          bool gated = false;
          for (size_t k = c.open_tok + 2; k < i; ++k) {
            if (toks[k].ident &&
                std::isdigit(static_cast<unsigned char>(toks[k].text[0])) == 0 &&
                toks[k].text != "metrics" && toks[k].text != "nullptr") {
              gated = true;
              break;
            }
          }
          pending_if = PendingIf{true, gated};
        } else if (function_scope() == nullptr && !pending_fn.locked) {
          pending_fn.c = std::move(c);
          pending_fn.armed = true;
        }
      }
    } else if (t == ":") {
      if (pending_fn.armed) {
        pending_fn.locked = true;  // constructor initializer list begins
      }
    } else if (t == ";" || t == "=") {
      pending_fn = PendingFn{};
      pending_if = PendingIf{};
      pending_class.clear();
      pending_namespace = false;
    } else if (t == "{") {
      Scope s;
      const bool parent_gated = current_gated();
      if (pending_namespace) {
        s.kind = Scope::kNamespace;
      } else if (!pending_class.empty()) {
        s.kind = Scope::kClass;
        s.name = pending_class;
      } else if (pending_fn.armed && function_scope() == nullptr) {
        s.kind = Scope::kFunction;
        s.fn_unqualified = pending_fn.c.name;
        s.fn_class =
            !pending_fn.c.qualifier.empty() ? pending_fn.c.qualifier : innermost_class();
        s.name = (s.fn_class.empty() ? stem : s.fn_class) + "::" + s.fn_unqualified;
      } else {
        s.kind = Scope::kBlock;
        s.gated = parent_gated || (pending_if.armed && pending_if.cond_gated);
      }
      scopes.push_back(std::move(s));
      pending_fn = PendingFn{};
      pending_if = PendingIf{};
      pending_class.clear();
      pending_namespace = false;
    } else if (t == "}") {
      if (!scopes.empty()) {
        scopes.pop_back();
      }
      pending_fn = PendingFn{};
      pending_if = PendingIf{};
      pending_class.clear();
      pending_namespace = false;
    }
  }
  return facts;
}

std::vector<Violation> LintProject(const Config& /*config*/,
                                   const std::vector<FileFacts>& facts) {
  // Gated-metric prefixes and lock allowlists were already applied during
  // fact extraction; the project pass only merges and resolves.
  std::vector<Violation> out;

  // --- lock-order: merge every TU's nesting facts into one graph. ---
  // Direct edges come from observed nesting; indirect edges from calling a
  // lock-acquiring method while holding a lock. Bare calls resolve against
  // the caller's own class; member calls (x->F()) conservatively resolve
  // against every class's F — over-approximate, but deadlock detection should
  // over- rather than under-approximate.
  std::map<std::string, std::set<std::string>> method_locks;
  std::map<std::string, std::set<std::string>> unqual_locks;
  for (const FileFacts& f : facts) {
    for (const auto& [method, keys] : f.method_locks) {
      method_locks[method].insert(keys.begin(), keys.end());
      const size_t sep = method.rfind("::");
      const std::string unq = sep == std::string::npos ? method : method.substr(sep + 2);
      unqual_locks[unq].insert(keys.begin(), keys.end());
    }
  }

  struct EdgeInfo {
    std::string file;
    int line = 0;
    std::string via;
  };
  std::map<std::string, std::map<std::string, EdgeInfo>> graph;
  auto add_edge = [&](const std::string& a, const std::string& b, EdgeInfo info) {
    graph[a].emplace(b, std::move(info));  // first observation wins for reporting
    graph.emplace(b, std::map<std::string, EdgeInfo>{});
  };

  for (const FileFacts& f : facts) {
    for (const FileFacts::LockEdge& e : f.lock_edges) {
      add_edge(e.outer, e.inner, EdgeInfo{f.path, e.line, e.function});
    }
    for (const FileFacts::HeldCall& hc : f.held_calls) {
      const std::set<std::string>* targets = nullptr;
      std::string resolved;
      if (hc.callee.find("::") != std::string::npos) {
        if (auto it = method_locks.find(hc.callee); it != method_locks.end()) {
          targets = &it->second;
          resolved = hc.callee;
        }
      } else if (hc.member_call) {
        if (!IsCommonContainerMethod(hc.callee)) {
          if (auto it = unqual_locks.find(hc.callee); it != unqual_locks.end()) {
            targets = &it->second;
            resolved = "*::" + hc.callee;
          }
        }
      } else {
        const std::string qualified = hc.enclosing_class + "::" + hc.callee;
        if (auto it = method_locks.find(qualified); it != method_locks.end()) {
          targets = &it->second;
          resolved = qualified;
        }
      }
      if (targets == nullptr) {
        continue;
      }
      for (const std::string& h : hc.held) {
        for (const std::string& target : *targets) {
          add_edge(h, target, EdgeInfo{f.path, hc.line, "call to " + resolved});
        }
      }
    }
  }

  // DFS over the sorted node set: every distinct cycle (normalized by rotating
  // its smallest key first) is reported once, at the edge that closes it. A
  // self-edge is a re-acquisition deadlock (the Mutex is non-reentrant).
  enum Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [node, edges] : graph) {
    (void)edges;  // nodes only; edge rows are revisited in the DFS
    color[node] = kWhite;
  }
  std::vector<std::string> path_stack;
  std::set<std::vector<std::string>> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = kGray;
    path_stack.push_back(n);
    for (const auto& [m, info] : graph[n]) {
      if (color[m] == kGray) {
        auto it = std::find(path_stack.begin(), path_stack.end(), m);
        std::vector<std::string> cycle(it, path_stack.end());
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        if (reported.insert(cycle).second) {
          std::string desc;
          for (const std::string& x : cycle) {
            desc += x;
            desc += " -> ";
          }
          desc += cycle.front();
          out.push_back(Violation{
              info.file, info.line, "lock-order",
              "lock-order cycle: " + desc + " (closing edge " + n + " -> " + m + " via " +
                  info.via + "); acquire these mutexes in one global order"});
        }
      } else if (color[m] == kWhite) {
        dfs(m);
      }
    }
    path_stack.pop_back();
    color[n] = kBlack;
  };
  for (const auto& [node, c] : color) {
    if (c == kWhite) {
      dfs(node);
    }
  }

  // --- gated-metric: resolve registrations that rely on a Configure() entry
  // point against that method's call sites across all TUs. ---
  size_t cfg_calls = 0;
  size_t cfg_gated = 0;
  for (const FileFacts& f : facts) {
    for (const FileFacts::ConfigureCall& c : f.configure_calls) {
      ++cfg_calls;
      cfg_gated += c.gated ? 1 : 0;
    }
  }
  const bool configure_ok = cfg_calls > 0 && cfg_gated == cfg_calls;
  for (const FileFacts& f : facts) {
    for (const FileFacts::GatedRegistration& r : f.gated_registrations) {
      if (r.gated) {
        continue;
      }
      if (r.function == "Configure" && configure_ok) {
        continue;
      }
      std::string msg = "metric \"" + r.metric +
                        "\" is lever/forensics-gated but registers unconditionally";
      if (r.function == "Configure") {
        msg += cfg_calls == 0
                   ? " (inside Configure, but no Configure() call site was found to "
                     "validate gating)"
                   : " (inside Configure, but not every Configure() call site is itself "
                     "behind a feature check)";
      } else {
        msg += " (wrap the registration in the feature's config check, or move it into a "
               "Configure() whose callers are gated)";
      }
      out.push_back(Violation{f.path, r.line, "gated-metric", std::move(msg)});
    }
  }
  return out;
}

Result<std::vector<Violation>> LintTree(const Config& config, const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return NotFoundError("no src/ directory under " + root);
  }
  // bench/ and tools/report/ are optional so fixture trees with only src/
  // still lint. tools/lint/ itself is never walked: testdata/ holds
  // deliberate violations.
  const fs::path roots[] = {src, fs::path(root) / "bench", fs::path(root) / "tools" / "report"};
  std::vector<fs::path> files;
  for (const fs::path& dir : roots) {
    if (!fs::is_directory(dir, ec)) {
      continue;
    }
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        return IoError("walking " + dir.string() + ": " + ec.message());
      }
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> all;
  std::vector<FileFacts> facts;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return IoError("reading " + file.string());
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string rel = fs::relative(file, root, ec).generic_string();
    const std::string path = ec ? file.generic_string() : rel;
    const std::string content = text.str();
    std::vector<Violation> file_violations = LintFile(config, path, content);
    all.insert(all.end(), std::make_move_iterator(file_violations.begin()),
               std::make_move_iterator(file_violations.end()));
    // The semantic symbol table covers src/ only: lock discipline and metric
    // gating are properties of the library, not of benchmark drivers.
    if (path.rfind("src/", 0) == 0) {
      facts.push_back(ExtractFacts(config, path, content));
    }
  }
  std::vector<Violation> project = LintProject(config, facts);
  all.insert(all.end(), std::make_move_iterator(project.begin()),
             std::make_move_iterator(project.end()));
  return all;
}

}  // namespace lint
}  // namespace faasnap

#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace faasnap {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the restricted shape of layers.json: one top-level
// object whose values are either arrays of strings or one object of arrays of
// strings. No numbers, booleans, nesting beyond that, or escapes other than
// \" and \\. Strictness is a feature: a malformed config fails the lint run
// loudly instead of silently enforcing nothing.
// ---------------------------------------------------------------------------
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return InvalidArgumentError(std::string("layers.json: expected '") + c + "' at offset " +
                                  std::to_string(pos_));
    }
    ++pos_;
    return OkStatus();
  }

  Result<std::string> ParseString() {
    RETURN_IF_ERROR(Consume('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        c = text_[pos_++];  // only \" and \\ occur in this config
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("layers.json: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<std::vector<std::string>> ParseStringArray() {
    RETURN_IF_ERROR(Consume('['));
    std::vector<std::string> out;
    if (Peek() == ']') {
      RETURN_IF_ERROR(Consume(']'));
      return out;
    }
    while (true) {
      ASSIGN_OR_RETURN(std::string item, ParseString());
      out.push_back(std::move(item));
      if (Peek() == ',') {
        RETURN_IF_ERROR(Consume(','));
        continue;
      }
      RETURN_IF_ERROR(Consume(']'));
      return out;
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool PathAllowed(const std::vector<std::string>& prefixes, std::string_view path) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) { return path.rfind(p, 0) == 0; });
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Identifiers banned outright in simulation code: ambient time and ambient
// randomness both make traces non-reproducible (determinism_test requires
// bit-identical output across runs).
bool IsBannedIdentifier(std::string_view ident) {
  return ident == "system_clock" || ident == "high_resolution_clock" ||
         ident == "steady_clock" || ident == "random_device" || ident == "gettimeofday" ||
         ident == "clock_gettime" || ident == "timespec_get";
}

// Identifiers banned only as calls (`name(`): these are common enough words
// that a field like `fetch_time_` must not trip the rule.
bool IsBannedCall(std::string_view ident) {
  return ident == "rand" || ident == "srand" || ident == "time" || ident == "clock";
}

// First directory component after "src/", or "" when not under src/.
std::string SrcDirOf(std::string_view path) {
  constexpr std::string_view kSrc = "src/";
  if (path.rfind(kSrc, 0) != 0) {
    return "";
  }
  const size_t slash = path.find('/', kSrc.size());
  if (slash == std::string_view::npos) {
    return "";  // file directly under src/ belongs to no layer
  }
  return std::string(path.substr(kSrc.size(), slash - kSrc.size()));
}

// Lowercase dotted identifier: '.'-joined segments of [a-z0-9_]+, at least
// `min_segments` of them. This is the naming convention for every metric and
// span name (metrics additionally need a subsystem prefix, i.e. >= 2
// segments); hyphens and uppercase are banned so names survive round-trips
// through JSON keys, Prometheus-style tooling, and shell pipelines unquoted.
bool IsLowerDottedName(std::string_view name, size_t min_segments) {
  size_t segments = 0;
  size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) {
        return false;  // empty segment ("a..b", ".a")
      }
      ++segments;
      seg_len = 0;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      ++seg_len;
    } else {
      return false;
    }
  }
  if (seg_len == 0) {
    return false;  // empty name or trailing '.'
  }
  ++segments;
  return segments >= min_segments;
}

// First double-quoted literal in `raw` at or after `from`. Returns true and
// sets *out / *next (one past the closing quote) when found.
bool FirstLiteral(std::string_view raw, size_t from, std::string_view* out, size_t* next) {
  const size_t open = raw.find('"', from);
  if (open == std::string_view::npos) {
    return false;
  }
  const size_t close = raw.find('"', open + 1);
  if (close == std::string_view::npos) {
    return false;
  }
  *out = raw.substr(open + 1, close - open - 1);
  *next = close + 1;
  return true;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

Result<Config> ParseConfig(std::string_view json) {
  JsonCursor cur(json);
  Config config;
  RETURN_IF_ERROR(cur.Consume('{'));
  if (cur.Peek() == '}') {
    RETURN_IF_ERROR(cur.Consume('}'));
    if (!cur.AtEnd()) {
      return InvalidArgumentError("layers.json: trailing content after top-level object");
    }
    return config;
  }
  while (true) {
    ASSIGN_OR_RETURN(std::string key, cur.ParseString());
    RETURN_IF_ERROR(cur.Consume(':'));
    if (!key.empty() && key[0] == '_') {
      // Comment key: value must still be a string array; discard it.
      RETURN_IF_ERROR(cur.ParseStringArray().status());
    } else if (key == "layers") {
      RETURN_IF_ERROR(cur.Consume('{'));
      while (cur.Peek() != '}') {
        ASSIGN_OR_RETURN(std::string dir, cur.ParseString());
        RETURN_IF_ERROR(cur.Consume(':'));
        ASSIGN_OR_RETURN(std::vector<std::string> deps, cur.ParseStringArray());
        config.layers[dir] = std::set<std::string>(deps.begin(), deps.end());
        if (cur.Peek() == ',') {
          RETURN_IF_ERROR(cur.Consume(','));
        }
      }
      RETURN_IF_ERROR(cur.Consume('}'));
    } else if (key == "determinism_allow") {
      ASSIGN_OR_RETURN(config.determinism_allow, cur.ParseStringArray());
    } else if (key == "container_allow") {
      ASSIGN_OR_RETURN(config.container_allow, cur.ParseStringArray());
    } else if (key == "tracer_allow") {
      ASSIGN_OR_RETURN(config.tracer_allow, cur.ParseStringArray());
    } else {
      return InvalidArgumentError("layers.json: unknown key \"" + key + "\"");
    }
    if (cur.Peek() == ',') {
      RETURN_IF_ERROR(cur.Consume(','));
      continue;
    }
    RETURN_IF_ERROR(cur.Consume('}'));
    break;
  }
  if (!cur.AtEnd()) {
    return InvalidArgumentError("layers.json: trailing content after top-level object");
  }
  // Reject cycles up front: a cyclic "DAG" would make the layering rule
  // meaningless. Kahn's algorithm over the declared edges.
  {
    std::map<std::string, int> indegree;
    for (const auto& [dir, deps] : config.layers) {
      indegree.emplace(dir, 0);
      for (const std::string& d : deps) {
        indegree.emplace(d, 0);
      }
    }
    for (const auto& [dir, deps] : config.layers) {
      (void)dir;  // only the edge targets matter for in-degree
      for (const std::string& d : deps) {
        ++indegree[d];
      }
    }
    std::vector<std::string> ready;
    for (const auto& [dir, deg] : indegree) {
      if (deg == 0) {
        ready.push_back(dir);
      }
    }
    size_t removed = 0;
    while (!ready.empty()) {
      const std::string dir = ready.back();
      ready.pop_back();
      ++removed;
      auto it = config.layers.find(dir);
      if (it == config.layers.end()) {
        continue;
      }
      for (const std::string& d : it->second) {
        if (--indegree[d] == 0) {
          ready.push_back(d);
        }
      }
    }
    if (removed != indegree.size()) {
      return InvalidArgumentError("layers.json: layering graph has a cycle");
    }
  }
  return config;
}

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  char prev_code = '\0';  // last code character kept (for digit-separator detection)
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && !IsIdentChar(prev_code)) {
          // `'` after an identifier character is a digit separator
          // (1'000'000) or a user-defined literal, not a character literal.
          state = State::kChar;
          out[i] = ' ';
        } else {
          prev_code = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          prev_code = '\0';
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
          prev_code = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          prev_code = ' ';
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          prev_code = ' ';
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Violation> LintFile(const Config& config, std::string_view path,
                                std::string_view content) {
  std::vector<Violation> out;
  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<std::string_view> lines = SplitLines(stripped);
  const std::vector<std::string_view> raw_lines = SplitLines(content);
  const std::string own_dir = SrcDirOf(path);

  auto add = [&](int line, const char* rule, std::string message) {
    out.push_back(Violation{std::string(path), line, rule, std::move(message)});
  };

  // --- layering: every #include "src/<dir>/..." must be a declared edge. ---
  // Includes are parsed from the stripped text so commented-out includes
  // don't count.
  if (!own_dir.empty()) {
    const auto allowed_it = config.layers.find(own_dir);
    for (size_t i = 0; i < lines.size(); ++i) {
      std::string_view line = lines[i];
      const size_t hash = line.find_first_not_of(" \t");
      if (hash == std::string_view::npos || line[hash] != '#') {
        continue;
      }
      // The stripper blanked the quoted path, so re-read it from the raw line.
      std::string_view raw = raw_lines[i];
      const size_t inc = raw.find("#include");
      if (inc == std::string_view::npos) {
        continue;
      }
      const size_t open = raw.find('"', inc);
      if (open == std::string_view::npos) {
        continue;  // <system> include
      }
      const size_t close = raw.find('"', open + 1);
      if (close == std::string_view::npos) {
        continue;
      }
      const std::string_view target = raw.substr(open + 1, close - open - 1);
      const std::string dep_dir = SrcDirOf(target);
      if (dep_dir.empty() || dep_dir == own_dir) {
        continue;
      }
      const bool allowed =
          allowed_it != config.layers.end() && allowed_it->second.count(dep_dir) > 0;
      if (!allowed) {
        add(static_cast<int>(i + 1), "layering",
            "src/" + own_dir + "/ may not include src/" + dep_dir +
                "/ (edge not in tools/lint/layers.json)");
      }
    }
  }

  const bool determinism_exempt = PathAllowed(config.determinism_allow, path);
  const bool container_exempt = PathAllowed(config.container_allow, path);

  // --- determinism + container: scan identifier tokens line by line. ---
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    size_t p = 0;
    while (p < line.size()) {
      if (!IsIdentChar(line[p])) {
        ++p;
        continue;
      }
      size_t end = p;
      while (end < line.size() && IsIdentChar(line[end])) {
        ++end;
      }
      const std::string_view ident = line.substr(p, end - p);
      // Skip pure numbers (IsIdentChar admits digits).
      if (std::isdigit(static_cast<unsigned char>(ident[0])) == 0) {
        const bool preceded_by_scope_or_dot =
            p >= 1 && (line[p - 1] == '.' ||
                       (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':'));
        size_t after = end;
        while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
          ++after;
        }
        const bool is_call = after < line.size() && line[after] == '(';
        if (!determinism_exempt) {
          if (IsBannedIdentifier(ident)) {
            add(static_cast<int>(i + 1), "determinism",
                "banned non-deterministic source '" + std::string(ident) +
                    "' (use the sim clock / seeded RNG, or allowlist in layers.json)");
          } else if (IsBannedCall(ident) && is_call && !preceded_by_scope_or_dot) {
            add(static_cast<int>(i + 1), "determinism",
                "banned non-deterministic call '" + std::string(ident) +
                    "()' (use the sim clock / seeded RNG, or allowlist in layers.json)");
          }
        }
        if (!container_exempt &&
            (ident == "unordered_map" || ident == "unordered_set")) {
          add(static_cast<int>(i + 1), "container",
              "std::" + std::string(ident) +
                  " has implementation-defined iteration order; use std::map/std::set or "
                  "allowlist lookup-only uses in layers.json");
        }
      }
      p = end;
    }
  }

  // --- tracer-pairing: a file that opens spans must also close them. ---
  if (!PathAllowed(config.tracer_allow, path)) {
    const bool begins = stripped.find("->Begin(") != std::string::npos ||
                        stripped.find(".Begin(") != std::string::npos;
    const bool ends = stripped.find("->End(") != std::string::npos ||
                      stripped.find(".End(") != std::string::npos ||
                      stripped.find("->Complete(") != std::string::npos ||
                      stripped.find(".Complete(") != std::string::npos;
    if (begins && !ends) {
      int first_line = 1;
      for (size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].find("Begin(") != std::string_view::npos) {
          first_line = static_cast<int>(i + 1);
          break;
        }
      }
      add(first_line, "tracer-pairing",
          "file opens tracer spans (Begin) but never closes one (End/Complete); unclosed "
          "spans corrupt critical-path analysis");
    }
  }

  // --- void-comment: `(void)` discards need a same-line justification. ---
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t pos = lines[i].find("(void)");
    if (pos == std::string_view::npos) {
      continue;
    }
    // `(void)` immediately followed by an identifier/`(` is a discard cast;
    // in a declaration like `f(void)` the next token is `)` or `;`.
    size_t after = pos + 6;
    std::string_view line = lines[i];
    while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
      ++after;
    }
    if (after >= line.size() || (!IsIdentChar(line[after]) && line[after] != '(')) {
      continue;
    }
    // The justification lives in a comment, which the stripper removed — so
    // look for `//` in the raw line after the cast.
    if (raw_lines[i].find("//", pos) == std::string_view::npos) {
      add(static_cast<int>(i + 1), "void-comment",
          "discarding a value with (void) requires a same-line '// why' comment");
    }
  }

  // --- obs-naming: metric/span names are lowercase dotted identifiers. ---
  // Markers are matched on the stripped line (so commented-out calls don't
  // count) and must be preceded by '.' or '>' (a member call — this excludes
  // declarations and unrelated identifiers like BeginObject/BeginTrack, which
  // never have '(' directly after "Begin"). The name itself was blanked by
  // the stripper, so the first literal is re-read from the raw line; a call
  // whose name argument is a variable (replay paths) has no literal on the
  // line and is skipped. Known limitation: a literal wrapped to the next
  // line escapes the check.
  struct ObsMarker {
    std::string_view token;
    size_t min_segments;
    const char* what;
  };
  static constexpr ObsMarker kObsMarkers[] = {
      {"Begin(", 1, "span"},          {"Instant(", 1, "span"},
      {"Complete(", 1, "span"},       {"InternName(", 1, "span"},
      {"GetCounter(", 2, "metric"},   {"GetGauge(", 2, "metric"},
      {"GetHistogram(", 2, "metric"},
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const std::string_view raw = raw_lines[i];
    for (const ObsMarker& marker : kObsMarkers) {
      size_t pos = line.find(marker.token);
      while (pos != std::string_view::npos) {
        const bool member_call = pos >= 1 && (line[pos - 1] == '.' || line[pos - 1] == '>');
        if (member_call) {
          std::string_view name;
          size_t next = 0;
          if (FirstLiteral(raw, pos + marker.token.size(), &name, &next) &&
              !IsLowerDottedName(name, marker.min_segments)) {
            add(static_cast<int>(i + 1), "obs-naming",
                std::string(marker.what) + " name \"" + std::string(name) +
                    "\" is not a lowercase dotted identifier" +
                    (marker.min_segments > 1 ? " with a subsystem prefix (need >= 2 segments)"
                                             : "") +
                    "; see docs/observability.md");
          }
        }
        pos = line.find(marker.token, pos + 1);
      }
    }
    // Named observability constants get the same treatment: every literal on
    // a `constexpr std::string_view` line must be a valid (single-segment ok)
    // dotted name.
    if (line.find("constexpr") != std::string_view::npos &&
        line.find("string_view") != std::string_view::npos) {
      std::string_view name;
      size_t from = 0;
      while (FirstLiteral(raw, from, &name, &from)) {
        if (!IsLowerDottedName(name, 1)) {
          add(static_cast<int>(i + 1), "obs-naming",
              "constexpr std::string_view literal \"" + std::string(name) +
                  "\" is not a lowercase dotted identifier; see docs/observability.md");
        }
      }
    }
  }

  return out;
}

Result<std::vector<Violation>> LintTree(const Config& config, const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return NotFoundError("no src/ directory under " + root);
  }
  std::vector<fs::path> files;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end; it.increment(ec)) {
    if (ec) {
      return IoError("walking " + src.string() + ": " + ec.message());
    }
    if (!it->is_regular_file()) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> all;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return IoError("reading " + file.string());
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string rel = fs::relative(file, root, ec).generic_string();
    std::vector<Violation> file_violations =
        LintFile(config, ec ? file.generic_string() : rel, text.str());
    all.insert(all.end(), std::make_move_iterator(file_violations.begin()),
               std::make_move_iterator(file_violations.end()));
  }
  return all;
}

}  // namespace lint
}  // namespace faasnap

// faasnap_report: perf/metrics regression gate over run artifacts.
//
// The simulation is deterministic, so two runs with the same seed must
// produce identical counters; a nonzero diff between a baseline artifact and
// a candidate artifact is a regression by definition. The tool understands
// three artifact shapes and flattens each to a `key -> double` map:
//
//   * metrics snapshot   — MetricsRegistry::ToJson() output
//                          (`{"metrics":[{"name":...,"labels":...,...}]}`);
//                          keys look like `faults.by_class{class=ws}.value`.
//   * metrics timeline   — JSONL from MetricsTimeline, one window per line;
//                          per-series deltas are re-aggregated to run totals
//                          (`scheduler.warm_hits{}.total`, histogram `.count`
//                          / `.total_ns`), plus `timeline.lines`.
//   * generic JSON       — any other document (BENCH_*.json, experiment
//                          results): numeric leaves flattened by path. Array
//                          elements that carry string fields are keyed by
//                          those fields (`cells[function=hello,system=reap]
//                          .total_ms_mean`) so reordering is not a diff.
//
// Two modes:
//   diff    — compare baseline vs candidate with relative thresholds
//             (default 0: bit-identical or bust; per-key-prefix overrides
//             loosen individual metrics).
//   assert  — evaluate `key OP value` invariants against one artifact
//             (OP in ==, !=, <=, >=, <, >). Used in CI against the curated
//             BENCH_*.json counter shapes.

#ifndef FAASNAP_TOOLS_REPORT_REPORT_LIB_H_
#define FAASNAP_TOOLS_REPORT_REPORT_LIB_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace faasnap {
namespace report {

// Deterministic iteration order matters: diff output is itself diffed in CI.
using FlatMetrics = std::map<std::string, double>;

// Auto-detects the artifact shape (snapshot / timeline JSONL / generic JSON)
// and flattens it. Strings and empty containers produce no keys.
Result<FlatMetrics> FlattenArtifact(const std::string& text);

struct DiffOptions {
  // Maximum allowed |candidate - baseline| / max(|baseline|, eps). The
  // default demands bit-identical values — correct for same-seed runs of a
  // deterministic simulator.
  double default_threshold = 0.0;
  // Per-key-prefix overrides; the longest matching prefix wins.
  std::vector<std::pair<std::string, double>> overrides;
  // Key prefixes excluded from the diff entirely.
  std::vector<std::string> ignore;
  // When false, a key present on only one side is a regression.
  bool allow_missing = false;
};

struct Delta {
  enum class Kind { kChanged, kMissingInCandidate, kAddedInCandidate };
  std::string key;
  Kind kind = Kind::kChanged;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_change = 0.0;  // |c-b| / max(|b|, eps); 0 for missing/added
  double threshold = 0.0;   // the threshold that was exceeded
};

// Returns every regression (exceeded threshold or one-sided key), in key
// order. Empty result = gate passes.
std::vector<Delta> Diff(const FlatMetrics& baseline, const FlatMetrics& candidate,
                        const DiffOptions& options);

struct AssertOutcome {
  bool ok = false;
  std::string detail;  // human-readable: actual value vs expectation
};

// Evaluates one `key OP value` expression (e.g.
// "invocations.outcome{outcome=ok}.value >= 100"). Non-OK Result on a
// malformed expression or unknown key.
Result<AssertOutcome> EvalAssert(const FlatMetrics& metrics, const std::string& expr);

}  // namespace report
}  // namespace faasnap

#endif  // FAASNAP_TOOLS_REPORT_REPORT_LIB_H_

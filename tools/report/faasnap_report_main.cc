// faasnap_report CLI — the perf regression gate. See report_lib.h for the
// artifact shapes and semantics.
//
//   faasnap_report diff BASELINE CANDIDATE [--threshold=R]
//                  [--threshold=PREFIX=R ...] [--ignore=PREFIX ...]
//                  [--allow-missing]
//   faasnap_report assert ARTIFACT "KEY OP VALUE" ...
//
// Exit codes: 0 = gate passes, 1 = regression / failed assert, 2 = usage or
// I/O error. diff defaults to threshold 0 (bit-identical), which is the
// correct bar for two same-seed runs of the deterministic simulator.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/report/report_lib.h"

namespace {

using faasnap::Result;
using faasnap::report::AssertOutcome;
using faasnap::report::Delta;
using faasnap::report::DiffOptions;
using faasnap::report::FlatMetrics;

int Usage() {
  std::fprintf(stderr,
               "usage: faasnap_report diff BASELINE CANDIDATE [--threshold=R]\n"
               "           [--threshold=PREFIX=R ...] [--ignore=PREFIX ...] "
               "[--allow-missing]\n"
               "       faasnap_report assert ARTIFACT \"KEY OP VALUE\" ...\n");
  return 2;
}

Result<FlatMetrics> LoadArtifact(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return faasnap::IoError(std::string("cannot read ") + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<FlatMetrics> flat = faasnap::report::FlattenArtifact(text.str());
  if (!flat.ok()) {
    return faasnap::Status(flat.status().code(),
                           std::string(path) + ": " + std::string(flat.status().message()));
  }
  return flat;
}

int RunDiff(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  DiffOptions options;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threshold=", 12) == 0) {
      const char* spec = arg + 12;
      const char* eq = std::strchr(spec, '=');
      if (eq != nullptr) {
        options.overrides.emplace_back(std::string(spec, eq), std::atof(eq + 1));
      } else {
        options.default_threshold = std::atof(spec);
      }
    } else if (std::strncmp(arg, "--ignore=", 9) == 0) {
      options.ignore.emplace_back(arg + 9);
    } else if (std::strcmp(arg, "--allow-missing") == 0) {
      options.allow_missing = true;
    } else if (baseline_path == nullptr) {
      baseline_path = arg;
    } else if (candidate_path == nullptr) {
      candidate_path = arg;
    } else {
      return Usage();
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) {
    return Usage();
  }
  Result<FlatMetrics> baseline = LoadArtifact(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "faasnap_report: %s\n", baseline.status().ToString().c_str());
    return 2;
  }
  Result<FlatMetrics> candidate = LoadArtifact(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "faasnap_report: %s\n", candidate.status().ToString().c_str());
    return 2;
  }
  const std::vector<Delta> regressions = faasnap::report::Diff(*baseline, *candidate, options);
  if (regressions.empty()) {
    std::printf("faasnap_report: %zu metrics compared, no regressions\n", baseline->size());
    return 0;
  }
  for (const Delta& d : regressions) {
    switch (d.kind) {
      case Delta::Kind::kChanged:
        std::printf("REGRESSION %s: %g -> %g (%.2f%% > %.2f%%)\n", d.key.c_str(), d.baseline,
                    d.candidate, d.rel_change * 100.0, d.threshold * 100.0);
        break;
      case Delta::Kind::kMissingInCandidate:
        std::printf("REGRESSION %s: missing in candidate (baseline %g)\n", d.key.c_str(),
                    d.baseline);
        break;
      case Delta::Kind::kAddedInCandidate:
        std::printf("REGRESSION %s: absent in baseline (candidate %g)\n", d.key.c_str(),
                    d.candidate);
        break;
    }
  }
  std::printf("faasnap_report: %zu regression(s)\n", regressions.size());
  return 1;
}

int RunAssert(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  Result<FlatMetrics> artifact = LoadArtifact(argv[2]);
  if (!artifact.ok()) {
    std::fprintf(stderr, "faasnap_report: %s\n", artifact.status().ToString().c_str());
    return 2;
  }
  int failures = 0;
  for (int i = 3; i < argc; ++i) {
    Result<AssertOutcome> outcome = faasnap::report::EvalAssert(*artifact, argv[i]);
    if (!outcome.ok()) {
      std::fprintf(stderr, "faasnap_report: %s\n", outcome.status().ToString().c_str());
      return 2;
    }
    std::printf("%s %s\n", outcome->ok ? "PASS" : "FAIL", outcome->detail.c_str());
    failures += outcome->ok ? 0 : 1;
  }
  if (failures > 0) {
    std::printf("faasnap_report: %d failed assert(s)\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  if (std::strcmp(argv[1], "diff") == 0) {
    return RunDiff(argc, argv);
  }
  if (std::strcmp(argv[1], "assert") == 0) {
    return RunAssert(argc, argv);
  }
  return Usage();
}

#include "tools/report/report_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/common/json.h"

namespace faasnap {
namespace report {

namespace {

constexpr double kEps = 1e-12;

// `name{k=v,...}` — the series key used for snapshot and timeline artifacts.
std::string SeriesKey(const JsonValue& metric) {
  std::string key = metric.GetStringOr("name", "?");
  key += '{';
  Result<JsonValue> labels = metric.Get("labels");
  if (labels.ok() && labels->is_object()) {
    bool first = true;
    for (const auto& [k, v] : labels->object()) {
      if (!first) {
        key += ',';
      }
      first = false;
      key += k;
      key += '=';
      key += v.is_string() ? *v.AsString() : std::string("?");
    }
  }
  key += '}';
  return key;
}

// Flattens one snapshot entry: every numeric field except the bucket array
// becomes `<series>.<field>`. Buckets are deliberately dropped — the gate
// compares counts and quantiles, not bucket-boundary placement.
void FlattenSnapshotMetric(const JsonValue& metric, FlatMetrics* out) {
  const std::string series = SeriesKey(metric);
  for (const auto& [field, value] : metric.object()) {
    if (field == "name" || field == "labels" || field == "type" || field == "buckets") {
      continue;
    }
    if (value.is_number()) {
      (*out)[series + "." + field] = *value.AsDouble();
    }
  }
}

bool LooksLikeSnapshot(const JsonValue& doc) {
  if (!doc.is_object() || !doc.Has("metrics")) {
    return false;
  }
  const Result<JsonValue> metrics = doc.Get("metrics");
  if (!metrics.ok() || !metrics->is_array()) {
    return false;
  }
  for (const JsonValue& m : metrics->array()) {
    if (!m.is_object() || !m.Has("type")) {
      return false;
    }
  }
  return true;
}

bool LooksLikeTimelineLine(const JsonValue& doc) {
  return doc.is_object() && doc.Has("epoch") && doc.Has("window") && doc.Has("metrics");
}

// Re-aggregates timeline windows into run totals so a timeline diffs like a
// snapshot: counters sum their deltas, histograms sum delta counts/time,
// gauges keep the last value and the running max.
Status AccumulateTimelineLine(const JsonValue& line, FlatMetrics* out) {
  ASSIGN_OR_RETURN(JsonValue metrics, line.Get("metrics"));
  if (!metrics.is_array()) {
    return InvalidArgumentError("timeline line: \"metrics\" is not an array");
  }
  for (const JsonValue& m : metrics.array()) {
    if (!m.is_object()) {
      return InvalidArgumentError("timeline line: metric entry is not an object");
    }
    const std::string series = SeriesKey(m);
    const std::string type = m.GetStringOr("type", "");
    if (type == "counter") {
      (*out)[series + ".total"] += m.GetNumberOr("delta", 0);
    } else if (type == "gauge") {
      (*out)[series + ".last"] = m.GetNumberOr("value", 0);
      double& max = (*out)[series + ".max"];
      max = std::max(max, m.GetNumberOr("max", 0));
    } else if (type == "histogram") {
      (*out)[series + ".count"] += m.GetNumberOr("delta_count", 0);
      (*out)[series + ".total_ns"] += m.GetNumberOr("delta_total_ns", 0);
    } else {
      return InvalidArgumentError("timeline line: unknown metric type \"" + type + "\"");
    }
  }
  (*out)["timeline.lines"] += 1;
  return OkStatus();
}

// Generic fallback: numeric leaves keyed by path. Array elements carrying
// string fields are keyed by those fields instead of their index, so cell
// reordering between runs is not a spurious diff.
void FlattenGeneric(const JsonValue& value, const std::string& prefix, FlatMetrics* out) {
  switch (value.type()) {
    case JsonValue::Type::kNumber:
      (*out)[prefix] = *value.AsDouble();
      return;
    case JsonValue::Type::kBool:
      (*out)[prefix] = *value.AsBool() ? 1.0 : 0.0;
      return;
    case JsonValue::Type::kNull:
    case JsonValue::Type::kString:
      return;  // identity fields become selectors, never values
    case JsonValue::Type::kObject:
      for (const auto& [k, v] : value.object()) {
        FlattenGeneric(v, prefix.empty() ? k : prefix + "." + k, out);
      }
      return;
    case JsonValue::Type::kArray: {
      const JsonArray& arr = value.array();
      for (size_t i = 0; i < arr.size(); ++i) {
        std::string selector;
        if (arr[i].is_object()) {
          for (const auto& [k, v] : arr[i].object()) {
            if (v.is_string()) {
              selector += selector.empty() ? "" : ",";
              selector += k + "=" + *v.AsString();
            }
          }
        }
        if (selector.empty()) {
          selector = std::to_string(i);
        }
        FlattenGeneric(arr[i], prefix + "[" + selector + "]", out);
      }
      return;
    }
  }
}

double ThresholdFor(const DiffOptions& options, const std::string& key) {
  size_t best_len = 0;
  double best = options.default_threshold;
  for (const auto& [prefix, threshold] : options.overrides) {
    if (prefix.size() >= best_len && key.rfind(prefix, 0) == 0) {
      best_len = prefix.size();
      best = threshold;
    }
  }
  return best;
}

bool Ignored(const DiffOptions& options, const std::string& key) {
  return std::any_of(options.ignore.begin(), options.ignore.end(),
                     [&](const std::string& p) { return key.rfind(p, 0) == 0; });
}

}  // namespace

Result<FlatMetrics> FlattenArtifact(const std::string& text) {
  FlatMetrics out;
  Result<JsonValue> whole = ParseJson(text);
  if (whole.ok()) {
    if (LooksLikeSnapshot(*whole)) {
      const Result<JsonValue> metrics = whole->Get("metrics");
      for (const JsonValue& m : metrics->array()) {
        FlattenSnapshotMetric(m, &out);
      }
      return out;
    }
    if (LooksLikeTimelineLine(*whole)) {
      RETURN_IF_ERROR(AccumulateTimelineLine(*whole, &out));
      return out;
    }
    FlattenGeneric(*whole, "", &out);
    return out;
  }
  // Not a single document: try JSONL (the timeline format).
  size_t start = 0;
  int line_no = 0;
  bool any = false;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      nl = text.size();
    }
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    Result<JsonValue> doc = ParseJson(line);
    if (!doc.ok() || !LooksLikeTimelineLine(*doc)) {
      return InvalidArgumentError("artifact is neither a JSON document nor timeline JSONL "
                                  "(line " +
                                  std::to_string(line_no) + ")");
    }
    RETURN_IF_ERROR(AccumulateTimelineLine(*doc, &out));
    any = true;
  }
  if (!any) {
    return InvalidArgumentError("artifact is empty");
  }
  return out;
}

std::vector<Delta> Diff(const FlatMetrics& baseline, const FlatMetrics& candidate,
                        const DiffOptions& options) {
  std::vector<Delta> regressions;
  for (const auto& [key, base_value] : baseline) {
    if (Ignored(options, key)) {
      continue;
    }
    const auto it = candidate.find(key);
    if (it == candidate.end()) {
      if (!options.allow_missing) {
        Delta d;
        d.key = key;
        d.kind = Delta::Kind::kMissingInCandidate;
        d.baseline = base_value;
        regressions.push_back(std::move(d));
      }
      continue;
    }
    const double cand_value = it->second;
    const double rel = std::fabs(cand_value - base_value) /
                       std::max(std::fabs(base_value), kEps);
    const double threshold = ThresholdFor(options, key);
    if (rel > threshold) {
      Delta d;
      d.key = key;
      d.kind = Delta::Kind::kChanged;
      d.baseline = base_value;
      d.candidate = cand_value;
      d.rel_change = rel;
      d.threshold = threshold;
      regressions.push_back(std::move(d));
    }
  }
  if (!options.allow_missing) {
    for (const auto& [key, cand_value] : candidate) {
      if (Ignored(options, key) || baseline.count(key) > 0) {
        continue;
      }
      Delta d;
      d.key = key;
      d.kind = Delta::Kind::kAddedInCandidate;
      d.candidate = cand_value;
      regressions.push_back(std::move(d));
    }
  }
  std::sort(regressions.begin(), regressions.end(),
            [](const Delta& a, const Delta& b) { return a.key < b.key; });
  return regressions;
}

Result<AssertOutcome> EvalAssert(const FlatMetrics& metrics, const std::string& expr) {
  // Two-character operators first so "<=" is not read as "<".
  static constexpr std::string_view kOps[] = {"<=", ">=", "==", "!=", "<", ">"};
  size_t op_pos = std::string::npos;
  std::string_view op;
  for (const std::string_view candidate_op : kOps) {
    const size_t pos = expr.find(candidate_op);
    if (pos != std::string::npos && pos < op_pos) {
      op_pos = pos;
      op = candidate_op;
    }
  }
  if (op_pos == std::string::npos) {
    return InvalidArgumentError("assert \"" + expr + "\": no comparison operator");
  }
  auto trim = [](std::string s) {
    const size_t a = s.find_first_not_of(" \t");
    const size_t b = s.find_last_not_of(" \t");
    return a == std::string::npos ? std::string() : s.substr(a, b - a + 1);
  };
  const std::string key = trim(expr.substr(0, op_pos));
  const std::string rhs = trim(expr.substr(op_pos + op.size()));
  if (key.empty() || rhs.empty()) {
    return InvalidArgumentError("assert \"" + expr + "\": missing key or value");
  }
  char* end = nullptr;
  const double expected = std::strtod(rhs.c_str(), &end);
  if (end == rhs.c_str() || *end != '\0') {
    return InvalidArgumentError("assert \"" + expr + "\": \"" + rhs + "\" is not a number");
  }
  const auto it = metrics.find(key);
  if (it == metrics.end()) {
    return NotFoundError("assert \"" + expr + "\": key \"" + key + "\" not in artifact");
  }
  const double actual = it->second;
  AssertOutcome outcome;
  if (op == "<=") {
    outcome.ok = actual <= expected;
  } else if (op == ">=") {
    outcome.ok = actual >= expected;
  } else if (op == "==") {
    outcome.ok = actual == expected;
  } else if (op == "!=") {
    outcome.ok = actual != expected;
  } else if (op == "<") {
    outcome.ok = actual < expected;
  } else {
    outcome.ok = actual > expected;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s = %g (want %s %g)", key.c_str(), actual,
                std::string(op).c_str(), expected);
  outcome.detail = buf;
  return outcome;
}

}  // namespace report
}  // namespace faasnap

// Image-processing service scenario.
//
// An image-rotation endpoint (the paper's `image` function) receives requests
// whose JPEG inputs vary in content and size — the situation where REAP's
// stable-working-set assumption breaks (sections 3, 6.3). This example records a
// snapshot once, then serves a stream of requests with inputs from 0.5x to 3x of
// the recorded one, comparing REAP and FaaSnap per request.
//
// Run: ./build/examples/image_pipeline

#include <cstdio>

#include "src/runtime/platform.h"

using namespace faasnap;

namespace {

struct Request {
  const char* label;
  double size_ratio;
  uint64_t content_seed;
};

}  // namespace

int main() {
  PlatformConfig config;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction("image");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);

  std::printf("recording snapshot with a %s working set (input A)...\n",
              FormatBytes(PagesToBytes(spec->WorkingSetPages(spec->input_a))).c_str());
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));

  const Request requests[] = {
      {"thumbnail (0.5x)", 0.5, 101},
      {"same-size photo (1x)", 1.0, 102},
      {"different photo (1x)", 1.0, 103},
      {"hi-res photo (2x)", 2.0, 104},
      {"panorama (3x)", 3.0, 105},
  };

  std::printf("\n%-22s %14s %14s %9s\n", "request", "reap (ms)", "faasnap (ms)", "speedup");
  std::printf("--------------------------------------------------------------\n");
  double reap_total = 0;
  double faasnap_total = 0;
  for (const Request& request : requests) {
    const WorkloadInput input = MakeScaledInput(*spec, request.size_ratio, request.content_seed);
    platform.DropCaches();
    InvocationReport reap = platform.Invoke(snapshot, RestoreMode::kReap, generator, input);
    platform.DropCaches();
    InvocationReport faasnap =
        platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, input);
    reap_total += reap.total_time().millis();
    faasnap_total += faasnap.total_time().millis();
    std::printf("%-22s %14.1f %14.1f %8.2fx\n", request.label, reap.total_time().millis(),
                faasnap.total_time().millis(),
                reap.total_time().millis() / faasnap.total_time().millis());
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-22s %14.1f %14.1f %8.2fx\n", "total", reap_total, faasnap_total,
              reap_total / faasnap_total);
  std::printf("\nThe gap widens with input drift: host page recording plus per-region\n"
              "mapping tolerate accesses outside the recorded working set; REAP handles\n"
              "them one page at a time in userspace via userfaultfd.\n");
  return 0;
}

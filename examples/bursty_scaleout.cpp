// Bursty scale-out scenario.
//
// An IoT backend receives a burst of simultaneous invocations (section 6.6): a
// sensor fleet reports at once and 32 instances of the same function must start
// together. This example issues the burst asynchronously on one simulated host
// and shows how the shared page cache lets FaaSnap instances load the snapshot
// for each other, while REAP's page-cache-bypassing fetch reads the working set
// from disk 32 times.
//
// Run: ./build/examples/bursty_scaleout

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/runtime/platform.h"

using namespace faasnap;

namespace {

void RunBurst(RestoreMode mode, int parallelism) {
  PlatformConfig config;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction("json");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();

  const BlockDeviceStats disk_before = platform.disk()->stats();
  std::vector<double> latencies;
  for (int i = 0; i < parallelism; ++i) {
    WorkloadInput input = MakeInputA(*spec);
    input.content_seed = 0x1070 + static_cast<uint64_t>(i);
    platform.InvokeAsync(snapshot, mode, generator.Generate(input),
                         [&](InvocationReport report) {
                           latencies.push_back(report.total_time().millis());
                         });
  }
  platform.sim()->Run();
  std::sort(latencies.begin(), latencies.end());
  const BlockDeviceStats disk = platform.disk()->stats() - disk_before;
  double sum = 0;
  for (double v : latencies) {
    sum += v;
  }
  std::printf("%-12s  mean %7.1f ms   p50 %7.1f   p99 %7.1f   disk %s in %llu reads\n",
              RestoreModeName(mode).data(), sum / static_cast<double>(latencies.size()),
              latencies[latencies.size() / 2], latencies[latencies.size() * 99 / 100],
              FormatBytes(disk.bytes_read).c_str(),
              static_cast<unsigned long long>(disk.read_requests));
}

}  // namespace

int main() {
  constexpr int kParallelism = 32;
  std::printf("burst: %d simultaneous json invocations from the same snapshot\n\n",
              kParallelism);
  for (RestoreMode mode :
       {RestoreMode::kFirecracker, RestoreMode::kReap, RestoreMode::kFaasnap}) {
    RunBurst(mode, kParallelism);
  }
  std::printf("\nFaaSnap reads the loading set from disk once — the shared page cache and\n"
              "the loader's once-only access serve all %d guests. REAP's bypassing fetch\n"
              "re-reads the working set per guest.\n",
              kParallelism);
  return 0;
}

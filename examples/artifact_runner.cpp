// artifact_runner: the counterpart of the paper artifact's `test.py` driver.
//
// The FaaSnap artifact (Appendix A.4) runs every experiment as
// `test.py test-2inputs.json` etc.; this binary does the same against the
// simulation platform:
//
//   ./build/examples/artifact_runner configs/test-2inputs.json          # E1
//   ./build/examples/artifact_runner configs/test-6inputs.json          # E2
//   ./build/examples/artifact_runner configs/test-burst.json            # E3
//   ./build/examples/artifact_runner configs/test-remote.json           # E4
//   ./build/examples/artifact_runner --json configs/test-2inputs.json   # machine-readable
//
// --trace-out=PATH / --metrics-out=PATH / --timeline-out=PATH /
// --forensics-out=PATH write the Perfetto trace, metrics snapshot, windowed
// metrics timeline (JSONL), and forensics digest (overriding the config's
// corresponding fields).

#include <cstdio>
#include <cstring>

#include "src/daemon/experiment_config.h"
#include "src/daemon/experiment_runner.h"

using namespace faasnap;

int main(int argc, char** argv) {
  bool json = false;
  const char* path = nullptr;
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  const char* timeline_out = nullptr;
  const char* forensics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--timeline-out=", 15) == 0) {
      timeline_out = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--forensics-out=", 16) == 0) {
      forensics_out = argv[i] + 16;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: artifact_runner [--json] [--trace-out=PATH] [--metrics-out=PATH] "
                 "[--timeline-out=PATH] [--forensics-out=PATH] <config.json>\n");
    return 2;
  }

  Result<ExperimentConfig> config = LoadExperimentConfig(path);
  if (!config.ok()) {
    std::fprintf(stderr, "config error: %s\n", config.status().ToString().c_str());
    return 1;
  }
  if (trace_out != nullptr) {
    config->trace_out = trace_out;
  }
  if (metrics_out != nullptr) {
    config->metrics_out = metrics_out;
  }
  if (timeline_out != nullptr) {
    config->timeline_out = timeline_out;
  }
  if (forensics_out != nullptr) {
    config->forensics_out = forensics_out;
    config->forensics = true;
  }
  if (!json) {
    std::printf("running \"%s\": %zu functions x %zu systems x %zu inputs x %d reps%s\n",
                config->name.c_str(), config->functions.size(), config->systems.size(),
                config->test_inputs.size(), config->reps,
                config->parallelism > 1
                    ? (" at parallelism " + std::to_string(config->parallelism)).c_str()
                    : "");
  }
  Result<ExperimentResults> results = RunExperiment(*config);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment error: %s\n", results.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::printf("%s\n", results->ToJson().c_str());
  } else {
    std::printf("\n%s", results->ToTable().c_str());
  }
  return 0;
}

// artifact_runner: the counterpart of the paper artifact's `test.py` driver.
//
// The FaaSnap artifact (Appendix A.4) runs every experiment as
// `test.py test-2inputs.json` etc.; this binary does the same against the
// simulation platform:
//
//   ./build/examples/artifact_runner configs/test-2inputs.json          # E1
//   ./build/examples/artifact_runner configs/test-6inputs.json          # E2
//   ./build/examples/artifact_runner configs/test-burst.json            # E3
//   ./build/examples/artifact_runner configs/test-remote.json           # E4
//   ./build/examples/artifact_runner --json configs/test-2inputs.json   # machine-readable
//
// --trace-out=PATH / --metrics-out=PATH write the Perfetto trace and metrics
// snapshot (overriding the config's trace_out/metrics_out fields).

#include <cstdio>
#include <cstring>

#include "src/daemon/experiment_config.h"
#include "src/daemon/experiment_runner.h"

using namespace faasnap;

int main(int argc, char** argv) {
  bool json = false;
  const char* path = nullptr;
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: artifact_runner [--json] [--trace-out=PATH] [--metrics-out=PATH] "
                 "<config.json>\n");
    return 2;
  }

  Result<ExperimentConfig> config = LoadExperimentConfig(path);
  if (!config.ok()) {
    std::fprintf(stderr, "config error: %s\n", config.status().ToString().c_str());
    return 1;
  }
  if (trace_out != nullptr) {
    config->trace_out = trace_out;
  }
  if (metrics_out != nullptr) {
    config->metrics_out = metrics_out;
  }
  if (!json) {
    std::printf("running \"%s\": %zu functions x %zu systems x %zu inputs x %d reps%s\n",
                config->name.c_str(), config->functions.size(), config->systems.size(),
                config->test_inputs.size(), config->reps,
                config->parallelism > 1
                    ? (" at parallelism " + std::to_string(config->parallelism)).c_str()
                    : "");
  }
  Result<ExperimentResults> results = RunExperiment(*config);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment error: %s\n", results.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::printf("%s\n", results->ToJson().c_str());
  } else {
    std::printf("\n%s", results->ToTable().c_str());
  }
  return 0;
}

// faasnap_cli: command-line driver for ad-hoc experiments on the public API.
//
// Usage:
//   faasnap_cli [--function NAME] [--mode MODE[,MODE...]] [--test-input A|B]
//               [--ratio R] [--device nvme|ebs] [--parallelism N] [--reps K]
//               [--seed S] [--list]
//
// Examples:
//   faasnap_cli --function image --mode firecracker,reap,faasnap --test-input B
//   faasnap_cli --function json --mode faasnap --parallelism 16
//   faasnap_cli --function pagerank --mode reap --ratio 4
//   faasnap_cli --list

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/platform.h"
#include "src/metrics/json_writer.h"
#include "src/metrics/table.h"

using namespace faasnap;

namespace {

struct CliOptions {
  std::string function = "json";
  std::vector<std::string> modes = {"faasnap"};
  std::string test_input = "B";
  double ratio = 0.0;  // 0 = use A/B inputs; otherwise a Figure 8-style scale
  std::string device = "nvme";
  int parallelism = 1;
  int reps = 1;
  uint64_t seed = 1;
  bool list = false;
  bool json = false;
  bool help = false;
};

Result<RestoreMode> ParseMode(const std::string& name) {
  for (RestoreMode mode :
       {RestoreMode::kWarm, RestoreMode::kColdBoot, RestoreMode::kFirecracker,
        RestoreMode::kCached, RestoreMode::kReap, RestoreMode::kFaasnapConcurrentOnly,
        RestoreMode::kFaasnapPerRegion, RestoreMode::kFaasnap}) {
    if (name == RestoreModeName(mode)) {
      return mode;
    }
  }
  return InvalidArgumentError("unknown mode: " + name +
                              " (try warm, cold-boot, firecracker, cached, reap, con-paging, "
                              "per-region, faasnap)");
}

// Strict numeric parsing: the whole value must be a number. atoi-style silent
// truncation ("3abc" -> 3, "x" -> 0) turns typos into misconfigured runs.
Result<long long> ParseInt(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return InvalidArgumentError(flag + " requires an integer, got \"" + text + "\"");
  }
  return value;
}

Result<double> ParseNumber(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return InvalidArgumentError(flag + " requires a number, got \"" + text + "\"");
  }
  return value;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return InvalidArgumentError(arg + " requires a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--function") {
      ASSIGN_OR_RETURN(options.function, next_value());
    } else if (arg == "--mode") {
      ASSIGN_OR_RETURN(std::string modes, next_value());
      options.modes.clear();
      std::stringstream stream(modes);
      std::string item;
      while (std::getline(stream, item, ',')) {
        options.modes.push_back(item);
      }
      if (options.modes.empty()) {
        return InvalidArgumentError("--mode requires at least one mode");
      }
    } else if (arg == "--test-input") {
      ASSIGN_OR_RETURN(options.test_input, next_value());
      if (options.test_input != "A" && options.test_input != "B") {
        return InvalidArgumentError("--test-input must be A or B");
      }
    } else if (arg == "--ratio") {
      ASSIGN_OR_RETURN(std::string v, next_value());
      ASSIGN_OR_RETURN(options.ratio, ParseNumber(arg, v));
      if (options.ratio <= 0) {
        return InvalidArgumentError("--ratio must be positive");
      }
    } else if (arg == "--device") {
      ASSIGN_OR_RETURN(options.device, next_value());
      if (options.device != "nvme" && options.device != "ebs") {
        return InvalidArgumentError("--device must be nvme or ebs");
      }
    } else if (arg == "--parallelism") {
      ASSIGN_OR_RETURN(std::string v, next_value());
      ASSIGN_OR_RETURN(long long parallelism, ParseInt(arg, v));
      options.parallelism = static_cast<int>(parallelism);
      if (options.parallelism < 1) {
        return InvalidArgumentError("--parallelism must be >= 1");
      }
    } else if (arg == "--reps") {
      ASSIGN_OR_RETURN(std::string v, next_value());
      ASSIGN_OR_RETURN(long long reps, ParseInt(arg, v));
      options.reps = static_cast<int>(reps);
      if (options.reps < 1) {
        return InvalidArgumentError("--reps must be >= 1");
      }
    } else if (arg == "--seed") {
      ASSIGN_OR_RETURN(std::string v, next_value());
      ASSIGN_OR_RETURN(long long seed, ParseInt(arg, v));
      options.seed = static_cast<uint64_t>(seed);
    } else {
      return InvalidArgumentError("unknown flag: " + arg);
    }
  }
  return options;
}

void PrintCatalog() {
  TextTable table({"function", "description", "WS A (MB)", "WS B (MB)"});
  for (const FunctionSpec& spec : FunctionCatalog()) {
    table.AddRow({spec.name, spec.description,
                  FormatCell("%.1f", static_cast<double>(PagesToBytes(
                                         spec.WorkingSetPages(spec.input_a)).value()) /
                                         (1024.0 * 1024.0)),
                  FormatCell("%.1f", static_cast<double>(PagesToBytes(
                                         spec.WorkingSetPages(spec.input_b)).value()) /
                                         (1024.0 * 1024.0))});
  }
  std::printf("%s", table.ToString().c_str());
}

int RunCli(const CliOptions& options) {
  Result<FunctionSpec> spec = FindFunction(options.function);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  TextTable table({"mode", "total (ms)", "setup (ms)", "invoke (ms)", "majors", "uffd",
                   "fetch (MB)", "disk reads"});
  for (const std::string& mode_name : options.modes) {
    Result<RestoreMode> mode = ParseMode(mode_name);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
      return 1;
    }
    RunningStats total;
    InvocationReport last;
    for (int rep = 0; rep < options.reps; ++rep) {
      PlatformConfig config;
      if (options.device == "ebs") {
        config.disk = EbsIo2Profile();
      }
      config.seed = options.seed + static_cast<uint64_t>(rep) * 7919;
      Platform platform(config);
      TraceGenerator generator(*spec, config.layout);
      FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
      // Open every artifact through the validating API before restoring from
      // it; a checksum mismatch exits with the status instead of crashing
      // somewhere down the restore path.
      for (const char* suffix : {".mem", ".smem", ".reapws", ".lset"}) {
        Result<FileId> artifact = platform.store()->Open(options.function + suffix);
        if (!artifact.ok()) {
          std::fprintf(stderr, "snapshot artifact %s%s: %s\n", options.function.c_str(),
                       suffix, artifact.status().ToString().c_str());
          return 1;
        }
      }
      platform.DropCaches();

      WorkloadInput input =
          options.ratio > 0
              ? MakeScaledInput(*spec, options.ratio, 0xC11 + static_cast<uint64_t>(rep))
              : (options.test_input == "A" ? MakeInputA(*spec) : MakeInputB(*spec));
      if (options.parallelism == 1) {
        last = platform.Invoke(snapshot, *mode, generator, input);
        if (options.json) {
          std::printf("%s\n", InvocationReportToJson(last).c_str());
        }
        total.Record(last.total_time().millis());
      } else {
        double sum = 0;
        int completed = 0;
        for (int i = 0; i < options.parallelism; ++i) {
          WorkloadInput per = input;
          if (!spec->fixed_input) {
            per.content_seed += static_cast<uint64_t>(i) + 1;
          }
          platform.InvokeAsync(snapshot, *mode, generator.Generate(per),
                               [&](InvocationReport report) {
                                 sum += report.total_time().millis();
                                 last = std::move(report);
                                 ++completed;
                               });
        }
        platform.sim()->Run();
        FAASNAP_CHECK(completed == options.parallelism);
        total.Record(sum / options.parallelism);
      }
    }
    table.AddRow({mode_name,
                  FormatCell("%.1f +- %.1f", total.mean(), total.stddev()),
                  FormatCell("%.1f", last.setup_time.millis()),
                  FormatCell("%.1f", last.invocation_time.millis()),
                  FormatCell("%lld", static_cast<long long>(last.faults.major_faults())),
                  FormatCell("%lld",
                             static_cast<long long>(last.faults.count(FaultClass::kUffdHandled))),
                  FormatCell("%.1f", static_cast<double>(last.fetch_bytes.value()) / 1e6),
                  FormatCell("%llu", static_cast<unsigned long long>(last.disk.read_requests))});
  }
  if (options.json) {
    return 0;  // reports already emitted, one JSON object per line
  }
  std::printf("function: %s, test input: %s%s, device: %s, parallelism: %d, reps: %d\n\n",
              options.function.c_str(),
              options.ratio > 0 ? "ratio " : options.test_input.c_str(),
              options.ratio > 0 ? FormatCell("%.2g", options.ratio).c_str() : "",
              options.device.c_str(), options.parallelism, options.reps);
  std::printf("%s", table.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<CliOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  if (options->help) {
    std::printf("usage: faasnap_cli [--function NAME] [--mode MODE[,MODE...]]\n"
                "                   [--test-input A|B] [--ratio R] [--device nvme|ebs]\n"
                "                   [--parallelism N] [--reps K] [--seed S] [--json] [--list]\n");
    return 0;
  }
  if (options->list) {
    PrintCatalog();
    return 0;
  }
  return RunCli(*options);
}

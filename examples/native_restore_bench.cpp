// Native restore micro-comparison: whole-file mapping vs FaaSnap's hierarchical
// per-region mapping, against the real kernel.
//
// Builds a 256 MiB stamped memory file, records a working set, and times three
// restore strategies touching the same working set through fresh mappings:
//
//   1. whole-file  — one mmap of the memory file (vanilla Firecracker restore),
//   2. per-region  — anonymous base + non-zero regions + loading-set-file
//                    regions (Figure 4), loader thread off,
//   3. per-region + loader — same, with the sequential loader thread racing the
//                    toucher (concurrent paging).
//
// Page-cache effects depend on the host (fadvise eviction is best-effort and
// impossible on tmpfs), so both cache-dropped and warm passes are reported.
//
// Run: ./build/examples/native_restore_bench [pages]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/common/units.h"
#include "src/native/native_snapshot.h"

using namespace faasnap;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Touches every page in `accesses` through `mapper`, verifying stamps on sampled
// pages, and returns elapsed milliseconds.
double TouchAll(const NativeRegionMapper& mapper, const std::vector<PageIndex>& accesses) {
  auto start = std::chrono::steady_clock::now();
  uint64_t checksum = 0;
  for (PageIndex page : accesses) {
    checksum ^= NativeSnapshotSession::ReadStampThroughMapping(mapper, page);
  }
  const double ms = MsSince(start);
  // Spot-verify: a wrong mapping would corrupt stamps.
  for (size_t i = 0; i < accesses.size(); i += accesses.size() / 16 + 1) {
    FAASNAP_CHECK(NativeSnapshotSession::ReadStampThroughMapping(mapper, accesses[i]) ==
                  NativePageStamp(accesses[i]));
  }
  (void)checksum;
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  NativeSnapshotSession::Config config;
  const uint64_t guest_pages =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 65536;  // 256 MiB
  config.guest_pages = PageCount::FromPages(guest_pages);

  PageRangeSet nonzero;
  nonzero.Add(0, guest_pages / 4);                          // boot/runtime
  nonzero.Add(guest_pages / 2, guest_pages / 4);     // data
  auto session_or = NativeSnapshotSession::Create(config, nonzero);
  FAASNAP_CHECK_OK(session_or.status());
  auto session = std::move(session_or).value();

  // Working set: a scattered third of the runtime plus sequential data.
  std::vector<PageIndex> accesses;
  for (PageIndex p = 0; p < guest_pages / 4; p += 3) {
    accesses.push_back(p);
  }
  const uint64_t seq_pages = std::min<uint64_t>(8192, guest_pages / 8);
  for (PageIndex p = guest_pages / 2; p < guest_pages / 2 + seq_pages; ++p) {
    accesses.push_back(p);
  }
  auto groups = session->RecordWorkingSet(accesses, 1024);
  FAASNAP_CHECK_OK(groups.status());
  auto loading = session->BuildAndWriteLoadingSet(*groups, PageCount::FromPages(32));
  FAASNAP_CHECK_OK(loading.status());
  std::printf("memory file %s, working set %s, loading set %s in %zu regions\n\n",
              FormatBytes(PagesToBytes(guest_pages)).c_str(),
              FormatBytes(PagesToBytes(groups->AllPages().page_count())).c_str(),
              FormatBytes(PagesToBytes(loading->total_pages).value()).c_str(),
              loading->regions.size());

  std::printf("%-28s %14s %14s %12s\n", "strategy", "cold (ms)", "warm (ms)", "mmap calls");
  std::printf("----------------------------------------------------------------------\n");
  for (int strategy = 0; strategy < 3; ++strategy) {
    double cold_ms = 0;
    double warm_ms = 0;
    uint64_t mmap_calls = 0;
    for (int pass = 0; pass < 2; ++pass) {
      if (pass == 0) {
        session->DropCaches();  // best effort
      }
      std::unique_ptr<NativeRegionMapper> mapper;
      if (strategy == 0) {
        // Whole-file semantics: every non-zero extent maps straight to the
        // memory file (an empty loading set degenerates to exactly that).
        auto whole = session->RestorePerRegion(LoadingSetFile{});
        FAASNAP_CHECK_OK(whole.status());
        mapper = std::move(whole).value();
      } else {
        if (strategy == 2) {
          session->StartLoader();
        }
        auto restored = session->RestorePerRegion(*loading);
        FAASNAP_CHECK_OK(restored.status());
        mapper = std::move(restored).value();
      }
      const double ms = TouchAll(*mapper, accesses);
      mmap_calls = mapper->mmap_call_count();
      if (pass == 0) {
        cold_ms = ms;
      } else {
        warm_ms = ms;
      }
      if (strategy == 2) {
        FAASNAP_CHECK_OK(session->JoinLoader());
      }
    }
    const char* names[] = {"whole-file (memory file)", "per-region (no loader)",
                           "per-region + loader"};
    std::printf("%-28s %14.2f %14.2f %12llu\n", names[strategy], cold_ms, warm_ms,
                static_cast<unsigned long long>(mmap_calls));
  }
  std::printf("\nAll stamps verified through every mapping. On a real (non-tmpfs) filesystem\n"
              "the cold columns show the loader absorbing the page-cache misses.\n");
  return 0;
}

// trace_validate: schema validation for exported Chrome/Perfetto traces.
//
//   ./build/examples/trace_validate trace.json [--min-lanes=4]
//
// Parses the trace back with the repository's own JSON parser and checks the
// Chrome Trace Event Format invariants ExportChromeTrace promises:
//   * root object with a "traceEvents" array,
//   * every event has ph/name/pid (+tid except process_name metadata),
//     non-metadata events have a numeric ts,
//   * "X" (complete) events have a non-negative dur,
//   * thread_name metadata covers at least --min-lanes distinct actor lanes.
// Exits non-zero (with a message) on the first violation — CI runs this on the
// trace a smoke experiment emits.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "src/common/json.h"

using namespace faasnap;

namespace {

int Fail(const char* what) {
  std::fprintf(stderr, "trace_validate: FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  int min_lanes = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-lanes=", 12) == 0) {
      min_lanes = std::atoi(argv[i] + 12);
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: trace_validate [--min-lanes=N] <trace.json>\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in.good()) {
    return Fail("cannot open trace file");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  Result<JsonValue> root = ParseJson(buffer.str());
  if (!root.ok()) {
    std::fprintf(stderr, "trace_validate: FAIL: invalid JSON: %s\n",
                 root.status().ToString().c_str());
    return 1;
  }
  if (!root->is_object() || !root->Has("traceEvents")) {
    return Fail("root must be an object with a traceEvents array");
  }
  Result<JsonValue> events = root->Get("traceEvents");
  if (!events.ok() || !events->is_array()) {
    return Fail("traceEvents must be an array");
  }
  if (events->array().empty()) {
    return Fail("traceEvents is empty");
  }

  std::set<std::string> lanes;  // distinct thread_name values (actor lanes)
  int complete = 0;
  int instants = 0;
  for (const JsonValue& event : events->array()) {
    if (!event.is_object()) {
      return Fail("event is not an object");
    }
    const std::string ph = event.GetStringOr("ph", "");
    if (ph.empty()) {
      return Fail("event missing ph");
    }
    if (!event.Has("name") || !event.Has("pid")) {
      return Fail("event missing name/pid");
    }
    // process_name metadata is per-process and has no tid; everything else does.
    if (!event.Has("tid") && event.GetStringOr("name", "") != "process_name") {
      return Fail("event missing tid");
    }
    if (ph == "M") {
      if (event.GetStringOr("name", "") == "thread_name") {
        Result<JsonValue> args = event.Get("args");
        if (!args.ok() || !args->is_object()) {
          return Fail("thread_name metadata missing args");
        }
        lanes.insert(args->GetStringOr("name", ""));
      }
      continue;
    }
    Result<JsonValue> ts = event.Get("ts");
    if (!ts.ok() || !ts->is_number()) {
      return Fail("event missing numeric ts");
    }
    if (ph == "X") {
      Result<JsonValue> dur = event.Get("dur");
      if (!dur.ok() || !dur->is_number()) {
        return Fail("complete event missing numeric dur");
      }
      if (dur->AsDouble().value() < 0) {
        return Fail("complete event has negative dur");
      }
      ++complete;
    } else if (ph == "i") {
      if (event.GetStringOr("s", "") != "t") {
        return Fail("instant event missing scope s=t");
      }
      ++instants;
    } else {
      return Fail("unexpected ph (want X, i, or M)");
    }
  }
  if (complete == 0) {
    return Fail("no complete (ph=X) span events");
  }
  if (static_cast<int>(lanes.size()) < min_lanes) {
    std::fprintf(stderr, "trace_validate: FAIL: only %zu actor lanes, want >= %d\n",
                 lanes.size(), min_lanes);
    return 1;
  }

  std::printf("trace_validate: OK: %zu events (%d spans, %d instants) across %zu lanes\n",
              events->array().size(), complete, instants, lanes.size());
  return 0;
}

// Native engine demo: FaaSnap's mechanisms against the real kernel.
//
// Creates a real 64 MiB "guest memory file" with stamped non-zero pages, runs a
// record pass with mincore-based host page recording, writes a compact loading
// set file + manifest to disk, then restores with the hierarchical MAP_FIXED
// per-region mapping while a loader thread streams the loading set file — and
// verifies every page's contents through the restored mapping. Wall-clock times
// for whole-file vs per-region restore are reported.
//
// Requires only a writable /tmp; no KVM, no root.
//
// Run: ./build/examples/native_demo

#include <chrono>
#include <cstdio>
#include <vector>

#include "src/common/units.h"
#include "src/native/native_snapshot.h"

using namespace faasnap;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  NativeSnapshotSession::Config config;
  config.guest_pages = PageCount::FromPages(16384);  // 64 MiB

  // Guest layout: boot [0,2k), runtime [3k,7k), data [10k,12k); rest zero.
  PageRangeSet nonzero;
  nonzero.Add(0, 2048);
  nonzero.Add(3072, 4096);
  nonzero.Add(10240, 2048);

  auto session_or = NativeSnapshotSession::Create(config, nonzero);
  if (!session_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n", session_or.status().ToString().c_str());
    return 1;
  }
  auto session = std::move(session_or).value();
  std::printf("created %s memory file (%s non-zero)\n",
              FormatBytes(PagesToBytes(config.guest_pages)).c_str(),
              FormatBytes(PagesToBytes(nonzero.page_count())).c_str());

  // Record pass: a scattered runtime working set plus a sequential data read.
  std::vector<PageIndex> accesses;
  for (PageIndex p = 3072; p < 7168; p += 5) {
    accesses.push_back(p);
  }
  for (PageIndex p = 10240; p < 11264; ++p) {
    accesses.push_back(p);
  }
  auto record_start = std::chrono::steady_clock::now();
  auto groups_or = session->RecordWorkingSet(accesses, /*group_size=*/1024);
  FAASNAP_CHECK_OK(groups_or.status());
  std::printf("record pass: touched %zu pages, mincore recorded %s in %zu groups (%.1f ms)\n",
              accesses.size(),
              FormatBytes(PagesToBytes(groups_or->AllPages().page_count())).c_str(),
              groups_or->groups.size(), MsSince(record_start));

  auto loading_or = session->BuildAndWriteLoadingSet(*groups_or, PageCount::FromPages(32));
  FAASNAP_CHECK_OK(loading_or.status());
  std::printf("loading set: %s in %zu merged regions; manifest at %s\n",
              FormatBytes(PagesToBytes(loading_or->total_pages).value()).c_str(),
              loading_or->regions.size(), session->manifest_path().c_str());

  // Restore pass: hierarchical per-region mapping + concurrent loader thread.
  session->DropCaches();
  auto restore_start = std::chrono::steady_clock::now();
  session->StartLoader();
  auto mapper_or = session->RestorePerRegion(*loading_or);
  FAASNAP_CHECK_OK(mapper_or.status());
  const double map_ms = MsSince(restore_start);

  // The "guest": re-touch the working set through the new mapping, verifying
  // stamps (loading-set pages come from the compact file at remapped offsets).
  uint64_t verified = 0;
  for (PageIndex page : accesses) {
    const uint64_t stamp = NativeSnapshotSession::ReadStampThroughMapping(**mapper_or, page);
    FAASNAP_CHECK(stamp == NativePageStamp(page));
    ++verified;
  }
  // Zero pages are served by the anonymous base layer.
  FAASNAP_CHECK(NativeSnapshotSession::ReadStampThroughMapping(**mapper_or, 9000) == 0);
  const double touch_ms = MsSince(restore_start) - map_ms;
  FAASNAP_CHECK_OK(session->JoinLoader());

  std::printf("restore: %llu mmap calls in %.2f ms; %llu pages verified in %.2f ms\n",
              static_cast<unsigned long long>((*mapper_or)->mmap_call_count()), map_ms,
              static_cast<unsigned long long>(verified), touch_ms);
  std::printf("\nEvery byte matched: the Figure 4 mapping hierarchy (anonymous base,\n"
              "memory-file regions, loading-set regions) preserves guest memory exactly\n"
              "while redirecting hot pages to the compact sequential file.\n");
  return 0;
}

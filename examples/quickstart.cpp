// Quickstart: the minimal FaaSnap workflow.
//
//   1. Pick a function from the Table 2 catalog.
//   2. Record phase: run it once on a restored clean snapshot; the platform
//      produces every snapshot artifact (memory files, working set groups,
//      REAP working set, loading set file).
//   3. Test phase: drop caches, restore under a policy, invoke, inspect the
//      report.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/runtime/platform.h"

using namespace faasnap;

int main() {
  // 1. The platform models the paper's testbed: 96-core host, NVMe snapshot
  //    storage, 2 GiB / 2 vCPU guests. Everything is configurable.
  PlatformConfig config;
  Platform platform(config);

  // 2. Pick the `json` function and generate its record-phase input (input A).
  Result<FunctionSpec> spec = FindFunction("json");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  std::printf("function: %s — %s\n", spec->name.c_str(), spec->description.c_str());

  // 3. Record phase.
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  std::printf("record phase done:\n");
  std::printf("  working set   : %s in %zu groups\n",
              FormatBytes(PagesToBytes(snapshot.ws_groups.AllPages().page_count())).c_str(),
              snapshot.ws_groups.groups.size());
  std::printf("  loading set   : %s in %zu regions\n",
              FormatBytes(PagesToBytes(snapshot.loading_set.total_pages)).c_str(),
              snapshot.loading_set.regions.size());
  std::printf("  REAP ws file  : %s\n",
              FormatBytes(PagesToBytes(snapshot.reap_ws.size_pages())).c_str());

  // 4. Test phase: invoke with a different input (input B) under three policies.
  for (RestoreMode mode :
       {RestoreMode::kFirecracker, RestoreMode::kReap, RestoreMode::kFaasnap}) {
    platform.DropCaches();
    InvocationReport report = platform.Invoke(snapshot, mode, generator, MakeInputB(*spec));
    std::printf("%-12s total %7.1f ms  (setup %5.1f + invoke %6.1f)  majors %4lld  "
                "uffd %4lld  disk reads %llu\n",
                report.mode.c_str(), report.total_time().millis(), report.setup_time.millis(),
                report.invocation_time.millis(),
                static_cast<long long>(report.faults.major_faults()),
                static_cast<long long>(report.faults.count(FaultClass::kUffdHandled)),
                static_cast<unsigned long long>(report.disk.read_requests));
  }
  std::printf("\nFaaSnap should be the fastest: the loader prefetches the loading set\n"
              "concurrently and zero pages fault from anonymous memory.\n");
  return 0;
}

// Tests for the FlightRecorder: slowest-K tail retention exactness, non-ok
// retention and its overflow cap, buffer recycling bounds, exact critical-path
// partition for degraded/failed invocations, outcome propagation into the
// exported trace, and the digest document.

#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/json.h"
#include "src/obs/observability.h"
#include "src/runtime/platform.h"
#include "src/workloads/function_spec.h"

namespace faasnap {
namespace {

// Records one synthetic invocation into the recorder's buffer: an invoke span
// starting at `start_ns` with a dispatch+setup+invocation skeleton, then
// commits it with `outcome`.
void Invoke(FlightRecorder* rec, int64_t start_ns, int64_t total_ns, ForensicOutcome outcome,
            const std::string& function = "json") {
  rec->OnInvokeBegin();
  SpanTracer* spans = rec->buffer();
  const SimTime start = SimTime::FromNanos(start_ns);
  const SimTime end = SimTime::FromNanos(start_ns + total_ns);
  const SpanId invoke = spans->Begin(start, ObsLane::kDaemon, obsname::kInvoke);
  // dispatch covers the first fifth, setup the next fifth, guest the rest.
  const int64_t fifth = total_ns / 5;
  spans->Complete(start, start + Duration::Nanos(fifth), ObsLane::kDaemon, obsname::kDispatch,
                  0, 0, invoke);
  const SpanId setup = spans->Begin(start + Duration::Nanos(fifth), ObsLane::kDaemon,
                                    obsname::kSetup, 0, 0, invoke);
  spans->End(setup, start + Duration::Nanos(2 * fifth));
  const SpanId invocation = spans->Begin(start + Duration::Nanos(2 * fifth), ObsLane::kVcpu,
                                         obsname::kInvocation, 0, 0, invoke);
  spans->End(invocation, end);
  spans->End(invoke, end, static_cast<uint64_t>(outcome));
  rec->OnInvokeEnd(invoke, outcome, function, Duration::Nanos(total_ns));
}

std::multiset<int64_t> RetainedTotals(const std::vector<FlightRecorder::RetainedInvocation>& v) {
  std::multiset<int64_t> totals;
  for (const auto& r : v) {
    totals.insert(r.total.nanos());
  }
  return totals;
}

TEST(FlightRecorderTest, DisabledRecorderIsInert) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.OnInvokeBegin();
  rec.OnInvokeEnd(kNoSpan, ForensicOutcome::kOk, "json", Duration::Nanos(100));
  rec.MaybeRecycle();
  EXPECT_EQ(rec.invocations(), 0);
  EXPECT_EQ(rec.SummaryToJson(), "{\"enabled\":false}");
}

TEST(FlightRecorderTest, RetainsExactlyTheSlowestK) {
  FlightRecorder rec;
  ForensicsConfig config;
  config.slowest_k = 3;
  rec.Configure(config, nullptr);
  // Interleaved order so retention cannot rely on monotonic arrival.
  const int64_t totals[] = {50'000, 90'000, 10'000, 100'000, 30'000,
                            70'000, 20'000, 80'000, 40'000, 60'000};
  int64_t start = 0;
  for (const int64_t t : totals) {
    Invoke(&rec, start, t, ForensicOutcome::kOk);
    start += 1'000'000;
  }
  EXPECT_EQ(rec.invocations(), 10);
  EXPECT_EQ(rec.outcome_count(ForensicOutcome::kOk), 10);
  const std::multiset<int64_t> kept = RetainedTotals(rec.retained_slowest());
  EXPECT_EQ(kept, (std::multiset<int64_t>{80'000, 90'000, 100'000}));
  EXPECT_TRUE(rec.retained_non_ok().empty());
}

TEST(FlightRecorderTest, SlownessTiesBreakTowardRecentInvocations) {
  FlightRecorder rec;
  ForensicsConfig config;
  config.slowest_k = 2;
  rec.Configure(config, nullptr);
  for (int i = 0; i < 5; ++i) {
    Invoke(&rec, i * 1'000'000, 50'000, ForensicOutcome::kOk);
  }
  std::vector<uint64_t> seqs;
  for (const auto& r : rec.retained_slowest()) {
    seqs.push_back(r.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  // Equal totals: a later arrival ranks as slower, so the retained set drifts
  // toward the most recent exemplars of the tail.
  EXPECT_EQ(seqs, (std::vector<uint64_t>{3, 4}));
}

TEST(FlightRecorderTest, NonOkAlwaysRetainedUpToCap) {
  FlightRecorder rec;
  ForensicsConfig config;
  config.slowest_k = 1;
  config.max_non_ok = 2;
  rec.Configure(config, nullptr);
  // Fast failures: far from the slowest tail, still retained.
  Invoke(&rec, 0, 1'000, ForensicOutcome::kDegraded);
  Invoke(&rec, 1'000'000, 2'000, ForensicOutcome::kFailed);
  Invoke(&rec, 2'000'000, 3'000, ForensicOutcome::kFailed);  // over the cap
  Invoke(&rec, 3'000'000, 999'000, ForensicOutcome::kOk);
  EXPECT_EQ(rec.outcome_count(ForensicOutcome::kDegraded), 1);
  EXPECT_EQ(rec.outcome_count(ForensicOutcome::kFailed), 2);
  ASSERT_EQ(rec.retained_non_ok().size(), 2u);
  EXPECT_EQ(rec.retained_non_ok()[0].outcome, ForensicOutcome::kDegraded);
  EXPECT_EQ(rec.retained_non_ok()[1].outcome, ForensicOutcome::kFailed);
  EXPECT_EQ(rec.dropped_non_ok(), 1);
  // The digests still saw the dropped one.
  EXPECT_EQ(rec.invocations(), 4);
}

TEST(FlightRecorderTest, BufferRecyclesBetweenInvocations) {
  FlightRecorder rec;
  ForensicsConfig config;
  config.slowest_k = 2;
  config.buffer_capacity = 64;  // tiny: 100k-style soaks only work if recycled
  rec.Configure(config, nullptr);
  for (int i = 0; i < 500; ++i) {
    Invoke(&rec, i * 1'000'000, 10'000 + i, ForensicOutcome::kOk);
  }
  EXPECT_EQ(rec.invocations(), 500);
  EXPECT_GT(rec.recycles(), 0);
  // No invocation ever hit the capacity wall: every one was analyzed.
  EXPECT_EQ(rec.unanalyzed(), 0);
  EXPECT_EQ(RetainedTotals(rec.retained_slowest()),
            (std::multiset<int64_t>{10'498, 10'499}));
}

TEST(FlightRecorderTest, MissingInvokeSpanCountsAsUnanalyzed) {
  FlightRecorder rec;
  rec.Configure(ForensicsConfig{}, nullptr);
  rec.OnInvokeBegin();
  rec.OnInvokeEnd(kNoSpan, ForensicOutcome::kOk, "json", Duration::Nanos(5'000));
  EXPECT_EQ(rec.invocations(), 1);
  EXPECT_EQ(rec.unanalyzed(), 1);
}

// Satellite: the critical-path partition must hold for non-ok invocations
// exactly as for ok ones — phases partition the invoke window with no gap.
TEST(FlightRecorderTest, DegradedAndFailedBreakdownsPartitionExactly) {
  FlightRecorder rec;
  rec.Configure(ForensicsConfig{}, nullptr);
  Invoke(&rec, 0, 100'000, ForensicOutcome::kDegraded);
  Invoke(&rec, 1'000'000, 60'000, ForensicOutcome::kFailed);
  ASSERT_EQ(rec.retained_non_ok().size(), 2u);
  for (const auto& r : rec.retained_non_ok()) {
    EXPECT_EQ(r.breakdown.Sum().nanos(), r.total.nanos())
        << "phases must partition the invoke window exactly";
    EXPECT_EQ(r.breakdown.total.nanos(), r.total.nanos());
    // The skeleton spends 1/5 dispatching and 1/5 in setup.
    EXPECT_EQ(r.breakdown.dispatch.nanos(), r.total.nanos() / 5);
    EXPECT_EQ(r.breakdown.setup_cpu.nanos(), r.total.nanos() / 5);
    EXPECT_EQ(r.breakdown.guest_run.nanos(), r.total.nanos() - 2 * (r.total.nanos() / 5));
  }
}

TEST(FlightRecorderTest, OutcomeReachesExportedTrace) {
  FlightRecorder rec;
  ForensicsConfig config;
  config.slowest_k = 1;
  rec.Configure(config, nullptr);
  Invoke(&rec, 0, 80'000, ForensicOutcome::kDegraded, "pyaes");
  Invoke(&rec, 1'000'000, 90'000, ForensicOutcome::kOk, "json");
  const std::string trace = rec.ExportRetainedTrace();
  // One track per retained invocation, labeled with seq, function, outcome.
  EXPECT_NE(trace.find("inv 0 pyaes degraded"), std::string::npos) << trace;
  EXPECT_NE(trace.find("inv 1 json ok"), std::string::npos) << trace;
}

TEST(FlightRecorderTest, SummaryDigestIsValidJsonWithRetainedIndex) {
  FlightRecorder rec;
  ForensicsConfig config;
  config.slowest_k = 2;
  rec.Configure(config, nullptr);
  Invoke(&rec, 0, 40'000, ForensicOutcome::kOk);
  Invoke(&rec, 1'000'000, 90'000, ForensicOutcome::kOk);
  Invoke(&rec, 2'000'000, 5'000, ForensicOutcome::kFailed);
  Result<JsonValue> doc = ParseJson(rec.SummaryToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetIntOr("invocations", -1), 3);
  EXPECT_EQ(doc->GetIntOr("ok", -1), 2);
  EXPECT_EQ(doc->GetIntOr("failed", -1), 1);
  EXPECT_EQ(doc->GetIntOr("retained_slowest", -1), 2);
  EXPECT_EQ(doc->GetIntOr("retained_non_ok", -1), 1);
  Result<JsonValue> retained = doc->Get("retained");
  ASSERT_TRUE(retained.ok() && retained->is_array());
  ASSERT_EQ(retained->array().size(), 3u);
  // Sorted by seq; each entry carries the phase breakdown and outcome.
  EXPECT_EQ(retained->array()[0].GetIntOr("seq", -1), 0);
  EXPECT_EQ(retained->array()[2].GetStringOr("outcome", ""), "failed");
  EXPECT_TRUE(retained->array()[0].Has("guest_run_ns"));
  Result<JsonValue> digests = doc->Get("digests");
  ASSERT_TRUE(digests.ok() && digests->is_object());
  EXPECT_TRUE(digests->Has("total"));
}

// Conditional registration: the forensics series exist only when a registry
// is supplied — and then they mirror the internal tallies.
TEST(FlightRecorderTest, MetricsRegisteredOnlyWithRegistry) {
  MetricsRegistry bare;
  EXPECT_EQ(bare.size(), 0u);

  MetricsRegistry registry;
  FlightRecorder rec;
  ForensicsConfig config;
  config.slowest_k = 1;
  config.max_non_ok = 1;
  rec.Configure(config, &registry);
  EXPECT_GT(registry.size(), 0u);
  Invoke(&rec, 0, 50'000, ForensicOutcome::kOk);
  Invoke(&rec, 1'000'000, 70'000, ForensicOutcome::kDegraded);
  Invoke(&rec, 2'000'000, 80'000, ForensicOutcome::kDegraded);  // over cap
  EXPECT_EQ(registry.GetCounter("forensics.invocations", {{"outcome", "ok"}})->Get(), 1);
  EXPECT_EQ(registry.GetCounter("forensics.invocations", {{"outcome", "degraded"}})->Get(), 2);
  EXPECT_EQ(registry.GetCounter("forensics.retained", {{"reason", "slowest"}})->Get(), 1);
  EXPECT_EQ(registry.GetCounter("forensics.retained", {{"reason", "non_ok"}})->Get(), 1);
  EXPECT_EQ(registry.GetCounter("forensics.dropped_non_ok")->Get(), 1);
}

// End-to-end through Platform: forensics on, invoke through every layer, and
// check the recorder observed the invocations and retained analyzable trees.
TEST(FlightRecorderTest, PlatformDrivesRecorderEndToEnd) {
  Observability obs;
  ForensicsConfig config;
  config.slowest_k = 2;
  obs.forensics.Configure(config, &obs.metrics);
  PlatformConfig platform_config;
  platform_config.seed = 7;
  Platform platform(platform_config);
  platform.set_observability(&obs);
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform_config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  for (int i = 0; i < 5; ++i) {
    platform.DropCaches();
    InvocationReport report =
        platform.Invoke(snapshot, RestoreMode::kReap, generator, MakeInputA(*spec));
    EXPECT_EQ(report.outcome, InvocationOutcome::kOk);
  }
  EXPECT_EQ(obs.forensics.invocations(), 5);
  EXPECT_EQ(obs.forensics.outcome_count(ForensicOutcome::kOk), 5);
  EXPECT_EQ(obs.forensics.unanalyzed(), 0);
  EXPECT_GT(obs.forensics.recycles(), 0);
  ASSERT_EQ(obs.forensics.retained_slowest().size(), 2u);
  for (const auto& r : obs.forensics.retained_slowest()) {
    EXPECT_EQ(r.breakdown.Sum().nanos(), r.total.nanos());
    EXPECT_FALSE(r.spans.empty());
  }
  // The retained trace is valid JSON and the digest parses.
  EXPECT_TRUE(ParseJson(obs.forensics.ExportRetainedTrace()).ok());
  EXPECT_TRUE(ParseJson(obs.forensics.SummaryToJson()).ok());
}

}  // namespace
}  // namespace faasnap

// Observability must be passive: attaching a tracer and metrics registry may
// not schedule events, read clocks, or otherwise perturb the simulation. A
// traced run and an untraced run of the same seed must be bit-identical.

#include <gtest/gtest.h>

#include <optional>

#include "src/runtime/platform.h"
#include "src/obs/critical_path.h"
#include "src/obs/observability.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

struct RunOutcome {
  InvocationReport report;
  int64_t final_sim_nanos = 0;
};

RunOutcome RunOnce(RestoreMode mode, Observability* obs) {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.08;
  config.disk = disk;
  config.seed = 7;
  Platform platform(config);
  if (obs != nullptr) {
    platform.set_observability(obs);
  }
  Result<FunctionSpec> spec = FindFunction("image");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  RunOutcome out;
  out.report = platform.Invoke(snapshot, mode, generator, MakeInputB(*spec));
  out.final_sim_nanos = platform.sim()->now().nanos();
  return out;
}

class ObsDeterminismTest : public ::testing::TestWithParam<RestoreMode> {};

TEST_P(ObsDeterminismTest, TracingOnAndOffGiveIdenticalRuns) {
  const RestoreMode mode = GetParam();
  RunOutcome untraced = RunOnce(mode, nullptr);
  Observability obs;
  RunOutcome traced = RunOnce(mode, &obs);

  EXPECT_EQ(traced.final_sim_nanos, untraced.final_sim_nanos);
  EXPECT_EQ(traced.report.total_time(), untraced.report.total_time());
  EXPECT_EQ(traced.report.setup_time, untraced.report.setup_time);
  EXPECT_EQ(traced.report.faults.total_faults(), untraced.report.faults.total_faults());
  EXPECT_EQ(traced.report.faults.total_fault_time,
            untraced.report.faults.total_fault_time);
  EXPECT_EQ(traced.report.disk.read_requests, untraced.report.disk.read_requests);
  EXPECT_EQ(traced.report.disk.bytes_read, untraced.report.disk.bytes_read);
  EXPECT_EQ(traced.report.fetch_bytes, untraced.report.fetch_bytes);
  EXPECT_EQ(traced.report.mmap_calls, untraced.report.mmap_calls);

  // The traced run actually captured spans (it was not a silent no-op)...
  EXPECT_FALSE(obs.spans.records().empty());
  // ...and the span timeline agrees with the untraced run's timings exactly.
  std::optional<CriticalPathBreakdown> breakdown =
      AnalyzeColdStart(obs.spans, /*track=*/0, /*invoke_index=*/0);
  ASSERT_TRUE(breakdown.has_value());
  EXPECT_EQ(breakdown->total.nanos(), untraced.report.total_time().nanos());
}

TEST_P(ObsDeterminismTest, TwoTracedRunsProduceIdenticalSpanStreams) {
  const RestoreMode mode = GetParam();
  Observability a, b;
  RunOnce(mode, &a);
  RunOnce(mode, &b);
  ASSERT_EQ(a.spans.records().size(), b.spans.records().size());
  for (size_t i = 0; i < a.spans.records().size(); ++i) {
    const SpanRecord& ra = a.spans.records()[i];
    const SpanRecord& rb = b.spans.records()[i];
    EXPECT_EQ(ra.start.nanos(), rb.start.nanos()) << "span " << i;
    EXPECT_EQ(ra.end.nanos(), rb.end.nanos()) << "span " << i;
    EXPECT_EQ(a.spans.name(ra.name), b.spans.name(rb.name)) << "span " << i;
    EXPECT_EQ(ra.parent, rb.parent) << "span " << i;
    EXPECT_EQ(ra.lane, rb.lane) << "span " << i;
    EXPECT_EQ(ra.arg0, rb.arg0) << "span " << i;
    EXPECT_EQ(ra.arg1, rb.arg1) << "span " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ObsDeterminismTest,
                         ::testing::Values(RestoreMode::kFirecracker, RestoreMode::kReap,
                                           RestoreMode::kFaasnap),
                         [](const ::testing::TestParamInfo<RestoreMode>& param_info) {
                           std::string name(RestoreModeName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace faasnap

#include "src/vm/vm.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/storage/device_profiles.h"
#include "src/vm/guest_layout.h"

namespace faasnap {
namespace {

constexpr FileId kMemFile = 1;
constexpr uint64_t kPages = 4096;

class VmTest : public ::testing::Test {
 protected:
  VmTest() : disk_(&sim_, TestDiskProfile()), space_(PageCount::FromPages(kPages)), cpu_(96) {
    router_.AddDevice(&disk_);
    HostCostModel costs;
    costs.cost_dispersion = false;  // exact-cost assertions below
    engine_ = std::make_unique<FaultEngine>(&sim_, &cache_, &router_, &space_, &readahead_,
                                            [](FileId) { return PageCount::FromPages(kPages); }, costs);
    vm_ = std::make_unique<Vm>(&sim_, engine_.get(), &cpu_, /*vcpus=*/2);
  }

  Vm::InvocationResult Run(const InvocationTrace& trace) {
    Vm::InvocationResult out;
    bool finished = false;
    vm_->RunInvocation(trace, [&](Vm::InvocationResult r) {
      out = r;
      finished = true;
    });
    sim_.Run();
    EXPECT_TRUE(finished);
    return out;
  }

  Simulation sim_;
  PageCache cache_;
  BlockDevice disk_;
  StorageRouter router_;
  AddressSpace space_;
  CpuModel cpu_;
  ReadaheadPolicy readahead_;
  std::unique_ptr<FaultEngine> engine_;
  std::unique_ptr<Vm> vm_;
};

TEST_F(VmTest, EmptyTraceFinishesImmediately) {
  InvocationTrace trace;
  Vm::InvocationResult r = Run(trace);
  EXPECT_EQ(r.elapsed, Duration::Zero());
  EXPECT_EQ(r.access_count, 0u);
}

TEST_F(VmTest, PureComputeTakesComputeTime) {
  InvocationTrace trace;
  trace.trailing_compute = Duration::Millis(4);
  Vm::InvocationResult r = Run(trace);
  EXPECT_EQ(r.elapsed, Duration::Millis(4));
}

TEST_F(VmTest, ComputePlusAnonymousFaults) {
  space_.Map({.guest = {0, kPages}, .kind = BackingKind::kAnonymous});
  InvocationTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.ops.push_back(TraceOp{Duration::Micros(100), static_cast<PageIndex>(i), true});
  }
  Vm::InvocationResult r = Run(trace);
  // 10 * (100us compute + 2.5us anon fault)
  EXPECT_EQ(r.elapsed, Duration::Micros(1025));
  EXPECT_EQ(r.access_count, 10u);
  EXPECT_EQ(r.written_pages.page_count(), 10u);
  EXPECT_EQ(engine_->metrics().count(FaultClass::kAnonymous), 10);
}

TEST_F(VmTest, RepeatAccessesAreFree) {
  space_.Map({.guest = {0, kPages}, .kind = BackingKind::kAnonymous});
  InvocationTrace trace;
  for (int i = 0; i < 5; ++i) {
    trace.ops.push_back(TraceOp{Duration::Zero(), 7, false});
  }
  Vm::InvocationResult r = Run(trace);
  EXPECT_EQ(r.elapsed, engine_->costs().anonymous_fault);  // one fault, four free hits
  EXPECT_EQ(engine_->metrics().count(FaultClass::kNoFault), 4);
}

TEST_F(VmTest, MajorFaultsBlockTheVcpu) {
  space_.Map({.guest = {0, kPages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  InvocationTrace trace;
  trace.ops.push_back(TraceOp{Duration::Zero(), 100, false});
  Vm::InvocationResult r = Run(trace);
  EXPECT_GT(r.elapsed, Duration::Micros(50));  // includes the disk read
  EXPECT_EQ(engine_->metrics().count(FaultClass::kMajor), 1);
}

TEST_F(VmTest, ObserverSeesEveryAccessWithClass) {
  space_.Map({.guest = {0, kPages}, .kind = BackingKind::kAnonymous});
  std::vector<std::pair<PageIndex, FaultClass>> seen;
  vm_->set_access_observer([&](PageIndex p, FaultClass c) { seen.emplace_back(p, c); });
  InvocationTrace trace;
  trace.ops.push_back(TraceOp{Duration::Zero(), 3, true});
  trace.ops.push_back(TraceOp{Duration::Zero(), 3, false});
  trace.ops.push_back(TraceOp{Duration::Zero(), 4, true});
  Run(trace);
  ASSERT_EQ(seen.size(), 3u);
  const auto expected0 = std::make_pair<PageIndex, FaultClass>(3, FaultClass::kAnonymous);
  const auto expected1 = std::make_pair<PageIndex, FaultClass>(3, FaultClass::kNoFault);
  const auto expected2 = std::make_pair<PageIndex, FaultClass>(4, FaultClass::kAnonymous);
  EXPECT_EQ(seen[0], expected0);
  EXPECT_EQ(seen[1], expected1);
  EXPECT_EQ(seen[2], expected2);
}

TEST_F(VmTest, VcpusCountAgainstCpuModelOnlyWhileRunning) {
  EXPECT_EQ(cpu_.runnable(), 0);
  InvocationTrace trace;
  trace.trailing_compute = Duration::Millis(1);
  bool checked = false;
  vm_->RunInvocation(trace, [&](Vm::InvocationResult) {});
  sim_.ScheduleAfter(Duration::Micros(500), [&] {
    EXPECT_EQ(cpu_.runnable(), 2);
    checked = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(cpu_.runnable(), 0);
}

TEST_F(VmTest, CpuContentionStretchesCompute) {
  CpuModel small_cpu(1);
  Vm vm_a(&sim_, engine_.get(), &small_cpu, /*vcpus=*/1);
  Vm vm_b(&sim_, engine_.get(), &small_cpu, /*vcpus=*/1);
  InvocationTrace trace;
  trace.trailing_compute = Duration::Millis(10);
  Duration a_elapsed;
  Duration b_elapsed;
  vm_a.RunInvocation(trace, [&](Vm::InvocationResult r) { a_elapsed = r.elapsed; });
  vm_b.RunInvocation(trace, [&](Vm::InvocationResult r) { b_elapsed = r.elapsed; });
  sim_.Run();
  // The contention factor is sampled when a compute burst is issued: vm_a issued
  // its burst before vm_b became runnable (factor 1), vm_b issued under
  // 2-runnable/1-core contention (factor 2).
  EXPECT_EQ(a_elapsed, Duration::Millis(10));
  EXPECT_EQ(b_elapsed, Duration::Millis(20));
}

TEST_F(VmTest, WrittenPagesExcludeReads) {
  space_.Map({.guest = {0, kPages}, .kind = BackingKind::kAnonymous});
  InvocationTrace trace;
  trace.ops.push_back(TraceOp{Duration::Zero(), 1, false});
  trace.ops.push_back(TraceOp{Duration::Zero(), 2, true});
  Vm::InvocationResult r = Run(trace);
  EXPECT_FALSE(r.written_pages.Contains(1));
  EXPECT_TRUE(r.written_pages.Contains(2));
}

TEST(GuestLayoutInVmTest, TraceHelpers) {
  InvocationTrace trace;
  trace.ops.push_back(TraceOp{Duration::Micros(5), 10, false});
  trace.ops.push_back(TraceOp{Duration::Micros(5), 11, false});
  trace.ops.push_back(TraceOp{Duration::Zero(), 10, true});
  trace.trailing_compute = Duration::Micros(10);
  EXPECT_EQ(trace.access_count(), 3u);
  EXPECT_EQ(trace.TouchedPages().page_count(), 2u);
  EXPECT_EQ(trace.TotalCompute(), Duration::Micros(20));
}

}  // namespace
}  // namespace faasnap

#include "src/runtime/host_scheduler.h"

#include <gtest/gtest.h>

#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

TEST(ZipfArrivals, SkewsTowardLowRanks) {
  std::vector<Arrival> arrivals = ZipfArrivals(8, 4000, 1.2, Duration::Seconds(1), 42);
  ASSERT_EQ(arrivals.size(), 4000u);
  std::vector<int> counts(8, 0);
  for (const Arrival& a : arrivals) {
    ASSERT_LT(a.function_index, 8u);
    EXPECT_GT(a.gap, Duration::Zero());
    counts[a.function_index]++;
  }
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[3], counts[7]);
  EXPECT_GT(counts[0], 4000 / 4);  // rank 1 dominates
}

TEST(ZipfArrivals, DeterministicPerSeed) {
  auto a = ZipfArrivals(4, 50, 1.0, Duration::Seconds(5), 7);
  auto b = ZipfArrivals(4, 50, 1.0, Duration::Seconds(5), 7);
  auto c = ZipfArrivals(4, 50, 1.0, Duration::Seconds(5), 8);
  EXPECT_EQ(a[10].function_index, b[10].function_index);
  EXPECT_EQ(a[10].gap, b[10].gap);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].function_index != c[i].function_index;
  }
  EXPECT_TRUE(any_diff);
}

class HostSchedulerTest : public ::testing::Test {
 protected:
  HostSchedulerTest() : platform_(TestConfig()) {}

  HostScheduler MakeScheduler(ByteCount budget, RestoreMode miss_mode,
                              Duration keep_warm = Duration::Seconds(600)) {
    HostSchedulerConfig config;
    config.warm_pool_budget_bytes = budget;
    config.keep_warm = keep_warm;
    config.miss_mode = miss_mode;
    return HostScheduler(&platform_, config);
  }

  Platform platform_;
};

TEST_F(HostSchedulerTest, AmpleBudgetKeepsEverythingWarm) {
  HostScheduler scheduler = MakeScheduler(GiB(2), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("image"));
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 12; ++i) {
    arrivals.push_back(Arrival{static_cast<size_t>(i % 2), Duration::Seconds(1)});
  }
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.invocations, 12);
  EXPECT_EQ(stats.misses, 2);  // first touch of each function only
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.per_function_invocations[0], 6);
  EXPECT_EQ(stats.per_function_hits[0], 5);
}

TEST_F(HostSchedulerTest, TightBudgetEvictsLru) {
  // json (~16 MB) and image (~21 MB) cannot both stay warm in 24 MB:
  // alternating arrivals thrash the pool.
  HostScheduler scheduler = MakeScheduler(MiB(24), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("image"));
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 10; ++i) {
    arrivals.push_back(Arrival{static_cast<size_t>(i % 2), Duration::Seconds(1)});
  }
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_GT(stats.evictions, 3);
  EXPECT_LT(stats.warm_hit_rate(), 0.5);
}

TEST_F(HostSchedulerTest, KeepAliveHorizonExpiresIdleVms) {
  HostScheduler scheduler =
      MakeScheduler(GiB(2), RestoreMode::kFaasnap, /*keep_warm=*/Duration::Seconds(30));
  scheduler.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals = {
      {0, Duration::Seconds(1)},
      {0, Duration::Seconds(5)},    // warm hit
      {0, Duration::Seconds(120)},  // expired
  };
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.warm_hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.expirations, 1);
}

TEST_F(HostSchedulerTest, MissPathDeterminesMissLatency) {
  HostScheduler faasnap_sched = MakeScheduler(MiB(1), RestoreMode::kFaasnap);
  faasnap_sched.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals(4, Arrival{0, Duration::Seconds(2)});
  HostSchedulerStats faasnap_stats = faasnap_sched.Run(arrivals);

  Platform cold_platform(TestConfig());
  HostSchedulerConfig cold_config;
  cold_config.warm_pool_budget_bytes = MiB(1);  // nothing fits: all misses
  cold_config.miss_mode = RestoreMode::kColdBoot;
  HostScheduler cold_sched(&cold_platform, cold_config);
  cold_sched.AddFunction(*FindFunction("json"));
  HostSchedulerStats cold_stats = cold_sched.Run(arrivals);

  EXPECT_EQ(faasnap_stats.misses, 4);  // 1 MiB pool: every arrival misses
  EXPECT_EQ(cold_stats.misses, 4);
  EXPECT_GT(cold_stats.miss_latency_ms.mean(), 10 * faasnap_stats.miss_latency_ms.mean());
}

TEST_F(HostSchedulerTest, PoolBytesTrackWarmVms) {
  HostScheduler scheduler = MakeScheduler(GiB(2), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals(5, Arrival{0, Duration::Seconds(10)});
  HostSchedulerStats stats = scheduler.Run(arrivals);
  // The warm VM pins ~its working set on average once resident.
  const double ws = static_cast<double>(
      PagesToBytes(scheduler.snapshot(0).record_touched.page_count()));
  EXPECT_GT(stats.avg_pool_bytes, ws * 0.5);
  EXPECT_LT(stats.avg_pool_bytes, ws * 1.5);
}

TEST_F(HostSchedulerTest, OversizedWorkingSetNeverFitsButStillServes) {
  // json (~16 MB) can never fit a 4 MB pool: the first serve leaves a warm VM
  // the budget cannot hold, so every later arrival evicts it again and misses.
  // This pins the legacy behavior: an oversized working set degrades to
  // serve-and-evict instead of wedging the pool.
  HostScheduler scheduler = MakeScheduler(MiB(4), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals(3, Arrival{0, Duration::Seconds(1)});
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.invocations, 3);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.warm_hits, 0);
  EXPECT_EQ(stats.evictions, 2);  // arrivals 2 and 3 evict the oversized VM
  EXPECT_EQ(stats.expirations, 0);
}

TEST_F(HostSchedulerTest, ExpirationReclaimsEveryIdleVmPastTheHorizon) {
  HostScheduler scheduler =
      MakeScheduler(GiB(2), RestoreMode::kFaasnap, /*keep_warm=*/Duration::Seconds(30));
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("image"));
  std::vector<Arrival> arrivals = {
      {0, Duration::Seconds(1)},
      {1, Duration::Seconds(1)},
      {0, Duration::Seconds(120)},  // both idle VMs are past the horizon
  };
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.expirations, 2);  // the whole expired prefix, not just one
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.warm_hits, 0);
  EXPECT_EQ(stats.evictions, 0);  // horizon reclaims are not budget evictions
}

TEST_F(HostSchedulerTest, EvictionAndMissCountsAreExact) {
  // 24 MB holds either json (~16 MB) or image (~21 MB), never both: each
  // alternation evicts the other function's VM — exactly one eviction per
  // arrival after the first.
  HostScheduler scheduler = MakeScheduler(MiB(24), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("image"));
  std::vector<Arrival> arrivals = {
      {0, Duration::Seconds(1)},
      {1, Duration::Seconds(1)},
      {0, Duration::Seconds(1)},
  };
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.warm_hits, 0);
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(stats.expirations, 0);
}

TEST(HostSchedulerQuarantineTest, ExpiryRestoresSnapshotServing) {
  // Snapshot reads live on a remote tier whose outage windows are fixed by the
  // chaos seed: with seed 7 the outage is active from ~1.0 s to ~13.0 s and
  // clear until ~17.8 s. Three misses inside the window fail and quarantine
  // the snapshot; a miss during the backoff cold-boots (and succeeds); after
  // the backoff expires — with the outage over — the snapshot serves again.
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  config.remote_disk = EbsIo2Profile();
  config.placement.memory_files = StorageTier::kRemote;
  config.placement.reap_ws = StorageTier::kRemote;
  config.chaos.enabled = true;
  config.chaos.seed = 7;
  config.chaos.remote_outage_mean_gap = Duration::Seconds(8);
  config.chaos.remote_outage_duration = Duration::Seconds(12);
  config.storage_faults.failover_to_local = false;  // the outage must be fatal
  Platform platform(config);
  HostSchedulerConfig sched;
  sched.warm_pool_budget_bytes = GiB(2);
  sched.miss_mode = RestoreMode::kReap;
  sched.quarantine_failure_threshold = 3;
  sched.quarantine_backoff = Duration::Seconds(8);
  // Short horizon: the VM the backoff cold boot leaves behind must expire
  // before the post-recovery arrival, or that arrival would serve warm and
  // never retry the snapshot.
  sched.keep_warm = Duration::Seconds(5);
  HostScheduler scheduler(&platform, sched);
  scheduler.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals = {
      {0, Duration::Seconds(1)},  // ~1.4 s: outage, restore fails
      {0, Duration::Seconds(1)},  // ~2.4 s: fails
      {0, Duration::Seconds(1)},  // ~3.4 s: fails -> quarantined for 8 s
      {0, Duration::Seconds(1)},  // ~4.4 s: benched, cold boot succeeds
      {0, Duration::Seconds(9)},  // ~13.5 s: backoff over, outage over: restore ok
      {0, Duration::Millis(500)},  // the recovered VM serves warm
  };
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.invocations, 6);
  EXPECT_EQ(stats.restore_failures, 3);
  EXPECT_EQ(stats.quarantines, 1);
  EXPECT_EQ(stats.quarantined_serves, 1);
  EXPECT_EQ(stats.misses, 5);
  // The post-recovery warm hit proves the re-serve actually succeeded: failed
  // serves leave nothing behind to keep warm.
  EXPECT_EQ(stats.warm_hits, 1);
}

}  // namespace
}  // namespace faasnap

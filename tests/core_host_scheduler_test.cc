#include "src/runtime/host_scheduler.h"

#include <gtest/gtest.h>

#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

TEST(ZipfArrivals, SkewsTowardLowRanks) {
  std::vector<Arrival> arrivals = ZipfArrivals(8, 4000, 1.2, Duration::Seconds(1), 42);
  ASSERT_EQ(arrivals.size(), 4000u);
  std::vector<int> counts(8, 0);
  for (const Arrival& a : arrivals) {
    ASSERT_LT(a.function_index, 8u);
    EXPECT_GT(a.gap, Duration::Zero());
    counts[a.function_index]++;
  }
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[3], counts[7]);
  EXPECT_GT(counts[0], 4000 / 4);  // rank 1 dominates
}

TEST(ZipfArrivals, DeterministicPerSeed) {
  auto a = ZipfArrivals(4, 50, 1.0, Duration::Seconds(5), 7);
  auto b = ZipfArrivals(4, 50, 1.0, Duration::Seconds(5), 7);
  auto c = ZipfArrivals(4, 50, 1.0, Duration::Seconds(5), 8);
  EXPECT_EQ(a[10].function_index, b[10].function_index);
  EXPECT_EQ(a[10].gap, b[10].gap);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].function_index != c[i].function_index;
  }
  EXPECT_TRUE(any_diff);
}

class HostSchedulerTest : public ::testing::Test {
 protected:
  HostSchedulerTest() : platform_(TestConfig()) {}

  HostScheduler MakeScheduler(uint64_t budget, RestoreMode miss_mode,
                              Duration keep_warm = Duration::Seconds(600)) {
    HostSchedulerConfig config;
    config.warm_pool_budget_bytes = budget;
    config.keep_warm = keep_warm;
    config.miss_mode = miss_mode;
    return HostScheduler(&platform_, config);
  }

  Platform platform_;
};

TEST_F(HostSchedulerTest, AmpleBudgetKeepsEverythingWarm) {
  HostScheduler scheduler = MakeScheduler(GiB(2), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("image"));
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 12; ++i) {
    arrivals.push_back(Arrival{static_cast<size_t>(i % 2), Duration::Seconds(1)});
  }
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.invocations, 12);
  EXPECT_EQ(stats.misses, 2);  // first touch of each function only
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.per_function_invocations[0], 6);
  EXPECT_EQ(stats.per_function_hits[0], 5);
}

TEST_F(HostSchedulerTest, TightBudgetEvictsLru) {
  // json (~16 MB) and image (~21 MB) cannot both stay warm in 24 MB:
  // alternating arrivals thrash the pool.
  HostScheduler scheduler = MakeScheduler(MiB(24), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("image"));
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 10; ++i) {
    arrivals.push_back(Arrival{static_cast<size_t>(i % 2), Duration::Seconds(1)});
  }
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_GT(stats.evictions, 3);
  EXPECT_LT(stats.warm_hit_rate(), 0.5);
}

TEST_F(HostSchedulerTest, KeepAliveHorizonExpiresIdleVms) {
  HostScheduler scheduler =
      MakeScheduler(GiB(2), RestoreMode::kFaasnap, /*keep_warm=*/Duration::Seconds(30));
  scheduler.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals = {
      {0, Duration::Seconds(1)},
      {0, Duration::Seconds(5)},    // warm hit
      {0, Duration::Seconds(120)},  // expired
  };
  HostSchedulerStats stats = scheduler.Run(arrivals);
  EXPECT_EQ(stats.warm_hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.expirations, 1);
}

TEST_F(HostSchedulerTest, MissPathDeterminesMissLatency) {
  HostScheduler faasnap_sched = MakeScheduler(MiB(1), RestoreMode::kFaasnap);
  faasnap_sched.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals(4, Arrival{0, Duration::Seconds(2)});
  HostSchedulerStats faasnap_stats = faasnap_sched.Run(arrivals);

  Platform cold_platform(TestConfig());
  HostSchedulerConfig cold_config;
  cold_config.warm_pool_budget_bytes = MiB(1);  // nothing fits: all misses
  cold_config.miss_mode = RestoreMode::kColdBoot;
  HostScheduler cold_sched(&cold_platform, cold_config);
  cold_sched.AddFunction(*FindFunction("json"));
  HostSchedulerStats cold_stats = cold_sched.Run(arrivals);

  EXPECT_EQ(faasnap_stats.misses, 4);  // 1 MiB pool: every arrival misses
  EXPECT_EQ(cold_stats.misses, 4);
  EXPECT_GT(cold_stats.miss_latency_ms.mean(), 10 * faasnap_stats.miss_latency_ms.mean());
}

TEST_F(HostSchedulerTest, PoolBytesTrackWarmVms) {
  HostScheduler scheduler = MakeScheduler(GiB(2), RestoreMode::kFaasnap);
  scheduler.AddFunction(*FindFunction("json"));
  std::vector<Arrival> arrivals(5, Arrival{0, Duration::Seconds(10)});
  HostSchedulerStats stats = scheduler.Run(arrivals);
  // The warm VM pins ~its working set on average once resident.
  const double ws = static_cast<double>(
      PagesToBytes(scheduler.snapshot(0).record_touched.page_count()));
  EXPECT_GT(stats.avg_pool_bytes, ws * 0.5);
  EXPECT_LT(stats.avg_pool_bytes, ws * 1.5);
}

}  // namespace
}  // namespace faasnap

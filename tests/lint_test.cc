// Tests for faasnap_lint: config parsing (including cycle rejection), the
// comment/string stripper, each rule against its seeded-violation fixture in
// tools/lint/testdata/, and a self-check that the real tree is clean.

#include "tools/lint/lint.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace faasnap {
namespace lint {
namespace {

#ifndef FAASNAP_SOURCE_DIR
#error "FAASNAP_SOURCE_DIR must be defined to locate fixtures"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string Fixture(const std::string& name) {
  return ReadFileOrDie(std::string(FAASNAP_SOURCE_DIR) + "/tools/lint/testdata/" + name);
}

Config RealConfig() {
  auto config = ParseConfig(ReadFileOrDie(std::string(FAASNAP_SOURCE_DIR) +
                                          "/tools/lint/layers.json"));
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  return *config;
}

std::map<std::string, int> CountByRule(const std::vector<Violation>& vs) {
  std::map<std::string, int> counts;
  for (const Violation& v : vs) {
    ++counts[v.rule];
  }
  return counts;
}

TEST(LintConfigTest, ParsesRealConfig) {
  const Config config = RealConfig();
  EXPECT_TRUE(config.layers.count("common"));
  EXPECT_TRUE(config.layers.at("common").empty());
  EXPECT_TRUE(config.layers.at("sim").count("common"));
  EXPECT_FALSE(config.layers.at("sim").count("daemon"));
  EXPECT_FALSE(config.determinism_allow.empty());
}

TEST(LintConfigTest, RejectsUnknownKey) {
  auto config = ParseConfig(R"({"layres": ["typo"]})");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
}

TEST(LintConfigTest, RejectsCyclicLayers) {
  auto config = ParseConfig(R"({"layers": {"a": ["b"], "b": ["a"]}})");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("cycle"), std::string::npos);
}

TEST(LintConfigTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseConfig(R"({"layers": )").ok());
  EXPECT_FALSE(ParseConfig(R"({} trailing)").ok());
  EXPECT_FALSE(ParseConfig(R"({"layers": {"a": ["unterminated)").ok());
}

TEST(LintStripperTest, StripsCommentsAndStringsPreservingLines) {
  const std::string stripped = StripCommentsAndStrings(
      "int a; // rand()\n\"system_clock\";\n/* time(\nnullptr) */ int b;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("system_clock"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  // Line structure intact: same number of newlines, code survives.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 4);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStripperTest, DigitSeparatorIsNotACharLiteral) {
  const std::string stripped = StripCommentsAndStrings("long x = 1'000'000; rand();\n");
  // A naive stripper treats 1'000' as a char literal and eats the code after
  // it; the banned call must survive stripping.
  EXPECT_NE(stripped.find("rand"), std::string::npos);
}

TEST(LintRuleTest, LayeringFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_layering.cc", Fixture("bad_layering.cc"));
  const auto counts = CountByRule(violations);
  EXPECT_EQ(counts.at("layering"), 2);  // daemon/ and core/, not common/
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, DeterminismFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_determinism.cc", Fixture("bad_determinism.cc"));
  const auto counts = CountByRule(violations);
  // system_clock, random_device, rand(), time().
  EXPECT_EQ(counts.at("determinism"), 4);
}

TEST(LintRuleTest, DeterminismAllowlistExempts) {
  // The same content under an allowlisted path (src/native/) is clean.
  const auto violations =
      LintFile(RealConfig(), "src/native/bad_determinism.cc", Fixture("bad_determinism.cc"));
  EXPECT_EQ(CountByRule(violations).count("determinism"), 0u);
}

TEST(LintRuleTest, ContainerFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_container.cc", Fixture("bad_container.cc"));
  const auto counts = CountByRule(violations);
  // Two includes + two declarations.
  EXPECT_EQ(counts.at("container"), 4);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, TracerFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_tracer.cc", Fixture("bad_tracer.cc"));
  const auto counts = CountByRule(violations);
  EXPECT_EQ(counts.at("tracer-pairing"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, VoidFixtureFires) {
  const auto violations = LintFile(RealConfig(), "src/sim/bad_void.cc", Fixture("bad_void.cc"));
  const auto counts = CountByRule(violations);
  EXPECT_EQ(counts.at("void-comment"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, ObsNamingFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_obsname.cc", Fixture("bad_obsname.cc"));
  const auto counts = CountByRule(violations);
  // hyphenated span, uppercase span, empty segment, trailing dot,
  // single-segment metric, uppercase metric, bad constexpr constant.
  EXPECT_EQ(counts.at("obs-naming"), 7);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, ObsNamingSkipsNonMemberAndVariableCalls) {
  const Config config = RealConfig();
  // BeginObject/BeginTrack are not span markers; a call whose name argument
  // is a variable has no literal on the line and is skipped; declarations
  // (no '.'/'->' before the marker) are not call sites.
  const std::string content =
      "void F(W* w, T* s, unsigned n) {\n"
      "  w->BeginObject(\"Not A Name\");\n"
      "  w.BeginTrack(\"ALL CAPS TRACK\");\n"
      "  auto id = s->Begin(1, n); s->End(id);\n"
      "  SpanId Begin(SimTime t, const char* name);\n"
      "}\n";
  EXPECT_TRUE(LintFile(config, "src/sim/x.cc", content).empty());
}

TEST(LintRuleTest, CleanFixtureIsClean) {
  const auto violations = LintFile(RealConfig(), "src/sim/clean.cc", Fixture("clean.cc"));
  EXPECT_TRUE(violations.empty()) << violations.size() << " unexpected violation(s), first: "
                                  << (violations.empty() ? "" : violations[0].message);
}

TEST(LintRuleTest, CompleteCountsAsSpanClose) {
  // Begin paired with Complete (the one-shot span API) is legal.
  const Config config = RealConfig();
  const std::string content = "void F(T* s) { auto id = s->Begin(1); s->Complete(2); }\n";
  EXPECT_TRUE(LintFile(config, "src/sim/x.cc", content).empty());
}

TEST(LintRuleTest, FilesOutsideSrcGetNoLayeringRule) {
  // Tests and tools may include anything; only token rules could apply.
  const Config config = RealConfig();
  const std::string content = "#include \"src/daemon/daemon.h\"\n";
  EXPECT_TRUE(LintFile(config, "tests/integration_test.cc", content).empty());
}

// ---------------------------------------------------------------------------
// v2 semantic passes: raw-unit, lock-order, gated-metric.
// ---------------------------------------------------------------------------

TEST(LintRuleTest, RawUnitFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_raw_unit.cc", Fixture("bad_raw_unit.cc"));
  const auto counts = CountByRule(violations);
  // total_bytes, queue_wait_ns, window_pages, resident_pages_, elapsed_us,
  // deadline_ms — and nothing for bare/raw-suffix/float names.
  EXPECT_EQ(counts.at("raw-unit"), 6);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, RawUnitSuggestsTheMatchingStrongType) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_raw_unit.cc", Fixture("bad_raw_unit.cc"));
  bool saw_bytes = false;
  bool saw_pages = false;
  bool saw_duration = false;
  for (const Violation& v : violations) {
    saw_bytes |= v.message.find("ByteCount") != std::string::npos;
    saw_pages |= v.message.find("PageCount") != std::string::npos;
    saw_duration |= v.message.find("Duration") != std::string::npos;
  }
  EXPECT_TRUE(saw_bytes);
  EXPECT_TRUE(saw_pages);
  EXPECT_TRUE(saw_duration);
}

TEST(LintRuleTest, RawUnitOutsideSrcIsExempt) {
  // bench/ and tools/report/ talk to raw JSON and OS counters; the ban is a
  // src/ library convention.
  const auto violations =
      LintFile(RealConfig(), "bench/bad_raw_unit.cc", Fixture("bad_raw_unit.cc"));
  EXPECT_EQ(CountByRule(violations).count("raw-unit"), 0u);
}

TEST(LintRuleTest, RawUnitAllowlistExempts) {
  // The unit types themselves (src/common/units.h) store raw integers.
  const auto violations =
      LintFile(RealConfig(), "src/common/units.h", Fixture("bad_raw_unit.cc"));
  EXPECT_EQ(CountByRule(violations).count("raw-unit"), 0u);
}

TEST(LintProjectTest, LockOrderCycleAcrossTUs) {
  const Config config = RealConfig();
  const std::vector<FileFacts> facts = {
      ExtractFacts(config, "src/sim/bad_lock_order_a.cc", Fixture("bad_lock_order_a.cc")),
      ExtractFacts(config, "src/sim/bad_lock_order_b.cc", Fixture("bad_lock_order_b.cc")),
  };
  const auto violations = LintProject(config, facts);
  const auto counts = CountByRule(violations);
  // The ABBA cycle (Ledger::mu_ <-> Pool::mu_, closed only when both TUs'
  // facts are merged) plus the same-class re-acquisition self-cycle.
  EXPECT_EQ(counts.at("lock-order"), 2);
  bool saw_abba = false;
  bool saw_self = false;
  for (const Violation& v : violations) {
    saw_abba |= v.message.find("Ledger::mu_") != std::string::npos &&
                v.message.find("Pool::mu_") != std::string::npos;
    saw_self |= v.message.find("Pool::mu_ -> Pool::mu_") != std::string::npos;
  }
  EXPECT_TRUE(saw_abba);
  EXPECT_TRUE(saw_self);
}

TEST(LintProjectTest, LockOrderNeedsBothTUsToSeeTheCycle) {
  // Either file alone is acyclic — the deadlock only exists cross-TU. (File A
  // still carries its self-cycle, so use file B, which is clean alone.)
  const Config config = RealConfig();
  const std::vector<FileFacts> facts = {
      ExtractFacts(config, "src/sim/bad_lock_order_b.cc", Fixture("bad_lock_order_b.cc")),
  };
  EXPECT_TRUE(LintProject(config, facts).empty());
}

TEST(LintProjectTest, ConsistentLockOrderIsClean) {
  const Config config = RealConfig();
  const std::vector<FileFacts> facts = {
      ExtractFacts(config, "src/sim/clean_lock_order.cc", Fixture("clean_lock_order.cc")),
  };
  EXPECT_TRUE(LintProject(config, facts).empty());
}

TEST(LintProjectTest, LockOrderAllowlistDropsFacts) {
  Config config = RealConfig();
  config.lock_order_allow.push_back("src/sim/");
  const FileFacts facts =
      ExtractFacts(config, "src/sim/bad_lock_order_a.cc", Fixture("bad_lock_order_a.cc"));
  EXPECT_TRUE(facts.lock_edges.empty());
  EXPECT_TRUE(facts.method_locks.empty());
}

TEST(LintProjectTest, GatedMetricFixtureFires) {
  const Config config = RealConfig();
  const std::vector<FileFacts> facts = {
      ExtractFacts(config, "src/mem/bad_gated_metric.cc", Fixture("bad_gated_metric.cc")),
  };
  const auto violations = LintProject(config, facts);
  const auto counts = CountByRule(violations);
  // faults.batch_installs (no condition) and faults.huge_maps (null check
  // only); faults.coalesced is properly gated and faults.by_class is
  // always-on.
  EXPECT_EQ(counts.at("gated-metric"), 2);
  for (const Violation& v : violations) {
    EXPECT_EQ(v.message.find("by_class"), std::string::npos) << v.message;
    EXPECT_EQ(v.message.find("coalesced"), std::string::npos) << v.message;
  }
}

TEST(LintProjectTest, ConfigureEscapeNeedsGatedCallers) {
  const Config config = RealConfig();
  const std::string registration =
      "void Recorder::Configure(MetricsRegistry* metrics) {\n"
      "  if (metrics != nullptr) {\n"
      "    inv_ = metrics->GetCounter(\"forensics.invocations\");\n"
      "  }\n"
      "}\n";
  const std::string gated_caller =
      "void Runner::Setup() {\n"
      "  if (config.forensics) {\n"
      "    obs->forensics.Configure(config.fc, &obs->metrics);\n"
      "  }\n"
      "}\n";
  const std::string ungated_caller =
      "void Runner::Setup() {\n"
      "  obs->forensics.Configure(config.fc, &obs->metrics);\n"
      "}\n";

  // A registration inside Configure is legal when every call site is gated...
  {
    const std::vector<FileFacts> facts = {
        ExtractFacts(config, "src/obs/rec.cc", registration),
        ExtractFacts(config, "src/daemon/run.cc", gated_caller),
    };
    EXPECT_TRUE(LintProject(config, facts).empty());
  }
  // ...but an unconditional caller (or no caller at all) breaks the escape.
  {
    const std::vector<FileFacts> facts = {
        ExtractFacts(config, "src/obs/rec.cc", registration),
        ExtractFacts(config, "src/daemon/run.cc", ungated_caller),
    };
    EXPECT_EQ(CountByRule(LintProject(config, facts)).at("gated-metric"), 1);
  }
  {
    const std::vector<FileFacts> facts = {
        ExtractFacts(config, "src/obs/rec.cc", registration),
    };
    EXPECT_EQ(CountByRule(LintProject(config, facts)).at("gated-metric"), 1);
  }
}

TEST(LintFactsTest, ExtractsQualifiedLockKeysAndNestingEdges) {
  const Config config = RealConfig();
  const std::string content =
      "void Router::Dispatch() {\n"
      "  MutexLock lock(mu_);\n"
      "  {\n"
      "    MutexLock inner(cache_mu_);\n"
      "  }\n"
      "}\n";
  const FileFacts facts = ExtractFacts(config, "src/storage/router.cc", content);
  ASSERT_EQ(facts.lock_edges.size(), 1u);
  EXPECT_EQ(facts.lock_edges[0].outer, "Router::mu_");
  EXPECT_EQ(facts.lock_edges[0].inner, "Router::cache_mu_");
  EXPECT_EQ(facts.lock_edges[0].function, "Router::Dispatch");
  ASSERT_TRUE(facts.method_locks.count("Router::Dispatch"));
  EXPECT_EQ(facts.method_locks.at("Router::Dispatch").size(), 2u);
}

TEST(LintFactsTest, LockReleasedAtScopeExitDoesNotNest) {
  const Config config = RealConfig();
  const std::string content =
      "void Router::Dispatch() {\n"
      "  {\n"
      "    MutexLock lock(mu_);\n"
      "  }\n"
      "  MutexLock other(cache_mu_);\n"
      "}\n";
  const FileFacts facts = ExtractFacts(config, "src/storage/router.cc", content);
  EXPECT_TRUE(facts.lock_edges.empty());  // sequential, not nested
}

// The tree self-check: the real src/ must lint clean. This is the same check
// the `lint_self_check` ctest runs via the CLI; duplicating it here gives a
// precise first-failure message inside the gtest output.
TEST(LintTreeTest, RealTreeIsClean) {
  auto violations = LintTree(RealConfig(), FAASNAP_SOURCE_DIR);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  for (const Violation& v : *violations) {
    ADD_FAILURE() << v.file << ":" << v.line << " [" << v.rule << "] " << v.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace faasnap

// Tests for faasnap_lint: config parsing (including cycle rejection), the
// comment/string stripper, each rule against its seeded-violation fixture in
// tools/lint/testdata/, and a self-check that the real tree is clean.

#include "tools/lint/lint.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace faasnap {
namespace lint {
namespace {

#ifndef FAASNAP_SOURCE_DIR
#error "FAASNAP_SOURCE_DIR must be defined to locate fixtures"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string Fixture(const std::string& name) {
  return ReadFileOrDie(std::string(FAASNAP_SOURCE_DIR) + "/tools/lint/testdata/" + name);
}

Config RealConfig() {
  auto config = ParseConfig(ReadFileOrDie(std::string(FAASNAP_SOURCE_DIR) +
                                          "/tools/lint/layers.json"));
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  return *config;
}

std::map<std::string, int> CountByRule(const std::vector<Violation>& vs) {
  std::map<std::string, int> counts;
  for (const Violation& v : vs) {
    ++counts[v.rule];
  }
  return counts;
}

TEST(LintConfigTest, ParsesRealConfig) {
  const Config config = RealConfig();
  EXPECT_TRUE(config.layers.count("common"));
  EXPECT_TRUE(config.layers.at("common").empty());
  EXPECT_TRUE(config.layers.at("sim").count("common"));
  EXPECT_FALSE(config.layers.at("sim").count("daemon"));
  EXPECT_FALSE(config.determinism_allow.empty());
}

TEST(LintConfigTest, RejectsUnknownKey) {
  auto config = ParseConfig(R"({"layres": ["typo"]})");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
}

TEST(LintConfigTest, RejectsCyclicLayers) {
  auto config = ParseConfig(R"({"layers": {"a": ["b"], "b": ["a"]}})");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("cycle"), std::string::npos);
}

TEST(LintConfigTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseConfig(R"({"layers": )").ok());
  EXPECT_FALSE(ParseConfig(R"({} trailing)").ok());
  EXPECT_FALSE(ParseConfig(R"({"layers": {"a": ["unterminated)").ok());
}

TEST(LintStripperTest, StripsCommentsAndStringsPreservingLines) {
  const std::string stripped = StripCommentsAndStrings(
      "int a; // rand()\n\"system_clock\";\n/* time(\nnullptr) */ int b;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("system_clock"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  // Line structure intact: same number of newlines, code survives.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 4);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStripperTest, DigitSeparatorIsNotACharLiteral) {
  const std::string stripped = StripCommentsAndStrings("long x = 1'000'000; rand();\n");
  // A naive stripper treats 1'000' as a char literal and eats the code after
  // it; the banned call must survive stripping.
  EXPECT_NE(stripped.find("rand"), std::string::npos);
}

TEST(LintRuleTest, LayeringFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_layering.cc", Fixture("bad_layering.cc"));
  const auto counts = CountByRule(violations);
  EXPECT_EQ(counts.at("layering"), 2);  // daemon/ and core/, not common/
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, DeterminismFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_determinism.cc", Fixture("bad_determinism.cc"));
  const auto counts = CountByRule(violations);
  // system_clock, random_device, rand(), time().
  EXPECT_EQ(counts.at("determinism"), 4);
}

TEST(LintRuleTest, DeterminismAllowlistExempts) {
  // The same content under an allowlisted path (src/native/) is clean.
  const auto violations =
      LintFile(RealConfig(), "src/native/bad_determinism.cc", Fixture("bad_determinism.cc"));
  EXPECT_EQ(CountByRule(violations).count("determinism"), 0u);
}

TEST(LintRuleTest, ContainerFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_container.cc", Fixture("bad_container.cc"));
  const auto counts = CountByRule(violations);
  // Two includes + two declarations.
  EXPECT_EQ(counts.at("container"), 4);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, TracerFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_tracer.cc", Fixture("bad_tracer.cc"));
  const auto counts = CountByRule(violations);
  EXPECT_EQ(counts.at("tracer-pairing"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, VoidFixtureFires) {
  const auto violations = LintFile(RealConfig(), "src/sim/bad_void.cc", Fixture("bad_void.cc"));
  const auto counts = CountByRule(violations);
  EXPECT_EQ(counts.at("void-comment"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, ObsNamingFixtureFires) {
  const auto violations =
      LintFile(RealConfig(), "src/sim/bad_obsname.cc", Fixture("bad_obsname.cc"));
  const auto counts = CountByRule(violations);
  // hyphenated span, uppercase span, empty segment, trailing dot,
  // single-segment metric, uppercase metric, bad constexpr constant.
  EXPECT_EQ(counts.at("obs-naming"), 7);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(LintRuleTest, ObsNamingSkipsNonMemberAndVariableCalls) {
  const Config config = RealConfig();
  // BeginObject/BeginTrack are not span markers; a call whose name argument
  // is a variable has no literal on the line and is skipped; declarations
  // (no '.'/'->' before the marker) are not call sites.
  const std::string content =
      "void F(W* w, T* s, unsigned n) {\n"
      "  w->BeginObject(\"Not A Name\");\n"
      "  w.BeginTrack(\"ALL CAPS TRACK\");\n"
      "  auto id = s->Begin(1, n); s->End(id);\n"
      "  SpanId Begin(SimTime t, const char* name);\n"
      "}\n";
  EXPECT_TRUE(LintFile(config, "src/sim/x.cc", content).empty());
}

TEST(LintRuleTest, CleanFixtureIsClean) {
  const auto violations = LintFile(RealConfig(), "src/sim/clean.cc", Fixture("clean.cc"));
  EXPECT_TRUE(violations.empty()) << violations.size() << " unexpected violation(s), first: "
                                  << (violations.empty() ? "" : violations[0].message);
}

TEST(LintRuleTest, CompleteCountsAsSpanClose) {
  // Begin paired with Complete (the one-shot span API) is legal.
  const Config config = RealConfig();
  const std::string content = "void F(T* s) { auto id = s->Begin(1); s->Complete(2); }\n";
  EXPECT_TRUE(LintFile(config, "src/sim/x.cc", content).empty());
}

TEST(LintRuleTest, FilesOutsideSrcGetNoLayeringRule) {
  // Tests and tools may include anything; only token rules could apply.
  const Config config = RealConfig();
  const std::string content = "#include \"src/daemon/daemon.h\"\n";
  EXPECT_TRUE(LintFile(config, "tests/integration_test.cc", content).empty());
}

// The tree self-check: the real src/ must lint clean. This is the same check
// the `lint_self_check` ctest runs via the CLI; duplicating it here gives a
// precise first-failure message inside the gtest output.
TEST(LintTreeTest, RealTreeIsClean) {
  auto violations = LintTree(RealConfig(), FAASNAP_SOURCE_DIR);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  for (const Violation& v : *violations) {
    ADD_FAILURE() << v.file << ":" << v.line << " [" << v.rule << "] " << v.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace faasnap

// Randomized property tests for PageRangeSet against a naive reference model.
//
// The reference is a std::set<PageIndex> holding every member page explicitly.
// Each operation on the PageRangeSet is mirrored on the reference, and the two
// representations are compared after every step. This catches boundary bugs
// (off-by-one at run edges, bad coalescing, incremental page-count drift) that
// hand-picked cases miss, and it pins the optimized single-pass merge
// implementations of Union/Subtract to the obviously-correct semantics.

#include "src/common/page_range.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"

namespace faasnap {
namespace {

constexpr PageIndex kSpacePages = 512;

// Expands a PageRangeSet into explicit page membership.
std::set<PageIndex> Explode(const PageRangeSet& s) {
  std::set<PageIndex> pages;
  for (const PageRange& r : s.ranges()) {
    for (PageIndex p = r.first; p < r.end(); ++p) {
      pages.insert(p);
    }
  }
  return pages;
}

// Checks the set's structural invariants plus equivalence with the reference.
void CheckAgainstReference(const PageRangeSet& s, const std::set<PageIndex>& ref) {
  // Invariants: sorted, disjoint, non-abutting, no empty runs, exact page count.
  uint64_t total = 0;
  PageIndex prev_end = 0;
  bool first_range = true;
  for (const PageRange& r : s.ranges()) {
    ASSERT_GT(r.count, 0u);
    if (!first_range) {
      ASSERT_GT(r.first, prev_end) << "ranges must be disjoint and non-abutting";
    }
    first_range = false;
    prev_end = r.end();
    total += r.count;
  }
  ASSERT_EQ(s.page_count(), total);
  ASSERT_EQ(s.page_count(), ref.size());
  ASSERT_EQ(Explode(s), ref);
}

PageRange RandomRange(Rng& rng) {
  const PageIndex first = rng.NextBelow(kSpacePages);
  const uint64_t count = 1 + rng.NextBelow(48);
  return PageRange{first, std::min<uint64_t>(count, kSpacePages - first)};
}

// Builds a random (set, reference) pair with `ops` Add/Remove mutations.
void BuildRandom(Rng& rng, int ops, PageRangeSet* s, std::set<PageIndex>* ref) {
  for (int i = 0; i < ops; ++i) {
    const PageRange r = RandomRange(rng);
    if (rng.NextBool(0.65)) {
      s->Add(r);
      for (PageIndex p = r.first; p < r.end(); ++p) ref->insert(p);
    } else {
      s->Remove(r.first, r.count);
      for (PageIndex p = r.first; p < r.end(); ++p) ref->erase(p);
    }
  }
}

TEST(PageRangePropertyTest, AddRemoveMatchesReference) {
  Rng rng(0x1234abcd);
  for (int round = 0; round < 20; ++round) {
    PageRangeSet s;
    std::set<PageIndex> ref;
    for (int i = 0; i < 120; ++i) {
      const PageRange r = RandomRange(rng);
      if (rng.NextBool(0.6)) {
        s.Add(r);
        for (PageIndex p = r.first; p < r.end(); ++p) ref.insert(p);
      } else {
        s.Remove(r.first, r.count);
        for (PageIndex p = r.first; p < r.end(); ++p) ref.erase(p);
      }
      ASSERT_NO_FATAL_FAILURE(CheckAgainstReference(s, ref))
          << "round " << round << " op " << i;
    }
  }
}

TEST(PageRangePropertyTest, QueriesMatchReference) {
  Rng rng(0x9e3779b9);
  for (int round = 0; round < 30; ++round) {
    PageRangeSet s;
    std::set<PageIndex> ref;
    BuildRandom(rng, 60, &s, &ref);

    for (int q = 0; q < 200; ++q) {
      const PageIndex p = rng.NextBelow(kSpacePages);
      ASSERT_EQ(s.Contains(p), ref.count(p) > 0) << "page " << p;
    }
    for (int q = 0; q < 200; ++q) {
      const PageRange r = RandomRange(rng);
      bool all = true, any = false;
      for (PageIndex p = r.first; p < r.end(); ++p) {
        const bool in = ref.count(p) > 0;
        all = all && in;
        any = any || in;
      }
      ASSERT_EQ(s.ContainsRange(r), all) << r.ToString();
      ASSERT_EQ(s.Overlaps(r), any) << r.ToString();
    }
    // Empty intervals are trivially contained and never overlap.
    ASSERT_TRUE(s.ContainsRange(PageRange{rng.NextBelow(kSpacePages), 0}));
  }
}

TEST(PageRangePropertyTest, SetAlgebraMatchesReference) {
  Rng rng(0xfaa5aa9);
  for (int round = 0; round < 40; ++round) {
    PageRangeSet a, b;
    std::set<PageIndex> ref_a, ref_b;
    BuildRandom(rng, 50, &a, &ref_a);
    BuildRandom(rng, 50, &b, &ref_b);

    std::set<PageIndex> ref_union = ref_a;
    ref_union.insert(ref_b.begin(), ref_b.end());
    std::set<PageIndex> ref_sub, ref_inter;
    for (PageIndex p : ref_a) {
      if (ref_b.count(p)) {
        ref_inter.insert(p);
      } else {
        ref_sub.insert(p);
      }
    }

    ASSERT_NO_FATAL_FAILURE(CheckAgainstReference(a.Union(b), ref_union));
    ASSERT_NO_FATAL_FAILURE(CheckAgainstReference(b.Union(a), ref_union));
    ASSERT_NO_FATAL_FAILURE(CheckAgainstReference(a.Subtract(b), ref_sub));
    ASSERT_NO_FATAL_FAILURE(CheckAgainstReference(a.Intersect(b), ref_inter));
    ASSERT_NO_FATAL_FAILURE(CheckAgainstReference(b.Intersect(a), ref_inter));

    // The in-place forms must agree exactly with the returning forms.
    PageRangeSet a_union = a;
    a_union.UnionInPlace(b);
    ASSERT_EQ(a_union, a.Union(b));
    PageRangeSet a_sub = a;
    a_sub.SubtractInPlace(b);
    ASSERT_EQ(a_sub, a.Subtract(b));

    // Aliasing: x op x must behave like set algebra with itself.
    PageRangeSet a_self = a;
    a_self.UnionInPlace(a_self);
    ASSERT_EQ(a_self, a);
    PageRangeSet a_clear = a;
    a_clear.SubtractInPlace(a_clear);
    ASSERT_TRUE(a_clear.empty());
    ASSERT_EQ(a_clear.page_count(), 0u);
  }
}

TEST(PageRangePropertyTest, ComplementAndGapMergeMatchReference) {
  Rng rng(0x51f15eed);
  for (int round = 0; round < 30; ++round) {
    PageRangeSet s;
    std::set<PageIndex> ref;
    BuildRandom(rng, 40, &s, &ref);

    std::set<PageIndex> ref_complement;
    for (PageIndex p = 0; p < kSpacePages; ++p) {
      if (!ref.count(p)) ref_complement.insert(p);
    }
    ASSERT_NO_FATAL_FAILURE(
        CheckAgainstReference(s.ComplementWithin(PageCount::FromPages(kSpacePages)), ref_complement));

    // Gap-tolerant merge: a page is in the result iff it is in the set or lies
    // in a gap of width <= tol between two member pages.
    const uint64_t tol = rng.NextBelow(40);
    std::set<PageIndex> ref_merged = ref;
    for (auto it = ref.begin(); it != ref.end(); ++it) {
      auto next = std::next(it);
      if (next == ref.end()) break;
      if (*next - *it - 1 <= tol) {
        for (PageIndex p = *it + 1; p < *next; ++p) ref_merged.insert(p);
      }
    }
    ASSERT_NO_FATAL_FAILURE(
        CheckAgainstReference(s.MergeWithGapTolerance(PageCount::FromPages(tol)), ref_merged))
        << "tol " << tol;
  }
}

}  // namespace
}  // namespace faasnap

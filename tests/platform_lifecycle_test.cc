// Platform lifecycle behaviors: cache state across invocations, snapshot store
// growth, repeated record phases, readahead isolation between invocations, and
// the serialized daemon dispatch queue.

#include <gtest/gtest.h>

#include "src/runtime/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

class PlatformLifecycleTest : public ::testing::Test {
 protected:
  PlatformLifecycleTest()
      : platform_(TestConfig()),
        spec_(*FindFunction("json")),
        generator_(spec_, platform_.config().layout) {}

  Platform platform_;
  FunctionSpec spec_;
  TraceGenerator generator_;
};

TEST_F(PlatformLifecycleTest, RecordTwiceProducesEquivalentSnapshots) {
  FunctionSnapshot first = platform_.Record(generator_, MakeInputA(spec_));
  FunctionSnapshot second = platform_.Record(generator_, MakeInputA(spec_));
  // Different file ids, identical structure.
  EXPECT_NE(first.memory_sanitized.id, second.memory_sanitized.id);
  EXPECT_EQ(first.memory_sanitized.nonzero, second.memory_sanitized.nonzero);
  EXPECT_EQ(first.reap_ws.guest_pages, second.reap_ws.guest_pages);
  EXPECT_EQ(first.loading_set.total_pages, second.loading_set.total_pages);
  EXPECT_EQ(first.ws_groups.AllPages(), second.ws_groups.AllPages());
}

TEST_F(PlatformLifecycleTest, RecordWithDifferentInputsDiffers) {
  FunctionSnapshot a = platform_.Record(generator_, MakeInputA(spec_));
  FunctionSnapshot b = platform_.Record(generator_, MakeInputB(spec_));
  // Input B touches more window pages: bigger working and loading sets.
  EXPECT_GT(b.ws_groups.AllPages().page_count(), a.ws_groups.AllPages().page_count());
  EXPECT_GT(b.loading_set.total_pages, a.loading_set.total_pages);
}

TEST_F(PlatformLifecycleTest, SnapshotStoreTracksEveryArtifact) {
  FunctionSnapshot snap = platform_.Record(generator_, MakeInputA(spec_));
  SnapshotStore* store = platform_.store();
  for (FileId id : {snap.memory_vanilla.id, snap.memory_sanitized.id, snap.reap_ws.id,
                    snap.loading_set.id}) {
    EXPECT_TRUE(store->Contains(id));
  }
  EXPECT_EQ(store->size_pages(snap.memory_vanilla.id), snap.guest_pages);
  EXPECT_EQ(store->size_pages(snap.loading_set.id), snap.loading_set.total_pages);
  EXPECT_EQ(store->size_pages(snap.reap_ws.id), snap.reap_ws.size_pages());
  EXPECT_NE(store->name(snap.memory_vanilla.id), store->name(snap.memory_sanitized.id));
}

TEST_F(PlatformLifecycleTest, DroppedCachesForceColdInvocations) {
  FunctionSnapshot snap = platform_.Record(generator_, MakeInputA(spec_));
  platform_.DropCaches();
  InvocationReport cold =
      platform_.Invoke(snap, RestoreMode::kFirecracker, generator_, MakeInputA(spec_));
  platform_.DropCaches();
  InvocationReport cold_again =
      platform_.Invoke(snap, RestoreMode::kFirecracker, generator_, MakeInputA(spec_));
  // Dropping caches makes the second run identical to the first (determinism
  // plus no residual state).
  EXPECT_EQ(cold.faults.count(FaultClass::kMajor), cold_again.faults.count(FaultClass::kMajor));
  EXPECT_EQ(cold.disk.read_requests, cold_again.disk.read_requests);
}

TEST_F(PlatformLifecycleTest, SimClockAdvancesMonotonically) {
  FunctionSnapshot snap = platform_.Record(generator_, MakeInputA(spec_));
  const SimTime after_record = platform_.sim()->now();
  EXPECT_GT(after_record.nanos(), 0);
  platform_.Invoke(snap, RestoreMode::kFaasnap, generator_, MakeInputA(spec_));
  EXPECT_GT(platform_.sim()->now(), after_record);
}

TEST_F(PlatformLifecycleTest, DispatchQueueSerializesSimultaneousRequests) {
  FunctionSnapshot snap = platform_.Record(generator_, MakeInputA(spec_));
  platform_.DropCaches();
  std::vector<Duration> setups;
  for (int i = 0; i < 4; ++i) {
    platform_.InvokeAsync(snap, RestoreMode::kWarm, generator_.Generate(MakeInputA(spec_)),
                          [&](InvocationReport r) { setups.push_back(r.setup_time); });
  }
  platform_.sim()->Run();
  ASSERT_EQ(setups.size(), 4u);
  // Warm setup = queued dispatch only: the k-th request waits k dispatch slots.
  const Duration dispatch = platform_.config().setup_costs.daemon_dispatch;
  for (size_t i = 0; i < setups.size(); ++i) {
    EXPECT_EQ(setups[i], dispatch * static_cast<int64_t>(i + 1)) << i;
  }
}

TEST_F(PlatformLifecycleTest, WarmPagesDontLeakAcrossVms) {
  // Two invocations of the same snapshot have independent address spaces: the
  // second warm-mode VM must not see the first one's installed pages unless the
  // policy installs them.
  FunctionSnapshot snap = platform_.Record(generator_, MakeInputA(spec_));
  platform_.DropCaches();
  InvocationReport first =
      platform_.Invoke(snap, RestoreMode::kFirecracker, generator_, MakeInputA(spec_));
  InvocationReport second =
      platform_.Invoke(snap, RestoreMode::kFirecracker, generator_, MakeInputA(spec_));
  // Same fault COUNT (fresh page table), but the second run's faults are all
  // minors (page cache warm).
  EXPECT_EQ(first.faults.total_faults(), second.faults.total_faults());
  EXPECT_EQ(second.faults.count(FaultClass::kMajor), 0);
}

TEST(PlatformConfigTest, CustomLayoutIsHonored) {
  PlatformConfig config = TestConfig();
  Platform platform(config);
  EXPECT_EQ(platform.config().layout.total_pages, BytesToPages(GiB(2)));
  EXPECT_EQ(platform.cpu()->cores(), 96);
}

TEST(PlatformConfigTest, SmallerHostSlowsBursts) {
  auto run_burst = [](int cores) {
    PlatformConfig config = TestConfig();
    config.host_cores = cores;
    Platform platform(config);
    FunctionSpec spec = *FindFunction("pyaes");  // compute-heavy
    TraceGenerator generator(spec, config.layout);
    FunctionSnapshot snap = platform.Record(generator, MakeInputA(spec));
    platform.DropCaches();
    RunningStats totals;
    for (int i = 0; i < 8; ++i) {
      platform.InvokeAsync(snap, RestoreMode::kFaasnap, generator.Generate(MakeInputA(spec)),
                           [&](InvocationReport r) { totals.Record(r.total_time().millis()); });
    }
    platform.sim()->Run();
    return totals.mean();
  };
  // 8 VMs x 2 vCPUs: 4 cores are oversubscribed 4x, 96 cores are not.
  EXPECT_GT(run_burst(4), 1.5 * run_burst(96));
}

}  // namespace
}  // namespace faasnap

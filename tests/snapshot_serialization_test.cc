#include "src/snapshot/serialization.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

LoadingSetFile SampleLoadingSet() {
  LoadingSetFile ls;
  ls.regions = {
      LoadingRegion{{100, 32}, 0, 0},
      LoadingRegion{{5000, 16}, 0, 32},
      LoadingRegion{{200, 64}, 1, 48},
  };
  ls.total_pages = PageCount::FromPages(112);
  return ls;
}

TEST(LoadingSetManifest, RoundTrips) {
  LoadingSetFile original = SampleLoadingSet();
  std::vector<uint8_t> blob = EncodeLoadingSetManifest(original);
  Result<LoadingSetFile> decoded = DecodeLoadingSetManifest(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->regions, original.regions);
  EXPECT_EQ(decoded->total_pages, original.total_pages);
}

TEST(LoadingSetManifest, EmptyFileRoundTrips) {
  LoadingSetFile empty;
  Result<LoadingSetFile> decoded = DecodeLoadingSetManifest(EncodeLoadingSetManifest(empty));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->regions.empty());
  EXPECT_TRUE(decoded->total_pages.is_zero());
}

TEST(LoadingSetManifest, RejectsCorruptedBody) {
  std::vector<uint8_t> blob = EncodeLoadingSetManifest(SampleLoadingSet());
  blob[20] ^= 0xff;
  Result<LoadingSetFile> decoded = DecodeLoadingSetManifest(blob);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoadingSetManifest, RejectsTruncation) {
  std::vector<uint8_t> blob = EncodeLoadingSetManifest(SampleLoadingSet());
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(DecodeLoadingSetManifest(blob).ok());
  EXPECT_FALSE(DecodeLoadingSetManifest({}).ok());
}

TEST(LoadingSetManifest, RejectsWrongMagic) {
  ReapWorkingSetFile reap;
  reap.guest_pages = {1, 2, 3};
  std::vector<uint8_t> blob = EncodeReapManifest(reap);
  Result<LoadingSetFile> decoded = DecodeLoadingSetManifest(blob);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(ReapManifest, RoundTrips) {
  ReapWorkingSetFile original;
  original.guest_pages = {42, 7, 100000, 3, 3};
  Result<ReapWorkingSetFile> decoded = DecodeReapManifest(EncodeReapManifest(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->guest_pages, original.guest_pages);
}

TEST(ReapManifest, RejectsBitFlip) {
  ReapWorkingSetFile original;
  original.guest_pages = {1, 2, 3, 4, 5};
  std::vector<uint8_t> blob = EncodeReapManifest(original);
  blob[blob.size() - 1] ^= 0x01;  // flip a checksum bit
  EXPECT_FALSE(DecodeReapManifest(blob).ok());
}

TEST(Fnv1a64, KnownVectors) {
  // FNV-1a("") = offset basis; FNV-1a("a") is a standard published value.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  const uint8_t a = 'a';
  EXPECT_EQ(Fnv1a64(&a, 1), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace faasnap

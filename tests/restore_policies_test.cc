#include "src/restore/restore_policy.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/core/loading_set_builder.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

// A tiny hand-built snapshot: 1000-page guest.
//   non-zero (vanilla):   [0, 200) boot+runtime, [300, 400) transient garbage
//   non-zero (sanitized): [0, 200) only (the transients were freed + sanitized)
//   working set groups:   group 0 = [100, 150), group 1 = [300, 350)
FunctionSnapshot TinySnapshot(SnapshotStore* store) {
  FunctionSnapshot snap;
  snap.function = "tiny";
  snap.guest_pages = PageCount::FromPages(1000);

  snap.memory_vanilla.total_pages = PageCount::FromPages(1000);
  snap.memory_vanilla.nonzero.Add(0, 200);
  snap.memory_vanilla.nonzero.Add(300, 100);
  snap.memory_vanilla.id = store->Register("tiny.mem", PageCount::FromPages(1000));

  snap.memory_sanitized.total_pages = PageCount::FromPages(1000);
  snap.memory_sanitized.nonzero.Add(0, 200);
  snap.memory_sanitized.id = store->Register("tiny.smem", PageCount::FromPages(1000));

  PageRangeSet g0;
  g0.Add(100, 50);
  PageRangeSet g1;
  g1.Add(300, 50);
  snap.ws_groups.groups = {g0, g1};

  snap.reap_ws.guest_pages.clear();
  for (PageIndex p = 100; p < 150; ++p) {
    snap.reap_ws.guest_pages.push_back(p);
  }
  for (PageIndex p = 300; p < 350; ++p) {
    snap.reap_ws.guest_pages.push_back(p);
  }
  snap.reap_ws.id = store->Register("tiny.reapws", snap.reap_ws.size_pages());

  snap.loading_set = BuildLoadingSet(snap.ws_groups, snap.memory_sanitized);
  snap.loading_set.id = store->Register("tiny.lset", snap.loading_set.total_pages);

  snap.record_touched.Add(100, 50);
  snap.record_touched.Add(300, 50);
  return snap;
}

class PoliciesTest : public ::testing::Test {
 protected:
  PoliciesTest()
      : disk_(&sim_, TestDiskProfile()),
        snapshot_(TinySnapshot(&store_)),
        space_(snapshot_.guest_pages) {
    router_.AddDevice(&disk_);
    engine_ = std::make_unique<FaultEngine>(&sim_, &cache_, &router_, &space_, &readahead_,
                                            store_.SizeFn());
    env_.sim = &sim_;
    env_.cache = &cache_;
    env_.storage = &router_;
    env_.space = &space_;
    env_.engine = engine_.get();
    env_.snapshot = &snapshot_;
    env_.config = &config_;
  }

  // Runs SetupMemory to completion.
  void Setup(RestorePolicy* policy) {
    bool ready = false;
    policy->SetupMemory(&env_, [&] { ready = true; });
    sim_.Run();
    EXPECT_TRUE(ready);
  }

  Simulation sim_;
  PageCache cache_;
  BlockDevice disk_;
  StorageRouter router_;
  SnapshotStore store_;
  PlatformConfig config_;
  FunctionSnapshot snapshot_;
  AddressSpace space_;
  ReadaheadPolicy readahead_;
  std::unique_ptr<FaultEngine> engine_;
  RestoreEnv env_;
};

TEST(RestoreModeName, AllNamesDistinct) {
  EXPECT_EQ(RestoreModeName(RestoreMode::kWarm), "warm");
  EXPECT_EQ(RestoreModeName(RestoreMode::kFirecracker), "firecracker");
  EXPECT_EQ(RestoreModeName(RestoreMode::kCached), "cached");
  EXPECT_EQ(RestoreModeName(RestoreMode::kReap), "reap");
  EXPECT_EQ(RestoreModeName(RestoreMode::kFaasnap), "faasnap");
  EXPECT_EQ(RestoreModeName(RestoreMode::kFaasnapConcurrentOnly), "con-paging");
  EXPECT_EQ(RestoreModeName(RestoreMode::kFaasnapPerRegion), "per-region");
}

TEST(RestorePolicyFactory, CreatesEveryMode) {
  for (RestoreMode mode :
       {RestoreMode::kWarm, RestoreMode::kFirecracker, RestoreMode::kCached, RestoreMode::kReap,
        RestoreMode::kFaasnapConcurrentOnly, RestoreMode::kFaasnapPerRegion,
        RestoreMode::kFaasnap}) {
    auto policy = RestorePolicy::Create(mode);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->mode(), mode);
  }
}

TEST_F(PoliciesTest, WarmSkipsVmmRestoreCost) {
  auto warm = RestorePolicy::Create(RestoreMode::kWarm);
  auto fc = RestorePolicy::Create(RestoreMode::kFirecracker);
  EXPECT_LT(warm->BaseSetupCost(env_), fc->BaseSetupCost(env_));
  EXPECT_EQ(fc->BaseSetupCost(env_), config_.setup_costs.vmm_restore);
  EXPECT_EQ(warm->BaseSetupCost(env_), Duration::Zero());
}

TEST_F(PoliciesTest, WarmMapsAnonymousAndInstallsRecordTouched) {
  auto policy = RestorePolicy::Create(RestoreMode::kWarm);
  Setup(policy.get());
  EXPECT_EQ(space_.Resolve(0).kind, BackingKind::kAnonymous);
  EXPECT_EQ(space_.install_state(120), PageInstallState::kPresent);
  EXPECT_EQ(space_.install_state(10), PageInstallState::kNotPresent);
}

TEST_F(PoliciesTest, FirecrackerMapsWholeVanillaFile) {
  auto policy = RestorePolicy::Create(RestoreMode::kFirecracker);
  Setup(policy.get());
  EXPECT_EQ(space_.mmap_call_count(), 1u);
  for (PageIndex p : {0u, 500u, 999u}) {
    PageBacking b = space_.Resolve(p);
    EXPECT_EQ(b.kind, BackingKind::kFile);
    EXPECT_EQ(b.file, snapshot_.memory_vanilla.id);
    EXPECT_EQ(b.file_page, p);
  }
  EXPECT_TRUE(policy->PrefetchPlan(env_).empty());
}

TEST_F(PoliciesTest, CachedPreloadsTheWholeMemoryFile) {
  auto policy = RestorePolicy::Create(RestoreMode::kCached);
  Setup(policy.get());
  EXPECT_EQ(cache_.PresentPages(snapshot_.memory_vanilla.id).page_count(), 1000u);
}

TEST_F(PoliciesTest, ReapInstallsWorkingSetSoftPresentAndFetchesBlocking) {
  auto policy = RestorePolicy::Create(RestoreMode::kReap);
  Setup(policy.get());
  EXPECT_EQ(space_.install_state(120), PageInstallState::kSoftPresent);
  EXPECT_EQ(space_.install_state(320), PageInstallState::kSoftPresent);
  EXPECT_EQ(space_.install_state(10), PageInstallState::kNotPresent);
  EXPECT_EQ(policy->blocking_fetch_bytes().value(), 100 * kPageSize);
  EXPECT_GT(policy->blocking_fetch_time(), Duration::Zero());
  // The fetch bypassed the page cache.
  EXPECT_EQ(cache_.present_page_count(), 0u);
  EXPECT_EQ(disk_.stats().read_requests, 1u);
}

TEST_F(PoliciesTest, ReapOutOfWorkingSetFaultGoesThroughUffd) {
  auto policy = RestorePolicy::Create(RestoreMode::kReap);
  Setup(policy.get());
  FaultClass cls = FaultClass::kNoFault;
  bool sync = engine_->Access(700, [&](FaultClass c) { cls = c; });
  EXPECT_FALSE(sync);
  sim_.Run();
  EXPECT_EQ(cls, FaultClass::kUffdHandled);
  // The handler's pread populated the page cache via readahead.
  EXPECT_GT(cache_.present_page_count(), 0u);
}

TEST_F(PoliciesTest, ReapMonitorChargesPreadOnlyOnCacheHit) {
  auto policy = RestorePolicy::Create(RestoreMode::kReap);
  Setup(policy.get());
  // Hit: the memory-file page is already resident, so the monitor pays one
  // cached-copy pread on top of the uffd round trip.
  cache_.Insert(snapshot_.memory_vanilla.id, PageRange{700, 1});
  SimTime t0 = sim_.now();
  FaultClass cls = FaultClass::kNoFault;
  engine_->Access(700, [&](FaultClass c) { cls = c; });
  sim_.Run();
  EXPECT_EQ(cls, FaultClass::kUffdHandled);
  EXPECT_EQ(sim_.now() - t0, config_.host_costs.cached_pread_page +
                                 config_.host_costs.uffd_round_trip +
                                 engine_->uffd_vcpu_block_extra());
}

TEST_F(PoliciesTest, ReapMonitorSkipsPreadChargeOnCacheMiss) {
  auto policy = RestorePolicy::Create(RestoreMode::kReap);
  Setup(policy.get());
  // Measure the demand read alone: the same 16-page initial readahead window
  // on the idle device, through the same router path the monitor's pread takes.
  SimTime t0 = sim_.now();
  engine_->EnsureFilePage(snapshot_.reap_ws.id, 0, /*charge_to_faults=*/false,
                          [](const Status& status, PageCache::PageState) {
                            EXPECT_TRUE(status.ok());
                          });
  sim_.Run();
  const Duration read_time = sim_.now() - t0;
  EXPECT_GT(read_time, Duration::Zero());
  // Miss: the device read *is* the monitor's pread wait; charging the
  // cached-copy cost on top would double-pay, so the fault costs exactly
  // read + round trip + vCPU block.
  t0 = sim_.now();
  FaultClass cls = FaultClass::kNoFault;
  engine_->Access(800, [&](FaultClass c) { cls = c; });
  sim_.Run();
  EXPECT_EQ(cls, FaultClass::kUffdHandled);
  EXPECT_EQ(sim_.now() - t0, read_time + config_.host_costs.uffd_round_trip +
                                 engine_->uffd_vcpu_block_extra());
}

TEST_F(PoliciesTest, FaasnapBuildsTheFigure4Hierarchy) {
  auto policy = RestorePolicy::Create(RestoreMode::kFaasnap);
  Setup(policy.get());
  // Zero page (never written): anonymous.
  EXPECT_EQ(space_.Resolve(600).kind, BackingKind::kAnonymous);
  // Released set (freed transient, sanitized to zero): anonymous.
  EXPECT_EQ(space_.Resolve(320).kind, BackingKind::kAnonymous);
  // Cold set (non-zero, outside the working set): the memory file.
  PageBacking cold = space_.Resolve(50);
  EXPECT_EQ(cold.kind, BackingKind::kFile);
  EXPECT_EQ(cold.file, snapshot_.memory_sanitized.id);
  EXPECT_EQ(cold.file_page, 50u);
  // Loading set (non-zero working set): the loading set file at recorded offsets.
  PageBacking load = space_.Resolve(120);
  EXPECT_EQ(load.kind, BackingKind::kFile);
  EXPECT_EQ(load.file, snapshot_.loading_set.id);
  EXPECT_EQ(load.file_page, 20u);  // region [100,150) at file offset 0
}

TEST_F(PoliciesTest, FaasnapPrefetchPlanIsOneSequentialRange) {
  auto policy = RestorePolicy::Create(RestoreMode::kFaasnap);
  std::vector<PrefetchItem> plan = policy->PrefetchPlan(env_);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].file, snapshot_.loading_set.id);
  EXPECT_EQ(plan[0].range, (PageRange{0, snapshot_.loading_set.total_pages.value()}));
}

TEST_F(PoliciesTest, ConcurrentOnlyPlansAddressOrderedWorkingSet) {
  auto policy = RestorePolicy::Create(RestoreMode::kFaasnapConcurrentOnly);
  Setup(policy.get());
  EXPECT_EQ(space_.mmap_call_count(), 1u);  // whole-file mapping, no per-region
  std::vector<PrefetchItem> plan = policy->PrefetchPlan(env_);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].file, snapshot_.memory_vanilla.id);
  EXPECT_LT(plan[0].range.first, plan[1].range.first);  // address order
}

TEST_F(PoliciesTest, PerRegionPlansGroupOrderedMemoryFileReads) {
  auto policy = RestorePolicy::Create(RestoreMode::kFaasnapPerRegion);
  Setup(policy.get());
  std::vector<PrefetchItem> plan = policy->PrefetchPlan(env_);
  // Only the non-zero loading region [100,150) exists ([300,350) is sanitized).
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].file, snapshot_.memory_sanitized.id);
  EXPECT_EQ(plan[0].range, (PageRange{100, 50}));
}

TEST_F(PoliciesTest, FaasnapUsesMoreMmapCallsThanFirecracker) {
  auto policy = RestorePolicy::Create(RestoreMode::kFaasnap);
  Setup(policy.get());
  // anon base + 1 sanitized non-zero region + 1 loading region = 3.
  EXPECT_EQ(space_.mmap_call_count(), 3u);
}

}  // namespace
}  // namespace faasnap

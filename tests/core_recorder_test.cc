#include "src/core/recorder.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

constexpr FileId kMemFile = 1;

TEST(FaasnapRecorder, GroupsFormEveryGroupSizePages) {
  PageCache cache;
  FaasnapRecorder recorder(&cache, kMemFile, /*group_size=*/4);
  for (PageIndex p = 0; p < 10; ++p) {
    recorder.OnAccess(p, FaultClass::kMajor);
  }
  WorkingSetGroups groups = recorder.Finish();
  // 10 pages, group size 4: scans at 4, 8, and the final scan catches the rest.
  ASSERT_EQ(groups.groups.size(), 3u);
  EXPECT_EQ(groups.groups[0].page_count(), 4u);
  EXPECT_EQ(groups.groups[1].page_count(), 4u);
  EXPECT_EQ(groups.groups[2].page_count(), 2u);
  EXPECT_EQ(groups.total_pages().value(), 10u);
}

TEST(FaasnapRecorder, NoFaultAccessesDoNotAdvanceRss) {
  PageCache cache;
  FaasnapRecorder recorder(&cache, kMemFile, /*group_size=*/2);
  recorder.OnAccess(0, FaultClass::kMinor);
  for (int i = 0; i < 10; ++i) {
    recorder.OnAccess(0, FaultClass::kNoFault);  // repeat accesses
  }
  WorkingSetGroups groups = recorder.Finish();
  ASSERT_EQ(groups.groups.size(), 1u);
  EXPECT_EQ(groups.total_pages().value(), 1u);
  EXPECT_EQ(recorder.scan_count(), 1u);
}

// Host page recording (section 4.4): pages readahead pulled into the page cache
// are recorded even though the guest never faulted on them.
TEST(FaasnapRecorder, MincoreScanIncludesReadaheadPages) {
  PageCache cache;
  FaasnapRecorder recorder(&cache, kMemFile, /*group_size=*/2);
  recorder.OnAccess(100, FaultClass::kMajor);
  // Readahead cached [100, 116) even though only page 100 faulted.
  cache.Insert(kMemFile, PageRange{100, 16});
  recorder.OnAccess(101, FaultClass::kMinor);  // triggers scan (2 new resident)
  WorkingSetGroups groups = recorder.Finish();
  PageRangeSet all = groups.AllPages();
  EXPECT_EQ(all.page_count(), 16u);
  EXPECT_TRUE(all.Contains(110));  // never accessed, recorded via mincore
}

TEST(FaasnapRecorder, PagesAreRecordedOnlyOnce) {
  PageCache cache;
  FaasnapRecorder recorder(&cache, kMemFile, /*group_size=*/2);
  cache.Insert(kMemFile, PageRange{0, 4});
  recorder.OnAccess(0, FaultClass::kMinor);
  recorder.OnAccess(1, FaultClass::kMinor);  // scan 1: pages 0-3
  recorder.OnAccess(2, FaultClass::kNoFault);
  recorder.OnAccess(3, FaultClass::kNoFault);
  recorder.OnAccess(50, FaultClass::kMajor);
  recorder.OnAccess(51, FaultClass::kMajor);  // scan 2: pages 50,51
  WorkingSetGroups groups = recorder.Finish();
  ASSERT_GE(groups.groups.size(), 2u);
  // No page appears in two groups.
  uint64_t sum = 0;
  for (const PageRangeSet& g : groups.groups) {
    sum += g.page_count();
  }
  EXPECT_EQ(sum, groups.AllPages().page_count());
}

TEST(FaasnapRecorder, GroupOrderTracksAccessOrder) {
  PageCache cache;
  FaasnapRecorder recorder(&cache, kMemFile, /*group_size=*/2);
  recorder.OnAccess(1000, FaultClass::kMajor);
  recorder.OnAccess(1001, FaultClass::kMajor);  // scan -> group 0
  recorder.OnAccess(5, FaultClass::kMajor);
  recorder.OnAccess(6, FaultClass::kMajor);  // scan -> group 1
  WorkingSetGroups groups = recorder.Finish();
  ASSERT_EQ(groups.groups.size(), 2u);
  EXPECT_TRUE(groups.groups[0].Contains(1000));
  EXPECT_TRUE(groups.groups[1].Contains(5));
  // Lower address, later group: order is access order, not address order.
  EXPECT_EQ(groups.LowestGroupFor(PageRange{1000, 2}), 0u);
  EXPECT_EQ(groups.LowestGroupFor(PageRange{5, 2}), 1u);
}

TEST(FaasnapRecorder, EmptyRunYieldsNoGroups) {
  PageCache cache;
  FaasnapRecorder recorder(&cache, kMemFile);
  WorkingSetGroups groups = recorder.Finish();
  EXPECT_TRUE(groups.groups.empty());
  EXPECT_EQ(groups.total_pages().value(), 0u);
}

TEST(ReapRecorder, RecordsFaultOrder) {
  ReapRecorder recorder;
  recorder.OnAccess(500, FaultClass::kMajor);
  recorder.OnAccess(3, FaultClass::kMinor);
  recorder.OnAccess(500, FaultClass::kNoFault);  // repeat: ignored
  recorder.OnAccess(100, FaultClass::kAnonymous);
  ReapWorkingSetFile ws = std::move(recorder).Finish();
  EXPECT_EQ(ws.guest_pages, (std::vector<PageIndex>{500, 3, 100}));
  EXPECT_EQ(ws.size_pages().value(), 3u);
}

TEST(ReapRecorder, DoesNotSeeReadaheadPages) {
  // The contrast with host page recording: REAP tracks only faulting pages.
  ReapRecorder recorder;
  recorder.OnAccess(100, FaultClass::kMajor);
  // (readahead caches 101-115 — invisible to userfaultfd tracking)
  ReapWorkingSetFile ws = std::move(recorder).Finish();
  EXPECT_EQ(ws.size_pages().value(), 1u);
}

TEST(ReapRecorder, IgnoresNoFaultAccesses) {
  ReapRecorder recorder;
  recorder.OnAccess(1, FaultClass::kNoFault);
  EXPECT_TRUE(recorder.recorded_pages().is_zero());
}

}  // namespace
}  // namespace faasnap

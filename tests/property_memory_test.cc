// Randomized property tests for the memory subsystem: page cache, address space,
// and the fault engine driven by random workloads, each checked against simple
// oracles and global invariants.

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/mem/fault_engine.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

// --- PageCache vs a per-page oracle under random operation interleavings. ---

class PageCachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageCachePropertyTest, MatchesOracleUnderRandomOps) {
  Rng rng(GetParam());
  PageCache cache;
  constexpr FileId kFiles = 3;
  constexpr uint64_t kPages = 128;
  // Oracle: 0=absent, 1=inflight, 2=present.
  std::map<std::pair<FileId, PageIndex>, int> oracle;
  struct Pending {
    PageCache::ReadHandle handle;
    FileId file;
    PageRange range;
  };
  std::vector<Pending> pending;
  int waiters_fired = 0;
  int waiters_registered = 0;

  for (int step = 0; step < 400; ++step) {
    const FileId file = 1 + static_cast<FileId>(rng.NextBelow(kFiles));
    const double action = rng.NextDouble();
    if (action < 0.35) {
      // Begin a read over currently-absent pages only (the loader contract).
      const PageIndex first = rng.NextBelow(kPages);
      const uint64_t count = 1 + rng.NextBelow(8);
      PageRange want{first, std::min<uint64_t>(count, kPages - first)};
      PageRangeSet missing = cache.AbsentIn(file, want);
      for (const PageRange& r : missing.ranges()) {
        Pending p{cache.BeginRead(file, r), file, r};
        for (PageIndex page = r.first; page < r.end(); ++page) {
          oracle[{file, page}] = 1;
        }
        // Sometimes register a waiter on an in-flight page.
        if (rng.NextBool(0.5)) {
          ++waiters_registered;
          cache.WaitFor(file, r.first, [&](const Status&) { ++waiters_fired; });
        }
        pending.push_back(p);
      }
    } else if (action < 0.7 && !pending.empty()) {
      // Complete a random pending read.
      const size_t idx = rng.NextBelow(pending.size());
      Pending p = pending[idx];
      pending.erase(pending.begin() + static_cast<long>(idx));
      cache.CompleteRead(p.handle);
      for (PageIndex page = p.range.first; page < p.range.end(); ++page) {
        oracle[{p.file, page}] = 2;
      }
    } else if (action < 0.85) {
      // Direct insert over absent pages (Cached preload).
      const PageIndex first = rng.NextBelow(kPages);
      PageRange want{first, std::min<uint64_t>(1 + rng.NextBelow(4), kPages - first)};
      PageRangeSet missing = cache.AbsentIn(file, want);
      for (const PageRange& r : missing.ranges()) {
        cache.Insert(file, r);
        for (PageIndex page = r.first; page < r.end(); ++page) {
          oracle[{file, page}] = 2;
        }
      }
    }
    // Spot-check a handful of random states every step.
    for (int probe = 0; probe < 5; ++probe) {
      const FileId f = 1 + static_cast<FileId>(rng.NextBelow(kFiles));
      const PageIndex page = rng.NextBelow(kPages);
      const int expected_state = oracle.count({f, page}) ? oracle[{f, page}] : 0;
      PageCache::PageState actual = cache.GetState(f, page);
      EXPECT_EQ(static_cast<int>(actual), expected_state)
          << "file " << f << " page " << page << " step " << step;
    }
  }
  // Drain: every pending read completes and every waiter fires exactly once.
  for (const Pending& p : pending) {
    cache.CompleteRead(p.handle);
  }
  EXPECT_EQ(waiters_fired, waiters_registered);
  // present_page_count matches the oracle.
  uint64_t expected_present = 0;
  for (const auto& [key, state] : oracle) {
    if (state >= 1) {  // everything in flight was completed above
      ++expected_present;
    }
  }
  EXPECT_EQ(cache.present_page_count(), expected_present);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageCachePropertyTest, ::testing::Values(11, 22, 33, 44, 55));

// --- AddressSpace vs a per-page oracle under random MAP_FIXED overlays. ---

class AddressSpacePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AddressSpacePropertyTest, LayeringMatchesPerPageOracle) {
  Rng rng(GetParam());
  constexpr uint64_t kPages = 512;
  AddressSpace space(PageCount::FromPages(kPages));
  std::vector<PageBacking> oracle(kPages);  // default: unmapped

  for (int step = 0; step < 120; ++step) {
    const PageIndex first = rng.NextBelow(kPages);
    const uint64_t count = std::min<uint64_t>(1 + rng.NextBelow(64), kPages - first);
    if (count == 0) {
      continue;
    }
    if (rng.NextBool(0.4)) {
      space.Map({.guest = {first, count}, .kind = BackingKind::kAnonymous});
      for (PageIndex p = first; p < first + count; ++p) {
        oracle[p] = PageBacking{BackingKind::kAnonymous, kInvalidFileId, 0};
      }
    } else {
      const FileId file = 1 + static_cast<FileId>(rng.NextBelow(4));
      const PageIndex file_start = rng.NextBelow(10000);
      space.Map({.guest = {first, count},
                 .kind = BackingKind::kFile,
                 .file = file,
                 .file_start = file_start});
      for (PageIndex p = first; p < first + count; ++p) {
        oracle[p] = PageBacking{BackingKind::kFile, file, file_start + (p - first)};
      }
    }
  }
  for (PageIndex p = 0; p < kPages; ++p) {
    EXPECT_EQ(space.Resolve(p), oracle[p]) << "page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressSpacePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// --- FaultEngine under a random access workload: global invariants. ---

class FaultEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultEnginePropertyTest, RandomWorkloadInvariants) {
  Rng rng(GetParam());
  Simulation sim;
  PageCache cache;
  BlockDevice disk(&sim, TestDiskProfile());
  StorageRouter router;
  router.AddDevice(&disk);
  constexpr uint64_t kPages = 2048;
  AddressSpace space(PageCount::FromPages(kPages));
  ReadaheadPolicy readahead;
  FaultEngine engine(&sim, &cache, &router, &space, &readahead, [](FileId) { return PageCount::FromPages(kPages); });

  // Random layered mapping: anon base + a few file regions.
  space.Map({.guest = {0, kPages}, .kind = BackingKind::kAnonymous});
  for (int i = 0; i < 6; ++i) {
    const PageIndex first = rng.NextBelow(kPages - 128);
    space.Map({.guest = {first, 64 + rng.NextBelow(64)},
               .kind = BackingKind::kFile,
               .file = 1,
               .file_start = first});
  }

  int issued = 0;
  int retired = 0;
  PageRangeSet accessed;
  for (int i = 0; i < 600; ++i) {
    const PageIndex page = rng.NextBelow(kPages);
    accessed.AddPage(page);
    ++issued;
    const bool sync = engine.Access(page, [&](FaultClass cls) {
      ++retired;
      EXPECT_NE(cls, FaultClass::kNoFault);  // async completions are real faults
    });
    if (sync) {
      ++retired;
    }
    if (rng.NextBool(0.3)) {
      sim.Run();  // drain sometimes, letting IO interleave otherwise
    }
  }
  sim.Run();
  // Every access retired exactly once.
  EXPECT_EQ(retired, issued);
  // Every accessed page ended up installed.
  for (const PageRange& r : accessed.ranges()) {
    for (PageIndex p = r.first; p < r.end(); ++p) {
      EXPECT_EQ(space.install_state(p), PageInstallState::kPresent) << p;
    }
  }
  // Fault accounting balances. Note faults may slightly exceed the number of
  // distinct pages: two not-yet-resolved accesses to the same page each fault
  // (two vCPUs faulting the same page concurrently do in real KVM too).
  const FaultMetrics& m = engine.metrics();
  EXPECT_EQ(m.latency_histogram.total_count(), m.total_faults());
  EXPECT_LE(m.total_faults(), issued);
  EXPECT_GE(static_cast<uint64_t>(m.total_faults()) + 80, accessed.page_count());
  // Disk traffic attributed to faults matches the device totals (no other actor).
  EXPECT_EQ(m.fault_disk_bytes.value(), disk.stats().bytes_read);
  EXPECT_EQ(m.fault_disk_requests, disk.stats().read_requests);
  // Cache contains exactly what fault-path reads brought in: every file-backed
  // accessed page must now be present in the cache.
  for (const PageRange& r : accessed.ranges()) {
    for (PageIndex p = r.first; p < r.end(); ++p) {
      if (space.Resolve(p).kind == BackingKind::kFile) {
        EXPECT_TRUE(cache.IsPresent(1, space.Resolve(p).file_page)) << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultEnginePropertyTest,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49));

}  // namespace
}  // namespace faasnap

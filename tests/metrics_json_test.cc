#include "src/metrics/json_writer.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(JsonWriter().BeginObject().EndObject().TakeString(), "{}");
  EXPECT_EQ(JsonWriter().BeginArray().EndArray().TakeString(), "[]");
}

TEST(JsonWriter, FieldsAndCommas) {
  JsonWriter json;
  json.BeginObject().Field("a", static_cast<int64_t>(1)).Field("b", "two").Field("c", true);
  EXPECT_EQ(json.EndObject().TakeString(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter json;
  json.BeginObject().Key("list").BeginArray();
  json.Value(static_cast<int64_t>(1)).Value(static_cast<int64_t>(2));
  json.BeginObject().Field("x", 1.5).EndObject();
  json.EndArray().EndObject();
  EXPECT_EQ(json.TakeString(), R"({"list":[1,2,{"x":1.5}]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.BeginObject().Field("k", "a\"b\\c\nd").EndObject();
  EXPECT_EQ(json.TakeString(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonEscape, ControlCharacters) {
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
}

TEST(JsonWriter, NumericFormats) {
  JsonWriter json;
  json.BeginArray()
      .Value(static_cast<uint64_t>(18446744073709551615ull))
      .Value(static_cast<int64_t>(-5))
      .Value(3.25)
      .EndArray();
  EXPECT_EQ(json.TakeString(), "[18446744073709551615,-5,3.25]");
}

TEST(JsonWriterDeathTest, UnbalancedScopesAbort) {
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginObject();
        json.TakeString();
      },
      "unbalanced");
}

TEST(InvocationReportJson, ContainsAllSections) {
  InvocationReport report;
  report.function = "image";
  report.mode = "faasnap";
  report.setup_time = Duration::Millis(50);
  report.invocation_time = Duration::Millis(130);
  report.fetch_bytes = ByteCount::FromBytes(1234);
  report.faults.RecordFault(FaultClass::kMinor, Duration::Micros(4));
  report.faults.RecordFault(FaultClass::kMajor, Duration::Micros(100));
  const std::string json = InvocationReportToJson(report);
  EXPECT_NE(json.find("\"function\":\"image\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"faasnap\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":180"), std::string::npos);
  EXPECT_NE(json.find("\"minor\":1"), std::string::npos);
  EXPECT_NE(json.find("\"major\":1"), std::string::npos);
  EXPECT_NE(json.find("fault_latency_histogram"), std::string::npos);
  EXPECT_NE(json.find("\"fetch_bytes\":1234"), std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') {
      ++depth;
    }
    if (c == '}' || c == ']') {
      --depth;
    }
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace faasnap

// Tests for the faasnap_report regression gate: artifact flattening
// (snapshot / timeline JSONL / generic JSON), diffing with thresholds, and
// the assert-expression evaluator.

#include "tools/report/report_lib.h"

#include <string>

#include "gtest/gtest.h"

namespace faasnap {
namespace report {
namespace {

constexpr char kSnapshot[] = R"({"metrics": [
  {"name": "scheduler.warm_hits", "labels": {}, "type": "counter", "value": 42},
  {"name": "faults.by_class", "labels": {"class": "ws"}, "type": "counter", "value": 7},
  {"name": "disk.queue_depth", "labels": {}, "type": "gauge", "value": 0, "max": 3},
  {"name": "fault.handling_ns", "labels": {}, "type": "histogram", "count": 10,
   "total_ns": 5000, "p50_ns": 400, "p95_ns": 900, "p99_ns": 990,
   "buckets": [{"upper_ns": 500, "count": 6}, {"upper_ns": 1000, "count": 4}]}
]})";

TEST(FlattenTest, MetricsSnapshot) {
  auto flat = FlattenArtifact(kSnapshot);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_EQ(flat->at("scheduler.warm_hits{}.value"), 42);
  EXPECT_EQ(flat->at("faults.by_class{class=ws}.value"), 7);
  EXPECT_EQ(flat->at("disk.queue_depth{}.max"), 3);
  EXPECT_EQ(flat->at("fault.handling_ns{}.count"), 10);
  EXPECT_EQ(flat->at("fault.handling_ns{}.p95_ns"), 900);
  // Bucket placement is not part of the gate.
  for (const auto& [key, value] : *flat) {
    (void)value;  // only the key set is under test here
    EXPECT_EQ(key.find("buckets"), std::string::npos) << key;
  }
}

TEST(FlattenTest, TimelineJsonlAggregatesDeltas) {
  const std::string jsonl =
      R"({"epoch":0,"label":"a","window":0,"start_ns":0,"end_ns":100,"metrics":[)"
      R"({"name":"loader.chunks","labels":{},"type":"counter","delta":3,"total":3},)"
      R"({"name":"disk.queue_depth","labels":{},"type":"gauge","value":2,"max":2}]})"
      "\n"
      R"({"epoch":0,"label":"a","window":1,"start_ns":100,"end_ns":200,"metrics":[)"
      R"({"name":"loader.chunks","labels":{},"type":"counter","delta":4,"total":7},)"
      R"({"name":"disk.queue_depth","labels":{},"type":"gauge","value":0,"max":5},)"
      R"({"name":"fault.handling_ns","labels":{},"type":"histogram","delta_count":2,)"
      R"("delta_total_ns":800,"delta_buckets":[{"upper_ns":512,"count":2}]}]})"
      "\n";
  auto flat = FlattenArtifact(jsonl);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_EQ(flat->at("loader.chunks{}.total"), 7);  // 3 + 4
  EXPECT_EQ(flat->at("disk.queue_depth{}.last"), 0);
  EXPECT_EQ(flat->at("disk.queue_depth{}.max"), 5);
  EXPECT_EQ(flat->at("fault.handling_ns{}.count"), 2);
  EXPECT_EQ(flat->at("fault.handling_ns{}.total_ns"), 800);
  EXPECT_EQ(flat->at("timeline.lines"), 2);
}

TEST(FlattenTest, GenericJsonKeysArrayElementsByStringFields) {
  const std::string bench = R"({"name": "bench", "cells": [
    {"function": "hello", "system": "reap", "total_ms_mean": 12.5, "reps": 3},
    {"function": "hello", "system": "vanilla", "total_ms_mean": 30.0, "reps": 3}
  ]})";
  auto flat = FlattenArtifact(bench);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_EQ(flat->at("cells[function=hello,system=reap].total_ms_mean"), 12.5);
  EXPECT_EQ(flat->at("cells[function=hello,system=vanilla].reps"), 3);
}

TEST(FlattenTest, RejectsGarbage) {
  EXPECT_FALSE(FlattenArtifact("not json at all\n{}\n").ok());
  EXPECT_FALSE(FlattenArtifact("").ok());
}

FlatMetrics Base() {
  return {{"a.x{}.value", 100.0}, {"b.y{}.value", 50.0}, {"c.z{}.value", 0.0}};
}

TEST(DiffTest, IdenticalRunsHaveNoRegressions) {
  EXPECT_TRUE(Diff(Base(), Base(), DiffOptions{}).empty());
}

TEST(DiffTest, DefaultThresholdIsExactEquality) {
  FlatMetrics candidate = Base();
  candidate["a.x{}.value"] = 101.0;
  const auto regressions = Diff(Base(), candidate, DiffOptions{});
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].key, "a.x{}.value");
  EXPECT_EQ(regressions[0].kind, Delta::Kind::kChanged);
  EXPECT_NEAR(regressions[0].rel_change, 0.01, 1e-9);
}

TEST(DiffTest, ThresholdToleratesSmallDrift) {
  FlatMetrics candidate = Base();
  candidate["a.x{}.value"] = 104.0;  // +4%
  DiffOptions options;
  options.default_threshold = 0.05;
  EXPECT_TRUE(Diff(Base(), candidate, options).empty());
  options.default_threshold = 0.03;
  EXPECT_EQ(Diff(Base(), candidate, options).size(), 1u);
}

TEST(DiffTest, LongestPrefixOverrideWins) {
  FlatMetrics candidate = Base();
  candidate["a.x{}.value"] = 104.0;  // +4%
  candidate["b.y{}.value"] = 52.0;   // +4%
  DiffOptions options;
  options.overrides.emplace_back("a.", 0.10);  // a.* tolerated
  const auto regressions = Diff(Base(), candidate, options);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].key, "b.y{}.value");
}

TEST(DiffTest, MissingAndAddedKeysAreRegressions) {
  FlatMetrics candidate = Base();
  candidate.erase("b.y{}.value");
  candidate["d.w{}.value"] = 1.0;
  const auto regressions = Diff(Base(), candidate, DiffOptions{});
  ASSERT_EQ(regressions.size(), 2u);
  EXPECT_EQ(regressions[0].kind, Delta::Kind::kMissingInCandidate);
  EXPECT_EQ(regressions[1].kind, Delta::Kind::kAddedInCandidate);
  DiffOptions loose;
  loose.allow_missing = true;
  EXPECT_TRUE(Diff(Base(), candidate, loose).empty());
}

TEST(DiffTest, ZeroBaselineToNonzeroIsARegression) {
  FlatMetrics candidate = Base();
  candidate["c.z{}.value"] = 1.0;
  DiffOptions options;
  options.default_threshold = 0.5;  // even a loose gate must catch 0 -> 1
  EXPECT_EQ(Diff(Base(), candidate, options).size(), 1u);
}

TEST(DiffTest, IgnorePrefixExcludesKeys) {
  FlatMetrics candidate = Base();
  candidate["a.x{}.value"] = 999.0;
  DiffOptions options;
  options.ignore.emplace_back("a.");
  EXPECT_TRUE(Diff(Base(), candidate, options).empty());
}

TEST(AssertTest, Operators) {
  const FlatMetrics metrics = {{"invocations.outcome{outcome=ok}.value", 100.0}};
  const std::string key = "invocations.outcome{outcome=ok}.value";
  auto check = [&](const std::string& expr, bool want) {
    auto outcome = EvalAssert(metrics, expr);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->ok, want) << expr << " -> " << outcome->detail;
  };
  check(key + " == 100", true);
  check(key + " != 100", false);
  check(key + " >= 100", true);
  check(key + " <= 99", false);
  check(key + " > 99.5", true);
  check(key + " < 100", false);
}

TEST(AssertTest, ErrorsOnBadExpressionOrUnknownKey) {
  const FlatMetrics metrics = {{"a.b{}.value", 1.0}};
  EXPECT_FALSE(EvalAssert(metrics, "a.b{}.value").ok());           // no operator
  EXPECT_FALSE(EvalAssert(metrics, "a.b{}.value == ").ok());       // no value
  EXPECT_FALSE(EvalAssert(metrics, "a.b{}.value == ten").ok());    // not a number
  EXPECT_FALSE(EvalAssert(metrics, "missing.key == 1").ok());      // unknown key
  EXPECT_EQ(EvalAssert(metrics, "missing.key == 1").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace report
}  // namespace faasnap

#include "src/obs/metrics_registry.h"

#include <gtest/gtest.h>

#include "src/common/json.h"

namespace faasnap {
namespace {

TEST(MetricsRegistry, SeriesIdentityIsNamePlusLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("faults", {{"class", "major"}});
  Counter* b = registry.GetCounter("faults", {{"class", "major"}});
  Counter* c = registry.GetCounter("faults", {{"class", "minor"}});
  Counter* d = registry.GetCounter("faults");
  EXPECT_EQ(a, b);  // same series, same pointer
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(registry.size(), 3u);
  a->Add(2);
  EXPECT_EQ(b->value, 2);
}

TEST(MetricsRegistry, LabelOrderAndDuplicatesDoNotSplitSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reads", {{"tier", "local"}, {"dev", "nvme"}});
  Counter* b = registry.GetCounter("reads", {{"dev", "nvme"}, {"tier", "local"}});
  Counter* c = registry.GetCounter(
      "reads", {{"dev", "nvme"}, {"tier", "local"}, {"dev", "nvme"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, GaugeTracksMax) {
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("disk.queue_depth");
  depth->Set(3);
  depth->Set(7);
  depth->Set(2);
  EXPECT_EQ(depth->value, 2);
  EXPECT_EQ(depth->max_value, 7);
  depth->Add(-2);
  EXPECT_EQ(depth->value, 0);
}

TEST(MetricsRegistry, PointersSurviveRegistryGrowth) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("c0");
  for (int i = 1; i < 200; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  first->Add(1);
  EXPECT_EQ(registry.GetCounter("c0")->value, 1);
}

TEST(MetricsRegistry, ToJsonParsesBackAndIsSorted) {
  MetricsRegistry registry;
  registry.GetCounter("faults", {{"class", "minor"}})->Add(5);
  registry.GetCounter("faults", {{"class", "major"}})->Add(3);
  registry.GetGauge("page_cache.present_pages")->Set(128);
  registry.GetHistogram("fault.handling_ns")->Record(Duration::Micros(10));

  Result<JsonValue> root = ParseJson(registry.ToJson());
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  Result<JsonValue> metrics = root->Get("metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics->is_array());
  ASSERT_EQ(metrics->array().size(), 4u);

  // Sorted by (name, labels): fault.handling_ns, faults{major}, faults{minor}, gauge.
  const JsonValue& hist = metrics->array()[0];
  EXPECT_EQ(hist.GetStringOr("name", ""), "fault.handling_ns");
  EXPECT_EQ(hist.GetStringOr("type", ""), "histogram");
  const JsonValue& major = metrics->array()[1];
  EXPECT_EQ(major.GetStringOr("name", ""), "faults");
  Result<JsonValue> labels = major.Get("labels");
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->GetStringOr("class", ""), "major");
  EXPECT_EQ(major.GetIntOr("value", 0), 3);
  const JsonValue& gauge = metrics->array()[3];
  EXPECT_EQ(gauge.GetStringOr("type", ""), "gauge");
  EXPECT_EQ(gauge.GetNumberOr("value", 0), 128.0);
}

}  // namespace
}  // namespace faasnap

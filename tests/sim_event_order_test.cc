// Randomized ordering test for the Simulation event loop against a naive
// reference model.
//
// The engine promises a strict firing order: ascending time, with FIFO
// tie-break among equal-time events (scheduling order). The reference model is
// a plain vector of (when, schedule-sequence) records stably sorted by time —
// obviously correct, and independent of the engine's heap arity, slab layout,
// and lazy-cancellation machinery. Random schedule/cancel/reschedule workloads
// (including re-entrant scheduling from inside callbacks) must fire in exactly
// the reference order, and repeated runs with the same seed must be
// bit-identical.

#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "src/common/rng.h"

namespace faasnap {
namespace {

struct Record {
  uint64_t when_ns;
  uint64_t seq;  // global scheduling order; the expected tie-break
};

bool RecordBefore(const Record& a, const Record& b) {
  if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
  return a.seq < b.seq;
}

TEST(SimEventOrderTest, RandomScheduleFiresInReferenceOrder) {
  Rng rng(0xabcdef01);
  for (int round = 0; round < 10; ++round) {
    Simulation sim;
    std::vector<Record> expected;
    std::vector<Record> fired;
    uint64_t seq = 0;

    // Many events crammed into few distinct timestamps so ties are common.
    for (int i = 0; i < 2000; ++i) {
      const uint64_t when_ns = rng.NextBelow(64);
      const uint64_t s = seq++;
      expected.push_back(Record{when_ns, s});
      sim.Schedule(SimTime::FromNanos(static_cast<int64_t>(when_ns)),
                   [&fired, when_ns, s] { fired.push_back(Record{when_ns, s}); });
    }
    std::stable_sort(expected.begin(), expected.end(), RecordBefore);

    EXPECT_EQ(sim.Run(), expected.size());
    ASSERT_EQ(fired.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(fired[i].when_ns, expected[i].when_ns) << "position " << i;
      ASSERT_EQ(fired[i].seq, expected[i].seq) << "position " << i;
    }
  }
}

TEST(SimEventOrderTest, CancelledEventsNeverFireOthersKeepOrder) {
  Rng rng(0x600dcafe);
  for (int round = 0; round < 10; ++round) {
    Simulation sim;
    std::vector<Record> expected;
    std::vector<Record> fired;
    std::vector<EventId> ids;
    std::vector<Record> records;
    uint64_t seq = 0;

    for (int i = 0; i < 1500; ++i) {
      const uint64_t when_ns = rng.NextBelow(48);
      const uint64_t s = seq++;
      records.push_back(Record{when_ns, s});
      ids.push_back(sim.Schedule(
          SimTime::FromNanos(static_cast<int64_t>(when_ns)),
          [&fired, when_ns, s] { fired.push_back(Record{when_ns, s}); }));
    }

    // Cancel a random third; double-cancels must be harmless no-ops.
    std::vector<bool> cancelled(ids.size(), false);
    for (size_t i = 0; i < ids.size() / 3; ++i) {
      const size_t victim = rng.NextBelow(ids.size());
      sim.Cancel(ids[victim]);
      sim.Cancel(ids[victim]);
      cancelled[victim] = true;
    }
    for (size_t i = 0; i < records.size(); ++i) {
      if (!cancelled[i]) expected.push_back(records[i]);
    }
    std::stable_sort(expected.begin(), expected.end(), RecordBefore);

    EXPECT_EQ(sim.Run(), expected.size());
    ASSERT_EQ(fired.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(fired[i].when_ns, expected[i].when_ns) << "position " << i;
      ASSERT_EQ(fired[i].seq, expected[i].seq) << "position " << i;
    }
    EXPECT_TRUE(sim.empty());
  }
}

TEST(SimEventOrderTest, ReentrantSchedulingKeepsGlobalFifoOrder) {
  // Callbacks that schedule new events at the *current* time: a freshly
  // scheduled equal-time event must fire after everything already pending at
  // that time (its seq is larger), never before.
  Simulation sim;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    sim.Schedule(SimTime::FromNanos(10), [&sim, &fired, i] {
      fired.push_back(i);
      if (i < 4) {
        sim.Schedule(sim.now(), [&fired, i] { fired.push_back(100 + i); });
      }
    });
  }
  sim.Run();
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7, 100, 101, 102, 103};
  EXPECT_EQ(fired, expected);
}

TEST(SimEventOrderTest, SameSeedSameFiringSequence) {
  // Full determinism: two independent runs of the same randomized workload
  // (schedules, cancels, re-entrant schedules) observe identical sequences.
  auto run_once = [](uint64_t seed) {
    Rng rng(seed);
    Simulation sim;
    std::vector<std::pair<uint64_t, uint64_t>> observed;  // (now_ns, tag)
    std::vector<EventId> ids;
    uint64_t tag = 0;
    std::function<void(uint64_t)> body = [&](uint64_t my_tag) {
      observed.emplace_back(
          static_cast<uint64_t>(sim.now().nanos()), my_tag);
      if (rng.NextBool(0.3)) {
        const uint64_t t = tag++;
        ids.push_back(sim.ScheduleAfter(Duration::Nanos(static_cast<int64_t>(rng.NextBelow(32))),
                                        [&body, t] { body(t); }));
      }
      if (rng.NextBool(0.2) && !ids.empty()) {
        sim.Cancel(ids[rng.NextBelow(ids.size())]);
      }
    };
    for (int i = 0; i < 300; ++i) {
      const uint64_t t = tag++;
      ids.push_back(sim.Schedule(SimTime::FromNanos(static_cast<int64_t>(rng.NextBelow(64))),
                                 [&body, t] { body(t); }));
    }
    sim.Run();
    return observed;
  };

  const auto a = run_once(42);
  const auto b = run_once(42);
  const auto c = run_once(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed should actually change the workload
}

}  // namespace
}  // namespace faasnap

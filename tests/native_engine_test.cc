// Native-engine tests: real mmap / MAP_FIXED / mincore against real files.
// These run in any Linux environment with a writable /tmp; no KVM required.

#include "src/native/native_snapshot.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>

#include "src/snapshot/serialization.h"

#include "src/common/units.h"

namespace faasnap {
namespace {

PageRangeSet SampleNonZero() {
  PageRangeSet nonzero;
  nonzero.Add(0, 64);     // "boot"
  nonzero.Add(100, 200);  // "runtime"
  nonzero.Add(1000, 50);  // "data"
  return nonzero;
}

std::unique_ptr<NativeSnapshotSession> MakeSession() {
  NativeSnapshotSession::Config config;
  config.guest_pages = PageCount::FromPages(2048);  // 8 MiB
  auto session = NativeSnapshotSession::Create(config, SampleNonZero());
  FAASNAP_CHECK_OK(session.status());
  return std::move(session).value();
}

TEST(NativeFile, CreateWriteRead) {
  Result<NativeFile> file = NativeFile::Create("/tmp/faasnap-test-file", 16);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  std::vector<uint8_t> out(kPageSize, 0xAB);
  ASSERT_TRUE(file->WritePage(3, out.data()).ok());
  std::vector<uint8_t> in(kPageSize, 0);
  ASSERT_TRUE(file->ReadPage(3, in.data()).ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), kPageSize), 0);
  // Unwritten pages read back as zero (file holes).
  ASSERT_TRUE(file->ReadPage(5, in.data()).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(in[i], 0);
  }
}

TEST(NativeRegionMapper, AnonymousBaseReadsZero) {
  NativeRegionMapper mapper;
  ASSERT_TRUE(mapper.ReserveAnonymous(128).ok());
  EXPECT_EQ(*static_cast<uint64_t*>(mapper.PageAddress(7)), 0u);
  EXPECT_EQ(mapper.mmap_call_count(), 1u);
}

TEST(NativeRegionMapper, FileOverlayShowsFileContent) {
  Result<NativeFile> file = NativeFile::Create("/tmp/faasnap-test-overlay", 16);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize, 0);
  const uint64_t stamp = 0xDEADBEEFCAFEull;
  std::memcpy(page.data(), &stamp, sizeof(stamp));
  ASSERT_TRUE(file->WritePage(4, page.data()).ok());

  NativeRegionMapper mapper;
  ASSERT_TRUE(mapper.ReserveAnonymous(64).ok());
  // Map guest pages [10, 14) to file pages [2, 6): guest 12 -> file 4.
  ASSERT_TRUE(mapper.MapFileRegion(PageRange{10, 4}, *file, 2).ok());
  EXPECT_EQ(*static_cast<uint64_t*>(mapper.PageAddress(12)), stamp);
  EXPECT_EQ(*static_cast<uint64_t*>(mapper.PageAddress(11)), 0u);  // file hole
  EXPECT_EQ(*static_cast<uint64_t*>(mapper.PageAddress(9)), 0u);   // anon base
}

TEST(NativeRegionMapper, MincoreSeesTouchedPages) {
  NativeRegionMapper mapper;
  ASSERT_TRUE(mapper.ReserveAnonymous(256).ok());
  // Touch three scattered pages.
  for (PageIndex p : {5u, 100u, 200u}) {
    *static_cast<uint64_t*>(mapper.PageAddress(p)) = p;
  }
  Result<PageRangeSet> resident = mapper.ResidentPages();
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  EXPECT_TRUE(resident->Contains(5));
  EXPECT_TRUE(resident->Contains(100));
  EXPECT_TRUE(resident->Contains(200));
  EXPECT_FALSE(resident->Contains(50));
}

TEST(NativeSnapshotSession, RecordCapturesTouchedPages) {
  auto session = MakeSession();
  std::vector<PageIndex> accesses;
  for (PageIndex p = 100; p < 160; ++p) {
    accesses.push_back(p);
  }
  Result<WorkingSetGroups> groups = session->RecordWorkingSet(accesses, /*group_size=*/16);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  PageRangeSet all = groups->AllPages();
  for (PageIndex p = 100; p < 160; ++p) {
    EXPECT_TRUE(all.Contains(p)) << p;
  }
  // Host page recording may capture everything in one scan here: the snapshot
  // file was just written, so its pages are already in the page cache (and on
  // tmpfs they can never be evicted). Grouping granularity is asserted in the
  // simulator tests; what matters natively is coverage.
  EXPECT_GE(groups->groups.size(), 1u);
}

TEST(NativeSnapshotSession, EndToEndRestoreVerifiesStamps) {
  auto session = MakeSession();
  // Record: touch a scattered subset of the runtime + data zones.
  std::vector<PageIndex> accesses;
  for (PageIndex p = 100; p < 300; p += 3) {
    accesses.push_back(p);
  }
  for (PageIndex p = 1000; p < 1050; ++p) {
    accesses.push_back(p);
  }
  Result<WorkingSetGroups> groups = session->RecordWorkingSet(accesses, 32);
  ASSERT_TRUE(groups.ok());

  Result<LoadingSetFile> loading = session->BuildAndWriteLoadingSet(*groups, PageCount::FromPages(32));
  ASSERT_TRUE(loading.ok()) << loading.status().ToString();
  EXPECT_GT(loading->total_pages.value(), 0u);
  EXPECT_GT(loading->regions.size(), 0u);

  session->DropCaches();
  session->StartLoader();
  Result<std::unique_ptr<NativeRegionMapper>> mapper = session->RestorePerRegion(*loading);
  ASSERT_TRUE(mapper.ok()) << mapper.status().ToString();

  // Every non-zero page reads its stamp through the hierarchical mapping —
  // including loading-set pages served from the compact file at remapped offsets.
  for (const PageRange& r : session->nonzero().ranges()) {
    for (PageIndex p = r.first; p < r.end(); ++p) {
      ASSERT_EQ(NativeSnapshotSession::ReadStampThroughMapping(**mapper, p),
                NativePageStamp(p))
          << "page " << p;
    }
  }
  // Zero pages (unused set) read zero through the anonymous base.
  EXPECT_EQ(NativeSnapshotSession::ReadStampThroughMapping(**mapper, 500), 0u);
  EXPECT_EQ(NativeSnapshotSession::ReadStampThroughMapping(**mapper, 2047), 0u);
  EXPECT_TRUE(session->JoinLoader().ok());
}

TEST(NativeSnapshotSession, ManifestRoundTripsFromDisk) {
  auto session = MakeSession();
  std::vector<PageIndex> accesses = {100, 101, 102, 1000, 1001};
  Result<WorkingSetGroups> groups = session->RecordWorkingSet(accesses, 2);
  ASSERT_TRUE(groups.ok());
  Result<LoadingSetFile> loading = session->BuildAndWriteLoadingSet(*groups, PageCount::FromPages(32));
  ASSERT_TRUE(loading.ok());

  std::ifstream in(session->manifest_path(), std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<uint8_t> blob((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  Result<LoadingSetFile> decoded = DecodeLoadingSetManifest(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->regions.size(), loading->regions.size());
  EXPECT_EQ(decoded->total_pages, loading->total_pages);
}

}  // namespace
}  // namespace faasnap

#include "src/mem/address_space.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

constexpr FileId kMemFile = 1;
constexpr FileId kLoadFile = 2;

TEST(AddressSpace, StartsUnmappedAndNotPresent) {
  AddressSpace space(PageCount::FromPages(100));
  EXPECT_EQ(space.Resolve(0).kind, BackingKind::kUnmapped);
  EXPECT_EQ(space.Resolve(99).kind, BackingKind::kUnmapped);
  EXPECT_EQ(space.install_state(0), PageInstallState::kNotPresent);
  EXPECT_EQ(space.resident_pages().value(), 0u);
  EXPECT_EQ(space.mmap_call_count(), 0u);
}

TEST(AddressSpace, AnonymousBaseMapping) {
  AddressSpace space(PageCount::FromPages(100));
  space.Map({.guest = {0, 100}, .kind = BackingKind::kAnonymous});
  EXPECT_EQ(space.Resolve(0).kind, BackingKind::kAnonymous);
  EXPECT_EQ(space.Resolve(99).kind, BackingKind::kAnonymous);
  EXPECT_EQ(space.mmap_call_count(), 1u);
}

TEST(AddressSpace, FileMappingTracksOffsets) {
  AddressSpace space(PageCount::FromPages(100));
  space.Map({.guest = {10, 20}, .kind = BackingKind::kFile, .file = kMemFile, .file_start = 500});
  PageBacking b = space.Resolve(15);
  EXPECT_EQ(b.kind, BackingKind::kFile);
  EXPECT_EQ(b.file, kMemFile);
  EXPECT_EQ(b.file_page, 505u);
  EXPECT_EQ(space.Resolve(29).file_page, 519u);
}

// The Figure 4 hierarchy: anon base, memory-file regions on top, loading-set
// regions on top of those.
TEST(AddressSpace, HierarchicalOverlappingMappings) {
  AddressSpace space(PageCount::FromPages(1000));
  space.Map({.guest = {0, 1000}, .kind = BackingKind::kAnonymous});
  space.Map({.guest = {100, 300}, .kind = BackingKind::kFile, .file = kMemFile,
             .file_start = 100});
  space.Map({.guest = {150, 50}, .kind = BackingKind::kFile, .file = kLoadFile, .file_start = 0});

  EXPECT_EQ(space.Resolve(50).kind, BackingKind::kAnonymous);
  EXPECT_EQ(space.Resolve(120).file, kMemFile);
  EXPECT_EQ(space.Resolve(120).file_page, 120u);
  EXPECT_EQ(space.Resolve(160).file, kLoadFile);
  EXPECT_EQ(space.Resolve(160).file_page, 10u);
  // After the loading-set region, the memory-file layer resumes with the right offset.
  EXPECT_EQ(space.Resolve(200).file, kMemFile);
  EXPECT_EQ(space.Resolve(200).file_page, 200u);
  EXPECT_EQ(space.Resolve(399).file, kMemFile);
  EXPECT_EQ(space.Resolve(400).kind, BackingKind::kAnonymous);
  EXPECT_EQ(space.mmap_call_count(), 3u);
}

TEST(AddressSpace, OverlayCoveringMultipleRegions) {
  AddressSpace space(PageCount::FromPages(100));
  space.Map({.guest = {0, 10}, .kind = BackingKind::kFile, .file = kMemFile, .file_start = 0});
  space.Map({.guest = {10, 10}, .kind = BackingKind::kFile, .file = kLoadFile, .file_start = 0});
  space.Map({.guest = {20, 10}, .kind = BackingKind::kFile, .file = kMemFile, .file_start = 20});
  // One anon overlay wipes all three.
  space.Map({.guest = {0, 30}, .kind = BackingKind::kAnonymous});
  for (PageIndex p : {0u, 10u, 20u, 29u}) {
    EXPECT_EQ(space.Resolve(p).kind, BackingKind::kAnonymous) << p;
  }
}

TEST(AddressSpace, OverlayAtExactBoundaryPreservesNeighbors) {
  AddressSpace space(PageCount::FromPages(100));
  space.Map({.guest = {0, 100}, .kind = BackingKind::kFile, .file = kMemFile, .file_start = 0});
  space.Map({.guest = {40, 20}, .kind = BackingKind::kAnonymous});
  EXPECT_EQ(space.Resolve(39).file_page, 39u);
  EXPECT_EQ(space.Resolve(40).kind, BackingKind::kAnonymous);
  EXPECT_EQ(space.Resolve(59).kind, BackingKind::kAnonymous);
  EXPECT_EQ(space.Resolve(60).kind, BackingKind::kFile);
  EXPECT_EQ(space.Resolve(60).file_page, 60u);
}

TEST(AddressSpace, OverlayToEndOfSpace) {
  AddressSpace space(PageCount::FromPages(100));
  space.Map({.guest = {0, 100}, .kind = BackingKind::kAnonymous});
  space.Map({.guest = {90, 10}, .kind = BackingKind::kFile, .file = kMemFile, .file_start = 90});
  EXPECT_EQ(space.Resolve(99).file_page, 99u);
  EXPECT_EQ(space.Resolve(89).kind, BackingKind::kAnonymous);
}

TEST(AddressSpace, InstallStateTransitionsTrackResidency) {
  AddressSpace space(PageCount::FromPages(100));
  space.Map({.guest = {0, 100}, .kind = BackingKind::kAnonymous});
  space.SetInstallState(5, PageInstallState::kPresent);
  space.SetInstallState(6, PageInstallState::kSoftPresent);
  EXPECT_EQ(space.resident_pages().value(), 2u);
  space.SetInstallState(6, PageInstallState::kPresent);  // soft -> present: still resident
  EXPECT_EQ(space.resident_pages().value(), 2u);
  space.SetInstallState(5, PageInstallState::kNotPresent);
  EXPECT_EQ(space.resident_pages().value(), 1u);
}

TEST(AddressSpace, RangeInstall) {
  AddressSpace space(PageCount::FromPages(100));
  space.SetInstallState(PageRange{10, 30}, PageInstallState::kSoftPresent);
  EXPECT_EQ(space.resident_pages().value(), 30u);
  EXPECT_EQ(space.install_state(10), PageInstallState::kSoftPresent);
  EXPECT_EQ(space.install_state(39), PageInstallState::kSoftPresent);
  EXPECT_EQ(space.install_state(40), PageInstallState::kNotPresent);
}

TEST(AddressSpace, RangeInstallMatchesPerPageInstall) {
  AddressSpace by_range(PageCount::FromPages(200));
  AddressSpace by_page(PageCount::FromPages(200));
  // A non-trivial state sequence: overlapping ranges with up- and downgrades.
  const struct {
    PageRange range;
    PageInstallState state;
  } steps[] = {
      {{10, 50}, PageInstallState::kSoftPresent},
      {{30, 50}, PageInstallState::kPresent},
      {{0, 20}, PageInstallState::kPresent},
      {{15, 30}, PageInstallState::kNotPresent},
      {{100, 64}, PageInstallState::kSoftPresent},
  };
  for (const auto& step : steps) {
    by_range.SetInstallState(step.range, step.state);
    for (PageIndex p = step.range.first; p < step.range.end(); ++p) {
      by_page.SetInstallState(p, step.state);
    }
  }
  for (PageIndex p = 0; p < 200; ++p) {
    EXPECT_EQ(by_range.install_state(p), by_page.install_state(p)) << p;
  }
  EXPECT_EQ(by_range.resident_pages().value(), by_page.resident_pages().value());
}

TEST(AddressSpace, AllInState) {
  AddressSpace space(PageCount::FromPages(100));
  space.SetInstallState(PageRange{10, 20}, PageInstallState::kPresent);
  EXPECT_TRUE(space.AllInState(PageRange{10, 20}, PageInstallState::kPresent));
  EXPECT_TRUE(space.AllInState(PageRange{15, 5}, PageInstallState::kPresent));
  EXPECT_FALSE(space.AllInState(PageRange{9, 20}, PageInstallState::kPresent));
  EXPECT_TRUE(space.AllInState(PageRange{30, 70}, PageInstallState::kNotPresent));
}

TEST(AddressSpace, MappingRunFollowsOverlayBoundaries) {
  AddressSpace space(PageCount::FromPages(1000));
  space.Map({.guest = {0, 1000}, .kind = BackingKind::kAnonymous});
  space.Map({.guest = {100, 300}, .kind = BackingKind::kFile, .file = kMemFile,
             .file_start = 100});
  space.Map({.guest = {150, 50}, .kind = BackingKind::kFile, .file = kLoadFile, .file_start = 0});
  EXPECT_EQ(space.MappingRun(50), (PageRange{0, 100}));
  EXPECT_EQ(space.MappingRun(120), (PageRange{100, 50}));
  EXPECT_EQ(space.MappingRun(160), (PageRange{150, 50}));
  EXPECT_EQ(space.MappingRun(250), (PageRange{200, 200}));
  // The last run extends to the end of the space.
  EXPECT_EQ(space.MappingRun(900), (PageRange{400, 600}));
}

TEST(AddressSpace, HugeRegionStateTracking) {
  AddressSpace space(PageCount::FromPages(1200));
  space.ConfigureHugeRegions(PageCount::FromPages(512));
  EXPECT_EQ(space.huge_region_state(0), HugeRegionState::kNone);
  space.MarkHugeEligible(512);
  // Every page of the region sees its state.
  EXPECT_EQ(space.huge_region_state(512), HugeRegionState::kEligible);
  EXPECT_EQ(space.huge_region_state(1023), HugeRegionState::kEligible);
  EXPECT_EQ(space.huge_region_state(511), HugeRegionState::kNone);
  EXPECT_EQ(space.HugeRegionOf(700), (PageRange{512, 512}));
  // The trailing region is clamped at the guest end.
  EXPECT_EQ(space.HugeRegionOf(1100), (PageRange{1024, 176}));
  space.SetHugeRegionState(700, HugeRegionState::kInstalled);
  EXPECT_EQ(space.huge_region_state(513), HugeRegionState::kInstalled);
  // Reconfiguring clears all marks.
  space.ConfigureHugeRegions(PageCount::FromPages(256));
  EXPECT_EQ(space.huge_region_state(512), HugeRegionState::kNone);
  EXPECT_EQ(space.HugeRegionOf(700), (PageRange{512, 256}));
}

TEST(AddressSpace, ResidentAnonymousPages) {
  AddressSpace space(PageCount::FromPages(100));
  space.Map({.guest = {0, 50}, .kind = BackingKind::kAnonymous});
  space.Map({.guest = {50, 50}, .kind = BackingKind::kFile, .file = kMemFile, .file_start = 0});
  space.SetInstallState(PageRange{40, 20}, PageInstallState::kPresent);
  EXPECT_EQ(space.resident_pages().value(), 20u);
  EXPECT_EQ(space.resident_anonymous_pages().value(), 10u);  // pages 40-49 only
}

TEST(AddressSpaceDeathTest, OutOfBoundsAborts) {
  AddressSpace space(PageCount::FromPages(10));
  EXPECT_DEATH(space.Resolve(10), "FAASNAP_CHECK");
  EXPECT_DEATH(space.Map({.guest = {5, 10}, .kind = BackingKind::kAnonymous}), "FAASNAP_CHECK");
}

}  // namespace
}  // namespace faasnap

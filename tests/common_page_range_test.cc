#include "src/common/page_range.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace faasnap {
namespace {

TEST(PageRange, BasicAccessors) {
  PageRange r{10, 5};
  EXPECT_EQ(r.end(), 15u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(14));
  EXPECT_FALSE(r.Contains(15));
  EXPECT_FALSE(r.Contains(9));
}

TEST(PageRange, Overlaps) {
  PageRange a{0, 10};
  EXPECT_TRUE(a.Overlaps(PageRange{5, 10}));
  EXPECT_TRUE(a.Overlaps(PageRange{9, 1}));
  EXPECT_FALSE(a.Overlaps(PageRange{10, 5}));
  EXPECT_FALSE(a.Overlaps(PageRange{20, 5}));
}

TEST(PageRangeSet, AddCoalescesAbuttingRanges) {
  PageRangeSet s;
  s.Add(0, 4);
  s.Add(4, 4);
  ASSERT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.ranges()[0], (PageRange{0, 8}));
  EXPECT_EQ(s.page_count(), 8u);
}

TEST(PageRangeSet, AddCoalescesOverlappingRanges) {
  PageRangeSet s;
  s.Add(0, 10);
  s.Add(5, 10);
  ASSERT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.ranges()[0], (PageRange{0, 15}));
}

TEST(PageRangeSet, AddKeepsDisjointRangesSeparate) {
  PageRangeSet s;
  s.Add(0, 4);
  s.Add(8, 4);
  EXPECT_EQ(s.range_count(), 2u);
  EXPECT_EQ(s.page_count(), 8u);
}

TEST(PageRangeSet, AddBridgingRangeMergesNeighbors) {
  PageRangeSet s;
  s.Add(0, 4);
  s.Add(8, 4);
  s.Add(4, 4);
  ASSERT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.ranges()[0], (PageRange{0, 12}));
}

TEST(PageRangeSet, RemoveSplitsRange) {
  PageRangeSet s;
  s.Add(0, 10);
  s.Remove(3, 4);
  ASSERT_EQ(s.range_count(), 2u);
  EXPECT_EQ(s.ranges()[0], (PageRange{0, 3}));
  EXPECT_EQ(s.ranges()[1], (PageRange{7, 3}));
  EXPECT_EQ(s.page_count(), 6u);
}

TEST(PageRangeSet, RemoveWholeRange) {
  PageRangeSet s;
  s.Add(5, 5);
  s.Remove(0, 100);
  EXPECT_TRUE(s.empty());
}

TEST(PageRangeSet, RemoveTrimsEdges) {
  PageRangeSet s;
  s.Add(10, 10);
  s.Remove(5, 8);   // trims front to [13, 20)
  s.Remove(18, 10); // trims back to [13, 18)
  ASSERT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.ranges()[0], (PageRange{13, 5}));
}

TEST(PageRangeSet, Contains) {
  PageRangeSet s;
  s.Add(10, 5);
  s.Add(100, 1);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(14));
  EXPECT_FALSE(s.Contains(15));
  EXPECT_TRUE(s.Contains(100));
  EXPECT_FALSE(s.Contains(99));
  EXPECT_FALSE(s.Contains(0));
}

TEST(PageRangeSet, Intersect) {
  PageRangeSet a;
  a.Add(0, 10);
  a.Add(20, 10);
  PageRangeSet b;
  b.Add(5, 20);
  PageRangeSet c = a.Intersect(b);
  ASSERT_EQ(c.range_count(), 2u);
  EXPECT_EQ(c.ranges()[0], (PageRange{5, 5}));
  EXPECT_EQ(c.ranges()[1], (PageRange{20, 5}));
}

TEST(PageRangeSet, IntersectEmpty) {
  PageRangeSet a;
  a.Add(0, 10);
  PageRangeSet b;
  b.Add(10, 10);
  EXPECT_TRUE(a.Intersect(b).empty());
  EXPECT_TRUE(a.Intersect(PageRangeSet()).empty());
}

TEST(PageRangeSet, Union) {
  PageRangeSet a;
  a.Add(0, 5);
  PageRangeSet b;
  b.Add(5, 5);
  b.Add(20, 5);
  PageRangeSet u = a.Union(b);
  ASSERT_EQ(u.range_count(), 2u);
  EXPECT_EQ(u.ranges()[0], (PageRange{0, 10}));
  EXPECT_EQ(u.ranges()[1], (PageRange{20, 5}));
}

TEST(PageRangeSet, Subtract) {
  PageRangeSet a;
  a.Add(0, 100);
  PageRangeSet b;
  b.Add(10, 10);
  b.Add(50, 10);
  PageRangeSet d = a.Subtract(b);
  ASSERT_EQ(d.range_count(), 3u);
  EXPECT_EQ(d.page_count(), 80u);
  EXPECT_FALSE(d.Contains(15));
  EXPECT_TRUE(d.Contains(9));
  EXPECT_TRUE(d.Contains(20));
}

TEST(PageRangeSet, ComplementWithin) {
  PageRangeSet a;
  a.Add(2, 3);
  a.Add(8, 2);
  PageRangeSet c = a.ComplementWithin(PageCount::FromPages(12));
  ASSERT_EQ(c.range_count(), 3u);
  EXPECT_EQ(c.ranges()[0], (PageRange{0, 2}));
  EXPECT_EQ(c.ranges()[1], (PageRange{5, 3}));
  EXPECT_EQ(c.ranges()[2], (PageRange{10, 2}));
}

TEST(PageRangeSet, ComplementOfEmptyIsWholeSpace) {
  PageRangeSet empty;
  PageRangeSet c = empty.ComplementWithin(PageCount::FromPages(100));
  ASSERT_EQ(c.range_count(), 1u);
  EXPECT_EQ(c.ranges()[0], (PageRange{0, 100}));
}

// The paper's section 4.6 merge: regions separated by <= threshold pages are merged,
// including the gap pages.
TEST(PageRangeSet, MergeWithGapToleranceIncludesGapPages) {
  PageRangeSet s;
  s.Add(0, 4);
  s.Add(6, 4);    // gap of 2
  s.Add(50, 4);   // gap of 40
  PageRangeSet merged = s.MergeWithGapTolerance(PageCount::FromPages(32));
  ASSERT_EQ(merged.range_count(), 2u);
  EXPECT_EQ(merged.ranges()[0], (PageRange{0, 10}));  // gap pages 4,5 included
  EXPECT_EQ(merged.ranges()[1], (PageRange{50, 4}));
  EXPECT_EQ(merged.page_count(), 14u);
}

TEST(PageRangeSet, MergeWithZeroToleranceIsIdentity) {
  PageRangeSet s;
  s.Add(0, 4);
  s.Add(5, 4);
  PageRangeSet merged = s.MergeWithGapTolerance(PageCount::FromPages(0));
  EXPECT_EQ(merged, s);
}

TEST(PageRangeSet, MergeGapExactlyAtThreshold) {
  PageRangeSet s;
  s.Add(0, 1);
  s.Add(33, 1);  // gap of 32
  EXPECT_EQ(s.MergeWithGapTolerance(PageCount::FromPages(32)).range_count(), 1u);
  EXPECT_EQ(s.MergeWithGapTolerance(PageCount::FromPages(31)).range_count(), 2u);
}

// Property-style sweep: union/intersect/subtract against a bitmap oracle.
class PageRangeSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageRangeSetPropertyTest, SetAlgebraMatchesBitmapOracle) {
  Rng rng(GetParam());
  constexpr uint64_t kSpace = 256;
  std::vector<bool> bits_a(kSpace, false);
  std::vector<bool> bits_b(kSpace, false);
  PageRangeSet a;
  PageRangeSet b;
  for (int i = 0; i < 40; ++i) {
    const uint64_t first = rng.NextBelow(kSpace);
    const uint64_t count = 1 + rng.NextBelow(16);
    const uint64_t clamped = std::min(count, kSpace - first);
    if (rng.NextBool(0.5)) {
      a.Add(first, clamped);
      for (uint64_t p = first; p < first + clamped; ++p) bits_a[p] = true;
    } else {
      b.Add(first, clamped);
      for (uint64_t p = first; p < first + clamped; ++p) bits_b[p] = true;
    }
    if (rng.NextBool(0.2)) {
      const uint64_t rf = rng.NextBelow(kSpace);
      const uint64_t rc = std::min<uint64_t>(1 + rng.NextBelow(8), kSpace - rf);
      a.Remove(rf, rc);
      for (uint64_t p = rf; p < rf + rc; ++p) bits_a[p] = false;
    }
  }
  const PageRangeSet u = a.Union(b);
  const PageRangeSet inter = a.Intersect(b);
  const PageRangeSet diff = a.Subtract(b);
  const PageRangeSet comp = a.ComplementWithin(PageCount::FromPages(kSpace));
  for (uint64_t p = 0; p < kSpace; ++p) {
    EXPECT_EQ(a.Contains(p), bits_a[p]) << "page " << p;
    EXPECT_EQ(u.Contains(p), bits_a[p] || bits_b[p]) << "page " << p;
    EXPECT_EQ(inter.Contains(p), bits_a[p] && bits_b[p]) << "page " << p;
    EXPECT_EQ(diff.Contains(p), bits_a[p] && !bits_b[p]) << "page " << p;
    EXPECT_EQ(comp.Contains(p), !bits_a[p]) << "page " << p;
  }
  // Structural invariants: sorted, disjoint, coalesced.
  const std::vector<const PageRangeSet*> all = {&a, &b, &u, &inter, &diff, &comp};
  for (const PageRangeSet* s : all) {
    const auto& rs = s->ranges();
    for (size_t i = 1; i < rs.size(); ++i) {
      EXPECT_GT(rs[i].first, rs[i - 1].end());  // strict gap: coalesced
    }
    uint64_t total = 0;
    for (const auto& r : rs) total += r.count;
    EXPECT_EQ(total, s->page_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRangeSetPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace faasnap

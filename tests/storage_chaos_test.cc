// Failure-aware reads through the StorageRouter under deterministic fault
// injection: retry/backoff, per-attempt deadlines, the per-device circuit
// breaker, and remote->local failover. Every test pins the injection decision
// (rate 0 or 1, or a guaranteed outage window) so outcomes are exact, not
// probabilistic.

#include "src/storage/storage_router.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/chaos/fault_injector.h"
#include "src/common/units.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

constexpr FileId kFile = 7;

class StorageChaosTest : public ::testing::Test {
 protected:
  StorageChaosTest() : local_(&sim_, TestDiskProfile()), remote_(&sim_, EbsIo2Profile()) {
    local_id_ = router_.AddDevice(&local_);
    remote_id_ = router_.AddDevice(&remote_);
  }

  // Attaches an injector (to the router and both devices) with `chaos` knobs
  // and the given retry policy.
  void Arm(ChaosConfig chaos, StorageFaultPolicy policy) {
    chaos.enabled = true;
    injector_ = std::make_unique<FaultInjector>(&sim_, chaos);
    local_.set_fault_injector(injector_.get(), 0);
    remote_.set_fault_injector(injector_.get(), 1);
    router_.ConfigureFaultHandling(&sim_, injector_.get(), policy);
  }

  Simulation sim_;
  BlockDevice local_;
  BlockDevice remote_;
  StorageRouter router_;
  std::unique_ptr<FaultInjector> injector_;
  DeviceId local_id_;
  DeviceId remote_id_;
};

TEST_F(StorageChaosTest, NoInjectorIsAPlainForwardingRead) {
  router_.ConfigureFaultHandling(&sim_, nullptr, StorageFaultPolicy{});
  int completions = 0;
  router_.ReadWithStatus(kFile, 0, kPageSize, [&](Status status) {
    EXPECT_TRUE(status.ok());
    ++completions;
  });
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(local_.stats().read_requests, 1u);
  EXPECT_EQ(router_.fault_stats().retries, 0u);
  EXPECT_EQ(router_.fault_stats().failed_reads, 0u);
}

TEST_F(StorageChaosTest, TransientErrorIsRetriedToSuccess) {
  ChaosConfig chaos;
  chaos.read_error_rate = 1.0;
  Arm(chaos, StorageFaultPolicy{});
  Status final_status = InternalError("never completed");
  router_.ReadWithStatus(kFile, 0, kPageSize,
                         [&](Status status) { final_status = std::move(status); });
  // The first attempt was issued (and its fault drawn) synchronously above;
  // disarming now makes the retry the recovery.
  injector_->set_armed(false);
  sim_.Run();
  EXPECT_TRUE(final_status.ok()) << final_status.ToString();
  EXPECT_EQ(router_.fault_stats().retries, 1u);
  EXPECT_EQ(router_.fault_stats().failed_reads, 0u);
  EXPECT_EQ(local_.stats().read_requests, 2u);
}

TEST_F(StorageChaosTest, ExhaustedRetriesFailTypedAndOpenTheBreaker) {
  ChaosConfig chaos;
  chaos.read_error_rate = 1.0;
  StorageFaultPolicy policy;
  policy.max_attempts = 4;
  policy.breaker_failure_threshold = 4;
  Arm(chaos, policy);
  Status final_status;
  int completions = 0;
  router_.ReadWithStatus(kFile, 0, kPageSize, [&](Status status) {
    final_status = std::move(status);
    ++completions;
  });
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(final_status.code(), StatusCode::kIoError);
  EXPECT_EQ(router_.fault_stats().retries, 3u);
  EXPECT_EQ(router_.fault_stats().failed_reads, 1u);
  // The 4th consecutive failure trips the device's breaker.
  EXPECT_EQ(router_.fault_stats().breaker_opens, 1u);
}

TEST_F(StorageChaosTest, OpenBreakerFailsFastWithoutTouchingTheDevice) {
  ChaosConfig chaos;
  chaos.read_error_rate = 1.0;
  StorageFaultPolicy policy;
  policy.max_attempts = 4;
  policy.breaker_failure_threshold = 4;
  Arm(chaos, policy);
  Status second_status;
  // Issue the second read the moment the first fails: the breaker has just
  // opened, so every attempt of the second read fast-fails inside the open
  // window without reaching the device.
  router_.ReadWithStatus(kFile, 0, kPageSize, [&](Status) {
    router_.ReadWithStatus(kFile, 0, kPageSize,
                           [&](Status status) { second_status = std::move(status); });
  });
  sim_.Run();
  EXPECT_EQ(second_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(router_.fault_stats().breaker_fast_fails, 4u);
  EXPECT_EQ(local_.stats().read_requests, 4u);  // only the first read's attempts
  EXPECT_EQ(router_.fault_stats().failed_reads, 2u);
}

TEST_F(StorageChaosTest, RemoteOutageFailsOverToTheLocalReplica) {
  ChaosConfig chaos;
  chaos.remote_outage_mean_gap = Duration::Micros(1);  // first window ~immediately
  chaos.remote_outage_duration = Duration::Seconds(100);
  StorageFaultPolicy policy;
  policy.max_attempts = 2;
  Arm(chaos, policy);
  router_.AssignFile(kFile, remote_id_);
  Status final_status = InternalError("never completed");
  // Read well inside the outage window: both remote attempts fail UNAVAILABLE,
  // then the read fails over to the local replica and succeeds.
  sim_.ScheduleAfter(Duration::Millis(1), [&] {
    router_.ReadWithStatus(kFile, 0, kPageSize,
                           [&](Status status) { final_status = std::move(status); });
  });
  sim_.Run();
  EXPECT_TRUE(final_status.ok()) << final_status.ToString();
  EXPECT_EQ(router_.fault_stats().failovers, 1u);
  EXPECT_EQ(router_.fault_stats().failed_reads, 0u);
  EXPECT_EQ(local_.stats().read_requests, 1u);
  EXPECT_EQ(remote_.stats().read_requests, 2u);
}

TEST_F(StorageChaosTest, DeadlineExpiresStalledReadsAndDiscardsLateCompletions) {
  ChaosConfig chaos;
  chaos.read_delay_rate = 1.0;
  chaos.read_delay = Duration::Millis(100);
  StorageFaultPolicy policy;
  policy.max_attempts = 1;
  policy.read_deadline = Duration::Millis(1);
  Arm(chaos, policy);
  int completions = 0;
  Status final_status;
  router_.ReadWithStatus(kFile, 0, kPageSize, [&](Status status) {
    final_status = std::move(status);
    ++completions;
  });
  // Run to quiescence: the deadline fires at 1ms, the (successful) device
  // completion lands around 100ms and must be dropped, not double-delivered.
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(final_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(router_.fault_stats().failed_reads, 1u);
}

}  // namespace
}  // namespace faasnap

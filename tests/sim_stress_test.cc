// Randomized stress tests for the discrete-event core: ordering, cancellation,
// and re-entrant scheduling checked against an oracle.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/sim/simulation.h"

namespace faasnap {
namespace {

class SimulationStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulationStressTest, FiringOrderMatchesOracle) {
  Rng rng(GetParam());
  Simulation sim;
  // Oracle: (time, seq) pairs in scheduling order.
  struct Expected {
    int64_t time;
    uint64_t seq;
  };
  std::vector<Expected> oracle;
  std::vector<std::pair<int64_t, uint64_t>> fired;
  std::set<EventId> cancelled;
  std::vector<EventId> ids;
  uint64_t seq = 0;

  for (int i = 0; i < 300; ++i) {
    const int64_t when = static_cast<int64_t>(rng.NextBelow(1000));
    const uint64_t my_seq = seq++;
    EventId id = sim.Schedule(SimTime::FromNanos(when), [&fired, when, my_seq] {
      fired.emplace_back(when, my_seq);
    });
    ids.push_back(id);
    oracle.push_back(Expected{when, my_seq});
    // Cancel a random earlier event occasionally.
    if (!ids.empty() && rng.NextBool(0.2)) {
      const size_t victim = rng.NextBelow(ids.size());
      sim.Cancel(ids[victim]);
      cancelled.insert(ids[victim]);
    }
  }
  sim.Run();

  // Build the expected firing order: non-cancelled events sorted by (time, seq).
  std::vector<std::pair<int64_t, uint64_t>> expected;
  for (size_t i = 0; i < oracle.size(); ++i) {
    if (cancelled.count(ids[i]) == 0) {
      expected.emplace_back(oracle[i].time, oracle[i].seq);
    }
  }
  std::stable_sort(expected.begin(), expected.end());
  ASSERT_EQ(fired.size(), expected.size());
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i]) << "position " << i;
  }
}

TEST_P(SimulationStressTest, ReentrantSchedulingKeepsClockMonotonic) {
  Rng rng(GetParam() ^ 0xABCD);
  Simulation sim;
  int64_t last_time = -1;
  int fired = 0;
  int scheduled = 0;
  std::function<void()> chaotic = [&] {
    ++fired;
    EXPECT_GE(sim.now().nanos(), last_time);
    last_time = sim.now().nanos();
    // Events may schedule more events (bounded).
    while (scheduled < 2000 && rng.NextBool(0.6)) {
      ++scheduled;
      sim.ScheduleAfter(Duration::Nanos(static_cast<int64_t>(rng.NextBelow(50))), chaotic);
    }
  };
  for (int i = 0; i < 20; ++i) {
    ++scheduled;
    sim.Schedule(SimTime::FromNanos(static_cast<int64_t>(rng.NextBelow(100))), chaotic);
  }
  sim.Run();
  EXPECT_EQ(fired, scheduled);
  EXPECT_TRUE(sim.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationStressTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(SimulationRunUntil, InterleavedWithRunIsConsistent) {
  // Draining in slices must fire the same events as a single Run.
  auto run_sliced = [](bool sliced) {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.Schedule(SimTime::FromNanos(i * 10), [&order, i] { order.push_back(i); });
    }
    if (sliced) {
      for (int64_t t = 0; t <= 500; t += 37) {
        sim.RunUntil(SimTime::FromNanos(t));
      }
      sim.Run();
    } else {
      sim.Run();
    }
    return order;
  };
  EXPECT_EQ(run_sliced(true), run_sliced(false));
}

TEST(SimulationRunUntil, AdvancesClockThroughEmptyQueue) {
  Simulation sim;
  sim.RunUntil(SimTime::FromNanos(1000000));
  EXPECT_EQ(sim.now().nanos(), 1000000);
  // And scheduling after the advance works from the new time.
  int64_t fired_at = 0;
  sim.ScheduleAfter(Duration::Nanos(5), [&] { fired_at = sim.now().nanos(); });
  sim.Run();
  EXPECT_EQ(fired_at, 1000005);
}

}  // namespace
}  // namespace faasnap

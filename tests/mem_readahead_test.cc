#include "src/mem/readahead.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

constexpr FileId kFile = 1;
constexpr PageCount kFilePages = PageCount::FromPages(100000);

TEST(Readahead, FirstFaultGetsInitialWindow) {
  ReadaheadPolicy ra;
  PageRange w = ra.WindowFor(kFile, 1000, kFilePages);
  EXPECT_EQ(w.first, 1000u);
  EXPECT_EQ(w.count, ra.config().initial_window_pages.value());
}

TEST(Readahead, SequentialStreamDoublesWindowUpToMax) {
  ReadaheadPolicy ra;
  PageIndex p = 0;
  PageRange w = ra.WindowFor(kFile, p, kFilePages);
  EXPECT_EQ(w.count, 16u);
  w = ra.WindowFor(kFile, p + 16, kFilePages);
  EXPECT_EQ(w.count, 32u);
  w = ra.WindowFor(kFile, p + 48, kFilePages);
  EXPECT_EQ(w.count, 64u);
  w = ra.WindowFor(kFile, p + 112, kFilePages);
  EXPECT_EQ(w.count, 64u);  // capped at max
}

TEST(Readahead, RandomJumpShrinksToFaultAroundWindow) {
  ReadaheadPolicy ra;
  ra.WindowFor(kFile, 0, kFilePages);
  ra.WindowFor(kFile, 16, kFilePages);  // grown to 32
  PageRange w = ra.WindowFor(kFile, 50000, kFilePages);
  EXPECT_EQ(w.count, ra.config().random_window_pages.value());
  // A sequential stream resuming after the jump grows again.
  w = ra.WindowFor(kFile, 50000 + w.count, kFilePages);
  EXPECT_EQ(w.count, ra.config().random_window_pages.value() * 2);
}

TEST(Readahead, BackwardJumpShrinksWindow) {
  ReadaheadPolicy ra;
  ra.WindowFor(kFile, 1000, kFilePages);
  PageRange w = ra.WindowFor(kFile, 500, kFilePages);
  EXPECT_EQ(w.count, ra.config().random_window_pages.value());
}

TEST(Readahead, WindowClampsAtEndOfFile) {
  ReadaheadPolicy ra;
  PageRange w = ra.WindowFor(kFile, kFilePages.value() - 3, kFilePages);
  EXPECT_EQ(w.first, kFilePages.value() - 3);
  EXPECT_EQ(w.count, 3u);
}

TEST(Readahead, StreamsArePerFile) {
  ReadaheadPolicy ra;
  ra.WindowFor(1, 0, kFilePages);
  ra.WindowFor(1, 16, kFilePages);  // file 1 grown
  PageRange w2 = ra.WindowFor(2, 0, kFilePages);
  EXPECT_EQ(w2.count, ra.config().initial_window_pages.value());
  PageRange w1 = ra.WindowFor(1, 48, kFilePages);
  EXPECT_EQ(w1.count, 64u);
}

TEST(Readahead, DisabledReadsSinglePage) {
  ReadaheadPolicy ra(ReadaheadConfig{.initial_window_pages = PageCount::FromPages(16),
                                     .max_window_pages = PageCount::FromPages(64),
                                     .enabled = false});
  PageRange w = ra.WindowFor(kFile, 10, kFilePages);
  EXPECT_EQ(w, (PageRange{10, 1}));
}

TEST(Readahead, ResetForgetsStreams) {
  ReadaheadPolicy ra;
  ra.WindowFor(kFile, 0, kFilePages);
  ra.WindowFor(kFile, 16, kFilePages);
  ra.Reset();
  PageRange w = ra.WindowFor(kFile, 32, kFilePages);
  EXPECT_EQ(w.count, ra.config().initial_window_pages.value());
}

TEST(Readahead, StreamTableIsBoundedWithLruEviction) {
  ReadaheadPolicy ra(ReadaheadConfig{.max_streams = 4});
  for (FileId f = 1; f <= 4; ++f) {
    ra.WindowFor(f, 0, kFilePages);
    ra.WindowFor(f, 16, kFilePages);  // each grown to 32
  }
  EXPECT_EQ(ra.stream_count(), 4u);
  ra.WindowFor(1, 48, kFilePages);  // refresh file 1; file 2 is now LRU
  ra.WindowFor(5, 0, kFilePages);   // new file evicts file 2
  EXPECT_EQ(ra.stream_count(), 4u);
  // The evicted file restarts like a fresh stream...
  EXPECT_EQ(ra.WindowFor(2, 32, kFilePages).count, ra.config().initial_window_pages.value());
  // ...while the refreshed survivor kept its grown window.
  EXPECT_EQ(ra.WindowFor(1, 112, kFilePages).count, 64u);
}

TEST(Readahead, ZeroMaxStreamsIsUnbounded) {
  ReadaheadPolicy ra(ReadaheadConfig{.max_streams = 0});
  for (FileId f = 1; f <= 300; ++f) {
    ra.WindowFor(f, 0, kFilePages);
  }
  EXPECT_EQ(ra.stream_count(), 300u);
}

// The property host-page-recording depends on: a sequential faulting stream pulls
// in pages *beyond* what was faulted on.
TEST(Readahead, SequentialStreamCoversMoreThanFaultedPages) {
  ReadaheadPolicy ra;
  PageRangeSet covered;
  PageIndex fault = 0;
  for (int i = 0; i < 5; ++i) {
    PageRange w = ra.WindowFor(kFile, fault, kFilePages);
    covered.Add(w);
    fault = w.end();  // next miss lands just past the window
  }
  EXPECT_GT(covered.page_count(), 5u * 16u);
}

}  // namespace
}  // namespace faasnap

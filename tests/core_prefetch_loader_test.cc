#include "src/core/prefetch_loader.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

constexpr FileId kFile = 1;

class PrefetchLoaderTest : public ::testing::Test {
 protected:
  PrefetchLoaderTest() : disk_(&sim_, TestDiskProfile()) { router_.AddDevice(&disk_); }

  Simulation sim_;
  PageCache cache_;
  BlockDevice disk_;
  StorageRouter router_;
};

TEST_F(PrefetchLoaderTest, LoadsAllPagesIntoCache) {
  PrefetchLoader loader(&sim_, &cache_, &router_, {.chunk_pages = PageCount::FromPages(64), .pipeline_depth = 2});
  bool done = false;
  loader.Start({{kFile, {0, 256}}}, [&] { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(loader.finished());
  EXPECT_EQ(cache_.PresentPages(kFile).page_count(), 256u);
  EXPECT_EQ(loader.fetched_bytes().value(), 256 * kPageSize);
  EXPECT_EQ(loader.skipped_pages().value(), 0u);
  EXPECT_GT(loader.fetch_time(), Duration::Zero());
}

TEST_F(PrefetchLoaderTest, SkipsAlreadyCachedPages) {
  cache_.Insert(kFile, PageRange{0, 128});
  PrefetchLoader loader(&sim_, &cache_, &router_, {.chunk_pages = PageCount::FromPages(64), .pipeline_depth = 2});
  loader.Start({{kFile, {0, 256}}}, [] {});
  sim_.Run();
  EXPECT_EQ(loader.fetched_bytes().value(), 128 * kPageSize);
  EXPECT_EQ(loader.skipped_pages().value(), 128u);
  EXPECT_EQ(cache_.PresentPages(kFile).page_count(), 256u);
}

TEST_F(PrefetchLoaderTest, TwoLoadersDedupeThroughTheCache) {
  // The bursty same-snapshot case (section 6.6): the loading set is read from disk
  // exactly once even with concurrent loaders.
  PrefetchLoader a(&sim_, &cache_, &router_, {.chunk_pages = PageCount::FromPages(64), .pipeline_depth = 2});
  PrefetchLoader b(&sim_, &cache_, &router_, {.chunk_pages = PageCount::FromPages(64), .pipeline_depth = 2});
  int finished = 0;
  a.Start({{kFile, {0, 512}}}, [&] { ++finished; });
  b.Start({{kFile, {0, 512}}}, [&] { ++finished; });
  sim_.Run();
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(a.fetched_bytes().value() + b.fetched_bytes().value(), 512 * kPageSize);
  EXPECT_EQ(disk_.stats().bytes_read, 512 * kPageSize);
}

TEST_F(PrefetchLoaderTest, PipelinedChunksApproachFullBandwidth) {
  // 64 MiB sequential with pipeline depth 4: wall clock should be close to the
  // bandwidth bound (64 MiB at 1 GB/s ~= 67 ms), far below the serial-read bound.
  PrefetchLoader loader(&sim_, &cache_, &router_, {.chunk_pages = PageCount::FromPages(512), .pipeline_depth = 4});
  loader.Start({{kFile, {0, 16384}}}, [] {});
  sim_.Run();
  const double seconds = loader.fetch_time().seconds();
  EXPECT_LT(seconds, 0.075);
  EXPECT_GT(seconds, 0.065);
}

TEST_F(PrefetchLoaderTest, AdaptiveDepthHalvesUnderDemandPressureAndRampsBack) {
  // While demand reads are queued or in service at the router, each pipeline
  // refill halves the effective depth (down to the floor); once the device has
  // been quiet for depth_ramp_quiet it doubles back toward the configured depth.
  PrefetchLoader loader(&sim_, &cache_, &router_,
                        {.chunk_pages = PageCount::FromPages(64),
                         .pipeline_depth = 4,
                         .adaptive_depth = true,
                         .min_pipeline_depth = 1,
                         .depth_ramp_quiet = Duration::Micros(500)});
  // A closed demand-fault chain on another file keeps pressure > 0 early on.
  constexpr FileId kOther = 2;
  int demand_left = 12;
  std::function<void()> demand_chain = [&] {
    if (--demand_left > 0) {
      router_.Read(kOther, static_cast<uint64_t>(demand_left) * kPageSize, kPageSize,
                   demand_chain, kNoSpan, ReadClass::kDemand);
    }
  };
  router_.Read(kOther, 0, kPageSize, demand_chain, kNoSpan, ReadClass::kDemand);
  int min_seen = 4;
  sim_.ScheduleAfter(Duration::Micros(400), [&] { min_seen = loader.current_depth(); });
  loader.Start({{kFile, {0, 4096}}}, [] {});
  sim_.Run();
  // Pressure was live during the load: the pipeline backed off...
  EXPECT_LT(min_seen, 4);
  // ...and with the demand chain long gone before the 16 MiB load finished,
  // quiet intervals ramped it back to the configured depth.
  EXPECT_EQ(loader.current_depth(), 4);
  EXPECT_EQ(cache_.PresentPages(kFile).page_count(), 4096u);
}

TEST_F(PrefetchLoaderTest, AdaptiveDepthOffKeepsConfiguredDepth) {
  PrefetchLoader loader(&sim_, &cache_, &router_,
                        {.chunk_pages = PageCount::FromPages(64), .pipeline_depth = 4, .adaptive_depth = false});
  router_.Read(kFile, MiB(512).value(), kPageSize, [] {}, kNoSpan, ReadClass::kDemand);
  loader.Start({{kFile, {0, 1024}}}, [] {});
  sim_.Run();
  EXPECT_EQ(loader.current_depth(), 4);
}

TEST_F(PrefetchLoaderTest, MultipleItemsLoadInOrder) {
  // Group-ordered loading: earlier items should complete no later than later ones.
  PrefetchLoader loader(&sim_, &cache_, &router_, {.chunk_pages = PageCount::FromPages(32), .pipeline_depth = 1});
  std::vector<PrefetchItem> items = {{kFile, {1000, 32}}, {kFile, {0, 32}}, {kFile, {500, 32}}};
  SimTime first_done;
  sim_.ScheduleAfter(Duration::Micros(200), [&] {
    // Early in the load, the first item's pages should already be in flight or
    // present while the last item's are still absent.
    EXPECT_NE(cache_.GetState(kFile, 1000), PageCache::PageState::kAbsent);
    EXPECT_EQ(cache_.GetState(kFile, 500), PageCache::PageState::kAbsent);
    first_done = sim_.now();
  });
  loader.Start(items, [] {});
  sim_.Run();
  EXPECT_EQ(cache_.PresentPages(kFile).page_count(), 96u);
}

TEST_F(PrefetchLoaderTest, EmptyPlanFinishesInstantly) {
  PrefetchLoader loader(&sim_, &cache_, &router_);
  bool done = false;
  loader.Start({}, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_TRUE(loader.finished());
  EXPECT_EQ(loader.fetch_time(), Duration::Zero());
}

TEST_F(PrefetchLoaderTest, WaitersOnInFlightLoaderPagesAreWoken) {
  PrefetchLoader loader(&sim_, &cache_, &router_, {.chunk_pages = PageCount::FromPages(256), .pipeline_depth = 1});
  loader.Start({{kFile, {0, 256}}}, [] {});
  // While the read is in flight, a faulting VM can wait on it.
  EXPECT_EQ(cache_.GetState(kFile, 100), PageCache::PageState::kInFlight);
  bool woken = false;
  cache_.WaitFor(kFile, 100, [&](const Status&) { woken = true; });
  sim_.Run();
  EXPECT_TRUE(woken);
}

TEST_F(PrefetchLoaderTest, StartTwiceAborts) {
  PrefetchLoader loader(&sim_, &cache_, &router_);
  loader.Start({}, [] {});
  EXPECT_DEATH(loader.Start({}, [] {}), "FAASNAP_CHECK");
}

}  // namespace
}  // namespace faasnap

#include "src/vm/guest_layout.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

TEST(GuestLayout, DefaultIs2GiB) {
  GuestLayout layout = GuestLayout::Default2GiB();
  EXPECT_EQ(layout.total_pages.value(), 524288u);
  EXPECT_TRUE(layout.Validate().ok());
}

TEST(GuestLayout, ZonesAreOrderedAndDisjoint) {
  GuestLayout layout = GuestLayout::Default2GiB();
  EXPECT_LE(layout.boot.end(), layout.stable.first);
  EXPECT_LE(layout.stable.end(), layout.window.first);
  EXPECT_LE(layout.window.end(), layout.scratch.first);
  EXPECT_LE(layout.scratch.end(), layout.total_pages.value());
}

TEST(GuestLayout, BootIsOver100MiB) {
  // Section 4.8: the cold set is "usually more than 100 MB", mostly boot pages.
  GuestLayout layout = GuestLayout::Default2GiB();
  EXPECT_GE(PagesToBytes(layout.boot.count), MiB(100).value());
}

TEST(GuestLayout, StableZoneFitsReadList) {
  // read-list's working set is 526 MiB (Table 2); stable data must fit.
  GuestLayout layout = GuestLayout::Default2GiB();
  EXPECT_GE(PagesToBytes(layout.stable.count), MiB(560).value());
}

TEST(GuestLayout, ScratchZoneFitsMmapFunction) {
  GuestLayout layout = GuestLayout::Default2GiB();
  EXPECT_GE(PagesToBytes(layout.scratch.count), MiB(512).value());
}

TEST(GuestLayout, ValidateRejectsOverlap) {
  GuestLayout layout = GuestLayout::Default2GiB();
  layout.stable.first = layout.boot.first + 1;  // overlaps boot
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(GuestLayout, ValidateRejectsOverflow) {
  GuestLayout layout = GuestLayout::Default2GiB();
  layout.scratch.count = layout.total_pages.value();  // runs past the end
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(GuestLayout, ValidateRejectsEmptyZone) {
  GuestLayout layout = GuestLayout::Default2GiB();
  layout.window.count = 0;
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(GuestConfig, DefaultsMatchPaper) {
  GuestConfig config;
  EXPECT_EQ(PagesToBytes(config.mem_pages), GiB(2));
  EXPECT_EQ(config.vcpus, 2);
}

}  // namespace
}  // namespace faasnap

#include "src/storage/storage_router.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

class StorageRouterTest : public ::testing::Test {
 protected:
  StorageRouterTest() : local_(&sim_, TestDiskProfile()), remote_(&sim_, EbsIo2Profile()) {
    local_id_ = router_.AddDevice(&local_);
    remote_id_ = router_.AddDevice(&remote_);
  }

  Simulation sim_;
  BlockDevice local_;
  BlockDevice remote_;
  StorageRouter router_;
  DeviceId local_id_;
  DeviceId remote_id_;
};

TEST_F(StorageRouterTest, FirstDeviceIsDefault) {
  EXPECT_EQ(local_id_, kLocalDevice);
  EXPECT_EQ(router_.DeviceFor(42), kLocalDevice);
  EXPECT_EQ(router_.device_count(), 2u);
}

TEST_F(StorageRouterTest, UnassignedFilesReadFromLocal) {
  router_.Read(7, 0, kPageSize, [] {});
  sim_.Run();
  EXPECT_EQ(local_.stats().read_requests, 1u);
  EXPECT_EQ(remote_.stats().read_requests, 0u);
}

TEST_F(StorageRouterTest, AssignedFilesReadFromTheirDevice) {
  router_.AssignFile(7, remote_id_);
  EXPECT_EQ(router_.DeviceFor(7), remote_id_);
  router_.Read(7, 0, kPageSize, [] {});
  router_.Read(8, 0, kPageSize, [] {});  // unassigned -> local
  sim_.Run();
  EXPECT_EQ(remote_.stats().read_requests, 1u);
  EXPECT_EQ(local_.stats().read_requests, 1u);
}

TEST_F(StorageRouterTest, RemoteReadsAreSlower) {
  SimTime local_done;
  SimTime remote_done;
  router_.AssignFile(2, remote_id_);
  router_.Read(1, 0, kPageSize, [&] { local_done = sim_.now(); });
  router_.Read(2, 0, kPageSize, [&] { remote_done = sim_.now(); });
  sim_.Run();
  EXPECT_LT(local_done, remote_done);
}

TEST_F(StorageRouterTest, DeviceAccessor) {
  EXPECT_EQ(router_.device(local_id_), &local_);
  EXPECT_EQ(router_.device(remote_id_), &remote_);
}

TEST_F(StorageRouterTest, ReassignmentMoves) {
  router_.AssignFile(5, remote_id_);
  router_.AssignFile(5, local_id_);
  EXPECT_EQ(router_.DeviceFor(5), local_id_);
}

TEST(StorageRouterDeathTest, InvalidUsageAborts) {
  StorageRouter router;
  EXPECT_DEATH(router.Read(1, 0, kPageSize, [] {}), "FAASNAP_CHECK");
  Simulation sim;
  BlockDevice disk(&sim, TestDiskProfile());
  router.AddDevice(&disk);
  EXPECT_DEATH(router.AssignFile(1, 5), "FAASNAP_CHECK");
  EXPECT_DEATH(router.AssignFile(kInvalidFileId, 0), "FAASNAP_CHECK");
}

}  // namespace
}  // namespace faasnap

// End-to-end integration tests: record a snapshot, invoke under every policy, and
// assert the paper's qualitative results hold.

#include "src/runtime/platform.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;  // deterministic for assertions
  config.disk = disk;
  return config;
}

TraceGenerator Generator(const std::string& name) {
  Result<FunctionSpec> spec = FindFunction(name);
  FAASNAP_CHECK(spec.ok());
  return TraceGenerator(*spec, GuestLayout::Default2GiB());
}

TEST(PlatformRecord, ProducesAllArtifacts) {
  Platform platform(TestConfig());
  TraceGenerator gen = Generator("json");
  FunctionSnapshot snap = platform.Record(gen, MakeInputA(gen.spec()));

  EXPECT_EQ(snap.function, "json");
  EXPECT_EQ(snap.guest_pages.value(), 524288u);
  EXPECT_GT(snap.memory_vanilla.nonzero.page_count(), 0u);
  EXPECT_GT(snap.reap_ws.size_pages().value(), 0u);
  EXPECT_GT(snap.ws_groups.groups.size(), 1u);
  EXPECT_GT(snap.loading_set.total_pages.value(), 0u);
  EXPECT_GT(snap.record_touched.page_count(), 3000u);
  // Caches were dropped afterwards.
  EXPECT_EQ(platform.cache()->present_page_count(), 0u);
}

TEST(PlatformRecord, SanitizedMemoryExcludesFreedPages) {
  Platform platform(TestConfig());
  TraceGenerator gen = Generator("compression");
  WorkloadInput input = MakeInputA(gen.spec());
  FunctionSnapshot snap = platform.Record(gen, input);
  InvocationTrace trace = gen.Generate(input);

  // Freed transients: non-zero garbage in the vanilla file, zero when sanitized.
  ASSERT_FALSE(trace.freed_at_end.empty());
  const PageIndex freed = trace.freed_at_end.ranges()[0].first;
  EXPECT_FALSE(snap.memory_vanilla.IsZero(freed));
  EXPECT_TRUE(snap.memory_sanitized.IsZero(freed));
  EXPECT_GT(snap.memory_vanilla.nonzero.page_count(),
            snap.memory_sanitized.nonzero.page_count());
}

TEST(PlatformRecord, HostPageRecordingCoversMoreThanReap) {
  // Section 4.4: mincore captures readahead pages that uffd tracking misses.
  Platform platform(TestConfig());
  TraceGenerator gen = Generator("image");
  FunctionSnapshot snap = platform.Record(gen, MakeInputA(gen.spec()));
  EXPECT_GT(snap.ws_groups.AllPages().page_count(), snap.reap_ws.size_pages().value());
}

TEST(PlatformRecord, LoadingSetExcludesZeroPages) {
  Platform platform(TestConfig());
  TraceGenerator gen = Generator("mmap");
  FunctionSnapshot snap = platform.Record(gen, MakeInputA(gen.spec()));
  // The 512 MiB of freed anonymous pages are in the working set but sanitized to
  // zero, so the loading set is far smaller than the working set.
  EXPECT_LT(snap.loading_set.total_pages.value(), snap.ws_groups.total_pages().value() / 4);
}

class EndToEndTest : public ::testing::Test {
 protected:
  InvocationReport Run(const std::string& function, RestoreMode mode, bool input_b = true) {
    Platform platform(TestConfig());
    TraceGenerator gen = Generator(function);
    FunctionSnapshot snap = platform.Record(gen, MakeInputA(gen.spec()));
    const WorkloadInput input = input_b ? MakeInputB(gen.spec()) : MakeInputA(gen.spec());
    return platform.Invoke(snap, mode, gen, input);
  }
};

TEST_F(EndToEndTest, WarmIsFastestAndFaultsAnonymously) {
  InvocationReport warm = Run("json", RestoreMode::kWarm);
  InvocationReport fc = Run("json", RestoreMode::kFirecracker);
  EXPECT_LT(warm.total_time(), fc.total_time());
  EXPECT_EQ(warm.faults.count(FaultClass::kMajor), 0);
  EXPECT_EQ(warm.faults.count(FaultClass::kMinor), 0);
  EXPECT_GT(warm.faults.count(FaultClass::kAnonymous), 0);
  EXPECT_EQ(warm.disk.read_requests, 0u);
}

TEST_F(EndToEndTest, CachedAvoidsAllDiskReadsDuringInvocation) {
  InvocationReport cached = Run("json", RestoreMode::kCached);
  EXPECT_EQ(cached.faults.count(FaultClass::kMajor), 0);
  EXPECT_GT(cached.faults.count(FaultClass::kMinor), 0);
  EXPECT_EQ(cached.disk.read_requests, 0u);
}

TEST_F(EndToEndTest, FirecrackerPaysMajorFaults) {
  InvocationReport fc = Run("json", RestoreMode::kFirecracker);
  EXPECT_GT(fc.faults.count(FaultClass::kMajor), 100);
  EXPECT_GT(fc.disk.read_requests, 100u);
}

TEST_F(EndToEndTest, FaasnapBeatsFirecrackerAndReapOnVariedInput) {
  // The headline result (Figure 6): with input B in the test phase, FaaSnap
  // outperforms both Firecracker and REAP.
  InvocationReport faasnap = Run("image", RestoreMode::kFaasnap);
  InvocationReport fc = Run("image", RestoreMode::kFirecracker);
  InvocationReport reap = Run("image", RestoreMode::kReap);
  EXPECT_LT(faasnap.total_time(), fc.total_time());
  EXPECT_LT(faasnap.total_time(), reap.total_time());
}

TEST_F(EndToEndTest, FaasnapIsCloseToCached) {
  // "On average only 3.5% slower than snapshots cached in memory" — allow a
  // generous envelope per-function here; the benches report exact ratios.
  InvocationReport faasnap = Run("json", RestoreMode::kFaasnap);
  InvocationReport cached = Run("json", RestoreMode::kCached);
  EXPECT_LT(faasnap.total_time().seconds(), cached.total_time().seconds() * 1.35);
}

TEST_F(EndToEndTest, FaasnapSharplyReducesMajorFaultsVsFirecracker) {
  InvocationReport faasnap = Run("image", RestoreMode::kFaasnap);
  InvocationReport fc = Run("image", RestoreMode::kFirecracker);
  EXPECT_LT(faasnap.faults.count(FaultClass::kMajor) +
                faasnap.faults.count(FaultClass::kInFlightWait),
            fc.faults.count(FaultClass::kMajor) / 2);
}

TEST_F(EndToEndTest, MmapFunctionFaultsAnonymouslyUnderFaasnap) {
  // Per-region mapping: the guest's fresh anonymous allocation hits host
  // anonymous memory instead of triggering file-backed reads (section 4.5).
  InvocationReport faasnap = Run("mmap", RestoreMode::kFaasnap);
  EXPECT_GT(faasnap.faults.count(FaultClass::kAnonymous), 100000);
  InvocationReport fc = Run("mmap", RestoreMode::kFirecracker);
  EXPECT_LT(fc.faults.count(FaultClass::kAnonymous), 1000);
  EXPECT_LT(faasnap.total_time(), fc.total_time());
}

TEST_F(EndToEndTest, ReapBlocksOnSetupForLargeWorkingSets) {
  // Figure 1/7: REAP's setup step is long for read-list (it loads the whole
  // working set before starting); FaaSnap's setup stays small.
  InvocationReport reap = Run("read-list", RestoreMode::kReap);
  InvocationReport faasnap = Run("read-list", RestoreMode::kFaasnap);
  EXPECT_GT(reap.setup_time.seconds(), 0.2);  // ~526 MiB fetch
  EXPECT_LT(faasnap.setup_time.seconds(), 0.1);
  EXPECT_GT(reap.fetch_bytes, MiB(400));
}

TEST_F(EndToEndTest, ReapHandlesSameInputWellButDegradesOnInputB) {
  InvocationReport reap_same = Run("image", RestoreMode::kReap, /*input_b=*/false);
  InvocationReport reap_diff = Run("image", RestoreMode::kReap, /*input_b=*/true);
  EXPECT_LT(reap_same.invocation_time, reap_diff.invocation_time);
  EXPECT_GT(reap_diff.faults.count(FaultClass::kUffdHandled),
            2 * reap_same.faults.count(FaultClass::kUffdHandled));
}

TEST_F(EndToEndTest, HelloWorldWarmIsAboutFourMilliseconds) {
  InvocationReport warm = Run("hello-world", RestoreMode::kWarm);
  EXPECT_LT(warm.total_time().millis(), 25.0);
  EXPECT_GT(warm.invocation_time.millis(), 3.0);
}

TEST_F(EndToEndTest, ReportFieldsArePopulated) {
  InvocationReport r = Run("json", RestoreMode::kFaasnap);
  EXPECT_EQ(r.function, "json");
  EXPECT_EQ(r.mode, "faasnap");
  EXPECT_GT(r.setup_time, Duration::Zero());
  EXPECT_GT(r.invocation_time, Duration::Zero());
  EXPECT_FALSE(r.fetch_bytes.is_zero());
  EXPECT_GT(r.mmap_calls, 1u);
  EXPECT_FALSE(r.page_cache_pages.is_zero());
}

TEST(PlatformAsync, ParallelInvocationsShareTheCache) {
  // Two same-snapshot invocations: the second benefits from pages the first (and
  // its loader) brought into the cache.
  Platform platform(TestConfig());
  TraceGenerator gen = Generator("json");
  FunctionSnapshot snap = platform.Record(gen, MakeInputA(gen.spec()));
  std::vector<InvocationReport> reports;
  for (int i = 0; i < 2; ++i) {
    platform.InvokeAsync(snap, RestoreMode::kFirecracker,
                         gen.Generate(MakeInputB(gen.spec())),
                         [&](InvocationReport r) { reports.push_back(std::move(r)); });
  }
  platform.sim()->Run();
  ASSERT_EQ(reports.size(), 2u);
  const auto total_major = reports[0].faults.count(FaultClass::kMajor) +
                           reports[1].faults.count(FaultClass::kMajor);
  // Dedupe through the shared cache: jointly fewer majors than two cold runs.
  Platform solo(TestConfig());
  TraceGenerator gen2 = Generator("json");
  FunctionSnapshot snap2 = solo.Record(gen2, MakeInputA(gen2.spec()));
  InvocationReport single = solo.Invoke(snap2, RestoreMode::kFirecracker, gen2,
                                        MakeInputB(gen2.spec()));
  EXPECT_LT(total_major, 2 * single.faults.count(FaultClass::kMajor));
}

}  // namespace
}  // namespace faasnap

#include "src/common/status.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad page");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad page");
}

TEST(Status, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(IoError("").code(), StatusCode::kIoError);
}

TEST(Status, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailsWhenNegative(int v) {
  if (v < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status PropagationTarget(int v) {
  RETURN_IF_ERROR(FailsWhenNegative(v));
  return OkStatus();
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(PropagationTarget(1).ok());
  EXPECT_EQ(PropagationTarget(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> MakeValue(int v) {
  if (v < 0) {
    return OutOfRangeError("negative");
  }
  return v * 2;
}

Result<int> AssignTarget(int v) {
  ASSIGN_OR_RETURN(int doubled, MakeValue(v));
  return doubled + 1;
}

TEST(Macros, AssignOrReturnAssignsAndPropagates) {
  Result<int> ok = AssignTarget(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  Result<int> err = AssignTarget(-5);
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(CheckMacros, PassingCheckDoesNotAbort) {
  FAASNAP_CHECK(1 + 1 == 2);
  FAASNAP_CHECK_OK(OkStatus());
}

TEST(CheckMacrosDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(FAASNAP_CHECK(false), "FAASNAP_CHECK failed");
  EXPECT_DEATH(FAASNAP_CHECK_OK(InternalError("boom")), "boom");
}

}  // namespace
}  // namespace faasnap

#include "src/common/units.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"

namespace faasnap {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(kPageSize, 4096u);
}

TEST(Units, Helpers) {
  EXPECT_EQ(KiB(4), 4096u);
  EXPECT_EQ(MiB(2), 2u * 1024 * 1024);
  EXPECT_EQ(GiB(2), 2ull * 1024 * 1024 * 1024);
}

TEST(Units, BytesToPagesRoundsUp) {
  EXPECT_EQ(BytesToPages(0), 0u);
  EXPECT_EQ(BytesToPages(1), 1u);
  EXPECT_EQ(BytesToPages(4096), 1u);
  EXPECT_EQ(BytesToPages(4097), 2u);
  EXPECT_EQ(BytesToPages(MiB(1)), 256u);
}

TEST(Units, PagesToBytes) {
  EXPECT_EQ(PagesToBytes(256), MiB(1));
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(100), "100 B");
  EXPECT_EQ(FormatBytes(KiB(4)), "4.00 KiB");
  EXPECT_EQ(FormatBytes(MiB(12)), "12.0 MiB");
  EXPECT_EQ(FormatBytes(GiB(2)), "2.00 GiB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(FormatDuration(250), "250 ns");
  EXPECT_EQ(FormatDuration(3700), "3.70 us");
  EXPECT_EQ(FormatDuration(35700000), "35.7 ms");
  EXPECT_EQ(FormatDuration(1204000000), "1.20 s");
  EXPECT_EQ(FormatDuration(-3700), "-3.70 us");
}

TEST(SimTime, DurationConstructorsAndAccessors) {
  EXPECT_EQ(Duration::Micros(3).nanos(), 3000);
  EXPECT_EQ(Duration::Millis(2).nanos(), 2000000);
  EXPECT_EQ(Duration::Seconds(1).nanos(), 1000000000);
  EXPECT_DOUBLE_EQ(Duration::Micros(5).micros(), 5.0);
  EXPECT_DOUBLE_EQ(Duration::Millis(5).millis(), 5.0);
  EXPECT_DOUBLE_EQ(Duration::Seconds(5).seconds(), 5.0);
}

TEST(SimTime, DurationArithmetic) {
  Duration d = Duration::Micros(10) + Duration::Micros(5);
  EXPECT_EQ(d, Duration::Micros(15));
  d -= Duration::Micros(5);
  EXPECT_EQ(d, Duration::Micros(10));
  EXPECT_EQ(d * 3, Duration::Micros(30));
  EXPECT_EQ(d / 2, Duration::Micros(5));
  EXPECT_LT(Duration::Micros(1), Duration::Micros(2));
}

TEST(SimTime, TimePointArithmetic) {
  SimTime t = SimTime::FromNanos(1000);
  SimTime u = t + Duration::Micros(1);
  EXPECT_EQ(u.nanos(), 2000);
  EXPECT_EQ(u - t, Duration::Nanos(1000));
  EXPECT_LT(t, u);
  EXPECT_EQ(Max(t, u), u);
}

}  // namespace
}  // namespace faasnap

#include "src/common/units.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"

namespace faasnap {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(kPageSize, 4096u);
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(KiB(4).value(), 4096u);
  EXPECT_EQ(MiB(2).value(), 2u * 1024 * 1024);
  EXPECT_EQ(GiB(2).value(), 2ull * 1024 * 1024 * 1024);
}

TEST(Units, BytesToPagesRoundsUp) {
  EXPECT_EQ(BytesToPages(uint64_t{0}), 0u);
  EXPECT_EQ(BytesToPages(uint64_t{1}), 1u);
  EXPECT_EQ(BytesToPages(uint64_t{4096}), 1u);
  EXPECT_EQ(BytesToPages(uint64_t{4097}), 2u);
  EXPECT_EQ(BytesToPages(MiB(1)).value(), 256u);
}

TEST(Units, PagesToBytes) {
  EXPECT_EQ(PagesToBytes(uint64_t{256}), kMiB);
  EXPECT_EQ(PagesToBytes(PageCount::FromPages(256)), MiB(1));
}

TEST(Units, ByteCountRoundTrip) {
  // Strong types round-trip exactly through their explicit escapes.
  EXPECT_EQ(ByteCount::FromBytes(12345).value(), 12345u);
  EXPECT_EQ(ByteCount::FromKiB(3), KiB(3));
  EXPECT_EQ(ByteCount::FromMiB(7), MiB(7));
  EXPECT_EQ(ByteCount::FromGiB(2), GiB(2));
  EXPECT_TRUE(ByteCount::Zero().is_zero());
  EXPECT_TRUE(ByteCount().is_zero());
  EXPECT_FALSE(KiB(1).is_zero());
}

TEST(Units, ByteCountArithmetic) {
  ByteCount b = KiB(1) + KiB(3);
  EXPECT_EQ(b, KiB(4));
  b -= KiB(1);
  EXPECT_EQ(b, KiB(3));
  EXPECT_EQ(b * 2, KiB(6));
  EXPECT_EQ(MiB(1) / KiB(1), 1024u);
  EXPECT_LT(KiB(1), KiB(2));
  EXPECT_GT(MiB(1), KiB(1));
}

TEST(Units, PageCountRoundTrip) {
  EXPECT_EQ(PageCount::FromPages(77).value(), 77u);
  EXPECT_TRUE(PageCount::Zero().is_zero());
  EXPECT_TRUE(PageCount().is_zero());
  // Pages <-> bytes conversions agree in both directions.
  EXPECT_EQ(PageCount::FromPages(256).bytes(), MiB(1));
  EXPECT_EQ(BytesToPages(PagesToBytes(PageCount::FromPages(512))),
            PageCount::FromPages(512));
}

TEST(Units, PageCountArithmetic) {
  PageCount p = PageCount::FromPages(10) + PageCount::FromPages(5);
  EXPECT_EQ(p.value(), 15u);
  p -= PageCount::FromPages(5);
  EXPECT_EQ(p.value(), 10u);
  EXPECT_EQ((p * 3).value(), 30u);
  EXPECT_EQ(PageCount::FromPages(30) / PageCount::FromPages(10), 3u);
  EXPECT_LT(PageCount::FromPages(1), PageCount::FromPages(2));
}

TEST(Units, FactoryOverflowIsAlwaysChecked) {
  // Construction-path scaling panics on overflow even in Release builds.
  EXPECT_DEATH(ByteCount::FromGiB(UINT64_MAX / 2), "FromGiB");
  EXPECT_DEATH(Duration::Seconds(INT64_MAX / 1000), "Seconds");
  EXPECT_DEATH(Duration::Millis(INT64_MIN / 1000), "Millis");
  EXPECT_DEATH(PageCount::FromPages(UINT64_MAX).bytes(), "bytes");
}

TEST(Units, OperatorOverflowCheckedInDebug) {
  // Hot-path operator checks compile away under NDEBUG; with checks on, a
  // wrapping add/sub aborts with a message naming the operation.
  if constexpr (unit_internal::kDebugChecks) {
    EXPECT_DEATH(ByteCount::FromBytes(UINT64_MAX) + ByteCount::FromBytes(1), "ByteCount");
    EXPECT_DEATH(ByteCount::Zero() - ByteCount::FromBytes(1), "ByteCount");
    EXPECT_DEATH(PageCount::Zero() - PageCount::FromPages(1), "PageCount");
    EXPECT_DEATH(Duration::Nanos(INT64_MAX) + Duration::Nanos(1), "Duration");
  } else {
    // Overflow predicates themselves stay correct either way.
    EXPECT_TRUE(unit_internal::AddOverflowsU64(UINT64_MAX, 1));
    EXPECT_TRUE(unit_internal::SubUnderflowsU64(0, 1));
    EXPECT_TRUE(unit_internal::AddOverflowsI64(INT64_MAX, 1));
    EXPECT_TRUE(unit_internal::SubOverflowsI64(INT64_MIN, 1));
    EXPECT_FALSE(unit_internal::AddOverflowsU64(1, 1));
  }
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(100), "100 B");
  EXPECT_EQ(FormatBytes(KiB(4)), "4.00 KiB");
  EXPECT_EQ(FormatBytes(MiB(12)), "12.0 MiB");
  EXPECT_EQ(FormatBytes(GiB(2)), "2.00 GiB");
  EXPECT_EQ(KiB(4).ToString(), "4.00 KiB");
  EXPECT_EQ(PageCount::FromPages(256).ToString(), "256 pages (1.00 MiB)");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(FormatDuration(250), "250 ns");
  EXPECT_EQ(FormatDuration(3700), "3.70 us");
  EXPECT_EQ(FormatDuration(35700000), "35.7 ms");
  EXPECT_EQ(FormatDuration(1204000000), "1.20 s");
  EXPECT_EQ(FormatDuration(-3700), "-3.70 us");
}

TEST(SimTime, DurationConstructorsAndAccessors) {
  EXPECT_EQ(Duration::Micros(3).nanos(), 3000);
  EXPECT_EQ(Duration::Millis(2).nanos(), 2000000);
  EXPECT_EQ(Duration::Seconds(1).nanos(), 1000000000);
  EXPECT_DOUBLE_EQ(Duration::Micros(5).micros(), 5.0);
  EXPECT_DOUBLE_EQ(Duration::Millis(5).millis(), 5.0);
  EXPECT_DOUBLE_EQ(Duration::Seconds(5).seconds(), 5.0);
}

TEST(SimTime, DurationArithmetic) {
  Duration d = Duration::Micros(10) + Duration::Micros(5);
  EXPECT_EQ(d, Duration::Micros(15));
  d -= Duration::Micros(5);
  EXPECT_EQ(d, Duration::Micros(10));
  EXPECT_EQ(d * 3, Duration::Micros(30));
  EXPECT_EQ(d / 2, Duration::Micros(5));
  EXPECT_LT(Duration::Micros(1), Duration::Micros(2));
}

TEST(SimTime, TimePointArithmetic) {
  SimTime t = SimTime::FromNanos(1000);
  SimTime u = t + Duration::Micros(1);
  EXPECT_EQ(u.nanos(), 2000);
  EXPECT_EQ(u - t, Duration::Nanos(1000));
  EXPECT_LT(t, u);
  EXPECT_EQ(Max(t, u), u);
}

}  // namespace
}  // namespace faasnap

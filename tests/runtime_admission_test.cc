#include "src/runtime/admission.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace faasnap {
namespace {

// Bare-simulation harness: the hooks record every dispatch and shed so tests
// can assert the exactly-one-outcome-per-offer contract directly.
class AdmissionControllerTest : public ::testing::Test {
 protected:
  struct Outcome {
    uint64_t id;
    InvocationOutcome outcome;
    Duration wait;
  };

  void Make(const AdmissionConfig& config) {
    AdmissionController::Hooks hooks;
    hooks.run = [this](const AdmissionRequest& request, Duration wait) {
      ran_.push_back(Outcome{request.id, InvocationOutcome::kOk, wait});
      running_.push_back(request);
    };
    hooks.shed = [this](const AdmissionRequest& request, InvocationOutcome outcome,
                        Duration wait) {
      shed_.push_back(Outcome{request.id, outcome, wait});
    };
    hooks.pinned_bytes = [this] { return ByteCount::FromBytes(pinned_); };
    hooks.make_room = [this](ByteCount bytes) {
      make_room_calls_.push_back(bytes.value());
      pinned_ -= std::min(pinned_, reclaimable_);
      reclaimable_ = 0;
    };
    controller_ = std::make_unique<AdmissionController>(&sim_, config, std::move(hooks));
  }

  AdmissionRequest Req(uint64_t id, size_t function_index = 0, uint64_t bytes = 0) {
    AdmissionRequest request;
    request.id = id;
    request.function_index = function_index;
    request.predicted_bytes = ByteCount::FromBytes(bytes);
    request.arrival = sim_.now();
    return request;
  }

  // Completes the oldest running request.
  void CompleteOne() {
    ASSERT_FALSE(running_.empty());
    const AdmissionRequest done = running_.front();
    running_.erase(running_.begin());
    controller_->OnComplete(done);
  }

  Simulation sim_;
  std::unique_ptr<AdmissionController> controller_;
  std::vector<Outcome> ran_;
  std::vector<AdmissionRequest> running_;
  std::vector<Outcome> shed_;
  std::vector<uint64_t> make_room_calls_;
  uint64_t pinned_ = 0;
  uint64_t reclaimable_ = 0;  // bytes make_room may actually free
};

TEST_F(AdmissionControllerTest, ConcurrencyCapDispatchesFifo) {
  AdmissionConfig config;
  config.max_concurrency = 2;
  config.queue_capacity = 8;
  config.queue_deadline = Duration::Zero();  // no deadlines in this test
  Make(config);
  for (uint64_t id = 0; id < 5; ++id) {
    controller_->Offer(Req(id));
  }
  ASSERT_EQ(ran_.size(), 2u);  // the cap holds
  EXPECT_EQ(controller_->queue_depth(), 3u);
  CompleteOne();
  CompleteOne();
  ASSERT_EQ(ran_.size(), 4u);
  CompleteOne();
  ASSERT_EQ(ran_.size(), 5u);
  // FIFO: dispatch order is offer order.
  for (uint64_t id = 0; id < 5; ++id) {
    EXPECT_EQ(ran_[id].id, id);
  }
  EXPECT_TRUE(shed_.empty());
  EXPECT_EQ(controller_->stats().offered, 5);
  EXPECT_EQ(controller_->stats().admitted, 5);
  EXPECT_EQ(controller_->stats().queued, 0);  // no virtual time passed
  EXPECT_EQ(controller_->stats().max_in_flight, 2);
}

TEST_F(AdmissionControllerTest, OverflowShedsQueueFullSynchronously) {
  AdmissionConfig config;
  config.max_concurrency = 1;
  config.queue_capacity = 2;
  Make(config);
  for (uint64_t id = 0; id < 5; ++id) {
    controller_->Offer(Req(id));
  }
  EXPECT_EQ(ran_.size(), 1u);
  EXPECT_EQ(controller_->queue_depth(), 2u);
  ASSERT_EQ(shed_.size(), 2u);  // ids 3 and 4 found the queue full
  for (const Outcome& outcome : shed_) {
    EXPECT_EQ(outcome.outcome, InvocationOutcome::kShedQueueFull);
    EXPECT_EQ(outcome.wait, Duration::Zero());
  }
  EXPECT_EQ(shed_[0].id, 3u);
  EXPECT_EQ(shed_[1].id, 4u);
  EXPECT_EQ(controller_->stats().shed_queue_full, 2);
}

TEST_F(AdmissionControllerTest, QueuedWaiterShedsAtItsDeadline) {
  AdmissionConfig config;
  config.max_concurrency = 1;
  config.queue_capacity = 4;
  config.queue_deadline = Duration::Millis(10);
  Make(config);
  controller_->Offer(Req(0));
  controller_->Offer(Req(1));  // queued behind the runner
  sim_.Run();                  // nothing completes: the deadline fires
  ASSERT_EQ(shed_.size(), 1u);
  EXPECT_EQ(shed_[0].id, 1u);
  EXPECT_EQ(shed_[0].outcome, InvocationOutcome::kShedDeadline);
  EXPECT_EQ(shed_[0].wait, Duration::Millis(10));
  EXPECT_EQ(controller_->stats().shed_deadline, 1);
  EXPECT_EQ(controller_->queue_depth(), 0u);
}

TEST_F(AdmissionControllerTest, DispatchBeforeDeadlineLeavesStaleEventHarmless) {
  AdmissionConfig config;
  config.max_concurrency = 1;
  config.queue_capacity = 4;
  config.queue_deadline = Duration::Millis(10);
  Make(config);
  controller_->Offer(Req(0));
  controller_->Offer(Req(1));
  CompleteOne();  // id 1 dispatches well before its deadline
  ASSERT_EQ(ran_.size(), 2u);
  sim_.Run();  // the stale deadline event lands and ignores itself
  EXPECT_TRUE(shed_.empty());
  EXPECT_EQ(controller_->stats().admitted, 2);
}

TEST_F(AdmissionControllerTest, FairnessCapDefersWithoutShedding) {
  AdmissionConfig config;
  config.max_concurrency = 2;
  config.queue_capacity = 8;
  config.fairness_share = 0.5;  // each function may hold 1 of the 2 slots
  Make(config);
  controller_->Offer(Req(0, /*function_index=*/0));
  controller_->Offer(Req(1, /*function_index=*/0));  // capped: waits
  ASSERT_EQ(ran_.size(), 1u);
  EXPECT_EQ(controller_->queue_depth(), 1u);
  EXPECT_GT(controller_->stats().fairness_deferrals, 0);
  // Another function is not head-blocked by the capped waiter.
  controller_->Offer(Req(2, /*function_index=*/1));
  ASSERT_EQ(ran_.size(), 2u);
  EXPECT_EQ(ran_[1].id, 2u);
  // Releasing function 0's slot admits its waiter.
  CompleteOne();
  ASSERT_EQ(ran_.size(), 3u);
  EXPECT_EQ(ran_[2].id, 1u);
  EXPECT_TRUE(shed_.empty());
}

TEST_F(AdmissionControllerTest, MemoryAdmissionEvictsIdlePoolBeforeBlocking) {
  AdmissionConfig config;
  config.max_concurrency = 4;
  config.queue_capacity = 8;
  config.memory_budget_bytes = ByteCount::FromBytes(100);
  Make(config);
  pinned_ = 40;       // idle warm pool
  reclaimable_ = 40;  // ... all of it evictable on request
  controller_->Offer(Req(0, 0, /*bytes=*/50));  // 50 + 40 pinned fits
  ASSERT_EQ(ran_.size(), 1u);
  EXPECT_TRUE(make_room_calls_.empty());
  // 50 + 50 + 40 pinned would burst the budget: the controller asks the owner
  // to evict the idle pool, which frees exactly enough.
  controller_->Offer(Req(1, 0, /*bytes=*/50));
  ASSERT_EQ(ran_.size(), 2u);
  ASSERT_EQ(make_room_calls_.size(), 1u);
  EXPECT_EQ(make_room_calls_[0], 40u);
  EXPECT_EQ(controller_->committed_bytes().value(), 100u);
  // Nothing left to evict: the next arrival waits for a completion.
  controller_->Offer(Req(2, 0, /*bytes=*/50));
  EXPECT_EQ(ran_.size(), 2u);
  EXPECT_EQ(controller_->queue_depth(), 1u);
  CompleteOne();
  ASSERT_EQ(ran_.size(), 3u);
  EXPECT_TRUE(shed_.empty());
}

TEST_F(AdmissionControllerTest, BudgetScaleSqueezesAdmission) {
  AdmissionConfig config;
  config.max_concurrency = 4;
  config.queue_capacity = 8;
  config.memory_budget_bytes = ByteCount::FromBytes(100);
  Make(config);
  controller_->set_budget_scale(0.5);  // chaos squeeze: effective budget 50
  controller_->Offer(Req(0, 0, /*bytes=*/40));
  controller_->Offer(Req(1, 0, /*bytes=*/40));  // 80 > 50: blocked
  EXPECT_EQ(ran_.size(), 1u);
  EXPECT_EQ(controller_->queue_depth(), 1u);
  EXPECT_DOUBLE_EQ(controller_->memory_utilization(), 40.0 / 50.0);
  controller_->set_budget_scale(1.0);  // squeeze window ends
  CompleteOne();
  ASSERT_EQ(ran_.size(), 2u);
  EXPECT_TRUE(shed_.empty());
}

TEST_F(AdmissionControllerTest, EveryOfferResolvesExactlyOnce) {
  AdmissionConfig config;
  config.max_concurrency = 2;
  config.queue_capacity = 2;
  config.queue_deadline = Duration::Millis(5);
  Make(config);
  for (uint64_t id = 0; id < 8; ++id) {
    controller_->Offer(Req(id));
  }
  sim_.Run();  // queued waiters expire
  const AdmissionController::Stats& stats = controller_->stats();
  EXPECT_EQ(stats.offered, 8);
  EXPECT_EQ(stats.offered, stats.admitted + stats.shed_queue_full + stats.shed_deadline);
  EXPECT_EQ(ran_.size() + shed_.size(), 8u);
  // No id appears twice across the two outcome streams.
  std::vector<bool> seen(8, false);
  for (const Outcome& outcome : ran_) {
    EXPECT_FALSE(seen[outcome.id]);
    seen[outcome.id] = true;
  }
  for (const Outcome& outcome : shed_) {
    EXPECT_FALSE(seen[outcome.id]);
    seen[outcome.id] = true;
  }
}

TEST(PressureLadderTest, HysteresisKeepsLevelInsideTheBand) {
  PressureLadder ladder(PressureLadderConfig{});
  EXPECT_EQ(ladder.Update(0.72, 0), 1);  // crosses enter[0] = 0.70
  EXPECT_EQ(ladder.Update(0.60, 0), 1);  // inside the band: holds
  EXPECT_EQ(ladder.Update(0.69, 0), 1);  // below enter but above exit: holds
  EXPECT_EQ(ladder.Update(0.54, 0), 0);  // below exit[0] = 0.55: recovers
  EXPECT_EQ(ladder.transitions(), 2);
  EXPECT_EQ(ladder.max_level(), 1);
}

TEST(PressureLadderTest, SpikesClimbAndUnwindMultipleRungs) {
  PressureLadder ladder(PressureLadderConfig{});
  EXPECT_EQ(ladder.Update(0.96, 0), 3);  // one spike climbs every rung
  EXPECT_TRUE(ladder.demote_restore_mode());
  EXPECT_DOUBLE_EQ(ladder.readahead_scale(), 0.5);
  EXPECT_EQ(ladder.loader_depth_cap(), 2);
  EXPECT_DOUBLE_EQ(ladder.keep_warm_scale(), 0.25);
  EXPECT_EQ(ladder.Update(0.80, 0), 2);  // below exit[2] = 0.88, above exit[1]
  EXPECT_TRUE(ladder.demote_restore_mode());
  EXPECT_DOUBLE_EQ(ladder.keep_warm_scale(), 1.0);
  EXPECT_EQ(ladder.Update(0.20, 0), 0);
  EXPECT_FALSE(ladder.demote_restore_mode());
  EXPECT_DOUBLE_EQ(ladder.readahead_scale(), 1.0);
  EXPECT_EQ(ladder.loader_depth_cap(), 0);
  EXPECT_EQ(ladder.max_level(), 3);
  EXPECT_EQ(ladder.transitions(), 3);
}

TEST(PressureLadderTest, DiskDemandBacklogAloneRaisesPressure) {
  PressureLadderConfig config;
  config.demand_pressure_full = 16;
  PressureLadder ladder(config);
  // No memory pressure at all: the demand backlog carries the signal.
  EXPECT_EQ(ladder.Update(0.0, 16), 3);
  EXPECT_EQ(ladder.Update(0.0, 12), 2);  // 0.75: below exit[2], at exit[1]
  EXPECT_EQ(ladder.Update(0.0, 0), 0);
}

}  // namespace
}  // namespace faasnap

// The sharded cluster's determinism contract: results are bit-identical
// regardless of worker-thread count. Worker threads only change which shard's
// wall clock advances first inside a parallel region; every shard's event
// order, and every routing decision (barrier-published views only), is a pure
// function of the seed.

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/cluster.h"
#include "src/cluster/cluster_json.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestPlatform() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

ClusterConfig BaseConfig(int worker_threads) {
  ClusterConfig config;
  config.hosts = 4;
  config.worker_threads = worker_threads;
  config.sync_quantum = Duration::Millis(5);
  config.platform = TestPlatform();
  config.host.warm_pool_budget_bytes = MiB(256);
  config.host.admission.max_concurrency = 4;
  config.host.admission.queue_capacity = 32;
  config.host.admission.queue_deadline = Duration::Seconds(5);
  return config;
}

// Full pipeline → deterministic summary JSON, byte-comparable.
std::string RunCluster(int worker_threads, ArrivalProcess process) {
  ClusterSimulator cluster(BaseConfig(worker_threads));
  size_t functions = 0;
  for (const char* name : {"json", "pyaes", "image", "compression"}) {
    cluster.AddFunction(*FindFunction(name));
    ++functions;
  }
  ArrivalMixConfig mix;
  mix.process = process;
  mix.mean_gap = Duration::Millis(2);
  mix.burst_mean_on = Duration::Millis(50);
  mix.burst_mean_off = Duration::Millis(200);
  mix.diurnal_period = Duration::Seconds(2);
  ClusterStats stats = cluster.Run(SampleArrivalMix(functions, 300, mix, 42));
  EXPECT_EQ(stats.arrivals, 300);
  EXPECT_GT(stats.invocations, 0);
  JsonWriter w;
  stats.AppendJson(&w);
  return w.TakeString();
}

TEST(ClusterDeterminism, ByteIdenticalAcrossWorkerThreadCounts) {
  const std::string serial = RunCluster(1, ArrivalProcess::kPoisson);
  EXPECT_EQ(serial, RunCluster(4, ArrivalProcess::kPoisson));
  EXPECT_EQ(serial, RunCluster(8, ArrivalProcess::kPoisson));
}

TEST(ClusterDeterminism, ByteIdenticalUnderBurstyArrivals) {
  // Bursts pile arrivals into single epochs — the regime where a racy router
  // or a leaky barrier would first diverge.
  const std::string serial = RunCluster(1, ArrivalProcess::kBursty);
  EXPECT_EQ(serial, RunCluster(4, ArrivalProcess::kBursty));
}

TEST(ClusterDeterminism, RepeatedRunsAreIdentical) {
  EXPECT_EQ(RunCluster(2, ArrivalProcess::kDiurnal), RunCluster(2, ArrivalProcess::kDiurnal));
}

TEST(ClusterDeterminism, ShippedConfigLoadsAndRunsDeterministically) {
  // The shipped cluster config must parse, and a run driven by it must be
  // reproducible thread-count-independently end to end.
  Result<ClusterExperiment> loaded = NotFoundError("unattempted");
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    loaded = LoadClusterExperiment(std::string(prefix) + "configs/test-cluster.json");
    if (loaded.ok()) {
      break;
    }
  }
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_GT(loaded->functions.size(), 0u);

  const auto run = [&](int worker_threads) {
    ClusterExperiment experiment = *loaded;
    experiment.cluster.platform = TestPlatform();  // jitter-free disk for the pin
    experiment.cluster.worker_threads = worker_threads;
    ClusterSimulator cluster(experiment.cluster);
    for (const FunctionSpec& spec : experiment.functions) {
      cluster.AddFunction(spec);
    }
    ClusterStats stats = cluster.Run(
        SampleArrivalMix(experiment.functions.size(), static_cast<int>(experiment.arrival_count),
                         experiment.mix, experiment.workload_seed));
    JsonWriter w;
    stats.AppendJson(&w);
    return w.TakeString();
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace faasnap

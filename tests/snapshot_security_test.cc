// Snapshot security (paper section 7.4): wiped secret pages never survive into a
// restored VM, under any restore policy.

#include <gtest/gtest.h>

#include "src/core/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig SecureConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  config.wipe_secret_pages = 4;  // the guest registered 16 KiB of PRNG state
  return config;
}

TEST(SnapshotSecurity, WipeRegionsAreZeroInBothMemoryFiles) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));

  ASSERT_EQ(snapshot.wipe_regions.page_count(), 4u);
  for (const PageRange& r : snapshot.wipe_regions.ranges()) {
    for (PageIndex p = r.first; p < r.end(); ++p) {
      EXPECT_TRUE(snapshot.memory_vanilla.IsZero(p)) << p;
      EXPECT_TRUE(snapshot.memory_sanitized.IsZero(p)) << p;
    }
  }
}

TEST(SnapshotSecurity, WipedPagesAreExcludedFromTheLoadingSet) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  EXPECT_TRUE(snapshot.loading_set.GuestPages().Intersect(snapshot.wipe_regions).empty());
}

TEST(SnapshotSecurity, RestoredVmsFaultSecretsAnonymouslyUnderFaasnap) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  // The secret pages sit at the start of the stable span, which every invocation
  // touches; under FaaSnap's per-region mapping they must resolve to anonymous
  // (zero-fill) memory, not the memory file.
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputA(*spec));
  EXPECT_GT(report.faults.count(FaultClass::kAnonymous), 0);
}

TEST(SnapshotSecurity, WipingIsOffByDefault) {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  EXPECT_TRUE(snapshot.wipe_regions.empty());
  // Without wiping the runtime's first pages are non-zero in the snapshot.
  EXPECT_FALSE(snapshot.memory_vanilla.IsZero(config.layout.stable.first));
}

TEST(SnapshotSecurity, WipingBarelyAffectsPerformance) {
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  auto run = [&](uint64_t wipe_pages) {
    PlatformConfig config = SecureConfig();
    config.wipe_secret_pages = wipe_pages;
    Platform platform(config);
    TraceGenerator generator(*spec, config.layout);
    FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
    platform.DropCaches();
    return platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputB(*spec))
        .total_time();
  };
  const Duration with_wipe = run(4);
  const Duration without_wipe = run(0);
  EXPECT_NEAR(with_wipe.millis(), without_wipe.millis(), without_wipe.millis() * 0.02);
}

}  // namespace
}  // namespace faasnap

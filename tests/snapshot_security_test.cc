// Snapshot security (paper section 7.4): wiped secret pages never survive into a
// restored VM, under any restore policy.

#include <gtest/gtest.h>

#include "src/runtime/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig SecureConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  config.wipe_secret_pages = PageCount::FromPages(4);  // the guest registered 16 KiB of PRNG state
  return config;
}

TEST(SnapshotSecurity, WipeRegionsAreZeroInBothMemoryFiles) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));

  ASSERT_EQ(snapshot.wipe_regions.page_count(), 4u);
  for (const PageRange& r : snapshot.wipe_regions.ranges()) {
    for (PageIndex p = r.first; p < r.end(); ++p) {
      EXPECT_TRUE(snapshot.memory_vanilla.IsZero(p)) << p;
      EXPECT_TRUE(snapshot.memory_sanitized.IsZero(p)) << p;
    }
  }
}

TEST(SnapshotSecurity, WipedPagesAreExcludedFromTheLoadingSet) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  EXPECT_TRUE(snapshot.loading_set.GuestPages().Intersect(snapshot.wipe_regions).empty());
}

TEST(SnapshotSecurity, RestoredVmsFaultSecretsAnonymouslyUnderFaasnap) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  // The secret pages sit at the start of the stable span, which every invocation
  // touches; under FaaSnap's per-region mapping they must resolve to anonymous
  // (zero-fill) memory, not the memory file.
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputA(*spec));
  EXPECT_GT(report.faults.count(FaultClass::kAnonymous), 0);
}

TEST(SnapshotSecurity, WipingIsOffByDefault) {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  EXPECT_TRUE(snapshot.wipe_regions.empty());
  // Without wiping the runtime's first pages are non-zero in the snapshot.
  EXPECT_FALSE(snapshot.memory_vanilla.IsZero(config.layout.stable.first));
}

TEST(SnapshotSecurity, WipingBarelyAffectsPerformance) {
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  auto run = [&](PageCount wipe_pages) {
    PlatformConfig config = SecureConfig();
    config.wipe_secret_pages = wipe_pages;
    Platform platform(config);
    TraceGenerator generator(*spec, config.layout);
    FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
    platform.DropCaches();
    return platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputB(*spec))
        .total_time();
  };
  const Duration with_wipe = run(PageCount::FromPages(4));
  const Duration without_wipe = run(PageCount::Zero());
  EXPECT_NEAR(with_wipe.millis(), without_wipe.millis(), without_wipe.millis() * 0.02);
}

// Snapshot integrity (robustness): a corrupt or truncated artifact must be
// rejected by checksum validation at load, and the platform must either degrade
// to a restore path that does not need the bad file or fail with a typed
// status — never restore from bad data.

TEST(SnapshotIntegrity, ValidateAndOpenRejectTruncatedFiles) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));

  ASSERT_TRUE(platform.store()->Validate(snapshot.loading_set.id).ok());
  platform.store()->CorruptForTesting(snapshot.loading_set.id);  // as if truncated
  Status validate = platform.store()->Validate(snapshot.loading_set.id);
  EXPECT_EQ(validate.code(), StatusCode::kIoError);
  EXPECT_NE(validate.message().find("checksum mismatch"), std::string::npos);

  Result<FileId> open = platform.store()->Open("json.lset");
  EXPECT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kIoError);
}

TEST(SnapshotIntegrity, CorruptLoadingSetDegradesFaasnapToOnDemandPaging) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.store()->CorruptForTesting(snapshot.loading_set.id);
  platform.DropCaches();

  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputB(*spec));
  EXPECT_EQ(report.outcome, InvocationOutcome::kDegraded);
  EXPECT_EQ(report.mode, "faasnap");  // reports carry the *requested* mode
  EXPECT_EQ(report.degraded_mode, "firecracker");
  EXPECT_EQ(report.OutcomeTag(), "degraded(firecracker)");
  EXPECT_EQ(report.status.code(), StatusCode::kIoError);
  // The invocation still completed correctly, on demand-paged vanilla memory.
  EXPECT_GT(report.invocation_time, Duration::Zero());
  EXPECT_GT(report.faults.major_faults(), 0);
}

TEST(SnapshotIntegrity, CorruptWorkingSetDegradesReapToOnDemandPaging) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.store()->CorruptForTesting(snapshot.reap_ws.id);
  platform.DropCaches();

  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kReap, generator, MakeInputB(*spec));
  EXPECT_EQ(report.outcome, InvocationOutcome::kDegraded);
  EXPECT_EQ(report.degraded_mode, "firecracker");
  EXPECT_FALSE(report.status.ok());
  EXPECT_GT(report.invocation_time, Duration::Zero());
}

TEST(SnapshotIntegrity, CorruptSanitizedMemoryDegradesFaasnapToVanilla) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.store()->CorruptForTesting(snapshot.memory_sanitized.id);
  platform.DropCaches();

  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputB(*spec));
  EXPECT_EQ(report.outcome, InvocationOutcome::kDegraded);
  EXPECT_EQ(report.degraded_mode, "firecracker");
  EXPECT_GT(report.invocation_time, Duration::Zero());
}

TEST(SnapshotIntegrity, CorruptVanillaMemoryFailsWithTypedStatus) {
  Platform platform(SecureConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.store()->CorruptForTesting(snapshot.memory_vanilla.id);
  platform.DropCaches();

  // Every fallback ultimately needs the vanilla memory file; with it corrupt
  // there is nothing to degrade to and the invocation fails — typed, not a
  // crash, and the function never runs.
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFirecracker, generator, MakeInputB(*spec));
  EXPECT_EQ(report.outcome, InvocationOutcome::kFailed);
  EXPECT_EQ(report.status.code(), StatusCode::kIoError);
  EXPECT_EQ(report.OutcomeTag(), "failed(IO_ERROR)");
  EXPECT_EQ(report.invocation_time, Duration::Zero());
}

}  // namespace
}  // namespace faasnap

// Fault-path lever tests: batched uffd installs, huge-page regions, and
// in-flight fault coalescing. Each lever is exercised in isolation against
// exact cost pins, and the exactness gate (all levers off == pre-lever
// behavior) is checked both at the engine and the REAP-policy level.

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/core/loading_set_builder.h"
#include "src/mem/fault_engine.h"
#include "src/restore/restore_policy.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

constexpr FileId kMemFile = 1;
constexpr uint64_t kSpacePages = 4096;
constexpr PageCount kFilePages = PageCount::FromPages(4096);
constexpr uint64_t kHugePages = 512;  // 2 MiB of 4 KiB pages

class FaultPathTest : public ::testing::Test {
 protected:
  FaultPathTest() : disk_(&sim_, TestDiskProfile()), space_(PageCount::FromPages(kSpacePages)) {
    router_.AddDevice(&disk_);
  }

  // (Re)builds the engine with the given levers; exact-cost assertions need
  // cost dispersion off.
  void MakeEngine(const FaultPathConfig& fault_path) {
    HostCostModel costs;
    costs.cost_dispersion = false;
    engine_ = std::make_unique<FaultEngine>(&sim_, &cache_, &router_, &space_, &readahead_,
                                            [](FileId) { return kFilePages; }, costs);
    engine_->set_fault_path(fault_path);
  }

  std::pair<FaultClass, Duration> AccessAndWait(PageIndex page) {
    const SimTime start = sim_.now();
    FaultClass out = FaultClass::kNoFault;
    bool sync = engine_->Access(page, [&](FaultClass c) { out = c; });
    if (!sync) {
      sim_.Run();
    }
    return {out, sim_.now() - start};
  }

  Simulation sim_;
  PageCache cache_;
  BlockDevice disk_;
  StorageRouter router_;
  AddressSpace space_;
  ReadaheadPolicy readahead_;
  std::unique_ptr<FaultEngine> engine_;
};

// Handler that reports a fixed run around the faulting page (a monitor whose
// pread buffer covered the neighbors).
class FakeBatchedHandler : public UffdHandler {
 public:
  FakeBatchedHandler(Simulation* sim, Duration delay, PageRange run)
      : sim_(sim), delay_(delay), run_(run) {}

  void HandleFault(PageIndex, std::function<void(const Status&)> done) override {
    single_faults++;
    sim_->ScheduleAfter(delay_, [done = std::move(done)] { done(OkStatus()); });
  }

  void HandleFaultBatched(PageIndex,
                          std::function<void(const Status&, PageRange)> done) override {
    batched_faults++;
    sim_->ScheduleAfter(delay_, [run = run_, done = std::move(done)] { done(OkStatus(), run); });
  }

  int single_faults = 0;
  int batched_faults = 0;

 private:
  Simulation* sim_;
  Duration delay_;
  PageRange run_;
};

TEST_F(FaultPathTest, BatchedUffdFaultInstallsRunWithMarginalPerPageCost) {
  MakeEngine({.batched_uffd_install = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  const Duration delay = Duration::Micros(10);
  FakeBatchedHandler handler(&sim_, delay, PageRange{30, 8});
  PageRangeSet region;
  region.Add(0, kSpacePages);
  engine_->RegisterUffd(region, &handler);

  auto [cls, elapsed] = AccessAndWait(33);
  EXPECT_EQ(cls, FaultClass::kUffdHandled);
  EXPECT_EQ(handler.batched_faults, 1);
  EXPECT_EQ(handler.single_faults, 0);
  // One round trip for the batch; neighbors only cost the marginal copy.
  EXPECT_EQ(elapsed, delay + engine_->costs().uffd_round_trip +
                         engine_->costs().uffd_batch_per_page * 7 +
                         engine_->uffd_vcpu_block_extra());
  // The faulting page is fully present; untouched neighbors are soft-present
  // (their first guest touch is a cheap preinstalled fault).
  EXPECT_EQ(space_.install_state(33), PageInstallState::kPresent);
  for (PageIndex p = 30; p < 38; ++p) {
    if (p == 33) continue;
    EXPECT_EQ(space_.install_state(p), PageInstallState::kSoftPresent) << p;
  }
  EXPECT_EQ(space_.install_state(38), PageInstallState::kNotPresent);
  EXPECT_EQ(engine_->metrics().batch_installs, 1u);
  EXPECT_EQ(engine_->metrics().batch_installed_pages.value(), 8u);
  // UFFDIO_COPY copies the whole run into anonymous memory.
  EXPECT_EQ(space_.anon_copied_pages().value(), 8u);
  auto [cls2, elapsed2] = AccessAndWait(34);
  EXPECT_EQ(cls2, FaultClass::kUffdPreinstalled);
  EXPECT_EQ(elapsed2, engine_->costs().uffd_preinstalled_fault);
}

TEST_F(FaultPathTest, BatchedRunIsTrimmedToUninstalledPages) {
  MakeEngine({.batched_uffd_install = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  // Page 35 is already present; the batch must not reinstall (or re-charge) it.
  space_.SetInstallState(35, PageInstallState::kPresent);
  FakeBatchedHandler handler(&sim_, Duration::Micros(10), PageRange{30, 8});
  PageRangeSet region;
  region.Add(0, kSpacePages);
  engine_->RegisterUffd(region, &handler);

  auto [cls, elapsed] = AccessAndWait(33);
  EXPECT_EQ(cls, FaultClass::kUffdHandled);
  // Trimmed run is [30, 35): 5 pages, 4 marginal copies.
  EXPECT_EQ(elapsed, Duration::Micros(10) + engine_->costs().uffd_round_trip +
                         engine_->costs().uffd_batch_per_page * 4 +
                         engine_->uffd_vcpu_block_extra());
  EXPECT_EQ(engine_->metrics().batch_installed_pages.value(), 5u);
  EXPECT_EQ(space_.install_state(34), PageInstallState::kSoftPresent);
  EXPECT_EQ(space_.install_state(36), PageInstallState::kNotPresent);
  EXPECT_EQ(space_.install_state(37), PageInstallState::kNotPresent);
}

TEST_F(FaultPathTest, HandlerWithoutBatchSupportFallsBackToSinglePage) {
  MakeEngine({.batched_uffd_install = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  // Only overrides HandleFault; the default HandleFaultBatched forwards to it.
  class SingleOnlyHandler : public UffdHandler {
   public:
    explicit SingleOnlyHandler(Simulation* sim) : sim_(sim) {}
    void HandleFault(PageIndex, std::function<void(const Status&)> done) override {
      sim_->ScheduleAfter(Duration::Micros(10), [done = std::move(done)] { done(OkStatus()); });
    }
    Simulation* sim_;
  } handler(&sim_);
  PageRangeSet region;
  region.Add(0, kSpacePages);
  engine_->RegisterUffd(region, &handler);

  auto [cls, elapsed] = AccessAndWait(40);
  EXPECT_EQ(cls, FaultClass::kUffdHandled);
  EXPECT_EQ(elapsed, Duration::Micros(10) + engine_->costs().uffd_round_trip +
                         engine_->uffd_vcpu_block_extra());
  EXPECT_EQ(engine_->metrics().batch_installs, 1u);
  EXPECT_EQ(engine_->metrics().batch_installed_pages.value(), 1u);
  EXPECT_EQ(space_.install_state(41), PageInstallState::kNotPresent);
}

TEST_F(FaultPathTest, HugeFaultInstallsWholeAnonymousRegion) {
  MakeEngine({.huge_pages = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kAnonymous});
  space_.ConfigureHugeRegions(PageCount::FromPages(kHugePages));
  space_.MarkHugeEligible(512);

  auto [cls, elapsed] = AccessAndWait(600);
  EXPECT_EQ(cls, FaultClass::kHugeInstall);
  EXPECT_EQ(elapsed, engine_->costs().huge_fault);
  EXPECT_TRUE(space_.AllInState(PageRange{512, kHugePages}, PageInstallState::kPresent));
  EXPECT_EQ(space_.huge_region_state(600), HugeRegionState::kInstalled);
  EXPECT_EQ(engine_->metrics().huge_installs, 1u);
  EXPECT_EQ(engine_->metrics().huge_installed_pages.value(), kHugePages);
  EXPECT_EQ(engine_->metrics().count(FaultClass::kHugeInstall), 1);
  // Every other page of the region is now fault-free.
  EXPECT_TRUE(engine_->Access(512, [](FaultClass) {}));
  EXPECT_TRUE(engine_->Access(1023, [](FaultClass) {}));
  // Pages outside the region still fault normally.
  auto [cls2, elapsed2] = AccessAndWait(1024);
  EXPECT_EQ(cls2, FaultClass::kAnonymous);
  EXPECT_EQ(elapsed2, engine_->costs().anonymous_fault);
}

TEST_F(FaultPathTest, FullyCachedFileRegionInstallsHuge) {
  MakeEngine({.huge_pages = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  space_.ConfigureHugeRegions(PageCount::FromPages(kHugePages));
  space_.MarkHugeEligible(512);
  cache_.Insert(kMemFile, PageRange{512, kHugePages});

  auto [cls, elapsed] = AccessAndWait(700);
  EXPECT_EQ(cls, FaultClass::kHugeInstall);
  EXPECT_EQ(elapsed, engine_->costs().huge_fault);
  EXPECT_TRUE(space_.AllInState(PageRange{512, kHugePages}, PageInstallState::kPresent));
}

TEST_F(FaultPathTest, PartiallyCachedFileRegionSplitsOnceThenFaultsNormally) {
  MakeEngine({.huge_pages = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  space_.ConfigureHugeRegions(PageCount::FromPages(kHugePages));
  space_.MarkHugeEligible(512);
  // Only 100 of 512 backing pages are resident: not huge-mappable.
  cache_.Insert(kMemFile, PageRange{512, 100});

  auto [cls, elapsed] = AccessAndWait(520);
  EXPECT_EQ(cls, FaultClass::kMinor);
  // The triggering fault pays the split once on top of its normal cost.
  EXPECT_EQ(elapsed, engine_->costs().minor_fault + engine_->costs().huge_split);
  EXPECT_EQ(space_.huge_region_state(520), HugeRegionState::kSplit);
  EXPECT_EQ(engine_->metrics().huge_splits, 1u);
  EXPECT_EQ(engine_->metrics().huge_installs, 0u);
  // The region stays split: later faults in it take the plain 4 KiB path.
  auto [cls2, elapsed2] = AccessAndWait(521);
  EXPECT_EQ(cls2, FaultClass::kMinor);
  EXPECT_EQ(elapsed2, engine_->costs().minor_fault_sequential);
  EXPECT_EQ(engine_->metrics().huge_splits, 1u);
}

TEST_F(FaultPathTest, EligibleRegionSpanningMappingsSplits) {
  MakeEngine({.huge_pages = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kAnonymous});
  // A file region punched into the middle of the huge window breaks the
  // single-mapping requirement.
  space_.Map({.guest = {600, 100}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 600});
  space_.ConfigureHugeRegions(PageCount::FromPages(kHugePages));
  space_.MarkHugeEligible(512);

  auto [cls, elapsed] = AccessAndWait(513);
  EXPECT_EQ(cls, FaultClass::kAnonymous);
  EXPECT_EQ(elapsed, engine_->costs().anonymous_fault + engine_->costs().huge_split);
  EXPECT_EQ(space_.huge_region_state(513), HugeRegionState::kSplit);
}

TEST_F(FaultPathTest, CoalescedFaultRetiresWholeInFlightRun) {
  MakeEngine({.fault_coalescing = true});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  // A loader-style read for [100, 200) is in flight.
  auto handle = cache_.BeginRead(kMemFile, PageRange{100, 100});
  disk_.Read(100 * kPageSize, 100 * kPageSize, [&] { cache_.CompleteRead(handle); });

  auto [cls, elapsed] = AccessAndWait(150);
  EXPECT_EQ(cls, FaultClass::kInFlightWait);
  EXPECT_GT(elapsed, Duration::Zero());
  // The whole run covered by the IO retired in one fault.
  EXPECT_TRUE(space_.AllInState(PageRange{100, 100}, PageInstallState::kPresent));
  EXPECT_EQ(space_.install_state(99), PageInstallState::kNotPresent);
  EXPECT_EQ(space_.install_state(200), PageInstallState::kNotPresent);
  EXPECT_EQ(engine_->metrics().coalesced_pages.value(), 99u);
  EXPECT_EQ(engine_->metrics().count(FaultClass::kInFlightWait), 1);
  // No extra disk traffic, and neighbors are now free.
  EXPECT_EQ(engine_->metrics().fault_disk_requests, 0u);
  EXPECT_EQ(disk_.stats().read_requests, 1u);
  EXPECT_TRUE(engine_->Access(100, [](FaultClass) {}));
  EXPECT_TRUE(engine_->Access(199, [](FaultClass) {}));
}

TEST_F(FaultPathTest, CoalescingOffRetiresOnlyTheFaultingPage) {
  MakeEngine({});
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  auto handle = cache_.BeginRead(kMemFile, PageRange{100, 100});
  disk_.Read(100 * kPageSize, 100 * kPageSize, [&] { cache_.CompleteRead(handle); });

  auto [cls, elapsed] = AccessAndWait(150);
  EXPECT_EQ(cls, FaultClass::kInFlightWait);
  EXPECT_EQ(space_.install_state(150), PageInstallState::kPresent);
  EXPECT_EQ(space_.install_state(151), PageInstallState::kNotPresent);
  EXPECT_EQ(engine_->metrics().coalesced_pages.value(), 0u);
}

TEST_F(FaultPathTest, DisabledLeversMatchEngineWithoutFaultPathConfig) {
  // Exactness gate at the engine level: an engine with an all-off
  // FaultPathConfig must cost exactly what one that never saw the config does.
  HostCostModel costs;
  costs.cost_dispersion = false;
  AddressSpace baseline_space(PageCount::FromPages(kSpacePages));
  FaultEngine baseline(&sim_, &cache_, &router_, &baseline_space, &readahead_,
                       [](FileId) { return kFilePages; }, costs);
  baseline_space.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kAnonymous});

  MakeEngine({});
  EXPECT_FALSE(engine_->fault_path().any_enabled());
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kAnonymous});

  const SimTime t0 = sim_.now();
  FaultClass cls = FaultClass::kNoFault;
  baseline.Access(7, [&](FaultClass c) { cls = c; });
  sim_.Run();
  const Duration baseline_elapsed = sim_.now() - t0;

  auto [cls2, elapsed] = AccessAndWait(7);
  EXPECT_EQ(cls, cls2);
  EXPECT_EQ(elapsed, baseline_elapsed);
  EXPECT_EQ(elapsed, engine_->costs().anonymous_fault);
}

TEST(FaultPathConfigTest, AnyEnabledReflectsEachLever) {
  EXPECT_FALSE(FaultPathConfig{}.any_enabled());
  EXPECT_TRUE(FaultPathConfig{.batched_uffd_install = true}.any_enabled());
  EXPECT_TRUE(FaultPathConfig{.huge_pages = true}.any_enabled());
  EXPECT_TRUE(FaultPathConfig{.fault_coalescing = true}.any_enabled());
}

// --- REAP policy-level property: batched install covers exactly the same
// pages as per-page install (only the cost model changes). ---

// A snapshot whose working set has both long runs and isolated pages, so the
// run decomposition is non-trivial: [100,150), [300,350), {500}, {502}, {504}.
FunctionSnapshot FragmentedSnapshot(SnapshotStore* store) {
  FunctionSnapshot snap;
  snap.function = "fragmented";
  snap.guest_pages = PageCount::FromPages(1000);

  snap.memory_vanilla.total_pages = PageCount::FromPages(1000);
  snap.memory_vanilla.nonzero.Add(0, 200);
  snap.memory_vanilla.nonzero.Add(300, 100);
  snap.memory_vanilla.nonzero.Add(500, 5);
  snap.memory_vanilla.id = store->Register("frag.mem", PageCount::FromPages(1000));

  snap.memory_sanitized.total_pages = PageCount::FromPages(1000);
  snap.memory_sanitized.nonzero.Add(0, 200);
  snap.memory_sanitized.id = store->Register("frag.smem", PageCount::FromPages(1000));

  PageRangeSet g0;
  g0.Add(100, 50);
  PageRangeSet g1;
  g1.Add(300, 50);
  snap.ws_groups.groups = {g0, g1};

  snap.reap_ws.guest_pages.clear();
  for (PageIndex p = 100; p < 150; ++p) snap.reap_ws.guest_pages.push_back(p);
  for (PageIndex p = 300; p < 350; ++p) snap.reap_ws.guest_pages.push_back(p);
  for (PageIndex p : {500u, 502u, 504u}) snap.reap_ws.guest_pages.push_back(p);
  snap.reap_ws.id = store->Register("frag.reapws", snap.reap_ws.size_pages());

  snap.loading_set = BuildLoadingSet(snap.ws_groups, snap.memory_sanitized);
  snap.loading_set.id = store->Register("frag.lset", snap.loading_set.total_pages);

  snap.record_touched.Add(100, 50);
  snap.record_touched.Add(300, 50);
  return snap;
}

// Full restore environment for one ReapPolicy run.
struct ReapRun {
  explicit ReapRun(bool batched)
      : disk(&sim, TestDiskProfile()), snapshot(FragmentedSnapshot(&store)),
        space(snapshot.guest_pages) {
    router.AddDevice(&disk);
    config.fault_path.batched_uffd_install = batched;
    engine = std::make_unique<FaultEngine>(&sim, &cache, &router, &space, &readahead,
                                           store.SizeFn());
    engine->set_fault_path(config.fault_path);
    env.sim = &sim;
    env.cache = &cache;
    env.storage = &router;
    env.space = &space;
    env.engine = engine.get();
    env.snapshot = &snapshot;
    env.config = &config;
    policy = RestorePolicy::Create(RestoreMode::kReap);
    bool ready = false;
    policy->SetupMemory(&env, [&] { ready = true; });
    sim.Run();
    EXPECT_TRUE(ready);
  }

  Simulation sim;
  PageCache cache;
  BlockDevice disk;
  StorageRouter router;
  SnapshotStore store;
  PlatformConfig config;
  FunctionSnapshot snapshot;
  AddressSpace space;
  ReadaheadPolicy readahead;
  std::unique_ptr<FaultEngine> engine;
  RestoreEnv env;
  std::unique_ptr<RestorePolicy> policy;
};

TEST(ReapBatchedInstall, CoversExactlyTheSamePagesAsPerPageInstall) {
  ReapRun per_page(/*batched=*/false);
  ReapRun batched(/*batched=*/true);
  for (PageIndex p = 0; p < per_page.snapshot.guest_pages.value(); ++p) {
    EXPECT_EQ(per_page.space.install_state(p), batched.space.install_state(p)) << p;
  }
  EXPECT_EQ(per_page.space.resident_pages().value(), batched.space.resident_pages().value());
  EXPECT_EQ(per_page.space.anon_copied_pages().value(), batched.space.anon_copied_pages().value());
  // Per-page leaves no batch trace; batched records one install per run.
  EXPECT_EQ(per_page.engine->metrics().batch_installs, 0u);
  EXPECT_EQ(batched.engine->metrics().batch_installs, 5u);
  EXPECT_EQ(batched.engine->metrics().batch_installed_pages.value(), 103u);
}

TEST(ReapBatchedInstall, BatchingShortensTheBlockingInstall) {
  ReapRun per_page(/*batched=*/false);
  ReapRun batched(/*batched=*/true);
  // Same device fetch; only the UFFDIO_COPY burst differs, and five ioctls
  // beat a hundred and three.
  EXPECT_LT(batched.policy->blocking_fetch_time(), per_page.policy->blocking_fetch_time());
  EXPECT_EQ(batched.policy->blocking_fetch_bytes(), per_page.policy->blocking_fetch_bytes());
}

}  // namespace
}  // namespace faasnap

#include "src/workloads/trace_generator.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace faasnap {
namespace {

GuestLayout Layout() { return GuestLayout::Default2GiB(); }

TraceGenerator MakeGenerator(const std::string& name) {
  Result<FunctionSpec> spec = FindFunction(name);
  FAASNAP_CHECK(spec.ok());
  return TraceGenerator(*spec, Layout());
}

TEST(TraceGenerator, HelloWorldTouchesOnlyStablePages) {
  TraceGenerator gen = MakeGenerator("hello-world");
  InvocationTrace trace = gen.Generate(MakeInputA(gen.spec()));
  // Coverage is approximate: always-exercised pages plus this input's code paths
  // sum to roughly the spec's stable page count.
  EXPECT_NEAR(static_cast<double>(trace.ops.size()),
              static_cast<double>(gen.spec().stable_pages.value()),
              static_cast<double>(gen.spec().stable_pages.value()) * 0.06);
  PageRangeSet touched = trace.TouchedPages();
  EXPECT_EQ(touched.page_count(), trace.ops.size());
  for (const PageRange& r : touched.ranges()) {
    EXPECT_GE(r.first, Layout().stable.first);
    EXPECT_LT(r.end(), Layout().stable.end());
  }
  EXPECT_TRUE(trace.freed_at_end.empty());
  // Compute adds up to the spec's budget.
  EXPECT_EQ(trace.TotalCompute(), Duration::Millis(4));
}

TEST(TraceGenerator, StableAccessOrderIsDeterministic) {
  TraceGenerator gen = MakeGenerator("hello-world");
  InvocationTrace t1 = gen.Generate(MakeInputA(gen.spec()));
  InvocationTrace t2 = gen.Generate(MakeInputB(gen.spec()));
  ASSERT_EQ(t1.ops.size(), t2.ops.size());
  for (size_t i = 0; i < t1.ops.size(); ++i) {
    EXPECT_EQ(t1.ops[i].page, t2.ops[i].page);
  }
}

TEST(TraceGenerator, ScatteredSegmentIsNotSequential) {
  TraceGenerator gen = MakeGenerator("hello-world");
  InvocationTrace trace = gen.Generate(MakeInputA(gen.spec()));
  int sequential_steps = 0;
  for (size_t i = 1; i < 1000; ++i) {
    if (trace.ops[i].page == trace.ops[i - 1].page + 1) {
      ++sequential_steps;
    }
  }
  EXPECT_LT(sequential_steps, 50);  // a shuffled order has almost no +1 steps
}

TEST(TraceGenerator, ReadListHasLargeSequentialSegment) {
  TraceGenerator gen = MakeGenerator("read-list");
  InvocationTrace trace = gen.Generate(MakeInputA(gen.spec()));
  // The list (the sequential segment) is read in address order at the end of the
  // stable phase; locate it by the sequential segment's first page.
  const uint64_t seq_pages = gen.sequential_stable().count;
  const size_t start = trace.ops.size() - seq_pages;
  EXPECT_EQ(trace.ops[start].page, gen.sequential_stable().first);
  for (size_t i = start + 1; i < start + 1000; ++i) {
    EXPECT_EQ(trace.ops[i].page, trace.ops[i - 1].page + 1);
  }
}

TEST(TraceGenerator, MmapWritesScratchSequentiallyAndFreesIt) {
  TraceGenerator gen = MakeGenerator("mmap");
  InvocationTrace trace = gen.Generate(MakeInputA(gen.spec()));
  const uint64_t anon = gen.spec().input_a.anon_pages.value();
  // The anon sweep is sequential writes in the scratch zone, after the stable phase.
  const TraceOp& first_anon = trace.ops[trace.ops.size() - anon];
  EXPECT_EQ(first_anon.page, Layout().scratch.first);
  EXPECT_TRUE(first_anon.is_write);
  EXPECT_EQ(trace.freed_at_end.page_count(), anon);
  EXPECT_TRUE(trace.freed_at_end.Contains(Layout().scratch.first));
}

PageRangeSet WindowPages(const TraceGenerator& gen, const InvocationTrace& trace) {
  PageRangeSet window_zone;
  window_zone.Add(gen.layout().window);
  return trace.TouchedPages().Intersect(window_zone);
}

TEST(TraceGenerator, ImageInputPagesAreContentSelected) {
  TraceGenerator gen = MakeGenerator("image");
  InvocationTrace a = gen.Generate(MakeInputA(gen.spec()));
  // Same size, different content (the image-diff scenario).
  WorkloadInput diff = MakeInputA(gen.spec());
  diff.content_seed = 0xD1FF;
  InvocationTrace b = gen.Generate(diff);

  PageRangeSet window_a = WindowPages(gen, a);
  PageRangeSet window_b = WindowPages(gen, b);
  // Counts are density-approximate: within 10% of spec.
  const double expected = static_cast<double>(gen.spec().input_a.input_pages.value());
  EXPECT_NEAR(static_cast<double>(window_a.page_count()), expected, expected * 0.1);
  EXPECT_NEAR(static_cast<double>(window_b.page_count()), expected, expected * 0.1);
  // Different contents overlap only partially (roughly density^2 of the window).
  const uint64_t overlap = window_a.Intersect(window_b).page_count();
  EXPECT_LT(overlap, window_a.page_count() * 3 / 4);
  EXPECT_GT(overlap, 0u);
}

TEST(TraceGenerator, SameSeedSelectsSamePages) {
  TraceGenerator gen = MakeGenerator("image");
  InvocationTrace t1 = gen.Generate(MakeInputA(gen.spec()));
  InvocationTrace t2 = gen.Generate(MakeInputA(gen.spec()));
  EXPECT_EQ(WindowPages(gen, t1), WindowPages(gen, t2));
}

TEST(TraceGenerator, ScaledInputGrowsWindowBeyondRecordCoverage) {
  TraceGenerator gen = MakeGenerator("pagerank");
  InvocationTrace small = gen.Generate(MakeScaledInput(gen.spec(), 1.0, 7));
  InvocationTrace big = gen.Generate(MakeScaledInput(gen.spec(), 4.0, 8));
  // The 4x input touches pages beyond the 1x window entirely.
  PageIndex max_small = 0;
  PageIndex max_big = 0;
  for (const TraceOp& op : small.ops) {
    max_small = std::max(max_small, op.page);
  }
  for (const TraceOp& op : big.ops) {
    max_big = std::max(max_big, op.page);
  }
  EXPECT_GT(max_big, max_small + 10000);
  EXPECT_NEAR(static_cast<double>(WindowPages(gen, big).page_count()),
              static_cast<double>(WindowPages(gen, small).page_count()) * 4.0,
              static_cast<double>(WindowPages(gen, small).page_count()) * 0.5);
}

TEST(TraceGenerator, ScaledComputeFollowsExponent) {
  TraceGenerator gen = MakeGenerator("matmul");  // exponent 1.5
  WorkloadInput x1 = MakeScaledInput(gen.spec(), 1.0, 1);
  WorkloadInput x4 = MakeScaledInput(gen.spec(), 4.0, 1);
  EXPECT_EQ(x1.profile.compute, gen.spec().input_a.compute);
  EXPECT_NEAR(static_cast<double>(x4.profile.compute.nanos()),
              static_cast<double>(x1.profile.compute.nanos()) * 8.0,
              static_cast<double>(x1.profile.compute.nanos()) * 0.01);
}

TEST(TraceGenerator, FixedInputFunctionsUseSameSeedForB) {
  TraceGenerator gen = MakeGenerator("read-list");
  WorkloadInput a = MakeInputA(gen.spec());
  WorkloadInput b = MakeInputB(gen.spec());
  EXPECT_EQ(a.content_seed, b.content_seed);
  TraceGenerator img = MakeGenerator("image");
  EXPECT_NE(MakeInputA(img.spec()).content_seed, MakeInputB(img.spec()).content_seed);
}

TEST(TraceGenerator, CleanSnapshotNonZeroIsBootPlusStable) {
  TraceGenerator gen = MakeGenerator("image");
  PageRangeSet nonzero = gen.CleanSnapshotNonZero();
  EXPECT_TRUE(nonzero.Contains(0));  // boot
  EXPECT_TRUE(nonzero.Contains(Layout().stable.first));
  EXPECT_FALSE(nonzero.Contains(Layout().window.first));
  // boot + placed scattered pages (slightly more than one input touches) + data.
  EXPECT_EQ(nonzero.page_count(), Layout().boot.count + gen.TotalScatteredPlaced() +
                                      gen.sequential_stable().count);
  EXPECT_GE(gen.TotalScatteredPlaced(), gen.spec().scattered_stable_pages.value());
}

TEST(TraceGenerator, ScatteredRunsAreClusteredWithGaps) {
  TraceGenerator gen = MakeGenerator("hello-world");
  const auto& runs = gen.scattered_runs();
  // Many short runs (the >1000-regions-before-merging observation of 4.6).
  EXPECT_GT(runs.size(), 200u);
  uint64_t total = 0;
  uint64_t small_gaps = 0;
  uint64_t big_gaps = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    total += runs[i].count;
    if (i > 0) {
      const uint64_t gap = runs[i].first - runs[i - 1].end();
      EXPECT_GE(gap, 1u);  // runs never abut (they would have been one run)
      if (gap <= 32) {
        ++small_gaps;
      } else {
        ++big_gaps;
      }
    }
  }
  EXPECT_EQ(total, gen.TotalScatteredPlaced());
  EXPECT_GE(total, gen.spec().scattered_stable_pages.value());
  EXPECT_GT(small_gaps, big_gaps * 3);  // mostly small gaps, some large jumps
  EXPECT_GT(big_gaps, 10u);
  // The placement is deterministic: a second generator sees the same runs.
  TraceGenerator gen2 = MakeGenerator("hello-world");
  EXPECT_EQ(gen2.scattered_runs().size(), runs.size());
  EXPECT_EQ(gen2.scattered_runs()[5], runs[5]);
}

TEST(TraceGenerator, SequentialStableFollowsScatterSpan) {
  TraceGenerator gen = MakeGenerator("read-list");
  const PageRange& seq = gen.sequential_stable();
  EXPECT_EQ(seq.count,
            (gen.spec().stable_pages - gen.spec().scattered_stable_pages).value());
  EXPECT_GE(seq.first, gen.scattered_runs().back().end());
  EXPECT_LE(seq.end(), Layout().stable.end());
}

// Section 4.4's precondition: different inputs exercise overlapping-but-distinct
// runtime code paths, so some stable pages faulted by input B were never faulted
// by input A (but sit adjacent to A's pages, where readahead finds them).
TEST(TraceGenerator, StableCodePathsDriftWithContent) {
  TraceGenerator gen = MakeGenerator("image");
  PageRangeSet span;
  for (const PageRange& r : gen.scattered_runs()) {
    span.Add(r);
  }
  InvocationTrace a = gen.Generate(MakeInputA(gen.spec()));
  InvocationTrace b = gen.Generate(MakeInputB(gen.spec()));
  PageRangeSet stable_a = a.TouchedPages().Intersect(span);
  PageRangeSet stable_b = b.TouchedPages().Intersect(span);
  const uint64_t b_only = stable_b.Subtract(stable_a).page_count();
  EXPECT_GT(b_only, stable_b.page_count() / 20);  // real drift...
  EXPECT_LT(b_only, stable_b.page_count() / 3);   // ...but mostly shared
  // Fixed-input functions have zero drift.
  TraceGenerator fixed = MakeGenerator("read-list");
  InvocationTrace fa = fixed.Generate(MakeInputA(fixed.spec()));
  InvocationTrace fb = fixed.Generate(MakeInputB(fixed.spec()));
  EXPECT_EQ(fa.TouchedPages(), fb.TouchedPages());
}

TEST(TraceGenerator, ComputeIsSpreadAcrossOps) {
  TraceGenerator gen = MakeGenerator("json");
  InvocationTrace trace = gen.Generate(MakeInputA(gen.spec()));
  EXPECT_EQ(trace.TotalCompute(), gen.spec().input_a.compute);
  // First op carries roughly total/ops.
  EXPECT_NEAR(static_cast<double>(trace.ops[0].compute.nanos()),
              static_cast<double>(gen.spec().input_a.compute.nanos()) /
                  static_cast<double>(trace.ops.size()),
              1.0);
}

// Property sweep: for every catalog function, traces stay inside the guest, touch
// approximately the Table 2 working set, and free only transient pages.
class TraceGeneratorCatalogTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceGeneratorCatalogTest, TraceInvariants) {
  Result<FunctionSpec> spec = FindFunction(GetParam());
  ASSERT_TRUE(spec.ok());
  TraceGenerator gen(*spec, Layout());
  for (const WorkloadInput& input : {MakeInputA(*spec), MakeInputB(*spec)}) {
    InvocationTrace trace = gen.Generate(input);
    const uint64_t expected_ws = (spec->stable_pages + input.profile.input_pages +
                                  input.profile.anon_pages).value();
    const double tolerance = static_cast<double>(expected_ws) * 0.1;
    EXPECT_NEAR(static_cast<double>(trace.TouchedPages().page_count()),
                static_cast<double>(expected_ws), tolerance);
    for (const TraceOp& op : trace.ops) {
      ASSERT_LT(op.page, Layout().total_pages.value());
    }
    // Freed pages live only in the scratch zone (what munmap returns to the
    // guest kernel) and are a subset of the touched pages.
    PageRangeSet scratch_zone;
    scratch_zone.Add(Layout().scratch);
    EXPECT_EQ(trace.freed_at_end.Intersect(scratch_zone), trace.freed_at_end);
    EXPECT_EQ(trace.freed_at_end.Subtract(trace.TouchedPages()).page_count(), 0u);
    EXPECT_EQ(trace.TotalCompute(), input.profile.compute);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, TraceGeneratorCatalogTest,
                         ::testing::Values("hello-world", "read-list", "mmap", "image", "json",
                                           "pyaes", "chameleon", "matmul", "ffmpeg",
                                           "compression", "recognition", "pagerank"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace faasnap

#include "src/core/loading_set_builder.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

WorkingSetGroups MakeGroups(std::vector<std::vector<PageRange>> groups) {
  WorkingSetGroups out;
  for (const auto& ranges : groups) {
    PageRangeSet set;
    for (const PageRange& r : ranges) {
      set.Add(r);
    }
    out.groups.push_back(std::move(set));
  }
  return out;
}

MemoryFile MakeMemory(std::vector<PageRange> nonzero, uint64_t total = 100000) {
  MemoryFile mem;
  mem.total_pages = PageCount::FromPages(total);
  for (const PageRange& r : nonzero) {
    mem.nonzero.Add(r);
  }
  return mem;
}

TEST(LoadingSetBuilder, LoadingSetIsWorkingSetIntersectNonZero) {
  WorkingSetGroups groups = MakeGroups({{{0, 100}}});
  MemoryFile mem = MakeMemory({{0, 50}});  // pages 50-99 are zero
  LoadingSetFile ls = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(0)});
  EXPECT_EQ(ls.total_pages.value(), 50u);
  ASSERT_EQ(ls.regions.size(), 1u);
  EXPECT_EQ(ls.regions[0].guest, (PageRange{0, 50}));
}

TEST(LoadingSetBuilder, ZeroWorkingSetPagesAreExcluded) {
  // Section 4.6: "the loader does not need to prefetch the zero regions".
  WorkingSetGroups groups = MakeGroups({{{0, 10}, {5000, 10}}});
  MemoryFile mem = MakeMemory({{0, 10}});  // the 5000s are zero (released set)
  LoadingSetFile ls = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(0)});
  EXPECT_EQ(ls.total_pages.value(), 10u);
  EXPECT_FALSE(ls.GuestPages().Contains(5000));
}

TEST(LoadingSetBuilder, MergesRegionsWithin32Pages) {
  WorkingSetGroups groups = MakeGroups({{{0, 4}, {20, 4}, {100, 4}}});
  MemoryFile mem = MakeMemory({{0, 1000}});
  LoadingSetFile ls = BuildLoadingSet(groups, mem);  // default threshold 32
  ASSERT_EQ(ls.regions.size(), 2u);
  // First two regions merged, gap pages included.
  EXPECT_EQ(ls.regions[0].guest, (PageRange{0, 24}));
  EXPECT_EQ(ls.regions[1].guest, (PageRange{100, 4}));
  EXPECT_EQ(ls.total_pages.value(), 28u);
}

TEST(LoadingSetBuilder, RegionsSortedByGroupThenAddress) {
  // Group 1 contains a low address; group 0 contains a high address: the file
  // must order by group first so the loader follows access order.
  WorkingSetGroups groups = MakeGroups({{{5000, 8}}, {{100, 8}}});
  MemoryFile mem = MakeMemory({{0, 100000}});
  LoadingSetFile ls = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(0)});
  ASSERT_EQ(ls.regions.size(), 2u);
  EXPECT_EQ(ls.regions[0].guest.first, 5000u);
  EXPECT_EQ(ls.regions[0].group, 0u);
  EXPECT_EQ(ls.regions[1].guest.first, 100u);
  EXPECT_EQ(ls.regions[1].group, 1u);
}

TEST(LoadingSetBuilder, WithinGroupSortedByAddress) {
  WorkingSetGroups groups = MakeGroups({{{9000, 4}, {100, 4}, {4000, 4}}});
  MemoryFile mem = MakeMemory({{0, 100000}});
  LoadingSetFile ls = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(0)});
  ASSERT_EQ(ls.regions.size(), 3u);
  EXPECT_EQ(ls.regions[0].guest.first, 100u);
  EXPECT_EQ(ls.regions[1].guest.first, 4000u);
  EXPECT_EQ(ls.regions[2].guest.first, 9000u);
}

TEST(LoadingSetBuilder, FileOffsetsArePackedContiguously) {
  WorkingSetGroups groups = MakeGroups({{{0, 10}, {1000, 20}, {5000, 5}}});
  MemoryFile mem = MakeMemory({{0, 100000}});
  LoadingSetFile ls = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(0)});
  ASSERT_EQ(ls.regions.size(), 3u);
  EXPECT_EQ(ls.regions[0].file_start, 0u);
  EXPECT_EQ(ls.regions[1].file_start, 10u);
  EXPECT_EQ(ls.regions[2].file_start, 30u);
  EXPECT_EQ(ls.total_pages.value(), 35u);
}

TEST(LoadingSetBuilder, MergedRegionTakesLowestGroup) {
  // A merged region spanning pages from groups 0 and 1 is assigned group 0
  // ("the lowest group number of any page in the region").
  WorkingSetGroups groups = MakeGroups({{{0, 4}}, {{10, 4}}});
  MemoryFile mem = MakeMemory({{0, 1000}});
  LoadingSetFile ls = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(32)});
  ASSERT_EQ(ls.regions.size(), 1u);
  EXPECT_EQ(ls.regions[0].group, 0u);
  EXPECT_EQ(ls.regions[0].guest, (PageRange{0, 14}));
}

TEST(LoadingSetBuilder, MergeReducesRegionCountDramatically) {
  // The hello-world observation (section 4.6): >1000 scattered regions collapse
  // to <100 with the 32-page threshold, at a small size cost.
  WorkingSetGroups groups;
  PageRangeSet g;
  for (PageIndex p = 0; p < 3000; p += 3) {
    g.Add(p, 1);  // 1000 single-page regions with 2-page gaps
  }
  groups.groups.push_back(g);
  MemoryFile mem = MakeMemory({{0, 100000}});
  LoadingSetFile merged = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(32)});
  LoadingSetFile unmerged = BuildLoadingSet(groups, mem, {.merge_gap_pages = PageCount::FromPages(0)});
  EXPECT_EQ(unmerged.regions.size(), 1000u);
  EXPECT_EQ(merged.regions.size(), 1u);
  // Size grows (gap pages included) but stays bounded.
  EXPECT_GT(merged.total_pages, unmerged.total_pages);
  EXPECT_LE(merged.total_pages.value(), 3u * unmerged.total_pages.value());
}

TEST(LoadingSetBuilder, EmptyInputsYieldEmptyFile) {
  LoadingSetFile ls = BuildLoadingSet(WorkingSetGroups{}, MakeMemory({{0, 10}}));
  EXPECT_TRUE(ls.regions.empty());
  EXPECT_EQ(ls.total_pages.value(), 0u);
}

}  // namespace
}  // namespace faasnap

#include <gtest/gtest.h>

#include "src/daemon/experiment_config.h"
#include "src/daemon/experiment_runner.h"

namespace faasnap {
namespace {

Result<ExperimentConfig> Parse(const std::string& text) {
  ASSIGN_OR_RETURN(JsonValue root, ParseJson(text));
  return ParseExperimentConfig(root);
}

TEST(ExperimentConfig, MinimalConfigGetsDefaults) {
  Result<ExperimentConfig> config = Parse(R"({"functions": ["json"]})");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->functions, std::vector<std::string>{"json"});
  EXPECT_EQ(config->systems.size(), 4u);  // the four paper systems
  EXPECT_EQ(config->reps, 3);
  EXPECT_EQ(config->parallelism, 1);
  ASSERT_EQ(config->test_inputs.size(), 1u);
  EXPECT_EQ(config->test_inputs[0].kind, TestInputSpec::Kind::kInputB);
  EXPECT_EQ(config->platform.disk.name, "nvme-ssd");
}

TEST(ExperimentConfig, FullConfigParses) {
  Result<ExperimentConfig> config = Parse(R"({
    "name": "custom",
    "functions": ["json", "image"],
    "systems": ["faasnap", "reap"],
    "record_input": "B",
    "test_inputs": ["A", "2x", "0.5x"],
    "reps": 5,
    "parallelism": 4,
    "device": "ebs",
    "ws_group_size": 256,
    "merge_gap_pages": 16,
    "base_seed": 9
  })");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->name, "custom");
  EXPECT_EQ(config->systems,
            (std::vector<RestoreMode>{RestoreMode::kFaasnap, RestoreMode::kReap}));
  EXPECT_EQ(config->record_input.kind, TestInputSpec::Kind::kInputB);
  ASSERT_EQ(config->test_inputs.size(), 3u);
  EXPECT_EQ(config->test_inputs[1].kind, TestInputSpec::Kind::kRatio);
  EXPECT_DOUBLE_EQ(config->test_inputs[1].ratio, 2.0);
  EXPECT_DOUBLE_EQ(config->test_inputs[2].ratio, 0.5);
  EXPECT_EQ(config->platform.disk.name, "ebs-io2");
  EXPECT_EQ(config->platform.ws_group_size, 256u);
  EXPECT_EQ(config->platform.loading_set.merge_gap_pages.value(), 16u);
  EXPECT_EQ(config->base_seed, 9u);
}

TEST(ExperimentConfig, RejectsBadInput) {
  EXPECT_FALSE(Parse(R"({})").ok());                                   // no functions
  EXPECT_FALSE(Parse(R"({"functions": []})").ok());                    // empty
  EXPECT_FALSE(Parse(R"({"functions": ["nope"]})").ok());              // unknown fn
  EXPECT_FALSE(Parse(R"({"functions":["json"],"systems":["x"]})").ok());
  EXPECT_FALSE(Parse(R"({"functions":["json"],"test_inputs":["Q"]})").ok());
  EXPECT_FALSE(Parse(R"({"functions":["json"],"device":"floppy"})").ok());
  EXPECT_FALSE(Parse(R"({"functions":["json"],"reps":0})").ok());
  EXPECT_FALSE(Parse(R"([1,2,3])").ok());  // root not an object
}

TEST(ExperimentConfig, LoadsTheShippedConfigs) {
  for (const char* path :
       {"configs/test-2inputs.json", "configs/test-6inputs.json", "configs/test-burst.json",
        "configs/test-remote.json"}) {
    // The test may run from the repo root, the build dir, or build/tests.
    Result<ExperimentConfig> config = NotFoundError("unattempted");
    for (const char* prefix : {"", "../", "../../", "../../../"}) {
      config = LoadExperimentConfig(std::string(prefix) + path);
      if (config.ok()) {
        break;
      }
    }
    ASSERT_TRUE(config.ok()) << path << ": " << config.status().ToString();
    EXPECT_FALSE(config->functions.empty()) << path;
  }
}

TEST(ExperimentRunner, RunsATinyConfigEndToEnd) {
  Result<ExperimentConfig> config = Parse(R"({
    "name": "tiny",
    "functions": ["json"],
    "systems": ["firecracker", "faasnap"],
    "test_inputs": ["B"],
    "reps": 2
  })");
  ASSERT_TRUE(config.ok());
  Result<ExperimentResults> results = RunExperiment(*config);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->cells.size(), 2u);
  for (const ExperimentCell& cell : results->cells) {
    EXPECT_EQ(cell.function, "json");
    EXPECT_EQ(cell.total_ms.count(), 2);
    EXPECT_GT(cell.total_ms.mean(), 0.0);
  }
  // FaaSnap beats Firecracker in the results, as everywhere else.
  EXPECT_LT(results->cells[1].total_ms.mean(), results->cells[0].total_ms.mean());
  // Renderings include the cells.
  EXPECT_NE(results->ToTable().find("faasnap"), std::string::npos);
  const std::string json = results->ToJson();
  EXPECT_NE(json.find("\"system\":\"faasnap\""), std::string::npos);
  EXPECT_NE(json.find("\"reps\":2"), std::string::npos);
}

TEST(ExperimentRunner, BurstConfigAggregatesPerInvocation) {
  Result<ExperimentConfig> config = Parse(R"({
    "functions": ["json"],
    "systems": ["faasnap"],
    "test_inputs": ["A"],
    "reps": 1,
    "parallelism": 4
  })");
  ASSERT_TRUE(config.ok());
  Result<ExperimentResults> results = RunExperiment(*config);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->cells.size(), 1u);
  EXPECT_EQ(results->cells[0].total_ms.count(), 4);  // one sample per burst member
}

TEST(ExperimentRunner, AdmissionBurstShedsTypedOutcomes) {
  // An 8-wide burst through a 1-slot admission controller with a 1-deep queue
  // and a microsecond deadline: one runs, one queues and expires, six find the
  // queue full. Sheds land in the cell and in both renderings.
  Result<ExperimentConfig> config = Parse(R"({
    "functions": ["json"],
    "systems": ["faasnap"],
    "test_inputs": ["A"],
    "reps": 1,
    "parallelism": 8,
    "admission": {
      "max_concurrency": 1,
      "queue_capacity": 1,
      "queue_deadline_us": 10
    }
  })");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->admission_enabled);
  Result<ExperimentResults> results = RunExperiment(*config);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->cells.size(), 1u);
  const ExperimentCell& cell = results->cells[0];
  EXPECT_EQ(cell.shed, 7);
  EXPECT_EQ(cell.total_ms.count(), 1);  // only the admitted member reports latency
  EXPECT_NE(results->ToTable().find("ok/deg/fail/shed"), std::string::npos);
  EXPECT_NE(results->ToJson().find("\"shed\":7"), std::string::npos);
}

TEST(ExperimentRunner, RatioInputsScaleWork) {
  Result<ExperimentConfig> config = Parse(R"({
    "functions": ["image"],
    "systems": ["faasnap"],
    "test_inputs": ["0.5x", "4x"],
    "reps": 1
  })");
  ASSERT_TRUE(config.ok());
  Result<ExperimentResults> results = RunExperiment(*config);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->cells.size(), 2u);
  EXPECT_LT(results->cells[0].total_ms.mean(), results->cells[1].total_ms.mean());
}

}  // namespace
}  // namespace faasnap

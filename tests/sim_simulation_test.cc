#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace faasnap {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now().nanos(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, FiresEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(SimTime::FromNanos(300), [&] { order.push_back(3); });
  sim.Schedule(SimTime::FromNanos(100), [&] { order.push_back(1); });
  sim.Schedule(SimTime::FromNanos(200), [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().nanos(), 300);
}

TEST(Simulation, SameTimestampIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(SimTime::FromNanos(100), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  int64_t fired_at = -1;
  sim.Schedule(SimTime::FromNanos(100), [&] {
    sim.ScheduleAfter(Duration::Nanos(50), [&] { fired_at = sim.now().nanos(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, EventsCanScheduleChains) {
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) {
      sim.ScheduleAfter(Duration::Micros(1), tick);
    }
  };
  sim.ScheduleAfter(Duration::Micros(1), tick);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), SimTime::FromNanos(10000));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.Schedule(SimTime::FromNanos(100), [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, CancelUnknownIsNoOp) {
  Simulation sim;
  sim.Cancel(12345);
  bool fired = false;
  EventId id = sim.Schedule(SimTime::FromNanos(10), [&] { fired = true; });
  sim.Run();
  sim.Cancel(id);  // already fired
  EXPECT_TRUE(fired);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(SimTime::FromNanos(100), [&] { order.push_back(1); });
  sim.Schedule(SimTime::FromNanos(200), [&] { order.push_back(2); });
  sim.Schedule(SimTime::FromNanos(300), [&] { order.push_back(3); });
  EXPECT_EQ(sim.RunUntil(SimTime::FromNanos(250)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now().nanos(), 250);
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(order.size(), 3u);
}

TEST(Simulation, RunUntilInclusiveOfDeadline) {
  Simulation sim;
  bool fired = false;
  sim.Schedule(SimTime::FromNanos(100), [&] { fired = true; });
  sim.RunUntil(SimTime::FromNanos(100));
  EXPECT_TRUE(fired);
}

TEST(Simulation, StepFiresExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.Schedule(SimTime::FromNanos(1), [&] { ++count; });
  sim.Schedule(SimTime::FromNanos(2), [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(Simulation, ProcessedEventsCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleAfter(Duration::Nanos(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.processed_events(), 7u);
}

TEST(SimulationDeathTest, SchedulingInThePastAborts) {
  Simulation sim;
  sim.Schedule(SimTime::FromNanos(100), [] {});
  sim.Run();
  EXPECT_DEATH(sim.Schedule(SimTime::FromNanos(50), [] {}), "FAASNAP_CHECK");
}

}  // namespace
}  // namespace faasnap

#include "src/mem/fault_engine.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

constexpr FileId kMemFile = 1;
constexpr uint64_t kSpacePages = 4096;
constexpr PageCount kFilePages = PageCount::FromPages(4096);

class FaultEngineTest : public ::testing::Test {
 protected:
  FaultEngineTest() : disk_(&sim_, TestDiskProfile()), space_(PageCount::FromPages(kSpacePages)) {
    router_.AddDevice(&disk_);
    HostCostModel costs;
    costs.cost_dispersion = false;  // exact-cost assertions below
    engine_ = std::make_unique<FaultEngine>(&sim_, &cache_, &router_, &space_, &readahead_,
                                            [](FileId) { return kFilePages; }, costs);
  }

  // Runs one access to completion and returns (class, elapsed guest time).
  std::pair<FaultClass, Duration> AccessAndWait(PageIndex page) {
    const SimTime start = sim_.now();
    FaultClass out = FaultClass::kNoFault;
    bool sync = engine_->Access(page, [&](FaultClass c) { out = c; });
    if (!sync) {
      sim_.Run();
    }
    return {out, sim_.now() - start};
  }

  Simulation sim_;
  PageCache cache_;
  BlockDevice disk_;
  StorageRouter router_;
  AddressSpace space_;
  ReadaheadPolicy readahead_;
  std::unique_ptr<FaultEngine> engine_;
};

TEST_F(FaultEngineTest, PresentPageIsSynchronousNoFault) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kAnonymous});
  space_.SetInstallState(7, PageInstallState::kPresent);
  bool called = false;
  EXPECT_TRUE(engine_->Access(7, [&](FaultClass) { called = true; }));
  EXPECT_FALSE(called);
  EXPECT_EQ(engine_->metrics().count(FaultClass::kNoFault), 1);
  EXPECT_EQ(engine_->metrics().total_faults(), 0);
}

TEST_F(FaultEngineTest, AnonymousFaultCostsAnonLatency) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kAnonymous});
  auto [cls, elapsed] = AccessAndWait(5);
  EXPECT_EQ(cls, FaultClass::kAnonymous);
  EXPECT_EQ(elapsed, engine_->costs().anonymous_fault);
  EXPECT_EQ(space_.install_state(5), PageInstallState::kPresent);
  // Second access is free.
  EXPECT_TRUE(engine_->Access(5, [](FaultClass) {}));
}

TEST_F(FaultEngineTest, MinorFaultServedFromPageCache) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  cache_.Insert(kMemFile, PageRange{0, kFilePages.value()});
  auto [cls, elapsed] = AccessAndWait(100);
  EXPECT_EQ(cls, FaultClass::kMinor);
  EXPECT_EQ(elapsed, engine_->costs().minor_fault);
  EXPECT_EQ(engine_->metrics().fault_disk_requests, 0u);
}

TEST_F(FaultEngineTest, MajorFaultReadsFromDiskWithReadahead) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  auto [cls, elapsed] = AccessAndWait(100);
  EXPECT_EQ(cls, FaultClass::kMajor);
  // Blocking small read on the test disk ~54 us plus overheads: clearly "major".
  EXPECT_GT(elapsed, Duration::Micros(32));
  EXPECT_EQ(engine_->metrics().fault_disk_requests, 1u);
  // Readahead pulled the initial window (16 pages) into the cache.
  EXPECT_EQ(engine_->metrics().fault_disk_bytes.value(), 16 * kPageSize);
  EXPECT_TRUE(cache_.IsPresent(kMemFile, 100));
  EXPECT_TRUE(cache_.IsPresent(kMemFile, 115));
  EXPECT_FALSE(cache_.IsPresent(kMemFile, 116));
  // Neighboring page now minor-faults.
  auto [cls2, elapsed2] = AccessAndWait(101);
  EXPECT_EQ(cls2, FaultClass::kMinor);
  EXPECT_EQ(elapsed2, engine_->costs().minor_fault);
}

TEST_F(FaultEngineTest, FaultOnInFlightPageWaitsInsteadOfRereading) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  // A loader-style read is already in flight for pages [100, 200).
  auto handle = cache_.BeginRead(kMemFile, PageRange{100, 100});
  disk_.Read(100 * kPageSize, 100 * kPageSize, [&] { cache_.CompleteRead(handle); });
  auto [cls, elapsed] = AccessAndWait(150);
  EXPECT_EQ(cls, FaultClass::kInFlightWait);
  // The fault did not issue its own disk request.
  EXPECT_EQ(engine_->metrics().fault_disk_requests, 0u);
  EXPECT_EQ(disk_.stats().read_requests, 1u);
  EXPECT_GT(elapsed, Duration::Zero());
}

TEST_F(FaultEngineTest, SoftPresentPageTakesCheapPreinstalledFault) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  space_.SetInstallState(42, PageInstallState::kSoftPresent);
  auto [cls, elapsed] = AccessAndWait(42);
  EXPECT_EQ(cls, FaultClass::kUffdPreinstalled);
  EXPECT_EQ(elapsed, engine_->costs().uffd_preinstalled_fault);
  EXPECT_EQ(space_.install_state(42), PageInstallState::kPresent);
}

class FakeUffdHandler : public UffdHandler {
 public:
  FakeUffdHandler(Simulation* sim, Duration delay) : sim_(sim), delay_(delay) {}
  void HandleFault(PageIndex guest_page,
                   std::function<void(const Status&)> done) override {
    pages.push_back(guest_page);
    sim_->ScheduleAfter(delay_, [done = std::move(done)] { done(OkStatus()); });
  }
  std::vector<PageIndex> pages;

 private:
  Simulation* sim_;
  Duration delay_;
};

TEST_F(FaultEngineTest, UffdRegionFaultsGoToHandler) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  FakeUffdHandler handler(&sim_, Duration::Micros(10));
  PageRangeSet region;
  region.Add(0, kSpacePages);
  engine_->RegisterUffd(region, &handler);
  auto [cls, elapsed] = AccessAndWait(33);
  EXPECT_EQ(cls, FaultClass::kUffdHandled);
  ASSERT_EQ(handler.pages.size(), 1u);
  EXPECT_EQ(handler.pages[0], 33u);
  // Guest-visible time = handler delay + uffd round trip + vCPU-block penalty.
  EXPECT_EQ(elapsed, Duration::Micros(10) + engine_->costs().uffd_round_trip +
                         engine_->uffd_vcpu_block_extra());
  // The histogram records handling only (no vCPU-block extra).
  EXPECT_EQ(engine_->metrics().total_fault_time,
            Duration::Micros(10) + engine_->costs().uffd_round_trip);
  EXPECT_EQ(engine_->metrics().total_wait_time, elapsed);
}

TEST_F(FaultEngineTest, UffdDoesNotInterceptSoftPresentPages) {
  space_.Map({.guest = {0, kSpacePages}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 0});
  FakeUffdHandler handler(&sim_, Duration::Micros(10));
  PageRangeSet region;
  region.Add(0, kSpacePages);
  engine_->RegisterUffd(region, &handler);
  space_.SetInstallState(9, PageInstallState::kSoftPresent);
  auto [cls, elapsed] = AccessAndWait(9);
  EXPECT_EQ(cls, FaultClass::kUffdPreinstalled);
  EXPECT_TRUE(handler.pages.empty());
}

TEST_F(FaultEngineTest, EnsureFilePagePresentIsImmediate) {
  cache_.Insert(kMemFile, PageRange{0, 10});
  bool called = false;
  engine_->EnsureFilePage(kMemFile, 5, /*charge_to_faults=*/false,
                         [&](const Status& status, PageCache::PageState s) {
                           called = true;
                           EXPECT_TRUE(status.ok());
                           EXPECT_EQ(s, PageCache::PageState::kPresent);
                         });
  EXPECT_TRUE(called);
}

TEST_F(FaultEngineTest, EnsureFilePageMissChargesOnlyWhenAsked) {
  bool done1 = false;
  engine_->EnsureFilePage(kMemFile, 0, /*charge_to_faults=*/false,
                         [&](const Status&, PageCache::PageState) { done1 = true; });
  sim_.Run();
  EXPECT_TRUE(done1);
  EXPECT_EQ(engine_->metrics().fault_disk_requests, 0u);
  EXPECT_EQ(disk_.stats().read_requests, 1u);
}

TEST_F(FaultEngineTest, MetricsAccumulateAcrossClasses) {
  space_.Map({.guest = {0, 100}, .kind = BackingKind::kAnonymous});
  space_.Map({.guest = {100, 100}, .kind = BackingKind::kFile, .file = kMemFile,
              .file_start = 100});
  cache_.Insert(kMemFile, PageRange{100, 50});
  AccessAndWait(1);    // anonymous
  AccessAndWait(110);  // minor
  AccessAndWait(180);  // major
  const FaultMetrics& m = engine_->metrics();
  EXPECT_EQ(m.count(FaultClass::kAnonymous), 1);
  EXPECT_EQ(m.count(FaultClass::kMinor), 1);
  EXPECT_EQ(m.count(FaultClass::kMajor), 1);
  EXPECT_EQ(m.total_faults(), 3);
  EXPECT_EQ(m.latency_histogram.total_count(), 3);
  EXPECT_GT(m.total_fault_time, Duration::Micros(32));
}

TEST_F(FaultEngineTest, UnmappedAccessAborts) {
  EXPECT_DEATH(
      {
        engine_->Access(0, [](FaultClass) {});
        sim_.Run();
      },
      "unmapped");
}

}  // namespace
}  // namespace faasnap

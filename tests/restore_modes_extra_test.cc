// Additional restore-mode behaviors: cold boot, the Figure 9 ablation modes end
// to end, tiered placement routing, and cross-mode metric consistency.

#include <gtest/gtest.h>

#include "src/runtime/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

class RestoreModesTest : public ::testing::Test {
 protected:
  RestoreModesTest()
      : platform_(TestConfig()),
        spec_(*FindFunction("image")),
        generator_(spec_, platform_.config().layout),
        snapshot_(platform_.Record(generator_, MakeInputA(spec_))) {}

  InvocationReport Run(RestoreMode mode, bool input_b = true) {
    platform_.DropCaches();
    return platform_.Invoke(snapshot_, mode, generator_,
                            input_b ? MakeInputB(spec_) : MakeInputA(spec_));
  }

  Platform platform_;
  FunctionSpec spec_;
  TraceGenerator generator_;
  FunctionSnapshot snapshot_;
};

TEST_F(RestoreModesTest, ColdBootIsSecondsAndDiskFree) {
  InvocationReport cold = Run(RestoreMode::kColdBoot);
  EXPECT_GT(cold.setup_time, Duration::Seconds(2));
  EXPECT_EQ(cold.disk.read_requests, 0u);  // no snapshot to read
  EXPECT_EQ(cold.faults.count(FaultClass::kMajor), 0);
  EXPECT_GT(cold.faults.count(FaultClass::kAnonymous), 0);
}

TEST_F(RestoreModesTest, ColdBootInitScalesWithRuntimeState) {
  Platform other(TestConfig());
  FunctionSpec recognition = *FindFunction("recognition");  // 56k stable pages
  TraceGenerator gen(recognition, other.config().layout);
  FunctionSnapshot snap = other.Record(gen, MakeInputA(recognition));
  InvocationReport big = other.Invoke(snap, RestoreMode::kColdBoot, gen,
                                      MakeInputA(recognition));
  InvocationReport small = Run(RestoreMode::kColdBoot);
  EXPECT_GT(big.setup_time, small.setup_time);  // more runtime state to initialize
}

TEST_F(RestoreModesTest, AblationModesAreMonotonicallyBetter) {
  const Duration fc = Run(RestoreMode::kFirecracker).invocation_time;
  const Duration con = Run(RestoreMode::kFaasnapConcurrentOnly).invocation_time;
  const Duration per = Run(RestoreMode::kFaasnapPerRegion).invocation_time;
  const Duration full = Run(RestoreMode::kFaasnap).invocation_time;
  EXPECT_LT(con, fc);
  EXPECT_LT(per, con);
  EXPECT_LE(full.nanos(), per.nanos() * 102 / 100);  // within 2%
}

TEST_F(RestoreModesTest, ConcurrentOnlyKeepsWholeFileMapping) {
  InvocationReport con = Run(RestoreMode::kFaasnapConcurrentOnly);
  EXPECT_EQ(con.mmap_calls, 1u);
  EXPECT_FALSE(con.fetch_bytes.is_zero());  // the loader ran
  InvocationReport per = Run(RestoreMode::kFaasnapPerRegion);
  EXPECT_GT(per.mmap_calls, 100u);  // per-region hierarchy
}

TEST_F(RestoreModesTest, FaasnapPrefetchesOnlyTheLoadingSet) {
  InvocationReport faasnap = Run(RestoreMode::kFaasnap);
  EXPECT_EQ(faasnap.fetch_bytes, PagesToBytes(snapshot_.loading_set.total_pages));
}

TEST_F(RestoreModesTest, ReapOutOfSetFaultsScaleWithDrift) {
  InvocationReport same = Run(RestoreMode::kReap, /*input_b=*/false);
  InvocationReport drift = Run(RestoreMode::kReap, /*input_b=*/true);
  EXPECT_GT(drift.faults.count(FaultClass::kUffdHandled),
            same.faults.count(FaultClass::kUffdHandled) * 2);
  // Preinstalled (soft) faults shrink correspondingly.
  EXPECT_GT(same.faults.count(FaultClass::kUffdPreinstalled),
            drift.faults.count(FaultClass::kUffdPreinstalled));
}

TEST(TieredRestoreTest, HybridPlacementRoutesOnlyMemoryFileRemote) {
  PlatformConfig config = TestConfig();
  config.remote_disk = EbsIo2Profile();
  config.placement.memory_files = StorageTier::kRemote;
  config.placement.reap_ws = StorageTier::kRemote;
  // loading_set stays local.
  Platform platform(config);
  FunctionSpec spec = *FindFunction("json");
  TraceGenerator generator(spec, config.layout);
  FunctionSnapshot snap = platform.Record(generator, MakeInputA(spec));
  platform.DropCaches();
  const BlockDeviceStats local_before = platform.disk()->stats();
  const BlockDeviceStats remote_before = platform.remote_disk()->stats();
  platform.Invoke(snap, RestoreMode::kFaasnap, generator, MakeInputB(spec));
  const uint64_t local_reads = platform.disk()->stats().read_requests -
                               local_before.read_requests;
  const uint64_t remote_reads = platform.remote_disk()->stats().read_requests -
                                remote_before.read_requests;
  // The loader streams the loading set from the local device; only cold-set /
  // out-of-set faults hit the remote memory file.
  EXPECT_GT(local_reads, 0u);
  EXPECT_LT(remote_reads, local_reads);
}

TEST(TieredRestoreTest, ReapFetchFollowsItsPlacement) {
  PlatformConfig config = TestConfig();
  config.remote_disk = EbsIo2Profile();
  config.placement.reap_ws = StorageTier::kRemote;
  Platform platform(config);
  FunctionSpec spec = *FindFunction("json");
  TraceGenerator generator(spec, config.layout);
  FunctionSnapshot snap = platform.Record(generator, MakeInputA(spec));
  platform.DropCaches();
  const uint64_t remote_before = platform.remote_disk()->stats().bytes_read;
  InvocationReport report =
      platform.Invoke(snap, RestoreMode::kReap, generator, MakeInputA(spec));
  EXPECT_GE(platform.remote_disk()->stats().bytes_read - remote_before,
            report.fetch_bytes.value());
}

}  // namespace
}  // namespace faasnap

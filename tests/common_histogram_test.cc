#include "src/common/histogram.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

Log2Histogram Fig2Histogram() { return Log2Histogram(Duration::Nanos(500), /*num_buckets=*/11); }

TEST(Log2Histogram, EmptyState) {
  Log2Histogram h = Fig2Histogram();
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.total_time(), Duration::Zero());
  EXPECT_EQ(h.mean(), Duration::Zero());
}

TEST(Log2Histogram, BucketEdgesDouble) {
  Log2Histogram h = Fig2Histogram();
  EXPECT_EQ(h.bucket_upper(0).nanos(), 500);
  EXPECT_EQ(h.bucket_upper(1).nanos(), 1000);
  EXPECT_EQ(h.bucket_upper(2).nanos(), 2000);
  EXPECT_EQ(h.bucket_upper(10).nanos(), 512000);
  EXPECT_EQ(h.bucket_upper(h.num_buckets() - 1).nanos(), INT64_MAX);
}

TEST(Log2Histogram, RecordsIntoCorrectBuckets) {
  Log2Histogram h = Fig2Histogram();
  h.Record(Duration::Nanos(100));    // < 0.5us -> bucket 0
  h.Record(Duration::Nanos(499));    // bucket 0
  h.Record(Duration::Nanos(500));    // [0.5us, 1us) -> bucket 1
  h.Record(Duration::Micros(3));     // [2us,4us) -> bucket 3
  h.Record(Duration::Micros(600));   // > 512us -> overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 1);
  EXPECT_EQ(h.total_count(), 5);
}

TEST(Log2Histogram, MeanAndTotal) {
  Log2Histogram h = Fig2Histogram();
  h.Record(Duration::Micros(2));
  h.Record(Duration::Micros(4));
  EXPECT_EQ(h.total_time(), Duration::Micros(6));
  EXPECT_EQ(h.mean(), Duration::Micros(3));
}

TEST(Log2Histogram, Merge) {
  Log2Histogram a = Fig2Histogram();
  Log2Histogram b = Fig2Histogram();
  a.Record(Duration::Micros(1));
  b.Record(Duration::Micros(1));
  b.Record(Duration::Micros(100));
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 3);
  EXPECT_EQ(a.total_time(), Duration::Micros(102));
}

TEST(Log2Histogram, ApproxQuantile) {
  Log2Histogram h = Fig2Histogram();
  for (int i = 0; i < 90; ++i) h.Record(Duration::Micros(3));   // bucket [2,4)us
  for (int i = 0; i < 10; ++i) h.Record(Duration::Micros(100)); // bucket [64,128)us
  EXPECT_EQ(h.ApproxQuantile(0.5), Duration::Micros(4));
  EXPECT_EQ(h.ApproxQuantile(0.9), Duration::Micros(4));
  EXPECT_EQ(h.ApproxQuantile(0.95), Duration::Micros(128));
}

TEST(Log2Histogram, ResetClearsEverything) {
  Log2Histogram h = Fig2Histogram();
  h.Record(Duration::Micros(5));
  h.Reset();
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.total_time(), Duration::Zero());
}

TEST(Log2Histogram, ToStringContainsBars) {
  Log2Histogram h = Fig2Histogram();
  for (int i = 0; i < 100; ++i) h.Record(Duration::Micros(3));
  std::string s = h.ToString();
  EXPECT_NE(s.find("#"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

TEST(RunningStats, Basic) {
  RunningStats s;
  s.Record(1.0);
  s.Record(3.0);
  s.Record(5.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.632993, 1e-5);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, Merge) {
  RunningStats a;
  a.Record(1.0);
  RunningStats b;
  b.Record(3.0);
  b.Record(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 3);
}

// --- Quantile estimation (log-linear interpolation within buckets). ---
// Target rank r = ceil(f * total); `within` = fraction of the holding
// bucket's count at or below r. Bucket 0 interpolates linearly on
// [0, lower_ns); finite bucket [lo, 2*lo) returns lo * 2^within; the
// overflow bucket extrapolates one doubling past the last finite edge.

TEST(Log2Quantile, EmptyHistogramIsZero) {
  Log2Histogram h(Duration::Micros(1), 4);
  EXPECT_EQ(h.EstimateQuantile(0.5), Duration::Zero());
  EXPECT_EQ(EstimateLog2Quantile({0, 0, 0, 0}, Duration::Micros(1), 0.99).nanos(), 0);
}

TEST(Log2Quantile, BucketZeroInterpolatesLinearly) {
  // 4 samples in [0, 1000): p50 hits rank 2 of 4 -> 1000 * 0.5.
  EXPECT_EQ(EstimateLog2Quantile({4, 0, 0, 0}, Duration::Micros(1), 0.50).nanos(), 500);
  EXPECT_EQ(EstimateLog2Quantile({4, 0, 0, 0}, Duration::Micros(1), 1.00).nanos(), 1000);
  // p10 -> rank ceil(0.4) = 1 of 4 -> 1000 * 0.25.
  EXPECT_EQ(EstimateLog2Quantile({4, 0, 0, 0}, Duration::Micros(1), 0.10).nanos(), 250);
}

TEST(Log2Quantile, FiniteBucketInterpolatesInLogSpace) {
  // 4 samples in [1000, 2000): p50 -> 1000 * 2^(2/4) = 1414.
  EXPECT_EQ(EstimateLog2Quantile({0, 4, 0, 0}, Duration::Micros(1), 0.50).nanos(), 1414);
  // p25 -> rank 1 -> 1000 * 2^0.25 = 1189; p100 -> the bucket's upper edge.
  EXPECT_EQ(EstimateLog2Quantile({0, 4, 0, 0}, Duration::Micros(1), 0.25).nanos(), 1189);
  EXPECT_EQ(EstimateLog2Quantile({0, 4, 0, 0}, Duration::Micros(1), 1.00).nanos(), 2000);
  // Second finite bucket [2000, 4000): p50 -> 2000 * 2^0.5 = 2828.
  EXPECT_EQ(EstimateLog2Quantile({0, 0, 4, 0}, Duration::Micros(1), 0.50).nanos(), 2828);
}

TEST(Log2Quantile, RanksSpanBuckets) {
  // 1 + 1 + 2 samples: p25 -> rank 1 lands in bucket 0 (1000 * 1/1);
  // p50 -> rank 2 exhausts bucket 1 (1000 * 2^(1/1) = 2000);
  // p99 -> rank 4, second of two in bucket 2 -> 2000 * 2^1 = 4000.
  const std::vector<int64_t> counts = {1, 1, 2, 0};
  EXPECT_EQ(EstimateLog2Quantile(counts, Duration::Micros(1), 0.25).nanos(), 1000);
  EXPECT_EQ(EstimateLog2Quantile(counts, Duration::Micros(1), 0.50).nanos(), 2000);
  EXPECT_EQ(EstimateLog2Quantile(counts, Duration::Micros(1), 0.99).nanos(), 4000);
}

TEST(Log2Quantile, OverflowBucketExtrapolatesOneDoubling) {
  // 4 buckets: finite edges 1000/2000/4000, overflow treated as [4000, 8000).
  EXPECT_EQ(EstimateLog2Quantile({0, 0, 0, 4}, Duration::Micros(1), 0.50).nanos(), 5656);  // 4000 * 2^0.5
  EXPECT_EQ(EstimateLog2Quantile({0, 0, 0, 4}, Duration::Micros(1), 1.00).nanos(), 8000);
}

TEST(Log2Quantile, ClassMethodMatchesFreeFunction) {
  Log2Histogram h(Duration::Micros(1), 4);
  for (int i = 0; i < 4; ++i) {
    h.Record(Duration::Nanos(1500));
  }
  EXPECT_EQ(h.EstimateQuantile(0.5), Duration::Nanos(1414));
  EXPECT_EQ(h.EstimateQuantile(0.95).nanos(),
            EstimateLog2Quantile({0, 4, 0, 0}, Duration::Micros(1), 0.95).nanos());
}

TEST(Log2Quantile, FractionIsClampedToUnitRange) {
  EXPECT_EQ(EstimateLog2Quantile({4, 0, 0, 0}, Duration::Micros(1), -0.5).nanos(),
            EstimateLog2Quantile({4, 0, 0, 0}, Duration::Micros(1), 0.0).nanos());
  EXPECT_EQ(EstimateLog2Quantile({0, 4, 0, 0}, Duration::Micros(1), 2.0).nanos(), 2000);
}

}  // namespace
}  // namespace faasnap

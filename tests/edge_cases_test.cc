// Edge cases and failure injection across the stack: degenerate snapshots,
// boundary inputs, misconfiguration, and corrupted artifacts.

#include <gtest/gtest.h>

#include "src/core/loading_set_builder.h"
#include "src/runtime/platform.h"
#include "src/core/prefetch_loader.h"
#include "src/snapshot/serialization.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

// A snapshot with an empty REAP working set: REAP must still restore (its fetch
// is skipped) and serve everything through userfaultfd.
TEST(EdgeCases, ReapWithEmptyWorkingSetStillServes) {
  Platform platform(TestConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  snapshot.reap_ws.guest_pages.clear();  // inject: empty working set file
  platform.DropCaches();
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kReap, generator, MakeInputA(*spec));
  EXPECT_TRUE(report.fetch_bytes.is_zero());
  EXPECT_GT(report.faults.count(FaultClass::kUffdHandled), 1000);
}

// A snapshot with an empty loading set: FaaSnap degrades to per-region mapping
// with no prefetch, but must stay correct.
TEST(EdgeCases, FaasnapWithEmptyLoadingSetStillServes) {
  Platform platform(TestConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  snapshot.loading_set.regions.clear();
  snapshot.loading_set.total_pages = PageCount::FromPages(0);
  platform.DropCaches();
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputA(*spec));
  EXPECT_TRUE(report.fetch_bytes.is_zero());
  // Without prefetch the guest pays majors itself but completes.
  EXPECT_GT(report.faults.count(FaultClass::kMajor), 0);
}

// Scaled input at the extreme low end (1/16x) still produces a valid trace.
TEST(EdgeCases, TinyScaledInput) {
  Result<FunctionSpec> spec = FindFunction("pagerank");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, GuestLayout::Default2GiB());
  InvocationTrace trace = generator.Generate(MakeScaledInput(*spec, 1.0 / 16.0, 5));
  EXPECT_GT(trace.ops.size(), spec->stable_pages.value());  // stable + a few input pages
  EXPECT_GT(trace.TotalCompute(), Duration::Zero());
}

// Scaled input beyond the window zone clamps instead of overflowing.
TEST(EdgeCases, OversizedScaledInputClampsToWindowZone) {
  Result<FunctionSpec> spec = FindFunction("pagerank");
  ASSERT_TRUE(spec.ok());
  GuestLayout layout = GuestLayout::Default2GiB();
  TraceGenerator generator(*spec, layout);
  InvocationTrace trace = generator.Generate(MakeScaledInput(*spec, 64.0, 5));
  for (const TraceOp& op : trace.ops) {
    ASSERT_LT(op.page, layout.total_pages.value());
  }
}

TEST(EdgeCasesDeathTest, RemotePlacementWithoutRemoteDiskAborts) {
  PlatformConfig config;
  config.placement.memory_files = StorageTier::kRemote;  // but no remote_disk
  EXPECT_DEATH(Platform platform(config), "remote placement requires");
}

TEST(EdgeCases, MergeThresholdZeroProducesManyRegionsButWorks) {
  PlatformConfig config = TestConfig();
  config.loading_set.merge_gap_pages = PageCount::Zero();
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction("hello-world");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  EXPECT_GT(snapshot.loading_set.regions.size(), 200u);
  platform.DropCaches();
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputA(*spec));
  // Hundreds of extra mmap calls, still a working restore.
  EXPECT_GT(report.mmap_calls, snapshot.loading_set.regions.size());
  EXPECT_GT(report.invocation_time, Duration::Zero());
}

TEST(EdgeCases, GiantGroupSizeDegradesToSingleGroup) {
  PlatformConfig config = TestConfig();
  config.ws_group_size = 1u << 30;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  EXPECT_EQ(snapshot.ws_groups.groups.size(), 1u);  // only the final scan
}

TEST(EdgeCases, CorruptedManifestRejectedAtEveryByte) {
  LoadingSetFile ls;
  ls.regions = {LoadingRegion{{10, 4}, 0, 0}, LoadingRegion{{100, 2}, 1, 4}};
  ls.total_pages = PageCount::FromPages(6);
  const std::vector<uint8_t> good = EncodeLoadingSetManifest(ls);
  ASSERT_TRUE(DecodeLoadingSetManifest(good).ok());
  // Flip one bit at a sample of offsets: decode must never succeed or crash.
  for (size_t offset = 0; offset < good.size(); offset += 3) {
    std::vector<uint8_t> bad = good;
    bad[offset] ^= 0x40;
    Result<LoadingSetFile> decoded = DecodeLoadingSetManifest(bad);
    EXPECT_FALSE(decoded.ok()) << "offset " << offset;
  }
}

TEST(EdgeCases, BackToBackInvocationsReuseWarmCache) {
  // Without DropCaches between invocations, the second Firecracker run is served
  // almost entirely from the page cache the first one populated.
  Platform platform(TestConfig());
  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  InvocationReport cold =
      platform.Invoke(snapshot, RestoreMode::kFirecracker, generator, MakeInputA(*spec));
  InvocationReport warm_cache =
      platform.Invoke(snapshot, RestoreMode::kFirecracker, generator, MakeInputA(*spec));
  EXPECT_GT(cold.faults.count(FaultClass::kMajor), 100);
  EXPECT_EQ(warm_cache.faults.count(FaultClass::kMajor), 0);
  EXPECT_LT(warm_cache.total_time(), cold.total_time());
}

TEST(EdgeCases, RecordWithInputBThenTestWithInputA) {
  // The reverse direction of Figure 6 must also hold structurally.
  Platform platform(TestConfig());
  Result<FunctionSpec> spec = FindFunction("chameleon");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputB(*spec));
  platform.DropCaches();
  InvocationReport faasnap =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputA(*spec));
  platform.DropCaches();
  InvocationReport fc =
      platform.Invoke(snapshot, RestoreMode::kFirecracker, generator, MakeInputA(*spec));
  EXPECT_LT(faasnap.total_time(), fc.total_time());
}

TEST(EdgeCases, SnapshotsFromDifferentFunctionsDoNotInterfere) {
  // One platform, two functions: their files and caches are independent.
  Platform platform(TestConfig());
  Result<FunctionSpec> json_spec = FindFunction("json");
  Result<FunctionSpec> image_spec = FindFunction("image");
  ASSERT_TRUE(json_spec.ok() && image_spec.ok());
  TraceGenerator json_gen(*json_spec, platform.config().layout);
  TraceGenerator image_gen(*image_spec, platform.config().layout);
  FunctionSnapshot json_snap = platform.Record(json_gen, MakeInputA(*json_spec));
  FunctionSnapshot image_snap = platform.Record(image_gen, MakeInputA(*image_spec));
  EXPECT_NE(json_snap.memory_sanitized.id, image_snap.memory_sanitized.id);
  platform.DropCaches();
  InvocationReport a =
      platform.Invoke(json_snap, RestoreMode::kFaasnap, json_gen, MakeInputB(*json_spec));
  InvocationReport b =
      platform.Invoke(image_snap, RestoreMode::kFaasnap, image_gen, MakeInputB(*image_spec));
  EXPECT_EQ(a.function, "json");
  EXPECT_EQ(b.function, "image");
  EXPECT_GT(a.invocation_time, Duration::Zero());
  EXPECT_GT(b.invocation_time, Duration::Zero());
}

}  // namespace
}  // namespace faasnap

// Open-loop serving through the shared engine: concurrent in-flight
// invocations, typed shedding under overload, pressure-driven degradation,
// and determinism of the whole pipeline per seed.

#include <gtest/gtest.h>

#include <vector>

#include "src/obs/observability.h"
#include "src/runtime/host_scheduler.h"
#include "src/runtime/keepalive.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

HostSchedulerConfig OpenLoopConfig() {
  HostSchedulerConfig config;
  config.open_loop = true;
  config.admission.max_concurrency = 4;
  config.admission.queue_capacity = 64;
  config.admission.queue_deadline = Duration::Seconds(10);
  return config;
}

std::vector<Arrival> UniformArrivals(size_t functions, int count, Duration gap) {
  std::vector<Arrival> arrivals;
  for (int i = 0; i < count; ++i) {
    arrivals.push_back(Arrival{static_cast<size_t>(i) % functions, gap});
  }
  return arrivals;
}

TEST(OpenLoopScheduler, TightGapsRunConcurrently) {
  Platform platform(TestConfig());
  HostScheduler scheduler(&platform, OpenLoopConfig());
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("pyaes"));
  HostSchedulerStats stats = scheduler.Run(UniformArrivals(2, 16, Duration::Millis(1)));
  // Arrivals land every 1 ms while a serve takes far longer: the closed loop
  // could never overlap them, the open loop must.
  EXPECT_GT(stats.max_in_flight, 1);
  EXPECT_EQ(stats.arrivals, 16);
  EXPECT_EQ(stats.invocations, 16);
  EXPECT_EQ(stats.shed(), 0);
  EXPECT_GT(stats.queued, 0);  // more than max_concurrency arrived at once
  EXPECT_GT(stats.latency_ms.count(), 0);
}

TEST(OpenLoopScheduler, UnderloadShedsNothing) {
  Platform platform(TestConfig());
  HostScheduler scheduler(&platform, OpenLoopConfig());
  scheduler.AddFunction(*FindFunction("json"));
  HostSchedulerStats stats = scheduler.Run(UniformArrivals(1, 10, Duration::Seconds(2)));
  EXPECT_EQ(stats.invocations, 10);
  EXPECT_EQ(stats.shed(), 0);
  EXPECT_EQ(stats.max_in_flight, 1);
  EXPECT_EQ(stats.warm_hits, 9);  // ample budget: only the first arrival misses
}

TEST(OpenLoopScheduler, OverloadShedsWithTypedOutcomes) {
  Platform platform(TestConfig());
  HostSchedulerConfig config = OpenLoopConfig();
  config.admission.max_concurrency = 1;
  config.admission.queue_capacity = 2;
  config.admission.queue_deadline = Duration::Micros(10);
  HostScheduler scheduler(&platform, config);
  scheduler.AddFunction(*FindFunction("json"));
  // 20 arrivals a microsecond apart against a serve that takes milliseconds:
  // one runs and the rest resolve as typed sheds — queue-full at offer time,
  // deadline for waiters whose 10 us expires (each expiry frees a queue slot,
  // so a later arrival queues in its place and expires in turn).
  HostSchedulerStats stats = scheduler.Run(UniformArrivals(1, 20, Duration::Micros(1)));
  EXPECT_EQ(stats.arrivals, 20);
  EXPECT_EQ(stats.invocations, 1);
  EXPECT_EQ(stats.shed_queue_full, 15);
  EXPECT_EQ(stats.shed_deadline, 4);
  EXPECT_EQ(stats.invocations + stats.shed(), stats.arrivals);
}

TEST(OpenLoopScheduler, ShedMetricsMatchStats) {
  Observability obs;
  Platform platform(TestConfig());
  platform.set_observability(&obs);
  HostSchedulerConfig config = OpenLoopConfig();
  config.admission.max_concurrency = 1;
  config.admission.queue_capacity = 2;
  config.admission.queue_deadline = Duration::Micros(10);
  HostScheduler scheduler(&platform, config);
  scheduler.AddFunction(*FindFunction("json"));
  HostSchedulerStats stats = scheduler.Run(UniformArrivals(1, 12, Duration::Micros(1)));
  EXPECT_GT(stats.shed(), 0);
  EXPECT_EQ(obs.metrics.GetCounter("scheduler.shed", {{"reason", "queue_full"}})->Get(),
            stats.shed_queue_full);
  EXPECT_EQ(obs.metrics.GetCounter("scheduler.shed", {{"reason", "deadline"}})->Get(),
            stats.shed_deadline);
}

TEST(OpenLoopScheduler, SameSeedRunsAreIdentical) {
  auto run = [] {
    Platform platform(TestConfig());
    HostScheduler scheduler(&platform, OpenLoopConfig());
    scheduler.AddFunction(*FindFunction("json"));
    scheduler.AddFunction(*FindFunction("image"));
    std::vector<Arrival> mix =
        ZipfArrivals(2, 60, /*zipf_s=*/1.2, /*mean_gap=*/Duration::Millis(30), /*seed=*/99);
    return scheduler.Run(mix);
  };
  HostSchedulerStats a = run();
  HostSchedulerStats b = run();
  EXPECT_EQ(a.invocations, b.invocations);
  EXPECT_EQ(a.shed_queue_full, b.shed_queue_full);
  EXPECT_EQ(a.shed_deadline, b.shed_deadline);
  EXPECT_EQ(a.warm_hits, b.warm_hits);
  EXPECT_EQ(a.max_in_flight, b.max_in_flight);
  EXPECT_EQ(a.latency_ms.mean(), b.latency_ms.mean());
  EXPECT_EQ(a.queue_wait_ms.mean(), b.queue_wait_ms.mean());
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.drain_time, b.drain_time);
}

TEST(OpenLoopScheduler, MemoryPressureDemotesMissRestores) {
  Platform platform(TestConfig());
  HostSchedulerConfig config = OpenLoopConfig();
  config.miss_mode = RestoreMode::kFaasnap;
  // Budget sized so concurrent in-flight working sets push utilization over
  // the (lowered) ladder thresholds; L2 demotes misses to WS-only REAP. The
  // exit thresholds sit above the idle pool's share so pressure recovers to 0
  // once the in-flight bytes drain.
  config.admission.memory_budget_bytes = MiB(96);
  config.ladder.enter[0] = 0.45;
  config.ladder.enter[1] = 0.55;
  config.ladder.enter[2] = 0.95;
  config.ladder.exit[0] = 0.40;
  config.ladder.exit[1] = 0.50;
  config.ladder.exit[2] = 0.88;
  HostScheduler scheduler(&platform, config);
  scheduler.AddFunction(*FindFunction("json"));
  scheduler.AddFunction(*FindFunction("image"));
  HostSchedulerStats stats = scheduler.Run(UniformArrivals(2, 24, Duration::Millis(1)));
  EXPECT_EQ(stats.invocations + stats.shed(), stats.arrivals);
  EXPECT_GE(stats.max_pressure_level, 2);
  EXPECT_GT(stats.pressure_demotions, 0);
  EXPECT_GT(stats.pressure_transitions, 0);
  // Degradation is not shedding: the ladder engaged without dropping work.
  EXPECT_EQ(stats.shed(), 0);
  // The backlog drains and pressure recovers once arrivals stop.
  EXPECT_EQ(stats.final_pressure_level, 0);
}

TEST(OpenLoopKeepAlive, DelegatesToTheSharedEngine) {
  PlatformConfig platform_config = TestConfig();
  Platform platform(platform_config);
  FunctionSpec spec = *FindFunction("json");
  TraceGenerator generator(spec, platform_config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(spec));
  KeepAliveSimulator simulator(&platform, &snapshot, &generator);
  KeepAliveConfig config;
  config.open_loop = true;
  config.admission.max_concurrency = 4;
  config.admission.queue_capacity = 64;
  config.admission.queue_deadline = Duration::Seconds(10);
  std::vector<Duration> gaps(12, Duration::Millis(1));
  KeepAliveStats stats = simulator.Run(gaps, config);
  EXPECT_EQ(stats.arrivals, 12);
  EXPECT_EQ(stats.invocations + stats.shed(), stats.arrivals);
  EXPECT_GT(stats.max_in_flight, 1);
  EXPECT_EQ(stats.shed(), 0);
  EXPECT_GT(stats.misses, 0);
  EXPECT_GT(stats.miss_latency_ms.count(), 0);
}

TEST(OpenLoopKeepAlive, ClosedLoopIgnoresOpenLoopFields) {
  PlatformConfig platform_config = TestConfig();
  Platform platform(platform_config);
  FunctionSpec spec = *FindFunction("json");
  TraceGenerator generator(spec, platform_config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(spec));
  KeepAliveSimulator simulator(&platform, &snapshot, &generator);
  KeepAliveConfig config;  // open_loop = false
  std::vector<Duration> gaps(5, Duration::Seconds(1));
  KeepAliveStats stats = simulator.Run(gaps, config);
  EXPECT_EQ(stats.invocations, 5);
  EXPECT_EQ(stats.arrivals, 0);  // open-loop counters stay zero
  EXPECT_EQ(stats.shed(), 0);
  EXPECT_EQ(stats.max_in_flight, 0);
}

}  // namespace
}  // namespace faasnap

// Chaos runs are as reproducible as fault-free ones: the same seed must yield
// the same fault schedule, the same per-invocation outcomes and timings, and a
// bit-identical metrics snapshot. Mirrors tests/obs_determinism_test.cc, which
// makes the equivalent guarantee for tracing; together they mean a failure
// found in a chaos run can be replayed exactly by seed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/runtime/platform.h"
#include "src/obs/observability.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig ChaosConfigFor(uint64_t seed, bool enabled) {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  // Memory files on a remote tier so outage windows have a target.
  config.remote_disk = EbsIo2Profile();
  config.placement.memory_files = StorageTier::kRemote;
  config.seed = seed;
  config.chaos.enabled = enabled;
  config.chaos.seed = seed;
  config.chaos.read_error_rate = 0.05;
  config.chaos.read_delay_rate = 0.10;
  config.chaos.read_delay = Duration::Millis(2);
  config.chaos.corrupt_file_rate = 0.15;
  config.chaos.loader_stall_rate = 0.10;
  config.chaos.loader_stall = Duration::Millis(1);
  config.chaos.remote_outage_mean_gap = Duration::Millis(20);
  config.chaos.remote_outage_duration = Duration::Millis(5);
  return config;
}

struct ChaosRun {
  std::vector<std::string> tags;       // per-invocation OutcomeTag()
  std::vector<int64_t> total_ns;       // per-invocation total time
  std::string metrics_json;
  StorageFaultStats fault_stats;
};

ChaosRun RunWorkload(const PlatformConfig& config) {
  Platform platform(config);
  Observability obs;
  platform.set_observability(&obs);

  const std::vector<std::string> functions = {"json", "hello-world"};
  const std::vector<RestoreMode> modes = {RestoreMode::kFaasnap, RestoreMode::kReap,
                                          RestoreMode::kFirecracker,
                                          RestoreMode::kFaasnapPerRegion};
  struct Registered {
    TraceGenerator generator;
    FunctionSnapshot snapshot;
  };
  std::vector<Registered> registered;
  for (const std::string& name : functions) {
    Result<FunctionSpec> spec = FindFunction(name);
    FAASNAP_CHECK_OK(spec.status());
    TraceGenerator generator(*spec, config.layout);
    FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
    registered.push_back(Registered{std::move(generator), std::move(snapshot)});
  }

  ChaosRun run;
  for (int i = 0; i < 16; ++i) {
    Registered& r = registered[static_cast<size_t>(i) % registered.size()];
    platform.DropCaches();
    InvocationReport report =
        platform.Invoke(r.snapshot, modes[static_cast<size_t>(i) % modes.size()],
                        r.generator, MakeInputA(r.generator.spec()));
    run.tags.push_back(report.OutcomeTag());
    run.total_ns.push_back(report.total_time().nanos());
  }
  run.metrics_json = obs.metrics.ToJson();
  run.fault_stats = platform.storage()->fault_stats();
  return run;
}

TEST(ChaosDeterminism, SameSeedIsBitIdentical) {
  const ChaosRun a = RunWorkload(ChaosConfigFor(0xC4A05, /*enabled=*/true));
  const ChaosRun b = RunWorkload(ChaosConfigFor(0xC4A05, /*enabled=*/true));
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.total_ns, b.total_ns);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.fault_stats.retries, b.fault_stats.retries);
  EXPECT_EQ(a.fault_stats.failovers, b.fault_stats.failovers);
  EXPECT_EQ(a.fault_stats.breaker_opens, b.fault_stats.breaker_opens);
  EXPECT_EQ(a.fault_stats.breaker_fast_fails, b.fault_stats.breaker_fast_fails);
  EXPECT_EQ(a.fault_stats.failed_reads, b.fault_stats.failed_reads);
}

TEST(ChaosDeterminism, InjectionActuallyFiresAtTheseRates) {
  // Guards the suite against silently-disarmed injection: at these rates the
  // schedule must perturb something (a retried read, a failed read, or a
  // non-ok outcome), deterministically per seed.
  const ChaosRun run = RunWorkload(ChaosConfigFor(0xC4A05, /*enabled=*/true));
  bool any_non_ok = false;
  for (const std::string& tag : run.tags) {
    any_non_ok = any_non_ok || tag != "ok";
  }
  EXPECT_TRUE(any_non_ok || run.fault_stats.retries > 0 || run.fault_stats.failed_reads > 0);
}

TEST(ChaosDeterminism, DisabledChaosIsZeroCost) {
  // chaos.enabled = false with every rate still configured must behave exactly
  // like a platform that never heard of chaos: same reports, same metrics
  // snapshot (no fault-handling series), all outcomes ok.
  PlatformConfig plain = ChaosConfigFor(0xC4A05, /*enabled=*/false);
  PlatformConfig never;
  never.disk = plain.disk;
  never.remote_disk = plain.remote_disk;
  never.placement = plain.placement;
  never.seed = plain.seed;
  const ChaosRun off = RunWorkload(plain);
  const ChaosRun baseline = RunWorkload(never);
  EXPECT_EQ(off.tags, baseline.tags);
  EXPECT_EQ(off.total_ns, baseline.total_ns);
  EXPECT_EQ(off.metrics_json, baseline.metrics_json);
  for (const std::string& tag : off.tags) {
    EXPECT_EQ(tag, "ok");
  }
  EXPECT_EQ(off.fault_stats.retries, 0u);
  EXPECT_EQ(off.fault_stats.failed_reads, 0u);
}

TEST(ChaosDeterminism, DifferentSeedsDrawDifferentSchedules) {
  const ChaosRun a = RunWorkload(ChaosConfigFor(1, /*enabled=*/true));
  const ChaosRun b = RunWorkload(ChaosConfigFor(2, /*enabled=*/true));
  // Deterministic per seed, but the schedules (and so the metrics) diverge.
  EXPECT_NE(a.metrics_json, b.metrics_json);
}

}  // namespace
}  // namespace faasnap

#include "src/obs/span_tracer.h"

#include <gtest/gtest.h>

#include "src/obs/observability.h"

namespace faasnap {
namespace {

TEST(SpanTracer, NestingAndParenting) {
  SpanTracer spans;
  const SpanId root = spans.Begin(SimTime::FromNanos(0), ObsLane::kDaemon, "invoke");
  const SpanId child =
      spans.Begin(SimTime::FromNanos(10), ObsLane::kVcpu, "fault", /*arg0=*/42, 0, root);
  const SpanId grandchild =
      spans.Begin(SimTime::FromNanos(20), ObsLane::kDisk, "disk.read", 0, 4096, child);
  spans.End(grandchild, SimTime::FromNanos(30));
  spans.End(child, SimTime::FromNanos(40), /*arg1=*/2);
  spans.End(root, SimTime::FromNanos(50));

  ASSERT_EQ(spans.records().size(), 3u);
  const SpanRecord& r = spans.record(root);
  const SpanRecord& c = spans.record(child);
  const SpanRecord& g = spans.record(grandchild);
  EXPECT_EQ(r.parent, kNoSpan);
  EXPECT_EQ(c.parent, root);
  EXPECT_EQ(g.parent, child);
  EXPECT_FALSE(r.open);
  EXPECT_EQ(c.start.nanos(), 10);
  EXPECT_EQ(c.end.nanos(), 40);
  EXPECT_EQ(c.arg0, 42u);
  EXPECT_EQ(c.arg1, 2u);  // stored by the End overload
  EXPECT_EQ(spans.name(c.name), "fault");
  EXPECT_EQ(c.lane, ObsLane::kVcpu);
}

TEST(SpanTracer, InstantAndComplete) {
  SpanTracer spans;
  spans.Instant(SimTime::FromNanos(5), ObsLane::kDaemon, "setup.done", 7);
  const SpanId done = spans.Complete(SimTime::FromNanos(10), SimTime::FromNanos(20),
                                     ObsLane::kDisk, "disk.read", 0, 4096);
  const SpanRecord& inst = spans.records()[0];
  EXPECT_TRUE(inst.instant);
  EXPECT_FALSE(inst.open);
  EXPECT_EQ(inst.start.nanos(), inst.end.nanos());
  const SpanRecord& comp = spans.record(done);
  EXPECT_FALSE(comp.instant);
  EXPECT_FALSE(comp.open);
  EXPECT_EQ(comp.end.nanos(), 20);
}

TEST(SpanTracer, CountsPastCapacityAndDropsNew) {
  SpanTracer spans(/*capacity=*/2);
  EXPECT_NE(spans.Begin(SimTime::FromNanos(0), ObsLane::kVcpu, "fault"), kNoSpan);
  EXPECT_NE(spans.Begin(SimTime::FromNanos(1), ObsLane::kVcpu, "fault"), kNoSpan);
  const SpanId dropped = spans.Begin(SimTime::FromNanos(2), ObsLane::kVcpu, "fault");
  EXPECT_EQ(dropped, kNoSpan);
  spans.End(dropped, SimTime::FromNanos(3));  // no-op, must not crash
  EXPECT_EQ(spans.records().size(), 2u);
  EXPECT_EQ(spans.dropped_records(), 1u);
  // The analysis keeps the head of the run; counters keep counting past the cap.
  EXPECT_EQ(spans.count("fault"), 3);
}

TEST(SpanTracer, TracksTagRecords) {
  SpanTracer spans;
  spans.Begin(SimTime::FromNanos(0), ObsLane::kVcpu, "fault");
  const uint32_t track = spans.BeginTrack("rep1");
  EXPECT_EQ(track, 1u);
  EXPECT_EQ(spans.current_track(), 1u);
  spans.Begin(SimTime::FromNanos(0), ObsLane::kVcpu, "fault");
  EXPECT_EQ(spans.records()[0].track, 0u);
  EXPECT_EQ(spans.records()[1].track, 1u);
  ASSERT_EQ(spans.track_names().size(), 2u);
  EXPECT_EQ(spans.track_names()[1], "rep1");
}

TEST(SpanTracer, ClearResetsEverything) {
  SpanTracer spans;
  spans.BeginTrack("rep1");
  spans.Begin(SimTime::FromNanos(0), ObsLane::kVcpu, "fault");
  const uint64_t rev = spans.revision();
  spans.Clear();
  EXPECT_TRUE(spans.records().empty());
  EXPECT_EQ(spans.count("fault"), 0);
  EXPECT_EQ(spans.current_track(), 0u);
  EXPECT_EQ(spans.track_names().size(), 1u);
  EXPECT_NE(spans.revision(), rev);
}

TEST(SpanTracer, LaneNamesAreStable) {
  EXPECT_EQ(ObsLaneName(ObsLane::kVcpu), "vCPU");
  EXPECT_EQ(ObsLaneName(ObsLane::kLoader), "loader");
  EXPECT_EQ(ObsLaneName(ObsLane::kUffd), "uffd");
  EXPECT_EQ(ObsLaneName(ObsLane::kDisk), "disk");
}

}  // namespace
}  // namespace faasnap

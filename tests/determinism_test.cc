// Determinism: the simulation is bit-reproducible for a fixed seed, and only the
// seeded jitter varies across seeds. Reproducibility is what makes every bench
// result auditable.

#include <gtest/gtest.h>

#include "src/runtime/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

InvocationReport RunOnce(uint64_t seed, RestoreMode mode, double jitter) {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = jitter;
  config.disk = disk;
  config.seed = seed;
  Platform platform(config);
  Result<FunctionSpec> spec = FindFunction("image");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  return platform.Invoke(snapshot, mode, generator, MakeInputB(*spec));
}

class DeterminismTest : public ::testing::TestWithParam<RestoreMode> {};

TEST_P(DeterminismTest, SameSeedGivesIdenticalRuns) {
  const RestoreMode mode = GetParam();
  InvocationReport a = RunOnce(7, mode, /*jitter=*/0.08);
  InvocationReport b = RunOnce(7, mode, /*jitter=*/0.08);
  EXPECT_EQ(a.total_time(), b.total_time());
  EXPECT_EQ(a.setup_time, b.setup_time);
  EXPECT_EQ(a.faults.total_faults(), b.faults.total_faults());
  EXPECT_EQ(a.faults.total_fault_time, b.faults.total_fault_time);
  EXPECT_EQ(a.disk.read_requests, b.disk.read_requests);
  EXPECT_EQ(a.disk.bytes_read, b.disk.bytes_read);
  EXPECT_EQ(a.fetch_bytes, b.fetch_bytes);
  EXPECT_EQ(a.mmap_calls, b.mmap_calls);
}

TEST_P(DeterminismTest, DifferentSeedsDifferOnlyThroughJitter) {
  const RestoreMode mode = GetParam();
  InvocationReport a = RunOnce(7, mode, /*jitter=*/0.08);
  InvocationReport b = RunOnce(8, mode, /*jitter=*/0.08);
  // Same workload: identical page behavior...
  EXPECT_EQ(a.faults.total_faults(), b.faults.total_faults());
  EXPECT_EQ(a.fetch_bytes, b.fetch_bytes);
  // ...but jittered device latencies shift the disk-bound paths. For FaaSnap the
  // guest may be fully decoupled from the disk (the loader absorbs the jitter),
  // so check the loader's fetch time there and end-to-end time elsewhere.
  if (mode == RestoreMode::kFaasnap) {
    EXPECT_NE(a.fetch_time, b.fetch_time);
  } else if (a.disk.read_requests > 0) {
    EXPECT_NE(a.total_time(), b.total_time());
  }
}

TEST_P(DeterminismTest, ZeroJitterIsSeedInvariant) {
  const RestoreMode mode = GetParam();
  InvocationReport a = RunOnce(7, mode, /*jitter=*/0.0);
  InvocationReport b = RunOnce(8, mode, /*jitter=*/0.0);
  EXPECT_EQ(a.total_time(), b.total_time());
}

INSTANTIATE_TEST_SUITE_P(Modes, DeterminismTest,
                         ::testing::Values(RestoreMode::kFirecracker, RestoreMode::kReap,
                                           RestoreMode::kFaasnap, RestoreMode::kCached),
                         [](const ::testing::TestParamInfo<RestoreMode>& param_info) {
                           std::string name(RestoreModeName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(DeterminismBurst, AsyncInterleavingIsReproducible) {
  auto run_burst = [](uint64_t seed) {
    PlatformConfig config;
    config.seed = seed;
    Platform platform(config);
    Result<FunctionSpec> spec = FindFunction("json");
    FAASNAP_CHECK_OK(spec.status());
    TraceGenerator generator(*spec, config.layout);
    FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
    platform.DropCaches();
    std::vector<int64_t> completions;
    for (int i = 0; i < 8; ++i) {
      WorkloadInput input = MakeInputA(*spec);
      input.content_seed = 0xBEEF + static_cast<uint64_t>(i);
      platform.InvokeAsync(snapshot, RestoreMode::kFaasnap, generator.Generate(input),
                           [&](InvocationReport r) {
                             completions.push_back(r.total_time().nanos());
                           });
    }
    platform.sim()->Run();
    return completions;
  };
  EXPECT_EQ(run_burst(3), run_burst(3));
}

}  // namespace
}  // namespace faasnap

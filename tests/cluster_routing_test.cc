// Locality-aware routing: warm > cached > cold placement, load spill, and
// memory-budget fit — plus the end-to-end claim that locality routing beats
// the no-information baselines on cold-start rate at the same memory budget.

#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/cluster.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

HostView MakeHost(int64_t outstanding, std::vector<FunctionResidency> residency,
                  ByteCount pool_bytes = ByteCount::Zero(), ByteCount budget = GiB(1)) {
  HostView view;
  view.outstanding = outstanding;
  view.pool_bytes = pool_bytes;
  view.pool_budget = budget;
  view.residency = std::move(residency);
  return view;
}

ClusterRouter LocalityRouter(int64_t spill = 8) {
  RouterConfig config;
  config.policy = RoutingPolicy::kLocality;
  config.spill_outstanding = spill;
  return ClusterRouter(config);
}

TEST(ClusterRouting, PrefersWarmOverCachedOverCold) {
  ClusterRouter router = LocalityRouter();
  const std::vector<HostView> hosts = {
      MakeHost(3, {FunctionResidency::kCold}),
      MakeHost(3, {FunctionResidency::kCached}),
      MakeHost(3, {FunctionResidency::kWarm}),
  };
  EXPECT_EQ(router.Route(0, MiB(64), hosts), 2u);  // warm wins
  EXPECT_EQ(router.stats().warm_routes, 1);

  const std::vector<HostView> no_warm = {
      MakeHost(3, {FunctionResidency::kCold}),
      MakeHost(3, {FunctionResidency::kCached}),
      MakeHost(3, {FunctionResidency::kCold}),
  };
  EXPECT_EQ(router.Route(0, MiB(64), no_warm), 1u);  // cached next
  EXPECT_EQ(router.stats().cached_routes, 1);
}

TEST(ClusterRouting, LeastOutstandingWinsWithinTierTiesToLowestIndex) {
  ClusterRouter router = LocalityRouter();
  const std::vector<HostView> hosts = {
      MakeHost(5, {FunctionResidency::kWarm}),
      MakeHost(2, {FunctionResidency::kWarm}),
      MakeHost(2, {FunctionResidency::kWarm}),
  };
  EXPECT_EQ(router.Route(0, MiB(64), hosts), 1u);  // least loaded, lowest index
}

TEST(ClusterRouting, SpillsOffSaturatedWarmHost) {
  ClusterRouter router = LocalityRouter(/*spill=*/4);
  const std::vector<HostView> hosts = {
      MakeHost(4, {FunctionResidency::kWarm}),  // at threshold: no longer attracts
      MakeHost(1, {FunctionResidency::kCold}),
  };
  EXPECT_EQ(router.Route(0, MiB(64), hosts), 1u);
  EXPECT_EQ(router.stats().spills, 1);
  EXPECT_EQ(router.stats().warm_routes, 0);
}

TEST(ClusterRouting, ColdPlacementRespectsPoolBudget) {
  ClusterRouter router = LocalityRouter();
  // Host 0 is emptier but its pool cannot fit the working set; host 1 can.
  const std::vector<HostView> hosts = {
      MakeHost(0, {FunctionResidency::kCold}, /*pool_bytes=*/MiB(1000), /*budget=*/GiB(1)),
      MakeHost(2, {FunctionResidency::kCold}, /*pool_bytes=*/MiB(100), /*budget=*/GiB(1)),
  };
  EXPECT_EQ(router.Route(0, MiB(64), hosts), 1u);
  EXPECT_EQ(router.stats().cold_routes, 1);
  // When nothing fits, fall back to least outstanding overall.
  const std::vector<HostView> none_fit = {
      MakeHost(7, {FunctionResidency::kCold}, MiB(1000), GiB(1)),
      MakeHost(2, {FunctionResidency::kCold}, MiB(1020), GiB(1)),
  };
  EXPECT_EQ(router.Route(0, MiB(64), none_fit), 1u);
}

TEST(ClusterRouting, RoundRobinCyclesAndRandomStaysInRange) {
  RouterConfig rr;
  rr.policy = RoutingPolicy::kRoundRobin;
  ClusterRouter rr_router(rr);
  const std::vector<HostView> hosts = {
      MakeHost(0, {FunctionResidency::kCold}),
      MakeHost(0, {FunctionResidency::kCold}),
      MakeHost(0, {FunctionResidency::kCold}),
  };
  EXPECT_EQ(rr_router.Route(0, MiB(1), hosts), 0u);
  EXPECT_EQ(rr_router.Route(0, MiB(1), hosts), 1u);
  EXPECT_EQ(rr_router.Route(0, MiB(1), hosts), 2u);
  EXPECT_EQ(rr_router.Route(0, MiB(1), hosts), 0u);

  RouterConfig rnd;
  rnd.policy = RoutingPolicy::kRandom;
  ClusterRouter random_router(rnd);
  for (int i = 0; i < 64; ++i) {
    EXPECT_LT(random_router.Route(0, MiB(1), hosts), hosts.size());
  }
}

// End to end: at a fixed per-host memory budget that cannot hold every
// function warm, locality routing concentrates each function's invocations on
// the hosts already holding its VM/snapshot, so the cluster cold-starts less
// than random placement on the same offered load. The load is light enough
// that warmth (not same-function concurrency) decides hits, and the pool is
// tight enough that random placement churns every host's LRU.
TEST(ClusterRouting, LocalityBeatsRandomOnColdStartRate) {
  const auto run = [](RoutingPolicy policy) {
    ClusterConfig config;
    config.hosts = 4;
    config.worker_threads = 2;
    config.sync_quantum = Duration::Millis(5);
    BlockDeviceProfile disk = NvmeSsdProfile();
    disk.jitter = 0.0;
    config.platform.disk = disk;
    config.host.warm_pool_budget_bytes = MiB(64);  // ~3 warm VMs; 8 functions
    config.host.admission.max_concurrency = 4;
    config.router.policy = policy;
    ClusterSimulator cluster(config);
    size_t functions = 0;
    for (const char* name : {"hello-world", "read-list", "mmap", "json", "image", "pyaes",
                             "chameleon", "compression"}) {
      cluster.AddFunction(*FindFunction(name));
      ++functions;
    }
    ArrivalMixConfig mix;
    mix.mean_gap = Duration::Millis(20);
    ClusterStats stats = cluster.Run(SampleArrivalMix(functions, 400, mix, 7));
    EXPECT_EQ(stats.arrivals, 400);
    return stats;
  };
  const ClusterStats locality = run(RoutingPolicy::kLocality);
  const ClusterStats random = run(RoutingPolicy::kRandom);
  EXPECT_LT(locality.cold_start_rate(), random.cold_start_rate());
  EXPECT_GT(locality.routing.warm_routes, 0);
}

}  // namespace
}  // namespace faasnap

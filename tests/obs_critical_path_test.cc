#include "src/obs/critical_path.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/json.h"
#include "src/obs/observability.h"
#include "src/obs/trace_export.h"
#include "src/runtime/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

struct TracedRun {
  InvocationReport report;
  CriticalPathBreakdown breakdown;
};

TracedRun RunColdStart(RestoreMode mode) {
  PlatformConfig config;
  config.disk = NvmeSsdProfile();
  Platform platform(config);
  Observability obs;
  platform.set_observability(&obs);
  Result<FunctionSpec> spec = FindFunction("json");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  obs.spans.Clear();
  InvocationReport report =
      platform.Invoke(snapshot, mode, generator, MakeInputB(*spec));
  std::optional<CriticalPathBreakdown> breakdown = AnalyzeColdStart(obs.spans);
  FAASNAP_CHECK(breakdown.has_value());
  return {report, *breakdown};
}

class CriticalPathTest : public ::testing::TestWithParam<RestoreMode> {};

TEST_P(CriticalPathTest, ComponentsSumToColdStartDuration) {
  TracedRun run = RunColdStart(GetParam());
  // The partition is exact by construction: every instant in the invoke window
  // lands in exactly one bucket.
  EXPECT_EQ(run.breakdown.Sum().nanos(), run.breakdown.total.nanos());
  // And the invoke span tracks the report's end-to-end time within 1%.
  const int64_t reported = run.report.total_time().nanos();
  ASSERT_GT(reported, 0);
  const int64_t delta = std::abs(run.breakdown.total.nanos() - reported);
  EXPECT_LE(delta * 100, reported) << "breakdown total " << run.breakdown.total.nanos()
                                   << "ns vs report " << reported << "ns";
}

TEST_P(CriticalPathTest, AttributesFaultsAndGuestTime) {
  TracedRun run = RunColdStart(GetParam());
  EXPECT_EQ(run.breakdown.faults, run.report.faults.total_faults());
  EXPECT_GT(run.breakdown.guest_run.nanos(), 0);
  if (run.report.faults.total_faults() > 0) {
    EXPECT_GT((run.breakdown.fault_cpu + run.breakdown.uffd_wait +
               run.breakdown.disk_wait)
                  .nanos(),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CriticalPathTest,
                         ::testing::Values(RestoreMode::kFirecracker,
                                           RestoreMode::kReap, RestoreMode::kFaasnap),
                         [](const ::testing::TestParamInfo<RestoreMode>& param_info) {
                           std::string name(RestoreModeName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(CriticalPath, ReapSetupWaitsOnDiskFaasnapShiftsToLoader) {
  TracedRun reap = RunColdStart(RestoreMode::kReap);
  // REAP prefetches the working set during setup, so setup is disk-bound.
  EXPECT_GT(reap.breakdown.setup_disk.nanos(), 0);
  TracedRun faasnap = RunColdStart(RestoreMode::kFaasnap);
  // FaaSnap starts the guest immediately: setup is far shorter than REAP's
  // blocking prefetch (the loader's reads overlap guest execution instead).
  const Duration reap_setup = reap.breakdown.setup_cpu + reap.breakdown.setup_disk;
  const Duration faasnap_setup =
      faasnap.breakdown.setup_cpu + faasnap.breakdown.setup_disk;
  EXPECT_LT(faasnap_setup.nanos(), reap_setup.nanos());
  EXPECT_GT(faasnap.breakdown.disk_reads, 0);
  EXPECT_GT(faasnap.breakdown.guest_run.nanos(), 0);
}

// The partition property is not an ok-path artifact: a demoted restore (smem
// corrupt, falls back to vanilla paging) and an outright failure (memory file
// corrupt, plan rejected before setup) both leave analyzable invoke spans
// whose phases still sum exactly to the invoke window.
TEST(CriticalPath, DegradedInvocationPartitionsExactly) {
  PlatformConfig config;
  config.disk = NvmeSsdProfile();
  Platform platform(config);
  Observability obs;
  platform.set_observability(&obs);
  Result<FunctionSpec> spec = FindFunction("json");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.store()->CorruptForTesting(snapshot.memory_sanitized.id);
  platform.DropCaches();
  obs.spans.Clear();
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputB(*spec));
  ASSERT_EQ(report.outcome, InvocationOutcome::kDegraded);
  std::optional<CriticalPathBreakdown> breakdown = AnalyzeColdStart(obs.spans);
  ASSERT_TRUE(breakdown.has_value());
  EXPECT_EQ(breakdown->Sum().nanos(), breakdown->total.nanos());
  // The demoted run pages on demand: guest time and faults are still present.
  EXPECT_GT(breakdown->guest_run.nanos(), 0);
  EXPECT_EQ(breakdown->faults, report.faults.total_faults());
  // The outcome tag rides the invoke span (arg1) into the exported trace.
  const std::string trace = ExportChromeTrace(obs.spans);
  EXPECT_NE(trace.find("\"outcome\":1"), std::string::npos) << trace.substr(0, 400);
}

TEST(CriticalPath, FailedInvocationPartitionsExactly) {
  PlatformConfig config;
  config.disk = NvmeSsdProfile();
  Platform platform(config);
  Observability obs;
  platform.set_observability(&obs);
  Result<FunctionSpec> spec = FindFunction("json");
  FAASNAP_CHECK_OK(spec.status());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.store()->CorruptForTesting(snapshot.memory_vanilla.id);
  platform.DropCaches();
  obs.spans.Clear();
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFirecracker, generator, MakeInputB(*spec));
  ASSERT_EQ(report.outcome, InvocationOutcome::kFailed);
  std::optional<CriticalPathBreakdown> breakdown = AnalyzeColdStart(obs.spans);
  ASSERT_TRUE(breakdown.has_value());
  EXPECT_EQ(breakdown->Sum().nanos(), breakdown->total.nanos());
  // Rejected at plan time: the whole window is dispatch + other, no guest run.
  EXPECT_EQ(breakdown->guest_run.nanos(), 0);
  EXPECT_EQ(breakdown->faults, 0);
  const std::string trace = ExportChromeTrace(obs.spans);
  EXPECT_NE(trace.find("\"outcome\":2"), std::string::npos) << trace.substr(0, 400);
}

TEST(CriticalPath, MissingInvokeSpanYieldsNullopt) {
  SpanTracer spans;
  EXPECT_FALSE(AnalyzeColdStart(spans).has_value());
  // An open invoke span is not analyzable either.
  spans.Begin(SimTime::FromNanos(0), ObsLane::kDaemon, "invoke");
  EXPECT_FALSE(AnalyzeColdStart(spans).has_value());
}

TEST(CriticalPath, RenderersEmitEveryBucket) {
  TracedRun run = RunColdStart(RestoreMode::kFaasnap);
  const std::string text = CriticalPathToString(run.breakdown);
  // "other" is only rendered when nonzero, so it is checked via JSON below.
  for (const char* key : {"dispatch", "setup_cpu", "setup_disk", "guest_run",
                          "fault_cpu", "uffd_wait", "disk_wait"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
  Result<JsonValue> json = ParseJson(CriticalPathToJson(run.breakdown));
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(json->GetIntOr("total_ns", -1), run.breakdown.total.nanos());
  EXPECT_EQ(json->GetIntOr("faults", -1), run.breakdown.faults);
}

}  // namespace
}  // namespace faasnap

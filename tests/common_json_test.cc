#include "src/common/json.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(*ParseJson("true")->AsBool(), true);
  EXPECT_EQ(*ParseJson("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(*ParseJson("3.5")->AsDouble(), 3.5);
  EXPECT_EQ(*ParseJson("-42")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(*ParseJson("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(*ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParse, WhitespaceTolerant) {
  Result<JsonValue> v = ParseJson("  {\n \"a\" : [ 1 , 2 ]\t}\n ");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Get("a")->array().size(), 2u);
}

TEST(JsonParse, NestedDocument) {
  const std::string doc = R"({
    "name": "test",
    "functions": ["json", "image"],
    "reps": 3,
    "nested": {"deep": {"value": true}},
    "mixed": [1, "two", null, {"x": -1.5}]
  })";
  Result<JsonValue> v = ParseJson(doc);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v->Get("name")->AsString(), "test");
  EXPECT_EQ(v->Get("functions")->array().size(), 2u);
  EXPECT_EQ(*v->Get("reps")->AsInt(), 3);
  EXPECT_EQ(*v->Get("nested")->Get("deep")->Get("value")->AsBool(), true);
  const JsonArray mixed = v->Get("mixed")->array();  // copy: Get returns a temporary
  ASSERT_EQ(mixed.size(), 4u);
  EXPECT_TRUE(mixed[2].is_null());
  EXPECT_DOUBLE_EQ(*mixed[3].Get("x")->AsDouble(), -1.5);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(*ParseJson(R"("a\"b\\c\nd\te")")->AsString(), "a\"b\\c\nd\te");
  EXPECT_EQ(*ParseJson(R"("Aé")")->AsString(), "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
                          "[1 2]", "{\"a\":1,}", "01a", "nan", "--3", "1 2"}) {
    Result<JsonValue> v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
  }
}

TEST(JsonParse, ErrorsCarryOffset) {
  Result<JsonValue> v = ParseJson("{\"a\": qqq}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("offset"), std::string::npos);
}

TEST(JsonValueAccess, TypeChecks) {
  JsonValue v = *ParseJson(R"({"s":"x","n":1.5,"i":7,"b":true,"a":[],"o":{}})");
  EXPECT_FALSE(v.Get("s")->AsBool().ok());
  EXPECT_FALSE(v.Get("n")->AsInt().ok());  // non-integral
  EXPECT_TRUE(v.Get("i")->AsInt().ok());
  EXPECT_FALSE(v.Get("b")->AsString().ok());
  EXPECT_TRUE(v.Get("a")->is_array());
  EXPECT_TRUE(v.Get("o")->is_object());
  EXPECT_FALSE(v.Get("missing").ok());
  EXPECT_TRUE(v.Has("s"));
  EXPECT_FALSE(v.Has("zzz"));
}

TEST(JsonValueAccess, DefaultedGetters) {
  JsonValue v = *ParseJson(R"({"s":"x","i":7,"b":true})");
  EXPECT_EQ(v.GetStringOr("s", "d"), "x");
  EXPECT_EQ(v.GetStringOr("zzz", "d"), "d");
  EXPECT_EQ(v.GetIntOr("i", 0), 7);
  EXPECT_EQ(v.GetIntOr("zzz", 9), 9);
  EXPECT_EQ(v.GetBoolOr("b", false), true);
  EXPECT_EQ(v.GetBoolOr("zzz", true), true);
  EXPECT_DOUBLE_EQ(v.GetNumberOr("zzz", 2.5), 2.5);
  // Wrong-typed fields fall back too.
  EXPECT_EQ(v.GetIntOr("s", 3), 3);
}

}  // namespace
}  // namespace faasnap

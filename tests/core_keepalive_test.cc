#include "src/runtime/keepalive.h"

#include <gtest/gtest.h>

#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

TEST(PoissonArrivalGaps, MeanIsApproximatelyRight) {
  const std::vector<Duration> gaps = PoissonArrivalGaps(Duration::Seconds(10), 2000, 7);
  ASSERT_EQ(gaps.size(), 2000u);
  double sum = 0;
  for (const Duration& g : gaps) {
    EXPECT_GT(g, Duration::Zero());
    sum += g.seconds();
  }
  EXPECT_NEAR(sum / 2000.0, 10.0, 1.0);
}

TEST(PoissonArrivalGaps, DeterministicPerSeed) {
  const auto a = PoissonArrivalGaps(Duration::Seconds(5), 10, 1);
  const auto b = PoissonArrivalGaps(Duration::Seconds(5), 10, 1);
  const auto c = PoissonArrivalGaps(Duration::Seconds(5), 10, 2);
  EXPECT_EQ(a[3], b[3]);
  EXPECT_NE(a[3], c[3]);
}

class KeepAliveTest : public ::testing::Test {
 protected:
  KeepAliveTest()
      : platform_(TestConfig()),
        spec_(*FindFunction("json")),
        generator_(spec_, platform_.config().layout),
        snapshot_(platform_.Record(generator_, MakeInputA(spec_))),
        simulator_(&platform_, &snapshot_, &generator_) {}

  Platform platform_;
  FunctionSpec spec_;
  TraceGenerator generator_;
  FunctionSnapshot snapshot_;
  KeepAliveSimulator simulator_;
};

TEST_F(KeepAliveTest, FrequentArrivalsHitWarm) {
  KeepAliveConfig config;
  config.keep_warm = Duration::Seconds(600);
  config.miss_mode = RestoreMode::kFaasnap;
  // 1-second gaps: everything after the first invocation is warm.
  std::vector<Duration> gaps(10, Duration::Seconds(1));
  KeepAliveStats stats = simulator_.Run(gaps, config);
  EXPECT_EQ(stats.invocations, 10);
  EXPECT_EQ(stats.misses, 1);  // the very first
  EXPECT_EQ(stats.warm_hits, 9);
  EXPECT_GT(stats.avg_warm_resident_bytes, 0.0);
}

TEST_F(KeepAliveTest, SparseArrivalsAlwaysMiss) {
  KeepAliveConfig config;
  config.keep_warm = Duration::Seconds(60);
  config.miss_mode = RestoreMode::kFaasnap;
  std::vector<Duration> gaps(5, Duration::Seconds(3600));  // hourly
  KeepAliveStats stats = simulator_.Run(gaps, config);
  EXPECT_EQ(stats.warm_hits, 0);
  EXPECT_EQ(stats.misses, 5);
  // Idle memory is bounded by the keep-warm window, not the whole hour.
  const double ws_bytes = static_cast<double>(PagesToBytes(snapshot_.record_touched.page_count()));
  EXPECT_LT(stats.avg_warm_resident_bytes, ws_bytes * 0.05);
}

TEST_F(KeepAliveTest, WarmHitsAreFasterThanMisses) {
  KeepAliveConfig config;
  config.keep_warm = Duration::Seconds(600);
  config.miss_mode = RestoreMode::kFaasnap;
  std::vector<Duration> gaps(6, Duration::Seconds(1));
  KeepAliveStats stats = simulator_.Run(gaps, config);
  // The first (miss) is the max; warm hits pull the mean well below it.
  EXPECT_LT(stats.latency_ms.min(), stats.latency_ms.max() * 0.8);
}

TEST_F(KeepAliveTest, ColdBootMissesAreOrdersOfMagnitudeSlower) {
  KeepAliveConfig faasnap_cfg{.keep_warm = Duration::Seconds(1), .miss_mode = RestoreMode::kFaasnap};
  KeepAliveConfig cold_cfg{.keep_warm = Duration::Seconds(1), .miss_mode = RestoreMode::kColdBoot};
  std::vector<Duration> gaps(3, Duration::Seconds(100));  // all misses
  KeepAliveStats faasnap_stats = simulator_.Run(gaps, faasnap_cfg);
  KeepAliveStats cold_stats = simulator_.Run(gaps, cold_cfg);
  EXPECT_GT(cold_stats.latency_ms.mean(), 10.0 * faasnap_stats.latency_ms.mean());
  EXPECT_GT(cold_stats.latency_ms.mean(), 2000.0);  // boot + init is seconds
}

TEST_F(KeepAliveTest, HitRateHelper) {
  KeepAliveStats stats;
  EXPECT_DOUBLE_EQ(stats.warm_hit_rate(), 0.0);
  stats.invocations = 4;
  stats.warm_hits = 3;
  EXPECT_DOUBLE_EQ(stats.warm_hit_rate(), 0.75);
}

TEST(ColdBootMode, NameAndPolicyExist) {
  EXPECT_EQ(RestoreModeName(RestoreMode::kColdBoot), "cold-boot");
  auto policy = RestorePolicy::Create(RestoreMode::kColdBoot);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->mode(), RestoreMode::kColdBoot);
}

}  // namespace
}  // namespace faasnap

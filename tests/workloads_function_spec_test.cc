#include "src/workloads/function_spec.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/vm/guest_layout.h"

namespace faasnap {
namespace {

TEST(FunctionCatalog, HasTwelveFunctions) {
  EXPECT_EQ(FunctionCatalog().size(), 12u);
}

TEST(FunctionCatalog, NamesMatchTable2) {
  std::vector<std::string> names;
  for (const FunctionSpec& spec : FunctionCatalog()) {
    names.push_back(spec.name);
  }
  const std::vector<std::string> expected = {
      "hello-world", "read-list", "mmap",   "image",  "json",        "pyaes",
      "chameleon",   "matmul",    "ffmpeg", "compression", "recognition", "pagerank"};
  EXPECT_EQ(names, expected);
}

TEST(FunctionCatalog, FindFunctionWorks) {
  Result<FunctionSpec> image = FindFunction("image");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->name, "image");
  EXPECT_FALSE(FindFunction("nope").ok());
}

TEST(FunctionCatalog, SyntheticFunctionsAreFixedInput) {
  for (const std::string& name : SyntheticFunctionNames()) {
    Result<FunctionSpec> spec = FindFunction(name);
    ASSERT_TRUE(spec.ok());
    EXPECT_TRUE(spec->fixed_input) << name;
  }
  for (const std::string& name : BenchmarkFunctionNames()) {
    Result<FunctionSpec> spec = FindFunction(name);
    ASSERT_TRUE(spec.ok());
    EXPECT_FALSE(spec->fixed_input) << name;
  }
  EXPECT_EQ(BenchmarkFunctionNames().size() + SyntheticFunctionNames().size(), 12u);
}

// Working-set sizes should track Table 2 within a small tolerance (the table
// reports MB at one decimal place).
struct WsExpectation {
  const char* name;
  double ws_a_mb;
  double ws_b_mb;
};

class WorkingSetSizeTest : public ::testing::TestWithParam<WsExpectation> {};

TEST_P(WorkingSetSizeTest, MatchesTable2) {
  const WsExpectation& expect = GetParam();
  Result<FunctionSpec> spec = FindFunction(expect.name);
  ASSERT_TRUE(spec.ok());
  const double ws_a = static_cast<double>(PagesToBytes(spec->WorkingSetPages(spec->input_a)).value()) /
                      static_cast<double>(kMiB);
  const double ws_b = static_cast<double>(PagesToBytes(spec->WorkingSetPages(spec->input_b)).value()) /
                      static_cast<double>(kMiB);
  EXPECT_NEAR(ws_a, expect.ws_a_mb, expect.ws_a_mb * 0.02 + 0.1);
  EXPECT_NEAR(ws_b, expect.ws_b_mb, expect.ws_b_mb * 0.02 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, WorkingSetSizeTest,
    ::testing::Values(WsExpectation{"hello-world", 11.8, 11.8},
                      WsExpectation{"read-list", 526, 526},
                      WsExpectation{"mmap", 536, 536},
                      WsExpectation{"image", 20.6, 32.6},
                      WsExpectation{"json", 12.7, 14.4},
                      WsExpectation{"pyaes", 12.6, 13.2},
                      WsExpectation{"chameleon", 22.9, 25.1},
                      WsExpectation{"matmul", 113, 133},
                      WsExpectation{"ffmpeg", 179, 178},
                      WsExpectation{"compression", 15.3, 15.8},
                      WsExpectation{"recognition", 230, 234},
                      WsExpectation{"pagerank", 104, 114}),
    [](const ::testing::TestParamInfo<WsExpectation>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(FunctionCatalog, SpecsFitTheDefaultLayout) {
  GuestLayout layout = GuestLayout::Default2GiB();
  for (const FunctionSpec& spec : FunctionCatalog()) {
    EXPECT_LE(spec.stable_pages.value(), layout.stable.count) << spec.name;
    EXPECT_LE(spec.scattered_stable_pages, spec.stable_pages) << spec.name;
    for (const InputProfile* input : {&spec.input_a, &spec.input_b}) {
      const auto window = static_cast<uint64_t>(
          static_cast<double>(input->input_pages.value()) * spec.window_factor);
      EXPECT_LE(window, layout.window.count) << spec.name;
      EXPECT_LE(input->anon_pages.value(), layout.scratch.count) << spec.name;
      EXPECT_GT(input->compute, Duration::Zero()) << spec.name;
    }
  }
}

TEST(FunctionCatalog, HelloWorldIsFourMilliseconds) {
  // Section 3.2: hello-world completes in 4 ms on a warm VM.
  Result<FunctionSpec> spec = FindFunction("hello-world");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->input_a.compute, Duration::Millis(4));
}

}  // namespace
}  // namespace faasnap

#include "src/sim/cpu_model.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

TEST(CpuModel, NoContentionBelowCoreCount) {
  CpuModel cpu(96);
  for (int i = 0; i < 96; ++i) {
    cpu.AddRunnable();
  }
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 1.0);
  EXPECT_EQ(cpu.ScaleCompute(Duration::Millis(10)), Duration::Millis(10));
}

TEST(CpuModel, ProportionalSlowdownAboveCoreCount) {
  CpuModel cpu(96);
  for (int i = 0; i < 128; ++i) {
    cpu.AddRunnable();
  }
  EXPECT_NEAR(cpu.LoadFactor(), 128.0 / 96.0, 1e-12);
  EXPECT_EQ(cpu.ScaleCompute(Duration::Micros(96)).nanos(), 128000);
}

TEST(CpuModel, RemoveRunnableRestores) {
  CpuModel cpu(2);
  cpu.AddRunnable();
  cpu.AddRunnable();
  cpu.AddRunnable();
  cpu.AddRunnable();
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 2.0);
  cpu.RemoveRunnable();
  cpu.RemoveRunnable();
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 1.0);
  EXPECT_EQ(cpu.runnable(), 2);
}

TEST(CpuModel, IdleHasFactorOne) {
  CpuModel cpu(4);
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 1.0);
}

TEST(CpuModelDeathTest, RemovingBelowZeroAborts) {
  CpuModel cpu(1);
  EXPECT_DEATH(cpu.RemoveRunnable(), "FAASNAP_CHECK");
}

// Figure 10 anchor: 64 parallel guests with 2 vCPUs each on a 96-core host
// oversubscribe the CPU by 128/96 and slow down compute-bound work.
TEST(CpuModel, Figure10Parallelism64IsOversubscribed) {
  CpuModel cpu(96);
  for (int vm = 0; vm < 64; ++vm) {
    cpu.AddRunnable();
    cpu.AddRunnable();
  }
  EXPECT_GT(cpu.LoadFactor(), 1.3);
  // At parallelism 32 (64 vCPUs) the same host is not oversubscribed.
  for (int vm = 0; vm < 32; ++vm) {
    cpu.RemoveRunnable();
    cpu.RemoveRunnable();
  }
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 1.0);
}

}  // namespace
}  // namespace faasnap

#include "src/obs/legacy_tracer.h"

#include <gtest/gtest.h>

#include "src/runtime/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

TEST(EventTracer, CountsAndRing) {
  EventTracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.Emit(SimTime::FromNanos(i), TraceEventType::kFaultStart, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tracer.count(TraceEventType::kFaultStart), 10);
  EXPECT_EQ(tracer.events().size(), 4u);  // ring keeps the most recent
  EXPECT_EQ(tracer.events().front().arg0, 6u);
  EXPECT_EQ(tracer.events().back().arg0, 9u);
}

TEST(EventTracer, TimelineFiltersByRange) {
  EventTracer tracer;
  tracer.Emit(SimTime::FromNanos(1000000), TraceEventType::kSetupDone, 3);
  tracer.Emit(SimTime::FromNanos(2000000), TraceEventType::kInvocationStart);
  tracer.Emit(SimTime::FromNanos(9000000), TraceEventType::kInvocationEnd, 7000000);
  std::string window =
      tracer.RenderTimeline(SimTime::FromNanos(500000), SimTime::FromNanos(3000000));
  EXPECT_NE(window.find("setup-done"), std::string::npos);
  EXPECT_NE(window.find("invocation-start"), std::string::npos);
  EXPECT_EQ(window.find("invocation-end"), std::string::npos);
}

TEST(EventTracer, ClearResets) {
  EventTracer tracer;
  tracer.Emit(SimTime::FromNanos(1), TraceEventType::kDiskIssue, 0, 4096);
  tracer.Clear();
  EXPECT_EQ(tracer.count(TraceEventType::kDiskIssue), 0);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(EventTracer, TypeNamesAreStable) {
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kFaultStart), "fault-start");
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kLoaderChunk), "loader-chunk");
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kInvocationEnd), "invocation-end");
}

TEST(EventTracer, PlatformEmitsLifecycleAndFaultEvents) {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  Platform platform(config);
  EventTracer tracer;
  platform.set_tracer(&tracer);

  Result<FunctionSpec> spec = FindFunction("json");
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, config.layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  tracer.Clear();  // focus on the invocation
  InvocationReport report =
      platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputB(*spec));

  EXPECT_EQ(tracer.count(TraceEventType::kSetupDone), 1);
  EXPECT_EQ(tracer.count(TraceEventType::kInvocationStart), 1);
  EXPECT_EQ(tracer.count(TraceEventType::kInvocationEnd), 1);
  // Every fault produced a start+end pair.
  EXPECT_EQ(tracer.count(TraceEventType::kFaultStart), report.faults.total_faults());
  EXPECT_EQ(tracer.count(TraceEventType::kFaultEnd), report.faults.total_faults());
  // The loader streamed the loading set in chunks.
  EXPECT_GT(tracer.count(TraceEventType::kLoaderChunk), 0);
  // The timeline renders without crashing and mentions the phases.
  std::string timeline = tracer.RenderTimeline(SimTime::FromNanos(0), platform.sim()->now());
  EXPECT_NE(timeline.find("invocation-start"), std::string::npos);
  EXPECT_NE(timeline.find("loader-chunk"), std::string::npos);
}

}  // namespace
}  // namespace faasnap

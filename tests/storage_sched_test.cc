// Scheduler invariants for the two-class block-device request queue:
// demand-over-prefetch priority, the prefetch aging (anti-starvation) bound,
// same-class request coalescing, deterministic completion order per seed,
// chaos interplay (failed requests release their slot), and mid-flight stats
// reset consistency.

#include "src/storage/block_device.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chaos/fault_injector.h"
#include "src/common/units.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

DeviceReadOptions Demand(uint64_t stream = 1) {
  return DeviceReadOptions{ReadClass::kDemand, stream, kNoSpan};
}

DeviceReadOptions Prefetch(uint64_t stream = 2) {
  return DeviceReadOptions{ReadClass::kPrefetch, stream, kNoSpan};
}

TEST(DiskScheduler, DemandJumpsQueuedPrefetch) {
  // One slot: a prefetch read in service, one queued. A demand read arriving
  // last still dispatches before the queued prefetch.
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 1;
  BlockDevice disk(&sim, profile);
  std::vector<std::string> order;
  disk.Read(0, KiB(256).value(), Prefetch(), [&](Status s) {
    ASSERT_TRUE(s.ok());
    order.push_back("prefetch-0");
  });
  disk.Read(MiB(8).value(), KiB(256).value(), Prefetch(), [&](Status s) {
    ASSERT_TRUE(s.ok());
    order.push_back("prefetch-1");
  });
  disk.Read(MiB(16).value(), kPageSize, Demand(), [&](Status s) {
    ASSERT_TRUE(s.ok());
    order.push_back("demand");
  });
  sim.Run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "prefetch-0");
  EXPECT_EQ(order[1], "demand");
  EXPECT_EQ(order[2], "prefetch-1");
  EXPECT_EQ(disk.stats().demand_requests, 1u);
  EXPECT_EQ(disk.stats().prefetch_requests, 2u);
  EXPECT_EQ(disk.stats().aged_promotions, 0u);
}

TEST(DiskScheduler, AgedPrefetchBeatsDemand) {
  // Shrink the aging bound below the in-service read's completion time: the
  // queued prefetch ages out and dispatches ahead of the waiting demand read.
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 1;
  profile.sched.prefetch_aging_bound = Duration::Micros(100);
  BlockDevice disk(&sim, profile);
  std::vector<std::string> order;
  disk.Read(0, KiB(256).value(), Prefetch(), [&](Status) { order.push_back("prefetch-0"); });
  disk.Read(MiB(8).value(), KiB(256).value(), Prefetch(), [&](Status) { order.push_back("prefetch-1"); });
  disk.Read(MiB(16).value(), kPageSize, Demand(), [&](Status) { order.push_back("demand"); });
  sim.Run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], "prefetch-1");
  EXPECT_EQ(order[2], "demand");
  EXPECT_EQ(disk.stats().aged_promotions, 1u);
}

TEST(DiskScheduler, AgedBacklogDoesNotStarveDemand) {
  // Once queued prefetch is older than the aging bound, every entry in the
  // backlog is "aged" — promotions must alternate with demand instead of
  // letting the whole backlog drain first.
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 1;
  profile.sched.prefetch_aging_bound = Duration::Micros(10);
  profile.sched.max_merge_bytes = ByteCount::Zero();  // keep the five prefetch reads distinct
  BlockDevice disk(&sim, profile);
  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) {
    disk.Read(static_cast<uint64_t>(i) * MiB(8).value(), KiB(256).value(), Prefetch(),
              [&order, i](Status) { order.push_back("prefetch-" + std::to_string(i)); });
  }
  disk.Read(MiB(64).value(), kPageSize, Demand(), [&](Status) { order.push_back("demand"); });
  sim.Run();
  ASSERT_EQ(order.size(), 6u);
  // prefetch-0 was in service; prefetch-1 wins the first contested slot by age;
  // the slot after that is owed to demand, which jumps the rest of the backlog.
  EXPECT_EQ(order[1], "prefetch-1");
  EXPECT_EQ(order[2], "demand");
  EXPECT_EQ(disk.stats().aged_promotions, 1u);
}

TEST(DiskScheduler, PrefetchSlotCapLeavesRoomForDemand) {
  // prefetch_slots caps the device slots prefetch may occupy, so a demand
  // fault dispatches into a free slot immediately and rides behind only the
  // capped in-service prefetch claims — not the whole train, as FIFO would.
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 4;
  profile.sched.prefetch_slots = 2;
  profile.sched.max_merge_bytes = ByteCount::Zero();
  BlockDevice disk(&sim, profile);
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    disk.Read(static_cast<uint64_t>(i) * MiB(8).value(), KiB(256).value(), Prefetch(),
              [&order, i](Status) { order.push_back("prefetch-" + std::to_string(i)); });
  }
  EXPECT_EQ(disk.in_service(ReadClass::kPrefetch), 2);
  EXPECT_EQ(disk.queued(ReadClass::kPrefetch), 2);
  disk.Read(MiB(64).value(), kPageSize, Demand(), [&](Status) { order.push_back("demand"); });
  EXPECT_EQ(disk.in_service(ReadClass::kDemand), 1);
  sim.Run();
  ASSERT_EQ(order.size(), 5u);
  // Bandwidth claims of the two in-service 256 KiB reads precede the demand
  // read's, so it completes third; the two queued prefetch reads come last.
  EXPECT_EQ(order[2], "demand");
}

TEST(DiskScheduler, PrefetchWaitNeverExceedsAgingBoundPlusService) {
  // Property: under a saturating demand stream, a queued prefetch read waits at
  // most the aging bound plus the drain of requests already holding slots.
  // Holds across seeds (jitter on) because aging is checked at every dispatch.
  for (uint64_t seed : {1u, 7u, 13u, 29u, 71u}) {
    Simulation sim;
    BlockDeviceProfile profile = TestDiskProfile();
    profile.jitter = 0.1;
    profile.sched.queue_depth = 2;
    const Duration aging = profile.sched.prefetch_aging_bound;
    BlockDevice disk(&sim, profile, seed);

    // Closed demand loop: 8 outstanding, 800 total — the demand queue never
    // empties while the prefetch reads are waiting.
    int issued = 0;
    std::function<void(Status)> demand_done = [&](Status) {
      if (issued < 800) {
        ++issued;
        disk.Read(static_cast<uint64_t>(issued) * kPageSize, kPageSize, Demand(),
                  demand_done);
      }
    };
    for (; issued < 8; ++issued) {
      disk.Read(static_cast<uint64_t>(issued) * kPageSize, kPageSize, Demand(), demand_done);
    }
    int prefetch_done = 0;
    for (int i = 0; i < 4; ++i) {
      disk.Read(MiB(64).value() + static_cast<uint64_t>(i) * MiB(8).value(), KiB(64).value(), Prefetch(),
                [&](Status) { ++prefetch_done; });
    }
    sim.Run();
    EXPECT_EQ(prefetch_done, 4);
    // Worst case: the head prefetch becomes eligible at the aging bound, then
    // waits for the next free slot — bounded by every slot draining a max-size
    // (here 64 KiB) request. Generous slack for jitter.
    const uint64_t slack = 2u * (64 * 1024 + 50000 + 4000) * 2;
    EXPECT_LE(disk.stats().max_prefetch_wait_ns.nanos(),
              aging.nanos() + static_cast<int64_t>(slack))
        << "seed " << seed;
    EXPECT_GT(disk.stats().aged_promotions, 0u) << "seed " << seed;
  }
}

// Mixed two-class workload capturing per-completion (label, time) pairs.
std::vector<std::string> RunMixedScenario(uint64_t seed) {
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.jitter = 0.1;
  profile.sched.queue_depth = 2;
  BlockDevice disk(&sim, profile, seed);
  std::vector<std::string> completions;
  auto record = [&](const char* label) {
    return [&completions, label, &sim](Status) {
      completions.push_back(std::string(label) + "@" + std::to_string(sim.now().nanos()));
    };
  };
  for (int i = 0; i < 24; ++i) {
    disk.Read(static_cast<uint64_t>(i) * MiB(1).value(), KiB(32).value(), Prefetch(), record("p"));
    if (i % 3 == 0) {
      disk.Read(MiB(512).value() + static_cast<uint64_t>(i) * kPageSize, kPageSize, Demand(),
                record("d"));
    }
  }
  sim.Run();
  return completions;
}

TEST(DiskScheduler, CompletionOrderIsDeterministicPerSeed) {
  EXPECT_EQ(RunMixedScenario(7), RunMixedScenario(7));
  EXPECT_NE(RunMixedScenario(7), RunMixedScenario(8));
}

TEST(DiskScheduler, AdjacentSameClassRequestsMerge) {
  // With one slot busy, four contiguous same-stream prefetch reads queue up and
  // dispatch as a single device request (3 merged); an offset-adjacent read
  // from a different stream stays separate.
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 1;
  BlockDevice disk(&sim, profile);
  disk.Read(MiB(64).value(), KiB(256).value(), Prefetch(/*stream=*/9), [](Status) {});
  std::vector<int64_t> merged_times;
  for (int i = 0; i < 4; ++i) {
    disk.Read(static_cast<uint64_t>(i) * kPageSize, kPageSize, Prefetch(/*stream=*/1),
              [&](Status) { merged_times.push_back(sim.now().nanos()); });
  }
  SimTime other_stream_done;
  disk.Read(4 * kPageSize, kPageSize, Prefetch(/*stream=*/2),
            [&](Status) { other_stream_done = sim.now(); });
  sim.Run();
  EXPECT_EQ(disk.stats().merged_requests, 3u);
  ASSERT_EQ(merged_times.size(), 4u);
  EXPECT_EQ(merged_times[0], merged_times[3]);  // one device request, one completion
  EXPECT_GT(other_stream_done.nanos(), merged_times[0]);
  EXPECT_EQ(disk.stats().read_requests, 6u);  // constituents stay caller-visible
}

TEST(DiskScheduler, MergeRespectsByteCap) {
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 1;
  profile.sched.max_merge_bytes = ByteCount::FromBytes(2 * kPageSize);
  BlockDevice disk(&sim, profile);
  disk.Read(MiB(64).value(), KiB(256).value(), Prefetch(9), [](Status) {});
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    disk.Read(static_cast<uint64_t>(i) * kPageSize, kPageSize, Prefetch(1),
              [&](Status) { ++done; });
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  // Two device requests of two pages each: 2 merged constituents total.
  EXPECT_EQ(disk.stats().merged_requests, 2u);
}

TEST(DiskScheduler, FailedReadsReleaseQueueSlots) {
  // Every read fails, at queue depth 2 with a deep backlog: the scheduler must
  // keep draining (failed requests release their slot at completion), every
  // callback must fire exactly once, and no live state may leak.
  Simulation sim;
  ChaosConfig chaos;
  chaos.enabled = true;
  chaos.read_error_rate = 1.0;
  FaultInjector injector(&sim, chaos);
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 2;
  BlockDevice disk(&sim, profile);
  disk.set_fault_injector(&injector, /*device_ordinal=*/0);
  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    const DeviceReadOptions opts = i % 2 == 0 ? Demand() : Prefetch();
    disk.Read(static_cast<uint64_t>(i) * MiB(1).value(), kPageSize, opts, [&](Status s) {
      EXPECT_FALSE(s.ok());
      ++failures;
    });
  }
  sim.Run();
  EXPECT_EQ(failures, 40);
  EXPECT_EQ(disk.stats().failed_requests, 40u);
  EXPECT_EQ(disk.stats().bytes_read, 0u);
  EXPECT_EQ(disk.demand_pressure(), 0);
  EXPECT_EQ(disk.queued(ReadClass::kPrefetch), 0);
  EXPECT_EQ(disk.in_service(ReadClass::kPrefetch), 0);
}

TEST(DiskScheduler, ResetStatsMidFlightKeepsLiveStateConsistent) {
  // Reset clears counters and watermarks only; queued/in-service requests keep
  // draining and post-reset dispatches account from zero.
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 1;
  BlockDevice disk(&sim, profile);
  int done = 0;
  disk.Read(0, kPageSize, Demand(), [&](Status) { ++done; });          // dispatches at t=0
  disk.Read(MiB(1).value(), kPageSize, Demand(), [&](Status) { ++done; });     // queued
  sim.RunUntil(SimTime() + Duration::Micros(10));
  EXPECT_EQ(disk.stats().read_requests, 1u);  // only the dispatched read counted
  disk.ResetStats();
  EXPECT_EQ(disk.stats().read_requests, 0u);
  EXPECT_EQ(disk.demand_pressure(), 2);  // live state survives the reset
  sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(disk.demand_pressure(), 0);
  // Only the read dispatched after the reset is in the fresh counters.
  EXPECT_EQ(disk.stats().read_requests, 1u);
  EXPECT_EQ(disk.stats().bytes_read, kPageSize);
}

TEST(DiskScheduler, FifoModeMatchesLegacyIssueTimeClaiming) {
  // queue_depth = 0 is the pre-scheduler baseline: issue-time FIFO claiming.
  // The IOPS-saturation shape must hold exactly, and no scheduling features
  // (priority, merging) may engage.
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 0;
  BlockDevice disk(&sim, profile);
  int completed = 0;
  SimTime last;
  for (int i = 0; i < 1000; ++i) {
    disk.Read(static_cast<uint64_t>(i) * kPageSize, kPageSize,
              i % 2 == 0 ? Demand() : Prefetch(), [&](Status) {
                ++completed;
                last = sim.now();
              });
  }
  sim.Run();
  EXPECT_EQ(completed, 1000);
  EXPECT_EQ(last.nanos(), 1000 * 4096 + 50000);
  EXPECT_EQ(disk.stats().merged_requests, 0u);
  EXPECT_EQ(disk.stats().aged_promotions, 0u);
  EXPECT_EQ(disk.stats().demand_requests, 500u);
  EXPECT_EQ(disk.stats().prefetch_requests, 500u);
}

TEST(DiskScheduler, SchedulerModeKeepsUncontendedCompletionTimesExact) {
  // With the default queue depth, an uncontended single-class load lands on the
  // same serializer timeline as issue-time claiming: the scheduler only
  // reorders under cross-class contention.
  Simulation sim;
  BlockDevice disk(&sim, TestDiskProfile());
  SimTime last;
  for (int i = 0; i < 1000; ++i) {
    disk.Read(static_cast<uint64_t>(i) * kPageSize, kPageSize, Demand(),
              [&](Status) { last = sim.now(); });
  }
  sim.Run();
  EXPECT_EQ(last.nanos(), 1000 * 4096 + 50000);
}

TEST(DiskScheduler, PerClassWaitTotalsAccumulate) {
  Simulation sim;
  BlockDeviceProfile profile = TestDiskProfile();
  profile.sched.queue_depth = 1;
  profile.sched.max_merge_bytes = ByteCount::Zero();  // isolate wait accounting from merging
  BlockDevice disk(&sim, profile);
  disk.Read(0, KiB(256).value(), Demand(), [](Status) {});
  disk.Read(KiB(256).value(), kPageSize, Demand(), [](Status) {});
  sim.Run();
  // The second read waited for the first (256 KiB ~= 262 us + base latency).
  EXPECT_GT(disk.stats().demand_wait_ns, Duration::Nanos(200000));
  EXPECT_EQ(disk.stats().prefetch_wait_ns, Duration::Zero());
  EXPECT_EQ(disk.stats().max_demand_wait_ns, disk.stats().demand_wait_ns);
}

}  // namespace
}  // namespace faasnap

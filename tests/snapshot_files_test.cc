#include "src/snapshot/snapshot_files.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

TEST(SnapshotStore, RegisterAssignsSequentialIds) {
  SnapshotStore store;
  FileId a = store.Register("mem", PageCount::FromPages(1000));
  FileId b = store.Register("ls", PageCount::FromPages(50));
  EXPECT_NE(a, kInvalidFileId);
  EXPECT_NE(b, a);
  EXPECT_EQ(store.size_pages(a).value(), 1000u);
  EXPECT_EQ(store.size_pages(b).value(), 50u);
  EXPECT_EQ(store.name(a), "mem");
  EXPECT_TRUE(store.Contains(a));
  EXPECT_FALSE(store.Contains(kInvalidFileId));
  EXPECT_FALSE(store.Contains(99));
}

TEST(SnapshotStore, ResizeUpdatesSize) {
  SnapshotStore store;
  FileId a = store.Register("ls", PageCount::FromPages(0));
  store.Resize(a, PageCount::FromPages(123));
  EXPECT_EQ(store.size_pages(a).value(), 123u);
}

TEST(SnapshotStore, SizeFnAdapter) {
  SnapshotStore store;
  FileId a = store.Register("mem", PageCount::FromPages(77));
  auto fn = store.SizeFn();
  EXPECT_EQ(fn(a).value(), 77u);
}

TEST(MemoryFile, ZeroClassification) {
  MemoryFile mem;
  mem.total_pages = PageCount::FromPages(100);
  mem.nonzero.Add(0, 30);
  mem.nonzero.Add(50, 10);
  EXPECT_FALSE(mem.IsZero(0));
  EXPECT_FALSE(mem.IsZero(29));
  EXPECT_TRUE(mem.IsZero(30));
  EXPECT_TRUE(mem.IsZero(49));
  EXPECT_FALSE(mem.IsZero(55));
  EXPECT_TRUE(mem.IsZero(99));
}

TEST(MemoryFile, ZeroRegionsIsComplement) {
  MemoryFile mem;
  mem.total_pages = PageCount::FromPages(100);
  mem.nonzero.Add(10, 20);
  PageRangeSet zeros = mem.ZeroRegions();
  EXPECT_EQ(zeros.page_count(), 80u);
  EXPECT_TRUE(zeros.Contains(0));
  EXPECT_TRUE(zeros.Contains(99));
  EXPECT_FALSE(zeros.Contains(15));
}

TEST(WorkingSetGroups, TotalsAndUnion) {
  WorkingSetGroups ws;
  PageRangeSet g0;
  g0.Add(0, 10);
  PageRangeSet g1;
  g1.Add(100, 5);
  g1.Add(8, 4);  // overlaps g0 partially
  ws.groups = {g0, g1};
  EXPECT_EQ(ws.total_pages().value(), 19u);
  PageRangeSet all = ws.AllPages();
  EXPECT_EQ(all.page_count(), 17u);  // union removes the 2-page overlap
}

TEST(WorkingSetGroups, LowestGroupForPicksEarliestGroup) {
  WorkingSetGroups ws;
  PageRangeSet g0;
  g0.Add(0, 10);
  PageRangeSet g1;
  g1.Add(20, 10);
  ws.groups = {g0, g1};
  EXPECT_EQ(ws.LowestGroupFor(PageRange{5, 2}), 0u);
  EXPECT_EQ(ws.LowestGroupFor(PageRange{25, 2}), 1u);
  // Region spanning both groups takes the lowest.
  EXPECT_EQ(ws.LowestGroupFor(PageRange{5, 20}), 0u);
  // Region in neither returns groups.size().
  EXPECT_EQ(ws.LowestGroupFor(PageRange{500, 5}), 2u);
}

TEST(LoadingSetFile, GuestPagesUnionsRegions) {
  LoadingSetFile ls;
  ls.regions = {
      LoadingRegion{{0, 4}, 0, 0},
      LoadingRegion{{100, 8}, 1, 4},
  };
  PageRangeSet pages = ls.GuestPages();
  EXPECT_EQ(pages.page_count(), 12u);
  EXPECT_TRUE(pages.Contains(2));
  EXPECT_TRUE(pages.Contains(107));
  EXPECT_FALSE(pages.Contains(50));
}

TEST(SnapshotStoreDeathTest, UnknownIdAborts) {
  SnapshotStore store;
  EXPECT_DEATH(store.size_pages(1).value(), "FAASNAP_CHECK");
  EXPECT_DEATH(store.size_pages(kInvalidFileId).value(), "FAASNAP_CHECK");
}

}  // namespace
}  // namespace faasnap

// Tests for MetricsTimeline: windowed JSONL emission (counter deltas, gauge
// values, histogram bucket deltas + quantiles), epoch boundaries, gap
// coalescing, bounded memory, and end-to-end emission through Platform.

#include "src/obs/metrics_timeline.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/json.h"
#include "src/obs/observability.h"
#include "src/runtime/platform.h"
#include "src/workloads/function_spec.h"

namespace faasnap {
namespace {

JsonValue Parse(const std::string& line) {
  Result<JsonValue> doc = ParseJson(line);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString() << " in: " << line;
  return doc.ok() ? *doc : JsonValue();
}

// First metric entry named `name` in a parsed line; null when absent.
JsonValue FindMetric(const JsonValue& line, const std::string& name) {
  Result<JsonValue> metrics = line.Get("metrics");
  if (!metrics.ok() || !metrics->is_array()) {
    return JsonValue();
  }
  for (const JsonValue& m : metrics->array()) {
    if (m.GetStringOr("name", "") == name) {
      return m;
    }
  }
  return JsonValue();
}

struct Harness {
  MetricsRegistry registry;
  MetricsTimeline timeline;
  std::vector<std::string> lines;

  explicit Harness(int64_t window_us = 100) {
    MetricsTimelineConfig config;
    config.window = Duration::Micros(window_us);
    timeline.Configure(&registry, config,
                       [this](const std::string& line) { lines.push_back(line); });
  }
};

TEST(MetricsTimelineTest, DisabledTimelineIsInert) {
  MetricsTimeline timeline;
  EXPECT_FALSE(timeline.enabled());
  timeline.BeginEpoch("x");
  timeline.Advance(SimTime::FromNanos(1'000'000));
  timeline.Flush(SimTime::FromNanos(2'000'000));
  EXPECT_EQ(timeline.lines_emitted(), 0);
}

TEST(MetricsTimelineTest, CounterDeltasPerWindow) {
  Harness h;
  Counter* chunks = h.registry.GetCounter("loader.chunks");
  h.timeline.BeginEpoch("rep0");
  chunks->Add(3);
  h.timeline.Advance(SimTime() + Duration::Micros(150));  // crosses into window 1
  ASSERT_EQ(h.lines.size(), 1u);
  const JsonValue line = Parse(h.lines[0]);
  EXPECT_EQ(line.GetIntOr("epoch", -1), 0);
  EXPECT_EQ(line.GetStringOr("label", ""), "rep0");
  EXPECT_EQ(line.GetIntOr("window", -1), 0);
  EXPECT_EQ(line.GetIntOr("start_ns", -1), 0);
  EXPECT_EQ(line.GetIntOr("end_ns", -1), 100'000);
  const JsonValue metric = FindMetric(line, "loader.chunks");
  ASSERT_TRUE(metric.is_object());
  EXPECT_EQ(metric.GetIntOr("delta", -1), 3);
  EXPECT_EQ(metric.GetIntOr("total", -1), 3);

  // The next window reports only the new delta; totals stay cumulative.
  chunks->Add(4);
  h.timeline.Flush(SimTime() + Duration::Micros(180));
  ASSERT_EQ(h.lines.size(), 2u);
  const JsonValue line2 = Parse(h.lines[1]);
  EXPECT_EQ(line2.GetIntOr("start_ns", -1), 100'000);
  EXPECT_EQ(line2.GetIntOr("end_ns", -1), 180'000);
  const JsonValue metric2 = FindMetric(line2, "loader.chunks");
  EXPECT_EQ(metric2.GetIntOr("delta", -1), 4);
  EXPECT_EQ(metric2.GetIntOr("total", -1), 7);
}

TEST(MetricsTimelineTest, EmptyWindowsEmitNothing) {
  Harness h;
  h.registry.GetCounter("loader.chunks");
  h.timeline.BeginEpoch("idle");
  for (int i = 1; i <= 50; ++i) {
    h.timeline.Advance(SimTime() + Duration::Micros(100) * i);
  }
  h.timeline.Flush(SimTime() + Duration::Micros(5'100));
  EXPECT_EQ(h.timeline.lines_emitted(), 0);
  EXPECT_TRUE(h.lines.empty());
}

TEST(MetricsTimelineTest, GapWithLateActivityCoalescesToOneLine) {
  Harness h;
  Counter* c = h.registry.GetCounter("scheduler.misses");
  h.timeline.BeginEpoch("gap");
  c->Add(1);
  h.timeline.Advance(SimTime() + Duration::Micros(150));  // line 1: [0, 100us)
  c->Add(1);
  // Nothing observed for 7 windows; the single line covers the whole gap.
  h.timeline.Advance(SimTime() + Duration::Micros(950));
  ASSERT_EQ(h.lines.size(), 2u);
  const JsonValue line = Parse(h.lines[1]);
  EXPECT_EQ(line.GetIntOr("start_ns", -1), 100'000);
  EXPECT_EQ(line.GetIntOr("end_ns", -1), 900'000);
}

TEST(MetricsTimelineTest, GaugeAndHistogramSeries) {
  Harness h;
  Gauge* depth = h.registry.GetGauge("disk.queue_depth");
  Log2Histogram* hist = h.registry.GetHistogram("fault.handling_ns", {}, Duration::Nanos(1000), 8);
  h.timeline.BeginEpoch("mixed");
  depth->Add(3);
  hist->Record(Duration::Nanos(1500));
  hist->Record(Duration::Nanos(1500));
  h.timeline.Advance(SimTime() + Duration::Micros(150));
  ASSERT_EQ(h.lines.size(), 1u);
  const JsonValue line = Parse(h.lines[0]);

  const JsonValue gauge = FindMetric(line, "disk.queue_depth");
  ASSERT_TRUE(gauge.is_object());
  EXPECT_EQ(gauge.GetNumberOr("value", -1), 3);
  EXPECT_EQ(gauge.GetNumberOr("max", -1), 3);

  const JsonValue histogram = FindMetric(line, "fault.handling_ns");
  ASSERT_TRUE(histogram.is_object());
  EXPECT_EQ(histogram.GetIntOr("delta_count", -1), 2);
  EXPECT_EQ(histogram.GetIntOr("delta_total_ns", -1), 3000);
  EXPECT_TRUE(histogram.Has("p50_ns"));
  EXPECT_TRUE(histogram.Has("p95_ns"));
  Result<JsonValue> buckets = histogram.Get("delta_buckets");
  ASSERT_TRUE(buckets.ok() && buckets->is_array());
  ASSERT_EQ(buckets->array().size(), 1u);  // sparse: only the touched bucket
  EXPECT_EQ(buckets->array()[0].GetIntOr("count", -1), 2);

  // An unchanged series is omitted from the next window entirely.
  depth->Add(0);  // no movement
  h.registry.GetCounter("loader.chunks")->Add(1);
  h.timeline.Flush(SimTime() + Duration::Micros(200));
  ASSERT_EQ(h.lines.size(), 2u);
  const JsonValue line2 = Parse(h.lines[1]);
  EXPECT_FALSE(FindMetric(line2, "disk.queue_depth").is_object());
  EXPECT_FALSE(FindMetric(line2, "fault.handling_ns").is_object());
}

TEST(MetricsTimelineTest, QuantilesCanBeDisabled) {
  MetricsRegistry registry;
  MetricsTimeline timeline;
  std::vector<std::string> lines;
  MetricsTimelineConfig config;
  config.window = Duration::Micros(100);
  config.quantiles = false;
  timeline.Configure(&registry, config,
                     [&](const std::string& line) { lines.push_back(line); });
  registry.GetHistogram("fault.handling_ns", {}, Duration::Nanos(1000), 8)->Record(Duration::Nanos(1500));
  timeline.Flush(SimTime() + Duration::Micros(50));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_FALSE(FindMetric(Parse(lines[0]), "fault.handling_ns").Has("p50_ns"));
}

TEST(MetricsTimelineTest, EpochBoundaryFlushesAndRestartsWindows) {
  Harness h;
  Counter* c = h.registry.GetCounter("scheduler.warm_hits");
  h.timeline.BeginEpoch("rep0");
  c->Add(5);
  h.timeline.Advance(SimTime() + Duration::Micros(130));
  c->Add(2);
  // The epoch boundary flushes the pending partial window under the old
  // label, then restarts window numbering at t=0 for the new platform.
  h.timeline.BeginEpoch("rep1");
  c->Add(10);
  h.timeline.Advance(SimTime() + Duration::Micros(150));
  ASSERT_EQ(h.lines.size(), 3u);
  const JsonValue boundary = Parse(h.lines[1]);
  EXPECT_EQ(boundary.GetIntOr("epoch", -1), 0);
  EXPECT_EQ(boundary.GetStringOr("label", ""), "rep0");
  EXPECT_EQ(FindMetric(boundary, "scheduler.warm_hits").GetIntOr("delta", -1), 2);
  const JsonValue fresh = Parse(h.lines[2]);
  EXPECT_EQ(fresh.GetIntOr("epoch", -1), 1);
  EXPECT_EQ(fresh.GetStringOr("label", ""), "rep1");
  EXPECT_EQ(fresh.GetIntOr("window", -1), 0);
  EXPECT_EQ(fresh.GetIntOr("start_ns", -1), 0);
  // Deltas stay correct across the boundary: 10, not 17.
  EXPECT_EQ(FindMetric(fresh, "scheduler.warm_hits").GetIntOr("delta", -1), 10);
  EXPECT_EQ(FindMetric(fresh, "scheduler.warm_hits").GetIntOr("total", -1), 17);
}

// End-to-end: Platform advances the timeline at invocation completions; a
// real invoke emits at least one window line, and two same-seed runs emit
// bit-identical timelines (the property the perf gate relies on).
TEST(MetricsTimelineTest, PlatformEmitsDeterministicTimeline) {
  auto run = [](std::vector<std::string>* lines) {
    Observability obs;
    MetricsTimelineConfig config;
    config.window = Duration::Micros(100);
    obs.timeline.Configure(&obs.metrics, config,
                           [lines](const std::string& line) { lines->push_back(line); });
    obs.timeline.BeginEpoch("run");
    PlatformConfig platform_config;
    platform_config.seed = 42;
    Platform platform(platform_config);
    platform.set_observability(&obs);
    Result<FunctionSpec> spec = FindFunction("json");
    ASSERT_TRUE(spec.ok());
    TraceGenerator generator(*spec, platform_config.layout);
    FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
    for (int i = 0; i < 3; ++i) {
      platform.DropCaches();
      (void)platform.Invoke(snapshot, RestoreMode::kReap, generator, MakeInputA(*spec));
    }
    obs.timeline.Flush(platform.sim()->now());
  };
  std::vector<std::string> first;
  std::vector<std::string> second;
  run(&first);
  run(&second);
  EXPECT_GT(first.size(), 0u);
  for (const std::string& line : first) {
    (void)Parse(line);  // every line is valid JSON
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace faasnap

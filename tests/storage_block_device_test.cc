#include "src/storage/block_device.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

class BlockDeviceTest : public ::testing::Test {
 protected:
  Simulation sim_;
  BlockDevice disk_{&sim_, TestDiskProfile()};
};

TEST_F(BlockDeviceTest, SingleSmallReadPaysBaseLatency) {
  SimTime done_at;
  disk_.Read(0, kPageSize, [&] { done_at = sim_.now(); });
  sim_.Run();
  // 4 KiB at 1 GB/s = 4096 ns transfer, IOPS interval 4000 ns, base 50 us.
  // completion = max(4000, 4096) + 50000 = 54096 ns.
  EXPECT_EQ(done_at.nanos(), 54096);
}

TEST_F(BlockDeviceTest, LargeReadIsBandwidthBound) {
  SimTime done_at;
  disk_.Read(0, MiB(100).value(), [&] { done_at = sim_.now(); });
  sim_.Run();
  // 100 MiB at 1 GB/s = 104857600 ns transfer dominates base latency.
  EXPECT_EQ(done_at.nanos(), 104857600 + 50000);
}

TEST_F(BlockDeviceTest, BlockingSmallReadsAreSlow) {
  // A strictly serial fault stream (each read issued after the previous completes)
  // is limited by base latency, not IOPS: ~18.5k reads/s on the test disk.
  int remaining = 10;
  SimTime last;
  std::function<void()> next = [&] {
    last = sim_.now();
    if (--remaining > 0) {
      disk_.Read(0, kPageSize, next);
    }
  };
  disk_.Read(0, kPageSize, next);
  sim_.Run();
  EXPECT_EQ(last.nanos(), 10 * 54096);
}

TEST_F(BlockDeviceTest, PipelinedSmallReadsSaturateIops) {
  // 1000 reads issued at once: completion of the last is governed by the IOPS
  // serializer (4 us apart), not by 1000 * base latency.
  int completed = 0;
  SimTime last;
  for (int i = 0; i < 1000; ++i) {
    disk_.Read(static_cast<uint64_t>(i) * kPageSize, kPageSize, [&] {
      ++completed;
      last = sim_.now();
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, 1000);
  // ~1000 * 4.096us (bw serializer slightly above iops) + base.
  EXPECT_NEAR(static_cast<double>(last.nanos()), 1000 * 4096 + 50000, 5000);
  EXPECT_LT(last.nanos(), 1000 * 54096 / 4);  // far faster than blocking
}

TEST_F(BlockDeviceTest, PipelinedLargeReadsSaturateBandwidth) {
  // 10 x 10 MiB issued at once finish at ~100 MiB / 1 GB/s.
  SimTime last;
  for (int i = 0; i < 10; ++i) {
    disk_.Read(static_cast<uint64_t>(i) * MiB(10).value(), MiB(10).value(), [&] { last = sim_.now(); });
  }
  sim_.Run();
  EXPECT_NEAR(static_cast<double>(last.nanos()), 104857600.0 + 50000.0, 1000.0);
}

TEST_F(BlockDeviceTest, StatsAccumulate) {
  disk_.Read(0, kPageSize, [] {});
  disk_.Read(kPageSize, MiB(1).value(), [] {});
  sim_.Run();
  EXPECT_EQ(disk_.stats().read_requests, 2u);
  EXPECT_EQ(disk_.stats().bytes_read, kPageSize + MiB(1).value());
  BlockDeviceStats before = disk_.stats();
  disk_.Read(0, kPageSize, [] {});
  sim_.Run();
  BlockDeviceStats delta = disk_.stats() - before;
  EXPECT_EQ(delta.read_requests, 1u);
  EXPECT_EQ(delta.bytes_read, kPageSize);
  disk_.ResetStats();
  EXPECT_EQ(disk_.stats().read_requests, 0u);
}

TEST_F(BlockDeviceTest, EstimateMatchesActual) {
  const SimTime estimate = disk_.EstimateCompletion(MiB(2).value());
  SimTime actual;
  disk_.Read(0, MiB(2).value(), [&] { actual = sim_.now(); });
  sim_.Run();
  EXPECT_EQ(estimate, actual);
}

TEST(BlockDeviceProfiles, NvmeIsFasterThanEbsEverywhere) {
  Simulation sim;
  BlockDevice nvme(&sim, NvmeSsdProfile());
  BlockDevice ebs(&sim, EbsIo2Profile());
  EXPECT_LT(nvme.profile().base_latency, ebs.profile().base_latency);
  EXPECT_GT(nvme.profile().bandwidth_bytes_per_s, ebs.profile().bandwidth_bytes_per_s);
  EXPECT_GT(nvme.profile().iops, ebs.profile().iops);
}

TEST(BlockDeviceProfiles, NvmeColdFaultLandsInMajorFaultBand) {
  // Figure 2: major page faults that read from disk take >= 32 us.
  Simulation sim;
  BlockDeviceProfile p = NvmeSsdProfile();
  p.jitter = 0.0;
  BlockDevice nvme(&sim, p);
  SimTime done;
  nvme.Read(0, kPageSize, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_GE(done.nanos(), 32000);
  EXPECT_LE(done.nanos(), 512000);
}

TEST(BlockDeviceJitter, JitterIsDeterministicPerSeed) {
  BlockDeviceProfile p = TestDiskProfile();
  p.jitter = 0.1;
  auto run_once = [&](uint64_t seed) {
    Simulation sim;
    BlockDevice disk(&sim, p, seed);
    SimTime done;
    disk.Read(0, kPageSize, [&] { done = sim.now(); });
    sim.Run();
    return done.nanos();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
  // Jitter stays within the configured band.
  const double base = 54096.0;
  const double v = static_cast<double>(run_once(7));
  EXPECT_GT(v, base * 0.89);
  EXPECT_LT(v, base * 1.11);
}

}  // namespace
}  // namespace faasnap

#include "src/metrics/table.h"

#include <gtest/gtest.h>

#include "src/metrics/report.h"

namespace faasnap {
namespace {

TEST(TextTable, RendersHeadersAndRows) {
  TextTable table({"function", "mode", "total (ms)"});
  table.AddRow({"image", "faasnap", "136.2"});
  table.AddRow({"hello-world", "reap", "70.0"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("function"), std::string::npos);
  EXPECT_NE(out.find("faasnap"), std::string::npos);
  EXPECT_NE(out.find("136.2"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, NumericCellsRightAlign) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1.5"});
  table.AddRow({"b", "123.5"});
  std::string out = table.ToString();
  // "1.5" should be padded to align with "123.5"'s right edge.
  EXPECT_NE(out.find("  1.5"), std::string::npos);
}

TEST(TextTable, ColumnsWidenToContent) {
  TextTable table({"x"});
  table.AddRow({"very-long-cell-content"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("very-long-cell-content"), std::string::npos);
}

TEST(TextTableDeathTest, WrongCellCountAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "FAASNAP_CHECK");
}

TEST(FormatCell, PrintfStyle) {
  EXPECT_EQ(FormatCell("%.1f", 3.14159), "3.1");
  EXPECT_EQ(FormatCell("%s/%d", "x", 7), "x/7");
}

TEST(ReportSummary, AccumulatesStats) {
  InvocationReport r1;
  r1.function = "image";
  r1.mode = "faasnap";
  r1.setup_time = Duration::Millis(40);
  r1.invocation_time = Duration::Millis(100);
  InvocationReport r2 = r1;
  r2.invocation_time = Duration::Millis(120);
  ReportSummary summary;
  summary.Add(r1);
  summary.Add(r2);
  EXPECT_EQ(summary.function, "image");
  EXPECT_EQ(summary.total_ms.count(), 2);
  EXPECT_DOUBLE_EQ(summary.total_ms.mean(), 150.0);
  EXPECT_DOUBLE_EQ(summary.setup_ms.mean(), 40.0);
  EXPECT_DOUBLE_EQ(summary.invocation_ms.mean(), 110.0);
}

TEST(InvocationReport, TotalIsSetupPlusInvocation) {
  InvocationReport r;
  r.setup_time = Duration::Millis(45);
  r.invocation_time = Duration::Millis(55);
  EXPECT_EQ(r.total_time(), Duration::Millis(100));
}

}  // namespace
}  // namespace faasnap

// Cross-cutting integration invariants, swept over every catalog function and
// every restore mode. These are the safety net for the whole pipeline: whatever
// the workload and policy, the accounting must balance and the orderings the
// paper establishes must hold.

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/runtime/platform.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  BlockDeviceProfile disk = NvmeSsdProfile();
  disk.jitter = 0.0;
  config.disk = disk;
  return config;
}

struct MatrixCase {
  std::string function;
  RestoreMode mode;
};

std::vector<MatrixCase> AllCases() {
  std::vector<MatrixCase> cases;
  for (const FunctionSpec& spec : FunctionCatalog()) {
    for (RestoreMode mode : {RestoreMode::kWarm, RestoreMode::kFirecracker, RestoreMode::kCached,
                             RestoreMode::kReap, RestoreMode::kFaasnap}) {
      cases.push_back(MatrixCase{spec.name, mode});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& param_info) {
  std::string name = param_info.param.function + "_" + std::string(RestoreModeName(param_info.param.mode));
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

class InvocationMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(InvocationMatrixTest, AccountingInvariantsHold) {
  const MatrixCase& test_case = GetParam();
  Platform platform(TestConfig());
  Result<FunctionSpec> spec = FindFunction(test_case.function);
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  platform.DropCaches();
  const WorkloadInput input = spec->fixed_input ? MakeInputA(*spec) : MakeInputB(*spec);
  InvocationReport report = platform.Invoke(snapshot, test_case.mode, generator, input);

  // Identity and structure.
  EXPECT_EQ(report.function, test_case.function);
  EXPECT_EQ(report.mode, RestoreModeName(test_case.mode));
  EXPECT_EQ(report.total_time(), report.setup_time + report.invocation_time);
  EXPECT_GT(report.invocation_time, Duration::Zero());

  // Execution at least covers the function's compute budget.
  EXPECT_GE(report.invocation_time.nanos(), input.profile.compute.nanos());

  const FaultMetrics& faults = report.faults;
  // Every fault is in the histogram; wait time >= handling time.
  EXPECT_EQ(faults.latency_histogram.total_count(), faults.total_faults());
  EXPECT_GE(faults.total_wait_time, faults.total_fault_time);

  // Distinct pages bound the fault count (each page faults at most once).
  const uint64_t distinct = generator.Generate(input).TouchedPages().page_count();
  EXPECT_LE(static_cast<uint64_t>(faults.total_faults()), distinct);
  if (test_case.mode != RestoreMode::kWarm) {
    // Snapshot restores always fault (nothing is installed at VM start). A warm
    // VM replaying the recorded input legitimately faults zero times.
    EXPECT_GT(faults.total_faults(), 0);
  }

  // Disk accounting: fault-attributed traffic never exceeds total traffic.
  EXPECT_LE(faults.fault_disk_bytes.value(), report.disk.bytes_read + 1);
  EXPECT_LE(faults.fault_disk_requests, report.disk.read_requests);

  // Mode-specific structure.
  switch (test_case.mode) {
    case RestoreMode::kWarm:
      EXPECT_EQ(report.disk.read_requests, 0u);
      EXPECT_EQ(faults.count(FaultClass::kMajor), 0);
      EXPECT_EQ(faults.count(FaultClass::kMinor), 0);
      break;
    case RestoreMode::kCached:
      EXPECT_EQ(report.disk.read_requests, 0u);
      EXPECT_EQ(faults.count(FaultClass::kMajor), 0);
      break;
    case RestoreMode::kFirecracker:
      EXPECT_TRUE(report.fetch_bytes.is_zero());
      EXPECT_EQ(faults.count(FaultClass::kUffdHandled), 0);
      break;
    case RestoreMode::kReap:
      EXPECT_EQ(report.fetch_bytes, PagesToBytes(snapshot.reap_ws.size_pages()));
      EXPECT_GT(report.fetch_time, Duration::Zero());
      EXPECT_EQ(faults.count(FaultClass::kMajor), 0);  // uffd intercepts everything
      break;
    case RestoreMode::kFaasnap:
      EXPECT_FALSE(report.fetch_bytes.is_zero());
      EXPECT_EQ(faults.count(FaultClass::kUffdHandled), 0);
      // The hierarchical mapping needs at least base + one region.
      EXPECT_GE(report.mmap_calls, 2u);
      break;
    default:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFunctionsAllModes, InvocationMatrixTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Ordering invariants per function: Warm <= Cached-ish <= FaaSnap <= Firecracker.
class OrderingMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OrderingMatrixTest, PaperOrderingsHold) {
  Platform platform(TestConfig());
  Result<FunctionSpec> spec = FindFunction(GetParam());
  ASSERT_TRUE(spec.ok());
  TraceGenerator generator(*spec, platform.config().layout);
  FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
  const WorkloadInput input = spec->fixed_input ? MakeInputA(*spec) : MakeInputB(*spec);

  std::map<RestoreMode, Duration> totals;
  for (RestoreMode mode : {RestoreMode::kWarm, RestoreMode::kFirecracker, RestoreMode::kCached,
                           RestoreMode::kFaasnap}) {
    platform.DropCaches();
    totals[mode] = platform.Invoke(snapshot, mode, generator, input).total_time();
  }
  // Warm is the floor; Firecracker is the snapshot-system ceiling.
  EXPECT_LT(totals[RestoreMode::kWarm], totals[RestoreMode::kFaasnap]) << GetParam();
  EXPECT_LT(totals[RestoreMode::kFaasnap], totals[RestoreMode::kFirecracker]) << GetParam();
  EXPECT_LT(totals[RestoreMode::kCached], totals[RestoreMode::kFirecracker]) << GetParam();
  // FaaSnap within 15% of Cached for every function (the paper reports 3.5% on
  // average, with read-list/recognition as the worst cases).
  EXPECT_LT(totals[RestoreMode::kFaasnap].seconds(),
            totals[RestoreMode::kCached].seconds() * 1.15)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, OrderingMatrixTest,
                         ::testing::Values("hello-world", "read-list", "mmap", "image", "json",
                                           "pyaes", "chameleon", "matmul", "ffmpeg",
                                           "compression", "recognition", "pagerank"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace faasnap

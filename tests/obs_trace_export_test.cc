#include "src/obs/trace_export.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/json.h"
#include "src/runtime/platform.h"
#include "src/obs/observability.h"
#include "src/storage/device_profiles.h"

namespace faasnap {
namespace {

// Records one cold FaaSnap invocation plus one REAP invocation so every actor
// lane (daemon, vCPU, loader, uffd, disk) carries spans.
Observability* RecordedTrace() {
  static Observability* obs = [] {
    auto* bundle = new Observability();
    PlatformConfig config;
    config.disk = NvmeSsdProfile();
    Platform platform(config);
    platform.set_observability(bundle);
    Result<FunctionSpec> spec = FindFunction("json");
    FAASNAP_CHECK(spec.ok());
    TraceGenerator generator(*spec, config.layout);
    FunctionSnapshot snapshot = platform.Record(generator, MakeInputA(*spec));
    platform.DropCaches();
    platform.Invoke(snapshot, RestoreMode::kFaasnap, generator, MakeInputB(*spec));
    platform.DropCaches();
    platform.Invoke(snapshot, RestoreMode::kReap, generator, MakeInputB(*spec));
    return bundle;
  }();
  return obs;
}

TEST(TraceExport, ParsesBackAsChromeTraceJson) {
  const std::string trace = ExportChromeTrace(RecordedTrace()->spans);
  Result<JsonValue> root = ParseJson(trace);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  ASSERT_TRUE(root->is_object());
  Result<JsonValue> events = root->Get("traceEvents");
  ASSERT_TRUE(events.ok());
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());

  for (const JsonValue& event : events->array()) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.GetStringOr("ph", "");
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << "unexpected ph " << ph;
    EXPECT_TRUE(event.Has("name"));
    EXPECT_TRUE(event.Has("pid"));
    if (ph == "M") {
      // process_name metadata is per-process and carries no tid.
      continue;
    }
    EXPECT_TRUE(event.Has("tid"));
    Result<JsonValue> ts = event.Get("ts");
    ASSERT_TRUE(ts.ok());
    EXPECT_TRUE(ts->is_number());
    if (ph == "X") {
      Result<JsonValue> dur = event.Get("dur");
      ASSERT_TRUE(dur.ok());
      ASSERT_TRUE(dur->is_number());
      EXPECT_GE(dur->AsDouble().value(), 0.0);
    }
  }
}

TEST(TraceExport, CoversAllFourPrimaryActorLanes) {
  const std::string trace = ExportChromeTrace(RecordedTrace()->spans);
  Result<JsonValue> root = ParseJson(trace);
  ASSERT_TRUE(root.ok());
  Result<JsonValue> events = root->Get("traceEvents");
  ASSERT_TRUE(events.ok());
  std::set<std::string> lanes;
  for (const JsonValue& event : events->array()) {
    if (event.GetStringOr("ph", "") == "M" &&
        event.GetStringOr("name", "") == "thread_name") {
      lanes.insert(event.Get("args")->GetStringOr("name", ""));
    }
  }
  EXPECT_GE(lanes.size(), 4u);
  EXPECT_TRUE(lanes.count("vCPU"));
  EXPECT_TRUE(lanes.count("loader"));
  EXPECT_TRUE(lanes.count("uffd"));
  EXPECT_TRUE(lanes.count("disk"));
}

TEST(TraceExport, SpanArgsCarryParentLinksAndLabels) {
  const std::string trace = ExportChromeTrace(RecordedTrace()->spans);
  Result<JsonValue> root = ParseJson(trace);
  ASSERT_TRUE(root.ok());
  Result<JsonValue> events = root->Get("traceEvents");
  ASSERT_TRUE(events.ok());
  bool saw_parented_fault = false;
  bool saw_disk_bytes = false;
  for (const JsonValue& event : events->array()) {
    const std::string name = event.GetStringOr("name", "");
    if (event.GetStringOr("ph", "") == "M") {
      continue;
    }
    Result<JsonValue> args = event.Get("args");
    ASSERT_TRUE(args.ok());
    if (name == "fault" && args->Has("parent")) {
      saw_parented_fault = true;
      EXPECT_TRUE(args->Has("page"));
    }
    if (name == "disk.read") {
      saw_disk_bytes = args->Has("bytes") || saw_disk_bytes;
    }
  }
  EXPECT_TRUE(saw_parented_fault);
  EXPECT_TRUE(saw_disk_bytes);
}

TEST(TraceExport, OpenSpansAreMarkedAndTruncated) {
  SpanTracer spans;
  spans.Begin(SimTime::FromNanos(1000), ObsLane::kVcpu, "fault");
  spans.Complete(SimTime::FromNanos(2000), SimTime::FromNanos(5000), ObsLane::kDisk,
                 "disk.read");
  Result<JsonValue> root = ParseJson(ExportChromeTrace(spans));
  ASSERT_TRUE(root.ok());
  Result<JsonValue> events = root->Get("traceEvents");
  ASSERT_TRUE(events.ok());
  bool saw_open = false;
  for (const JsonValue& event : events->array()) {
    if (event.GetStringOr("ph", "") != "X" || event.GetStringOr("name", "") != "fault") {
      continue;
    }
    saw_open = true;
    // Truncated at the trace's max time: (5000 - 1000) ns = 4 us.
    EXPECT_DOUBLE_EQ(event.Get("dur")->AsDouble().value(), 4.0);
    EXPECT_TRUE(event.Get("args")->GetBoolOr("open", false));
  }
  EXPECT_TRUE(saw_open);
}

}  // namespace
}  // namespace faasnap

#include "src/mem/page_cache.h"

#include <gtest/gtest.h>

namespace faasnap {
namespace {

constexpr FileId kFileA = 1;
constexpr FileId kFileB = 2;

TEST(PageCache, StartsEmpty) {
  PageCache cache;
  EXPECT_EQ(cache.GetState(kFileA, 0), PageCache::PageState::kAbsent);
  EXPECT_EQ(cache.present_page_count(), 0u);
}

TEST(PageCache, InsertMakesPresent) {
  PageCache cache;
  cache.Insert(kFileA, PageRange{10, 5});
  EXPECT_TRUE(cache.IsPresent(kFileA, 10));
  EXPECT_TRUE(cache.IsPresent(kFileA, 14));
  EXPECT_FALSE(cache.IsPresent(kFileA, 15));
  EXPECT_FALSE(cache.IsPresent(kFileB, 10));
  EXPECT_EQ(cache.present_page_count(), 5u);
}

TEST(PageCache, BeginReadMarksInFlight) {
  PageCache cache;
  auto handle = cache.BeginRead(kFileA, PageRange{0, 4});
  EXPECT_EQ(cache.GetState(kFileA, 2), PageCache::PageState::kInFlight);
  EXPECT_EQ(cache.GetState(kFileA, 4), PageCache::PageState::kAbsent);
  cache.CompleteRead(handle);
  EXPECT_EQ(cache.GetState(kFileA, 2), PageCache::PageState::kPresent);
}

TEST(PageCache, WaitersFireOnCompletion) {
  PageCache cache;
  auto handle = cache.BeginRead(kFileA, PageRange{0, 4});
  int fired = 0;
  cache.WaitFor(kFileA, 1, [&](const Status&) { ++fired; });
  cache.WaitFor(kFileA, 3, [&](const Status&) { ++fired; });
  EXPECT_EQ(fired, 0);
  cache.CompleteRead(handle);
  EXPECT_EQ(fired, 2);
}

TEST(PageCache, IndependentReadsCompleteIndependently) {
  PageCache cache;
  auto h1 = cache.BeginRead(kFileA, PageRange{0, 2});
  auto h2 = cache.BeginRead(kFileA, PageRange{10, 2});
  int fired1 = 0;
  int fired2 = 0;
  cache.WaitFor(kFileA, 0, [&](const Status&) { ++fired1; });
  cache.WaitFor(kFileA, 11, [&](const Status&) { ++fired2; });
  cache.CompleteRead(h2);
  EXPECT_EQ(fired1, 0);
  EXPECT_EQ(fired2, 1);
  EXPECT_EQ(cache.GetState(kFileA, 0), PageCache::PageState::kInFlight);
  EXPECT_TRUE(cache.IsPresent(kFileA, 10));
  cache.CompleteRead(h1);
  EXPECT_EQ(fired1, 1);
}

TEST(PageCache, AbsentInSubtractsPresentAndInFlight) {
  PageCache cache;
  cache.Insert(kFileA, PageRange{0, 4});
  cache.BeginRead(kFileA, PageRange{8, 4});
  PageRangeSet missing = cache.AbsentIn(kFileA, PageRange{0, 16});
  ASSERT_EQ(missing.range_count(), 2u);
  EXPECT_EQ(missing.ranges()[0], (PageRange{4, 4}));
  EXPECT_EQ(missing.ranges()[1], (PageRange{12, 4}));
}

TEST(PageCache, AbsentInUnknownFileIsWholeRange) {
  PageCache cache;
  PageRangeSet missing = cache.AbsentIn(kFileB, PageRange{5, 3});
  ASSERT_EQ(missing.range_count(), 1u);
  EXPECT_EQ(missing.ranges()[0], (PageRange{5, 3}));
}

TEST(PageCache, PresentPagesIsMincore) {
  PageCache cache;
  cache.Insert(kFileA, PageRange{0, 2});
  cache.Insert(kFileA, PageRange{100, 1});
  PageRangeSet present = cache.PresentPages(kFileA);
  EXPECT_EQ(present.page_count(), 3u);
  EXPECT_TRUE(present.Contains(100));
  EXPECT_TRUE(cache.PresentPages(kFileB).empty());
}

TEST(PageCache, DropAllClearsEverything) {
  PageCache cache;
  cache.Insert(kFileA, PageRange{0, 10});
  cache.Insert(kFileB, PageRange{0, 10});
  cache.DropAll();
  EXPECT_EQ(cache.present_page_count(), 0u);
  EXPECT_FALSE(cache.IsPresent(kFileA, 0));
}

TEST(PageCache, DropFileIsScoped) {
  PageCache cache;
  cache.Insert(kFileA, PageRange{0, 10});
  cache.Insert(kFileB, PageRange{0, 10});
  cache.DropFile(kFileA);
  EXPECT_FALSE(cache.IsPresent(kFileA, 0));
  EXPECT_TRUE(cache.IsPresent(kFileB, 0));
  cache.DropFile(999);  // unknown file is a no-op
}

// Regression: waiters parked on an in-flight read must be woken when the
// covering IO fails — with the failure, not OkStatus — and the pages must
// revert to absent so a later access can retry the read. Before FailRead
// existed, an IO error left waiters asleep forever (the chaos harness's
// definition of a hang).
TEST(PageCacheFailure, FailReadWakesWaitersWithTheErrorAndRevertsPages) {
  PageCache cache;
  auto handle = cache.BeginRead(kFileA, PageRange{0, 4});
  int fired = 0;
  Status seen;
  cache.WaitFor(kFileA, 1, [&](const Status& status) {
    ++fired;
    seen = status;
  });
  cache.WaitFor(kFileA, 3, [&](const Status& status) {
    ++fired;
    EXPECT_FALSE(status.ok());
  });
  cache.FailRead(handle, IoError("injected device error"));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(seen.code(), StatusCode::kIoError);
  for (PageIndex p = 0; p < 4; ++p) {
    EXPECT_EQ(cache.GetState(kFileA, p), PageCache::PageState::kAbsent) << p;
  }
  EXPECT_EQ(cache.present_page_count(), 0u);
}

TEST(PageCacheFailure, FailureIsScopedToItsRead) {
  PageCache cache;
  auto failing = cache.BeginRead(kFileA, PageRange{0, 2});
  auto healthy = cache.BeginRead(kFileA, PageRange{10, 2});
  int healthy_fired = 0;
  cache.WaitFor(kFileA, 10, [&](const Status& status) {
    ++healthy_fired;
    EXPECT_TRUE(status.ok());
  });
  cache.FailRead(failing, UnavailableError("remote outage"));
  EXPECT_EQ(healthy_fired, 0);
  EXPECT_EQ(cache.GetState(kFileA, 10), PageCache::PageState::kInFlight);
  cache.CompleteRead(healthy);
  EXPECT_EQ(healthy_fired, 1);
  EXPECT_TRUE(cache.IsPresent(kFileA, 10));
}

TEST(PageCacheFailure, FailedRangeCanBeRetried) {
  PageCache cache;
  auto first = cache.BeginRead(kFileA, PageRange{0, 4});
  cache.FailRead(first, IoError("transient"));
  // The failed pages are absent again, so the retry is a fresh BeginRead.
  auto retry = cache.BeginRead(kFileA, PageRange{0, 4});
  int fired = 0;
  cache.WaitFor(kFileA, 2, [&](const Status& status) {
    ++fired;
    EXPECT_TRUE(status.ok());
  });
  cache.CompleteRead(retry);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(cache.IsPresent(kFileA, 2));
}

TEST(PageCacheDeathTest, FailReadRequiresAnError) {
  PageCache cache;
  auto handle = cache.BeginRead(kFileA, PageRange{0, 1});
  EXPECT_DEATH(cache.FailRead(handle, OkStatus()), "");
}

TEST(PageCacheDeathTest, WaitForNonInFlightAborts) {
  PageCache cache;
  cache.Insert(kFileA, PageRange{0, 1});
  EXPECT_DEATH(cache.WaitFor(kFileA, 0, [](const Status&) {}), "not in flight");
}

TEST(PageCacheDeathTest, DropWithInFlightReadsAborts) {
  PageCache cache;
  cache.BeginRead(kFileA, PageRange{0, 1});
  EXPECT_DEATH(cache.DropAll(), "in flight");
}

}  // namespace
}  // namespace faasnap

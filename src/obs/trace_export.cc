#include "src/obs/trace_export.h"

#include <set>
#include <utility>

#include "src/common/json_writer.h"
#include "src/obs/observability.h"

namespace faasnap {

namespace {

// Human-readable arg labels for the canonical span names; anything else falls
// back to generic arg0/arg1.
std::pair<std::string_view, std::string_view> ArgLabels(std::string_view name) {
  if (name == obsname::kFault) {
    return {"page", "fault_class"};
  }
  if (name == obsname::kDiskRead) {
    return {"offset_bytes", "bytes"};
  }
  if (name == obsname::kLoaderChunk) {
    return {"file_page", "pages"};
  }
  if (name == obsname::kSetupDone) {
    return {"mmap_calls", "arg1"};
  }
  if (name == obsname::kInvocation) {
    return {"arg0", "elapsed_ns"};
  }
  if (name == obsname::kInvoke) {
    return {"arg0", "outcome"};
  }
  return {"arg0", "arg1"};
}

double ToMicros(SimTime t) { return static_cast<double>(t.nanos()) / 1e3; }

}  // namespace

std::string ExportChromeTrace(const SpanTracer& spans) {
  // Metadata first: name every (track, lane) pair that has at least one record,
  // and order lanes within a process by the ObsLane enum.
  std::set<std::pair<uint32_t, uint8_t>> used;
  SimTime max_time;
  for (const SpanRecord& rec : spans.records()) {
    used.insert({rec.track, static_cast<uint8_t>(rec.lane)});
    max_time = Max(max_time, Max(rec.start, rec.end));
  }

  JsonWriter json;
  json.BeginObject().Field("displayTimeUnit", "ms").Key("traceEvents").BeginArray();

  for (const auto& [track, lane] : used) {
    json.BeginObject()
        .Field("ph", "M")
        .Field("name", "thread_name")
        .Field("pid", static_cast<int64_t>(track))
        .Field("tid", static_cast<int64_t>(lane))
        .Key("args")
        .BeginObject()
        .Field("name", std::string(ObsLaneName(static_cast<ObsLane>(lane))))
        .EndObject()
        .EndObject();
    json.BeginObject()
        .Field("ph", "M")
        .Field("name", "thread_sort_index")
        .Field("pid", static_cast<int64_t>(track))
        .Field("tid", static_cast<int64_t>(lane))
        .Key("args")
        .BeginObject()
        .Field("sort_index", static_cast<int64_t>(lane))
        .EndObject()
        .EndObject();
  }
  for (uint32_t track = 0; track < spans.track_names().size(); ++track) {
    json.BeginObject()
        .Field("ph", "M")
        .Field("name", "process_name")
        .Field("pid", static_cast<int64_t>(track))
        .Key("args")
        .BeginObject()
        .Field("name", spans.track_names()[track])
        .EndObject()
        .EndObject();
  }

  for (size_t i = 0; i < spans.records().size(); ++i) {
    const SpanRecord& rec = spans.records()[i];
    const std::string_view name = spans.name(rec.name);
    const auto [label0, label1] = ArgLabels(name);
    json.BeginObject()
        .Field("ph", rec.instant ? "i" : "X")
        .Field("name", std::string(name))
        .Field("cat", std::string(ObsLaneName(rec.lane)))
        .Field("pid", static_cast<int64_t>(rec.track))
        .Field("tid", static_cast<int64_t>(static_cast<uint8_t>(rec.lane)))
        .Field("ts", ToMicros(rec.start));
    if (rec.instant) {
      json.Field("s", "t");  // thread-scoped instant
    } else {
      const SimTime end = rec.open ? max_time : rec.end;
      json.Field("dur", ToMicros(end) - ToMicros(rec.start));
    }
    json.Key("args").BeginObject();
    json.Field(std::string(label0), rec.arg0).Field(std::string(label1), rec.arg1);
    json.Field("span_id", static_cast<uint64_t>(i + 1));
    if (rec.parent != kNoSpan) {
      json.Field("parent", static_cast<uint64_t>(rec.parent));
    }
    if (rec.open) {
      json.Field("open", true);
    }
    json.EndObject().EndObject();
  }

  json.EndArray();
  if (spans.dropped_records() > 0) {
    json.Field("droppedRecords", spans.dropped_records());
  }
  json.EndObject();
  return json.TakeString();
}

}  // namespace faasnap

// MetricsTimeline: windowed time-series snapshots of a MetricsRegistry.
//
// A run-wide metrics snapshot (MetricsRegistry::ToJson) answers "how much,
// total?"; the timeline answers "when?". Soak runs and the load-phase analyses
// of the related work (cold-start rate vs. memory as a *time-varying*
// trade-off) need the latter: the timeline closes fixed-cadence virtual-time
// windows and appends one JSONL line per window with the counter deltas, gauge
// values, and histogram bucket deltas accumulated inside it.
//
// Memory is bounded by the number of registered series, never by run length:
// per series the timeline keeps only the previous cumulative value (one int64,
// one double, or one bucket-count vector), and finished lines stream straight
// to the sink. Empty windows emit nothing; when several cadence units pass
// between Advance calls the single emitted line covers the whole
// [start_ns, end_ns) gap, so output size tracks *activity*, not wall time.
//
// Like the rest of src/obs, the timeline is strictly passive: it never
// schedules simulation events or reads clocks. The driver (Platform at
// invocation completions, the experiment runner at phase boundaries) pushes
// virtual time in via Advance(now). Repetition boundaries reset the virtual
// clock to t=0 without resetting the shared registry; BeginEpoch marks them so
// window indices restart while cumulative deltas stay correct.
//
// Thread safety: none. Configure/Advance/Flush must come from one thread (the
// simulation thread); the registry it visits may be bumped from others.
//
// Line schema (one JSON object per line; see docs/observability.md):
//   {"epoch":0,"label":"...","window":3,"start_ns":...,"end_ns":...,
//    "metrics":[
//      {"name":...,"labels":{...},"type":"counter","delta":12,"total":345},
//      {"name":...,"labels":{...},"type":"gauge","value":2.0,"max":7.0},
//      {"name":...,"labels":{...},"type":"histogram","delta_count":4,
//       "delta_total_ns":...,"p50_ns":...,"p95_ns":...,"p99_ns":...,
//       "delta_buckets":[{"upper_ns":...,"count":...},...]}]}

#ifndef FAASNAP_SRC_OBS_METRICS_TIMELINE_H_
#define FAASNAP_SRC_OBS_METRICS_TIMELINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/obs/metrics_registry.h"

namespace faasnap {

struct MetricsTimelineConfig {
  // Virtual-time window cadence. Must be positive.
  Duration window = Duration::Millis(100);
  // Emit interpolated p50/p95/p99 for each histogram window.
  bool quantiles = true;
};

class MetricsTimeline {
 public:
  // Receives one complete JSONL line (no trailing newline) per closed window.
  using LineSink = std::function<void(const std::string& line)>;

  MetricsTimeline() = default;
  MetricsTimeline(const MetricsTimeline&) = delete;
  MetricsTimeline& operator=(const MetricsTimeline&) = delete;

  // Enables the timeline. `registry` must outlive it; deltas are measured from
  // the registry's state at the first Advance, so counters bumped before that
  // land in the first emitted window.
  void Configure(const MetricsRegistry* registry, MetricsTimelineConfig config,
                 LineSink sink);

  bool enabled() const { return registry_ != nullptr; }

  // Marks a repetition/platform boundary: flushes the pending window, restarts
  // window numbering (the new platform's clock restarts at t=0), and tags
  // subsequent lines with `label` and the next epoch ordinal.
  void BeginEpoch(const std::string& label);

  // Pushes virtual time forward. Emits one line per window boundary crossed
  // since the previous call (coalesced when the gap had no activity at all).
  // `now` must be monotonic within an epoch.
  void Advance(SimTime now);

  // Emits the pending partial window up to `now` (end of run / epoch).
  void Flush(SimTime now);

  int64_t lines_emitted() const { return lines_emitted_; }

 private:
  // Last observed cumulative state of one series; sized by series count only.
  struct SeriesState {
    int64_t counter = 0;
    double gauge = 0;
    double gauge_max = 0;
    std::vector<int64_t> buckets;
    int64_t hist_count = 0;
    Duration hist_total;
  };

  // One moved series, staged between the registry sweep and line emission.
  struct Pending {
    const std::string* name = nullptr;
    const MetricLabels* labels = nullptr;
    MetricsRegistry::Kind kind = MetricsRegistry::Kind::kCounter;
    int64_t delta = 0;
    int64_t total = 0;
    double gauge = 0;
    double gauge_max = 0;
    std::vector<int64_t> delta_buckets;
    int64_t delta_count = 0;
    Duration delta_total;
    Duration lower_edge;
  };

  // Closes the window [window_start_, end): emits a line if any series
  // moved, and advances the per-series baselines either way.
  void EmitWindow(SimTime end);

  const MetricsRegistry* registry_ = nullptr;
  MetricsTimelineConfig config_;
  LineSink sink_;

  std::vector<SeriesState> state_;
  std::vector<Pending> scratch_;
  int64_t epoch_ = 0;
  bool epoch_consumed_ = false;
  std::string label_;
  int64_t window_ = 0;        // index of the open window within the epoch
  SimTime window_start_;      // start of the open (possibly coalesced) window
  SimTime last_now_;
  int64_t lines_emitted_ = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_METRICS_TIMELINE_H_

// FlightRecorder: always-on per-invocation forensics with tail-based span
// retention.
//
// Full tracing keeps every span of every invocation — unaffordable past a few
// thousand invocations. The flight recorder inverts the deal: components
// record spans into a small *buffer* tracer exactly as they would into the
// real one, and at invoke end the recorder decides the invocation's fate:
//
//   * every invocation feeds the streaming digests — outcome counts plus
//     per-phase critical-path histograms (AnalyzeInvokeSpan partitions the
//     invoke window exactly, for ok, degraded, and failed outcomes alike);
//   * full span detail is *retained* only for the slowest-K invocations and
//     every non-ok outcome (up to a cap) — tail sampling: the p99 cold start
//     in a million-invocation soak run still exports a complete span tree;
//   * everything else is dropped when the buffer recycles.
//
// The buffer recycles (SpanTracer::Clear) once no invocation is in flight and
// no span is still open, so its footprint tracks the *concurrent* span count,
// not run length. Clear preserves the intern table, keeping name ids cached by
// components (FaultEngine et al.) valid across recycles.
//
// Like every obs component the recorder is passive and deterministic: it is
// driven synchronously from Platform's invoke-completion path on the
// simulation thread and never schedules events or reads clocks. When a
// MetricsRegistry is supplied, the forensics series (`forensics.invocations`,
// `forensics.retained`, ...) are registered there — only then, following the
// conditional-registration rule, so recorder-free metric snapshots stay
// bit-identical.

#ifndef FAASNAP_SRC_OBS_FLIGHT_RECORDER_H_
#define FAASNAP_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_tracer.h"

namespace faasnap {

// Invocation outcome as the recorder sees it. Mirrors the runtime's
// InvocationOutcome ladder (ok < degraded < failed < shed) without depending
// on src/metrics: obs sits below runtime in the layering DAG. Shed outcomes
// (admission control rejected or deadline-dropped the arrival before any work
// ran) count as non-ok for retention: an overloaded host's drops are exactly
// what a post-incident reader wants span detail for.
enum class ForensicOutcome : uint8_t {
  kOk = 0,
  kDegraded = 1,
  kFailed = 2,
  kShedQueueFull = 3,
  kShedDeadline = 4,
};

inline constexpr size_t kForensicOutcomeCount = 5;

std::string_view ForensicOutcomeName(ForensicOutcome outcome);

struct ForensicsConfig {
  // Retain full span detail for the K slowest ok invocations...
  size_t slowest_k = 16;
  // ...and for every non-ok invocation up to this cap (first-come, the same
  // drop-when-full policy as the span tracer; overflow is counted).
  size_t max_non_ok = 1024;
  // Span-buffer capacity: bounds *concurrent* spans, not run length.
  size_t buffer_capacity = size_t{1} << 16;
};

class FlightRecorder {
 public:
  // One retained invocation: a self-contained span tree (parents and names
  // rebased into this struct) plus its exact phase partition.
  struct RetainedInvocation {
    uint64_t seq = 0;  // invocation ordinal within the recorder's lifetime
    std::string function;
    ForensicOutcome outcome = ForensicOutcome::kOk;
    Duration total;
    CriticalPathBreakdown breakdown;
    std::vector<SpanRecord> spans;   // rec.name indexes `names`, 1-based parents
    std::vector<std::string> names;  // local intern table
  };

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Enables the recorder. `metrics` may be null (digest counters then live
  // only in SummaryToJson); if given it must outlive the recorder.
  void Configure(const ForensicsConfig& config, MetricsRegistry* metrics);

  bool enabled() const { return buffer_ != nullptr; }

  // The buffer components record into while forensics is active (Platform
  // points its span sink here instead of at a run-wide tracer).
  SpanTracer* buffer() { return buffer_.get(); }

  // Invocation lifecycle, driven by Platform. Begin marks a request in
  // flight; End analyzes + commits-or-drops the buffered spans and recycles
  // the buffer when nothing else is in flight. `invoke_span` may be kNoSpan
  // (buffer exhausted): the invocation still counts, with no span detail.
  void OnInvokeBegin();
  void OnInvokeEnd(SpanId invoke_span, ForensicOutcome outcome, std::string_view function,
                   Duration total);

  // Recycles the buffer if safe (no invocation in flight, no open span).
  // Platform calls this after non-invocation phases (Record) too.
  void MaybeRecycle();

  // Streaming totals.
  int64_t invocations() const { return invocations_; }
  int64_t outcome_count(ForensicOutcome outcome) const {
    return outcome_counts_[static_cast<size_t>(outcome)];
  }
  int64_t dropped_non_ok() const { return dropped_non_ok_; }
  int64_t unanalyzed() const { return unanalyzed_; }
  int64_t recycles() const { return recycles_; }

  // Retained sets (tests, exporters). Slowest-K is heap-ordered, not sorted.
  const std::vector<RetainedInvocation>& retained_slowest() const { return slowest_; }
  const std::vector<RetainedInvocation>& retained_non_ok() const { return non_ok_; }

  // Chrome-trace JSON of every retained invocation, one track per invocation
  // ("inv <seq> <function> <outcome>"), ordered by seq.
  std::string ExportRetainedTrace() const;

  // Digest document: outcome counts, retention counts, per-phase latency
  // histograms (count/total/p50/p95/p99 per phase), and the retained index.
  std::string SummaryToJson() const;

 private:
  RetainedInvocation Extract(SpanId invoke_span, ForensicOutcome outcome,
                             std::string_view function, Duration total,
                             const CriticalPathBreakdown& breakdown) const;

  ForensicsConfig config_;
  std::unique_ptr<SpanTracer> buffer_;

  // Streaming digests: every invocation lands here, retained or not.
  int64_t invocations_ = 0;
  int64_t outcome_counts_[kForensicOutcomeCount] = {};
  int64_t unanalyzed_ = 0;  // invoke span missing (buffer full): no breakdown
  int64_t recycles_ = 0;
  std::unique_ptr<Log2Histogram> total_digest_;
  std::vector<std::unique_ptr<Log2Histogram>> phase_digests_;  // kPhaseCount

  // Tail retention.
  std::vector<RetainedInvocation> slowest_;  // min-heap by (total, seq)
  std::vector<RetainedInvocation> non_ok_;
  int64_t dropped_non_ok_ = 0;
  size_t in_flight_ = 0;

  // Conditionally registered series (null without a registry).
  Counter* outcome_metrics_[kForensicOutcomeCount] = {};
  Counter* retained_slowest_metric_ = nullptr;
  Counter* retained_non_ok_metric_ = nullptr;
  Counter* dropped_non_ok_metric_ = nullptr;
  Log2Histogram* total_metric_ = nullptr;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_FLIGHT_RECORDER_H_

// Chrome trace-event / Perfetto JSON export.
//
// ExportChromeTrace renders a SpanTracer's records in the Trace Event Format
// (the JSON schema both chrome://tracing and ui.perfetto.dev load), so any
// simulated run can be inspected as a timeline and compared visually against
// the paper's Figure 1 breakdowns:
//
//   * each trace track (one per Platform/run) becomes a "process" (pid),
//   * each actor lane (vCPU, loader, uffd, disk, ...) becomes a named
//     "thread" (tid) within it,
//   * closed spans export as complete events (ph "X"), instants as ph "i",
//   * args carry span ids/parents plus name-aware labels (fault -> page/class,
//     disk-read -> offset/bytes, ...).
//
// Timestamps are microseconds of simulated time since run start.

#ifndef FAASNAP_SRC_OBS_TRACE_EXPORT_H_
#define FAASNAP_SRC_OBS_TRACE_EXPORT_H_

#include <string>

#include "src/obs/span_tracer.h"

namespace faasnap {

// The complete JSON document. Spans still open at export time are emitted with
// their duration truncated at the trace's max timestamp and args.open = true.
std::string ExportChromeTrace(const SpanTracer& spans);

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_TRACE_EXPORT_H_

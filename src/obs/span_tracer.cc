#include "src/obs/span_tracer.h"

namespace faasnap {

std::string_view ObsLaneName(ObsLane lane) {
  switch (lane) {
    case ObsLane::kVcpu:
      return "vCPU";
    case ObsLane::kLoader:
      return "loader";
    case ObsLane::kUffd:
      return "uffd";
    case ObsLane::kDisk:
      return "disk";
    case ObsLane::kDaemon:
      return "daemon";
    case ObsLane::kScheduler:
      return "scheduler";
    case ObsLane::kNative:
      return "native";
    case ObsLane::kLaneCount:
      break;
  }
  return "unknown";
}

uint32_t SpanTracer::InternNameLocked(std::string_view name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_counts_.push_back(0);
  name_ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

uint32_t SpanTracer::InternName(std::string_view name) {
  MutexLock lock(mu_);
  return InternNameLocked(name);
}

SpanId SpanTracer::BeginIdLocked(SimTime start, ObsLane lane, uint32_t name_id,
                                 uint64_t arg0, uint64_t arg1, SpanId parent) {
  name_counts_[name_id]++;
  ++revision_;
  if (records_.size() >= capacity_) {
    ++dropped_;
    return kNoSpan;
  }
  SpanRecord rec;
  rec.start = start;
  rec.end = start;
  rec.parent = parent;
  rec.arg0 = arg0;
  rec.arg1 = arg1;
  rec.name = name_id;
  rec.track = current_track_;
  rec.lane = lane;
  records_.push_back(rec);
  ++open_spans_;
  return static_cast<SpanId>(records_.size());
}

SpanId SpanTracer::Begin(SimTime start, ObsLane lane, std::string_view name, uint64_t arg0,
                         uint64_t arg1, SpanId parent) {
  MutexLock lock(mu_);
  return BeginIdLocked(start, lane, InternNameLocked(name), arg0, arg1, parent);
}

SpanId SpanTracer::BeginId(SimTime start, ObsLane lane, uint32_t name_id, uint64_t arg0,
                           uint64_t arg1, SpanId parent) {
  MutexLock lock(mu_);
  return BeginIdLocked(start, lane, name_id, arg0, arg1, parent);
}

void SpanTracer::EndLocked(SpanId id, SimTime end) {
  if (id > records_.size()) {
    return;  // stale id from before a Clear (see the flight recorder)
  }
  SpanRecord& rec = records_[id - 1];
  rec.end = end;
  if (rec.open) {
    rec.open = false;
    --open_spans_;
  }
  ++revision_;
}

void SpanTracer::End(SpanId id, SimTime end) {
  if (id == kNoSpan) {
    return;
  }
  MutexLock lock(mu_);
  EndLocked(id, end);
}

void SpanTracer::End(SpanId id, SimTime end, uint64_t arg1) {
  if (id == kNoSpan) {
    return;
  }
  MutexLock lock(mu_);
  if (id > records_.size()) {
    return;
  }
  records_[id - 1].arg1 = arg1;
  EndLocked(id, end);
}

SpanId SpanTracer::Complete(SimTime start, SimTime end, ObsLane lane, std::string_view name,
                            uint64_t arg0, uint64_t arg1, SpanId parent) {
  MutexLock lock(mu_);
  const SpanId id = BeginIdLocked(start, lane, InternNameLocked(name), arg0, arg1, parent);
  if (id != kNoSpan) {
    EndLocked(id, end);
  }
  return id;
}

SpanId SpanTracer::CompleteId(SimTime start, SimTime end, ObsLane lane, uint32_t name_id,
                              uint64_t arg0, uint64_t arg1, SpanId parent) {
  MutexLock lock(mu_);
  const SpanId id = BeginIdLocked(start, lane, name_id, arg0, arg1, parent);
  if (id != kNoSpan) {
    EndLocked(id, end);
  }
  return id;
}

SpanId SpanTracer::Instant(SimTime time, ObsLane lane, std::string_view name, uint64_t arg0,
                           uint64_t arg1, SpanId parent) {
  MutexLock lock(mu_);
  const SpanId id = BeginIdLocked(time, lane, InternNameLocked(name), arg0, arg1, parent);
  if (id != kNoSpan) {
    records_[id - 1].instant = true;
    records_[id - 1].open = false;
    --open_spans_;
  }
  return id;
}

uint32_t SpanTracer::BeginTrack(std::string name) {
  MutexLock lock(mu_);
  track_names_.push_back(std::move(name));
  current_track_ = static_cast<uint32_t>(track_names_.size() - 1);
  ++revision_;
  return current_track_;
}

uint32_t SpanTracer::current_track() const {
  MutexLock lock(mu_);
  return current_track_;
}

int64_t SpanTracer::count(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = name_ids_.find(name);
  return it == name_ids_.end() ? 0 : name_counts_[it->second];
}

uint64_t SpanTracer::dropped_records() const {
  MutexLock lock(mu_);
  return dropped_;
}

size_t SpanTracer::open_spans() const {
  MutexLock lock(mu_);
  return open_spans_;
}

uint64_t SpanTracer::revision() const {
  MutexLock lock(mu_);
  return revision_;
}

void SpanTracer::Clear() {
  MutexLock lock(mu_);
  records_.clear();
  // The intern table survives: components cache name ids at attachment time
  // (set_observability), so invalidating ids here would make spans recorded
  // after a Clear resolve to the wrong names. Only the counts reset.
  name_counts_.assign(names_.size(), 0);
  track_names_ = {"track0"};
  current_track_ = 0;
  dropped_ = 0;
  open_spans_ = 0;
  ++revision_;
}

}  // namespace faasnap

#include "src/obs/metrics_timeline.h"

#include <algorithm>

#include "src/common/histogram.h"
#include "src/common/json_writer.h"
#include "src/common/status.h"

namespace faasnap {

void MetricsTimeline::Configure(const MetricsRegistry* registry, MetricsTimelineConfig config,
                                LineSink sink) {
  FAASNAP_CHECK(registry != nullptr);
  FAASNAP_CHECK(config.window.nanos() > 0);
  FAASNAP_CHECK(sink != nullptr);
  registry_ = registry;
  config_ = config;
  sink_ = std::move(sink);
}

void MetricsTimeline::BeginEpoch(const std::string& label) {
  if (!enabled()) {
    return;
  }
  EmitWindow(Max(last_now_, window_start_));
  // The first BeginEpoch names epoch 0 rather than burning an ordinal on the
  // empty pre-run span; later calls mark real repetition boundaries.
  if (epoch_consumed_) {
    ++epoch_;
  }
  epoch_consumed_ = true;
  label_ = label;
  window_ = 0;
  window_start_ = SimTime();
  last_now_ = SimTime();
}

void MetricsTimeline::Advance(SimTime now) {
  if (!enabled()) {
    return;
  }
  const int64_t win = config_.window.nanos();
  last_now_ = Max(last_now_, now);
  const int64_t w = now.nanos() / win;
  if (w <= window_) {
    return;  // still inside the open window
  }
  EmitWindow(SimTime::FromNanos(w * win));
  window_ = w;
  window_start_ = SimTime::FromNanos(w * win);
}

void MetricsTimeline::Flush(SimTime now) {
  if (!enabled()) {
    return;
  }
  const SimTime end = Max(Max(now, window_start_), last_now_);
  EmitWindow(end);
  window_start_ = end;
  window_ = end.nanos() / config_.window.nanos();
  last_now_ = Max(last_now_, end);
}

void MetricsTimeline::EmitWindow(SimTime end) {
  scratch_.clear();
  registry_->Visit([this](const MetricsRegistry::InstrumentView& view) {
    if (view.index >= state_.size()) {
      state_.resize(view.index + 1);
    }
    SeriesState& prev = state_[view.index];
    switch (view.kind) {
      case MetricsRegistry::Kind::kCounter: {
        const int64_t delta = view.counter_value - prev.counter;
        if (delta == 0) {
          return;
        }
        Pending& p = scratch_.emplace_back();
        p.name = view.name;
        p.labels = view.labels;
        p.kind = view.kind;
        p.delta = delta;
        p.total = view.counter_value;
        prev.counter = view.counter_value;
        return;
      }
      case MetricsRegistry::Kind::kGauge: {
        if (view.gauge_value == prev.gauge && view.gauge_max == prev.gauge_max) {
          return;
        }
        Pending& p = scratch_.emplace_back();
        p.name = view.name;
        p.labels = view.labels;
        p.kind = view.kind;
        p.gauge = view.gauge_value;
        p.gauge_max = view.gauge_max;
        prev.gauge = view.gauge_value;
        prev.gauge_max = view.gauge_max;
        return;
      }
      case MetricsRegistry::Kind::kHistogram: {
        const Log2Histogram* h = view.histogram;
        if (h == nullptr) {
          return;
        }
        const int64_t delta_count = h->total_count() - prev.hist_count;
        if (delta_count == 0) {
          return;
        }
        Pending& p = scratch_.emplace_back();
        p.name = view.name;
        p.labels = view.labels;
        p.kind = view.kind;
        p.delta_count = delta_count;
        p.delta_total = h->total_time() - prev.hist_total;
        p.lower_edge = h->lower_edge();
        const size_t buckets = static_cast<size_t>(h->num_buckets());
        prev.buckets.resize(buckets, 0);
        p.delta_buckets.resize(buckets, 0);
        for (size_t i = 0; i < buckets; ++i) {
          const int64_t c = h->bucket_count(static_cast<int>(i));
          p.delta_buckets[i] = c - prev.buckets[i];
          prev.buckets[i] = c;
        }
        prev.hist_count = h->total_count();
        prev.hist_total = h->total_time();
        return;
      }
    }
  });
  if (scratch_.empty()) {
    return;  // empty window: nothing to say, nothing written
  }

  JsonWriter json;
  json.BeginObject()
      .Field("epoch", epoch_)
      .Field("label", label_)
      .Field("window", window_)
      .Field("start_ns", window_start_)
      .Field("end_ns", end)
      .Key("metrics")
      .BeginArray();
  for (const Pending& p : scratch_) {
    json.BeginObject().Field("name", *p.name);
    json.Key("labels").BeginObject();
    for (const auto& [k, v] : *p.labels) {
      json.Field(k, v);
    }
    json.EndObject();
    switch (p.kind) {
      case MetricsRegistry::Kind::kCounter:
        json.Field("type", "counter").Field("delta", p.delta).Field("total", p.total);
        break;
      case MetricsRegistry::Kind::kGauge:
        json.Field("type", "gauge").Field("value", p.gauge).Field("max", p.gauge_max);
        break;
      case MetricsRegistry::Kind::kHistogram: {
        json.Field("type", "histogram")
            .Field("delta_count", p.delta_count)
            .Field("delta_total_ns", p.delta_total);
        if (config_.quantiles) {
          json.Field("p50_ns", EstimateLog2Quantile(p.delta_buckets, p.lower_edge, 0.50))
              .Field("p95_ns", EstimateLog2Quantile(p.delta_buckets, p.lower_edge, 0.95))
              .Field("p99_ns", EstimateLog2Quantile(p.delta_buckets, p.lower_edge, 0.99));
        }
        json.Key("delta_buckets").BeginArray();
        for (size_t i = 0; i < p.delta_buckets.size(); ++i) {
          if (p.delta_buckets[i] == 0) {
            continue;
          }
          const int64_t upper = i + 1 == p.delta_buckets.size()
                                    ? INT64_MAX
                                    : p.lower_edge.nanos() << static_cast<int64_t>(i);
          json.BeginObject().Field("upper_ns", upper).Field("count", p.delta_buckets[i]).EndObject();
        }
        json.EndArray();
        break;
      }
    }
    json.EndObject();
  }
  json.EndArray().EndObject();
  sink_(json.TakeString());
  ++lines_emitted_;
}

}  // namespace faasnap

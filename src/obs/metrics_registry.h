// MetricsRegistry: named counters, gauges, and log2 histograms with labels.
//
// Every subsystem registers its instruments here — fault classes, page-cache
// hit/miss traffic, loader throughput, disk queue depth, scheduler occupancy —
// so one registry snapshot (ToJson) captures the whole host's state, the way
// the paper's Table 3 aggregates bpftrace counters across actors.
//
// Instruments are resolved once (GetCounter/GetGauge/GetHistogram return stable
// pointers) and updated inline; an unattached component holds null pointers and
// pays one branch per would-be update. (name, labels) identifies an instrument:
// the same pair always returns the same pointer, different label sets on one
// name are distinct time series.

#ifndef FAASNAP_SRC_OBS_METRICS_REGISTRY_H_
#define FAASNAP_SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace faasnap {

// Sorted, deduplicated (key, value) pairs; construction order does not matter.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

struct Counter {
  int64_t value = 0;
  void Add(int64_t delta = 1) { value += delta; }
};

struct Gauge {
  double value = 0;
  double max_value = 0;
  void Set(double v) {
    value = v;
    if (v > max_value) {
      max_value = v;
    }
  }
  void Add(double delta) { Set(value + delta); }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Pointers are stable for the registry's lifetime.
  Counter* GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});
  // `lower_ns`/`num_buckets` apply only on first creation of the series.
  Log2Histogram* GetHistogram(const std::string& name, MetricLabels labels = {},
                              int64_t lower_ns = 500, int num_buckets = 11);

  size_t size() const { return entries_.size(); }

  // Full snapshot: {"metrics":[{"name":...,"labels":{...},"type":...,...}]},
  // sorted by (name, labels) so documents diff cleanly across runs.
  std::string ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    MetricLabels labels;
    Kind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Log2Histogram> histogram;
  };

  Entry* Resolve(const std::string& name, MetricLabels labels, Kind kind);
  static std::string SeriesKey(const std::string& name, const MetricLabels& labels);

  std::deque<Entry> entries_;  // deque: stable addresses as the registry grows
  std::map<std::string, Entry*> by_key_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_METRICS_REGISTRY_H_

// MetricsRegistry: named counters, gauges, and log2 histograms with labels.
//
// Every subsystem registers its instruments here — fault classes, page-cache
// hit/miss traffic, loader throughput, disk queue depth, scheduler occupancy —
// so one registry snapshot (ToJson) captures the whole host's state, the way
// the paper's Table 3 aggregates bpftrace counters across actors.
//
// Instruments are resolved once (GetCounter/GetGauge/GetHistogram return stable
// pointers) and updated inline; an unattached component holds null pointers and
// pays one branch per would-be update. (name, labels) identifies an instrument:
// the same pair always returns the same pointer, different label sets on one
// name are distinct time series.
//
// Thread safety: registration (GetCounter/GetGauge/GetHistogram) and snapshots
// (ToJson/size) are mutex-protected; Counter and Gauge updates are relaxed
// atomics, so any thread may bump an instrument it resolved earlier.
// Log2Histogram series are the exception: Record is not atomic, so a histogram
// instrument must only ever be updated from the actor that registered it (the
// simulation thread today; enforced by review, flagged by the TSan CI job).

#ifndef FAASNAP_SRC_OBS_METRICS_REGISTRY_H_
#define FAASNAP_SRC_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace faasnap {

// Sorted, deduplicated (key, value) pairs; construction order does not matter.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

struct Counter {
  std::atomic<int64_t> value{0};
  void Add(int64_t delta = 1) { value.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Get() const { return value.load(std::memory_order_relaxed); }
};

struct Gauge {
  std::atomic<double> value{0};
  std::atomic<double> max_value{0};
  void Set(double v) {
    value.store(v, std::memory_order_relaxed);
    // Racy max across concurrent Sets resolves via CAS: the largest write wins.
    double seen = max_value.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_value.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void Add(double delta) { Set(value.load(std::memory_order_relaxed) + delta); }
  double Get() const { return value.load(std::memory_order_relaxed); }
  double GetMax() const { return max_value.load(std::memory_order_relaxed); }
};

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  // Point-in-time view of one instrument, handed to Visit in registration
  // order. `index` is the instrument's registration ordinal — stable across
  // Visit calls and dense, so windowed consumers (MetricsTimeline) can keep
  // per-series state in a flat vector. Pointers reference registry-owned
  // storage and stay valid for the registry's lifetime; `histogram` is read
  // unlocked by consumers (same caveat as ToJson).
  struct InstrumentView {
    size_t index = 0;
    const std::string* name = nullptr;
    const MetricLabels* labels = nullptr;
    Kind kind = Kind::kCounter;
    int64_t counter_value = 0;              // kCounter
    double gauge_value = 0;                 // kGauge
    double gauge_max = 0;                   // kGauge
    const Log2Histogram* histogram = nullptr;  // kHistogram
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Pointers are stable for the registry's lifetime.
  Counter* GetCounter(const std::string& name, MetricLabels labels = {})
      FAASNAP_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {}) FAASNAP_EXCLUDES(mu_);
  // `lower_edge`/`num_buckets` apply only on first creation of the series.
  Log2Histogram* GetHistogram(const std::string& name, MetricLabels labels = {},
                              Duration lower_edge = Duration::Nanos(500), int num_buckets = 11)
      FAASNAP_EXCLUDES(mu_);

  size_t size() const FAASNAP_EXCLUDES(mu_);

  // Calls `fn` once per instrument in registration order, holding the registry
  // mutex for the whole sweep: `fn` must not call back into this registry.
  void Visit(const std::function<void(const InstrumentView&)>& fn) const
      FAASNAP_EXCLUDES(mu_);

  // Full snapshot: {"metrics":[{"name":...,"labels":{...},"type":...,...}]},
  // sorted by (name, labels) so documents diff cleanly across runs. Histogram
  // entries carry interpolated p50/p95/p99 estimates. Histogram series are
  // read unlocked (see the class comment's thread-safety caveat).
  std::string ToJson() const FAASNAP_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string name;
    MetricLabels labels;
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Log2Histogram> histogram;
  };

  Entry* Resolve(const std::string& name, MetricLabels labels, Kind kind)
      FAASNAP_EXCLUDES(mu_);
  static std::string SeriesKey(const std::string& name, const MetricLabels& labels);

  mutable Mutex mu_;
  // deque: stable addresses as the registry grows.
  std::deque<Entry> entries_ FAASNAP_GUARDED_BY(mu_);
  std::map<std::string, Entry*> by_key_ FAASNAP_GUARDED_BY(mu_);
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_METRICS_REGISTRY_H_

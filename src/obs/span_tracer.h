// SpanTracer: span-based structured tracing for every actor in the simulation.
//
// The paper's analysis (Figure 1's time breakdown, Figure 2's fault-latency
// distribution, Table 3's fault/wait accounting) was gathered with bpftrace and
// perf probes over the guest, the daemon's loader thread, the userfaultfd
// monitor, and the block layer (sections 3.3, 6.4-6.5). This tracer is the
// simulation's equivalent: components record begin/end *spans* with parent
// links on per-actor lanes, so one invocation becomes a tree of intervals —
// "the guest blocked on fault X, which waited on disk read Y issued by loader
// chunk Z". The trace exports to Chrome/Perfetto JSON (obs/trace_export.h) and
// feeds the cold-start critical-path analyzer (obs/critical_path.h).
//
// Cost model: tracing is off by default; every emission site is guarded by one
// pointer null-check. Recording is strictly passive — it never schedules
// simulation events or reads the clock — so enabling tracing cannot change
// simulated timestamps or event order (pinned by obs_determinism_test).
//
// Thread safety: emission (Begin/End/Complete/Instant/InternName/BeginTrack/
// Clear) is mutex-protected, so real OS threads — the native snapshot loader
// thread — can record spans concurrently with the main thread. Read accessors
// (records(), record(), name(), track_names()) return references into tracer
// storage and require the tracer to be quiescent: call them only after the
// run, once worker threads are joined. Interned names have stable storage, so
// ids cached at attachment time stay valid across growth.
//
// Storage is a flat vector with a hard capacity: when full, new records are
// dropped (and counted) in O(1) rather than evicted, because analysis needs
// span trees from the *start* of a run, not its tail. Per-name counters keep
// counting past the cap.

#ifndef FAASNAP_SRC_OBS_SPAN_TRACER_H_
#define FAASNAP_SRC_OBS_SPAN_TRACER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/sim_time.h"
#include "src/common/thread_annotations.h"

namespace faasnap {

// One lane per actor kind, matching the actors of the paper's timelines. A lane
// renders as one Perfetto "thread" track per trace track (see SpanTracer::
// BeginTrack).
enum class ObsLane : uint8_t {
  kVcpu = 0,    // guest vCPU: invocation spans, fault spans
  kLoader,      // the daemon's prefetch loader thread
  kUffd,        // userspace userfaultfd handler (REAP's monitor)
  kDisk,        // block device service intervals
  kDaemon,      // daemon dispatch/setup, experiment phases
  kScheduler,   // host scheduler / keep-alive policy decisions
  kNative,      // native (real-kernel) snapshot sessions
  kLaneCount,
};

std::string_view ObsLaneName(ObsLane lane);

// Index+1 into the tracer's record vector; 0 means "no span" (also used as the
// null parent). Ids are never recycled within a trace.
using SpanId = uint64_t;
inline constexpr SpanId kNoSpan = 0;

struct SpanRecord {
  SimTime start;
  SimTime end;         // == start for instants; == start while still open
  SpanId parent = kNoSpan;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint32_t name = 0;   // interned name id (SpanTracer::name())
  uint32_t track = 0;  // trace track (one per platform/run), see BeginTrack
  ObsLane lane = ObsLane::kVcpu;
  bool instant = false;
  bool open = true;    // still awaiting End (always false for instants)
};

class SpanTracer {
 public:
  // `capacity` bounds the number of retained records; further emissions are
  // dropped in O(1) and counted in dropped_records().
  explicit SpanTracer(size_t capacity = size_t{1} << 20) : capacity_(capacity) {}
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // Interns `name`, returning a stable id valid until Clear(). Emission sites
  // may pass the string each time (one hash lookup) or pre-intern and use the
  // id overloads below on hot paths.
  uint32_t InternName(std::string_view name) FAASNAP_EXCLUDES(mu_);
  // Quiescent accessor: interned strings have stable storage (deque), but the
  // id must have been published before the last worker thread was joined.
  std::string_view name(uint32_t id) const FAASNAP_NO_THREAD_SAFETY_ANALYSIS {
    return names_[id];
  }

  // Opens a span. Returns kNoSpan when capacity is exhausted (End on the result
  // is then a no-op), so call sites never need to check.
  SpanId Begin(SimTime start, ObsLane lane, std::string_view name, uint64_t arg0 = 0,
               uint64_t arg1 = 0, SpanId parent = kNoSpan) FAASNAP_EXCLUDES(mu_);
  SpanId BeginId(SimTime start, ObsLane lane, uint32_t name_id, uint64_t arg0 = 0,
                 uint64_t arg1 = 0, SpanId parent = kNoSpan) FAASNAP_EXCLUDES(mu_);

  // Closes a span. End(kNoSpan, ...) is a no-op. The arg1 overload additionally
  // stores a value only known at completion (e.g. the resolved fault class).
  void End(SpanId id, SimTime end) FAASNAP_EXCLUDES(mu_);
  void End(SpanId id, SimTime end, uint64_t arg1) FAASNAP_EXCLUDES(mu_);

  // Records a span whose completion time is already known (e.g. a block-device
  // read whose service time is computed at issue).
  SpanId Complete(SimTime start, SimTime end, ObsLane lane, std::string_view name,
                  uint64_t arg0 = 0, uint64_t arg1 = 0, SpanId parent = kNoSpan)
      FAASNAP_EXCLUDES(mu_);
  SpanId CompleteId(SimTime start, SimTime end, ObsLane lane, uint32_t name_id,
                    uint64_t arg0 = 0, uint64_t arg1 = 0, SpanId parent = kNoSpan)
      FAASNAP_EXCLUDES(mu_);

  // Records a zero-duration marker.
  SpanId Instant(SimTime time, ObsLane lane, std::string_view name, uint64_t arg0 = 0,
                 uint64_t arg1 = 0, SpanId parent = kNoSpan) FAASNAP_EXCLUDES(mu_);

  // Starts a new track and makes it current: all subsequent records are tagged
  // with it. Tracks separate runs that share a tracer but not a clock (one
  // simulated Platform per experiment repetition restarts at t=0); the exporter
  // renders each track as its own Perfetto process. Track 0 exists by default.
  uint32_t BeginTrack(std::string name) FAASNAP_EXCLUDES(mu_);
  uint32_t current_track() const FAASNAP_EXCLUDES(mu_);

  // Total emissions of `name` (spans + instants), counted even past capacity.
  int64_t count(std::string_view name) const FAASNAP_EXCLUDES(mu_);

  uint64_t dropped_records() const FAASNAP_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  // Spans begun but not yet ended (instants never count). The flight recorder
  // recycles its buffer only at open_spans() == 0: a Clear with a span still
  // open would leave its holder with a dangling id.
  size_t open_spans() const FAASNAP_EXCLUDES(mu_);

  // Bumped on every mutation; lets derived views (the legacy EventTracer
  // projection) cache their rebuild.
  uint64_t revision() const FAASNAP_EXCLUDES(mu_);

  // Quiescent accessors: valid only while no other thread is emitting (after
  // the run / after worker threads are joined); exporters and tests.
  const std::vector<SpanRecord>& records() const FAASNAP_NO_THREAD_SAFETY_ANALYSIS {
    return records_;
  }
  const SpanRecord& record(SpanId id) const FAASNAP_NO_THREAD_SAFETY_ANALYSIS {
    return records_[id - 1];
  }
  const std::vector<std::string>& track_names() const FAASNAP_NO_THREAD_SAFETY_ANALYSIS {
    return track_names_;
  }

  void Clear() FAASNAP_EXCLUDES(mu_);

 private:
  uint32_t InternNameLocked(std::string_view name) FAASNAP_REQUIRES(mu_);
  SpanId BeginIdLocked(SimTime start, ObsLane lane, uint32_t name_id, uint64_t arg0,
                       uint64_t arg1, SpanId parent) FAASNAP_REQUIRES(mu_);
  void EndLocked(SpanId id, SimTime end) FAASNAP_REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<SpanRecord> records_ FAASNAP_GUARDED_BY(mu_);
  // deque: interned strings keep stable addresses as the table grows, so
  // name(id) string_views stay valid while other threads intern.
  std::deque<std::string> names_ FAASNAP_GUARDED_BY(mu_);
  std::unordered_map<std::string_view, uint32_t> name_ids_ FAASNAP_GUARDED_BY(mu_);
  std::vector<int64_t> name_counts_ FAASNAP_GUARDED_BY(mu_);  // parallel to names_
  std::vector<std::string> track_names_ FAASNAP_GUARDED_BY(mu_) = {"track0"};
  uint32_t current_track_ FAASNAP_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ FAASNAP_GUARDED_BY(mu_) = 0;
  uint64_t revision_ FAASNAP_GUARDED_BY(mu_) = 0;
  size_t open_spans_ FAASNAP_GUARDED_BY(mu_) = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_SPAN_TRACER_H_

#include "src/obs/legacy_tracer.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/obs/observability.h"

namespace faasnap {

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFaultStart:
      return "fault-start";
    case TraceEventType::kFaultEnd:
      return "fault-end";
    case TraceEventType::kDiskIssue:
      return "disk-issue";
    case TraceEventType::kDiskComplete:
      return "disk-complete";
    case TraceEventType::kLoaderChunk:
      return "loader-chunk";
    case TraceEventType::kSetupDone:
      return "setup-done";
    case TraceEventType::kInvocationStart:
      return "invocation-start";
    case TraceEventType::kInvocationEnd:
      return "invocation-end";
    case TraceEventType::kTypeCount:
      break;
  }
  return "unknown";
}

namespace {

// Lane a directly emitted legacy event renders on in span exports.
ObsLane LaneFor(TraceEventType type) {
  switch (type) {
    case TraceEventType::kDiskIssue:
    case TraceEventType::kDiskComplete:
      return ObsLane::kDisk;
    case TraceEventType::kLoaderChunk:
      return ObsLane::kLoader;
    case TraceEventType::kSetupDone:
      return ObsLane::kDaemon;
    default:
      return ObsLane::kVcpu;
  }
}

// Maps an instant name back to its type; kTypeCount = no match. Direct
// emissions (Emit) round-trip through the legacy hyphenated names; instants
// the platform records under canonical dotted names map explicitly.
TraceEventType TypeForName(std::string_view name) {
  if (name == obsname::kSetupDone) {
    return TraceEventType::kSetupDone;
  }
  for (int i = 0; i < static_cast<int>(TraceEventType::kTypeCount); ++i) {
    if (name == TraceEventTypeName(static_cast<TraceEventType>(i))) {
      return static_cast<TraceEventType>(i);
    }
  }
  return TraceEventType::kTypeCount;
}

}  // namespace

void EventTracer::Emit(SimTime time, TraceEventType type, uint64_t arg0, uint64_t arg1) {
  spans_.Instant(time, LaneFor(type), TraceEventTypeName(type), arg0, arg1);
}

void EventTracer::Refresh() const {
  if (projected_revision_ == spans_.revision()) {
    return;
  }
  projected_revision_ = spans_.revision();
  events_.clear();
  std::fill(std::begin(counts_), std::end(counts_), 0);

  std::vector<TraceEvent> projected;
  projected.reserve(spans_.records().size() * 2);
  const auto add = [&](SimTime time, TraceEventType type, uint64_t arg0, uint64_t arg1) {
    counts_[static_cast<int>(type)]++;
    projected.push_back(TraceEvent{time, type, arg0, arg1});
  };
  for (const SpanRecord& rec : spans_.records()) {
    const std::string_view name = spans_.name(rec.name);
    if (rec.instant) {
      const TraceEventType type = TypeForName(name);
      if (type != TraceEventType::kTypeCount) {
        add(rec.start, type, rec.arg0, rec.arg1);
      }
      continue;
    }
    if (name == obsname::kFault) {
      add(rec.start, TraceEventType::kFaultStart, rec.arg0, 0);
      if (!rec.open) {
        add(rec.end, TraceEventType::kFaultEnd, rec.arg0, rec.arg1);
      }
    } else if (name == obsname::kDiskRead) {
      add(rec.start, TraceEventType::kDiskIssue, rec.arg0, rec.arg1);
      if (!rec.open) {
        add(rec.end, TraceEventType::kDiskComplete, rec.arg0, rec.arg1);
      }
    } else if (name == obsname::kLoaderChunk) {
      // The legacy event fired once, at chunk-read issue.
      add(rec.start, TraceEventType::kLoaderChunk, rec.arg0, rec.arg1);
    } else if (name == obsname::kInvocation) {
      add(rec.start, TraceEventType::kInvocationStart, 0, 0);
      if (!rec.open) {
        add(rec.end, TraceEventType::kInvocationEnd,
            static_cast<uint64_t>((rec.end - rec.start).nanos()), 0);
      }
    }
    // Span names with no legacy equivalent (invoke, setup, uffd-resolve, ...)
    // simply don't project.
  }
  // Records sit in begin order; end events need re-sorting. Stable keeps the
  // original emission order for simultaneous events.
  std::stable_sort(projected.begin(), projected.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });
  const size_t keep = std::min(projected.size(), capacity_);
  events_.assign(projected.end() - static_cast<ptrdiff_t>(keep), projected.end());
}

int64_t EventTracer::count(TraceEventType type) const {
  Refresh();
  return counts_[static_cast<int>(type)];
}

const std::deque<TraceEvent>& EventTracer::events() const {
  Refresh();
  return events_;
}

void EventTracer::Clear() { spans_.Clear(); }

std::string EventTracer::RenderTimeline(SimTime from, SimTime to) const {
  Refresh();
  std::string out;
  for (const TraceEvent& event : events_) {
    if (event.time < from || to < event.time) {
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%10.3f ms  %-16s arg0=%llu arg1=%llu\n",
                  static_cast<double>(event.time.nanos()) / 1e6,
                  TraceEventTypeName(event.type).data(),
                  static_cast<unsigned long long>(event.arg0),
                  static_cast<unsigned long long>(event.arg1));
    out += line;
  }
  return out;
}

}  // namespace faasnap

#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/common/json_writer.h"
#include "src/common/status.h"
#include "src/obs/trace_export.h"

namespace faasnap {

namespace {

// Must match CriticalPathBreakdown's partition categories.
constexpr std::string_view kPhaseNames[] = {"dispatch",  "setup_cpu", "setup_disk",
                                            "guest_run", "fault_cpu", "uffd_wait",
                                            "disk_wait", "other"};
constexpr size_t kPhaseCount = sizeof(kPhaseNames) / sizeof(kPhaseNames[0]);

Duration PhaseValue(const CriticalPathBreakdown& bd, size_t phase) {
  switch (phase) {
    case 0:
      return bd.dispatch;
    case 1:
      return bd.setup_cpu;
    case 2:
      return bd.setup_disk;
    case 3:
      return bd.guest_run;
    case 4:
      return bd.fault_cpu;
    case 5:
      return bd.uffd_wait;
    case 6:
      return bd.disk_wait;
    default:
      return bd.other;
  }
}

// Lexicographic (total, seq): used both as the heap order (front = fastest)
// and as the strict "candidate beats the current fastest" eviction test —
// seq breaks ties deterministically.
bool Slower(Duration a_total, uint64_t a_seq, Duration b_total, uint64_t b_seq) {
  if (a_total != b_total) {
    return a_total > b_total;
  }
  return a_seq > b_seq;
}

// Heap comparator: "slower orders earlier" makes the *fastest* retained
// invocation the heap front, i.e. the eviction candidate.
bool HeapBefore(const FlightRecorder::RetainedInvocation& a,
                const FlightRecorder::RetainedInvocation& b) {
  return Slower(a.total, a.seq, b.total, b.seq);
}

// Latency histogram spanning 1us .. ~16s: wide enough for whole invocations.
constexpr Duration kDigestLower = Duration::Micros(1);
constexpr int kDigestBuckets = 24;

void HistogramFields(JsonWriter* json, const Log2Histogram& h) {
  json->Field("count", h.total_count())
      .Field("total_ns", static_cast<int64_t>(h.total_time().nanos()));
  if (h.total_count() > 0) {
    json->Field("mean_ns", static_cast<int64_t>(h.mean().nanos()))
        .Field("p50_ns", static_cast<int64_t>(h.EstimateQuantile(0.50).nanos()))
        .Field("p95_ns", static_cast<int64_t>(h.EstimateQuantile(0.95).nanos()))
        .Field("p99_ns", static_cast<int64_t>(h.EstimateQuantile(0.99).nanos()));
  }
}

}  // namespace

std::string_view ForensicOutcomeName(ForensicOutcome outcome) {
  switch (outcome) {
    case ForensicOutcome::kOk:
      return "ok";
    case ForensicOutcome::kDegraded:
      return "degraded";
    case ForensicOutcome::kFailed:
      return "failed";
    case ForensicOutcome::kShedQueueFull:
      return "shed_queue_full";
    case ForensicOutcome::kShedDeadline:
      return "shed_deadline";
  }
  return "unknown";
}

void FlightRecorder::Configure(const ForensicsConfig& config, MetricsRegistry* metrics) {
  FAASNAP_CHECK(buffer_ == nullptr && "flight recorder configured twice");
  FAASNAP_CHECK(config.buffer_capacity > 0);
  config_ = config;
  buffer_ = std::make_unique<SpanTracer>(config.buffer_capacity);
  total_digest_ = std::make_unique<Log2Histogram>(kDigestLower, kDigestBuckets);
  phase_digests_.reserve(kPhaseCount);
  for (size_t i = 0; i < kPhaseCount; ++i) {
    phase_digests_.push_back(std::make_unique<Log2Histogram>(kDigestLower, kDigestBuckets));
  }
  if (metrics != nullptr) {
    for (size_t i = 0; i < kForensicOutcomeCount; ++i) {
      outcome_metrics_[i] = metrics->GetCounter(
          "forensics.invocations",
          {{"outcome", std::string(ForensicOutcomeName(static_cast<ForensicOutcome>(i)))}});
    }
    retained_slowest_metric_ =
        metrics->GetCounter("forensics.retained", {{"reason", "slowest"}});
    retained_non_ok_metric_ =
        metrics->GetCounter("forensics.retained", {{"reason", "non_ok"}});
    dropped_non_ok_metric_ = metrics->GetCounter("forensics.dropped_non_ok");
    total_metric_ =
        metrics->GetHistogram("forensics.total_ns", {}, kDigestLower, kDigestBuckets);
  }
}

void FlightRecorder::OnInvokeBegin() {
  if (!enabled()) {
    return;
  }
  ++in_flight_;
}

void FlightRecorder::OnInvokeEnd(SpanId invoke_span, ForensicOutcome outcome,
                                 std::string_view function, Duration total) {
  if (!enabled()) {
    return;
  }
  const uint64_t seq = static_cast<uint64_t>(invocations_);
  ++invocations_;
  const size_t idx = static_cast<size_t>(outcome);
  ++outcome_counts_[idx];
  if (outcome_metrics_[idx] != nullptr) {
    outcome_metrics_[idx]->Add();
  }
  total_digest_->Record(total);
  if (total_metric_ != nullptr) {
    total_metric_->Record(total);
  }

  std::optional<CriticalPathBreakdown> bd = AnalyzeInvokeSpan(*buffer_, invoke_span);
  if (!bd.has_value()) {
    // Buffer exhausted before the invoke span was opened: the invocation
    // still counts in the digests above, just with no phase attribution.
    ++unanalyzed_;
  } else {
    for (size_t i = 0; i < kPhaseCount; ++i) {
      phase_digests_[i]->Record(PhaseValue(*bd, i));
    }
    if (outcome != ForensicOutcome::kOk) {
      if (non_ok_.size() < config_.max_non_ok) {
        non_ok_.push_back(Extract(invoke_span, outcome, function, total, *bd));
        non_ok_.back().seq = seq;
        if (retained_non_ok_metric_ != nullptr) {
          retained_non_ok_metric_->Add();
        }
      } else {
        ++dropped_non_ok_;
        if (dropped_non_ok_metric_ != nullptr) {
          dropped_non_ok_metric_->Add();
        }
      }
    } else if (config_.slowest_k > 0) {
      const bool room = slowest_.size() < config_.slowest_k;
      if (room || Slower(total, seq, slowest_.front().total, slowest_.front().seq)) {
        if (!room) {
          std::pop_heap(slowest_.begin(), slowest_.end(), HeapBefore);
          slowest_.pop_back();
        }
        slowest_.push_back(Extract(invoke_span, outcome, function, total, *bd));
        slowest_.back().seq = seq;
        std::push_heap(slowest_.begin(), slowest_.end(), HeapBefore);
        if (retained_slowest_metric_ != nullptr) {
          retained_slowest_metric_->Add();
        }
      }
    }
  }

  if (in_flight_ > 0) {
    --in_flight_;
  }
  MaybeRecycle();
}

void FlightRecorder::MaybeRecycle() {
  if (!enabled() || in_flight_ != 0) {
    return;
  }
  if (buffer_->records().empty() || buffer_->open_spans() != 0) {
    return;
  }
  buffer_->Clear();
  ++recycles_;
}

FlightRecorder::RetainedInvocation FlightRecorder::Extract(
    SpanId invoke_span, ForensicOutcome outcome, std::string_view function, Duration total,
    const CriticalPathBreakdown& breakdown) const {
  RetainedInvocation out;
  out.function = std::string(function);
  out.outcome = outcome;
  out.total = total;
  out.breakdown = breakdown;
  const std::vector<SpanRecord>& records = buffer_->records();
  if (invoke_span == kNoSpan || invoke_span > records.size()) {
    return out;
  }
  const SpanRecord& invoke = records[invoke_span - 1];
  const int64_t lo = invoke.start.nanos();
  const int64_t hi = invoke.end.nanos();

  // Subtree membership, memoized along each parent chain.
  std::vector<int8_t> member(records.size() + 1, 0);  // 0 unknown, 1 in, 2 out
  member[invoke_span] = 1;
  std::vector<SpanId> path;
  const auto in_subtree = [&](SpanId id) {
    path.clear();
    SpanId cur = id;
    while (cur != kNoSpan && member[cur] == 0) {
      path.push_back(cur);
      cur = records[cur - 1].parent;
    }
    const int8_t verdict = cur == kNoSpan ? 2 : member[cur];
    for (SpanId p : path) {
      member[p] = verdict;
    }
    return verdict == 1;
  };

  std::vector<uint32_t> remap(records.size() + 1, 0);
  std::map<uint32_t, uint32_t> name_map;  // buffer name id -> local id
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& rec = records[i];
    const SpanId id = static_cast<SpanId>(i + 1);
    bool keep = in_subtree(id);
    if (!keep && rec.lane == ObsLane::kDisk && rec.track == invoke.track) {
      // Disk service intervals count against the invocation even when issued
      // by someone else (the analyzer's rule); retain them for the same reason.
      const int64_t s = rec.start.nanos();
      const int64_t e = (rec.open ? invoke.end : rec.end).nanos();
      keep = s < hi && e > lo;
    }
    if (!keep) {
      continue;
    }
    SpanRecord copy = rec;
    copy.parent = remap[rec.parent];  // 0 when the parent was not retained
    copy.track = 0;
    auto [it, inserted] = name_map.emplace(rec.name, static_cast<uint32_t>(out.names.size()));
    if (inserted) {
      out.names.emplace_back(buffer_->name(rec.name));
    }
    copy.name = it->second;
    remap[id] = static_cast<uint32_t>(out.spans.size() + 1);
    out.spans.push_back(copy);
  }
  return out;
}

std::string FlightRecorder::ExportRetainedTrace() const {
  std::vector<const RetainedInvocation*> all;
  all.reserve(slowest_.size() + non_ok_.size());
  for (const RetainedInvocation& inv : slowest_) {
    all.push_back(&inv);
  }
  for (const RetainedInvocation& inv : non_ok_) {
    all.push_back(&inv);
  }
  std::sort(all.begin(), all.end(),
            [](const RetainedInvocation* a, const RetainedInvocation* b) {
              return a->seq < b->seq;
            });

  size_t total_spans = 1;
  for (const RetainedInvocation* inv : all) {
    total_spans += inv->spans.size();
  }
  SpanTracer replay(total_spans);
  for (const RetainedInvocation* inv : all) {
    char label[192];
    std::snprintf(label, sizeof(label), "inv %llu %s %s",
                  static_cast<unsigned long long>(inv->seq), inv->function.c_str(),
                  std::string(ForensicOutcomeName(inv->outcome)).c_str());
    replay.BeginTrack(label);
    std::vector<SpanId> ids(inv->spans.size() + 1, kNoSpan);
    for (size_t j = 0; j < inv->spans.size(); ++j) {
      const SpanRecord& rec = inv->spans[j];
      const SpanId parent = rec.parent == 0 ? kNoSpan : ids[rec.parent];
      const std::string& name = inv->names[rec.name];
      if (rec.instant) {
        ids[j + 1] = replay.Instant(rec.start, rec.lane, name, rec.arg0, rec.arg1, parent);
      } else {
        const SpanId id = replay.Begin(rec.start, rec.lane, name, rec.arg0, rec.arg1, parent);
        if (!rec.open) {
          replay.End(id, rec.end);
        }
        ids[j + 1] = id;
      }
    }
  }
  return ExportChromeTrace(replay);
}

std::string FlightRecorder::SummaryToJson() const {
  if (!enabled()) {
    return "{\"enabled\":false}";
  }
  JsonWriter json;
  json.BeginObject()
      .Field("invocations", invocations_)
      .Field("ok", outcome_counts_[0])
      .Field("degraded", outcome_counts_[1])
      .Field("failed", outcome_counts_[2])
      .Field("shed_queue_full", outcome_counts_[3])
      .Field("shed_deadline", outcome_counts_[4])
      .Field("unanalyzed", unanalyzed_)
      .Field("slowest_k", static_cast<int64_t>(config_.slowest_k))
      .Field("max_non_ok", static_cast<int64_t>(config_.max_non_ok))
      .Field("retained_slowest", static_cast<int64_t>(slowest_.size()))
      .Field("retained_non_ok", static_cast<int64_t>(non_ok_.size()))
      .Field("dropped_non_ok", dropped_non_ok_)
      .Field("recycles", recycles_);

  json.Key("digests").BeginObject();
  json.Key("total").BeginObject();
  HistogramFields(&json, *total_digest_);
  json.EndObject();
  json.Key("phases").BeginObject();
  for (size_t i = 0; i < kPhaseCount; ++i) {
    json.Key(std::string(kPhaseNames[i])).BeginObject();
    HistogramFields(&json, *phase_digests_[i]);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();

  std::vector<const RetainedInvocation*> all;
  all.reserve(slowest_.size() + non_ok_.size());
  for (const RetainedInvocation& inv : slowest_) {
    all.push_back(&inv);
  }
  for (const RetainedInvocation& inv : non_ok_) {
    all.push_back(&inv);
  }
  std::sort(all.begin(), all.end(),
            [](const RetainedInvocation* a, const RetainedInvocation* b) {
              return a->seq < b->seq;
            });
  json.Key("retained").BeginArray();
  for (const RetainedInvocation* inv : all) {
    json.BeginObject()
        .Field("seq", inv->seq)
        .Field("function", inv->function)
        .Field("outcome", std::string(ForensicOutcomeName(inv->outcome)))
        .Field("total_ns", inv->total)
        .Field("spans", static_cast<int64_t>(inv->spans.size()))
        .Field("dispatch_ns", inv->breakdown.dispatch.nanos())
        .Field("setup_cpu_ns", inv->breakdown.setup_cpu.nanos())
        .Field("setup_disk_ns", inv->breakdown.setup_disk.nanos())
        .Field("guest_run_ns", inv->breakdown.guest_run.nanos())
        .Field("fault_cpu_ns", inv->breakdown.fault_cpu.nanos())
        .Field("uffd_wait_ns", inv->breakdown.uffd_wait.nanos())
        .Field("disk_wait_ns", inv->breakdown.disk_wait.nanos())
        .Field("other_ns", inv->breakdown.other.nanos())
        .Field("faults", inv->breakdown.faults)
        .EndObject();
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

}  // namespace faasnap

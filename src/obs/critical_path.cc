#include "src/obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/json_writer.h"
#include "src/obs/observability.h"

namespace faasnap {

namespace {

// Sorted disjoint [start, end) intervals with point queries.
class IntervalSet {
 public:
  void Add(int64_t start, int64_t end) {
    if (end > start) {
      raw_.push_back({start, end});
    }
  }

  void Merge() {
    std::sort(raw_.begin(), raw_.end());
    merged_.clear();
    for (const auto& [s, e] : raw_) {
      if (!merged_.empty() && s <= merged_.back().second) {
        merged_.back().second = std::max(merged_.back().second, e);
      } else {
        merged_.push_back({s, e});
      }
    }
  }

  bool Contains(int64_t t) const {
    auto it = std::upper_bound(merged_.begin(), merged_.end(),
                               std::make_pair(t, INT64_MAX));
    if (it == merged_.begin()) {
      return false;
    }
    --it;
    return t < it->second;
  }

  void AppendBoundaries(std::vector<int64_t>* out) const {
    for (const auto& [s, e] : merged_) {
      out->push_back(s);
      out->push_back(e);
    }
  }

 private:
  std::vector<std::pair<int64_t, int64_t>> raw_;
  std::vector<std::pair<int64_t, int64_t>> merged_;
};

// True when walking `id`'s parent chain reaches `ancestor`.
bool DescendsFrom(const SpanTracer& spans, SpanId id, SpanId ancestor) {
  while (id != kNoSpan) {
    if (id == ancestor) {
      return true;
    }
    id = spans.record(id).parent;
  }
  return false;
}

}  // namespace

std::optional<CriticalPathBreakdown> AnalyzeColdStart(const SpanTracer& spans,
                                                      uint32_t track,
                                                      size_t invoke_index) {
  const std::vector<SpanRecord>& records = spans.records();

  // Locate the requested invoke span.
  SpanId invoke_id = kNoSpan;
  size_t seen = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& rec = records[i];
    if (rec.track == track && !rec.instant && !rec.open &&
        spans.name(rec.name) == obsname::kInvoke) {
      if (seen++ == invoke_index) {
        invoke_id = static_cast<SpanId>(i + 1);
        break;
      }
    }
  }
  if (invoke_id == kNoSpan) {
    return std::nullopt;
  }
  return AnalyzeInvokeSpan(spans, invoke_id);
}

std::optional<CriticalPathBreakdown> AnalyzeInvokeSpan(const SpanTracer& spans,
                                                       SpanId invoke_id) {
  const std::vector<SpanRecord>& records = spans.records();
  if (invoke_id == kNoSpan || invoke_id > records.size()) {
    return std::nullopt;
  }
  const SpanRecord& invoke = spans.record(invoke_id);
  if (invoke.instant || invoke.open) {
    return std::nullopt;
  }
  const uint32_t track = invoke.track;
  const int64_t lo = invoke.start.nanos();
  const int64_t hi = invoke.end.nanos();

  CriticalPathBreakdown bd;
  bd.total = invoke.end - invoke.start;

  IntervalSet dispatch, setup, invocation, fault, uffd, disk;
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& rec = records[i];
    if (rec.track != track || rec.instant) {
      continue;
    }
    const int64_t s = std::max(rec.start.nanos(), lo);
    const int64_t e = std::min((rec.open ? invoke.end : rec.end).nanos(), hi);
    if (e <= s) {
      continue;
    }
    if (rec.lane == ObsLane::kDisk) {
      // Any in-flight disk service interval on the track counts: a fault can
      // block on a read it did not issue.
      disk.Add(s, e);
      ++bd.disk_reads;
      continue;
    }
    const std::string_view name = spans.name(rec.name);
    const SpanId id = static_cast<SpanId>(i + 1);
    if (name == obsname::kDispatch && DescendsFrom(spans, id, invoke_id)) {
      dispatch.Add(s, e);
    } else if (name == obsname::kSetup && DescendsFrom(spans, id, invoke_id)) {
      setup.Add(s, e);
    } else if (name == obsname::kInvocation && DescendsFrom(spans, id, invoke_id)) {
      invocation.Add(s, e);
    } else if (name == obsname::kFault && DescendsFrom(spans, id, invoke_id)) {
      fault.Add(s, e);
      ++bd.faults;
    } else if ((name == obsname::kUffdResolve || name == obsname::kReapFetch) &&
               DescendsFrom(spans, id, invoke_id)) {
      uffd.Add(s, e);
    }
  }
  dispatch.Merge();
  setup.Merge();
  invocation.Merge();
  fault.Merge();
  uffd.Merge();
  disk.Merge();

  // Sweep the elementary segments between all interval boundaries; each segment
  // lands in exactly one category, so the categories partition [lo, hi].
  std::vector<int64_t> cuts = {lo, hi};
  dispatch.AppendBoundaries(&cuts);
  setup.AppendBoundaries(&cuts);
  invocation.AppendBoundaries(&cuts);
  fault.AppendBoundaries(&cuts);
  uffd.AppendBoundaries(&cuts);
  disk.AppendBoundaries(&cuts);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const int64_t s = std::max(cuts[i], lo);
    const int64_t e = std::min(cuts[i + 1], hi);
    if (e <= s) {
      continue;
    }
    const int64_t mid = s + (e - s) / 2;
    const Duration len = Duration::Nanos(e - s);
    if (invocation.Contains(mid)) {
      if (fault.Contains(mid)) {
        if (disk.Contains(mid)) {
          bd.disk_wait += len;
        } else if (uffd.Contains(mid)) {
          bd.uffd_wait += len;
        } else {
          bd.fault_cpu += len;
        }
      } else {
        bd.guest_run += len;
      }
    } else if (setup.Contains(mid)) {
      if (disk.Contains(mid)) {
        bd.setup_disk += len;
      } else {
        bd.setup_cpu += len;
      }
    } else if (dispatch.Contains(mid)) {
      bd.dispatch += len;
    } else {
      bd.other += len;
    }
  }
  return bd;
}

std::string CriticalPathToString(const CriticalPathBreakdown& bd) {
  const double total_ms = bd.total.millis();
  std::string out;
  char line[128];
  const auto row = [&](const char* label, Duration d) {
    const double pct = total_ms > 0 ? 100.0 * d.millis() / total_ms : 0.0;
    std::snprintf(line, sizeof(line), "  %-10s %9.3f ms  (%5.1f%%)\n", label, d.millis(), pct);
    out += line;
  };
  std::snprintf(line, sizeof(line), "cold-start %9.3f ms, %lld faults, %lld disk reads\n",
                total_ms, static_cast<long long>(bd.faults),
                static_cast<long long>(bd.disk_reads));
  out += line;
  row("dispatch", bd.dispatch);
  row("setup_cpu", bd.setup_cpu);
  row("setup_disk", bd.setup_disk);
  row("guest_run", bd.guest_run);
  row("fault_cpu", bd.fault_cpu);
  row("uffd_wait", bd.uffd_wait);
  row("disk_wait", bd.disk_wait);
  if (bd.other > Duration::Zero()) {
    row("other", bd.other);
  }
  return out;
}

std::string CriticalPathToJson(const CriticalPathBreakdown& bd) {
  JsonWriter json;
  json.BeginObject()
      .Field("total_ns", bd.total.nanos())
      .Field("dispatch_ns", bd.dispatch.nanos())
      .Field("setup_cpu_ns", bd.setup_cpu.nanos())
      .Field("setup_disk_ns", bd.setup_disk.nanos())
      .Field("guest_run_ns", bd.guest_run.nanos())
      .Field("fault_cpu_ns", bd.fault_cpu.nanos())
      .Field("uffd_wait_ns", bd.uffd_wait.nanos())
      .Field("disk_wait_ns", bd.disk_wait.nanos())
      .Field("other_ns", bd.other.nanos())
      .Field("faults", bd.faults)
      .Field("disk_reads", bd.disk_reads)
      .EndObject();
  return json.TakeString();
}

}  // namespace faasnap

// Observability: the bundle components attach to, plus the canonical span
// names shared by emission sites, the exporter's arg labeling, and the
// critical-path analyzer.
//
// Attach once (Platform::set_observability, or per-component setters), run, then
// export: obs.spans -> ExportChromeTrace (Perfetto-loadable JSON), obs.metrics
// -> MetricsRegistry::ToJson, obs.timeline -> windowed JSONL (configured with a
// sink), obs.forensics -> tail-retained traces + streaming digests. Timeline and
// forensics are opt-in (Configure); unconfigured they are inert null-checks.

#ifndef FAASNAP_SRC_OBS_OBSERVABILITY_H_
#define FAASNAP_SRC_OBS_OBSERVABILITY_H_

#include <string_view>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/metrics_timeline.h"
#include "src/obs/span_tracer.h"

namespace faasnap {

struct Observability {
  SpanTracer spans;
  MetricsRegistry metrics;
  MetricsTimeline timeline;
  FlightRecorder forensics;
};

// Canonical span/instant names: lowercase dotted identifiers (enforced by
// faasnap_lint's obs-naming rule). One invocation's tree:
//
//   invoke (daemon)                      request arrival -> report completion;
//   |                                    arg1 = InvocationOutcome at end
//   +- dispatch (daemon)                 daemon request-queue serialization
//   +- setup (daemon)                    VMM restore + memory mapping (+ REAP fetch)
//   |  +- reap.fetch (uffd)              REAP's blocking working-set read
//   |  +- disk.read (disk)               device service intervals
//   +- loader (loader)                   concurrent-paging loader lifetime
//   |  +- loader.chunk (loader)          one chunk: issue -> pages present
//   |     +- disk.read (disk)
//   +- invocation (vCPU)                 guest execution
//      +- fault (vCPU)                   arg0 = page, arg1 = FaultClass at end
//         +- uffd.resolve (uffd)         userspace handler round trip
//         +- disk.read (disk)            arg0 = offset bytes, arg1 = bytes
namespace obsname {
inline constexpr std::string_view kInvoke = "invoke";
inline constexpr std::string_view kDispatch = "dispatch";
inline constexpr std::string_view kSetup = "setup";
inline constexpr std::string_view kSetupDone = "setup.done";  // instant, arg0 = mmap calls
inline constexpr std::string_view kInvocation = "invocation";
inline constexpr std::string_view kFault = "fault";
inline constexpr std::string_view kUffdResolve = "uffd.resolve";
inline constexpr std::string_view kReapFetch = "reap.fetch";
inline constexpr std::string_view kLoader = "loader";
inline constexpr std::string_view kLoaderChunk = "loader.chunk";  // arg0 = file page, arg1 = pages
inline constexpr std::string_view kDiskRead = "disk.read";        // arg0 = offset, arg1 = bytes
inline constexpr std::string_view kRecord = "record";             // record phase (daemon)
inline constexpr std::string_view kExperimentCell = "experiment.cell";
inline constexpr std::string_view kSchedulerServe = "scheduler.serve";
inline constexpr std::string_view kSchedPromote = "sched.promote";  // instant, aged prefetch beat demand; arg0 = offset, arg1 = bytes
inline constexpr std::string_view kStorageRetry = "storage.retry";  // instant, arg0 = attempt, arg1 = device
inline constexpr std::string_view kBreakerOpen = "breaker.open";    // instant, arg0 = device
inline constexpr std::string_view kDegraded = "degraded";           // instant (daemon lane)
inline constexpr std::string_view kShed = "shed";  // instant (daemon lane), arg0 = outcome
}  // namespace obsname

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_OBSERVABILITY_H_

// EventTracer: the original flat-event tracing API, now a compatibility shim
// over SpanTracer (obs/span_tracer.h).
//
// EventTracer owns a SpanTracer; Platform::set_tracer wires that span tracer
// into every component, and this class lazily *projects* the recorded spans
// back into the legacy flat events — a fault span becomes a fault-start /
// fault-end pair, a disk-read span becomes disk-issue / disk-complete, and so
// on — preserving the original timestamps, counters, ring-buffer semantics,
// and RenderTimeline format. Direct Emit() calls are recorded as instants and
// project 1:1.
//
// New code should attach an Observability bundle (obs/observability.h) and use
// SpanTracer directly; this type exists so existing call sites and tests keep
// working unchanged.

#ifndef FAASNAP_SRC_OBS_LEGACY_TRACER_H_
#define FAASNAP_SRC_OBS_LEGACY_TRACER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "src/common/sim_time.h"
#include "src/obs/span_tracer.h"

namespace faasnap {

enum class TraceEventType : int {
  kFaultStart = 0,   // arg0 = guest page
  kFaultEnd,         // arg0 = guest page, arg1 = fault class
  kDiskIssue,        // arg0 = offset bytes, arg1 = bytes
  kDiskComplete,     // arg0 = offset bytes, arg1 = bytes
  kLoaderChunk,      // arg0 = file page, arg1 = pages
  kSetupDone,        // arg0 = mmap calls
  kInvocationStart,  // no args
  kInvocationEnd,    // arg0 = elapsed ns
  kTypeCount,
};

std::string_view TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  SimTime time;
  TraceEventType type = TraceEventType::kFaultStart;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class EventTracer {
 public:
  // Keeps at most `capacity` most-recent events (counters are unbounded while
  // the underlying span tracer has headroom; see SpanTracer::dropped_records).
  explicit EventTracer(size_t capacity = 65536) : capacity_(capacity) {}

  void Emit(SimTime time, TraceEventType type, uint64_t arg0 = 0, uint64_t arg1 = 0);

  int64_t count(TraceEventType type) const;
  const std::deque<TraceEvent>& events() const;
  void Clear();

  // "48.132 ms  fault-end        arg0=12345 arg1=2" lines, oldest first,
  // restricted to [from, to].
  std::string RenderTimeline(SimTime from, SimTime to) const;

  // The span tracer components actually record into.
  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }

 private:
  // Rebuilds events_/counts_ from the span records when they changed.
  void Refresh() const;

  size_t capacity_;
  SpanTracer spans_;
  mutable uint64_t projected_revision_ = ~uint64_t{0};
  mutable std::deque<TraceEvent> events_;
  mutable int64_t counts_[static_cast<int>(TraceEventType::kTypeCount)] = {};
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_LEGACY_TRACER_H_

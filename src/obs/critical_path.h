// Cold-start critical-path analysis over a SpanTracer's records.
//
// The paper's Figure 1 breaks a cold start into the phases the request is
// actually blocked on: VMM restore and memory-mapping setup, guest execution,
// and fault handling split between userspace round trips and disk waits.
// AnalyzeColdStart reproduces that breakdown mechanically from the span tree:
// it takes one `invoke` span and partitions its [start, end] window into
// disjoint categories, so the components always sum to the cold-start duration
// exactly — a machine-checkable Figure 1.
//
// Classification of each instant, by priority:
//   inside `invocation`:
//     covered by a disk-read span on the track -> disk_wait   (inside a fault)
//     covered by uffd-resolve/reap-fetch       -> uffd_wait   (inside a fault)
//     inside a fault span otherwise            -> fault_cpu
//     otherwise                                -> guest_run
//   inside `setup`:
//     covered by a disk-read span              -> setup_disk
//     otherwise                                -> setup_cpu
//   inside `dispatch`                          -> dispatch (queueing)
//   otherwise                                  -> other (gaps; normally zero)
//
// Disk coverage is tested against *all* disk-read spans on the track, not just
// descendants of the fault: a fault that waits on a read the loader already
// has in flight is still disk-bound for that interval.

#ifndef FAASNAP_SRC_OBS_CRITICAL_PATH_H_
#define FAASNAP_SRC_OBS_CRITICAL_PATH_H_

#include <optional>
#include <string>

#include "src/common/sim_time.h"
#include "src/obs/span_tracer.h"

namespace faasnap {

struct CriticalPathBreakdown {
  Duration total;      // invoke span duration; == Sum() by construction
  Duration dispatch;   // daemon request-queue wait
  Duration setup_cpu;  // VMM restore / mmap work off disk
  Duration setup_disk; // setup blocked on the block device (e.g. REAP fetch)
  Duration guest_run;  // guest executing, no fault outstanding
  Duration fault_cpu;  // fault handling outside uffd/disk waits
  Duration uffd_wait;  // userspace fault-handler round trips
  Duration disk_wait;  // fault blocked while a disk read is in flight
  Duration other;      // uncategorized gaps inside the invoke window

  int64_t faults = 0;      // fault spans inside the window
  int64_t disk_reads = 0;  // disk-read spans overlapping the window

  Duration Sum() const {
    return dispatch + setup_cpu + setup_disk + guest_run + fault_cpu + uffd_wait +
           disk_wait + other;
  }
};

// Analyzes the `invoke_index`-th closed `invoke` span on `track`. Returns
// nullopt if that span does not exist (tracing disabled, or still open).
std::optional<CriticalPathBreakdown> AnalyzeColdStart(const SpanTracer& spans,
                                                      uint32_t track = 0,
                                                      size_t invoke_index = 0);

// Analyzes one specific invoke span by id — callers that opened the span
// themselves (the flight recorder at invoke end) skip the name search. The
// span must be closed and non-instant; returns nullopt otherwise. The
// partition guarantee is outcome-independent: degraded and failed invocations
// still sum exactly.
std::optional<CriticalPathBreakdown> AnalyzeInvokeSpan(const SpanTracer& spans,
                                                       SpanId invoke_id);

// "  setup_cpu  1.234 ms  (12.3%)" style multi-line rendering.
std::string CriticalPathToString(const CriticalPathBreakdown& bd);

// Flat JSON object with *_ns fields plus counts.
std::string CriticalPathToJson(const CriticalPathBreakdown& bd);

}  // namespace faasnap

#endif  // FAASNAP_SRC_OBS_CRITICAL_PATH_H_

#include "src/obs/metrics_registry.h"

#include <algorithm>

#include "src/common/json_writer.h"
#include "src/common/status.h"

namespace faasnap {

std::string MetricsRegistry::SeriesKey(const std::string& name, const MetricLabels& labels) {
  // '\x1f' cannot appear in names/labels coming from code; it keeps
  // ("a","b=c") and ("a|b","c") distinct.
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

MetricsRegistry::Entry* MetricsRegistry::Resolve(const std::string& name, MetricLabels labels,
                                                 Kind kind) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  const std::string key = SeriesKey(name, labels);
  MutexLock lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    FAASNAP_CHECK(it->second->kind == kind && "metric re-registered with a different type");
    return it->second;
  }
  Entry& entry = entries_.emplace_back();  // Counter/Gauge atomics: not movable
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = kind;
  by_key_[key] = &entry;
  return &entry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, MetricLabels labels) {
  return &Resolve(name, std::move(labels), Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, MetricLabels labels) {
  return &Resolve(name, std::move(labels), Kind::kGauge)->gauge;
}

Log2Histogram* MetricsRegistry::GetHistogram(const std::string& name, MetricLabels labels,
                                             Duration lower_edge, int num_buckets) {
  Entry* entry = Resolve(name, std::move(labels), Kind::kHistogram);
  MutexLock lock(mu_);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Log2Histogram>(lower_edge, num_buckets);
  }
  return entry->histogram.get();
}

size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void MetricsRegistry::Visit(const std::function<void(const InstrumentView&)>& fn) const {
  MutexLock lock(mu_);
  size_t index = 0;
  for (const Entry& entry : entries_) {
    InstrumentView view;
    view.index = index++;
    view.name = &entry.name;
    view.labels = &entry.labels;
    view.kind = entry.kind;
    switch (entry.kind) {
      case Kind::kCounter:
        view.counter_value = entry.counter.Get();
        break;
      case Kind::kGauge:
        view.gauge_value = entry.gauge.Get();
        view.gauge_max = entry.gauge.GetMax();
        break;
      case Kind::kHistogram:
        view.histogram = entry.histogram.get();
        break;
    }
    fn(view);
  }
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    sorted.push_back(&entry);
  }
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->name != b->name) {
      return a->name < b->name;
    }
    return a->labels < b->labels;
  });

  JsonWriter json;
  json.BeginObject().Key("metrics").BeginArray();
  for (const Entry* entry : sorted) {
    json.BeginObject().Field("name", entry->name);
    json.Key("labels").BeginObject();
    for (const auto& [k, v] : entry->labels) {
      json.Field(k, v);
    }
    json.EndObject();
    switch (entry->kind) {
      case Kind::kCounter:
        json.Field("type", "counter").Field("value", entry->counter.value);
        break;
      case Kind::kGauge:
        json.Field("type", "gauge")
            .Field("value", entry->gauge.value)
            .Field("max", entry->gauge.max_value);
        break;
      case Kind::kHistogram: {
        const Log2Histogram& h = *entry->histogram;
        json.Field("type", "histogram")
            .Field("count", h.total_count())
            .Field("total_ns", static_cast<int64_t>(h.total_time().nanos()));
        if (h.total_count() > 0) {
          json.Field("p50_ns", static_cast<int64_t>(h.EstimateQuantile(0.50).nanos()))
              .Field("p95_ns", static_cast<int64_t>(h.EstimateQuantile(0.95).nanos()))
              .Field("p99_ns", static_cast<int64_t>(h.EstimateQuantile(0.99).nanos()));
        }
        json.Key("buckets").BeginArray();
        for (int i = 0; i < h.num_buckets(); ++i) {
          if (h.bucket_count(i) == 0) {
            continue;  // sparse: most series touch a few buckets
          }
          json.BeginObject()
              .Field("upper_ns", h.bucket_upper(i))
              .Field("count", h.bucket_count(i))
              .EndObject();
        }
        json.EndArray();
        break;
      }
    }
    json.EndObject();
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

}  // namespace faasnap

// EventFn: the simulator's callback type.
//
// A move-only callable with 48 bytes of inline storage, built for the event
// loop's churn: scheduling moves the callback into a slab slot, firing moves it
// back out, and both must not touch the allocator. Closures with trivially
// copyable captures (the overwhelmingly common case — a few pointers and
// integers) move by memcpy and destroy for free; anything bigger or fancier
// still works through a type-erased manager, falling back to the heap only when
// the capture does not fit inline.

#ifndef FAASNAP_SRC_SIM_EVENT_FN_H_
#define FAASNAP_SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/status.h"

namespace faasnap {

class EventFn {
 public:
  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    Init<F, D>(std::forward<F>(f));
  }

  // Assigns a callable in place: one construction directly into the target's
  // storage, with no intermediate EventFn move (the schedule fast path).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn& operator=(F&& f) {
    Reset();
    Init<F, D>(std::forward<F>(f));
    return *this;
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() {
    FAASNAP_CHECK(invoke_ != nullptr);
    invoke_(this);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  static constexpr size_t kInlineBytes = 48;

  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename F, typename D>
  void Init(F&& f) {
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](EventFn* self) { (*self->Inline<D>())(); };
      if constexpr (!std::is_trivially_copyable_v<D> ||
                    !std::is_trivially_destructible_v<D>) {
        manage_ = [](EventFn* dst, EventFn* src) {
          if (src != nullptr) {
            ::new (static_cast<void*>(dst->storage_)) D(std::move(*src->Inline<D>()));
            src->Inline<D>()->~D();
          } else {
            dst->Inline<D>()->~D();
          }
        };
      }
      // Trivially copyable + destructible: manage_ stays null; moves are a
      // memcpy of the buffer and destruction is a no-op.
    } else {
      D* heap = new D(std::forward<F>(f));
      std::memcpy(storage_, &heap, sizeof(heap));
      invoke_ = [](EventFn* self) { (*self->Heap<D>())(); };
      manage_ = [](EventFn* dst, EventFn* src) {
        if (src != nullptr) {
          std::memcpy(dst->storage_, src->storage_, sizeof(D*));
        } else {
          delete dst->Heap<D>();
        }
      };
    }
  }

  template <typename D>
  D* Inline() noexcept {
    return std::launder(reinterpret_cast<D*>(storage_));
  }
  template <typename D>
  D* Heap() noexcept {
    D* p;
    std::memcpy(&p, storage_, sizeof(p));
    return p;
  }

  void Reset() noexcept {
    if (manage_ != nullptr) {
      manage_(this, nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void MoveFrom(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(this, &other);
    } else if (invoke_ != nullptr) {
      std::memcpy(storage_, other.storage_, kInlineBytes);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(EventFn*) = nullptr;
  // Moves *src into *dst (src != nullptr) or destroys *dst (src == nullptr).
  // Null for trivially relocatable callables.
  void (*manage_)(EventFn*, EventFn*) = nullptr;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_SIM_EVENT_FN_H_

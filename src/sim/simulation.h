// Discrete-event simulation core.
//
// A Simulation owns a virtual nanosecond clock and a priority queue of events.
// Actors (vCPUs, loader threads, userfaultfd handlers, block devices) advance the
// world exclusively by scheduling callbacks. Events at the same timestamp fire in
// scheduling order (FIFO tie-break), which makes every run bit-reproducible.
//
// The engine is deliberately single-threaded: determinism is worth more to the
// benchmarks than parallel speedup, and all FaaSnap experiments complete in seconds.

#ifndef FAASNAP_SRC_SIM_SIMULATION_H_
#define FAASNAP_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace faasnap {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current virtual time. Monotonically non-decreasing across event firings.
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= now()). Returns an id
  // usable with Cancel().
  EventId Schedule(SimTime when, EventFn fn);

  // Schedules `fn` at now() + delay (delay must be >= 0).
  EventId ScheduleAfter(Duration delay, EventFn fn);

  // Cancels a pending event. Canceling an already-fired or unknown id is a no-op.
  void Cancel(EventId id);

  // Runs until the event queue drains. Returns the number of events processed.
  uint64_t Run();

  // Runs events with time <= deadline; the clock lands on the last fired event
  // (or `deadline` if the queue drained earlier and events remain beyond it).
  uint64_t RunUntil(SimTime deadline);

  // Fires exactly one event. Returns false if the queue is empty.
  bool Step();

  bool empty() const { return queue_.size() == cancelled_.size(); }
  uint64_t processed_events() const { return processed_; }

 private:
  struct PendingEvent {
    SimTime when;
    uint64_t seq;  // FIFO tie-break
    EventId id;
    // Ordering for a max-heap turned min-heap: later time = lower priority.
    bool operator<(const PendingEvent& other) const {
      if (when != other.when) {
        return other.when < when;
      }
      return other.seq < seq;
    }
  };

  // Pops the next non-cancelled event, or returns false.
  bool PopNext(PendingEvent* out);

  SimTime now_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t processed_ = 0;
  std::priority_queue<PendingEvent> queue_;
  // Callbacks stored separately so cancellation frees the closure promptly.
  std::unordered_map<EventId, EventFn> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_SIM_SIMULATION_H_

// Discrete-event simulation core.
//
// A Simulation owns a virtual nanosecond clock and a priority queue of events.
// Actors (vCPUs, loader threads, userfaultfd handlers, block devices) advance the
// world exclusively by scheduling callbacks. Events at the same timestamp fire in
// scheduling order (FIFO tie-break), which makes every run bit-reproducible.
//
// The engine is deliberately single-threaded: determinism is worth more to the
// benchmarks than parallel speedup, and all FaaSnap experiments complete in seconds.
// Parallelism lives a layer up: src/cluster/ runs one Simulation per simulated
// host on its own worker thread and synchronizes them at conservative
// virtual-time barriers, so multi-host runs scale across cores while each
// engine instance stays single-threaded and bit-reproducible.

#ifndef FAASNAP_SRC_SIM_SIMULATION_H_
#define FAASNAP_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/sim/event_fn.h"

namespace faasnap {

using EventId = uint64_t;

class Simulation {
 public:
  Simulation() { heap_.resize(kHeapPad); }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current virtual time. Monotonically non-decreasing across event firings.
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= now()). Returns an id
  // usable with Cancel(). Templated on the callable so the closure is
  // constructed directly in the event slot (no intermediate EventFn move), and
  // defined inline below: scheduling and firing are the simulator's hottest
  // operations and must inline into callers.
  template <typename F>
  EventId Schedule(SimTime when, F&& fn);

  // Schedules `fn` at now() + delay (delay must be >= 0).
  template <typename F>
  EventId ScheduleAfter(Duration delay, F&& fn);

  // Cancels a pending event. Canceling an already-fired or unknown id is a no-op.
  void Cancel(EventId id);

  // Runs until the event queue drains. Returns the number of events processed.
  uint64_t Run();

  // Runs events with time <= deadline; the clock lands on the last fired event
  // (or `deadline` if the queue drained earlier and events remain beyond it).
  uint64_t RunUntil(SimTime deadline);

  // Fires exactly one event. Returns false if the queue is empty.
  bool Step();

  bool empty() const { return live_ == 0; }
  uint64_t processed_events() const { return processed_; }

 private:
  // Events live in a slab of reusable slots; an EventId packs (slot index,
  // generation) so a recycled slot invalidates stale ids and stale heap entries
  // without any per-event map. The slot's EventFn storage is reused across
  // events (small closures never re-allocate), and cancellation releases the
  // closure promptly while the heap entry is lazily dropped on pop.
  // The firing time lives only in the heap entry; the slot doesn't need it.
  struct EventSlot {
    uint64_t seq = 0;       // FIFO tie-break, assigned at Schedule time
    uint32_t generation = 1;  // bumped every time the slot is released
    bool armed = false;
    EventFn fn;
  };

  // 16 bytes so four heap children share one cache line. `key` packs
  // (seq << kSlotBits) | slot: seq is unique, so comparing keys orders
  // equal-time events exactly by seq — the FIFO tie-break — with the slot
  // riding along for free.
  struct PendingEvent {
    SimTime when;
    uint64_t key;

    uint64_t seq() const { return key >> kSlotBits; }
    uint32_t slot() const { return static_cast<uint32_t>(key & kSlotMask); }
  };
  static constexpr uint32_t kSlotBits = 24;  // up to 16M concurrently live events
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;

  // (when, seq) is a strict total order (seq is unique), so min-extraction
  // yields exactly one possible sequence — the heap's shape and arity cannot
  // change observable firing order.
  static bool Before(const PendingEvent& a, const PendingEvent& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.key < b.key;
  }

  static constexpr EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  // 4-ary min-heap with hole-based sifting: shallower than a binary heap, and
  // the layout is tuned so sifting — where the event loop spends its time at
  // production event rates — touches one cache line per level. The backing
  // array is 64-byte aligned and the first kHeapPad entries are unused padding,
  // which places every node's 4-child block (physical indices 4l+4..4l+7 for
  // logical node l) on exactly one 64-byte line of 16-byte PendingEvents.
  static constexpr size_t kHeapPad = 3;  // root lives at physical index 3
  void HeapPush(PendingEvent ev);
  void HeapPopMin();

  template <typename T>
  struct CacheAlignedAlloc {
    using value_type = T;
    CacheAlignedAlloc() = default;
    template <typename U>
    CacheAlignedAlloc(const CacheAlignedAlloc<U>&) {}  // NOLINT
    T* allocate(size_t n) {
      return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, size_t) { ::operator delete(p, std::align_val_t{64}); }
    bool operator==(const CacheAlignedAlloc&) const { return true; }
  };

  // Pops the next non-cancelled event, or returns false.
  bool PopNext(PendingEvent* out);

  // Invokes the slot's callback in place and then recycles the slot. The slab
  // is chunked (addresses are stable), so the closure never has to be moved
  // out before the call even though the callback may itself schedule events
  // and grow the slab. The slot is disarmed before the call (a self-Cancel
  // from inside the callback is a no-op) but only returns to the free list
  // after it, so a re-entrant Schedule cannot overwrite the running closure.
  void FireSlot(uint32_t slot);

  // Slots live in fixed-size chunks so EventSlot addresses never change.
  static constexpr uint32_t kSlotChunkBits = 7;
  static constexpr uint32_t kSlotChunkSize = 1u << kSlotChunkBits;
  EventSlot& Slot(uint32_t i) {
    return slot_chunks_[i >> kSlotChunkBits][i & (kSlotChunkSize - 1)];
  }
  const EventSlot& Slot(uint32_t i) const {
    return slot_chunks_[i >> kSlotChunkBits][i & (kSlotChunkSize - 1)];
  }

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  uint64_t live_ = 0;
  // Number of lazily-dropped heap entries (from Cancel). While zero — the
  // common case — every heap entry is live and PopNext can skip the slot
  // staleness check, avoiding a dependent random read before the sift-down.
  uint64_t stale_heap_entries_ = 0;
  // Physical layout: [kHeapPad pad entries][heap nodes...]; see kHeapPad above.
  std::vector<PendingEvent, CacheAlignedAlloc<PendingEvent>> heap_;
  std::vector<std::unique_ptr<EventSlot[]>> slot_chunks_;
  uint32_t slot_count_ = 0;
  std::vector<uint32_t> free_slots_;
};

// ---- inline hot path ----

// Both sift loops work in physical indices (pad included): the root is at
// kHeapPad, the children of physical node i are 4*i - 8 .. 4*i - 5, and the
// parent of physical node i is ((i - 4) >> 2) + kHeapPad.
inline void Simulation::HeapPush(PendingEvent ev) {
  size_t i = heap_.size();
  heap_.push_back(ev);  // placeholder; the hole sifts up below
  while (i > kHeapPad) {
    const size_t parent = ((i - kHeapPad - 1) >> 2) + kHeapPad;
    if (!Before(ev, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

inline void Simulation::HeapPopMin() {
  const PendingEvent last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == kHeapPad) {
    return;
  }
  size_t i = kHeapPad;
  for (;;) {
    const size_t first_child = 4 * (i - kHeapPad) + kHeapPad + 1;
    if (first_child >= n) {
      break;
    }
    const size_t limit = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < limit; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

template <typename F>
inline EventId Simulation::Schedule(SimTime when, F&& fn) {
  FAASNAP_CHECK(now_ <= when);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slot_count_;
    if ((slot_count_ & (kSlotChunkSize - 1)) == 0) {
      slot_chunks_.push_back(std::make_unique<EventSlot[]>(kSlotChunkSize));
    }
    ++slot_count_;
  }
  FAASNAP_CHECK(slot <= kSlotMask);
  FAASNAP_CHECK(next_seq_ < (uint64_t{1} << (64 - kSlotBits)));
  EventSlot& s = Slot(slot);
  s.seq = next_seq_++;
  s.armed = true;
  s.fn = std::forward<F>(fn);  // constructs the closure in the slot directly
  HeapPush(PendingEvent{when, (s.seq << kSlotBits) | slot});
  ++live_;
  return MakeId(slot, s.generation);
}

template <typename F>
inline EventId Simulation::ScheduleAfter(Duration delay, F&& fn) {
  FAASNAP_CHECK(delay >= Duration::Zero());
  return Schedule(now_ + delay, std::forward<F>(fn));
}

inline void Simulation::FireSlot(uint32_t slot) {
  EventSlot& s = Slot(slot);
  s.armed = false;
  --live_;
  s.fn();  // in place: chunked slots never move, even if the callback schedules
  s.fn = nullptr;
  ++s.generation;
  free_slots_.push_back(slot);
}

inline bool Simulation::PopNext(PendingEvent* out) {
  while (heap_.size() > kHeapPad) {
    const PendingEvent ev = heap_[kHeapPad];
    // Pops visit slots in time order, i.e. at random slab addresses; start the
    // slot's two cache lines loading now so the fetch overlaps the sift-down.
#if defined(__GNUC__) || defined(__clang__)
    const char* slot_addr = reinterpret_cast<const char*>(&Slot(ev.slot()));
    __builtin_prefetch(slot_addr);
    __builtin_prefetch(slot_addr + 64);
#endif
    if (stale_heap_entries_ != 0) {
      // A live entry carries the slot's current seq; anything else is a lazily
      // dropped leftover from a cancelled (possibly since-recycled) slot.
      const EventSlot& s = Slot(ev.slot());
      if (!s.armed || s.seq != ev.seq()) {
        HeapPopMin();
        --stale_heap_entries_;
        continue;
      }
    }
    HeapPopMin();
    *out = ev;
    return true;
  }
  return false;
}

inline bool Simulation::Step() {
  PendingEvent ev;
  if (!PopNext(&ev)) {
    return false;
  }
  now_ = ev.when;
  FireSlot(ev.slot());
  ++processed_;
  return true;
}

}  // namespace faasnap

#endif  // FAASNAP_SRC_SIM_SIMULATION_H_

// Host CPU contention model.
//
// The evaluation host is a 96-core c5d.metal. With 64 parallel invocations of
// 2-vCPU guests (Figure 10), runnable vCPUs exceed physical cores and everything
// slows down. We model this with proportional-share scaling: while R vCPUs are
// runnable on C cores, compute time stretches by max(1, R/C).
//
// The scaling factor is sampled when a compute burst is issued; bursts are short
// (trace ops), so resampling per burst tracks contention closely enough for the
// figure's shape without a full multiprocessor scheduler.

#ifndef FAASNAP_SRC_SIM_CPU_MODEL_H_
#define FAASNAP_SRC_SIM_CPU_MODEL_H_

#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace faasnap {

class CpuModel {
 public:
  explicit CpuModel(int cores) : cores_(cores) { FAASNAP_CHECK(cores > 0); }

  // A vCPU (or other compute-bound thread) became runnable / stopped running.
  void AddRunnable() { ++runnable_; }
  void RemoveRunnable() {
    FAASNAP_CHECK(runnable_ > 0);
    --runnable_;
  }

  int runnable() const { return runnable_; }
  int cores() const { return cores_; }

  // Contention multiplier >= 1.0 under the current load.
  double LoadFactor() const {
    if (runnable_ <= cores_) {
      return 1.0;
    }
    return static_cast<double>(runnable_) / static_cast<double>(cores_);
  }

  // Wall-clock duration of a compute burst of `nominal` CPU time right now.
  Duration ScaleCompute(Duration nominal) const {
    if (runnable_ <= cores_) {
      return nominal;
    }
    return Duration::Nanos(
        static_cast<int64_t>(static_cast<double>(nominal.nanos()) * LoadFactor()));
  }

 private:
  int cores_;
  int runnable_ = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_SIM_CPU_MODEL_H_

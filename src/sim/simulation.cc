#include "src/sim/simulation.h"

namespace faasnap {

void Simulation::Cancel(EventId id) {
  const uint32_t slot = static_cast<uint32_t>(id >> 32);
  const uint32_t generation = static_cast<uint32_t>(id);
  if (slot >= slot_count_) {
    return;  // never existed
  }
  EventSlot& s = Slot(slot);
  if (!s.armed || s.generation != generation) {
    return;  // already fired or cancelled
  }
  s.armed = false;
  s.fn = nullptr;  // free the closure promptly; the heap entry is dropped lazily
  ++s.generation;
  free_slots_.push_back(slot);
  --live_;
  ++stale_heap_entries_;
}

uint64_t Simulation::Run() {
  uint64_t fired = 0;
  while (Step()) {
    ++fired;
  }
  return fired;
}

uint64_t Simulation::RunUntil(SimTime deadline) {
  uint64_t fired = 0;
  PendingEvent ev;
  while (PopNext(&ev)) {
    if (deadline < ev.when) {
      // Put it back and stop; clock advances to the deadline.
      HeapPush(ev);
      now_ = deadline;
      return fired;
    }
    now_ = ev.when;
    FireSlot(ev.slot());
    ++processed_;
    ++fired;
  }
  // Queue drained before the deadline: the clock still advances to it.
  now_ = Max(now_, deadline);
  return fired;
}

}  // namespace faasnap

#include "src/sim/simulation.h"

namespace faasnap {

EventId Simulation::Schedule(SimTime when, EventFn fn) {
  FAASNAP_CHECK(now_ <= when);
  const EventId id = next_id_++;
  queue_.push(PendingEvent{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulation::ScheduleAfter(Duration delay, EventFn fn) {
  FAASNAP_CHECK(delay >= Duration::Zero());
  return Schedule(now_ + delay, std::move(fn));
}

void Simulation::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return;  // already fired or never existed
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool Simulation::PopNext(PendingEvent* out) {
  while (!queue_.empty()) {
    PendingEvent ev = queue_.top();
    queue_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    *out = ev;
    return true;
  }
  return false;
}

uint64_t Simulation::Run() {
  uint64_t fired = 0;
  while (Step()) {
    ++fired;
  }
  return fired;
}

uint64_t Simulation::RunUntil(SimTime deadline) {
  uint64_t fired = 0;
  PendingEvent ev;
  while (PopNext(&ev)) {
    if (deadline < ev.when) {
      // Put it back and stop; clock advances to the deadline.
      queue_.push(ev);
      now_ = deadline;
      return fired;
    }
    now_ = ev.when;
    auto it = callbacks_.find(ev.id);
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    ++processed_;
    ++fired;
  }
  // Queue drained before the deadline: the clock still advances to it.
  now_ = Max(now_, deadline);
  return fired;
}

bool Simulation::Step() {
  PendingEvent ev;
  if (!PopNext(&ev)) {
    return false;
  }
  now_ = ev.when;
  auto it = callbacks_.find(ev.id);
  EventFn fn = std::move(it->second);
  callbacks_.erase(it);
  fn();
  ++processed_;
  return true;
}

}  // namespace faasnap

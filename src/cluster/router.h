// Snapshot-locality-aware cluster routing (paper section 2.1 at fleet scale).
//
// FaaSnap makes cold starts cheap when the snapshot's guest-memory pages are
// already resident: a host that recently served a function restores it from
// its page cache (or still holds the VM warm) far faster than a host reading
// the snapshot cold from disk. The dispatcher therefore prefers hosts by
// residency tier — warm VM > cached snapshot pages > cold — spilling to the
// least-loaded host when the preferred ones are saturated, and steering cold
// work toward pool-budget headroom so one host's keep-alive pool does not
// thrash while a neighbor idles.
//
// Determinism: Route() reads only the HostView vector passed in — a snapshot
// of per-host state published at the previous barrier epoch — plus the
// router's own RNG/counter. Routing a given arrival sequence against a given
// view sequence is a pure serial computation, independent of how many worker
// threads advance the shards between barriers.

#ifndef FAASNAP_SRC_CLUSTER_ROUTER_H_
#define FAASNAP_SRC_CLUSTER_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace faasnap {

enum class RoutingPolicy {
  kRandom,      // uniform over hosts (the no-information baseline)
  kRoundRobin,  // rotating counter (perfect load spread, no locality)
  kLocality,    // snapshot-residency tiers with load spill and budget fit
};

const char* RoutingPolicyName(RoutingPolicy policy);
bool ParseRoutingPolicy(const std::string& name, RoutingPolicy* out);

// What a host holds for one function, best tier first.
enum class FunctionResidency {
  kWarm,    // idle VM in the keep-alive pool: a routed arrival warm-hits
  kCached,  // served before: snapshot pages plausibly still in the page cache
  kCold,    // never served here: a miss pays the full restore read
};

// Per-host state as published at a barrier epoch. Index-aligned with the
// cluster's shard vector; `residency` is index-aligned with the function
// registry.
struct HostView {
  int64_t outstanding = 0;  // admitted in-flight + queued arrivals
  ByteCount pool_bytes;     // keep-alive pool occupancy
  ByteCount pool_budget;
  std::vector<FunctionResidency> residency;
};

struct RouterConfig {
  RoutingPolicy policy = RoutingPolicy::kLocality;
  uint64_t seed = 0xc10573;  // kRandom's private stream
  // Locality spill threshold: a warm/cached host with this many outstanding
  // requests (or more) stops attracting arrivals, so a hot function cannot
  // pile the whole offered load onto the one host that holds its snapshot.
  int64_t spill_outstanding = 8;
};

struct RouterStats {
  int64_t routed = 0;
  int64_t warm_routes = 0;    // sent to a host holding the VM warm
  int64_t cached_routes = 0;  // sent to a host with cached snapshot pages
  int64_t spills = 0;         // locality preference saturated; least-loaded
  int64_t cold_routes = 0;    // no host had residency (first sightings)
};

class ClusterRouter {
 public:
  explicit ClusterRouter(RouterConfig config) : config_(config), rng_(config.seed) {}

  // Picks the destination host for one arrival. `hosts` is the barrier-epoch
  // view; `ws_bytes` the function's predicted working set (budget fit).
  size_t Route(size_t function_index, ByteCount ws_bytes, const std::vector<HostView>& hosts);

  const RouterStats& stats() const { return stats_; }
  RoutingPolicy policy() const { return config_.policy; }

 private:
  size_t RouteLocality(size_t function_index, ByteCount ws_bytes,
                       const std::vector<HostView>& hosts);

  RouterConfig config_;
  Rng rng_;
  size_t round_robin_next_ = 0;
  RouterStats stats_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CLUSTER_ROUTER_H_

#include "src/cluster/cluster_json.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace faasnap {

namespace {

Status ParseRouter(const JsonValue& node, RouterConfig* out) {
  const std::string policy = node.GetStringOr("policy", RoutingPolicyName(out->policy));
  if (!ParseRoutingPolicy(policy, &out->policy)) {
    return InvalidArgumentError("unknown routing policy: " + policy);
  }
  out->seed = static_cast<uint64_t>(node.GetIntOr("seed", static_cast<int64_t>(out->seed)));
  out->spill_outstanding = node.GetIntOr("spill_outstanding", out->spill_outstanding);
  if (out->spill_outstanding < 1) {
    return InvalidArgumentError("spill_outstanding must be >= 1");
  }
  return OkStatus();
}

void ParseHost(const JsonValue& node, HostSchedulerConfig* out) {
  out->warm_pool_budget_bytes =
      node.GetByteCountMiBOr("warm_pool_budget_mib", out->warm_pool_budget_bytes);
  out->keep_warm = node.GetDurationUsOr("keep_warm_us", out->keep_warm);
  out->admission.max_concurrency =
      static_cast<int>(node.GetIntOr("max_concurrency", out->admission.max_concurrency));
  out->admission.queue_capacity =
      static_cast<int>(node.GetIntOr("queue_capacity", out->admission.queue_capacity));
  out->admission.queue_deadline =
      node.GetDurationUsOr("queue_deadline_us", out->admission.queue_deadline);
  out->admission.memory_budget_bytes =
      node.GetByteCountMiBOr("memory_budget_mib", out->admission.memory_budget_bytes);
  out->admission.fairness_share = node.GetNumberOr("fairness_share", out->admission.fairness_share);
}

Status ParseWorkload(const JsonValue& node, ClusterExperiment* out) {
  Result<JsonValue> functions = node.Get("functions");
  if (!functions.ok() || !functions->is_array() || functions->array().empty()) {
    return InvalidArgumentError("workload.functions must be a non-empty array");
  }
  for (const JsonValue& name : functions->array()) {
    Result<std::string> text = name.AsString();
    if (!text.ok()) {
      return text.status();
    }
    Result<FunctionSpec> spec = FindFunction(*text);
    if (!spec.ok()) {
      return spec.status();
    }
    out->functions.push_back(*spec);
  }
  out->arrival_count = static_cast<size_t>(
      node.GetIntOr("count", static_cast<int64_t>(out->arrival_count)));
  out->workload_seed =
      static_cast<uint64_t>(node.GetIntOr("seed", static_cast<int64_t>(out->workload_seed)));
  Result<ArrivalProcess> process =
      ParseArrivalProcess(node.GetStringOr("process", ArrivalProcessName(out->mix.process)));
  if (!process.ok()) {
    return process.status();
  }
  out->mix.process = *process;
  out->mix.mean_gap = node.GetDurationUsOr("mean_gap_us", out->mix.mean_gap);
  out->mix.zipf_s = node.GetNumberOr("zipf_s", out->mix.zipf_s);
  out->mix.burst_multiplier = node.GetNumberOr("burst_multiplier", out->mix.burst_multiplier);
  out->mix.burst_mean_on = node.GetDurationUsOr("burst_mean_on_us", out->mix.burst_mean_on);
  out->mix.burst_mean_off = node.GetDurationUsOr("burst_mean_off_us", out->mix.burst_mean_off);
  out->mix.diurnal_amplitude = node.GetNumberOr("diurnal_amplitude", out->mix.diurnal_amplitude);
  out->mix.diurnal_period = node.GetDurationUsOr("diurnal_period_us", out->mix.diurnal_period);
  return OkStatus();
}

}  // namespace

Result<ClusterExperiment> ParseClusterExperiment(const JsonValue& root) {
  if (!root.is_object()) {
    return InvalidArgumentError("cluster config root must be an object");
  }
  ClusterExperiment experiment;
  experiment.name = root.GetStringOr("name", experiment.name);
  experiment.cluster.hosts =
      static_cast<size_t>(root.GetIntOr("hosts", static_cast<int64_t>(experiment.cluster.hosts)));
  if (experiment.cluster.hosts == 0) {
    return InvalidArgumentError("hosts must be >= 1");
  }
  experiment.cluster.worker_threads =
      static_cast<int>(root.GetIntOr("worker_threads", experiment.cluster.worker_threads));
  experiment.cluster.sync_quantum =
      root.GetDurationUsOr("sync_quantum_us", experiment.cluster.sync_quantum);
  if (experiment.cluster.sync_quantum <= Duration::Zero()) {
    return InvalidArgumentError("sync_quantum_us must be positive");
  }
  if (root.Has("router")) {
    Result<JsonValue> router = root.Get("router");
    if (!router.ok()) {
      return router.status();
    }
    RETURN_IF_ERROR(ParseRouter(*router, &experiment.cluster.router));
  }
  if (root.Has("host")) {
    Result<JsonValue> host = root.Get("host");
    if (!host.ok()) {
      return host.status();
    }
    ParseHost(*host, &experiment.cluster.host);
  }
  Result<JsonValue> workload = root.Get("workload");
  if (!workload.ok()) {
    return InvalidArgumentError("missing required workload block");
  }
  RETURN_IF_ERROR(ParseWorkload(*workload, &experiment));
  return experiment;
}

Result<ClusterExperiment> LoadClusterExperiment(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open config: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> doc = ParseJson(buffer.str());
  if (!doc.ok()) {
    return doc.status();
  }
  return ParseClusterExperiment(*doc);
}

}  // namespace faasnap

#include "src/cluster/router.h"

#include "src/common/status.h"

namespace faasnap {

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRandom:
      return "random";
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLocality:
      return "locality";
  }
  return "unknown";
}

bool ParseRoutingPolicy(const std::string& name, RoutingPolicy* out) {
  if (name == "random") {
    *out = RoutingPolicy::kRandom;
  } else if (name == "round_robin") {
    *out = RoutingPolicy::kRoundRobin;
  } else if (name == "locality") {
    *out = RoutingPolicy::kLocality;
  } else {
    return false;
  }
  return true;
}

namespace {

// Least-outstanding host, ties to the lowest index (deterministic).
size_t LeastLoaded(const std::vector<HostView>& hosts) {
  size_t best = 0;
  for (size_t i = 1; i < hosts.size(); ++i) {
    if (hosts[i].outstanding < hosts[best].outstanding) {
      best = i;
    }
  }
  return best;
}

}  // namespace

size_t ClusterRouter::RouteLocality(size_t function_index, ByteCount ws_bytes,
                                    const std::vector<HostView>& hosts) {
  // Pass 1: residency tiers under the spill threshold. Within a tier the
  // least-outstanding host wins (lowest index on ties), so a hot function
  // spreads across its replica set before spilling off it.
  const FunctionResidency tiers[] = {FunctionResidency::kWarm, FunctionResidency::kCached};
  for (FunctionResidency tier : tiers) {
    bool found = false;
    size_t best = 0;
    for (size_t i = 0; i < hosts.size(); ++i) {
      const HostView& host = hosts[i];
      if (host.residency[function_index] != tier ||
          host.outstanding >= config_.spill_outstanding) {
        continue;
      }
      if (!found || host.outstanding < hosts[best].outstanding) {
        found = true;
        best = i;
      }
    }
    if (found) {
      (tier == FunctionResidency::kWarm ? stats_.warm_routes : stats_.cached_routes)++;
      return best;
    }
  }

  // Pass 2: no resident host can take it. If nothing anywhere holds this
  // function it is a first sighting (cold route); otherwise the residency
  // preference saturated and the arrival spills. Either way, place the
  // inevitable restore where the working set fits the keep-alive budget —
  // least-outstanding among fitting hosts, least-outstanding overall if none
  // has headroom.
  bool anywhere = false;
  for (const HostView& host : hosts) {
    if (host.residency[function_index] != FunctionResidency::kCold) {
      anywhere = true;
      break;
    }
  }
  (anywhere ? stats_.spills : stats_.cold_routes)++;

  bool found = false;
  size_t best = 0;
  for (size_t i = 0; i < hosts.size(); ++i) {
    const HostView& host = hosts[i];
    if (host.pool_bytes + ws_bytes > host.pool_budget) {
      continue;
    }
    if (!found || host.outstanding < hosts[best].outstanding) {
      found = true;
      best = i;
    }
  }
  return found ? best : LeastLoaded(hosts);
}

size_t ClusterRouter::Route(size_t function_index, ByteCount ws_bytes,
                            const std::vector<HostView>& hosts) {
  FAASNAP_CHECK(!hosts.empty());
  FAASNAP_CHECK(function_index < hosts[0].residency.size());
  ++stats_.routed;
  switch (config_.policy) {
    case RoutingPolicy::kRandom:
      return rng_.NextBelow(hosts.size());
    case RoutingPolicy::kRoundRobin:
      return round_robin_next_++ % hosts.size();
    case RoutingPolicy::kLocality:
      return RouteLocality(function_index, ws_bytes, hosts);
  }
  return 0;
}

}  // namespace faasnap

#include "src/cluster/cluster.h"

#include <algorithm>
#include <utility>

namespace faasnap {

// A shard is one simulated host: private Platform (its own Simulation, page
// cache, disks) plus the open-loop serving engine. Worker threads own at most
// one shard at a time inside a parallel region, so no locking is needed here.
struct ClusterSimulator::Shard {
  explicit Shard(const ClusterConfig& config)
      : platform(config.platform), scheduler(&platform, config.host) {}

  Platform platform;
  HostScheduler scheduler;
};

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : config_([&config] {
        config.host.open_loop = true;  // the cluster drives OfferAt directly
        return config;
      }()),
      router_(config_.router),
      pool_(config_.worker_threads) {
  FAASNAP_CHECK(config_.hosts > 0);
  FAASNAP_CHECK(config_.sync_quantum > Duration::Zero());
  shards_.reserve(config_.hosts);
  for (size_t i = 0; i < config_.hosts; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_));
  }
}

ClusterSimulator::~ClusterSimulator() = default;

size_t ClusterSimulator::AddFunction(const FunctionSpec& spec) {
  // Each host records its own snapshot (snapshots are host-local: the pages
  // live in that host's files and page cache). The record phases are
  // identical, independent work — one shard per worker.
  std::vector<size_t> indices(shards_.size(), 0);
  pool_.ParallelFor(shards_.size(), [&](size_t i) {
    indices[i] = shards_[i]->scheduler.AddFunction(spec);
  });
  for (size_t index : indices) {
    FAASNAP_CHECK(index == indices[0]);
  }
  return function_count_++;
}

void ClusterSimulator::SnapshotViews(std::vector<HostView>* views) const {
  views->clear();
  views->reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    HostView view;
    view.outstanding = shard->scheduler.OutstandingLoad();
    view.pool_bytes = shard->scheduler.pool_bytes();
    view.pool_budget = shard->scheduler.pool_budget();
    view.residency.reserve(function_count_);
    for (size_t f = 0; f < function_count_; ++f) {
      view.residency.push_back(shard->scheduler.FunctionWarm(f) ? FunctionResidency::kWarm
                               : shard->scheduler.FunctionEverServed(f)
                                   ? FunctionResidency::kCached
                                   : FunctionResidency::kCold);
    }
    views->push_back(std::move(view));
  }
}

ClusterStats ClusterSimulator::Run(const std::vector<Arrival>& arrivals) {
  FAASNAP_CHECK(!ran_);
  ran_ = true;
  FAASNAP_CHECK(function_count_ > 0);

  // All shards performed identical record work, so their clocks agree; the
  // cluster epoch starts at that common time.
  const SimTime base = shards_[0]->platform.sim()->now();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    FAASNAP_CHECK(shard->platform.sim()->now() == base);
  }

  // Cluster-level arrivals carry no per-host chaos compression (chaos windows
  // are host-local and apply to what each host serves, not to what the
  // outside world offers).
  const std::vector<TimedArrival> schedule = BuildOpenLoopSchedule(arrivals, base, nullptr);
  for (const TimedArrival& timed : schedule) {
    FAASNAP_CHECK(timed.function_index < function_count_);
  }

  // Predicted per-function working sets for the router's budget-fit pass;
  // identical on every shard, read from shard 0.
  std::vector<ByteCount> ws_bytes(function_count_);
  for (size_t f = 0; f < function_count_; ++f) {
    ws_bytes[f] = PagesToBytes(
        PageCount::FromPages(shards_[0]->scheduler.snapshot(f).record_touched.page_count()));
  }

  ClusterStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->scheduler.BeginOpenLoop();
  }

  const auto all_idle = [this] {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (!shard->scheduler.OpenLoopIdle()) {
        return false;
      }
    }
    return true;
  };

  size_t next = 0;
  SimTime horizon = base;
  std::vector<HostView> views;
  while (next < schedule.size() || !all_idle()) {
    horizon = horizon + config_.sync_quantum;

    // Barrier: publish views, route this epoch's arrivals (serial, pure).
    // Routed-but-unconfirmed arrivals bump the view's outstanding count so a
    // burst inside one epoch spreads instead of piling onto the host that
    // looked emptiest at the barrier.
    SnapshotViews(&views);
    while (next < schedule.size() && schedule[next].at < horizon) {
      const size_t function_index = schedule[next].function_index;
      const size_t host = router_.Route(function_index, ws_bytes[function_index], views);
      views[host].outstanding++;
      shards_[host]->scheduler.OfferAt(function_index, schedule[next].at);
      ++next;
    }

    // Parallel region: every shard advances its private event loop to the
    // horizon. Thread assignment cannot affect any shard's event order.
    pool_.ParallelFor(shards_.size(),
                      [&](size_t i) { shards_[i]->platform.sim()->RunUntil(horizon); });
    ++stats.epochs;
  }

  // Merge in host-index order (deterministic double accumulation).
  for (const std::unique_ptr<Shard>& shard : shards_) {
    HostSchedulerStats host = shard->scheduler.FinishOpenLoop();
    stats.arrivals += host.arrivals;
    stats.invocations += host.invocations;
    stats.warm_hits += host.warm_hits;
    stats.misses += host.misses;
    stats.shed_queue_full += host.shed_queue_full;
    stats.shed_deadline += host.shed_deadline;
    stats.evictions += host.evictions;
    stats.expirations += host.expirations;
    stats.pressure_demotions += host.pressure_demotions;
    stats.latency_ms.Merge(host.latency_ms);
    stats.accepted_latency.Merge(host.accepted_latency);
    stats.avg_resident_bytes += host.avg_pool_bytes;
    stats.span = std::max(stats.span, host.span);
    stats.per_host.push_back(std::move(host));
  }
  stats.routing = router_.stats();
  FAASNAP_CHECK(stats.arrivals == static_cast<int64_t>(schedule.size()));
  FAASNAP_CHECK(stats.invocations + stats.shed() == stats.arrivals);
  return stats;
}

void ClusterStats::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("arrivals", arrivals);
  w->Field("invocations", invocations);
  w->Field("warm_hits", warm_hits);
  w->Field("misses", misses);
  w->Field("cold_start_rate", cold_start_rate());
  w->Field("shed_queue_full", shed_queue_full);
  w->Field("shed_deadline", shed_deadline);
  w->Field("evictions", evictions);
  w->Field("expirations", expirations);
  w->Field("pressure_demotions", pressure_demotions);
  w->Field("latency_ms_mean", latency_ms.mean());
  w->Field("latency_ms_max", latency_ms.max());
  w->Field("p99_accepted_ns", p99_accepted());
  w->Field("avg_resident_bytes", avg_resident_bytes);
  w->Field("span_ns", span);
  w->Field("epochs", static_cast<int64_t>(epochs));
  w->Key("routing");
  w->BeginObject();
  w->Field("routed", routing.routed);
  w->Field("warm_routes", routing.warm_routes);
  w->Field("cached_routes", routing.cached_routes);
  w->Field("spills", routing.spills);
  w->Field("cold_routes", routing.cold_routes);
  w->EndObject();
  w->Key("per_host");
  w->BeginArray();
  for (const HostSchedulerStats& host : per_host) {
    w->BeginObject();
    w->Field("invocations", host.invocations);
    w->Field("warm_hits", host.warm_hits);
    w->Field("misses", host.misses);
    w->Field("shed", host.shed());
    w->Field("max_in_flight", static_cast<int64_t>(host.max_in_flight));
    w->Field("avg_pool_bytes", host.avg_pool_bytes);
    w->Field("final_pressure_level", static_cast<int64_t>(host.final_pressure_level));
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace faasnap

// JSON-driven cluster experiments (configs/test-cluster.json).
//
// Schema (all fields optional unless noted):
// {
//   "name": "cluster smoke",
//   "hosts": 4,
//   "worker_threads": 2,                  // parallel shard workers; 1 = serial
//   "sync_quantum_us": 10000,             // barrier epoch length
//   "router": {
//     "policy": "locality",               // "random" | "round_robin" | "locality"
//     "seed": 7,                          // random policy's private stream
//     "spill_outstanding": 8              // locality load-spill threshold
//   },
//   "host": {                             // per-host serving engine
//     "warm_pool_budget_mib": 1024,
//     "keep_warm_us": 600000000,
//     "max_concurrency": 8,               // admission
//     "queue_capacity": 64,
//     "queue_deadline_us": 500000,
//     "memory_budget_mib": 0,             // 0 disables memory admission
//     "fairness_share": 0.0
//   },
//   "workload": {
//     "functions": ["json", "pyaes"],     // required, catalog names
//     "count": 400,                       // offered arrivals
//     "process": "poisson",               // "poisson" | "bursty" | "diurnal"
//     "mean_gap_us": 2000,
//     "zipf_s": 1.2,                      // <= 0 = uniform popularity
//     "seed": 42,
//     "burst_multiplier": 8.0,            // bursty only
//     "burst_mean_on_us": 2000000,
//     "burst_mean_off_us": 20000000,
//     "diurnal_amplitude": 0.8,           // diurnal only
//     "diurnal_period_us": 600000000
//   }
// }

#ifndef FAASNAP_SRC_CLUSTER_CLUSTER_JSON_H_
#define FAASNAP_SRC_CLUSTER_CLUSTER_JSON_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/json.h"
#include "src/workloads/arrival_mix.h"
#include "src/workloads/function_spec.h"

namespace faasnap {

struct ClusterExperiment {
  std::string name = "cluster";
  ClusterConfig cluster;
  std::vector<FunctionSpec> functions;
  ArrivalMixConfig mix;
  size_t arrival_count = 100;
  uint64_t workload_seed = 42;
};

// Parses a cluster experiment document. InvalidArgument on unknown function
// names, routing policies, or arrival processes.
Result<ClusterExperiment> ParseClusterExperiment(const JsonValue& root);

// Reads and parses a config file.
Result<ClusterExperiment> LoadClusterExperiment(const std::string& path);

}  // namespace faasnap

#endif  // FAASNAP_SRC_CLUSTER_CLUSTER_JSON_H_

// Sharded parallel cluster simulation: one Simulation per simulated host,
// advanced by worker threads under a conservative virtual-time barrier.
//
// Each host is a fully self-contained shard — its own Platform (Simulation,
// PageCache, disks, storage router) and its own HostScheduler open-loop
// engine. Shards never touch each other's state; the only cross-host channels
// are (a) arrivals routed into a shard's OfferAt queue and (b) the HostView
// snapshots the router reads. Both cross only at barrier epochs:
//
//   while work remains:
//     publish HostViews (serial, host-index order)         <- barrier
//     route every arrival with time < horizon, OfferAt     <- serial
//     ParallelFor shards: sim->RunUntil(horizon)           <- parallel region
//     horizon += sync_quantum
//
// Inside the parallel region each shard runs its own single-threaded
// deterministic event loop; worker threads only change which shard's wall
// clock advances first, never any shard's event order. Routing consumes only
// barrier-published views plus the router's private RNG/counter, so the
// arrival->host assignment is a pure serial computation. Results are
// therefore bit-identical for any worker_threads value — pinned by
// cluster_determinism_test (1 vs 4 vs 8 threads, byte-compared JSON).
//
// The quantum trades fidelity granularity against barrier overhead: views lag
// reality by at most one quantum (as any real dispatcher's load signal lags),
// and a smaller quantum means fresher views but more barriers. It never
// affects per-shard event ordering — arrivals keep exact virtual times.

#ifndef FAASNAP_SRC_CLUSTER_CLUSTER_H_
#define FAASNAP_SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/cluster/router.h"
#include "src/cluster/worker_pool.h"
#include "src/common/histogram.h"
#include "src/common/json_writer.h"
#include "src/runtime/host_scheduler.h"

namespace faasnap {

struct ClusterConfig {
  size_t hosts = 4;
  // Total worker threads for the parallel regions (including the caller);
  // <= 1 is the serial reference execution.
  int worker_threads = 1;
  // Barrier epoch length in virtual time.
  Duration sync_quantum = Duration::Millis(10);
  RouterConfig router;
  // Per-host serving engine; open_loop is forced on (the cluster drives the
  // incremental OfferAt API).
  HostSchedulerConfig host;
  PlatformConfig platform;
};

struct ClusterStats {
  // Sums over hosts.
  int64_t arrivals = 0;
  int64_t invocations = 0;
  int64_t warm_hits = 0;
  int64_t misses = 0;  // cold starts: restore or cold boot on arrival
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t evictions = 0;
  int64_t expirations = 0;
  int64_t pressure_demotions = 0;
  // Merged distributions (accepted work only for the histogram).
  RunningStats latency_ms;
  Log2Histogram accepted_latency{Duration::Micros(1), /*num_buckets=*/21};
  // Cluster resident-memory footprint: sum of each host's time-averaged
  // pinned bytes (keep-alive pool + in-flight restores).
  double avg_resident_bytes = 0;
  Duration span;        // max host span (virtual makespan)
  size_t epochs = 0;    // barrier count
  RouterStats routing;
  std::vector<HostSchedulerStats> per_host;  // host-index order

  int64_t shed() const { return shed_queue_full + shed_deadline; }
  double cold_start_rate() const {
    return invocations == 0 ? 0.0
                            : static_cast<double>(misses) / static_cast<double>(invocations);
  }
  Duration p99_accepted() const { return accepted_latency.EstimateQuantile(0.99); }

  // Deterministic summary document (virtual-time quantities only — no wall
  // clock), for byte-comparison across worker-thread counts and in the
  // perf-gate's same-seed diff.
  void AppendJson(JsonWriter* w) const;
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(ClusterConfig config);
  ~ClusterSimulator();

  // Registers `spec` on every shard (each host records its own snapshot —
  // snapshots are host-local state). Returns the function index, identical
  // across shards. Record phases run shard-parallel.
  size_t AddFunction(const FunctionSpec& spec);

  // Serves the schedule (gaps relative to the cluster epoch, Zipf/mix output
  // from SampleArrivalMix) and returns merged statistics. One shot: the
  // simulator is spent after Run.
  ClusterStats Run(const std::vector<Arrival>& arrivals);

  size_t host_count() const { return shards_.size(); }
  int worker_threads() const { return pool_.thread_count(); }

 private:
  struct Shard;

  // Publishes the barrier-epoch view of every shard, host-index order.
  void SnapshotViews(std::vector<HostView>* views) const;

  ClusterConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ClusterRouter router_;
  WorkerPool pool_;
  size_t function_count_ = 0;
  bool ran_ = false;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CLUSTER_CLUSTER_H_

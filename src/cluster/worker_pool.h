// A fixed pool of worker threads with fork-join (barrier) semantics, for the
// cluster layer's shard-parallel epochs.
//
// ParallelFor(n, fn) runs fn(0..n-1) across the pool and the calling thread,
// returning only when every index has completed — the barrier the conservative
// virtual-time synchronization protocol needs between epochs. Indices are
// claimed dynamically, so a shard with a busy epoch does not serialize the
// idle ones; determinism is unaffected because shards never share state while
// a ParallelFor is in flight (each index touches one shard's Platform only).
//
// With threads <= 1 no OS threads are created and ParallelFor degenerates to
// an inline loop — the 1-worker configuration is bit-for-bit the serial
// program, which the cluster determinism test pins against N-thread runs.

#ifndef FAASNAP_SRC_CLUSTER_WORKER_POOL_H_
#define FAASNAP_SRC_CLUSTER_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"

namespace faasnap {

class WorkerPool {
 public:
  // `threads` is the total worker count including the caller: ParallelFor uses
  // the calling thread plus (threads - 1) pool threads. <= 1 runs inline.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs fn(i) for every i in [0, n), returning after all complete. Not
  // reentrant: fn must not call ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  int thread_count() const { return static_cast<int>(threads_.size()) + 1; }

 private:
  void WorkerLoop();
  // Claims and runs indices of the current generation until none remain.
  void DrainIndices(uint64_t generation, const std::function<void(size_t)>* job);

  Mutex mu_;
  CondVar work_cv_;  // workers: a new generation is ready
  CondVar done_cv_;  // caller: all indices of the generation completed
  uint64_t generation_ FAASNAP_GUARDED_BY(mu_) = 0;
  size_t next_index_ FAASNAP_GUARDED_BY(mu_) = 0;
  size_t total_ FAASNAP_GUARDED_BY(mu_) = 0;
  size_t completed_ FAASNAP_GUARDED_BY(mu_) = 0;
  const std::function<void(size_t)>* job_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  bool shutdown_ FAASNAP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CLUSTER_WORKER_POOL_H_

#include "src/cluster/worker_pool.h"

#include "src/common/status.h"

namespace faasnap {

WorkerPool::WorkerPool(int threads) {
  for (int i = 1; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::DrainIndices(uint64_t generation, const std::function<void(size_t)>* job) {
  for (;;) {
    size_t index;
    {
      MutexLock lock(mu_);
      // A stale worker that raced past the barrier must not claim indices of
      // a later generation with the old job pointer.
      if (generation_ != generation || next_index_ >= total_) {
        return;
      }
      index = next_index_++;
    }
    (*job)(index);
    {
      MutexLock lock(mu_);
      if (++completed_ == total_) {
        done_cv_.SignalAll();
      }
    }
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    uint64_t generation = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen) {
        work_cv_.Wait(mu_);
      }
      if (shutdown_) {
        return;
      }
      seen = generation_;
      generation = generation_;
      job = job_;
    }
    DrainIndices(generation, job);
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (threads_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  uint64_t generation = 0;
  {
    MutexLock lock(mu_);
    FAASNAP_CHECK(completed_ == total_);  // no ParallelFor in flight
    job_ = &fn;
    total_ = n;
    next_index_ = 0;
    completed_ = 0;
    generation = ++generation_;
  }
  work_cv_.SignalAll();
  DrainIndices(generation, &fn);
  {
    MutexLock lock(mu_);
    while (completed_ < total_) {
      done_cv_.Wait(mu_);
    }
    job_ = nullptr;
  }
}

}  // namespace faasnap

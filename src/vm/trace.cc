#include "src/vm/trace.h"

namespace faasnap {

PageRangeSet InvocationTrace::TouchedPages() const {
  PageRangeSet touched;
  for (const TraceOp& op : ops) {
    touched.AddPage(op.page);
  }
  return touched;
}

Duration InvocationTrace::TotalCompute() const {
  Duration total = trailing_compute;
  for (const TraceOp& op : ops) {
    total += op.compute;
  }
  return total;
}

}  // namespace faasnap

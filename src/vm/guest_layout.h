// Guest physical memory layout.
//
// The evaluation guest is a 2 GiB Debian VM (section 6.1). We carve its physical
// address space into zones that correspond to how the paper's functions use
// memory; workload trace generators place their accesses inside these zones and
// the snapshot builders derive zero/non-zero classification from them:
//
//   boot    — kernel text/data and boot-time allocations: non-zero, almost never
//             touched during an invocation (the bulk of the "cold set", >100 MiB,
//             section 4.8),
//   stable  — runtime, libraries, function code, and long-lived data (a loaded
//             Python list, ResNet weights): non-zero, re-read every invocation,
//   window  — input-dependent transient data: the function touches a
//             content-selected subset each invocation,
//   scratch — large sequential anonymous allocations (the mmap function, frame
//             buffers, matrices), freed when the invocation ends.

#ifndef FAASNAP_SRC_VM_GUEST_LAYOUT_H_
#define FAASNAP_SRC_VM_GUEST_LAYOUT_H_

#include <cstdint>

#include "src/common/page_range.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace faasnap {

struct GuestConfig {
  PageCount mem_pages = BytesToPages(GiB(2));
  int vcpus = 2;  // the paper uses 1 vCPU in section 3 and 2 vCPUs in section 6
};

struct GuestLayout {
  PageCount total_pages;
  PageRange boot;
  PageRange stable;
  PageRange window;
  PageRange scratch;

  // The standard 2 GiB layout used throughout the evaluation:
  //   boot    [0,      30720)   120 MiB
  //   stable  [30720,  190720)  625 MiB (read-list's 526 MiB set + scatter span)
  //   window  [190720, 346112)  607 MiB (fits pagerank at 4x input)
  //   scratch [346112, 524288)  696 MiB (fits ffmpeg's buffers at 4x input)
  static GuestLayout Default2GiB();

  // Sanity: zones are disjoint, ordered, and inside [0, total_pages).
  Status Validate() const;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_VM_GUEST_LAYOUT_H_

#include "src/vm/vm.h"

#include <utility>

namespace faasnap {

struct Vm::RunState {
  const InvocationTrace* trace = nullptr;
  size_t next_op = 0;
  bool compute_done = false;  // compute of ops[next_op] already performed
  SimTime started;
  PageRangeSet written;
  Status status;
  std::function<void(InvocationResult)> done;
};

Vm::Vm(Simulation* sim, FaultEngine* engine, CpuModel* cpu, int vcpus)
    : sim_(sim), engine_(engine), cpu_(cpu), vcpus_(vcpus) {
  FAASNAP_CHECK(sim_ != nullptr && engine_ != nullptr && cpu_ != nullptr);
  FAASNAP_CHECK(vcpus_ > 0);
}

void Vm::RunInvocation(const InvocationTrace& trace,
                       std::function<void(InvocationResult)> done) {
  FAASNAP_CHECK(!running_ && "one invocation at a time per Vm");
  running_ = true;
  auto state = std::make_shared<RunState>();
  state->trace = &trace;
  state->started = sim_->now();
  state->done = std::move(done);
  for (int i = 0; i < vcpus_; ++i) {
    cpu_->AddRunnable();
  }
  // Terminal restore failures (a read error that survived retries/failover)
  // surface here instead of retiring the access; the invocation aborts with the
  // typed status rather than hanging on a page that will never arrive.
  engine_->set_failure_sink([this, state](const Status& status) { Abort(state, status); });
  Step(std::move(state));
}

void Vm::Abort(std::shared_ptr<RunState> state, const Status& status) {
  FAASNAP_CHECK(running_);
  FAASNAP_CHECK(!status.ok());
  state->status = status;
  Finish(std::move(state));
}

void Vm::Step(std::shared_ptr<RunState> state) {
  // Iterative loop: synchronous accesses (already-installed pages) and zero-compute
  // ops stay in this loop; anything that takes time schedules a continuation.
  while (state->next_op < state->trace->ops.size()) {
    const TraceOp& op = state->trace->ops[state->next_op];
    if (!state->compute_done && op.compute > Duration::Zero()) {
      state->compute_done = true;
      sim_->ScheduleAfter(cpu_->ScaleCompute(op.compute),
                          [this, state]() mutable { Step(std::move(state)); });
      return;
    }
    state->compute_done = false;
    if (op.is_write) {
      state->written.AddPage(op.page);
    }
    const PageIndex page = op.page;
    state->next_op++;
    const bool sync = engine_->Access(page, [this, state, page](FaultClass cls) mutable {
      if (observer_) {
        observer_(page, cls);
      }
      Step(std::move(state));
    });
    if (!sync) {
      return;  // continuation will re-enter Step
    }
    if (observer_) {
      observer_(page, FaultClass::kNoFault);
    }
  }
  if (state->trace->trailing_compute > Duration::Zero()) {
    const Duration tail = cpu_->ScaleCompute(state->trace->trailing_compute);
    // Consume trailing_compute exactly once: clear it via a flag on the state.
    auto finished = state;
    sim_->ScheduleAfter(tail, [this, finished]() mutable { Finish(std::move(finished)); });
    return;
  }
  Finish(std::move(state));
}

void Vm::Finish(std::shared_ptr<RunState> state) {
  for (int i = 0; i < vcpus_; ++i) {
    cpu_->RemoveRunnable();
  }
  running_ = false;
  engine_->set_failure_sink(nullptr);
  InvocationResult result;
  result.elapsed = sim_->now() - state->started;
  result.written_pages = std::move(state->written);
  result.access_count = state->trace->ops.size();
  result.status = std::move(state->status);
  state->done(result);
}

}  // namespace faasnap

#include "src/vm/guest_layout.h"

namespace faasnap {

GuestLayout GuestLayout::Default2GiB() {
  GuestLayout layout;
  layout.total_pages = BytesToPages(GiB(2));
  layout.boot = PageRange{0, 30720};
  layout.stable = PageRange{30720, 160000};
  layout.window = PageRange{190720, 155392};
  layout.scratch = PageRange{346112, 178176};
  FAASNAP_CHECK_OK(layout.Validate());
  return layout;
}

Status GuestLayout::Validate() const {
  if (total_pages.is_zero()) {
    return InvalidArgumentError("empty guest");
  }
  const PageRange zones[] = {boot, stable, window, scratch};
  PageIndex cursor = 0;
  for (const PageRange& z : zones) {
    if (z.empty()) {
      return InvalidArgumentError("empty zone");
    }
    if (z.first < cursor) {
      return InvalidArgumentError("zones overlap or are out of order");
    }
    cursor = z.end();
  }
  if (cursor > total_pages.value()) {
    return OutOfRangeError("zones exceed guest memory");
  }
  return OkStatus();
}

}  // namespace faasnap

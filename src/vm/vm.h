// Vm: executes an invocation trace against a FaultEngine on the simulation clock.
//
// The Vm plays the role of the guest vCPU(s): it alternates compute bursts (scaled
// by host CPU contention) with page accesses (resolved by the FaultEngine). An
// observer hook reports every first-touch fault as it retires — the FaaSnap and
// REAP recorders attach here during the record phase.

#ifndef FAASNAP_SRC_VM_VM_H_
#define FAASNAP_SRC_VM_VM_H_

#include <functional>
#include <memory>

#include "src/common/page_range.h"
#include "src/mem/fault_engine.h"
#include "src/sim/cpu_model.h"
#include "src/sim/simulation.h"
#include "src/vm/trace.h"

namespace faasnap {

class Vm {
 public:
  struct InvocationResult {
    Duration elapsed;             // wall-clock from start to completion/abort
    PageRangeSet written_pages;   // pages the guest dirtied (snapshot builders)
    uint64_t access_count = 0;
    // OK when the trace ran to completion; otherwise the terminal failure that
    // aborted the invocation (e.g. a device read error that survived retries).
    Status status;
  };

  // Fires after each access retires: (page, fault class). kNoFault accesses are
  // reported too so recorders can decide what to track.
  using AccessObserver = std::function<void(PageIndex, FaultClass)>;

  // `vcpus` counts against the CpuModel for the whole invocation (the guest's
  // Flask server plus worker keep both vCPUs busy; section 6.1 guests have 2).
  Vm(Simulation* sim, FaultEngine* engine, CpuModel* cpu, int vcpus);

  void set_access_observer(AccessObserver observer) { observer_ = std::move(observer); }

  // Runs `trace` to completion; `done(result)` fires on the simulation clock.
  // One invocation at a time per Vm.
  void RunInvocation(const InvocationTrace& trace, std::function<void(InvocationResult)> done);

  FaultEngine* engine() { return engine_; }

 private:
  struct RunState;

  void Step(std::shared_ptr<RunState> state);
  void Finish(std::shared_ptr<RunState> state);
  // Terminates the invocation early with a non-OK status: releases the vCPUs
  // and fires `done` with the error, so a failed restore never hangs the VM.
  void Abort(std::shared_ptr<RunState> state, const Status& status);

  Simulation* sim_;
  FaultEngine* engine_;
  CpuModel* cpu_;
  int vcpus_;
  AccessObserver observer_;
  bool running_ = false;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_VM_VM_H_

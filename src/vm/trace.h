// Invocation traces: the memory behavior of one function invocation.
//
// A trace is the sequence of (compute, page access) steps the guest performs while
// serving a request, plus which pages it frees when the invocation finishes. The
// trace is the interface between the workload models (Table 2 functions) and the
// Vm executor: snapshot-restore policies never see function semantics, only the
// page accesses — exactly the information the host kernel sees in reality.

#ifndef FAASNAP_SRC_VM_TRACE_H_
#define FAASNAP_SRC_VM_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/common/page_range.h"
#include "src/common/sim_time.h"

namespace faasnap {

struct TraceOp {
  Duration compute;  // CPU work performed before the access
  PageIndex page = 0;
  bool is_write = false;
};

struct InvocationTrace {
  std::vector<TraceOp> ops;
  // Compute after the last access (result serialization, response).
  Duration trailing_compute;
  // Guest pages freed when the invocation completes (transient allocations). With
  // the modified guest kernel these are sanitized to zero (section 4.5).
  PageRangeSet freed_at_end;

  uint64_t access_count() const { return ops.size(); }
  // Distinct pages touched (upper bound: ops may repeat pages).
  PageRangeSet TouchedPages() const;
  // Total CPU time in the trace.
  Duration TotalCompute() const;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_VM_TRACE_H_

// Trace generation for the Table 2 functions.
//
// A TraceGenerator turns a FunctionSpec plus a concrete input into an
// InvocationTrace over the guest layout:
//
//   1. stable pages: a fixed scattered permutation (runtime/library init order,
//      identical every invocation) followed by a sequential remainder (linear data
//      reads: the Python list, model weights);
//   2. input pages: a content-seeded subset of a window sized
//      window_factor * input_pages — different content selects different pages
//      (the image-diff effect); larger inputs use larger windows, pushing accesses
//      beyond any previously recorded working set (the Figure 8 effect);
//   3. anon pages: a sequential first-touch write sweep over the scratch zone
//      (the mmap-function / buffer-allocation pattern).
//
// Transient pages (2) and (3) are freed when the invocation ends; compute is
// spread uniformly across the accesses.

#ifndef FAASNAP_SRC_WORKLOADS_TRACE_GENERATOR_H_
#define FAASNAP_SRC_WORKLOADS_TRACE_GENERATOR_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/vm/guest_layout.h"
#include "src/vm/trace.h"
#include "src/workloads/function_spec.h"

namespace faasnap {

// A concrete invocation input: which content (seed) and how big (profile).
struct WorkloadInput {
  uint64_t content_seed = 1;
  InputProfile profile;
};

// Table 2's input A / input B. Fixed-input functions get the same seed for both.
WorkloadInput MakeInputA(const FunctionSpec& spec);
WorkloadInput MakeInputB(const FunctionSpec& spec);

// Figure 8: an input whose size is `ratio` times input A (contents differ from A).
WorkloadInput MakeScaledInput(const FunctionSpec& spec, double ratio, uint64_t content_seed);

class TraceGenerator {
 public:
  // Aborts (CHECK) if the spec cannot fit the layout.
  TraceGenerator(FunctionSpec spec, GuestLayout layout);

  InvocationTrace Generate(const WorkloadInput& input) const;

  // Non-zero pages of the function's "clean" snapshot (freshly booted VM with the
  // runtime initialized): the boot zone plus the stable pages.
  PageRangeSet CleanSnapshotNonZero() const;

  // The clustered-scatter placement of the runtime/library pages: short runs
  // separated by small gaps, with occasional large jumps. This is what makes a
  // minimal function's loading set consist of >1000 regions before merging
  // (section 4.6), and what blunts kernel readahead for vanilla restore.
  const std::vector<PageRange>& scattered_runs() const { return scattered_runs_; }
  // Long-lived sequential data (the Python list, model weights) after the span.
  const PageRange& sequential_stable() const { return sequential_stable_; }

  // Pages placed in the scattered span (slightly more than any one input touches;
  // the remainder models input-dependent code paths).
  uint64_t TotalScatteredPlaced() const;

  const FunctionSpec& spec() const { return spec_; }
  const GuestLayout& layout() const { return layout_; }

 private:
  FunctionSpec spec_;
  GuestLayout layout_;
  std::vector<PageRange> scattered_runs_;
  PageRange sequential_stable_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_WORKLOADS_TRACE_GENERATOR_H_

#include "src/workloads/arrival_mix.h"

#include <algorithm>
#include <cmath>

namespace faasnap {

namespace {

// Independent stream for burst-window renewals: salting the seed (instead of
// forking the primary stream) keeps the per-arrival draw count of the primary
// stream fixed at two, so poisson schedules match the historical samplers.
constexpr uint64_t kBurstStreamSalt = 0xb125753a11edULL;

constexpr double kPi = 3.14159265358979323846;

// Divides the gap by `rate` (rate > 1 compresses, rate < 1 stretches),
// keeping gaps strictly positive.
Duration ScaleGapByRate(Duration gap, double rate) {
  if (rate <= 0.0) {
    rate = 1e-6;
  }
  const auto scaled = static_cast<int64_t>(static_cast<double>(gap.nanos()) / rate);
  return Duration::Nanos(scaled < 1 ? 1 : scaled);
}

}  // namespace

Duration SampleArrivalGap(Rng& rng, Duration mean_gap) {
  // Inverse-CDF sampling of Exp(1/mean): -ln(U) * mean.
  double u = rng.NextDouble();
  if (u <= 0.0) {
    u = 1e-12;
  }
  const double ns = -std::log(u) * static_cast<double>(mean_gap.nanos());
  return Duration::Nanos(static_cast<int64_t>(ns) + 1);
}

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

Result<ArrivalProcess> ParseArrivalProcess(const std::string& name) {
  if (name == "poisson") {
    return ArrivalProcess::kPoisson;
  }
  if (name == "bursty") {
    return ArrivalProcess::kBursty;
  }
  if (name == "diurnal") {
    return ArrivalProcess::kDiurnal;
  }
  return InvalidArgumentError("unknown arrival process: " + name);
}

std::vector<Arrival> SampleArrivalMix(size_t functions, int count, const ArrivalMixConfig& mix,
                                      uint64_t seed) {
  FAASNAP_CHECK(functions > 0);
  FAASNAP_CHECK(mix.mean_gap > Duration::Zero());
  // Zipf CDF over ranks 1..F (uniform when the skew is off).
  std::vector<double> cdf(functions);
  double total = 0;
  for (size_t i = 0; i < functions; ++i) {
    total += mix.zipf_s > 0 ? 1.0 / std::pow(static_cast<double>(i + 1), mix.zipf_s) : 1.0;
    cdf[i] = total;
  }
  for (double& v : cdf) {
    v /= total;
  }

  Rng rng(seed);
  // Burst ON/OFF windows renew from their own stream; `window_end` is the
  // virtual offset (from the first arrival's reference point) where the
  // current window expires. The schedule starts OFF.
  Rng window_rng(seed ^ kBurstStreamSalt);
  bool burst_on = false;
  Duration offset;      // running sum of emitted gaps
  Duration window_end;  // exclusive end of the current ON/OFF window
  if (mix.process == ArrivalProcess::kBursty) {
    FAASNAP_CHECK(mix.burst_mean_on > Duration::Zero());
    FAASNAP_CHECK(mix.burst_mean_off > Duration::Zero());
    window_end = SampleArrivalGap(window_rng, mix.burst_mean_off);
  }

  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Draw order is pinned (function, then gap): existing benches rely on the
    // exact sequence for bit-identical schedules.
    const double u = rng.NextDouble();
    const size_t function_index =
        static_cast<size_t>(std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    Duration gap = SampleArrivalGap(rng, mix.mean_gap);
    switch (mix.process) {
      case ArrivalProcess::kPoisson:
        break;
      case ArrivalProcess::kBursty:
        while (offset >= window_end) {
          burst_on = !burst_on;
          window_end = window_end + SampleArrivalGap(
                                        window_rng, burst_on ? mix.burst_mean_on
                                                             : mix.burst_mean_off);
        }
        if (burst_on && mix.burst_multiplier > 1.0) {
          gap = ScaleGapByRate(gap, mix.burst_multiplier);
        }
        break;
      case ArrivalProcess::kDiurnal: {
        const double phase = 2.0 * kPi * static_cast<double>(offset.nanos()) /
                             static_cast<double>(mix.diurnal_period.nanos());
        const double rate = 1.0 + mix.diurnal_amplitude * std::sin(phase);
        gap = ScaleGapByRate(gap, rate);
        break;
      }
    }
    offset = offset + gap;
    arrivals.push_back(Arrival{std::min(function_index, functions - 1), gap});
  }
  return arrivals;
}

std::vector<Arrival> ZipfArrivals(size_t functions, int count, double zipf_s,
                                  Duration mean_gap, uint64_t seed) {
  ArrivalMixConfig mix;
  mix.process = ArrivalProcess::kPoisson;
  mix.mean_gap = mean_gap;
  mix.zipf_s = zipf_s;
  return SampleArrivalMix(functions, count, mix, seed);
}

std::vector<Duration> PoissonArrivalGaps(Duration mean_gap, int count, uint64_t seed) {
  FAASNAP_CHECK(mean_gap > Duration::Zero());
  Rng rng(seed);
  std::vector<Duration> gaps;
  gaps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    gaps.push_back(SampleArrivalGap(rng, mean_gap));
  }
  return gaps;
}

}  // namespace faasnap

#include "src/workloads/function_spec.h"

namespace faasnap {

namespace {

// Pages for a Table 2 megabyte figure.
constexpr PageCount MBPages(double mb) {
  return PageCount::FromPages(static_cast<uint64_t>(mb * 256.0));
}

std::vector<FunctionSpec> BuildCatalog() {
  std::vector<FunctionSpec> catalog;

  // --- Synthetic functions (section 3.1 / Figure 7); record and test inputs are
  // identical, so input pages are zero or fixed and fixed_input is set.

  catalog.push_back(FunctionSpec{
      .name = "hello-world",
      .description = "a minimal function; replies with a hello string",
      .stable_pages = MBPages(11.8),  // WS 11.8 MiB: runtime + Flask only
      .scattered_stable_pages = MBPages(11.8),
      .window_factor = 1.0,
      .input_a = {.input_pages = PageCount::FromPages(0), .anon_pages = PageCount::FromPages(0), .compute = Duration::Millis(4)},
      .input_b = {.input_pages = PageCount::FromPages(0), .anon_pages = PageCount::FromPages(0), .compute = Duration::Millis(4)},
      .fixed_input = true,
  });

  catalog.push_back(FunctionSpec{
      .name = "read-list",
      .description = "read every page of an existing 512 MiB Python list",
      .stable_pages = MBPages(526),  // the list persists across invocations
      .scattered_stable_pages = PageCount::FromPages(3584),
      .window_factor = 1.0,
      .input_a = {.input_pages = PageCount::FromPages(0), .anon_pages = PageCount::FromPages(0), .compute = Duration::Millis(120)},
      .input_b = {.input_pages = PageCount::FromPages(0), .anon_pages = PageCount::FromPages(0), .compute = Duration::Millis(120)},
      .trailing_compute_fraction = 0.8,  // tight read loop, processing afterwards
      .fixed_input = true,
  });

  catalog.push_back(FunctionSpec{
      .name = "mmap",
      .description = "allocate a 512 MiB anonymous region and write every page",
      .stable_pages = MBPages(24),  // WS 536 MiB = runtime + the 512 MiB region
      .scattered_stable_pages = PageCount::FromPages(3584),
      .window_factor = 1.0,
      .input_a = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(512),
                  .compute = Duration::Millis(60)},
      .input_b = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(512),
                  .compute = Duration::Millis(60)},
      .fixed_input = true,
  });

  // --- FunctionBench / SeBS / Sprocket functions (Table 2). Working set A/B pages
  // decompose into stable + transient so stable + input_a ~= "Working Set A".

  catalog.push_back(FunctionSpec{
      .name = "image",
      .description = "rotate a JPEG image (101 KB / 103 KB inputs)",
      .stable_pages = PageCount::FromPages(3000),
      .scattered_stable_pages = PageCount::FromPages(3000),
      .window_factor = 3.0,  // sparse access pattern (section 6.4)
      .input_a = {.input_pages = MBPages(20.6) - PageCount::FromPages(3000), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(90)},
      .input_b = {.input_pages = MBPages(32.6) - PageCount::FromPages(3000), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(110)},
  });

  catalog.push_back(FunctionSpec{
      .name = "json",
      .description = "deserialize and serialize JSON (13 KB / 148 KB inputs)",
      .stable_pages = PageCount::FromPages(2900),
      .scattered_stable_pages = PageCount::FromPages(2900),
      .window_factor = 1.5,
      .input_a = {.input_pages = MBPages(12.7) - PageCount::FromPages(2900), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(30)},
      .input_b = {.input_pages = MBPages(14.4) - PageCount::FromPages(2900), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(45)},
  });

  catalog.push_back(FunctionSpec{
      .name = "pyaes",
      .description = "pure-Python AES encryption of a 20k/22k string",
      .stable_pages = PageCount::FromPages(3100),
      .scattered_stable_pages = PageCount::FromPages(3100),
      .window_factor = 1.5,
      .input_a = {.input_pages = MBPages(12.6) - PageCount::FromPages(3100), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(300)},
      .input_b = {.input_pages = MBPages(13.2) - PageCount::FromPages(3100), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(330)},
  });

  catalog.push_back(FunctionSpec{
      .name = "chameleon",
      .description = "render an HTML table of 30k/40k cells",
      .stable_pages = PageCount::FromPages(3400),
      .scattered_stable_pages = PageCount::FromPages(3400),
      .window_factor = 2.0,
      .input_a = {.input_pages = MBPages(22.9) - PageCount::FromPages(3400), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(130)},
      .input_b = {.input_pages = MBPages(25.1) - PageCount::FromPages(3400), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(170)},
  });

  catalog.push_back(FunctionSpec{
      .name = "matmul",
      .description = "matrix multiplication, size 2000/2200",
      .stable_pages = PageCount::FromPages(3800),
      .scattered_stable_pages = PageCount::FromPages(3800),
      .window_factor = 1.0,
      .input_a = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(113) - PageCount::FromPages(3800),
                  .compute = Duration::Millis(700)},
      .input_b = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(133) - PageCount::FromPages(3800),
                  .compute = Duration::Millis(1100)},
      .compute_exponent = 1.5,  // O(n^3) work vs O(n^2) memory
      .anon_freed_fraction = 0.85,  // numpy arrays are munmapped on return
  });

  catalog.push_back(FunctionSpec{
      .name = "ffmpeg",
      .description = "apply a grayscale filter to a 1-second 480p video",
      .stable_pages = PageCount::FromPages(4000),
      .scattered_stable_pages = PageCount::FromPages(4000),
      .window_factor = 1.0,
      .input_a = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(179) - PageCount::FromPages(4000),
                  .compute = Duration::Millis(250)},
      .input_b = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(178) - PageCount::FromPages(4000),
                  .compute = Duration::Millis(280)},
      .anon_freed_fraction = 0.15,  // frame buffers recycled inside the process
  });

  catalog.push_back(FunctionSpec{
      .name = "compression",
      .description = "compress a 13 KB / 148 KB file",
      .stable_pages = PageCount::FromPages(3300),
      .scattered_stable_pages = PageCount::FromPages(3300),
      .window_factor = 1.0,
      .input_a = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(15.3) - PageCount::FromPages(3300),
                  .compute = Duration::Millis(120)},
      .input_b = {.input_pages = PageCount::FromPages(0), .anon_pages = MBPages(15.8) - PageCount::FromPages(3300),
                  .compute = Duration::Millis(140)},
      .anon_freed_fraction = 0.5,
  });

  catalog.push_back(FunctionSpec{
      .name = "recognition",
      .description = "PyTorch ResNet-50 image recognition",
      .stable_pages = PageCount::FromPages(56000),  // model weights dominate and persist
      .scattered_stable_pages = PageCount::FromPages(3000),
      .window_factor = 2.0,
      .input_a = {.input_pages = MBPages(230) - PageCount::FromPages(56000), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(400)},
      .input_b = {.input_pages = MBPages(234) - PageCount::FromPages(56000), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(420)},
      .trailing_compute_fraction = 0.7,  // weights stream in, inference follows
  });

  catalog.push_back(FunctionSpec{
      .name = "pagerank",
      .description = "igraph PageRank on a 90k/100k-node graph",
      .stable_pages = PageCount::FromPages(3500),
      .scattered_stable_pages = PageCount::FromPages(3500),
      .window_factor = 1.5,
      .input_a = {.input_pages = MBPages(104) - PageCount::FromPages(3500), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(300)},
      .input_b = {.input_pages = MBPages(114) - PageCount::FromPages(3500), .anon_pages = PageCount::FromPages(0),
                  .compute = Duration::Millis(350)},
  });

  return catalog;
}

}  // namespace

const std::vector<FunctionSpec>& FunctionCatalog() {
  static const std::vector<FunctionSpec>* catalog = new std::vector<FunctionSpec>(BuildCatalog());
  return *catalog;
}

Result<FunctionSpec> FindFunction(const std::string& name) {
  for (const FunctionSpec& spec : FunctionCatalog()) {
    if (spec.name == name) {
      return spec;
    }
  }
  return InvalidArgumentError("unknown function: " + name);
}

std::vector<std::string> BenchmarkFunctionNames() {
  return {"json",   "compression", "pyaes",  "chameleon",  "image",
          "matmul", "ffmpeg",      "pagerank", "recognition"};
}

std::vector<std::string> SyntheticFunctionNames() {
  return {"hello-world", "mmap", "read-list"};
}

}  // namespace faasnap

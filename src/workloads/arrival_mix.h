// Arrival-process sampling: the workload side of serving simulations.
//
// Every serving engine (KeepAliveSimulator, HostScheduler, the cluster
// dispatcher) consumes the same seeded arrival streams, so the samplers live
// with the workload definitions rather than with any one engine. Three
// processes cover the regimes the fleet-level literature sweeps ("How Low Can
// You Go?" frames cold-start rate vs. keep-alive memory under exactly these
// mixes):
//
//   poisson — exponential inter-arrival gaps at a fixed mean rate;
//   bursty  — an ON/OFF modulated Poisson process: exponentially distributed
//             ON windows during which the rate multiplies, separated by
//             exponentially distributed OFF stretches at the base rate;
//   diurnal — a sinusoidally rate-modulated Poisson process (period ~ a
//             simulated day, amplitude the peak-to-mean swing).
//
// Function popularity follows a Zipf(s) skew over the registered functions —
// the Azure-trace shape the paper cites (section 2.1): few functions are hot,
// most are invoked rarely. All samplers are deterministic per seed and draw in
// a pinned order, so schedules are bit-reproducible.

#ifndef FAASNAP_SRC_WORKLOADS_ARRIVAL_MIX_H_
#define FAASNAP_SRC_WORKLOADS_ARRIVAL_MIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace faasnap {

// One request: which registered function, arriving `gap` after the previous one.
struct Arrival {
  size_t function_index = 0;
  Duration gap;
};

// Exponential(mean_gap) sample via inverse-CDF (-ln(U) * mean), quantized to
// nanoseconds with a +1ns bias so gaps are strictly positive. Exactly one
// NextDouble draw per call; deterministic per RNG state.
Duration SampleArrivalGap(Rng& rng, Duration mean_gap);

// Zipf(s)-popular function choice with exponential inter-arrival gaps: the
// hot/cold skew of the Azure traces (section 2.1). Deterministic per seed.
std::vector<Arrival> ZipfArrivals(size_t functions, int count, double zipf_s,
                                  Duration mean_gap, uint64_t seed);

// Exponentially distributed inter-arrival gaps with the given mean (a Poisson
// arrival process), deterministic per seed.
std::vector<Duration> PoissonArrivalGaps(Duration mean_gap, int count, uint64_t seed);

enum class ArrivalProcess {
  kPoisson,
  kBursty,
  kDiurnal,
};

const char* ArrivalProcessName(ArrivalProcess process);
// Parses "poisson" | "bursty" | "diurnal"; InvalidArgument otherwise.
Result<ArrivalProcess> ParseArrivalProcess(const std::string& name);

// One seeded arrival source for a whole serving scenario.
struct ArrivalMixConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  // Mean inter-arrival gap at the base (off-peak) rate.
  Duration mean_gap = Duration::Seconds(1);
  // Zipf popularity skew across functions; <= 0 draws uniformly.
  double zipf_s = 1.2;
  // Bursty: rate multiplier inside ON windows, and the mean ON/OFF durations.
  double burst_multiplier = 8.0;
  Duration burst_mean_on = Duration::Seconds(2);
  Duration burst_mean_off = Duration::Seconds(20);
  // Diurnal: rate(t) = base * (1 + amplitude * sin(2*pi*t/period)), amplitude
  // in [0, 1). The period defaults to a compressed "day" so a bench run spans
  // several cycles without simulating 24 hours.
  double diurnal_amplitude = 0.8;
  Duration diurnal_period = Duration::Seconds(600);
};

// Samples `count` arrivals over `functions` registered functions. Exactly two
// RNG draws per arrival from the primary stream (function rank, then gap) plus
// an independent forked stream for burst-window renewals, so poisson schedules
// are bit-identical to the historical ZipfArrivals(...) for the same seed.
std::vector<Arrival> SampleArrivalMix(size_t functions, int count, const ArrivalMixConfig& mix,
                                      uint64_t seed);

}  // namespace faasnap

#endif  // FAASNAP_SRC_WORKLOADS_ARRIVAL_MIX_H_

// The Table 2 function catalog.
//
// Each of the paper's twelve functions is described by how it uses guest memory,
// which is all that snapshot restore can observe:
//
//   stable_pages — persistent pages re-read every invocation: the Python runtime,
//       Flask, libraries, function code, and long-lived data (read-list's 512 MiB
//       list, recognition's ResNet-50 weights). Non-zero in every snapshot.
//   input pages  — transient, input-dependent pages: a content-seeded subset of a
//       window that scales with input size (decoded images, parsed JSON, graph
//       structures). Freed when the invocation ends.
//   anon pages   — large sequential anonymous allocations (the mmap function's
//       512 MiB region, ffmpeg frame buffers, matmul matrices). Freed at the end.
//   compute      — CPU time, spread across the accesses.
//
// Sizes are set so the input-A/B working sets match Table 2. Compute budgets are
// set so Warm execution times land near Figure 1/6 (hello-world ~4 ms, image
// ~100 ms, ...); absolute times are documented per-experiment in EXPERIMENTS.md.

#ifndef FAASNAP_SRC_WORKLOADS_FUNCTION_SPEC_H_
#define FAASNAP_SRC_WORKLOADS_FUNCTION_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace faasnap {

// Per-input workload parameters (one column of Table 2).
struct InputProfile {
  PageCount input_pages;  // selective transient pages in the window zone
  PageCount anon_pages;   // sequential transient pages in the scratch zone
  Duration compute;          // total CPU time for this input
};

struct FunctionSpec {
  std::string name;
  std::string description;
  PageCount stable_pages;
  // How many of the stable pages are accessed in scattered (library/runtime) order
  // rather than sequentially; the rest model linear data reads.
  PageCount scattered_stable_pages;
  // Window size = window_factor * input_pages: lower density = sparser access
  // pattern (image is sparse; json is dense).
  double window_factor = 2.0;
  InputProfile input_a;
  InputProfile input_b;
  // compute(ratio) = compute_a * ratio^compute_exponent for the Figure 8 sweep.
  double compute_exponent = 1.0;
  // Fraction of compute performed after the data has been read (0 = uniformly
  // interleaved). Data-scan functions (read-list, recognition) read pages in a
  // tight loop and process afterwards — which is why their guests outrun the
  // FaaSnap loader and Cached wins for them (section 6.2).
  double trailing_compute_fraction = 0.0;
  // Fraction of the anon (scratch) pages the guest kernel gets back when the
  // invocation ends — i.e. what freed-page sanitization can zero (section 4.5).
  // mmap munmaps everything (1.0); ffmpeg's recycled frame buffers mostly stay
  // with the process allocator (paper Table 3: FaaSnap still fetches 146 MB for
  // ffmpeg). Window (small-object heap) pages are always retained: Python arenas
  // are not returned to the kernel.
  double anon_freed_fraction = 1.0;
  // True for functions whose record and test inputs are identical (the three
  // synthetic functions of Figure 7).
  bool fixed_input = false;

  // Approximate working set in pages for an input (stable + transient).
  PageCount WorkingSetPages(const InputProfile& input) const {
    return stable_pages + input.input_pages + input.anon_pages;
  }
};

// The twelve evaluation functions, in Table 2 order.
const std::vector<FunctionSpec>& FunctionCatalog();

// Lookup by name; InvalidArgument if unknown.
Result<FunctionSpec> FindFunction(const std::string& name);

// Names of the nine variable-input benchmark functions (Figure 6/8) and the three
// synthetic fixed-input functions (Figure 7).
std::vector<std::string> BenchmarkFunctionNames();
std::vector<std::string> SyntheticFunctionNames();

}  // namespace faasnap

#endif  // FAASNAP_SRC_WORKLOADS_FUNCTION_SPEC_H_

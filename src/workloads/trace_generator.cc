#include "src/workloads/trace_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/snapshot/serialization.h"

namespace faasnap {

namespace {

constexpr uint64_t kInputASeed = 0xA;
constexpr uint64_t kInputBSeed = 0xB;

// Runtime/library pages: a fixed fraction is exercised by every input (the
// interpreter core, Flask, the request path); the rest belongs to code paths the
// input may or may not take. This is the working-set drift host page recording
// tolerates (section 4.4): readahead caches pages adjacent to the exercised code,
// and a future input's different code paths land on exactly those pages.
constexpr double kAlwaysExercisedFraction = 0.6;
constexpr double kVariablePathProbability = 0.75;
constexpr uint64_t kStablePathSalt = 0x57AB1E;

// Stable hash of (page, seed) to [0, 1) for content-dependent page selection.
double PageSelectionScore(PageIndex page, uint64_t seed) {
  Rng rng(page * 0x9e3779b97f4a7c15ULL ^ seed);
  return rng.NextDouble();
}

uint64_t NameSeed(const std::string& name) {
  return Fnv1a64(reinterpret_cast<const uint8_t*>(name.data()), name.size());
}

}  // namespace

WorkloadInput MakeInputA(const FunctionSpec& spec) {
  return WorkloadInput{.content_seed = kInputASeed, .profile = spec.input_a};
}

WorkloadInput MakeInputB(const FunctionSpec& spec) {
  return WorkloadInput{.content_seed = spec.fixed_input ? kInputASeed : kInputBSeed,
                       .profile = spec.input_b};
}

WorkloadInput MakeScaledInput(const FunctionSpec& spec, double ratio, uint64_t content_seed) {
  FAASNAP_CHECK(ratio > 0);
  InputProfile profile;
  profile.input_pages = PageCount::FromPages(
      static_cast<uint64_t>(static_cast<double>(spec.input_a.input_pages.value()) * ratio));
  profile.anon_pages = PageCount::FromPages(
      static_cast<uint64_t>(static_cast<double>(spec.input_a.anon_pages.value()) * ratio));
  profile.compute = Duration::Nanos(static_cast<int64_t>(
      static_cast<double>(spec.input_a.compute.nanos()) * std::pow(ratio, spec.compute_exponent)));
  return WorkloadInput{.content_seed = content_seed, .profile = profile};
}

TraceGenerator::TraceGenerator(FunctionSpec spec, GuestLayout layout)
    : spec_(std::move(spec)), layout_(layout) {
  FAASNAP_CHECK_OK(layout_.Validate());
  FAASNAP_CHECK(spec_.stable_pages.value() <= layout_.stable.count);
  FAASNAP_CHECK(spec_.scattered_stable_pages <= spec_.stable_pages);
  FAASNAP_CHECK(spec_.window_factor >= 1.0);

  // Clustered scattering of the runtime/library pages: runs of 1-16 pages, mostly
  // single-page gaps (merged away by the 32-page threshold at a small data cost,
  // section 4.6), with an occasional larger jump (different shared objects).
  // Deterministic per function: the runtime layout does not change across runs.
  // Slightly more pages are placed than any one input touches: the expected
  // per-invocation coverage (always-exercised + variable code paths) matches the
  // spec's scattered_stable_pages.
  const double expected_coverage =
      kAlwaysExercisedFraction + (1.0 - kAlwaysExercisedFraction) * kVariablePathProbability;
  const auto to_place = static_cast<uint64_t>(
      std::ceil(static_cast<double>(spec_.scattered_stable_pages.value()) / expected_coverage));
  Rng rng(NameSeed(spec_.name) ^ 0x5eed);
  PageIndex cursor = layout_.stable.first;
  uint64_t placed = 0;
  while (placed < to_place) {
    const uint64_t run = std::min<uint64_t>(1 + rng.NextBelow(16), to_place - placed);
    scattered_runs_.push_back(PageRange{cursor, run});
    cursor += run;
    placed += run;
    const uint64_t gap = rng.NextBool(0.85) ? 1 : 64 + rng.NextBelow(128);
    cursor += gap;
  }
  sequential_stable_ =
      PageRange{cursor, (spec_.stable_pages - spec_.scattered_stable_pages).value()};
  FAASNAP_CHECK(sequential_stable_.end() <= layout_.stable.end());
}

uint64_t TraceGenerator::TotalScatteredPlaced() const {
  uint64_t total = 0;
  for (const PageRange& run : scattered_runs_) {
    total += run.count;
  }
  return total;
}

PageRangeSet TraceGenerator::CleanSnapshotNonZero() const {
  PageRangeSet nonzero;
  nonzero.Add(layout_.boot);
  for (const PageRange& run : scattered_runs_) {
    nonzero.Add(run);
  }
  nonzero.Add(sequential_stable_);
  return nonzero;
}

InvocationTrace TraceGenerator::Generate(const WorkloadInput& input) const {
  InvocationTrace trace;

  // 1. Stable pages: the scattered runtime segment in a fixed shuffled order
  //    (library/init order is uncorrelated with addresses and identical every
  //    invocation), then the long-lived data read sequentially. An always-
  //    exercised prefix of each run is touched by every input; the rest are
  //    input-dependent code paths selected by the content seed.
  {
    std::vector<PageIndex> scattered;
    scattered.reserve(spec_.scattered_stable_pages.value());
    const uint64_t always_salt = NameSeed(spec_.name) ^ 0xA17A75;
    for (const PageRange& run : scattered_runs_) {
      for (PageIndex p = run.first; p < run.end(); ++p) {
        // Always-exercised pages are a fixed (per-function) subset interleaved
        // through the span; the rest are taken only on matching code paths.
        const bool taken =
            PageSelectionScore(p, always_salt) < kAlwaysExercisedFraction ||
            PageSelectionScore(p, input.content_seed ^ kStablePathSalt) <
                kVariablePathProbability;
        if (taken) {
          scattered.push_back(p);
        }
      }
    }
    Rng shuffle_rng(NameSeed(spec_.name));
    for (uint64_t i = scattered.size(); i > 1; --i) {
      std::swap(scattered[i - 1], scattered[shuffle_rng.NextBelow(i)]);
    }
    for (PageIndex p : scattered) {
      trace.ops.push_back(TraceOp{Duration::Zero(), p, /*is_write=*/false});
    }
    for (PageIndex p = sequential_stable_.first; p < sequential_stable_.end(); ++p) {
      trace.ops.push_back(TraceOp{Duration::Zero(), p, /*is_write=*/false});
    }
  }

  // 2. Input-dependent window pages: content-seeded subset of the window, visited
  //    in address order (a sparse sweep). These live in the language runtime's
  //    small-object heap, whose arenas are NOT returned to the guest kernel, so
  //    they remain non-zero in the snapshot (and in the loading set) even though
  //    the objects are logically dead — the "sparse access pattern" effect that
  //    inflates image's loading set in Table 3.
  if (!input.profile.input_pages.is_zero()) {
    const PageCount window = PageCount::FromPages(std::min<uint64_t>(
        layout_.window.count,
        static_cast<uint64_t>(std::ceil(static_cast<double>(input.profile.input_pages.value()) *
                                        spec_.window_factor))));
    // Inputs larger than the window zone saturate it (the guest would swap or OOM
    // in reality; the trace simply touches every window page).
    const PageCount effective_input = std::min(input.profile.input_pages, window);
    const double density =
        static_cast<double>(effective_input.value()) / static_cast<double>(window.value());
    for (uint64_t i = 0; i < window.value(); ++i) {
      const PageIndex page = layout_.window.first + i;
      if (density >= 1.0 || PageSelectionScore(page, input.content_seed) < density) {
        trace.ops.push_back(TraceOp{Duration::Zero(), page, /*is_write=*/true});
      }
    }
  }

  // 3. Sequential anonymous allocation sweep in the scratch zone. Placement
  //    jitters with the input (allocator nondeterminism across invocations) for
  //    variable-input functions; a trailing anon_freed_fraction is munmapped back
  //    to the guest kernel at the end (and thus sanitizable, section 4.5).
  if (!input.profile.anon_pages.is_zero()) {
    uint64_t offset = 0;
    if (!spec_.fixed_input) {
      offset = static_cast<uint64_t>(PageSelectionScore(0x0FF5E7, input.content_seed) * 4096.0);
    }
    const PageIndex base = layout_.scratch.first + offset;
    const uint64_t anon =
        std::min<uint64_t>(input.profile.anon_pages.value(), layout_.scratch.end() - base);
    for (uint64_t i = 0; i < anon; ++i) {
      trace.ops.push_back(TraceOp{Duration::Zero(), base + i, /*is_write=*/true});
    }
    const auto freed = static_cast<uint64_t>(static_cast<double>(anon) *
                                             spec_.anon_freed_fraction);
    if (freed > 0) {
      trace.freed_at_end.Add(base + (anon - freed), freed);
    }
  }

  // Compute placement: a trailing fraction models post-scan processing; the rest
  // is spread uniformly across the accesses.
  const auto trailing = Duration::Nanos(static_cast<int64_t>(
      static_cast<double>(input.profile.compute.nanos()) * spec_.trailing_compute_fraction));
  const Duration interleaved = input.profile.compute - trailing;
  if (!trace.ops.empty()) {
    const int64_t per_op = interleaved.nanos() / static_cast<int64_t>(trace.ops.size());
    for (TraceOp& op : trace.ops) {
      op.compute = Duration::Nanos(per_op);
    }
    trace.trailing_compute =
        input.profile.compute - Duration::Nanos(per_op * static_cast<int64_t>(trace.ops.size()));
  } else {
    trace.trailing_compute = input.profile.compute;
  }
  return trace;
}

}  // namespace faasnap

#include "src/storage/storage_router.h"

#include <utility>

#include "src/chaos/fault_injector.h"
#include "src/obs/observability.h"
#include "src/sim/simulation.h"

namespace faasnap {

// State for one failure-aware read, shared between the attempt chain, the
// deadline timers, and (late) device completions. `generation` is bumped every
// time an attempt settles, so the loser of a completion/deadline race — and any
// event from a superseded attempt — sees a stale generation and drops out.
struct StorageRouter::PendingRead {
  FileId file = kInvalidFileId;  // merge stream for the device scheduler
  uint64_t offset = 0;
  uint64_t bytes = 0;
  ReadClass cls = ReadClass::kDemand;
  SpanId parent = kNoSpan;
  DeviceId device = kLocalDevice;
  int attempt = 1;
  bool failed_over = false;
  SimTime first_issue;
  uint64_t generation = 0;
  ReadCallback done;
};

DeviceId StorageRouter::AddDevice(BlockDevice* device) {
  FAASNAP_CHECK(device != nullptr);
  devices_.push_back(device);
  MutexLock lock(mu_);
  breakers_.push_back(Breaker{});
  return static_cast<DeviceId>(devices_.size() - 1);
}

StorageFaultStats StorageRouter::fault_stats() const {
  MutexLock lock(mu_);
  return fault_stats_;
}

void StorageRouter::AssignFile(FileId file, DeviceId device_id) {
  FAASNAP_CHECK(file != kInvalidFileId);
  FAASNAP_CHECK(device_id < devices_.size());
  placement_[file] = device_id;
}

DeviceId StorageRouter::DeviceFor(FileId file) const {
  auto it = placement_.find(file);
  return it == placement_.end() ? kLocalDevice : it->second;
}

BlockDevice* StorageRouter::device(DeviceId id) const {
  FAASNAP_CHECK(id < devices_.size());
  return devices_[id];
}

void StorageRouter::ConfigureFaultHandling(Simulation* sim, FaultInjector* injector,
                                           StorageFaultPolicy policy) {
  FAASNAP_CHECK(sim != nullptr);
  FAASNAP_CHECK(policy.max_attempts >= 1);
  sim_ = sim;
  injector_ = injector;
  policy_ = policy;
}

void StorageRouter::set_observability(SpanTracer* spans, MetricsRegistry* metrics) {
  for (size_t i = 0; i < devices_.size(); ++i) {
    devices_[i]->set_observability(spans, metrics);
  }
  if (metrics != nullptr) {
    routed_local_ = metrics->GetCounter("storage.routed_reads", {{"tier", "local"}});
    routed_remote_ = metrics->GetCounter("storage.routed_reads", {{"tier", "remote"}});
  } else {
    routed_local_ = nullptr;
    routed_remote_ = nullptr;
  }
  // Fault-handling series exist only under chaos, so fault-free runs keep a
  // bit-identical metrics snapshot.
  if (metrics != nullptr && injector_ != nullptr) {
    retries_metric_ = metrics->GetCounter("storage.retries");
    failovers_metric_ = metrics->GetCounter("storage.failovers");
    breaker_opens_metric_ = metrics->GetCounter("storage.breaker_opens");
    read_failures_metric_ = metrics->GetCounter("storage.read_failures");
    retry_latency_metric_ = metrics->GetHistogram("storage.retry_latency_ns");
  } else {
    retries_metric_ = nullptr;
    failovers_metric_ = nullptr;
    breaker_opens_metric_ = nullptr;
    read_failures_metric_ = nullptr;
    retry_latency_metric_ = nullptr;
  }
  spans_ = spans;
}

void StorageRouter::Read(FileId file, uint64_t offset, uint64_t bytes,
                         std::function<void()> done, SpanId parent, ReadClass cls) {
  FAASNAP_CHECK(!devices_.empty());
  const DeviceId device = DeviceFor(file);
  if (routed_local_ != nullptr) {
    (device == kLocalDevice ? routed_local_ : routed_remote_)->Add(1);
  }
  // Untyped callers have no error handling, so a terminal injected failure on
  // this path is a programming error (pipeline paths use ReadWithStatus).
  devices_[device]->Read(offset, bytes, DeviceReadOptions{cls, /*stream=*/file, parent},
                         [done = std::move(done)](Status status) mutable {
                           FAASNAP_CHECK(status.ok() &&
                                         "untyped StorageRouter::Read failed under fault injection");
                           done();
                         });
}

int StorageRouter::DemandPressure() const {
  int pressure = 0;
  for (const BlockDevice* device : devices_) {
    pressure += device->demand_pressure();
  }
  return pressure;
}

void StorageRouter::ReadWithStatus(FileId file, uint64_t offset, uint64_t bytes,
                                   ReadCallback done, SpanId parent, ReadClass cls) {
  FAASNAP_CHECK(!devices_.empty());
  const DeviceId device = DeviceFor(file);
  if (routed_local_ != nullptr) {
    (device == kLocalDevice ? routed_local_ : routed_remote_)->Add(1);
  }
  if (injector_ == nullptr) {
    // Chaos off: a single direct device read, event-for-event identical to the
    // untyped path.
    devices_[device]->Read(offset, bytes, DeviceReadOptions{cls, /*stream=*/file, parent},
                           std::move(done));
    return;
  }
  auto req = std::make_shared<PendingRead>();
  req->file = file;
  req->offset = offset;
  req->bytes = bytes;
  req->cls = cls;
  req->parent = parent;
  req->device = device;
  req->first_issue = sim_->now();
  req->done = std::move(done);
  Attempt(std::move(req));
}

Duration StorageRouter::BackoffBefore(int attempt) const {
  // Backoff before attempt n (n >= 2): initial * multiplier^(n-2), capped.
  double ns = static_cast<double>(policy_.initial_backoff.nanos());
  for (int i = 2; i < attempt; ++i) {
    ns *= policy_.backoff_multiplier;
  }
  const Duration backoff = Duration::Nanos(static_cast<int64_t>(ns));
  return Min(backoff, policy_.max_backoff);
}

void StorageRouter::Attempt(std::shared_ptr<PendingRead> req) {
  const SimTime now = sim_->now();
  bool fast_fail = false;
  {
    MutexLock lock(mu_);
    const Breaker& breaker = breakers_[req->device];
    if (breaker.open && now < breaker.open_until) {
      fault_stats_.breaker_fast_fails++;
      fast_fail = true;
    }
  }
  if (fast_fail) {
    // Fail fast without touching the device; the breaker eats the attempt. The
    // retry/backoff ladder still runs, so by the time attempts are exhausted
    // the read fails over (or fails) with the breaker's verdict.
    Status verdict = UnavailableError("circuit breaker open for device " +
                                      devices_[req->device]->profile().name);
    HandleFailure(std::move(req), std::move(verdict));
    return;
  }
  // If open but past open_until, this read is the half-open probe: it reaches
  // the device; success closes the breaker, failure re-arms it.
  const uint64_t generation = ++req->generation;
  devices_[req->device]->Read(
      req->offset, req->bytes,
      DeviceReadOptions{req->cls, /*stream=*/req->file, req->parent},
      [this, req, generation](Status status) {
        OnAttemptComplete(req, generation, std::move(status));
      });
  if (policy_.read_deadline > Duration::Zero()) {
    sim_->ScheduleAfter(policy_.read_deadline, [this, req, generation] {
      OnAttemptComplete(req, generation,
                        DeadlineExceededError("read deadline exceeded on device " +
                                              devices_[req->device]->profile().name));
    });
  }
}

void StorageRouter::OnAttemptComplete(std::shared_ptr<PendingRead> req, uint64_t generation,
                                      Status status) {
  if (generation != req->generation) {
    return;  // stale: this attempt already settled (deadline/completion race)
  }
  req->generation++;  // invalidate the loser of the race
  if (status.ok()) {
    RecordDeviceSuccess(req->device);
    FinishRead(std::move(req), OkStatus());
    return;
  }
  RecordDeviceFailure(req->device);
  HandleFailure(std::move(req), std::move(status));
}

void StorageRouter::HandleFailure(std::shared_ptr<PendingRead> req, Status status) {
  if (req->attempt < policy_.max_attempts) {
    req->attempt++;
    {
      MutexLock lock(mu_);
      fault_stats_.retries++;
    }
    if (retries_metric_ != nullptr) {
      retries_metric_->Add(1);
    }
    if (spans_ != nullptr) {
      spans_->Instant(sim_->now(), ObsLane::kDisk, obsname::kStorageRetry,
                      static_cast<uint64_t>(req->attempt), req->device, req->parent);
    }
    const Duration backoff = BackoffBefore(req->attempt);
    sim_->ScheduleAfter(backoff,
                        [this, req = std::move(req)]() mutable { Attempt(std::move(req)); });
    return;
  }
  // Attempts exhausted on this device. Non-local reads get one more budget on
  // the local replica before the failure propagates.
  if (policy_.failover_to_local && req->device != kLocalDevice && !req->failed_over) {
    req->failed_over = true;
    req->device = kLocalDevice;
    req->attempt = 1;
    {
      MutexLock lock(mu_);
      fault_stats_.failovers++;
    }
    if (failovers_metric_ != nullptr) {
      failovers_metric_->Add(1);
    }
    Attempt(std::move(req));
    return;
  }
  {
    MutexLock lock(mu_);
    fault_stats_.failed_reads++;
  }
  if (read_failures_metric_ != nullptr) {
    read_failures_metric_->Add(1);
  }
  FinishRead(std::move(req), std::move(status));
}

void StorageRouter::FinishRead(std::shared_ptr<PendingRead> req, Status status) {
  if (retry_latency_metric_ != nullptr && (req->attempt > 1 || req->failed_over)) {
    retry_latency_metric_->Record(sim_->now() - req->first_issue);
  }
  ReadCallback done = std::move(req->done);
  done(std::move(status));
}

void StorageRouter::RecordDeviceSuccess(DeviceId device) {
  MutexLock lock(mu_);
  Breaker& breaker = breakers_[device];
  breaker.consecutive_failures = 0;
  breaker.open = false;
}

void StorageRouter::RecordDeviceFailure(DeviceId device) {
  const SimTime now = sim_->now();
  bool opened = false;
  {
    MutexLock lock(mu_);
    Breaker& breaker = breakers_[device];
    breaker.consecutive_failures++;
    if (breaker.open) {
      // Failed half-open probe: re-arm the open window.
      breaker.open_until = now + policy_.breaker_open_for;
      return;
    }
    if (breaker.consecutive_failures >= policy_.breaker_failure_threshold) {
      breaker.open = true;
      breaker.open_until = now + policy_.breaker_open_for;
      fault_stats_.breaker_opens++;
      opened = true;
    }
  }
  if (opened) {
    if (breaker_opens_metric_ != nullptr) {
      breaker_opens_metric_->Add(1);
    }
    if (spans_ != nullptr) {
      spans_->Instant(now, ObsLane::kDisk, obsname::kBreakerOpen, device);
    }
  }
}

}  // namespace faasnap

#include "src/storage/storage_router.h"

namespace faasnap {

DeviceId StorageRouter::AddDevice(BlockDevice* device) {
  FAASNAP_CHECK(device != nullptr);
  devices_.push_back(device);
  return static_cast<DeviceId>(devices_.size() - 1);
}

void StorageRouter::AssignFile(FileId file, DeviceId device_id) {
  FAASNAP_CHECK(file != kInvalidFileId);
  FAASNAP_CHECK(device_id < devices_.size());
  placement_[file] = device_id;
}

DeviceId StorageRouter::DeviceFor(FileId file) const {
  auto it = placement_.find(file);
  return it == placement_.end() ? kLocalDevice : it->second;
}

BlockDevice* StorageRouter::device(DeviceId id) const {
  FAASNAP_CHECK(id < devices_.size());
  return devices_[id];
}

void StorageRouter::set_observability(SpanTracer* spans, MetricsRegistry* metrics) {
  for (BlockDevice* device : devices_) {
    device->set_observability(spans, metrics);
  }
  if (metrics != nullptr) {
    routed_local_ = metrics->GetCounter("storage.routed_reads", {{"tier", "local"}});
    routed_remote_ = metrics->GetCounter("storage.routed_reads", {{"tier", "remote"}});
  } else {
    routed_local_ = nullptr;
    routed_remote_ = nullptr;
  }
}

void StorageRouter::Read(FileId file, uint64_t offset, uint64_t bytes,
                         std::function<void()> done, SpanId parent) {
  FAASNAP_CHECK(!devices_.empty());
  const DeviceId device = DeviceFor(file);
  if (routed_local_ != nullptr) {
    (device == kLocalDevice ? routed_local_ : routed_remote_)->Add(1);
  }
  devices_[device]->Read(offset, bytes, std::move(done), parent);
}

}  // namespace faasnap

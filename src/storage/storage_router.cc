#include "src/storage/storage_router.h"

namespace faasnap {

DeviceId StorageRouter::AddDevice(BlockDevice* device) {
  FAASNAP_CHECK(device != nullptr);
  devices_.push_back(device);
  return static_cast<DeviceId>(devices_.size() - 1);
}

void StorageRouter::AssignFile(FileId file, DeviceId device_id) {
  FAASNAP_CHECK(file != kInvalidFileId);
  FAASNAP_CHECK(device_id < devices_.size());
  placement_[file] = device_id;
}

DeviceId StorageRouter::DeviceFor(FileId file) const {
  auto it = placement_.find(file);
  return it == placement_.end() ? kLocalDevice : it->second;
}

BlockDevice* StorageRouter::device(DeviceId id) const {
  FAASNAP_CHECK(id < devices_.size());
  return devices_[id];
}

void StorageRouter::Read(FileId file, uint64_t offset, uint64_t bytes,
                         std::function<void()> done) {
  FAASNAP_CHECK(!devices_.empty());
  devices_[DeviceFor(file)]->Read(offset, bytes, std::move(done));
}

}  // namespace faasnap

#include "src/storage/block_device.h"

#include <algorithm>
#include <utility>

#include "src/chaos/fault_injector.h"
#include "src/common/status.h"
#include "src/obs/observability.h"

namespace faasnap {

BlockDevice::BlockDevice(Simulation* sim, BlockDeviceProfile profile, uint64_t seed)
    : sim_(sim), profile_(std::move(profile)), rng_(seed) {
  FAASNAP_CHECK(sim_ != nullptr);
  FAASNAP_CHECK(profile_.bandwidth_bytes_per_s > 0);
  FAASNAP_CHECK(profile_.iops > 0);
}

Duration BlockDevice::TransferTime(uint64_t bytes) const {
  // ns = bytes * 1e9 / bw. Use 128-bit-safe ordering: bytes up to GiBs fits.
  return Duration::Nanos(static_cast<int64_t>(
      (static_cast<__uint128_t>(bytes) * 1000000000ull) / profile_.bandwidth_bytes_per_s));
}

Duration BlockDevice::IopsInterval() const {
  return Duration::Nanos(static_cast<int64_t>(1000000000ull / profile_.iops));
}

SimTime BlockDevice::EstimateCompletion(uint64_t bytes) const {
  const SimTime start = sim_->now();
  const SimTime iops_ready = Max(iops_busy_until_, start) + IopsInterval();
  const SimTime bw_ready = Max(bw_busy_until_, start) + TransferTime(bytes);
  return Max(iops_ready, bw_ready) + profile_.base_latency;
}

void BlockDevice::set_observability(SpanTracer* spans, MetricsRegistry* metrics) {
  spans_ = spans;
  disk_read_name_ = spans_ != nullptr ? spans_->InternName(obsname::kDiskRead) : 0;
  if (metrics != nullptr) {
    const MetricLabels labels = {{"device", profile_.name}};
    read_requests_metric_ = metrics->GetCounter("disk.read_requests", labels);
    bytes_read_metric_ = metrics->GetCounter("disk.bytes_read", labels);
    queue_depth_metric_ = metrics->GetGauge("disk.queue_depth", labels);
  } else {
    read_requests_metric_ = nullptr;
    bytes_read_metric_ = nullptr;
    queue_depth_metric_ = nullptr;
  }
}

void BlockDevice::Read(uint64_t offset, uint64_t bytes, std::function<void()> done,
                       SpanId parent) {
  if (injector_ != nullptr) {
    // Route through the status-carrying path so injection decisions are drawn;
    // untyped callers have no error handling, so a terminal failure here is a
    // programming error (pipeline paths use the Status overload).
    Read(offset, bytes,
         [done = std::move(done)](Status status) mutable {
           FAASNAP_CHECK(status.ok() && "untyped BlockDevice::Read failed under fault injection");
           done();
         },
         parent);
    return;
  }
  FAASNAP_CHECK(bytes > 0);
  const SimTime start = sim_->now();
  const SimTime iops_ready = Max(iops_busy_until_, start) + IopsInterval();
  const SimTime bw_ready = Max(bw_busy_until_, start) + TransferTime(bytes);
  iops_busy_until_ = iops_ready;
  bw_busy_until_ = bw_ready;
  SimTime completion = Max(iops_ready, bw_ready) + profile_.base_latency;
  if (profile_.jitter > 0.0) {
    const Duration service = completion - start;
    const double factor = 1.0 + profile_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    completion = start + Duration::Nanos(std::max<int64_t>(
                             1, static_cast<int64_t>(
                                    static_cast<double>(service.nanos()) * factor)));
  }
  stats_.read_requests++;
  stats_.bytes_read += bytes;
  if (spans_ != nullptr) {
    // Service time is decided at issue, so the whole span records here.
    spans_->CompleteId(start, completion, ObsLane::kDisk, disk_read_name_, offset, bytes,
                      parent);
  }
  if (read_requests_metric_ != nullptr) {
    read_requests_metric_->Add(1);
    bytes_read_metric_->Add(static_cast<int64_t>(bytes));
    queue_depth_metric_->Set(static_cast<double>(++outstanding_));
    // Still exactly one scheduled event; the wrapper only updates the gauge.
    sim_->Schedule(completion, [this, done = std::move(done)] {
      queue_depth_metric_->Set(static_cast<double>(--outstanding_));
      done();
    });
    return;
  }
  sim_->Schedule(completion, std::move(done));
}

void BlockDevice::Read(uint64_t offset, uint64_t bytes, std::function<void(Status)> done,
                       SpanId parent) {
  FAASNAP_CHECK(bytes > 0);
  const SimTime start = sim_->now();
  Status result = OkStatus();
  Duration extra = Duration::Zero();
  if (injector_ != nullptr) {
    FaultInjector::ReadFault fault = injector_->OnDeviceRead(device_ordinal_, profile_.name);
    result = std::move(fault.status);
    extra = fault.extra_latency;
  }
  SimTime completion;
  if (!result.ok()) {
    // A failed request occupies a request slot and pays the fixed per-request
    // latency (the device or remote side reported the error) but transfers no
    // data, so the bandwidth serializer does not advance.
    const SimTime iops_ready = Max(iops_busy_until_, start) + IopsInterval();
    iops_busy_until_ = iops_ready;
    completion = iops_ready + profile_.base_latency + extra;
    stats_.read_requests++;
  } else {
    const SimTime iops_ready = Max(iops_busy_until_, start) + IopsInterval();
    const SimTime bw_ready = Max(bw_busy_until_, start) + TransferTime(bytes);
    iops_busy_until_ = iops_ready;
    bw_busy_until_ = bw_ready;
    completion = Max(iops_ready, bw_ready) + profile_.base_latency;
    if (profile_.jitter > 0.0) {
      const Duration service = completion - start;
      const double factor = 1.0 + profile_.jitter * (2.0 * rng_.NextDouble() - 1.0);
      completion = start + Duration::Nanos(std::max<int64_t>(
                               1, static_cast<int64_t>(
                                      static_cast<double>(service.nanos()) * factor)));
    }
    completion = completion + extra;
    stats_.read_requests++;
    stats_.bytes_read += bytes;
  }
  if (spans_ != nullptr) {
    spans_->CompleteId(start, completion, ObsLane::kDisk, disk_read_name_, offset, bytes,
                       parent);
  }
  if (read_requests_metric_ != nullptr) {
    read_requests_metric_->Add(1);
    if (result.ok()) {
      bytes_read_metric_->Add(static_cast<int64_t>(bytes));
    }
    queue_depth_metric_->Set(static_cast<double>(++outstanding_));
    sim_->Schedule(completion, [this, done = std::move(done), result = std::move(result)]() mutable {
      queue_depth_metric_->Set(static_cast<double>(--outstanding_));
      done(std::move(result));
    });
    return;
  }
  sim_->Schedule(completion, [done = std::move(done), result = std::move(result)]() mutable {
    done(std::move(result));
  });
}

}  // namespace faasnap

#include "src/storage/block_device.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/chaos/fault_injector.h"
#include "src/common/status.h"
#include "src/obs/observability.h"

namespace faasnap {

BlockDevice::BlockDevice(Simulation* sim, BlockDeviceProfile profile, uint64_t seed)
    : sim_(sim), profile_(std::move(profile)), rng_(seed) {
  FAASNAP_CHECK(sim_ != nullptr);
  FAASNAP_CHECK(profile_.bandwidth_bytes_per_s > 0);
  FAASNAP_CHECK(profile_.iops > 0);
}

Duration BlockDevice::TransferTime(uint64_t bytes) const {
  // ns = bytes * 1e9 / bw. Use 128-bit-safe ordering: bytes up to GiBs fits.
  return Duration::Nanos(static_cast<int64_t>(
      (static_cast<__uint128_t>(bytes) * 1000000000ull) / profile_.bandwidth_bytes_per_s));
}

Duration BlockDevice::IopsInterval() const {
  return Duration::Nanos(static_cast<int64_t>(1000000000ull / profile_.iops));
}

BlockDevice::CompletionPlan BlockDevice::PlanCompletion(uint64_t bytes, SimTime start,
                                                        bool transfers_data) const {
  CompletionPlan plan;
  plan.iops_ready = Max(iops_busy_until_, start) + IopsInterval();
  plan.bw_ready =
      transfers_data ? Max(bw_busy_until_, start) + TransferTime(bytes) : plan.iops_ready;
  plan.completion = Max(plan.iops_ready, plan.bw_ready) + profile_.base_latency;
  return plan;
}

SimTime BlockDevice::ApplyJitter(SimTime start, SimTime completion) {
  const Duration service = completion - start;
  const double factor = 1.0 + profile_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  return start + Duration::Nanos(std::max<int64_t>(
                     1, static_cast<int64_t>(static_cast<double>(service.nanos()) * factor)));
}

SimTime BlockDevice::EstimateCompletion(uint64_t bytes) const {
  return PlanCompletion(bytes, sim_->now(), /*transfers_data=*/true).completion;
}

void BlockDevice::set_observability(SpanTracer* spans, MetricsRegistry* metrics) {
  spans_ = spans;
  disk_read_name_ = spans_ != nullptr ? spans_->InternName(obsname::kDiskRead) : 0;
  if (metrics != nullptr) {
    const MetricLabels labels = {{"device", profile_.name}};
    read_requests_metric_ = metrics->GetCounter("disk.read_requests", labels);
    bytes_read_metric_ = metrics->GetCounter("disk.bytes_read", labels);
    merged_metric_ = metrics->GetCounter("disk.merged_requests", labels);
    promoted_metric_ = metrics->GetCounter("disk.aged_promotions", labels);
    queue_depth_metric_ = metrics->GetGauge("disk.queue_depth", labels);
    for (int i = 0; i < kReadClassCount; ++i) {
      const MetricLabels class_labels = {
          {"device", profile_.name},
          {"class", std::string(ReadClassName(static_cast<ReadClass>(i)))}};
      queued_metric_[i] = metrics->GetGauge("disk.queued", class_labels);
      wait_metric_[i] = metrics->GetHistogram("disk.sched_wait_ns", class_labels);
    }
    // Attaching mid-flight: seed the gauges from live queue state instead of
    // letting the first completion drive them negative.
    queue_depth_metric_->Set(static_cast<double>(outstanding_));
    UpdateQueueGauges();
  } else {
    read_requests_metric_ = nullptr;
    bytes_read_metric_ = nullptr;
    merged_metric_ = nullptr;
    promoted_metric_ = nullptr;
    queue_depth_metric_ = nullptr;
    for (int i = 0; i < kReadClassCount; ++i) {
      queued_metric_[i] = nullptr;
      wait_metric_[i] = nullptr;
    }
  }
}

void BlockDevice::UpdateQueueGauges() {
  if (queued_metric_[0] != nullptr) {
    for (int i = 0; i < kReadClassCount; ++i) {
      queued_metric_[i]->Set(static_cast<double>(queue_[i].size()));
    }
  }
}

void BlockDevice::Read(uint64_t offset, uint64_t bytes, std::function<void()> done,
                       SpanId parent) {
  // Untyped callers have no error handling, so a terminal failure here is a
  // programming error (pipeline paths use the status overloads).
  Read(offset, bytes, DeviceReadOptions{ReadClass::kDemand, /*stream=*/0, parent},
       [done = std::move(done)](Status status) mutable {
         FAASNAP_CHECK(status.ok() && "untyped BlockDevice::Read failed under fault injection");
         done();
       });
}

void BlockDevice::Read(uint64_t offset, uint64_t bytes, std::function<void(Status)> done,
                       SpanId parent) {
  Read(offset, bytes, DeviceReadOptions{ReadClass::kDemand, /*stream=*/0, parent},
       std::move(done));
}

void BlockDevice::Read(uint64_t offset, uint64_t bytes, const DeviceReadOptions& options,
                       std::function<void(Status)> done) {
  FAASNAP_CHECK(bytes > 0);
  Request request;
  request.offset = offset;
  request.bytes = bytes;
  request.stream = options.stream;
  request.cls = options.read_class;
  request.enqueued = sim_->now();
  request.parent = options.parent;
  request.done = std::move(done);
  Enqueue(std::move(request));
}

void BlockDevice::Enqueue(Request request) {
  ++outstanding_;
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->Set(static_cast<double>(outstanding_));
  }
  const uint32_t depth = profile_.sched.queue_depth;
  if (depth == 0) {
    // Scheduler disabled: issue-time serializer claiming in FIFO order.
    std::vector<Request> single;
    single.push_back(std::move(request));
    Dispatch(std::move(single));
    return;
  }
  // Queue, then drain: with free slots and nothing else waiting this dispatches
  // immediately at the same timestamp, so an uncontended load claims the
  // serializers in arrival order exactly like the issue-time model.
  queue_[static_cast<int>(request.cls)].push_back(std::move(request));
  TryDispatch();
  UpdateQueueGauges();
}

void BlockDevice::TryDispatch() {
  const DiskSchedConfig& sched = profile_.sched;
  const int prefetch_cap = std::max(1, static_cast<int>(sched.prefetch_slots));
  while (in_service_ < static_cast<int>(sched.queue_depth)) {
    const bool can_demand = !queue_[0].empty();
    const bool can_prefetch =
        !queue_[1].empty() && in_service_batches_[1] < prefetch_cap;
    if (!can_demand && !can_prefetch) {
      break;
    }
    int pick;
    if (!can_demand) {
      pick = 1;
    } else if (!can_prefetch) {
      pick = 0;
    } else if (!demand_owed_ &&
               sim_->now() - queue_[1].front().enqueued >= sched.prefetch_aging_bound) {
      // The prefetch head has waited out the aging bound: it beats demand, so
      // a saturating demand stream can delay prefetch but never starve it. The
      // win is not repeatable back-to-back — the next contested slot is owed to
      // demand — so an aged backlog cannot invert the priority wholesale.
      pick = 1;
      demand_owed_ = true;
      stats_.aged_promotions++;
      if (promoted_metric_ != nullptr) {
        promoted_metric_->Add(1);
      }
      if (spans_ != nullptr) {
        spans_->Instant(sim_->now(), ObsLane::kDisk, obsname::kSchedPromote,
                        queue_[1].front().offset, queue_[1].front().bytes,
                        queue_[1].front().parent);
      }
    } else {
      pick = 0;
    }
    if (pick == 0) {
      demand_owed_ = false;
    }
    std::deque<Request>& queue = queue_[pick];
    std::vector<Request> batch;
    batch.push_back(std::move(queue.front()));
    queue.pop_front();
    ByteCount batch_bytes = ByteCount::FromBytes(batch.front().bytes);
    while (!sched.max_merge_bytes.is_zero() && !queue.empty() &&
           queue.front().stream == batch.back().stream &&
           queue.front().offset == batch.back().offset + batch.back().bytes &&
           batch_bytes.value() + queue.front().bytes <= sched.max_merge_bytes.value()) {
      batch_bytes += ByteCount::FromBytes(queue.front().bytes);
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    UpdateQueueGauges();
    Dispatch(std::move(batch));
  }
}

void BlockDevice::Dispatch(std::vector<Request> batch) {
  const SimTime start = sim_->now();
  const int cls = static_cast<int>(batch.front().cls);
  ByteCount total_bytes;
  for (const Request& r : batch) {
    total_bytes += ByteCount::FromBytes(r.bytes);
  }

  // One injection decision per device request: a merged batch fails (or is
  // delayed) as a unit, exactly like a single large read would.
  Status result = OkStatus();
  Duration extra = Duration::Zero();
  if (injector_ != nullptr) {
    FaultInjector::ReadFault fault = injector_->OnDeviceRead(device_ordinal_, profile_.name);
    result = std::move(fault.status);
    extra = fault.extra_latency;
  }
  const bool ok = result.ok();

  // A failed request occupies a request slot and pays the fixed per-request
  // latency (the device or remote side reported the error) but transfers no
  // data, so the bandwidth serializer does not advance.
  const CompletionPlan plan = PlanCompletion(total_bytes.value(), start, /*transfers_data=*/ok);
  iops_busy_until_ = plan.iops_ready;
  if (ok) {
    bw_busy_until_ = plan.bw_ready;
  }
  SimTime completion = plan.completion;
  if (ok && profile_.jitter > 0.0) {
    completion = ApplyJitter(start, completion);
  }
  completion = completion + extra;

  for (const Request& r : batch) {
    stats_.read_requests++;
    (r.cls == ReadClass::kDemand ? stats_.demand_requests : stats_.prefetch_requests)++;
    const Duration wait = start - r.enqueued;
    if (r.cls == ReadClass::kDemand) {
      stats_.demand_wait_ns += wait;
      stats_.max_demand_wait_ns = std::max(stats_.max_demand_wait_ns, wait);
    } else {
      stats_.prefetch_wait_ns += wait;
      stats_.max_prefetch_wait_ns = std::max(stats_.max_prefetch_wait_ns, wait);
    }
    if (ok) {
      stats_.bytes_read += r.bytes;
    } else {
      stats_.failed_requests++;
    }
    if (spans_ != nullptr) {
      // Enqueue -> completion: queue wait is part of what the caller experienced.
      spans_->CompleteId(r.enqueued, completion, ObsLane::kDisk, disk_read_name_, r.offset,
                         r.bytes, r.parent);
    }
    if (wait_metric_[cls] != nullptr) {
      wait_metric_[cls]->Record(wait);
    }
  }
  stats_.merged_requests += batch.size() - 1;
  if (read_requests_metric_ != nullptr) {
    read_requests_metric_->Add(static_cast<int64_t>(batch.size()));
    if (ok) {
      bytes_read_metric_->Add(static_cast<int64_t>(total_bytes.value()));
    }
    if (batch.size() > 1) {
      merged_metric_->Add(static_cast<int64_t>(batch.size() - 1));
    }
  }

  ++in_service_;
  ++in_service_batches_[cls];
  in_service_reqs_[cls] += static_cast<int>(batch.size());
  sim_->Schedule(completion, [this, cls, count = static_cast<int>(batch.size()),
                              dones = std::move(batch),
                              result = std::move(result)]() mutable {
    --in_service_;
    --in_service_batches_[cls];
    in_service_reqs_[cls] -= count;
    outstanding_ -= count;
    if (queue_depth_metric_ != nullptr) {
      queue_depth_metric_->Set(static_cast<double>(outstanding_));
    }
    // Refill freed slots before waking callers: the serializers stay claimed
    // ahead, and a completion callback that issues a new read sees a settled
    // queue. This also releases the slot of a failed request, so chaos cannot
    // wedge the scheduler.
    TryDispatch();
    for (Request& r : dones) {
      r.done(result);
    }
  });
}

}  // namespace faasnap

// Device profiles matching the paper's evaluation hardware (section 6.1, 6.7).

#ifndef FAASNAP_SRC_STORAGE_DEVICE_PROFILES_H_
#define FAASNAP_SRC_STORAGE_DEVICE_PROFILES_H_

#include "src/common/units.h"
#include "src/storage/block_device.h"

namespace faasnap {

// Local NVMe SSD on the c5d.metal host: measured 1589 MB/s max read throughput and
// 285,000 IOPS (section 3.1 / 6.1). Base latency chosen so a cold blocking 4 KiB
// read lands in the paper's ">= 32 us" major-fault band (Figure 2).
inline BlockDeviceProfile NvmeSsdProfile() {
  return BlockDeviceProfile{
      .name = "nvme-ssd",
      .base_latency = Duration::Micros(85),
      .bandwidth_bytes_per_s = 1589 * 1000 * 1000,
      .iops = 285000,
      .jitter = 0.08,
      .sched = {},
  };
}

// AWS EBS io2 volume (section 6.7): 64K max IOPS, 1 GB/s max throughput, network
// round-trip latency in the several-hundred-microsecond range.
inline BlockDeviceProfile EbsIo2Profile() {
  return BlockDeviceProfile{
      .name = "ebs-io2",
      .base_latency = Duration::Micros(350),
      .bandwidth_bytes_per_s = 1000 * 1000 * 1000,
      .iops = 64000,
      .jitter = 0.12,
      .sched = {},
  };
}

// Deterministic profile for unit tests: round numbers, no jitter.
inline BlockDeviceProfile TestDiskProfile() {
  return BlockDeviceProfile{
      .name = "test-disk",
      .base_latency = Duration::Micros(50),
      .bandwidth_bytes_per_s = 1000 * 1000 * 1000,  // 1 GB/s: 4 KiB ~= 4.096 us
      .iops = 250000,                               // 4 us IOPS interval
      .jitter = 0.0,
      .sched = {},
  };
}

}  // namespace faasnap

#endif  // FAASNAP_SRC_STORAGE_DEVICE_PROFILES_H_

// Block device model.
//
// The paper's measurements are dominated by the contrast between small scattered
// reads (on-demand page faults) and large sequential reads (working/loading set
// prefetch), plus disk saturation under bursty load. We model a device with three
// first-class constraints, each of which produces one of those behaviors:
//
//   * per-request base latency  — the fixed cost every read pays (device + kernel
//     block layer). A blocking single-fault stream is limited by this.
//   * an IOPS serializer        — device-wide token stream at `iops` requests/sec;
//     high-queue-depth random 4 KiB reads saturate here.
//   * a bandwidth serializer    — device-wide token stream at `bandwidth` bytes/sec;
//     large sequential reads saturate here.
//
// completion = max(iops_ready, bw_ready) + base_latency, where the two serializers
// advance device-wide "busy until" clocks. This reproduces, with one mechanism,
// both the paper's NVMe profile (1589 MB/s, 285 kIOPS, tens of us latency) and the
// EBS io2 profile (1 GB/s, 64 kIOPS, sub-ms latency).
//
// Optional multiplicative jitter (deterministic, seeded) produces the run-to-run
// variance reported as error bars in the figures.

#ifndef FAASNAP_SRC_STORAGE_BLOCK_DEVICE_H_
#define FAASNAP_SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_tracer.h"
#include "src/sim/simulation.h"

namespace faasnap {

class FaultInjector;

// Static description of a device. See device_profiles.h for the two profiles used
// in the paper's evaluation.
struct BlockDeviceProfile {
  std::string name;
  Duration base_latency;          // fixed per-request service latency
  uint64_t bandwidth_bytes_per_s; // sustained sequential throughput
  uint64_t iops;                  // sustained small-random-read rate
  double jitter = 0.0;            // +/- fraction of uniform noise on completion time
};

// Cumulative device counters, cheap to copy for before/after deltas.
struct BlockDeviceStats {
  uint64_t read_requests = 0;
  uint64_t bytes_read = 0;

  BlockDeviceStats operator-(const BlockDeviceStats& other) const {
    return BlockDeviceStats{read_requests - other.read_requests, bytes_read - other.bytes_read};
  }
};

class BlockDevice {
 public:
  // `sim` must outlive the device. `seed` drives latency jitter only.
  BlockDevice(Simulation* sim, BlockDeviceProfile profile, uint64_t seed = 1);

  // Issues an asynchronous read of `bytes` at `offset` (offset is for accounting;
  // sequentiality effects are captured by callers batching into large requests).
  // `done` fires on the simulation clock when the data is available. `parent`
  // links the recorded disk-read span to the span that caused the read (a fault,
  // a loader chunk, REAP's fetch); ignored when tracing is off.
  void Read(uint64_t offset, uint64_t bytes, std::function<void()> done,
            SpanId parent = kNoSpan);

  // Status-carrying variant: `done(status)` fires on the simulation clock with
  // OkStatus() when the data is available, or with the injected failure when a
  // fault injector is attached and fires. A failed request occupies a request
  // slot and pays the fixed per-request latency but transfers no data. Without
  // an attached injector this behaves exactly like the untyped overload.
  void Read(uint64_t offset, uint64_t bytes, std::function<void(Status)> done,
            SpanId parent = kNoSpan);

  // Attaches deterministic fault injection. `device_ordinal` is the router's
  // ordinal for this device (0 = local); it selects the injector's per-device
  // decision stream and marks non-local devices as outage-prone. Null detaches;
  // detached cost is one branch per read.
  void set_fault_injector(FaultInjector* injector, uint32_t device_ordinal) {
    injector_ = injector;
    device_ordinal_ = device_ordinal;
  }

  // Attaches tracing/metrics: every read records a disk-read span on the disk
  // lane (service interval, offset/bytes args) and updates request/byte counters
  // plus a queue-depth gauge. Null pointers detach; cost when detached is one
  // branch per read.
  void set_observability(SpanTracer* spans, MetricsRegistry* metrics);

  // Time a read issued *now* would complete, without issuing it. Used by tests.
  SimTime EstimateCompletion(uint64_t bytes) const;

  const BlockDeviceProfile& profile() const { return profile_; }
  const BlockDeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BlockDeviceStats{}; }

 private:
  Duration TransferTime(uint64_t bytes) const;
  Duration IopsInterval() const;

  Simulation* sim_;
  BlockDeviceProfile profile_;
  Rng rng_;
  SimTime iops_busy_until_;
  SimTime bw_busy_until_;
  BlockDeviceStats stats_;

  FaultInjector* injector_ = nullptr;
  uint32_t device_ordinal_ = 0;

  SpanTracer* spans_ = nullptr;
  uint32_t disk_read_name_ = 0;  // pre-interned obsname::kDiskRead
  Counter* read_requests_metric_ = nullptr;
  Counter* bytes_read_metric_ = nullptr;
  Gauge* queue_depth_metric_ = nullptr;
  int outstanding_ = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_STORAGE_BLOCK_DEVICE_H_

// Block device model with a two-class request scheduler.
//
// The paper's measurements are dominated by the contrast between small scattered
// reads (on-demand page faults) and large sequential reads (working/loading set
// prefetch), plus disk saturation under bursty load. We model a device with three
// first-class constraints, each of which produces one of those behaviors:
//
//   * per-request base latency  — the fixed cost every read pays (device + kernel
//     block layer). A blocking single-fault stream is limited by this.
//   * an IOPS serializer        — device-wide token stream at `iops` requests/sec;
//     high-queue-depth random 4 KiB reads saturate here.
//   * a bandwidth serializer    — device-wide token stream at `bandwidth` bytes/sec;
//     large sequential reads saturate here.
//
// completion = max(iops_ready, bw_ready) + base_latency, where the two serializers
// advance device-wide "busy until" clocks. This reproduces, with one mechanism,
// both the paper's NVMe profile (1589 MB/s, 285 kIOPS, tens of us latency) and the
// EBS io2 profile (1 GB/s, 64 kIOPS, sub-ms latency).
//
// Scheduling: the serializers used to be claimed at issue time in strict FIFO
// order, so a 2 MiB loader chunk issued one tick before a 4 KiB demand fault
// delayed that fault by the full transfer time — exactly the prefetch/demand
// contention section 4.2 is about. Reads now enter a per-class queue (ReadClass
// in read_class.h) and at most `DiskSchedConfig::queue_depth` device requests
// claim the serializers at dispatch time:
//
//   * demand reads jump queued prefetch, unless the prefetch at the head has
//     waited past `prefetch_aging_bound` (aged prefetch dispatches first, so
//     prefetch can be delayed but never starved);
//   * adjacent queued requests of the same class and stream coalesce into one
//     device request up to `max_merge_bytes` (one serializer claim, one
//     completion; per-caller callbacks and spans are preserved);
//   * ties break by insertion order, and everything runs on the simulation
//     clock, so same-seed runs stay bit-identical.
//
// With the default queue depth the serializers never idle while work is queued,
// so an uncontended single-class load completes at exactly the same times as
// the old issue-time model; only the interleaving under cross-class contention
// changes. `queue_depth = 0` disables the scheduler entirely (issue-time FIFO
// claiming), which is the A/B baseline the scheduler benchmarks compare against.
//
// Optional multiplicative jitter (deterministic, seeded) produces the run-to-run
// variance reported as error bars in the figures.

#ifndef FAASNAP_SRC_STORAGE_BLOCK_DEVICE_H_
#define FAASNAP_SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/units.h"
#include "src/common/status.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_tracer.h"
#include "src/sim/simulation.h"
#include "src/storage/read_class.h"

namespace faasnap {

class FaultInjector;

// Scheduler knobs. Defaults keep uncontended completion times identical to the
// legacy issue-time model while letting demand jump prefetch under contention.
struct DiskSchedConfig {
  // Device requests allowed to hold serializer claims concurrently. Queued
  // requests dispatch as slots free up, demand first. 0 disables the scheduler:
  // every read claims the serializers at issue time in FIFO order (the
  // pre-scheduler baseline, kept for A/B benchmarks).
  uint32_t queue_depth = 32;
  // Of those slots, at most this many may hold prefetch batches (clamped to
  // >= 1; >= queue_depth disables the cap). Dispatched batches have already
  // claimed the bandwidth serializer, so queue priority alone cannot help a
  // fault that arrives behind a deep prefetch train — keeping the device-side
  // prefetch share short is what bounds demand latency. Two-plus slots of
  // 256 KiB+ batches keep the bandwidth serializer saturated, so prefetch
  // throughput is preserved.
  uint32_t prefetch_slots = 8;
  // A queued prefetch request that has waited this long dispatches ahead of
  // demand — the starvation bound. Promotions alternate with demand: after an
  // aged prefetch wins a contested slot, the next contested slot goes back to
  // demand, so a deep aged prefetch backlog cannot invert the priority.
  Duration prefetch_aging_bound = Duration::Millis(2);
  // Adjacent queued requests (same class, same stream, contiguous offsets)
  // coalesce into one device request up to this many bytes. 0 disables merging.
  // The cap also bounds per-batch bandwidth claims (and therefore how far one
  // batch can push out a demand fault), so it is deliberately modest.
  ByteCount max_merge_bytes = MiB(1);
};

// Static description of a device. See device_profiles.h for the two profiles used
// in the paper's evaluation.
struct BlockDeviceProfile {
  std::string name;
  Duration base_latency;          // fixed per-request service latency
  uint64_t bandwidth_bytes_per_s; // sustained sequential throughput
  uint64_t iops;                  // sustained small-random-read rate
  double jitter = 0.0;            // +/- fraction of uniform noise on completion time
  DiskSchedConfig sched;
};

// Cumulative device counters, cheap to copy for before/after deltas.
// Counters subtract element-wise in operator-; the max_* fields are watermarks
// since the last ResetStats (a delta keeps the left-hand watermark).
struct BlockDeviceStats {
  uint64_t read_requests = 0;      // caller-visible reads (merged constituents each count)
  uint64_t bytes_read = 0;
  uint64_t demand_requests = 0;    // read_requests by class
  uint64_t prefetch_requests = 0;
  uint64_t merged_requests = 0;    // requests coalesced into an earlier dispatch
  uint64_t aged_promotions = 0;    // prefetch dispatches forced by the aging bound
  uint64_t failed_requests = 0;    // injected failures (chaos only)
  Duration demand_wait_ns;         // total enqueue->dispatch wait by class
  Duration prefetch_wait_ns;
  Duration max_demand_wait_ns;
  Duration max_prefetch_wait_ns;

  BlockDeviceStats operator-(const BlockDeviceStats& other) const {
    BlockDeviceStats d = *this;
    d.read_requests -= other.read_requests;
    d.bytes_read -= other.bytes_read;
    d.demand_requests -= other.demand_requests;
    d.prefetch_requests -= other.prefetch_requests;
    d.merged_requests -= other.merged_requests;
    d.aged_promotions -= other.aged_promotions;
    d.failed_requests -= other.failed_requests;
    d.demand_wait_ns -= other.demand_wait_ns;
    d.prefetch_wait_ns -= other.prefetch_wait_ns;
    return d;
  }
};

// Per-read scheduling inputs for the class-aware overload.
struct DeviceReadOptions {
  ReadClass read_class = ReadClass::kDemand;
  // Merge key: only reads from the same stream (the router passes the file id)
  // coalesce, so offset-adjacent reads of unrelated files never merge.
  uint64_t stream = 0;
  // Links the recorded disk-read span to the causing span (a fault, a loader
  // chunk, REAP's fetch); ignored when tracing is off.
  SpanId parent = kNoSpan;
};

class BlockDevice {
 public:
  // `sim` must outlive the device. `seed` drives latency jitter only.
  BlockDevice(Simulation* sim, BlockDeviceProfile profile, uint64_t seed = 1);

  // Issues an asynchronous read of `bytes` at `offset` (offset is for accounting
  // and merge adjacency). `done` fires on the simulation clock when the data is
  // available. Untyped reads are demand-class; a terminal injected failure here
  // is a programming error (pipeline paths use the status-carrying overloads).
  void Read(uint64_t offset, uint64_t bytes, std::function<void()> done,
            SpanId parent = kNoSpan);

  // Status-carrying demand-class read: `done(status)` fires on the simulation
  // clock with OkStatus(), or with the injected failure when a fault injector is
  // attached and fires. A failed request occupies a request slot and pays the
  // fixed per-request latency but transfers no data — and releases its scheduler
  // slot like any other completion, so chaos cannot wedge the queue.
  void Read(uint64_t offset, uint64_t bytes, std::function<void(Status)> done,
            SpanId parent = kNoSpan);

  // Class-aware read: the scheduler entry point used by the router.
  void Read(uint64_t offset, uint64_t bytes, const DeviceReadOptions& options,
            std::function<void(Status)> done);

  // Attaches deterministic fault injection. `device_ordinal` is the router's
  // ordinal for this device (0 = local); it selects the injector's per-device
  // decision stream and marks non-local devices as outage-prone. Null detaches;
  // detached cost is one branch per dispatch. A merged device request draws one
  // decision; every constituent callback sees the same status.
  void set_fault_injector(FaultInjector* injector, uint32_t device_ordinal) {
    injector_ = injector;
    device_ordinal_ = device_ordinal;
  }

  // Attaches tracing/metrics: every read records a disk-read span on the disk
  // lane (enqueue -> completion, offset/bytes args) and updates request/byte
  // counters, a queue-depth gauge, per-class queued gauges, and per-class
  // enqueue->dispatch wait histograms. Null pointers detach; cost when detached
  // is one branch per read. Attaching mid-flight seeds the gauges from live
  // queue state.
  void set_observability(SpanTracer* spans, MetricsRegistry* metrics);

  // Time a read dispatched *now* would complete, without issuing it. Ignores
  // queued work, so with a non-empty queue this is a lower bound. Used by tests
  // and the keepalive cost model.
  SimTime EstimateCompletion(uint64_t bytes) const;

  const BlockDeviceProfile& profile() const { return profile_; }
  const BlockDeviceStats& stats() const { return stats_; }

  // Clears cumulative counters and wait watermarks. Live scheduling state
  // (queues, in-service requests, the queue-depth gauge) is intentionally
  // untouched: resetting mid-flight must not corrupt accounting of reads that
  // are still outstanding.
  void ResetStats() { stats_ = BlockDeviceStats{}; }

  // Live queue state, used by the router's demand-pressure surface and tests.
  int queued(ReadClass cls) const { return static_cast<int>(queue_[static_cast<int>(cls)].size()); }
  int in_service(ReadClass cls) const { return in_service_reqs_[static_cast<int>(cls)]; }
  // Demand reads accepted but not yet completed (queued + in service).
  int demand_pressure() const {
    return queued(ReadClass::kDemand) + in_service(ReadClass::kDemand);
  }

 private:
  // One caller-visible read waiting to dispatch (or being serviced).
  struct Request {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint64_t stream = 0;
    ReadClass cls = ReadClass::kDemand;
    SimTime enqueued;
    SpanId parent = kNoSpan;
    std::function<void(Status)> done;
  };

  // The shared two-serializer model: where a request dispatched at `start`
  // would land. Failed requests occupy an IOPS slot and pay base latency but
  // move no data (transfers_data = false leaves the bandwidth serializer out).
  struct CompletionPlan {
    SimTime iops_ready;
    SimTime bw_ready;
    SimTime completion;
  };
  CompletionPlan PlanCompletion(uint64_t bytes, SimTime start, bool transfers_data) const;

  Duration TransferTime(uint64_t bytes) const;
  Duration IopsInterval() const;
  SimTime ApplyJitter(SimTime start, SimTime completion);

  void Enqueue(Request request);
  // Claims the serializers for one device request (a batch of >= 1 merged
  // caller requests of one class) and schedules its completion.
  void Dispatch(std::vector<Request> batch);
  // Fills free slots from the queues: demand first unless the prefetch head
  // has aged past the bound; coalesces the contiguous same-stream run behind
  // the chosen head.
  void TryDispatch();
  void UpdateQueueGauges();

  Simulation* sim_;
  BlockDeviceProfile profile_;
  Rng rng_;
  SimTime iops_busy_until_;
  SimTime bw_busy_until_;
  BlockDeviceStats stats_;

  std::deque<Request> queue_[kReadClassCount];
  int in_service_ = 0;                            // device requests holding a slot
  int in_service_reqs_[kReadClassCount] = {0, 0}; // caller requests in service, by class
  int in_service_batches_[kReadClassCount] = {0, 0}; // device requests (slots), by class
  bool demand_owed_ = false;                      // last contested slot went to aged prefetch
  int outstanding_ = 0;                           // caller requests accepted, not completed

  FaultInjector* injector_ = nullptr;
  uint32_t device_ordinal_ = 0;

  SpanTracer* spans_ = nullptr;
  uint32_t disk_read_name_ = 0;  // pre-interned obsname::kDiskRead
  Counter* read_requests_metric_ = nullptr;
  Counter* bytes_read_metric_ = nullptr;
  Counter* merged_metric_ = nullptr;
  Counter* promoted_metric_ = nullptr;
  Gauge* queue_depth_metric_ = nullptr;
  Gauge* queued_metric_[kReadClassCount] = {nullptr, nullptr};
  Log2Histogram* wait_metric_[kReadClassCount] = {nullptr, nullptr};
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_STORAGE_BLOCK_DEVICE_H_

// Scheduling class for device reads.
//
// The paper's core overlap argument (section 4.2) is that background prefetch
// must not starve the demand faults the guest is actually blocked on. Every
// read therefore carries a class: the block device's scheduler lets demand
// reads jump queued prefetch, bounded by an aging limit so prefetch still
// finishes (see DiskSchedConfig in block_device.h).

#ifndef FAASNAP_SRC_STORAGE_READ_CLASS_H_
#define FAASNAP_SRC_STORAGE_READ_CLASS_H_

#include <cstdint>
#include <string_view>

namespace faasnap {

enum class ReadClass : uint8_t {
  // Guest-blocking reads: major faults, uffd-resolved reads, REAP's monitor
  // pread — anything a vCPU is stalled on right now.
  kDemand = 0,
  // Background reads the guest is not (yet) waiting for: loader chunks,
  // readahead window tails, REAP's working-set fetch.
  kPrefetch = 1,
};

inline constexpr int kReadClassCount = 2;

inline constexpr std::string_view ReadClassName(ReadClass cls) {
  return cls == ReadClass::kDemand ? "demand" : "prefetch";
}

}  // namespace faasnap

#endif  // FAASNAP_SRC_STORAGE_READ_CLASS_H_

// StorageRouter: routes per-file reads to one of several block devices.
//
// Section 7.2 proposes tiered snapshot storage: "storing relatively small loading
// set files on local SSD and larger memory files on remote storage to reduce
// storage costs while satisfying the performance requirements of reading loading
// sets." The router makes file placement a first-class decision: every file is
// assigned to a device; the fault engine, prefetch loader, and REAP fetcher read
// through the router without knowing where a file lives.

#ifndef FAASNAP_SRC_STORAGE_STORAGE_ROUTER_H_
#define FAASNAP_SRC_STORAGE_STORAGE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/mem/page_cache.h"
#include "src/storage/block_device.h"

namespace faasnap {

// Index into the router's device table.
using DeviceId = uint32_t;
inline constexpr DeviceId kLocalDevice = 0;

class StorageRouter {
 public:
  StorageRouter() = default;
  StorageRouter(const StorageRouter&) = delete;
  StorageRouter& operator=(const StorageRouter&) = delete;

  // Registers a device; the first one becomes the default for unassigned files.
  // Devices must outlive the router.
  DeviceId AddDevice(BlockDevice* device);

  // Places `file` on `device_id`. Unassigned files use device 0.
  void AssignFile(FileId file, DeviceId device_id);

  DeviceId DeviceFor(FileId file) const;
  BlockDevice* device(DeviceId id) const;
  size_t device_count() const { return devices_.size(); }

  // Issues an asynchronous read of `bytes` at `offset` within `file`, on the
  // device the file is placed on. `parent` links the device's disk-read span to
  // the causing span (see BlockDevice::Read).
  void Read(FileId file, uint64_t offset, uint64_t bytes, std::function<void()> done,
            SpanId parent = kNoSpan);

  // Attaches tracing/metrics to every registered device (and, via
  // routed-read counters, to the router itself). Call after AddDevice.
  void set_observability(SpanTracer* spans, MetricsRegistry* metrics);

 private:
  std::vector<BlockDevice*> devices_;
  std::map<FileId, DeviceId> placement_;
  // Reads routed per device tier ({tier=local|remote}); null when detached.
  Counter* routed_local_ = nullptr;
  Counter* routed_remote_ = nullptr;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_STORAGE_STORAGE_ROUTER_H_

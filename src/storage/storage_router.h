// StorageRouter: routes per-file reads to one of several block devices.
//
// Section 7.2 proposes tiered snapshot storage: "storing relatively small loading
// set files on local SSD and larger memory files on remote storage to reduce
// storage costs while satisfying the performance requirements of reading loading
// sets." The router makes file placement a first-class decision: every file is
// assigned to a device; the fault engine, prefetch loader, and REAP fetcher read
// through the router without knowing where a file lives.
//
// With a fault injector attached (ConfigureFaultHandling), ReadWithStatus is the
// failure-aware entry point: each read gets a per-attempt deadline, capped
// exponential retry/backoff, a per-device circuit breaker, and remote→local
// failover, and completes with a typed Status — never silently, never twice.
// With no injector attached, ReadWithStatus is a single direct device read, so
// the machinery is zero-cost when chaos is off.

#ifndef FAASNAP_SRC_STORAGE_STORAGE_ROUTER_H_
#define FAASNAP_SRC_STORAGE_STORAGE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/file_id.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/storage/block_device.h"
#include "src/storage/read_class.h"

namespace faasnap {

class FaultInjector;
class Simulation;

// Index into the router's device table.
using DeviceId = uint32_t;
inline constexpr DeviceId kLocalDevice = 0;

// Failure-handling knobs for ReadWithStatus. Active only while a fault injector
// is attached to the router.
struct StorageFaultPolicy {
  // Total attempts per device (first try + retries).
  int max_attempts = 4;
  // Backoff before attempt n is initial_backoff * multiplier^(n-2), capped.
  Duration initial_backoff = Duration::Micros(200);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Duration::Millis(10);
  // Per-attempt deadline; an attempt still in flight when it expires completes
  // with DEADLINE_EXCEEDED (the late device completion is discarded). Zero
  // disables deadlines.
  Duration read_deadline = Duration::Millis(40);
  // Circuit breaker: after this many consecutive failures a device's breaker
  // opens for `breaker_open_for`; reads fail fast while open, then one
  // half-open probe decides whether it closes or re-opens.
  int breaker_failure_threshold = 4;
  Duration breaker_open_for = Duration::Millis(20);
  // Whether a read that exhausts its attempts on a non-local device retries
  // once more on the local replica (device 0).
  bool failover_to_local = true;
};

// Cumulative fault-handling counters, cheap to copy for before/after deltas.
struct StorageFaultStats {
  uint64_t retries = 0;
  uint64_t failovers = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_fast_fails = 0;
  uint64_t failed_reads = 0;  // reads that completed with a non-OK status
};

class StorageRouter {
 public:
  StorageRouter() = default;
  StorageRouter(const StorageRouter&) = delete;
  StorageRouter& operator=(const StorageRouter&) = delete;

  // Registers a device; the first one becomes the default for unassigned files.
  // Devices must outlive the router.
  DeviceId AddDevice(BlockDevice* device);

  // Places `file` on `device_id`. Unassigned files use device 0.
  void AssignFile(FileId file, DeviceId device_id);

  DeviceId DeviceFor(FileId file) const;
  BlockDevice* device(DeviceId id) const;
  size_t device_count() const { return devices_.size(); }

  // Issues an asynchronous read of `bytes` at `offset` within `file`, on the
  // device the file is placed on. `parent` links the device's disk-read span to
  // the causing span (see BlockDevice::Read). `cls` is the scheduling class the
  // device queues the read under (read_class.h); the file id doubles as the
  // device-level merge stream, so adjacent reads of one file coalesce but reads
  // of unrelated files never do.
  void Read(FileId file, uint64_t offset, uint64_t bytes, std::function<void()> done,
            SpanId parent = kNoSpan, ReadClass cls = ReadClass::kDemand);

  // Failure-aware read: `done(status)` fires exactly once on the simulation
  // clock, with OkStatus() on success or a typed error once deadlines, retries,
  // the circuit breaker, and failover are exhausted. See StorageFaultPolicy.
  using ReadCallback = std::function<void(Status)>;
  void ReadWithStatus(FileId file, uint64_t offset, uint64_t bytes, ReadCallback done,
                      SpanId parent = kNoSpan, ReadClass cls = ReadClass::kDemand);

  // Demand reads accepted but not yet completed, summed over all devices. The
  // prefetch loader polls this to throttle its pipeline while the guest is
  // blocked on disk (see PrefetchConfig::adaptive_depth).
  int DemandPressure() const;

  // Attaches the retry/breaker/failover machinery. `sim` must outlive the
  // router; `injector` may be null, which leaves ReadWithStatus as a plain
  // forwarding read. Call before issuing reads.
  void ConfigureFaultHandling(Simulation* sim, FaultInjector* injector,
                              StorageFaultPolicy policy);

  // Copy under the lock: cheap POD, safe for before/after deltas while reads
  // are still settling.
  StorageFaultStats fault_stats() const FAASNAP_EXCLUDES(mu_);
  const StorageFaultPolicy& fault_policy() const { return policy_; }

  // Attaches tracing/metrics to every registered device (and, via
  // routed-read counters, to the router itself). Call after AddDevice and
  // ConfigureFaultHandling.
  void set_observability(SpanTracer* spans, MetricsRegistry* metrics);

 private:
  struct PendingRead;
  struct Breaker {
    int consecutive_failures = 0;
    bool open = false;
    SimTime open_until;
  };

  // All callback invocations (device reads, done callbacks, span emission)
  // happen with mu_ released; the lock only brackets breaker/stat mutations.
  void Attempt(std::shared_ptr<PendingRead> req) FAASNAP_EXCLUDES(mu_);
  void OnAttemptComplete(std::shared_ptr<PendingRead> req, uint64_t generation, Status status)
      FAASNAP_EXCLUDES(mu_);
  void HandleFailure(std::shared_ptr<PendingRead> req, Status status) FAASNAP_EXCLUDES(mu_);
  void FinishRead(std::shared_ptr<PendingRead> req, Status status);
  void RecordDeviceSuccess(DeviceId device) FAASNAP_EXCLUDES(mu_);
  void RecordDeviceFailure(DeviceId device) FAASNAP_EXCLUDES(mu_);
  Duration BackoffBefore(int attempt) const;

  // Topology and policy are fixed during setup (AddDevice/AssignFile/
  // ConfigureFaultHandling precede the first read) and read-only afterwards,
  // so they carry no guard; only the per-read mutable state does.
  std::vector<BlockDevice*> devices_;
  std::map<FileId, DeviceId> placement_;

  Simulation* sim_ = nullptr;
  FaultInjector* injector_ = nullptr;
  StorageFaultPolicy policy_;
  mutable Mutex mu_;
  std::vector<Breaker> breakers_ FAASNAP_GUARDED_BY(mu_);  // parallel to devices_
  StorageFaultStats fault_stats_ FAASNAP_GUARDED_BY(mu_);

  // Reads routed per device tier ({tier=local|remote}); null when detached.
  Counter* routed_local_ = nullptr;
  Counter* routed_remote_ = nullptr;
  // Fault-handling metrics; registered only while an injector is attached so
  // fault-free runs keep an identical metrics snapshot.
  Counter* retries_metric_ = nullptr;
  Counter* failovers_metric_ = nullptr;
  Counter* breaker_opens_metric_ = nullptr;
  Counter* read_failures_metric_ = nullptr;
  Log2Histogram* retry_latency_metric_ = nullptr;
  SpanTracer* spans_ = nullptr;
  uint32_t retry_name_ = 0;  // pre-interned obsname::kStorageRetry
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_STORAGE_STORAGE_ROUTER_H_

// Clang thread-safety analysis annotations (-Wthread-safety).
//
// Under clang these expand to the attributes consumed by the static analysis
// described in https://clang.llvm.org/docs/ThreadSafetyAnalysis.html; every
// other compiler sees empty macros. The project builds with
// -Wthread-safety -Werror on the clang CI job, so an off-lock access to a
// FAASNAP_GUARDED_BY field is a build error, not a TSan coin flip.
//
// Conventions:
//  * Mutex-protected fields carry FAASNAP_GUARDED_BY(mu_).
//  * Private helpers called with the lock held are annotated
//    FAASNAP_REQUIRES(mu_) instead of re-locking.
//  * Methods that must NOT be called with the lock held (because they invoke
//    user callbacks) are annotated FAASNAP_EXCLUDES(mu_).

#ifndef FAASNAP_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define FAASNAP_SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define FAASNAP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FAASNAP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Class attribute: the type is a lockable capability ("mutex").
#define FAASNAP_CAPABILITY(x) FAASNAP_THREAD_ANNOTATION(capability(x))

// Class attribute: RAII object that acquires on construction / releases on
// destruction (MutexLock).
#define FAASNAP_SCOPED_CAPABILITY FAASNAP_THREAD_ANNOTATION(scoped_lockable)

// Data members protected by a mutex (or by a mutex reached through a pointer).
#define FAASNAP_GUARDED_BY(x) FAASNAP_THREAD_ANNOTATION(guarded_by(x))
#define FAASNAP_PT_GUARDED_BY(x) FAASNAP_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attributes: caller must hold / must not hold the given capability.
#define FAASNAP_REQUIRES(...) \
  FAASNAP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FAASNAP_REQUIRES_SHARED(...) \
  FAASNAP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define FAASNAP_EXCLUDES(...) FAASNAP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function attributes: the function acquires / releases the capability.
#define FAASNAP_ACQUIRE(...) \
  FAASNAP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FAASNAP_ACQUIRE_SHARED(...) \
  FAASNAP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define FAASNAP_RELEASE(...) \
  FAASNAP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FAASNAP_RELEASE_SHARED(...) \
  FAASNAP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define FAASNAP_TRY_ACQUIRE(...) \
  FAASNAP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Lock-ordering declarations.
#define FAASNAP_ACQUIRED_BEFORE(...) \
  FAASNAP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FAASNAP_ACQUIRED_AFTER(...) \
  FAASNAP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Returns a reference to the capability guarding the returned data.
#define FAASNAP_RETURN_CAPABILITY(x) FAASNAP_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: the function is deliberately unchecked. Every use must carry a
// comment justifying why the analysis cannot see the invariant (enforced by
// faasnap_lint rule FS-VOIDCAST's sibling review convention).
#define FAASNAP_NO_THREAD_SAFETY_ANALYSIS \
  FAASNAP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // FAASNAP_SRC_COMMON_THREAD_ANNOTATIONS_H_

#include "src/common/page_range.h"

#include <algorithm>
#include <cstdio>

#include "src/common/status.h"

namespace faasnap {

std::string PageRange::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%llu,%llu)", static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(end()));
  return buf;
}

PageRangeSet::PageRangeSet(std::vector<PageRange> ranges) {
  for (const PageRange& r : ranges) {
    Add(r);
  }
}

void PageRangeSet::Add(PageIndex first, uint64_t count) {
  if (count == 0) {
    return;
  }
  PageRange incoming{first, count};
  // Find first existing range whose end >= incoming.first (possible coalesce target).
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), incoming.first,
      [](const PageRange& r, PageIndex v) { return r.end() < v; });
  PageIndex new_first = incoming.first;
  PageIndex new_end = incoming.end();
  auto erase_begin = it;
  while (it != ranges_.end() && it->first <= new_end) {
    new_first = std::min(new_first, it->first);
    new_end = std::max(new_end, it->end());
    ++it;
  }
  auto pos = ranges_.erase(erase_begin, it);
  ranges_.insert(pos, PageRange{new_first, new_end - new_first});
  RecomputeTotal();
}

void PageRangeSet::Remove(PageIndex first, uint64_t count) {
  if (count == 0 || ranges_.empty()) {
    return;
  }
  const PageIndex rem_end = first + count;
  std::vector<PageRange> out;
  out.reserve(ranges_.size() + 1);
  for (const PageRange& r : ranges_) {
    if (r.end() <= first || r.first >= rem_end) {
      out.push_back(r);
      continue;
    }
    if (r.first < first) {
      out.push_back(PageRange{r.first, first - r.first});
    }
    if (r.end() > rem_end) {
      out.push_back(PageRange{rem_end, r.end() - rem_end});
    }
  }
  ranges_ = std::move(out);
  RecomputeTotal();
}

bool PageRangeSet::Contains(PageIndex page) const {
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), page,
                             [](PageIndex v, const PageRange& r) { return v < r.first; });
  if (it == ranges_.begin()) {
    return false;
  }
  --it;
  return it->Contains(page);
}

PageRangeSet PageRangeSet::Union(const PageRangeSet& other) const {
  PageRangeSet out = *this;
  for (const PageRange& r : other.ranges_) {
    out.Add(r);
  }
  return out;
}

PageRangeSet PageRangeSet::Intersect(const PageRangeSet& other) const {
  PageRangeSet out;
  size_t i = 0;
  size_t j = 0;
  std::vector<PageRange> result;
  while (i < ranges_.size() && j < other.ranges_.size()) {
    const PageRange& a = ranges_[i];
    const PageRange& b = other.ranges_[j];
    const PageIndex lo = std::max(a.first, b.first);
    const PageIndex hi = std::min(a.end(), b.end());
    if (lo < hi) {
      result.push_back(PageRange{lo, hi - lo});
    }
    if (a.end() < b.end()) {
      ++i;
    } else {
      ++j;
    }
  }
  out.ranges_ = std::move(result);
  out.RecomputeTotal();
  return out;
}

PageRangeSet PageRangeSet::Subtract(const PageRangeSet& other) const {
  PageRangeSet out = *this;
  for (const PageRange& r : other.ranges_) {
    out.Remove(r.first, r.count);
  }
  return out;
}

PageRangeSet PageRangeSet::ComplementWithin(uint64_t space_pages) const {
  PageRangeSet out;
  PageIndex cursor = 0;
  for (const PageRange& r : ranges_) {
    if (r.first >= space_pages) {
      break;
    }
    if (r.first > cursor) {
      out.Add(cursor, r.first - cursor);
    }
    cursor = std::max<PageIndex>(cursor, r.end());
  }
  if (cursor < space_pages) {
    out.Add(cursor, space_pages - cursor);
  }
  return out;
}

PageRangeSet PageRangeSet::MergeWithGapTolerance(uint64_t max_gap_pages) const {
  PageRangeSet out;
  if (ranges_.empty()) {
    return out;
  }
  PageRange cur = ranges_[0];
  for (size_t i = 1; i < ranges_.size(); ++i) {
    const PageRange& next = ranges_[i];
    const uint64_t gap = next.first - cur.end();
    if (gap <= max_gap_pages) {
      cur.count = next.end() - cur.first;  // absorb the gap pages too
    } else {
      out.Add(cur);
      cur = next;
    }
  }
  out.Add(cur);
  return out;
}

std::string PageRangeSet::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) {
      s += ", ";
    }
    s += ranges_[i].ToString();
  }
  s += "}";
  return s;
}

void PageRangeSet::RecomputeTotal() {
  total_pages_ = 0;
  for (const PageRange& r : ranges_) {
    total_pages_ += r.count;
  }
}

}  // namespace faasnap

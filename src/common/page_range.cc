#include "src/common/page_range.h"

#include <algorithm>
#include <cstdio>

#include "src/common/status.h"

namespace faasnap {

namespace {

// Single-pass merge of two sorted, disjoint, coalesced range lists into their
// union. Returns the total page count of the result.
uint64_t MergeUnion(const std::vector<PageRange>& a, const std::vector<PageRange>& b,
                    std::vector<PageRange>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  uint64_t total = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const PageRange& next =
        (j == b.size() || (i < a.size() && a[i].first <= b[j].first)) ? a[i++] : b[j++];
    if (!out->empty() && next.first <= out->back().end()) {
      const PageIndex merged_end = std::max(out->back().end(), next.end());
      total += merged_end - out->back().end();
      out->back().count = merged_end - out->back().first;
    } else {
      out->push_back(next);
      total += next.count;
    }
  }
  return total;
}

// Single-pass a - b over sorted, disjoint, coalesced lists. Returns the total
// page count of the result. The output is automatically coalesced: surviving
// pieces of one a-run are separated by removed pages, and distinct a-runs were
// already separated by at least one page.
uint64_t MergeSubtract(const std::vector<PageRange>& a, const std::vector<PageRange>& b,
                       std::vector<PageRange>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  uint64_t total = 0;
  size_t j = 0;
  for (const PageRange& r : a) {
    PageIndex cursor = r.first;
    const PageIndex a_end = r.end();
    while (j < b.size() && b[j].end() <= cursor) {
      ++j;
    }
    size_t k = j;
    while (cursor < a_end && k < b.size() && b[k].first < a_end) {
      if (b[k].first > cursor) {
        out->push_back(PageRange{cursor, b[k].first - cursor});
        total += b[k].first - cursor;
      }
      cursor = std::max(cursor, b[k].end());
      if (b[k].end() > a_end) {
        break;  // this b-run may also clip the next a-run; do not advance past it
      }
      ++k;
    }
    if (cursor < a_end) {
      out->push_back(PageRange{cursor, a_end - cursor});
      total += a_end - cursor;
    }
    j = k;
  }
  return total;
}

}  // namespace

std::string PageRange::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%llu,%llu)", static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(end()));
  return buf;
}

PageRangeSet::PageRangeSet(std::vector<PageRange> ranges) {
  for (const PageRange& r : ranges) {
    Add(r);
  }
}

void PageRangeSet::AppendCoalescing(PageIndex first, uint64_t count) {
  if (count == 0) {
    return;
  }
  if (!ranges_.empty() && ranges_.back().end() == first) {
    ranges_.back().count += count;
  } else {
    ranges_.push_back(PageRange{first, count});
  }
  page_total_ += count;
}

void PageRangeSet::Add(PageIndex first, uint64_t count) {
  if (count == 0) {
    return;
  }
  PageRange incoming{first, count};
  // Find first existing range whose end >= incoming.first (possible coalesce target).
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), incoming.first,
      [](const PageRange& r, PageIndex v) { return r.end() < v; });
  PageIndex new_first = incoming.first;
  PageIndex new_end = incoming.end();
  uint64_t absorbed = 0;
  auto erase_begin = it;
  while (it != ranges_.end() && it->first <= new_end) {
    new_first = std::min(new_first, it->first);
    new_end = std::max(new_end, it->end());
    absorbed += it->count;
    ++it;
  }
  auto pos = ranges_.erase(erase_begin, it);
  ranges_.insert(pos, PageRange{new_first, new_end - new_first});
  page_total_ += (new_end - new_first) - absorbed;
}

void PageRangeSet::Remove(PageIndex first, uint64_t count) {
  if (count == 0 || ranges_.empty()) {
    return;
  }
  const PageIndex rem_end = first + count;
  // First range whose end > first, i.e. the first run the removal can touch.
  auto it = std::lower_bound(ranges_.begin(), ranges_.end(), first,
                             [](const PageRange& r, PageIndex v) { return r.end() <= v; });
  if (it == ranges_.end() || it->first >= rem_end) {
    return;
  }
  // Removal strictly inside a single run: split it in place.
  if (it->first < first && it->end() > rem_end) {
    const PageRange right{rem_end, it->end() - rem_end};
    it->count = first - it->first;
    ranges_.insert(it + 1, right);
    page_total_ -= count;
    return;
  }
  // Trim a left partial overlap.
  if (it->first < first) {
    page_total_ -= it->end() - first;
    it->count = first - it->first;
    ++it;
  }
  // Drop runs fully covered by the removal.
  auto erase_begin = it;
  while (it != ranges_.end() && it->end() <= rem_end) {
    page_total_ -= it->count;
    ++it;
  }
  // Trim a right partial overlap.
  if (it != ranges_.end() && it->first < rem_end) {
    page_total_ -= rem_end - it->first;
    const PageIndex old_end = it->end();
    it->first = rem_end;
    it->count = old_end - rem_end;
  }
  ranges_.erase(erase_begin, it);
}

bool PageRangeSet::Contains(PageIndex page) const {
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), page,
                             [](PageIndex v, const PageRange& r) { return v < r.first; });
  if (it == ranges_.begin()) {
    return false;
  }
  --it;
  return it->Contains(page);
}

bool PageRangeSet::ContainsRange(PageIndex first, uint64_t count) const {
  if (count == 0) {
    return true;
  }
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), first,
                             [](PageIndex v, const PageRange& r) { return v < r.first; });
  if (it == ranges_.begin()) {
    return false;
  }
  --it;
  return it->first <= first && first + count <= it->end();
}

bool PageRangeSet::Overlaps(const PageRange& r) const {
  if (r.empty()) {
    return false;
  }
  // First run whose end > r.first; it overlaps iff it starts before r ends.
  auto it = std::lower_bound(ranges_.begin(), ranges_.end(), r.first,
                             [](const PageRange& range, PageIndex v) { return range.end() <= v; });
  return it != ranges_.end() && it->first < r.end();
}

PageRangeSet PageRangeSet::Union(const PageRangeSet& other) const {
  PageRangeSet out;
  out.page_total_ = MergeUnion(ranges_, other.ranges_, &out.ranges_);
  return out;
}

void PageRangeSet::UnionInPlace(const PageRangeSet& other) {
  if (other.ranges_.empty()) {
    return;
  }
  if (ranges_.empty()) {
    ranges_ = other.ranges_;
    page_total_ = other.page_total_;
    return;
  }
  std::vector<PageRange> merged;
  page_total_ = MergeUnion(ranges_, other.ranges_, &merged);
  ranges_ = std::move(merged);
}

PageRangeSet PageRangeSet::Intersect(const PageRangeSet& other) const {
  PageRangeSet out;
  size_t i = 0;
  size_t j = 0;
  while (i < ranges_.size() && j < other.ranges_.size()) {
    const PageRange& a = ranges_[i];
    const PageRange& b = other.ranges_[j];
    const PageIndex lo = std::max(a.first, b.first);
    const PageIndex hi = std::min(a.end(), b.end());
    if (lo < hi) {
      out.ranges_.push_back(PageRange{lo, hi - lo});
      out.page_total_ += hi - lo;
    }
    if (a.end() < b.end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

PageRangeSet PageRangeSet::Subtract(const PageRangeSet& other) const {
  PageRangeSet out;
  out.page_total_ = MergeSubtract(ranges_, other.ranges_, &out.ranges_);
  return out;
}

void PageRangeSet::SubtractInPlace(const PageRangeSet& other) {
  if (ranges_.empty() || other.ranges_.empty()) {
    return;
  }
  std::vector<PageRange> result;
  page_total_ = MergeSubtract(ranges_, other.ranges_, &result);
  ranges_ = std::move(result);
}

PageRangeSet PageRangeSet::ComplementWithin(PageCount space) const {
  const uint64_t space_limit = space.value();
  PageRangeSet out;
  PageIndex cursor = 0;
  for (const PageRange& r : ranges_) {
    if (r.first >= space_limit) {
      break;
    }
    if (r.first > cursor) {
      out.AppendCoalescing(cursor, r.first - cursor);
    }
    cursor = std::max<PageIndex>(cursor, r.end());
  }
  if (cursor < space_limit) {
    out.AppendCoalescing(cursor, space_limit - cursor);
  }
  return out;
}

PageRangeSet PageRangeSet::MergeWithGapTolerance(PageCount max_gap) const {
  const uint64_t gap_limit = max_gap.value();
  PageRangeSet out;
  if (ranges_.empty()) {
    return out;
  }
  out.ranges_.reserve(ranges_.size());
  PageRange cur = ranges_[0];
  for (size_t i = 1; i < ranges_.size(); ++i) {
    const PageRange& next = ranges_[i];
    const uint64_t gap = next.first - cur.end();
    if (gap <= gap_limit) {
      cur.count = next.end() - cur.first;  // absorb the gap pages too
    } else {
      out.AppendCoalescing(cur.first, cur.count);
      cur = next;
    }
  }
  out.AppendCoalescing(cur.first, cur.count);
  return out;
}

std::string PageRangeSet::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) {
      s += ", ";
    }
    s += ranges_[i].ToString();
  }
  s += "}";
  return s;
}

}  // namespace faasnap

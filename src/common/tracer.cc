#include "src/common/tracer.h"

#include <cstdio>

namespace faasnap {

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFaultStart:
      return "fault-start";
    case TraceEventType::kFaultEnd:
      return "fault-end";
    case TraceEventType::kDiskIssue:
      return "disk-issue";
    case TraceEventType::kDiskComplete:
      return "disk-complete";
    case TraceEventType::kLoaderChunk:
      return "loader-chunk";
    case TraceEventType::kSetupDone:
      return "setup-done";
    case TraceEventType::kInvocationStart:
      return "invocation-start";
    case TraceEventType::kInvocationEnd:
      return "invocation-end";
    case TraceEventType::kTypeCount:
      break;
  }
  return "unknown";
}

void EventTracer::Emit(SimTime time, TraceEventType type, uint64_t arg0, uint64_t arg1) {
  counts_[static_cast<int>(type)]++;
  events_.push_back(TraceEvent{time, type, arg0, arg1});
  if (events_.size() > capacity_) {
    events_.pop_front();
  }
}

void EventTracer::Clear() {
  events_.clear();
  for (int64_t& c : counts_) {
    c = 0;
  }
}

std::string EventTracer::RenderTimeline(SimTime from, SimTime to) const {
  std::string out;
  for (const TraceEvent& event : events_) {
    if (event.time < from || to < event.time) {
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%10.3f ms  %-16s arg0=%llu arg1=%llu\n",
                  static_cast<double>(event.time.nanos()) / 1e6,
                  TraceEventTypeName(event.type).data(),
                  static_cast<unsigned long long>(event.arg0),
                  static_cast<unsigned long long>(event.arg1));
    out += line;
  }
  return out;
}

}  // namespace faasnap

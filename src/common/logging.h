// Minimal leveled logging to stderr.
//
// The simulator is deterministic and single-threaded per engine, but the native
// engine logs from multiple threads, so emission is a single formatted write.

#ifndef FAASNAP_SRC_COMMON_LOGGING_H_
#define FAASNAP_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace faasnap {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are discarded. Default: kWarning so
// tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define FAASNAP_LOG(level)                                                   \
  if (::faasnap::LogLevel::level < ::faasnap::GetLogLevel()) {               \
  } else                                                                     \
    ::faasnap::internal::LogMessage(::faasnap::LogLevel::level, __FILE__, __LINE__).stream()

#define LOG_DEBUG FAASNAP_LOG(kDebug)
#define LOG_INFO FAASNAP_LOG(kInfo)
#define LOG_WARNING FAASNAP_LOG(kWarning)
#define LOG_ERROR FAASNAP_LOG(kError)

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_LOGGING_H_

// Byte-size and time-unit helpers shared across the codebase.
//
// All simulated time is carried as int64_t nanoseconds (see time.h); all sizes
// as uint64_t bytes. These helpers keep literals readable at call sites.

#ifndef FAASNAP_SRC_COMMON_UNITS_H_
#define FAASNAP_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace faasnap {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// The only page size FaaSnap deals with (x86-64 base pages).
inline constexpr uint64_t kPageSize = 4 * kKiB;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }

// Number of whole pages needed to hold `bytes`.
constexpr uint64_t BytesToPages(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }
constexpr uint64_t PagesToBytes(uint64_t pages) { return pages * kPageSize; }

// "1.5 GiB", "237 MiB", "4 KiB", "123 B".
std::string FormatBytes(uint64_t bytes);

// "1.204 s", "35.7 ms", "3.7 us", "250 ns" from nanoseconds.
std::string FormatDuration(int64_t ns);

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_UNITS_H_

// Unit-safe size types and time-unit helpers shared across the codebase.
//
// All simulated time is carried as int64_t nanoseconds inside Duration/SimTime
// (sim_time.h); all sizes as ByteCount/PageCount below. Raw unit-suffixed
// integers (`uint64_t foo_bytes`, `int64_t bar_us`) are banned in src/ by
// faasnap_lint's raw-unit pass: a value that knows its own unit cannot be
// added to a value in a different unit, which is exactly the mixed-unit
// plumbing bug class the per-class fault accounting (PAPER.md tab03) cannot
// absorb silently. The wrappers are zero-cost: one integer member, everything
// constexpr and inlined; overflow checks compile away in NDEBUG builds except
// on the cold construction paths where a wrapping literal is always a bug.

#ifndef FAASNAP_SRC_COMMON_UNITS_H_
#define FAASNAP_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace faasnap {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// The only page size FaaSnap deals with (x86-64 base pages).
inline constexpr uint64_t kPageSize = 4 * kKiB;

namespace unit_internal {

// Aborts with a message naming the overflowing operation. Non-constexpr on
// purpose: reaching it during constant evaluation is a compile error, which
// turns an overflowing constexpr literal into a build break.
[[noreturn]] void OverflowPanic(const char* what);

constexpr bool MulOverflowsU64(uint64_t a, uint64_t b) {
  return b != 0 && a > UINT64_MAX / b;
}
constexpr bool AddOverflowsU64(uint64_t a, uint64_t b) { return a > UINT64_MAX - b; }
constexpr bool SubUnderflowsU64(uint64_t a, uint64_t b) { return b > a; }
// k must be positive (it is always a literal scale factor here).
constexpr bool MulOverflowsI64(int64_t n, int64_t k) {
  return n > 0 ? n > INT64_MAX / k : n < INT64_MIN / k;
}
constexpr bool AddOverflowsI64(int64_t a, int64_t b) {
  return (b > 0 && a > INT64_MAX - b) || (b < 0 && a < INT64_MIN - b);
}
constexpr bool SubOverflowsI64(int64_t a, int64_t b) {
  return (b < 0 && a > INT64_MAX + b) || (b > 0 && a < INT64_MIN + b);
}

// Always-checked scale, for construction paths (Duration::Micros, MiB(...)):
// these run on config/literal paths, never per-fault, so the check is kept in
// Release builds too.
constexpr int64_t CheckedScaleI64(int64_t n, int64_t k, const char* what) {
  if (MulOverflowsI64(n, k)) {
    OverflowPanic(what);
  }
  return n * k;
}
constexpr uint64_t CheckedScaleU64(uint64_t n, uint64_t k, const char* what) {
  if (MulOverflowsU64(n, k)) {
    OverflowPanic(what);
  }
  return n * k;
}

// Debug-checked arithmetic for the operators that do run on hot accounting
// paths: free in NDEBUG builds, an abort-with-message in debug/sanitizer CI.
#if defined(NDEBUG)
inline constexpr bool kDebugChecks = false;
#else
inline constexpr bool kDebugChecks = true;
#endif

constexpr uint64_t DebugCheckedAddU64(uint64_t a, uint64_t b, const char* what) {
  if (kDebugChecks && AddOverflowsU64(a, b)) {
    OverflowPanic(what);
  }
  return a + b;
}
constexpr uint64_t DebugCheckedSubU64(uint64_t a, uint64_t b, const char* what) {
  if (kDebugChecks && SubUnderflowsU64(a, b)) {
    OverflowPanic(what);
  }
  return a - b;
}
constexpr uint64_t DebugCheckedMulU64(uint64_t a, uint64_t b, const char* what) {
  if (kDebugChecks && MulOverflowsU64(a, b)) {
    OverflowPanic(what);
  }
  return a * b;
}
constexpr int64_t DebugCheckedAddI64(int64_t a, int64_t b, const char* what) {
  if (kDebugChecks && AddOverflowsI64(a, b)) {
    OverflowPanic(what);
  }
  return a + b;
}
constexpr int64_t DebugCheckedSubI64(int64_t a, int64_t b, const char* what) {
  if (kDebugChecks && SubOverflowsI64(a, b)) {
    OverflowPanic(what);
  }
  return a - b;
}

}  // namespace unit_internal

// "1.5 GiB", "237 MiB", "4 KiB", "123 B".
std::string FormatBytes(uint64_t bytes);

// "1.204 s", "35.7 ms", "3.7 us", "250 ns" from nanoseconds.
std::string FormatDuration(int64_t ns);

// A size in bytes. Construction and unit escape are explicit (FromBytes /
// value()), so a ByteCount can never silently mix with a page count or a raw
// integer in another unit.
class ByteCount {
 public:
  constexpr ByteCount() = default;
  static constexpr ByteCount FromBytes(uint64_t n) { return ByteCount(n); }
  static constexpr ByteCount FromKiB(uint64_t n) {
    return ByteCount(unit_internal::CheckedScaleU64(n, kKiB, "ByteCount::FromKiB"));
  }
  static constexpr ByteCount FromMiB(uint64_t n) {
    return ByteCount(unit_internal::CheckedScaleU64(n, kMiB, "ByteCount::FromMiB"));
  }
  static constexpr ByteCount FromGiB(uint64_t n) {
    return ByteCount(unit_internal::CheckedScaleU64(n, kGiB, "ByteCount::FromGiB"));
  }
  static constexpr ByteCount Zero() { return ByteCount(0); }

  constexpr uint64_t value() const { return bytes_; }
  constexpr bool is_zero() const { return bytes_ == 0; }
  std::string ToString() const { return FormatBytes(bytes_); }

  constexpr auto operator<=>(const ByteCount&) const = default;

  constexpr ByteCount operator+(ByteCount other) const {
    return ByteCount(unit_internal::DebugCheckedAddU64(bytes_, other.bytes_, "ByteCount +"));
  }
  constexpr ByteCount operator-(ByteCount other) const {
    return ByteCount(unit_internal::DebugCheckedSubU64(bytes_, other.bytes_, "ByteCount -"));
  }
  constexpr ByteCount& operator+=(ByteCount other) { return *this = *this + other; }
  constexpr ByteCount& operator-=(ByteCount other) { return *this = *this - other; }
  constexpr ByteCount operator*(uint64_t k) const {
    return ByteCount(unit_internal::DebugCheckedMulU64(bytes_, k, "ByteCount *"));
  }
  constexpr uint64_t operator/(ByteCount other) const { return bytes_ / other.bytes_; }

 private:
  explicit constexpr ByteCount(uint64_t n) : bytes_(n) {}
  uint64_t bytes_ = 0;
};

// A count of 4 KiB guest/host pages.
class PageCount {
 public:
  constexpr PageCount() = default;
  static constexpr PageCount FromPages(uint64_t n) { return PageCount(n); }
  static constexpr PageCount Zero() { return PageCount(0); }

  constexpr uint64_t value() const { return pages_; }
  constexpr bool is_zero() const { return pages_ == 0; }
  constexpr ByteCount bytes() const {
    return ByteCount::FromBytes(
        unit_internal::CheckedScaleU64(pages_, kPageSize, "PageCount::bytes"));
  }
  std::string ToString() const;

  constexpr auto operator<=>(const PageCount&) const = default;

  constexpr PageCount operator+(PageCount other) const {
    return PageCount(unit_internal::DebugCheckedAddU64(pages_, other.pages_, "PageCount +"));
  }
  constexpr PageCount operator-(PageCount other) const {
    return PageCount(unit_internal::DebugCheckedSubU64(pages_, other.pages_, "PageCount -"));
  }
  constexpr PageCount& operator+=(PageCount other) { return *this = *this + other; }
  constexpr PageCount& operator-=(PageCount other) { return *this = *this - other; }
  constexpr PageCount operator*(uint64_t k) const {
    return PageCount(unit_internal::DebugCheckedMulU64(pages_, k, "PageCount *"));
  }
  constexpr uint64_t operator/(PageCount other) const { return pages_ / other.pages_; }

 private:
  explicit constexpr PageCount(uint64_t n) : pages_(n) {}
  uint64_t pages_ = 0;
};

// Readable byte-size literals: `GiB(1)` is a ByteCount, not a bare integer.
constexpr ByteCount KiB(uint64_t n) { return ByteCount::FromKiB(n); }
constexpr ByteCount MiB(uint64_t n) { return ByteCount::FromMiB(n); }
constexpr ByteCount GiB(uint64_t n) { return ByteCount::FromGiB(n); }

// Number of whole pages needed to hold `bytes` / exact size of `pages`.
// The raw-integer forms survive for index arithmetic (PageRange ends, file
// offsets); the strong forms are what typed fields use.
constexpr uint64_t BytesToPages(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }
constexpr uint64_t PagesToBytes(uint64_t pages) { return pages * kPageSize; }
constexpr PageCount BytesToPages(ByteCount b) {
  return PageCount::FromPages(BytesToPages(b.value()));
}
constexpr ByteCount PagesToBytes(PageCount p) { return p.bytes(); }

inline std::string FormatBytes(ByteCount b) { return FormatBytes(b.value()); }

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_UNITS_H_

// EventTracer: structured event tracing, standing in for the paper's bpftrace
// probes (sections 3.3, 6.4, 6.5).
//
// Components emit timestamped events through an optional tracer pointer; the
// tracer keeps a bounded ring of events, per-type counters, and can render a
// merged timeline ("what were the guest, the loader, and the disk doing at
// t=48 ms?"). Tracing is off by default and costs one branch when disabled.

#ifndef FAASNAP_SRC_COMMON_TRACER_H_
#define FAASNAP_SRC_COMMON_TRACER_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/common/sim_time.h"

namespace faasnap {

enum class TraceEventType : int {
  kFaultStart = 0,   // arg0 = guest page
  kFaultEnd,         // arg0 = guest page, arg1 = fault class
  kDiskIssue,        // arg0 = offset bytes, arg1 = bytes
  kDiskComplete,     // arg0 = offset bytes, arg1 = bytes
  kLoaderChunk,      // arg0 = file page, arg1 = pages
  kSetupDone,        // arg0 = mmap calls
  kInvocationStart,  // no args
  kInvocationEnd,    // arg0 = elapsed ns
  kTypeCount,
};

std::string_view TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  SimTime time;
  TraceEventType type = TraceEventType::kFaultStart;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class EventTracer {
 public:
  // Keeps at most `capacity` most-recent events (counters are unbounded).
  explicit EventTracer(size_t capacity = 65536) : capacity_(capacity) {}

  void Emit(SimTime time, TraceEventType type, uint64_t arg0 = 0, uint64_t arg1 = 0);

  int64_t count(TraceEventType type) const { return counts_[static_cast<int>(type)]; }
  const std::deque<TraceEvent>& events() const { return events_; }
  void Clear();

  // "48.132 ms  fault-end        page=12345 class=2" lines, oldest first,
  // restricted to [from, to].
  std::string RenderTimeline(SimTime from, SimTime to) const;

 private:
  size_t capacity_;
  std::deque<TraceEvent> events_;
  int64_t counts_[static_cast<int>(TraceEventType::kTypeCount)] = {};
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_TRACER_H_

// Forwarding header: EventTracer moved to src/obs/legacy_tracer.h when tracing
// grew into the span-based observability layer (src/obs/). Kept so existing
// includes keep compiling; new code should include obs headers directly.

#ifndef FAASNAP_SRC_COMMON_TRACER_H_
#define FAASNAP_SRC_COMMON_TRACER_H_

#include "src/obs/legacy_tracer.h"  // IWYU pragma: export

#endif  // FAASNAP_SRC_COMMON_TRACER_H_

// Status and Result<T>: exception-free error handling primitives used across the
// FaaSnap codebase. Modeled after absl::Status / absl::StatusOr but self-contained.
//
// Conventions:
//  * Functions that can fail return Status (no payload) or Result<T> (payload).
//  * Programming errors (broken invariants) use FAASNAP_CHECK, which aborts.
//  * The RETURN_IF_ERROR / ASSIGN_OR_RETURN macros propagate failures upward.

#ifndef FAASNAP_SRC_COMMON_STATUS_H_
#define FAASNAP_SRC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace faasnap {

// Canonical error space, a deliberately small subset of the gRPC/absl codes.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kUnavailable = 9,
  kIoError = 10,
  kDeadlineExceeded = 11,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeName(StatusCode code);

// A cheap value type carrying success or (code, message). [[nodiscard]] on the
// type: every function returning Status inherits must-use semantics, so a
// silently dropped error is a compile error under -Werror. Intentional drops
// must be spelled `(void)expr;  // reason` (and faasnap_lint checks for the
// comment).
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: bad page index".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status IoError(std::string message);
Status DeadlineExceededError(std::string message);

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value and from error Status, so `return value;` and
  // `return InvalidArgumentError(...);` both work.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).ok()) {
      std::fprintf(stderr, "Result<T> constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Status of the result; OkStatus() when a value is held.
  Status status() const { return ok() ? OkStatus() : std::get<Status>(rep_); }

  // Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result<T>::value() on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

namespace internal {
void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

// Aborts (with file:line and the expression text) if `expr` is false.
#define FAASNAP_CHECK(expr)                                      \
  do {                                                           \
    if (!(expr)) {                                               \
      ::faasnap::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                            \
  } while (0)

#define FAASNAP_CHECK_OK(status_expr)                                              \
  do {                                                                             \
    const ::faasnap::Status faasnap_check_status = (status_expr);                  \
    if (!faasnap_check_status.ok()) {                                              \
      ::faasnap::internal::CheckFailed(__FILE__, __LINE__,                         \
                                       faasnap_check_status.ToString().c_str());   \
    }                                                                              \
  } while (0)

// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                        \
  do {                                               \
    ::faasnap::Status faasnap_ret_status = (expr);   \
    if (!faasnap_ret_status.ok()) {                  \
      return faasnap_ret_status;                     \
    }                                                \
  } while (0)

#define FAASNAP_MACRO_CONCAT_INNER(x, y) x##y
#define FAASNAP_MACRO_CONCAT(x, y) FAASNAP_MACRO_CONCAT_INNER(x, y)

// ASSIGN_OR_RETURN(lhs, result_expr): assigns the value or returns the error.
#define ASSIGN_OR_RETURN(lhs, expr)                                             \
  auto FAASNAP_MACRO_CONCAT(faasnap_result_, __LINE__) = (expr);                \
  if (!FAASNAP_MACRO_CONCAT(faasnap_result_, __LINE__).ok()) {                  \
    return FAASNAP_MACRO_CONCAT(faasnap_result_, __LINE__).status();            \
  }                                                                             \
  lhs = std::move(FAASNAP_MACRO_CONCAT(faasnap_result_, __LINE__)).value()

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_STATUS_H_

// Minimal JSON document model and parser (no external dependencies).
//
// Used by the daemon's config-driven experiment runner: the paper's artifact
// drives its evaluation from JSON configs (test-2inputs.json etc.), and this
// repository mirrors that workflow. The parser accepts standard JSON (RFC 8259)
// minus exotic number forms; errors carry a byte offset.

#ifndef FAASNAP_SRC_COMMON_JSON_H_
#define FAASNAP_SRC_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace faasnap {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
// std::map keeps deterministic iteration order for tests and rendering.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}            // NOLINT
  JsonValue(bool b) : value_(b) {}                          // NOLINT
  JsonValue(double d) : value_(d) {}                        // NOLINT
  JsonValue(int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}        // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}      // NOLINT
  JsonValue(JsonArray a) : value_(std::move(a)) {}          // NOLINT
  JsonValue(JsonObject o) : value_(std::move(o)) {}         // NOLINT

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Checked accessors: a non-OK Result on type mismatch.
  Result<bool> AsBool() const;
  Result<double> AsDouble() const;
  Result<int64_t> AsInt() const;  // rejects non-integral numbers
  Result<std::string> AsString() const;

  // Unchecked views; abort on type mismatch (use after checking type()).
  const JsonArray& array() const;
  const JsonObject& object() const;

  // Object member lookup: NotFound if absent or not an object.
  Result<JsonValue> Get(const std::string& key) const;
  bool Has(const std::string& key) const;

  // Typed convenience with defaults for optional config fields.
  std::string GetStringOr(const std::string& key, const std::string& fallback) const;
  double GetNumberOr(const std::string& key, double fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;
  // Unit-typed convenience: the JSON number is interpreted in the unit named
  // by the conventional key suffix (`*_us` knobs → GetDurationUsOr, `*_mib` →
  // GetByteCountMiBOr, page counts → GetPageCountOr) and returned as the
  // strong type, so config plumbing cannot mix the wire unit up with ns/bytes.
  Duration GetDurationUsOr(const std::string& key, Duration fallback) const;
  Duration GetDurationMsOr(const std::string& key, Duration fallback) const;
  ByteCount GetByteCountMiBOr(const std::string& key, ByteCount fallback) const;
  PageCount GetPageCountOr(const std::string& key, PageCount fallback) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

// Parses a complete JSON document (trailing whitespace allowed, nothing else).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_JSON_H_

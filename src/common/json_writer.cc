#include "src/common/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace faasnap {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (!needs_comma_.empty() && needs_comma_.back() && !pending_key_) {
    out_ += ',';
  }
  if (!needs_comma_.empty() && !pending_key_) {
    needs_comma_.back() = true;
  }
  pending_key_ = false;
}

void JsonWriter::Raw(const std::string& s) {
  MaybeComma();
  out_ += s;
}

JsonWriter& JsonWriter::BeginObject() {
  Raw("{");
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  FAASNAP_CHECK(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Raw("[");
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  FAASNAP_CHECK(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  Raw("\"" + JsonEscape(v) + "\"");
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) { return Value(std::string(v)); }

JsonWriter& JsonWriter::Value(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Raw(v ? "true" : "false");
  return *this;
}

std::string JsonWriter::TakeString() {
  FAASNAP_CHECK(needs_comma_.empty() && "unbalanced JSON scopes");
  return std::move(out_);
}

}  // namespace faasnap

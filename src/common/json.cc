#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace faasnap {

JsonValue::Type JsonValue::type() const {
  return static_cast<Type>(value_.index());
}

Result<bool> JsonValue::AsBool() const {
  if (!is_bool()) {
    return InvalidArgumentError("JSON value is not a bool");
  }
  return std::get<bool>(value_);
}

Result<double> JsonValue::AsDouble() const {
  if (!is_number()) {
    return InvalidArgumentError("JSON value is not a number");
  }
  return std::get<double>(value_);
}

Result<int64_t> JsonValue::AsInt() const {
  ASSIGN_OR_RETURN(double d, AsDouble());
  const auto i = static_cast<int64_t>(d);
  if (static_cast<double>(i) != d) {
    return InvalidArgumentError("JSON number is not an integer");
  }
  return i;
}

Result<std::string> JsonValue::AsString() const {
  if (!is_string()) {
    return InvalidArgumentError("JSON value is not a string");
  }
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::array() const {
  FAASNAP_CHECK(is_array());
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::object() const {
  FAASNAP_CHECK(is_object());
  return std::get<JsonObject>(value_);
}

Result<JsonValue> JsonValue::Get(const std::string& key) const {
  if (!is_object()) {
    return InvalidArgumentError("JSON value is not an object");
  }
  const JsonObject& obj = std::get<JsonObject>(value_);
  auto it = obj.find(key);
  if (it == obj.end()) {
    return NotFoundError("missing JSON key: " + key);
  }
  return it->second;
}

bool JsonValue::Has(const std::string& key) const {
  return is_object() && std::get<JsonObject>(value_).count(key) > 0;
}

std::string JsonValue::GetStringOr(const std::string& key, const std::string& fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<std::string> s = v->AsString();
  return s.ok() ? *s : fallback;
}

double JsonValue::GetNumberOr(const std::string& key, double fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<double> d = v->AsDouble();
  return d.ok() ? *d : fallback;
}

int64_t JsonValue::GetIntOr(const std::string& key, int64_t fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<int64_t> i = v->AsInt();
  return i.ok() ? *i : fallback;
}

bool JsonValue::GetBoolOr(const std::string& key, bool fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<bool> b = v->AsBool();
  return b.ok() ? *b : fallback;
}

Duration JsonValue::GetDurationUsOr(const std::string& key, Duration fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<int64_t> i = v->AsInt();
  return i.ok() ? Duration::Micros(*i) : fallback;
}

Duration JsonValue::GetDurationMsOr(const std::string& key, Duration fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<int64_t> i = v->AsInt();
  return i.ok() ? Duration::Millis(*i) : fallback;
}

ByteCount JsonValue::GetByteCountMiBOr(const std::string& key, ByteCount fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<int64_t> i = v->AsInt();
  return i.ok() && *i >= 0 ? MiB(static_cast<uint64_t>(*i)) : fallback;
}

PageCount JsonValue::GetPageCountOr(const std::string& key, PageCount fallback) const {
  Result<JsonValue> v = Get(key);
  if (!v.ok()) {
    return fallback;
  }
  Result<int64_t> i = v->AsInt();
  return i.ok() && *i >= 0 ? PageCount::FromPages(static_cast<uint64_t>(*i)) : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("JSON parse error at offset " + std::to_string(pos_) + ": " +
                                message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue(true));
      case 'f':
        return ParseLiteral("false", JsonValue(false));
      case 'n':
        return ParseLiteral("null", JsonValue(nullptr));
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(const std::string& literal, JsonValue value) {
    if (text_.compare(pos_, literal.size(), literal) != 0) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      return Error("invalid number: " + token);
    }
    return JsonValue(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Basic multilingual plane only; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    FAASNAP_CHECK(Consume('['));
    JsonArray items;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) {
        return JsonValue(std::move(items));
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Result<JsonValue> ParseObject() {
    FAASNAP_CHECK(Consume('{'));
    JsonObject members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      SkipWhitespace();
      ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return JsonValue(std::move(members));
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace faasnap

#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace faasnap {

Log2Histogram::Log2Histogram(Duration lower_edge, int num_buckets) : lower_(lower_edge) {
  FAASNAP_CHECK(lower_edge > Duration::Zero());
  FAASNAP_CHECK(num_buckets >= 1);
  // +1 overflow bucket at the end.
  counts_.assign(static_cast<size_t>(num_buckets) + 1, 0);
}

void Log2Histogram::Record(Duration d) {
  int64_t ns = std::max<int64_t>(d.nanos(), 0);
  size_t bucket = 0;
  int64_t edge = lower_.nanos();
  while (bucket + 1 < counts_.size() && ns >= edge) {
    ++bucket;
    edge *= 2;
  }
  counts_[bucket]++;
  total_count_++;
  total_time_ += d;
}

void Log2Histogram::Merge(const Log2Histogram& other) {
  FAASNAP_CHECK(other.lower_ == lower_);
  FAASNAP_CHECK(other.counts_.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_count_ += other.total_count_;
  total_time_ += other.total_time_;
}

void Log2Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  total_time_ = Duration::Zero();
}

Duration Log2Histogram::mean() const {
  if (total_count_ == 0) {
    return Duration::Zero();
  }
  return Duration::Nanos(total_time_.nanos() / total_count_);
}

Duration Log2Histogram::ApproxQuantile(double fraction) const {
  if (total_count_ == 0) {
    return Duration::Zero();
  }
  const auto target = static_cast<int64_t>(std::ceil(fraction * static_cast<double>(total_count_)));
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return bucket_upper(static_cast<int>(i));
    }
  }
  return bucket_upper(static_cast<int>(counts_.size()) - 1);
}

Duration Log2Histogram::EstimateQuantile(double fraction) const {
  return EstimateLog2Quantile(counts_, lower_, fraction);
}

Duration EstimateLog2Quantile(const std::vector<int64_t>& counts, Duration lower_edge,
                              double fraction) {
  const int64_t lower = lower_edge.nanos();
  FAASNAP_CHECK(lower > 0);
  int64_t total = 0;
  for (int64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return Duration::Zero();
  }
  fraction = std::min(std::max(fraction, 0.0), 1.0);
  const auto target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(fraction * static_cast<double>(total))));
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    if (seen + counts[i] < target) {
      seen += counts[i];
      continue;
    }
    const double within =
        static_cast<double>(target - seen) / static_cast<double>(counts[i]);
    if (i == 0) {
      // [0, lower): linear, the log-space lower bound is -inf.
      return Duration::Nanos(static_cast<int64_t>(static_cast<double>(lower) * within));
    }
    // Finite bucket [lo, 2*lo); the overflow bucket extrapolates one doubling
    // past the last finite edge, so both share lo * 2^within.
    int64_t lo = lower;
    const size_t last = counts.size() - 1;
    for (size_t k = 1; k < std::min(i, last); ++k) {
      lo *= 2;
    }
    return Duration::Nanos(static_cast<int64_t>(static_cast<double>(lo) * std::exp2(within)));
  }
  return Duration::Zero();
}

Duration Log2Histogram::bucket_upper(int i) const {
  if (i + 1 == static_cast<int>(counts_.size())) {
    return Duration::Nanos(INT64_MAX);
  }
  int64_t edge = lower_.nanos();
  for (int k = 0; k < i; ++k) {
    edge *= 2;
  }
  return Duration::Nanos(edge);
}

std::string Log2Histogram::BucketLabel(int i) const {
  char buf[64];
  if (i + 1 == static_cast<int>(counts_.size())) {
    std::snprintf(buf, sizeof(buf), ">= %s",
                  bucket_upper(i - 1).ToString().c_str());
  } else if (i == 0) {
    std::snprintf(buf, sizeof(buf), "< %s", bucket_upper(0).ToString().c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "%s - %s", bucket_upper(i - 1).ToString().c_str(),
                  bucket_upper(i).ToString().c_str());
  }
  return buf;
}

std::string Log2Histogram::ToString() const {
  int64_t max_count = 1;
  for (int64_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    char line[160];
    // Log-scale bar, mirroring the paper's log y-axis.
    const double frac = counts_[i] == 0
                            ? 0.0
                            : std::log2(1.0 + static_cast<double>(counts_[i])) /
                                  std::log2(1.0 + static_cast<double>(max_count));
    const int bar = static_cast<int>(frac * 40);
    std::snprintf(line, sizeof(line), "  %-22s %8lld  %.*s\n",
                  BucketLabel(static_cast<int>(i)).c_str(),
                  static_cast<long long>(counts_[i]), bar,
                  "########################################");
    out += line;
  }
  return out;
}

void RunningStats::Record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_++;
  sum_ += v;
  sum_sq_ += v * v;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double RunningStats::stddev() const {
  if (count_ == 0) {
    return 0.0;
  }
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var > 0 ? std::sqrt(var) : 0.0;
}

}  // namespace faasnap

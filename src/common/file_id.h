// FileId: identifies a backing file (snapshot memory file, loading set file,
// ...) across the storage and memory subsystems. Allocated by the
// SnapshotStore; 0 is reserved as invalid.
//
// Lives in common/ because both the storage layer (placement, routing) and the
// memory layer (page cache state) key on it; neither may include the other's
// headers just for this typedef (see tools/lint/layers.json).

#ifndef FAASNAP_SRC_COMMON_FILE_ID_H_
#define FAASNAP_SRC_COMMON_FILE_ID_H_

#include <cstdint>

namespace faasnap {

using FileId = uint32_t;
inline constexpr FileId kInvalidFileId = 0;

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_FILE_ID_H_
